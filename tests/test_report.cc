/**
 * @file
 * Tests of the reporting subsystem: the flat-JSON parser, campaign
 * JSONL round-tripping (every record the orchestrator emits parses
 * back and satisfies the schema invariants), strict rejection of
 * malformed logs, and the cross-campaign comparison renderers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "campaign/io_util.hh"
#include "campaign/orchestrator.hh"
#include "campaign/stats.hh"
#include "obs/heartbeat.hh"
#include "obs/telemetry.hh"
#include "report/campaign_log.hh"
#include "report/json.hh"
#include "report/report.hh"
#include "uarch/config.hh"

namespace dejavuzz {
namespace {

using campaign::CampaignOptions;
using campaign::CampaignOrchestrator;
using report::CampaignLog;
using report::JsonObject;
using report::ReportFormat;

// --- JSON parser --------------------------------------------------------

TEST(JsonParser, ParsesScalarsAndEscapes)
{
    JsonObject obj;
    std::string error;
    ASSERT_TRUE(report::parseFlatJsonObject(
        R"({"a":1,"b":-2.5,"c":"x\nyA","d":true,"e":null})",
        obj, &error))
        << error;
    EXPECT_EQ(obj.size(), 5u);
    EXPECT_DOUBLE_EQ(obj["a"].number, 1.0);
    EXPECT_DOUBLE_EQ(obj["b"].number, -2.5);
    EXPECT_EQ(obj["c"].text, "x\nyA");
    EXPECT_TRUE(obj["d"].boolean);
    EXPECT_EQ(obj["e"].kind, report::JsonValue::Kind::Null);
}

TEST(JsonParser, RoundTripsJsonEscape)
{
    const std::string nasty = "a\"b\\c\nd\te\rf\x01g";
    const std::string line =
        "{\"s\":\"" + campaign::jsonEscape(nasty) + "\"}";
    JsonObject obj;
    std::string error;
    ASSERT_TRUE(report::parseFlatJsonObject(line, obj, &error))
        << error;
    EXPECT_EQ(obj["s"].text, nasty);
}

TEST(JsonParser, RejectsMalformedInput)
{
    JsonObject obj;
    EXPECT_FALSE(report::parseFlatJsonObject("", obj));
    EXPECT_FALSE(report::parseFlatJsonObject("{\"a\":1", obj));
    EXPECT_FALSE(report::parseFlatJsonObject("{\"a\":}", obj));
    EXPECT_FALSE(report::parseFlatJsonObject("{\"a\":1} x", obj));
    EXPECT_FALSE(
        report::parseFlatJsonObject("{\"a\":1,\"a\":2}", obj))
        << "duplicate keys must be rejected";
    EXPECT_FALSE(
        report::parseFlatJsonObject("{\"a\":{\"b\":1}}", obj))
        << "nested objects are not part of the schema";
    EXPECT_FALSE(report::parseFlatJsonObject("{\"a\":[1]}", obj))
        << "arrays are not part of the schema";
    // Not JSON numbers, even though strtod would accept them.
    EXPECT_FALSE(report::parseFlatJsonObject("{\"a\":nan}", obj));
    EXPECT_FALSE(report::parseFlatJsonObject("{\"a\":inf}", obj));
    EXPECT_FALSE(report::parseFlatJsonObject("{\"a\":0x10}", obj));
    EXPECT_FALSE(report::parseFlatJsonObject("{\"a\":1.}", obj));
}

TEST(JsonParser, KeepsFullIntegerPrecision)
{
    JsonObject obj;
    std::string error;
    ASSERT_TRUE(report::parseFlatJsonObject(
        "{\"seed\":18446744073709551615,\"e\":1e3}", obj, &error))
        << error;
    EXPECT_EQ(obj["seed"].raw, "18446744073709551615");
    EXPECT_DOUBLE_EQ(obj["e"].number, 1000.0);
}

// --- Campaign log round-trip --------------------------------------------

CampaignOptions
tinyCampaign(unsigned workers, uint64_t iters, uint64_t seed)
{
    CampaignOptions options;
    options.workers = workers;
    options.master_seed = seed;
    options.total_iterations = iters;
    options.epoch_iterations = 125;
    options.base_config = uarch::smallBoomConfig();
    return options;
}

CampaignLog
runAndParse(const CampaignOptions &options, const std::string &name)
{
    CampaignOrchestrator orchestrator(options);
    orchestrator.run();
    std::stringstream jsonl;
    orchestrator.writeJsonl(jsonl);

    CampaignLog log;
    std::string error;
    EXPECT_TRUE(
        report::parseCampaignLog(jsonl, name, log, &error))
        << error;
    return log;
}

TEST(CampaignLogRoundTrip, EveryEmittedLineParsesBack)
{
    const CampaignLog log =
        runAndParse(tinyCampaign(2, 750, 7), "roundtrip");

    // All record types present: the schema's five discriminators.
    ASSERT_EQ(log.workers.size(), 2u);
    EXPECT_FALSE(log.triggers.empty());
    EXPECT_FALSE(log.epochs.empty());
    EXPECT_FALSE(log.bugs.empty());
    EXPECT_EQ(log.summary.workers, 2u);
    EXPECT_EQ(log.summary.policy, "replicas");
    EXPECT_EQ(log.summary.master_seed, 7u);
    EXPECT_EQ(log.summary.templates, "same-domain");

    // Summary totals equal per-worker sums (the remaining schema
    // invariants are covered by validateCampaignLog below).
    uint64_t iterations = 0, simulations = 0, reports = 0;
    for (const auto &w : log.workers) {
        iterations += w.iterations;
        simulations += w.simulations;
        reports += w.bugs;
    }
    EXPECT_EQ(iterations, log.summary.iterations);
    EXPECT_EQ(simulations, log.summary.simulations);
    EXPECT_EQ(reports, log.summary.total_reports);
    EXPECT_EQ(log.summary.iterations, 750u);

    EXPECT_TRUE(validateCampaignLog(log).empty());
}

TEST(CampaignLogRoundTrip, ValidatorCatchesInconsistentLogs)
{
    CampaignLog log = runAndParse(tinyCampaign(2, 500, 3), "tamper");
    ASSERT_TRUE(validateCampaignLog(log).empty());
    log.summary.iterations += 1;
    EXPECT_FALSE(validateCampaignLog(log).empty());
}

TEST(CampaignLogRoundTrip, ValidatorCatchesRobustnessMismatches)
{
    const CampaignLog clean =
        runAndParse(tinyCampaign(2, 500, 3), "robust");
    ASSERT_TRUE(validateCampaignLog(clean).empty());

    CampaignLog log = clean;
    log.summary.batches_failed = log.summary.batches + 1;
    EXPECT_FALSE(validateCampaignLog(log).empty());

    log = clean;
    log.summary.quarantined_seeds = 1; // with zero failed batches
    EXPECT_FALSE(validateCampaignLog(log).empty());

    log = clean;
    log.summary.batch_deadline_kills =
        log.summary.batches + log.summary.batch_retries + 1;
    EXPECT_FALSE(validateCampaignLog(log).empty());

    log = clean;
    log.summary.kinds_disabled = log.summary.workers + 1;
    EXPECT_FALSE(validateCampaignLog(log).empty());
}

TEST(CampaignLogTrailer, VerifiesAndRejectsTamperedLogs)
{
    // A checkpointed log ends with a trailer record whose CRC the
    // parser re-computes as it reads; byte-exact logs pass, any
    // tampering before the trailer fails the parse outright.
    CampaignOrchestrator orchestrator(tinyCampaign(2, 500, 3));
    orchestrator.run();
    std::stringstream jsonl;
    orchestrator.writeJsonl(jsonl);
    const std::string payload = jsonl.str();
    const uint32_t crc =
        campaign::crc32(payload.data(), payload.size());
    const std::string with_trailer =
        payload + "{\"type\":\"trailer\",\"generation\":4,\"bytes\":" +
        std::to_string(payload.size()) +
        ",\"crc32\":" + std::to_string(crc) + "}\n";

    CampaignLog log;
    std::string error;
    {
        std::istringstream is(with_trailer);
        ASSERT_TRUE(
            report::parseCampaignLog(is, "trailer", log, &error))
            << error;
    }
    EXPECT_TRUE(log.has_trailer);
    EXPECT_EQ(log.trailer.generation, 4u);
    EXPECT_EQ(log.trailer.bytes, payload.size());
    EXPECT_TRUE(validateCampaignLog(log).empty());

    // One corrupted payload byte (a digit, so every record still
    // parses and only the checksum can notice): CRC mismatch.
    {
        std::string bent = with_trailer;
        const size_t pos = bent.find("\"iterations\":") + 13;
        bent[pos] = bent[pos] == '1' ? '2' : '1';
        std::istringstream is(bent);
        EXPECT_FALSE(
            report::parseCampaignLog(is, "bent", log, &error));
        EXPECT_NE(error.find("CRC"), std::string::npos) << error;
    }

    // A record appended after the trailer: the log was modified
    // after it was sealed.
    {
        std::istringstream is(
            with_trailer +
            "{\"type\":\"epoch\",\"epoch\":0,\"iterations\":1,"
            "\"coverage_points\":1,\"distinct_bugs\":0,"
            "\"corpus_size\":0,\"wall_seconds\":0.1}\n");
        EXPECT_FALSE(
            report::parseCampaignLog(is, "appended", log, &error));
        EXPECT_NE(error.find("after the integrity trailer"),
                  std::string::npos)
            << error;
    }

    // A truncated log whose trailer survives: byte-count mismatch.
    {
        const size_t cut = payload.find('\n');
        ASSERT_NE(cut, std::string::npos);
        std::istringstream is(
            payload.substr(cut + 1) +
            "{\"type\":\"trailer\",\"generation\":4,\"bytes\":" +
            std::to_string(payload.size()) +
            ",\"crc32\":" + std::to_string(crc) + "}\n");
        EXPECT_FALSE(
            report::parseCampaignLog(is, "cut", log, &error));
        EXPECT_NE(error.find("torn log"), std::string::npos)
            << error;
    }

    // An out-of-range crc32 field is rejected before comparison.
    {
        std::istringstream is(
            payload +
            "{\"type\":\"trailer\",\"generation\":4,\"bytes\":" +
            std::to_string(payload.size()) +
            ",\"crc32\":4294967296}\n");
        EXPECT_FALSE(
            report::parseCampaignLog(is, "range", log, &error));
        EXPECT_NE(error.find("32-bit"), std::string::npos) << error;
    }
}

TEST(CampaignLogRoundTrip, ParserRejectsBrokenLogs)
{
    CampaignLog log;
    std::string error;

    std::stringstream unknown_type(
        "{\"type\":\"mystery\",\"x\":1}\n");
    EXPECT_FALSE(report::parseCampaignLog(unknown_type, "bad", log,
                                          &error));
    EXPECT_NE(error.find("unknown record type"), std::string::npos)
        << error;

    std::stringstream missing_field(
        "{\"type\":\"trigger\",\"kind\":\"branch-mispred\"}\n");
    EXPECT_FALSE(report::parseCampaignLog(missing_field, "bad", log,
                                          &error));
    EXPECT_NE(error.find("missing field"), std::string::npos)
        << error;

    std::stringstream negative_field(
        "{\"type\":\"trigger\",\"kind\":\"k\",\"windows\":-1,"
        "\"training_overhead\":0,\"effective_overhead\":0}\n");
    EXPECT_FALSE(report::parseCampaignLog(negative_field, "bad",
                                          log, &error));
    EXPECT_NE(error.find("non-negative"), std::string::npos)
        << error;

    std::stringstream no_summary(
        "{\"type\":\"epoch\",\"epoch\":0,\"iterations\":1,"
        "\"coverage_points\":1,\"distinct_bugs\":0,"
        "\"corpus_size\":0,\"wall_seconds\":0.1}\n");
    EXPECT_FALSE(report::parseCampaignLog(no_summary, "bad", log,
                                          &error));
    EXPECT_NE(error.find("summary"), std::string::npos) << error;
}

TEST(CampaignLogRoundTrip, PreservesFullRangeMasterSeed)
{
    std::stringstream log_text(
        "{\"type\":\"summary\",\"workers\":0,"
        "\"policy\":\"replicas\","
        "\"master_seed\":18446744073709551615,\"iterations\":0,"
        "\"simulations\":0,\"windows\":0,\"coverage_points\":0,"
        "\"distinct_bugs\":0,\"total_reports\":0,\"epochs\":0,"
        "\"corpus_size\":0,\"steals\":0,\"wall_seconds\":0.0,"
        "\"iters_per_sec\":0.0}\n");
    CampaignLog log;
    std::string error;
    ASSERT_TRUE(report::parseCampaignLog(log_text, "big", log,
                                         &error))
        << error;
    EXPECT_EQ(log.summary.master_seed,
              18446744073709551615ULL);
}

TEST(CampaignLogRoundTrip, AcceptsLegacyLogsWithoutEpochRecords)
{
    // Pre-epoch-record logs state epochs in the summary but carry
    // no epoch lines; the validator must not reject them.
    CampaignLog log = runAndParse(tinyCampaign(1, 250, 5), "old");
    log.epochs.clear();
    EXPECT_TRUE(validateCampaignLog(log).empty());
}

TEST(CampaignLogRoundTrip, SchedulerFieldsRoundTrip)
{
    CampaignOptions options = tinyCampaign(2, 500, 11);
    options.batch_iterations = 16;
    const CampaignLog log = runAndParse(options, "sched");

    EXPECT_EQ(log.summary.sched, "steal");
    EXPECT_EQ(log.summary.batch, 16u);
    // 500 iters at epoch 125 x 2 workers: ceil(125/16) = 8 batches
    // per shard per epoch, 2 epochs.
    EXPECT_EQ(log.summary.batches, 32u);
    EXPECT_LE(log.summary.batches_stolen, log.summary.batches);

    uint64_t stolen = 0;
    for (const auto &row : log.epochs)
        stolen += row.batches_stolen;
    EXPECT_EQ(stolen, log.summary.batches_stolen);
    EXPECT_TRUE(validateCampaignLog(log).empty());
}

TEST(CampaignLogRoundTrip, ValidatorCatchesStolenBatchMismatch)
{
    CampaignLog log = runAndParse(tinyCampaign(2, 500, 3), "steals");
    ASSERT_TRUE(validateCampaignLog(log).empty());
    log.summary.batches_stolen = log.summary.batches + 1;
    EXPECT_FALSE(validateCampaignLog(log).empty());
}

TEST(CampaignLogRoundTrip, AcceptsLegacyLogsWithoutSchedulerFields)
{
    // Pre-scheduler epoch and summary records carry none of the
    // batch fields; they must parse with zero defaults and validate.
    std::stringstream log_text(
        "{\"type\":\"worker\",\"worker\":0,\"config\":\"c\","
        "\"variant\":\"full\",\"iterations\":1,\"simulations\":1,"
        "\"windows\":0,\"coverage_points\":0,\"seeds_imported\":0,"
        "\"bugs\":0,\"active_seconds\":0.1}\n"
        "{\"type\":\"epoch\",\"epoch\":0,\"iterations\":1,"
        "\"coverage_points\":0,\"distinct_bugs\":0,"
        "\"corpus_size\":0,\"wall_seconds\":0.1}\n"
        "{\"type\":\"summary\",\"workers\":1,"
        "\"policy\":\"replicas\",\"master_seed\":1,"
        "\"iterations\":1,\"simulations\":1,\"windows\":0,"
        "\"coverage_points\":0,\"distinct_bugs\":0,"
        "\"total_reports\":0,\"epochs\":1,\"corpus_size\":0,"
        "\"steals\":0,\"wall_seconds\":0.1,"
        "\"iters_per_sec\":10.0}\n");
    CampaignLog log;
    std::string error;
    ASSERT_TRUE(report::parseCampaignLog(log_text, "legacy", log,
                                         &error))
        << error;
    EXPECT_EQ(log.summary.sched, "");
    EXPECT_EQ(log.summary.batches, 0u);
    EXPECT_EQ(log.epochs.at(0).batches_stolen, 0u);
    EXPECT_TRUE(validateCampaignLog(log).empty());
}

// --- Heartbeat records --------------------------------------------------

TEST(CampaignLogRoundTrip, HeartbeatsRoundTripAndValidate)
{
    obs::resetForTest();
    CampaignOptions options = tinyCampaign(2, 500, 7);
    options.heartbeat_sec = 0.002;
    CampaignOrchestrator orchestrator(options);
    orchestrator.run();

    std::stringstream jsonl;
    orchestrator.writeJsonlWithHeartbeats(jsonl);
    CampaignLog log;
    std::string error;
    ASSERT_TRUE(report::parseCampaignLog(jsonl, "beat", log, &error))
        << error;

    // The emitter always flushes a final record at stop(), so even a
    // run shorter than the interval heartbeats at least once, and
    // the last record carries the finished campaign's totals.
    ASSERT_FALSE(log.heartbeats.empty());
#ifndef DEJAVUZZ_NO_TELEMETRY
    EXPECT_EQ(log.heartbeats.back().counter(obs::Ctr::Iterations),
              500u);
    EXPECT_GT(log.heartbeats.back().histCount(obs::Hist::BatchNs),
              0u);
#endif
    EXPECT_TRUE(validateCampaignLog(log).empty());

    // The heartbeat-free view stays bit-reproducible: no heartbeat
    // lines leak into writeJsonl().
    std::stringstream plain;
    orchestrator.writeJsonl(plain);
    EXPECT_EQ(plain.str().find("\"type\":\"heartbeat\""),
              std::string::npos);
}

/** Two-heartbeat log with an all-zero summary, for hand-corruption. */
std::string
syntheticHeartbeatLog(uint64_t seq0, double wall0,
                      const obs::TelemetrySnapshot &first,
                      uint64_t seq1, double wall1,
                      const obs::TelemetrySnapshot &second)
{
    return obs::formatHeartbeatRecord(seq0, wall0, first) + "\n" +
           obs::formatHeartbeatRecord(seq1, wall1, second) + "\n" +
           "{\"type\":\"worker\",\"worker\":0,\"config\":\"c\","
           "\"variant\":\"full\",\"iterations\":0,"
           "\"simulations\":0,\"windows\":0,\"coverage_points\":0,"
           "\"seeds_imported\":0,\"bugs\":0,"
           "\"active_seconds\":0.0}\n"
           "{\"type\":\"summary\",\"workers\":1,"
           "\"policy\":\"replicas\",\"master_seed\":1,"
           "\"iterations\":0,\"simulations\":0,\"windows\":0,"
           "\"coverage_points\":0,\"distinct_bugs\":0,"
           "\"total_reports\":0,\"epochs\":0,\"corpus_size\":0,"
           "\"steals\":0,\"wall_seconds\":0.0,"
           "\"iters_per_sec\":0.0}\n";
}

std::vector<std::string>
problemsOf(const std::string &text)
{
    std::stringstream is(text);
    CampaignLog log;
    std::string error;
    EXPECT_TRUE(report::parseCampaignLog(is, "hb", log, &error))
        << error;
    return validateCampaignLog(log);
}

bool
hasProblem(const std::vector<std::string> &problems,
           const std::string &needle)
{
    for (const auto &p : problems)
        if (p.find(needle) != std::string::npos)
            return true;
    return false;
}

TEST(CampaignLogRoundTrip, ValidatorRejectsCorruptedHeartbeats)
{
    const auto ctr = [](obs::Ctr c) {
        return static_cast<unsigned>(c);
    };
    obs::TelemetrySnapshot first;
    first.counters[ctr(obs::Ctr::Iterations)] = 10;
    first.counters[ctr(obs::Ctr::StealAttempts)] = 4;
    first.counters[ctr(obs::Ctr::StealHits)] = 2;
    first.hists[static_cast<unsigned>(obs::Hist::BatchNs)] = {
        2, 3000, {}};
    obs::TelemetrySnapshot second = first;
    second.counters[ctr(obs::Ctr::Iterations)] = 20;

    // Control: the uncorrupted pair validates clean.
    EXPECT_TRUE(
        problemsOf(syntheticHeartbeatLog(0, 1.0, first, 1, 2.0,
                                         second))
            .empty());

    // A cumulative counter going backwards.
    obs::TelemetrySnapshot decreased = second;
    decreased.counters[ctr(obs::Ctr::Iterations)] = 5;
    EXPECT_TRUE(hasProblem(
        problemsOf(syntheticHeartbeatLog(0, 1.0, first, 1, 2.0,
                                         decreased)),
        "counter \"iterations\" decreases"));

    // Wall clock running backwards.
    EXPECT_TRUE(hasProblem(
        problemsOf(syntheticHeartbeatLog(0, 2.0, first, 1, 1.0,
                                         second)),
        "wall_seconds regresses"));

    // Sequence numbers must strictly increase.
    EXPECT_TRUE(hasProblem(
        problemsOf(syntheticHeartbeatLog(3, 1.0, first, 3, 2.0,
                                         second)),
        "seq values are not strictly increasing"));

    // More successful steals than attempts is impossible.
    obs::TelemetrySnapshot impossible = second;
    impossible.counters[ctr(obs::Ctr::StealHits)] = 9;
    EXPECT_TRUE(hasProblem(
        problemsOf(syntheticHeartbeatLog(0, 1.0, first, 1, 2.0,
                                         impossible)),
        "steal_hits exceeds steal_attempts"));

    // Histogram totals are cumulative too.
    obs::TelemetrySnapshot shrunk = second;
    shrunk.hists[static_cast<unsigned>(obs::Hist::BatchNs)].sum = 1;
    EXPECT_TRUE(hasProblem(
        problemsOf(syntheticHeartbeatLog(0, 1.0, first, 1, 2.0,
                                         shrunk)),
        "histogram \"batch_ns\" sum decreases"));
}

TEST(CampaignLogRoundTrip, ParserRejectsIncompleteHeartbeats)
{
    CampaignLog log;
    std::string error;
    std::stringstream missing(
        "{\"type\":\"heartbeat\",\"seq\":0,"
        "\"wall_seconds\":0.5}\n");
    EXPECT_FALSE(
        report::parseCampaignLog(missing, "bad", log, &error));
    EXPECT_NE(error.find("missing field"), std::string::npos)
        << error;
}

// --- Comparison rendering -----------------------------------------------

TEST(ComparisonReport, MarkdownCoversEveryAxis)
{
    std::vector<CampaignLog> logs;
    logs.push_back(runAndParse(tinyCampaign(2, 750, 7), "alpha"));
    logs.push_back(runAndParse(tinyCampaign(2, 750, 9), "beta"));

    const std::string md =
        report::renderComparison(logs, ReportFormat::Markdown);
    EXPECT_NE(md.find("# DejaVuzz campaign comparison"),
              std::string::npos);
    EXPECT_NE(md.find("`alpha`"), std::string::npos);
    EXPECT_NE(md.find("`beta`"), std::string::npos);
    EXPECT_NE(md.find("## Campaign overview"), std::string::npos);
    EXPECT_NE(md.find("## Scheduler occupancy"), std::string::npos);
    EXPECT_NE(md.find("## Per-config totals (Table 2 axes)"),
              std::string::npos);
    EXPECT_NE(md.find("Transient-window training overhead"),
              std::string::npos);
    EXPECT_NE(md.find("Cross-campaign bug matrix"),
              std::string::npos);
    EXPECT_NE(md.find("## Coverage growth (Fig 7 axes)"),
              std::string::npos);
    EXPECT_NE(md.find("time-to-first-bug"), std::string::npos);
}

TEST(ComparisonReport, CsvSectionsAreWellFormed)
{
    std::vector<CampaignLog> logs;
    logs.push_back(runAndParse(tinyCampaign(1, 375, 5), "solo"));

    const std::string csv =
        report::renderComparison(logs, ReportFormat::Csv);
    EXPECT_NE(csv.find("# section: Campaign overview"),
              std::string::npos);
    EXPECT_NE(csv.find("# section: Coverage growth (Fig 7 axes)"),
              std::string::npos);
    // Overview data row leads with the campaign label.
    EXPECT_NE(csv.find("\nsolo,"), std::string::npos);
}

} // namespace
} // namespace dejavuzz
