/**
 * @file
 * Planted-bug validation (Table 5): each of B1..B5 plus the Meltdown
 * forwarding behaviour is exercised on a config with the bug enabled
 * and its fixed counterpart, end-to-end through the pipeline
 * machinery the fuzzer uses.
 */

#include <gtest/gtest.h>

#include "core/phases.hh"
#include "core/stimgen.hh"
#include "harness/dualsim.hh"
#include "isa/builder.hh"
#include "swapmem/layout.hh"
#include "swapmem/packet.hh"
#include "uarch/core.hh"
#include "uarch/config.hh"

namespace dejavuzz {
namespace {

using core::Seed;
using core::StimGen;
using core::TestCase;
using core::TriggerKind;
using harness::DualSim;
using harness::SimOptions;
using harness::StimulusData;
using isa::Op;
using namespace isa::reg;
using swapmem::PacketKind;
using swapmem::SwapPacket;
using swapmem::SwapSchedule;

SwapPacket
packetOf(isa::ProgBuilder &prog, const char *label, PacketKind kind)
{
    SwapPacket packet;
    packet.label = label;
    packet.kind = kind;
    packet.instrs = prog.finish();
    return packet;
}

StimulusData
stimWith(uint64_t seed)
{
    Rng rng(seed);
    return StimulusData::random(rng);
}

/**
 * B1 Meltdown-Sampling: a masked (out-of-range) secret address faults
 * architecturally but the truncated load-unit wire samples the warm
 * secret line transiently. Present on XiangShan, absent on BOOM.
 */
TEST(PlantedBugs, B1AddressTruncationSamplesSecret)
{
    auto runCase = [](const uarch::CoreConfig &cfg) {
        // Warm the secret, then transiently access it through the
        // masked address inside an access-fault window.
        isa::ProgBuilder warm(swapmem::kSwapBase);
        warm.la(s1, swapmem::kSecretAddr);
        warm.ld(t5, s1, 0);
        warm.la(t2, swapmem::kLeakArrayAddr + 0x100);
        warm.ld(t5, t2, 0x400); // probe-page TLB
        warm.swapnext();

        isa::ProgBuilder prog(swapmem::kSwapBase);
        prog.la(s1, swapmem::kSecretAddr);
        prog.li(t6, 1ULL << 63);
        prog.emit(Op::OR, s2, s1, t6, 0); // masked illegal address
        prog.la(t2, swapmem::kLeakArrayAddr + 0x100);
        prog.li(t5, 1);
        // Older slow chain: delays the fault's commit, widening the
        // window for the dependent encode.
        prog.la(t4, swapmem::kOperandAddr);
        prog.ld(a5, t4, 0);
        prog.emit(Op::DIV, a5, a5, t5, 0);
        prog.ld(s0, s2, 0); // faults; forwards via truncation (B1)
        prog.andi(t1, s0, 1);
        prog.slli(t1, t1, 6);
        prog.add(t2, t2, t1);
        prog.ld(t3, t2, 0); // encode
        for (int i = 0; i < 4; ++i)
            prog.nop();
        prog.swapnext();

        SwapSchedule schedule;
        schedule.packets.push_back(
            packetOf(warm, "warm", PacketKind::WindowTrain));
        schedule.packets.push_back(
            packetOf(prog, "transient", PacketKind::Transient));
        schedule.transient_prot = swapmem::SecretProt::Pmp;

        DualSim sim(cfg);
        SimOptions options;
        options.mode = ift::IftMode::DiffIFT;
        options.taint_log = true;
        options.sinks = true;
        auto result = sim.runDual(schedule, stimWith(42), options);
        // Exploitable when the probe line differs between variants:
        // look for a live tainted d-cache line beyond the secret's own.
        size_t live_tainted = 0;
        for (const auto &sink : result.dut0.sinks) {
            if (sink.module() == "dcache")
                live_tainted = sink.liveTaintedEntries();
        }
        return live_tainted;
    };

    EXPECT_GE(runCase(uarch::xiangshanMinimalConfig()), 2u)
        << "B1 present: masked access samples the secret";
    EXPECT_LE(runCase(uarch::smallBoomConfig()), 1u)
        << "no truncation: only the warmed secret line is tainted";
}

/**
 * B2 Phantom-RSB: transient calls overwrite RAS entries; partial
 * recovery (TOS + top entry only) leaves corrupted tainted entries
 * below the TOS alive. Full recovery cleans them.
 */
TEST(PlantedBugs, B2RasPartialRestoreLeavesCorruption)
{
    auto runCase = [](bool partial_restore) {
        uarch::CoreConfig cfg = uarch::smallBoomConfig();
        cfg.bug_b2_ras_partial_restore = partial_restore;

        isa::ProgBuilder warm(swapmem::kSwapBase);
        warm.la(s1, swapmem::kSecretAddr);
        warm.ld(t5, s1, 0);
        warm.swapnext();

        isa::ProgBuilder prog(swapmem::kSwapBase);
        prog.la(s1, swapmem::kSecretAddr);
        prog.la(t4, swapmem::kOperandAddr);
        prog.li(t5, 1);
        // Architectural calls: committed RAS depth 3 (live entries).
        for (int i = 0; i < 3; ++i) {
            isa::Label cont = prog.newLabel();
            prog.jal(1, cont);
            prog.nop();
            prog.bind(cont);
        }
        // Slow branch condition opens the window.
        prog.ld(a0, t4, 0);
        prog.emit(Op::DIV, a0, a0, t5, 0);
        prog.emit(Op::DIV, a0, a0, t5, 0);
        isa::Label exit_lbl = prog.newLabel();
        prog.branch(Op::BNE, a0, zero, exit_lbl); // taken, pred NT
        // Transient window: secret-dependent call spray wraps the RAS
        // and overwrites the live below-TOS entries.
        prog.lb(s0, s1, 0);
        prog.andi(t1, s0, 1);
        isa::Label skip = prog.newLabel();
        prog.branch(Op::BEQ, t1, zero, skip);
        for (unsigned i = 0; i < cfg.ras_entries; ++i)
            prog.emit(Op::JAL, 1, 0, 0, 4);
        prog.bind(skip);
        for (int i = 0; i < 4; ++i)
            prog.nop();
        prog.bind(exit_lbl);
        prog.swapnext();

        SwapSchedule schedule;
        schedule.packets.push_back(
            packetOf(warm, "warm", PacketKind::WindowTrain));
        schedule.packets.push_back(
            packetOf(prog, "transient", PacketKind::Transient));

        StimulusData data = stimWith(7);
        data.operands[0] = 1;

        DualSim sim(cfg);
        SimOptions options;
        options.mode = ift::IftMode::DiffIFT;
        options.sinks = true;
        auto result = sim.runDual(schedule, data, options);
        size_t live_tainted = 0;
        for (const auto &sink : result.dut0.sinks) {
            if (sink.module() == "ras")
                live_tainted = sink.liveTaintedEntries();
        }
        return live_tainted;
    };

    EXPECT_GT(runCase(true), 0u)
        << "B2: below-TOS corruption survives partial recovery";
    EXPECT_EQ(runCase(false), 0u)
        << "full recovery restores every entry";
}

/**
 * B3 Phantom-BTB: an exception flush racing a staged indirect-jump
 * correction writes the correction into the faulting PC's BTB entry.
 * Discriminator: after the run, the BTB holds an entry *tagged with
 * the faulting load's PC* - something no legitimate update produces.
 */
TEST(PlantedBugs, B3BtbRaceMisdirectsUpdate)
{
    auto runCase = [](bool race_bug, unsigned pad_nops) {
        uarch::CoreConfig cfg = uarch::smallBoomConfig();
        cfg.bug_b3_btb_race = race_bug;

        isa::ProgBuilder prog(swapmem::kSwapBase);
        prog.la(s1, swapmem::kSecretAddr);
        prog.la(s2, swapmem::kUnmappedAddr);
        prog.la(s5, swapmem::kSwapBase + 0x2c0); // jump pad
        prog.li(t5, 1);
        uint64_t fault_pc = prog.here();
        prog.ld(t1, s2, 0); // page fault -> trap countdown
        prog.lb(s0, s1, 0); // secret (younger, transient)
        prog.andi(t4, s0, 1);
        prog.slli(t4, t4, 3);
        prog.add(t4, t4, s5);
        // Serial chain extension: each hop delays the jump's
        // resolution by one cycle, sweeping it across the flush.
        for (unsigned i = 0; i < pad_nops; ++i)
            prog.emit(Op::ADDI, t4, t4, 0, 0);
        prog.jalr(0, t4, 0); // indirect jump, secret target
        prog.padTo(swapmem::kSwapBase + 0x2c0);
        prog.padTo(swapmem::kSwapBase + 0x300);
        prog.swapnext();

        isa::ProgBuilder warm(swapmem::kSwapBase);
        warm.la(s1, swapmem::kSecretAddr);
        warm.ld(t5, s1, 0);
        warm.swapnext();

        SwapSchedule schedule;
        schedule.packets.push_back(
            packetOf(warm, "warm", PacketKind::WindowTrain));
        schedule.packets.push_back(
            packetOf(prog, "transient", PacketKind::Transient));

        // Drive the core directly so the BTB can be inspected.
        uarch::Core core(cfg);
        swapmem::Memory mem;
        StimulusData data = stimWith(21);
        mem.installSecret(data.secret.data(), data.secret.size());
        swapmem::SwapRuntime runtime(schedule);
        core.startSequence(runtime.start(mem));
        ift::TaintCtx ctx;
        ctx.begin(ift::IftMode::CellIFT, nullptr, nullptr);
        for (int cycle = 0; cycle < 1000; ++cycle) {
            auto ev = core.tick(mem, ctx, nullptr);
            if (ev.swap_next || ev.trapped) {
                uint64_t entry = runtime.advance(mem);
                if (runtime.done())
                    break;
                core.flushICache();
                core.startSequence(entry);
            }
        }
        ift::TV target;
        return core.btb.lookup(fault_pc, target);
    };

    unsigned buggy_hits = 0;
    unsigned fixed_hits = 0;
    for (unsigned pad = 0; pad < 28; ++pad) {
        buggy_hits += runCase(true, pad) ? 1 : 0;
        fixed_hits += runCase(false, pad) ? 1 : 0;
    }
    EXPECT_GT(buggy_hits, 0u)
        << "B3: some alignment lands the racing BTB update";
    EXPECT_EQ(fixed_hits, 0u)
        << "without the race no load PC ever enters the BTB";
}

/**
 * B4 Spectre-Refetch: a transient fetch at a secret-dependent far
 * line occupies the refill engine past the squash; the first
 * post-window fetch is delayed secret-dependently.
 */
TEST(PlantedBugs, B4FetchRefillPreemption)
{
    auto runCase = [](bool preempt_bug) {
        uarch::CoreConfig cfg = uarch::smallBoomConfig();
        cfg.bug_b4_fetch_refill_preempt = preempt_bug;

        isa::ProgBuilder warm(swapmem::kSwapBase);
        warm.la(s1, swapmem::kSecretAddr);
        warm.ld(t5, s1, 0);
        warm.swapnext();

        isa::ProgBuilder prog(swapmem::kSwapBase);
        prog.la(s1, swapmem::kSecretAddr);
        prog.la(s6, swapmem::kSwapBase + 0x1000); // far line
        prog.la(t4, swapmem::kOperandAddr);
        prog.li(t5, 1);
        prog.ld(a0, t4, 0);
        prog.emit(Op::DIV, a0, a0, t5, 0);
        prog.emit(Op::DIV, a0, a0, t5, 0);
        prog.emit(Op::DIV, a0, a0, t5, 0);
        isa::Label exit_lbl = prog.newLabel();
        prog.branch(Op::BNE, a0, zero, exit_lbl); // taken, pred NT
        // Window: secret-gated, deliberately delayed far fetch so the
        // refill engine is still busy when the squash fires.
        prog.lb(s0, s1, 0);
        prog.andi(t1, s0, 1);
        isa::Label skip = prog.newLabel();
        prog.branch(Op::BEQ, t1, zero, skip);
        prog.emit(Op::DIV, t1, t1, t5, 0); // delay the far fetch
        prog.emit(Op::DIV, t1, t1, t5, 0);
        prog.add(t1, t1, s6);
        prog.jalr(0, t1, 0); // transient far fetch (icache miss)
        prog.bind(skip);
        for (int i = 0; i < 4; ++i)
            prog.nop();
        // Exit lives on a cold line: the post-squash fetch must wait
        // for the preempted refill engine (B4) on one variant only.
        prog.padTo(swapmem::kSwapBase + 0x340);
        prog.bind(exit_lbl);
        prog.swapnext();

        SwapSchedule schedule;
        schedule.packets.push_back(
            packetOf(warm, "warm", PacketKind::WindowTrain));
        schedule.packets.push_back(
            packetOf(prog, "transient", PacketKind::Transient));

        StimulusData data = stimWith(77);
        data.operands[0] = 1;

        DualSim sim(cfg);
        SimOptions options;
        options.mode = ift::IftMode::Off;
        auto result = sim.runDual(schedule, data, options);
        return result.dut0.contention.fetch_refill_wait !=
                   result.dut1.contention.fetch_refill_wait ||
               result.dut0.cycles != result.dut1.cycles;
    };

    EXPECT_TRUE(runCase(true))
        << "B4: post-squash refill delays fetch secret-dependently";
}

/**
 * B5 Spectre-Reload: transient cache-hitting loads steal the load
 * write-back port from an in-flight architectural miss (XiangShan's
 * shared-port arbitration).
 */
TEST(PlantedBugs, B5SharedLoadWritebackPort)
{
    auto runCase = [](bool shared_port) {
        uarch::CoreConfig cfg = uarch::xiangshanMinimalConfig();
        cfg.bug_b5_shared_load_wb = shared_port;

        isa::ProgBuilder warm(swapmem::kSwapBase);
        warm.la(s1, swapmem::kSecretAddr);
        warm.ld(t5, s1, 0);
        warm.la(t3, swapmem::kScratchAddr + 0x40);
        warm.ld(t5, t3, 0);
        warm.swapnext();

        isa::ProgBuilder prog(swapmem::kSwapBase);
        prog.la(s1, swapmem::kSecretAddr);
        prog.la(t3, swapmem::kScratchAddr + 0x40);
        prog.la(t4, swapmem::kOperandAddr);
        prog.li(t5, 1);
        // Architectural cold miss in flight across the window.
        prog.la(t1, swapmem::kScratchAddr + 0x200);
        prog.ld(s7, t1, 0);
        prog.ld(a0, t4, 0);
        prog.emit(Op::DIV, a0, a0, t5, 0);
        isa::Label exit_lbl = prog.newLabel();
        prog.branch(Op::BNE, a0, zero, exit_lbl); // taken, pred NT
        // Window: secret-gated burst of cache-hitting loads.
        prog.lb(s0, s1, 0);
        prog.andi(t1, s0, 1);
        isa::Label skip = prog.newLabel();
        prog.branch(Op::BEQ, t1, zero, skip);
        for (int i = 0; i < 6; ++i)
            prog.ld(s3, t3, 8 * i);
        prog.bind(skip);
        prog.bind(exit_lbl);
        prog.swapnext();
        // Post-window: consume the miss so its completion time shows.
        // (swapnext ends the packet; cycle counts reflect the stall.)

        SwapSchedule schedule;
        schedule.packets.push_back(
            packetOf(warm, "warm", PacketKind::WindowTrain));
        schedule.packets.push_back(
            packetOf(prog, "transient", PacketKind::Transient));

        StimulusData data = stimWith(123);
        data.operands[0] = 1;

        DualSim sim(cfg);
        SimOptions options;
        options.mode = ift::IftMode::Off;
        auto result = sim.runDual(schedule, data, options);
        return result.dut0.contention.load_wb_conflict !=
               result.dut1.contention.load_wb_conflict;
    };

    EXPECT_TRUE(runCase(true)) << "B5: port contention is secret-gated";
    EXPECT_FALSE(runCase(false))
        << "dedicated queue port: no contention";
}

/**
 * Meltdown forwarding switch: with forwarding disabled (a fixed
 * core), a faulting access yields no data and no taint.
 */
TEST(PlantedBugs, MeltdownForwardingSwitch)
{
    auto runCase = [](bool forwarding) {
        uarch::CoreConfig cfg = uarch::smallBoomConfig();
        cfg.meltdown_forwarding = forwarding;

        isa::ProgBuilder warm(swapmem::kSwapBase);
        warm.la(s1, swapmem::kSecretAddr);
        warm.ld(t5, s1, 0);
        warm.la(t2, swapmem::kLeakArrayAddr + 0x100);
        warm.ld(t5, t2, 0x400); // probe-page TLB
        warm.swapnext();

        isa::ProgBuilder prog(swapmem::kSwapBase);
        prog.la(s1, swapmem::kSecretAddr);
        prog.la(t2, swapmem::kLeakArrayAddr + 0x100);
        prog.li(t5, 1);
        prog.la(t4, swapmem::kOperandAddr);
        prog.ld(a5, t4, 0);
        prog.emit(Op::DIV, a5, a5, t5, 0);
        prog.ld(s0, s1, 0); // faults (PMP), window follows
        prog.andi(t1, s0, 1);
        prog.slli(t1, t1, 6);
        prog.add(t2, t2, t1);
        prog.ld(t3, t2, 0);
        for (int i = 0; i < 4; ++i)
            prog.nop();
        prog.swapnext();

        SwapSchedule schedule;
        schedule.packets.push_back(
            packetOf(warm, "warm", PacketKind::WindowTrain));
        schedule.packets.push_back(
            packetOf(prog, "transient", PacketKind::Transient));
        schedule.transient_prot = swapmem::SecretProt::Pmp;

        DualSim sim(cfg);
        SimOptions options;
        options.mode = ift::IftMode::DiffIFT;
        options.sinks = true;
        auto result = sim.runDual(schedule, stimWith(5), options);
        size_t live_tainted = 0;
        for (const auto &sink : result.dut0.sinks) {
            if (sink.module() == "dcache")
                live_tainted = sink.liveTaintedEntries();
        }
        return live_tainted;
    };

    EXPECT_GE(runCase(true), 2u)
        << "forwarding: secret line + encode line tainted";
    EXPECT_LE(runCase(false), 1u)
        << "fixed: only the warmed secret line carries taint";
}

} // namespace
} // namespace dejavuzz
