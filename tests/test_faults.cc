/**
 * @file
 * Tests of the fault-tolerant campaign runtime: the deterministic
 * failpoint registry (--inject-faults), the CRC integrity trailer
 * and atomic-write failpoint semantics, torn-generation fallback in
 * the campaign directory, the quarantine ledger, and the headline
 * guarantee — a campaign that retries injected batch failures stays
 * bit-identical to the same campaign with no faults armed.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign_dir.hh"
#include "campaign/faults.hh"
#include "campaign/io_util.hh"
#include "campaign/orchestrator.hh"
#include "campaign/quarantine.hh"
#include "obs/telemetry.hh"
#include "uarch/config.hh"

namespace dejavuzz {
namespace {

namespace fs = std::filesystem;
using campaign::CampaignOptions;
using campaign::CampaignOrchestrator;
using campaign::CampaignStats;
using campaign::Fault;
using campaign::QuarantineRecord;

/** Failpoints are process-wide: every test disarms on the way out so
 *  a failure cannot leak an armed registry into later suites. */
class FaultsTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        campaign::disarmFaults();
    }
};

CampaignOptions
smallCampaign(unsigned workers, uint64_t iters)
{
    CampaignOptions options;
    options.workers = workers;
    options.master_seed = 7;
    options.total_iterations = iters;
    options.epoch_iterations = 125;
    options.base_config = uarch::smallBoomConfig();
    return options;
}

/** Scratch directory, removed on scope exit. */
struct TempDir
{
    std::string path;
    TempDir()
    {
        path = (fs::temp_directory_path() /
                ("dvz_faults_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + std::to_string(counter()++)))
                   .string();
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    static unsigned &counter()
    {
        static unsigned n = 0;
        return n;
    }
};

// --- Spec parsing -------------------------------------------------------

TEST_F(FaultsTest, SpecParsesAndDisarms)
{
    std::string error;
    EXPECT_TRUE(campaign::armFaults(
        "seed=9,batch-throw=0.25,enospc=1:2", &error))
        << error;
    EXPECT_TRUE(campaign::faultsArmed());
    EXPECT_TRUE(campaign::armFaults("", &error)) << error;
    EXPECT_FALSE(campaign::faultsArmed());
    EXPECT_FALSE(campaign::shouldFail(Fault::BatchThrow));
}

TEST_F(FaultsTest, SpecRejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(campaign::armFaults("bogus-kind=1", &error));
    EXPECT_NE(error.find("unknown failpoint"), std::string::npos);
    EXPECT_FALSE(campaign::armFaults("batch-throw", &error));
    EXPECT_FALSE(campaign::armFaults("batch-throw=nope", &error));
    EXPECT_FALSE(campaign::armFaults("seed=-3,enospc=1", &error));
    EXPECT_FALSE(campaign::armFaults("enospc=1:1.5", &error));
    // A failed parse must leave the registry disarmed.
    EXPECT_FALSE(campaign::faultsArmed());
    EXPECT_FALSE(campaign::shouldFail(Fault::Enospc));
}

TEST_F(FaultsTest, FiringSequenceIsSeededAndCapped)
{
    const std::string spec = "seed=42,batch-throw=0.5";
    std::vector<bool> first, second;
    ASSERT_TRUE(campaign::armFaults(spec));
    for (int i = 0; i < 64; ++i)
        first.push_back(campaign::shouldFail(Fault::BatchThrow));
    ASSERT_TRUE(campaign::armFaults(spec));
    for (int i = 0; i < 64; ++i)
        second.push_back(campaign::shouldFail(Fault::BatchThrow));
    EXPECT_EQ(first, second);
    // A different seed rolls a different sequence (with 64 draws at
    // p=0.5 a collision is a 2^-64 event, i.e. a real bug).
    ASSERT_TRUE(campaign::armFaults("seed=43,batch-throw=0.5"));
    std::vector<bool> other;
    for (int i = 0; i < 64; ++i)
        other.push_back(campaign::shouldFail(Fault::BatchThrow));
    EXPECT_NE(first, other);

    ASSERT_TRUE(campaign::armFaults("seed=1,enospc=1:3"));
    unsigned fired = 0;
    for (int i = 0; i < 32; ++i)
        fired += campaign::shouldFail(Fault::Enospc) ? 1 : 0;
    EXPECT_EQ(fired, 3u);
    EXPECT_EQ(campaign::faultsFired(), 3u);
}

// --- Integrity trailer --------------------------------------------------

TEST_F(FaultsTest, TrailerRoundTripsAndCatchesCorruption)
{
    const std::string payload = "campaign artifact bytes\x00\x01\x02";
    const std::string file = campaign::withTrailer(payload, 17);
    ASSERT_EQ(file.size(), payload.size() + campaign::kTrailerBytes);

    std::string out;
    uint64_t gen = 0;
    std::string error;
    ASSERT_TRUE(campaign::splitTrailer(file, out, gen, &error))
        << error;
    EXPECT_EQ(out, payload);
    EXPECT_EQ(gen, 17u);

    // One flipped payload bit must fail the CRC.
    std::string flipped = file;
    flipped[3] = static_cast<char>(flipped[3] ^ 0x10);
    EXPECT_FALSE(
        campaign::splitTrailer(flipped, out, gen, &error));
    EXPECT_NE(error.find("CRC"), std::string::npos);

    // Truncation anywhere must fail (payload-length mismatch or a
    // file shorter than the trailer itself).
    EXPECT_FALSE(campaign::splitTrailer(
        file.substr(0, file.size() - 1), out, gen, &error));
    EXPECT_FALSE(campaign::splitTrailer(
        file.substr(0, campaign::kTrailerBytes - 1), out, gen,
        &error));

    // A wrong magic is not a trailer at all.
    std::string bad_magic = file;
    bad_magic[payload.size()] ^= 0x7f;
    EXPECT_FALSE(
        campaign::splitTrailer(bad_magic, out, gen, &error));
}

TEST_F(FaultsTest, AtomicWriteFailpointSemantics)
{
    TempDir dir;
    const std::string path = dir.path + "/artifact.bin";
    const std::string data =
        campaign::withTrailer(std::string(4096, 'x'), 1);
    std::string error;

    // enospc: the write fails loudly and leaves no debris.
    ASSERT_TRUE(campaign::armFaults("seed=1,enospc=1:1"));
    EXPECT_FALSE(campaign::atomicWriteFile(path, data, &error));
    EXPECT_NE(error.find("No space left"), std::string::npos);
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));

    // short-write: reports success but the target is truncated —
    // exactly what the CRC trailer exists to catch.
    ASSERT_TRUE(campaign::armFaults("seed=1,short-write=1:1"));
    EXPECT_TRUE(campaign::atomicWriteFile(path, data, &error));
    std::string file;
    ASSERT_TRUE(campaign::readWholeFile(path, file, &error));
    EXPECT_LT(file.size(), data.size());
    std::string payload;
    uint64_t gen = 0;
    EXPECT_FALSE(
        campaign::splitTrailer(file, payload, gen, nullptr));

    // torn-rename: ditto, via a truncated rename target.
    ASSERT_TRUE(campaign::armFaults("seed=1,torn-rename=1:1"));
    EXPECT_TRUE(campaign::atomicWriteFile(path, data, &error));
    ASSERT_TRUE(campaign::readWholeFile(path, file, &error));
    EXPECT_LT(file.size(), data.size());
    EXPECT_FALSE(fs::exists(path + ".tmp"));

    // Disarmed: the write is whole and the trailer validates.
    campaign::disarmFaults();
    EXPECT_TRUE(campaign::atomicWriteFile(path, data, &error));
    ASSERT_TRUE(campaign::readWholeFile(path, file, &error));
    EXPECT_TRUE(campaign::splitTrailer(file, payload, gen, &error))
        << error;
    EXPECT_EQ(gen, 1u);
}

// --- Torn-generation fallback -------------------------------------------

TEST_F(FaultsTest, LoaderFallsBackToPreviousGeneration)
{
    TempDir dir;
    CampaignOptions options = smallCampaign(2, 500);
    CampaignOrchestrator orchestrator(options);
    orchestrator.run();

    // Two complete generations, then tear the latest corpus.
    std::string error;
    ASSERT_TRUE(campaign::saveCampaignDir(dir.path, orchestrator,
                                          options, &error))
        << error;
    ASSERT_TRUE(campaign::saveCampaignDir(dir.path, orchestrator,
                                          options, &error))
        << error;
    const auto paths = campaign::campaignDirPaths(dir.path);
    ASSERT_TRUE(fs::exists(campaign::prevPath(paths.meta)));
    fs::resize_file(paths.corpus, fs::file_size(paths.corpus) / 2);

    campaign::LoadedCampaignDir loaded;
    std::string note;
    ASSERT_TRUE(campaign::loadCampaignDir(dir.path, loaded, &error,
                                          &note))
        << error;
    EXPECT_NE(note.find("generation"), std::string::npos) << note;
    EXPECT_EQ(loaded.meta.master_seed, options.master_seed);
    EXPECT_FALSE(loaded.corpus.entries.empty());

    // With both generations torn there is nothing left to trust.
    fs::resize_file(campaign::prevPath(paths.corpus), 8);
    EXPECT_FALSE(
        campaign::loadCampaignDir(dir.path, loaded, &error));
    EXPECT_NE(error.find("no complete save generation"),
              std::string::npos)
        << error;
}

// --- Quarantine ledger --------------------------------------------------

TEST_F(FaultsTest, QuarantineRoundTripsAndToleratesTornTail)
{
    TempDir dir;
    const std::string path = dir.path + "/quarantine.jsonl";

    std::vector<QuarantineRecord> records(2);
    records[0].worker = 1;
    records[0].batch = 42;
    records[0].attempts = 3;
    records[0].reason = "batch-deadline";
    records[0].tc.seed.id = 42;
    records[0].tc.seed.entropy = 0xdeadbeefcafef00dULL;
    records[1].worker = 0;
    records[1].batch = 7;
    records[1].attempts = 4;
    records[1].reason = "batch-throw: boom \"quoted\"";
    records[1].tc.seed.id = 43;
    records[1].tc.seed.entropy = 0x0123456789abcdefULL;

    std::string error;
    ASSERT_TRUE(campaign::appendQuarantine(path, records, &error))
        << error;

    std::vector<QuarantineRecord> loaded;
    std::string torn_note;
    ASSERT_TRUE(campaign::loadQuarantineFile(path, loaded, &error,
                                             &torn_note))
        << error;
    EXPECT_TRUE(torn_note.empty()) << torn_note;
    ASSERT_EQ(loaded.size(), records.size());
    for (size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(loaded[i].worker, records[i].worker);
        EXPECT_EQ(loaded[i].batch, records[i].batch);
        EXPECT_EQ(loaded[i].attempts, records[i].attempts);
        EXPECT_EQ(loaded[i].reason, records[i].reason);
        EXPECT_EQ(loaded[i].tc.seed.id, records[i].tc.seed.id);
        EXPECT_EQ(loaded[i].tc.seed.entropy,
                  records[i].tc.seed.entropy);
    }

    // A crash mid-append tears only the final line; the loader keeps
    // everything before it and reports the drop.
    {
        std::ofstream os(path, std::ios::app | std::ios::binary);
        os << "{\"type\":\"quarantine\",\"worker\":2,\"ba";
    }
    loaded.clear();
    ASSERT_TRUE(campaign::loadQuarantineFile(path, loaded, &error,
                                             &torn_note))
        << error;
    EXPECT_EQ(loaded.size(), records.size());
    EXPECT_FALSE(torn_note.empty());

    // Corruption anywhere *else* is not crash debris: strict fail.
    {
        std::ofstream os(path, std::ios::trunc | std::ios::binary);
        os << "{\"type\":\"quarantine\",\"worker\":2,\"ba\n";
        std::ostringstream rec;
        campaign::writeQuarantineRecord(rec, records[0]);
        os << rec.str();
    }
    EXPECT_FALSE(
        campaign::loadQuarantineFile(path, loaded, &error));

    // A missing ledger is simply empty.
    loaded.clear();
    EXPECT_TRUE(campaign::loadQuarantineFile(
        dir.path + "/absent.jsonl", loaded, &error));
    EXPECT_TRUE(loaded.empty());
}

// --- Retry determinism (the headline guarantee) -------------------------

TEST_F(FaultsTest, RetriedBatchesStayBitIdentical)
{
    // Retries re-execute the identical batch spec, so a campaign
    // whose batches are made to crash (and then retried) must land
    // on exactly the ledger and corpus of an undisturbed run.
    campaign::disarmFaults();
    CampaignOptions options = smallCampaign(2, 1500);
    options.batch_retries = 5;
    CampaignOrchestrator baseline(options);
    CampaignStats clean = baseline.run();
    ASSERT_GT(baseline.ledger().distinct(), 0u);

    ASSERT_TRUE(campaign::armFaults("seed=7,batch-throw=1:3"));
    CampaignOrchestrator faulted(options);
    CampaignStats stats = faulted.run();
    campaign::disarmFaults();

    EXPECT_EQ(stats.batch_retries, 3u);
    EXPECT_EQ(stats.batches_failed, 0u);
    EXPECT_EQ(stats.iterations, clean.iterations);
    EXPECT_EQ(stats.coverage_points, clean.coverage_points);
    EXPECT_EQ(stats.steals, clean.steals);
    EXPECT_EQ(stats.seeds_imported, clean.seeds_imported);

    auto ea = baseline.ledger().entries();
    auto eb = faulted.ledger().entries();
    ASSERT_EQ(ea.size(), eb.size());
    for (size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].report.key(), eb[i].report.key());
        EXPECT_EQ(ea[i].worker, eb[i].worker);
        EXPECT_EQ(ea[i].epoch, eb[i].epoch);
        EXPECT_EQ(ea[i].hits, eb[i].hits);
        EXPECT_EQ(ea[i].report.iteration, eb[i].report.iteration);
    }
    auto ka = baseline.corpus().snapshotKeys();
    auto kb = faulted.corpus().snapshotKeys();
    ASSERT_EQ(ka.size(), kb.size());
    for (size_t i = 0; i < ka.size(); ++i) {
        EXPECT_EQ(ka[i].gain, kb[i].gain);
        EXPECT_EQ(ka[i].worker, kb[i].worker);
        EXPECT_EQ(ka[i].seq, kb[i].seq);
        EXPECT_EQ(ka[i].config, kb[i].config);
    }
}

TEST_F(FaultsTest, AlwaysHangingBatchesDegradeGracefully)
{
    // Every attempt of every batch "hangs": retries exhaust, the
    // kind's failure streak trips the fleet-wide disable, and the
    // campaign ends early instead of spinning — with the failure
    // fully accounted (no phantom iterations folded in).
    CampaignOptions options = smallCampaign(1, 4000);
    options.batch_retries = 1;
    options.kind_disable_failures = 3;
    ASSERT_TRUE(campaign::armFaults("seed=3,batch-hang=1"));
    CampaignOrchestrator orchestrator(options);
    CampaignStats stats = orchestrator.run();
    campaign::disarmFaults();

    EXPECT_EQ(stats.iterations, 0u);
    EXPECT_GT(stats.batches_failed, 0u);
    EXPECT_GT(stats.batch_deadline_kills, 0u);
    EXPECT_EQ(stats.kinds_disabled, 1u);
    EXPECT_EQ(orchestrator.ledger().distinct(), 0u);
    // The epoch curve must agree with the rollups it validates
    // against: skipped iterations never appear as progress.
    for (const auto &sample : stats.epoch_curve)
        EXPECT_EQ(sample.iterations, 0u);
}

} // namespace
} // namespace dejavuzz
