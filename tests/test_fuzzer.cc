/**
 * @file
 * Integration tests of the DejaVuzz pipeline: Phase-1 window
 * triggering across all trigger kinds, training reduction, Phase-2
 * taint propagation + coverage, Phase-3 leak detection, the fuzzer
 * loop, and the SpecDoctor baseline.
 */

#include <gtest/gtest.h>

#include "baseline/specdoctor.hh"
#include "core/fuzzer.hh"
#include "core/phases.hh"
#include "core/stimgen.hh"
#include "harness/dualsim.hh"
#include "uarch/config.hh"

namespace dejavuzz {
namespace {

using core::Fuzzer;
using core::FuzzerOptions;
using core::Phase1;
using core::Phase2;
using core::Phase3;
using core::Seed;
using core::StimGen;
using core::TestCase;
using core::TriggerKind;
using harness::DualSim;
using harness::SimOptions;

/** Try up to @p attempts entropies to trigger a window of @p kind. */
bool
triggerKindOn(const uarch::CoreConfig &cfg, TriggerKind kind,
              unsigned attempts, TestCase *out = nullptr,
              bool reduce = true)
{
    DualSim sim(cfg);
    StimGen gen(cfg);
    SimOptions options;
    Phase1 phase1(sim, options);
    Rng rng(0xc0ffee ^ static_cast<uint64_t>(kind));
    for (unsigned i = 0; i < attempts; ++i) {
        Seed seed = gen.newSeed(rng, i, kind);
        TestCase tc = gen.generatePhase1(seed);
        bool triggered = false;
        phase1.run(tc, triggered, reduce);
        if (triggered) {
            if (out != nullptr)
                *out = std::move(tc);
            return true;
        }
    }
    return false;
}

class TriggerKinds : public ::testing::TestWithParam<int> {};

TEST_P(TriggerKinds, TriggersOnXiangShan)
{
    auto kind = static_cast<TriggerKind>(GetParam());
    EXPECT_TRUE(triggerKindOn(uarch::xiangshanMinimalConfig(), kind, 8))
        << core::triggerKindName(kind);
}

TEST_P(TriggerKinds, TriggersOnBoomExceptIllegal)
{
    auto kind = static_cast<TriggerKind>(GetParam());
    bool triggered = triggerKindOn(uarch::smallBoomConfig(), kind, 8);
    if (kind == TriggerKind::IllegalInstr) {
        EXPECT_FALSE(triggered)
            << "BOOM stalls illegal instructions at decode";
    } else {
        EXPECT_TRUE(triggered) << core::triggerKindName(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TriggerKinds,
    ::testing::Range(0, static_cast<int>(TriggerKind::kCount)),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string name = core::triggerKindName(
            static_cast<TriggerKind>(info.param));
        for (char &c : name) {
            if (c == '/' || c == '-')
                c = '_';
        }
        return name;
    });

TEST(Phase1, ReductionDropsAllTrainingForExceptionWindows)
{
    TestCase tc;
    ASSERT_TRUE(triggerKindOn(uarch::xiangshanMinimalConfig(),
                              TriggerKind::LoadPageFault, 8, &tc));
    EXPECT_EQ(tc.schedule.trainingOverhead(), 0u)
        << "exception windows need no training after reduction";
}

TEST(Phase1, MispredictWindowsKeepMinimalTraining)
{
    // Windows on the taken side require taken-training; reduction must
    // keep at least one training packet but drop the redundant ones.
    uarch::CoreConfig cfg = uarch::smallBoomConfig();
    DualSim sim(cfg);
    StimGen gen(cfg);
    SimOptions options;
    Phase1 phase1(sim, options);
    Rng rng(1234);
    unsigned kept_with_training = 0;
    unsigned windows = 0;
    for (unsigned i = 0; i < 24 && windows < 6; ++i) {
        Seed seed =
            gen.newSeed(rng, i, TriggerKind::ReturnMispredict);
        TestCase tc = gen.generatePhase1(seed);
        bool triggered = false;
        phase1.run(tc, triggered, true);
        if (!triggered)
            continue;
        ++windows;
        size_t training_packets = tc.schedule.packets.size() - 1;
        EXPECT_LE(training_packets, 2u);
        if (training_packets >= 1)
            ++kept_with_training;
        // Effective overhead excludes alignment nops: a handful of
        // real instructions at most.
        EXPECT_LE(tc.schedule.effectiveTrainingOverhead(), 8u);
    }
    ASSERT_GT(windows, 0u);
    EXPECT_GT(kept_with_training, 0u)
        << "return windows require RAS training";
}

TEST(Phase2, TaintPropagatesAndCoverageGrows)
{
    uarch::CoreConfig cfg = uarch::smallBoomConfig();
    TestCase tc;
    ASSERT_TRUE(triggerKindOn(cfg, TriggerKind::BranchMispredict, 12,
                              &tc));
    StimGen gen(cfg);
    gen.completeWindow(tc);

    DualSim sim(cfg);
    SimOptions options;
    options.mode = ift::IftMode::DiffIFT;
    ift::TaintCoverage coverage;
    auto ids = uarch::Core::registerModules(coverage, cfg);
    Phase2 phase2(sim, options, coverage, ids);

    // Several mutations: at least one must propagate taint.
    bool propagated = false;
    Rng rng(77);
    for (int i = 0; i < 8 && !propagated; ++i) {
        auto result = phase2.run(tc);
        if (result.window_ok && result.taint_propagated)
            propagated = true;
        else
            gen.mutateWindow(tc, rng.next());
    }
    EXPECT_TRUE(propagated);
    EXPECT_GT(coverage.points(), 0u);
}

TEST(Phase3, FindsLeakOnBuggyBoom)
{
    uarch::CoreConfig cfg = uarch::smallBoomConfig();
    StimGen gen(cfg);
    DualSim sim(cfg);
    SimOptions options;
    options.mode = ift::IftMode::DiffIFT;
    ift::TaintCoverage coverage;
    auto ids = uarch::Core::registerModules(coverage, cfg);
    Phase1 phase1(sim, options);
    Phase2 phase2(sim, options, coverage, ids);
    Phase3 phase3(sim, options, gen);

    Rng rng(4242);
    bool leak_found = false;
    for (unsigned i = 0; i < 40 && !leak_found; ++i) {
        Seed seed = gen.newSeed(rng, i);
        TestCase tc = gen.generatePhase1(seed);
        bool triggered = false;
        phase1.run(tc, triggered, true);
        if (!triggered)
            continue;
        gen.completeWindow(tc);
        for (int m = 0; m < 3 && !leak_found; ++m) {
            auto explored = phase2.run(tc);
            if (explored.window_ok && explored.taint_propagated) {
                auto verdict = phase3.run(tc, explored, true);
                if (verdict.leak)
                    leak_found = true;
            }
            gen.mutateWindow(tc, rng.next());
        }
    }
    EXPECT_TRUE(leak_found);
}

TEST(FuzzerLoop, RunsAndAccumulatesCoverage)
{
    FuzzerOptions options;
    options.master_seed = 7;
    Fuzzer fuzzer(uarch::smallBoomConfig(), options);
    fuzzer.run(60);
    const auto &stats = fuzzer.stats();
    EXPECT_EQ(stats.iterations, 60u);
    EXPECT_GT(stats.windows_triggered, 0u);
    EXPECT_GT(stats.coverage_points, 0u);
    EXPECT_EQ(stats.coverage_curve.size(), 60u);
    // Coverage curve is monotone.
    for (size_t i = 1; i < stats.coverage_curve.size(); ++i)
        EXPECT_GE(stats.coverage_curve[i], stats.coverage_curve[i - 1]);
}

TEST(FuzzerLoop, FindsBugsOnBoom)
{
    FuzzerOptions options;
    options.master_seed = 11;
    Fuzzer fuzzer(uarch::smallBoomConfig(), options);
    fuzzer.runUntilFirstBug(400);
    EXPECT_FALSE(fuzzer.stats().bugs.empty());
}

TEST(FuzzerLoop, DeterministicBySeed)
{
    FuzzerOptions options;
    options.master_seed = 99;
    Fuzzer a(uarch::smallBoomConfig(), options);
    Fuzzer b(uarch::smallBoomConfig(), options);
    a.run(30);
    b.run(30);
    EXPECT_EQ(a.stats().coverage_points, b.stats().coverage_points);
    EXPECT_EQ(a.stats().windows_triggered,
              b.stats().windows_triggered);
    EXPECT_EQ(a.stats().bugs.size(), b.stats().bugs.size());
}

TEST(SpecDoctorBaseline, FindsRollbacksAndCandidates)
{
    baseline::SpecDoctor::Options options;
    options.master_seed = 5;
    baseline::SpecDoctor specdoctor(uarch::smallBoomConfig(), options);
    specdoctor.run(120);
    const auto &stats = specdoctor.stats();
    EXPECT_GT(stats.rollbacks, 0u);
    // Window-type limitation: no access-fault / misalign / illegal /
    // return windows (generator + discard constraints).
    EXPECT_EQ(stats.window_count[static_cast<unsigned>(
                  TriggerKind::LoadAccessFault)], 0u);
    EXPECT_EQ(stats.window_count[static_cast<unsigned>(
                  TriggerKind::LoadMisalign)], 0u);
    EXPECT_EQ(stats.window_count[static_cast<unsigned>(
                  TriggerKind::IllegalInstr)], 0u);
    EXPECT_EQ(stats.window_count[static_cast<unsigned>(
                  TriggerKind::ReturnMispredict)], 0u);
}

} // namespace
} // namespace dejavuzz
