/**
 * @file
 * Differential-harness equivalence and pooling tests.
 *
 * The lockstep co-simulation strategy must produce bit-identical
 * DutResults to the legacy 4-pass value/diff pipeline — same sinks,
 * taint logs, trace logs, timing/state hashes — across randomized
 * schedules, real triggered windows and every IftMode. The fused
 * Phase-3 lane (resume from the Phase-2 transient-boundary snapshot)
 * must be bit-identical to a standalone sanitized run. And because
 * DualSim pools its cores/memories/result buffers, a reused instance
 * must be bit-identical to a freshly constructed one.
 */

#include <gtest/gtest.h>

#include "bench/poc_suite.hh"
#include "core/phases.hh"
#include "core/stimgen.hh"
#include "harness/dualsim.hh"
#include "uarch/config.hh"
#include "util/rng.hh"

namespace dejavuzz {
namespace {

using core::Phase1;
using core::Seed;
using core::StimGen;
using core::TestCase;
using core::TriggerKind;
using harness::DualResult;
using harness::DualSim;
using harness::DutResult;
using harness::SimOptions;

void
expectDutEqual(const DutResult &a, const DutResult &b,
               const char *what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.budget_exceeded, b.budget_exceeded);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.timing_hash, b.timing_hash);
    EXPECT_EQ(a.state_hash, b.state_hash);
    EXPECT_EQ(a.packet_start, b.packet_start);

    EXPECT_EQ(a.contention.fetch_refill_wait,
              b.contention.fetch_refill_wait);
    EXPECT_EQ(a.contention.load_wb_conflict,
              b.contention.load_wb_conflict);
    EXPECT_EQ(a.contention.fdiv_busy_wait, b.contention.fdiv_busy_wait);
    EXPECT_EQ(a.contention.div_busy_wait, b.contention.div_busy_wait);
    EXPECT_EQ(a.contention.mem_port_wait, b.contention.mem_port_wait);

    // Trace log.
    EXPECT_EQ(a.trace.cycles, b.trace.cycles);
    ASSERT_EQ(a.trace.commits.size(), b.trace.commits.size());
    for (size_t i = 0; i < a.trace.commits.size(); ++i) {
        EXPECT_EQ(a.trace.commits[i].cycle, b.trace.commits[i].cycle);
        EXPECT_EQ(a.trace.commits[i].pc, b.trace.commits[i].pc);
        EXPECT_EQ(a.trace.commits[i].op, b.trace.commits[i].op);
    }
    ASSERT_EQ(a.trace.squashes.size(), b.trace.squashes.size());
    for (size_t i = 0; i < a.trace.squashes.size(); ++i) {
        const auto &sa = a.trace.squashes[i];
        const auto &sb = b.trace.squashes[i];
        EXPECT_EQ(sa.cycle, sb.cycle);
        EXPECT_EQ(sa.open_cycle, sb.open_cycle);
        EXPECT_EQ(sa.cause, sb.cause);
        EXPECT_EQ(sa.exc, sb.exc);
        EXPECT_EQ(sa.pc, sb.pc);
        EXPECT_EQ(sa.spec_pc, sb.spec_pc);
        EXPECT_EQ(sa.flushed, sb.flushed);
        EXPECT_EQ(sa.transient_executed, sb.transient_executed);
    }
    ASSERT_EQ(a.trace.rob_io.size(), b.trace.rob_io.size());
    for (size_t i = 0; i < a.trace.rob_io.size(); ++i) {
        EXPECT_EQ(a.trace.rob_io[i].cycle, b.trace.rob_io[i].cycle);
        EXPECT_EQ(a.trace.rob_io[i].enqueued,
                  b.trace.rob_io[i].enqueued);
        EXPECT_EQ(a.trace.rob_io[i].committed,
                  b.trace.rob_io[i].committed);
    }

    // Taint log — the bit-exact diffIFT shadow state per cycle.
    ASSERT_EQ(a.taint_log.cycles.size(), b.taint_log.cycles.size());
    for (size_t i = 0; i < a.taint_log.cycles.size(); ++i) {
        const auto &ca = a.taint_log.cycles[i];
        const auto &cb = b.taint_log.cycles[i];
        EXPECT_EQ(ca.cycle, cb.cycle);
        ASSERT_EQ(ca.count, cb.count) << "taint-log cycle " << ca.cycle;
        EXPECT_EQ(ca.taintedRegs(), cb.taintedRegs());
        EXPECT_EQ(ca.taintSum(), cb.taintSum());
        const auto *sa = a.taint_log.samplesBegin(ca);
        const auto *sb = b.taint_log.samplesBegin(cb);
        for (uint32_t m = 0; m < ca.count; ++m) {
            EXPECT_EQ(sa[m].module_id, sb[m].module_id);
            EXPECT_EQ(sa[m].tainted_regs, sb[m].tainted_regs)
                << "cycle " << ca.cycle << " module "
                << sa[m].module_id;
            EXPECT_EQ(sa[m].taint_bits, sb[m].taint_bits)
                << "cycle " << ca.cycle << " module "
                << sa[m].module_id;
        }
    }

    // Sink snapshots.
    ASSERT_EQ(a.sinks.size(), b.sinks.size());
    for (size_t i = 0; i < a.sinks.size(); ++i) {
        EXPECT_EQ(a.sinks[i].id, b.sinks[i].id);
        EXPECT_EQ(a.sinks[i].annotated, b.sinks[i].annotated);
        EXPECT_EQ(a.sinks[i].taint, b.sinks[i].taint)
            << "sink " << a.sinks[i].label();
        EXPECT_EQ(a.sinks[i].live, b.sinks[i].live)
            << "sink " << a.sinks[i].label();
    }
}

void
expectDualEqual(const DualResult &a, const DualResult &b)
{
    expectDutEqual(a.dut0, b.dut0, "dut0");
    expectDutEqual(a.dut1, b.dut1, "dut1");
}

SimOptions
fullOptions(ift::IftMode mode, bool lockstep)
{
    SimOptions options;
    options.mode = mode;
    options.taint_log = true;
    options.sinks = true;
    options.lockstep_diff = lockstep;
    return options;
}

/** Generate Phase-1-triggered, window-completed test cases. */
std::vector<TestCase>
triggeredCases(const uarch::CoreConfig &cfg, unsigned want)
{
    DualSim sim(cfg);
    StimGen gen(cfg);
    Phase1 phase1(sim, SimOptions{});
    Rng rng(0xd0a1);
    std::vector<TestCase> cases;
    for (unsigned i = 0; i < 64 && cases.size() < want; ++i) {
        Seed seed = gen.newSeed(rng, i);
        TestCase tc = gen.generatePhase1(seed);
        bool triggered = false;
        phase1.run(tc, triggered, true);
        if (!triggered)
            continue;
        gen.completeWindow(tc);
        cases.push_back(std::move(tc));
    }
    return cases;
}

TEST(DualSimEquivalence, LockstepMatchesFourPassOnPocSuite)
{
    auto cfg = uarch::smallBoomConfig();
    DualSim lockstep_sim(cfg);
    DualSim fourpass_sim(cfg);
    for (const auto &poc : bench::pocSuite()) {
        SCOPED_TRACE(poc.name);
        auto a = lockstep_sim.runDual(
            poc.schedule, poc.data,
            fullOptions(ift::IftMode::DiffIFT, true));
        auto b = fourpass_sim.runDual(
            poc.schedule, poc.data,
            fullOptions(ift::IftMode::DiffIFT, false));
        EXPECT_EQ(a.sim_passes, 2u);
        EXPECT_EQ(b.sim_passes, 4u);
        expectDualEqual(a, b);
    }
}

TEST(DualSimEquivalence, LockstepMatchesFourPassOnTriggeredWindows)
{
    for (const auto &cfg : {uarch::smallBoomConfig(),
                            uarch::xiangshanMinimalConfig()}) {
        SCOPED_TRACE(cfg.name);
        auto cases = triggeredCases(cfg, 6);
        ASSERT_FALSE(cases.empty());
        DualSim lockstep_sim(cfg);
        DualSim fourpass_sim(cfg);
        for (size_t i = 0; i < cases.size(); ++i) {
            SCOPED_TRACE(i);
            auto a = lockstep_sim.runDual(
                cases[i].schedule, cases[i].data,
                fullOptions(ift::IftMode::DiffIFT, true));
            auto b = fourpass_sim.runDual(
                cases[i].schedule, cases[i].data,
                fullOptions(ift::IftMode::DiffIFT, false));
            expectDualEqual(a, b);
        }
    }
}

TEST(DualSimEquivalence, CheckpointIntervalSweepIsBitIdentical)
{
    // The checkpoint cadence is a pure time/space trade-off; any
    // interval must replay/redo to the same bits. The whole-run
    // interval is the regression guard for rollback state the undo
    // log does not cover (e.g. the secret protection a packet
    // advance flips before a divergence forces a replay across it).
    auto cfg = uarch::smallBoomConfig();
    DualSim fourpass_sim(cfg);
    for (const auto &poc : bench::pocSuite()) {
        SCOPED_TRACE(poc.name);
        auto baseline = fourpass_sim.runDual(
            poc.schedule, poc.data,
            fullOptions(ift::IftMode::DiffIFT, false));
        for (uint64_t interval : {uint64_t{1}, uint64_t{7},
                                  uint64_t{1000000}}) {
            SCOPED_TRACE(interval);
            DualSim lockstep_sim(cfg);
            auto options = fullOptions(ift::IftMode::DiffIFT, true);
            options.lockstep_checkpoint_interval = interval;
            auto a = lockstep_sim.runDual(poc.schedule, poc.data,
                                          options);
            expectDualEqual(a, baseline);
        }
    }
}

TEST(DualSimEquivalence, StrategySwitchIsIdentityForSinglePassModes)
{
    auto cfg = uarch::smallBoomConfig();
    auto poc = bench::meltdown();
    DualSim sim_a(cfg);
    DualSim sim_b(cfg);
    for (auto mode : {ift::IftMode::Off, ift::IftMode::CellIFT,
                      ift::IftMode::DiffIFTFN}) {
        SCOPED_TRACE(static_cast<int>(mode));
        auto a = sim_a.runDual(poc.schedule, poc.data,
                               fullOptions(mode, true));
        auto b = sim_b.runDual(poc.schedule, poc.data,
                               fullOptions(mode, false));
        EXPECT_EQ(a.sim_passes, 2u);
        EXPECT_EQ(b.sim_passes, 2u);
        expectDualEqual(a, b);
    }
}

TEST(DualSimEquivalence, FusedPhase3MatchesStandaloneSanitizedRun)
{
    for (const auto &cfg : {uarch::smallBoomConfig(),
                            uarch::xiangshanMinimalConfig()}) {
        SCOPED_TRACE(cfg.name);
        StimGen gen(cfg);
        auto cases = triggeredCases(cfg, 6);
        ASSERT_FALSE(cases.empty());
        DualSim fused_sim(cfg);
        DualSim standalone_sim(cfg);
        size_t checked = 0;
        for (size_t i = 0; i < cases.size(); ++i) {
            SCOPED_TRACE(i);
            const TestCase &tc = cases[i];
            if (!tc.has_window_payload)
                continue;
            ++checked;
            swapmem::SwapSchedule sanitized =
                gen.sanitizedSchedule(tc);
            // Phase 3 runs without taint logging; the true variant
            // exercises the generic prefix-log retention path.
            for (bool taint_log : {false, true}) {
                SCOPED_TRACE(taint_log);
                fused_sim.armFusion(&sanitized);
                DualResult phase2;
                fused_sim.runDual(
                    tc.schedule, tc.data,
                    fullOptions(ift::IftMode::DiffIFT, true), phase2);
                ASSERT_TRUE(fused_sim.fusionCaptured());

                SimOptions p3;
                p3.mode = ift::IftMode::DiffIFT;
                p3.sinks = true;
                p3.taint_log = taint_log;
                DualResult fused;
                fused_sim.runFusedPhase3(p3, fused);
                EXPECT_EQ(fused.sim_passes, 1u);
                EXPECT_FALSE(fused_sim.fusionCaptured());

                DualResult standalone;
                standalone_sim.runDual(sanitized, tc.data, p3,
                                       standalone);
                expectDualEqual(fused, standalone);
            }
        }
        EXPECT_GT(checked, 0u);
    }
}

TEST(DualSimEquivalence, FusionOnOffIsIdentityThroughPhase3)
{
    // End-to-end through the phase drivers: the fused third lane and
    // the standalone sanitized run must reach the same Phase-3
    // verdicts, with the fused path spending one simulation pass
    // where the standalone path spends two.
    auto cfg = uarch::smallBoomConfig();
    StimGen gen(cfg);
    auto cases = triggeredCases(cfg, 4);
    ASSERT_FALSE(cases.empty());

    DualSim fused_sim(cfg);
    DualSim plain_sim(cfg);
    ift::TaintCoverage cov_fused;
    auto ids_fused = uarch::Core::registerModules(cov_fused, cfg);
    ift::TaintCoverage cov_plain;
    auto ids_plain = uarch::Core::registerModules(cov_plain, cfg);
    SimOptions base;
    base.mode = ift::IftMode::DiffIFT;
    core::Phase2 phase2_fused(fused_sim, base, cov_fused, ids_fused,
                              &gen);
    core::Phase3 phase3_fused(fused_sim, base, gen);
    core::Phase2 phase2_plain(plain_sim, base, cov_plain, ids_plain);
    core::Phase3 phase3_plain(plain_sim, base, gen);

    for (size_t i = 0; i < cases.size(); ++i) {
        SCOPED_TRACE(i);
        const core::Phase2Result &ra = phase2_fused.run(cases[i]);
        core::Phase3Result va = phase3_fused.run(cases[i], ra);
        const core::Phase2Result &rb = phase2_plain.run(cases[i]);
        core::Phase3Result vb = phase3_plain.run(cases[i], rb);

        EXPECT_EQ(ra.window_ok, rb.window_ok);
        EXPECT_EQ(ra.taint_propagated, rb.taint_propagated);
        expectDualEqual(ra.dual, rb.dual);

        EXPECT_EQ(va.leak, vb.leak);
        EXPECT_EQ(va.encoded_sinks, vb.encoded_sinks);
        EXPECT_EQ(va.live_encoded_sinks, vb.live_encoded_sinks);
        ASSERT_EQ(va.report.has_value(), vb.report.has_value());
        if (va.report.has_value()) {
            EXPECT_EQ(va.report->channel, vb.report->channel);
            EXPECT_EQ(va.report->components, vb.report->components);
        }
        if (vb.simulations == 2) {
            // The sanitized analysis actually ran: fusion must have
            // collapsed it to a single pass.
            EXPECT_EQ(va.simulations, 1u);
        } else {
            EXPECT_EQ(va.simulations, vb.simulations);
        }
    }
}

TEST(DualSimReuse, PooledRunsMatchFreshInstance)
{
    auto cfg = uarch::smallBoomConfig();
    auto cases = triggeredCases(cfg, 3);
    ASSERT_GE(cases.size(), 2u);
    auto options = fullOptions(ift::IftMode::DiffIFT, true);

    // Dirty the pooled instance with every other case first, then run
    // the probe case; a fresh instance runs only the probe. Reset
    // must erase all cross-run state.
    for (const auto &probe : cases) {
        DualSim pooled(cfg);
        for (const auto &other : cases)
            (void)pooled.runDual(other.schedule, other.data, options);
        auto reused =
            pooled.runDual(probe.schedule, probe.data, options);
        DualSim fresh(cfg);
        auto baseline =
            fresh.runDual(probe.schedule, probe.data, options);
        expectDualEqual(reused, baseline);
    }
}

TEST(DualSimReuse, PooledRunSingleMatchesFresh)
{
    auto cfg = uarch::xiangshanMinimalConfig();
    auto poc = bench::spectreV4();
    auto other = bench::spectreV1();
    SimOptions options;

    DualSim pooled(cfg);
    (void)pooled.runSingle(other.schedule, other.data, options);
    (void)pooled.runDual(other.schedule, other.data,
                         fullOptions(ift::IftMode::DiffIFT, true));
    auto reused = pooled.runSingle(poc.schedule, poc.data, options);

    DualSim fresh(cfg);
    auto baseline = fresh.runSingle(poc.schedule, poc.data, options);
    expectDutEqual(reused, baseline, "runSingle");
}

TEST(DualSimReuse, OutParamBuffersAreReusedAcrossRuns)
{
    auto cfg = uarch::smallBoomConfig();
    auto poc = bench::spectreV1();
    auto options = fullOptions(ift::IftMode::DiffIFT, true);

    DualSim sim(cfg);
    DualResult pooled_result;
    sim.runDual(poc.schedule, poc.data, options, pooled_result);
    // Second fill into the same buffers must yield the same content.
    DualResult second;
    sim.runDual(poc.schedule, poc.data, options, second);
    sim.runDual(poc.schedule, poc.data, options, pooled_result);
    expectDualEqual(pooled_result, second);
}

TEST(DualSimReuse, ShorterRunAfterLongerRunSeesNoStaleTraces)
{
    // The trace stores are sized once and reused; a short schedule
    // after a long one must not observe the long run's recordings.
    auto cfg = uarch::smallBoomConfig();
    auto long_poc = bench::spectreV2();
    auto short_poc = bench::spectreV1();
    auto options = fullOptions(ift::IftMode::DiffIFT, true);

    DualSim pooled(cfg);
    (void)pooled.runDual(long_poc.schedule, long_poc.data, options);
    auto reused =
        pooled.runDual(short_poc.schedule, short_poc.data, options);
    DualSim fresh(cfg);
    auto baseline =
        fresh.runDual(short_poc.schedule, short_poc.data, options);
    expectDualEqual(reused, baseline);
}

} // namespace
} // namespace dejavuzz
