/**
 * @file
 * Tests of the parallel campaign orchestrator subsystem: Rng stream
 * forking, slice-aware fuzzer timing, coverage-merge idempotence,
 * corpus retention order-independence, BugLedger deduplication,
 * multi-worker vs single-worker bug-class equivalence, and repeat-run
 * determinism of the full campaign.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include "campaign/campaign_dir.hh"
#include "campaign/corpus.hh"
#include "campaign/coverage_map.hh"
#include "campaign/io_util.hh"
#include "campaign/ledger.hh"
#include "campaign/orchestrator.hh"
#include "campaign/snapshot.hh"
#include "core/fuzzer.hh"
#include "obs/telemetry.hh"
#include "uarch/config.hh"
#include "uarch/core.hh"
#include "util/rng.hh"

namespace dejavuzz {
namespace {

using campaign::BugLedger;
using campaign::CampaignOptions;
using campaign::CampaignOrchestrator;
using campaign::CampaignStats;
using campaign::CorpusEntry;
using campaign::GlobalCoverage;
using campaign::SharedCorpus;
using campaign::ShardPolicy;
using core::BugReport;
using core::TriggerKind;

// --- Rng stream forking -------------------------------------------------

TEST(RngFork, StreamsAreReproducible)
{
    Rng a(123), b(123);
    Rng fa = a.fork(7), fb = b.fork(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(fa.next(), fb.next());
    EXPECT_EQ(Rng::streamSeed(5, 2), Rng::streamSeed(5, 2));
}

TEST(RngFork, StreamsAreDecorrelated)
{
    Rng parent(99);
    Rng s0 = parent.fork(0), s1 = parent.fork(1);
    unsigned collisions = 0;
    for (int i = 0; i < 64; ++i) {
        if (s0.next() == s1.next())
            ++collisions;
    }
    EXPECT_EQ(collisions, 0u);
    // Adjacent master seeds also give distinct streams.
    EXPECT_NE(Rng::streamSeed(1, 0), Rng::streamSeed(2, 0));
    EXPECT_NE(Rng::streamSeed(1, 0), Rng::streamSeed(1, 1));
}

TEST(RngFork, DoesNotAdvanceParent)
{
    Rng a(55), b(55);
    (void)a.fork(3);
    (void)a.fork(9);
    EXPECT_EQ(a.next(), b.next());
}

// --- Fuzzer slice timing ------------------------------------------------

TEST(FuzzerTiming, ElapsedExcludesIdleBetweenSlices)
{
    core::FuzzerOptions options;
    options.master_seed = 3;
    core::Fuzzer fuzzer(uarch::smallBoomConfig(), options);
    fuzzer.run(10);
    const double after_first = fuzzer.elapsedSeconds();
    EXPECT_GT(after_first, 0.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    fuzzer.run(1);
    // The 60ms idle gap must not appear in the active time.
    EXPECT_LT(fuzzer.elapsedSeconds() - after_first, 0.050);
    EXPECT_EQ(fuzzer.stats().iterations, 11u);
}

// --- Coverage merging ---------------------------------------------------

TEST(CoverageMerge, TaintCoverageMergeIsIdempotent)
{
    ift::TaintCoverage a, b;
    uarch::CoreConfig cfg = uarch::smallBoomConfig();
    auto ids_a = uarch::Core::registerModules(a, cfg);
    auto ids_b = uarch::Core::registerModules(b, cfg);
    (void)ids_b;
    a.sample(ids_a[0], 1);
    a.sample(ids_a[0], 3);
    a.sample(ids_a[2], 2);

    EXPECT_EQ(b.mergeFrom(a), 3u);
    EXPECT_EQ(b.points(), 3u);
    EXPECT_EQ(b.mergeFrom(a), 0u) << "second merge must be a no-op";
    EXPECT_EQ(b.points(), 3u);
}

TEST(CoverageMerge, GlobalMapMergeAndPullAreIdempotent)
{
    uarch::CoreConfig cfg = uarch::smallBoomConfig();
    ift::TaintCoverage local, other;
    auto ids = uarch::Core::registerModules(local, cfg);
    uarch::Core::registerModules(other, cfg);
    local.sample(ids[1], 2);
    local.sample(ids[2], 70); // BHT: exercises the second bitmap word
    local.sample(ids[4], 1);

    GlobalCoverage global(local);
    EXPECT_EQ(global.mergeFrom(local), 3u);
    EXPECT_EQ(global.mergeFrom(local), 0u);
    EXPECT_EQ(global.points(), 3u);

    EXPECT_EQ(global.pullInto(other), 3u);
    EXPECT_EQ(global.pullInto(other), 0u);
    EXPECT_EQ(other.points(), 3u);
    // Round trip: the pulled map merges back with nothing fresh.
    EXPECT_EQ(global.mergeFrom(other), 0u);
}

// --- Shared corpus ------------------------------------------------------

TEST(Corpus, RetentionIsArrivalOrderIndependent)
{
    auto entry = [](uint64_t gain, unsigned worker, uint64_t seq) {
        CorpusEntry e;
        e.gain = gain;
        e.worker = worker;
        e.seq = seq;
        return e;
    };
    std::vector<CorpusEntry> entries = {
        entry(5, 0, 0), entry(9, 1, 0), entry(1, 0, 1),
        entry(7, 1, 1), entry(3, 0, 2), entry(8, 1, 2),
    };

    SharedCorpus forward(1, 3), backward(1, 3);
    for (const auto &e : entries)
        forward.offer(e);
    for (auto it = entries.rbegin(); it != entries.rend(); ++it)
        backward.offer(*it);

    auto fs = forward.snapshotSorted();
    auto bs = backward.snapshotSorted();
    ASSERT_EQ(fs.size(), 3u);
    ASSERT_EQ(bs.size(), 3u);
    for (size_t i = 0; i < fs.size(); ++i) {
        EXPECT_EQ(fs[i].gain, bs[i].gain);
        EXPECT_EQ(fs[i].worker, bs[i].worker);
        EXPECT_EQ(fs[i].seq, bs[i].seq);
    }
    EXPECT_EQ(fs[0].gain, 9u);
    EXPECT_EQ(fs[1].gain, 8u);
    EXPECT_EQ(fs[2].gain, 7u);
}

// --- Corpus persistence -------------------------------------------------

/** A corpus entry with every serialized field holding a nontrivial
 *  value, so round-trip comparisons exercise the whole format. */
CorpusEntry
syntheticEntry(uint64_t gain, unsigned worker, uint64_t seq)
{
    CorpusEntry entry;
    entry.gain = gain;
    entry.worker = worker;
    entry.seq = seq;
    entry.config = "SmallBOOM";

    core::TestCase &tc = entry.tc;
    tc.seed.id = 42 + seq;
    tc.seed.trigger = core::TriggerKind::ReturnMispredict;
    tc.seed.entropy = 0xdeadbeefcafef00dULL + gain;
    tc.seed.window.meltdown = true;
    tc.seed.window.prot = swapmem::SecretProt::Pte;
    tc.seed.window.mask_high_bits = true;
    tc.seed.window.encode_ops = 5;
    tc.seed.window.encode_entropy = 0x1234'5678'9abc'def0ULL;
    tc.seed.model.tmpl = core::AttackTemplate::PrivTransition;
    tc.seed.model.attacker = isa::Priv::U;
    tc.seed.model.victim = isa::Priv::M;
    tc.seed.model.supervisor_victim = (seq % 2) == 0;

    tc.schedule.transient_prot = swapmem::SecretProt::Pmp;
    tc.schedule.victim_supervisor = tc.seed.model.supervisor_victim;
    tc.schedule.double_fetch = (gain % 2) == 1;
    swapmem::SwapPacket train;
    train.label = "train";
    train.kind = swapmem::PacketKind::TriggerTrain;
    train.entry = swapmem::kSwapBase + 8;
    train.instrs.push_back(
        isa::Instr{isa::Op::ADDI, 5, 6, 0, -2048, 0x1234});
    swapmem::SwapPacket transient;
    transient.label = "transient";
    transient.kind = swapmem::PacketKind::Transient;
    transient.instrs.push_back(
        isa::Instr{isa::Op::LD, 10, 11, 0, 8, 0});
    transient.instrs.push_back(
        isa::Instr{isa::Op::SWAPNEXT, 0, 0, 0, 0, 0});
    tc.schedule.packets = {train, transient};

    for (size_t i = 0; i < tc.data.secret.size(); ++i)
        tc.data.secret[i] = static_cast<uint8_t>(i * 7 + seq);
    tc.data.operands = {1, 0xffff'ffff'ffff'ffffULL, 3 + gain};

    tc.trigger_addr = 0x10040;
    tc.window_addr = 0x10080;
    tc.window_begin = 1;
    tc.window_end = 2;
    tc.encode_begin = 1;
    tc.encode_end = 2;
    tc.has_window_payload = true;
    return entry;
}

TEST(CorpusIo, SaveLoadRoundTripsEveryField)
{
    SharedCorpus corpus(2, 8);
    corpus.offer(syntheticEntry(9, 0, 0));
    corpus.offer(syntheticEntry(4, 1, 3));

    std::stringstream file;
    ASSERT_TRUE(corpus.saveTo(file, /*master_seed=*/77));

    campaign::CorpusFile loaded;
    std::string error;
    ASSERT_TRUE(SharedCorpus::loadFrom(file, loaded, &error))
        << error;
    EXPECT_EQ(loaded.version, SharedCorpus::kFormatVersion);
    EXPECT_EQ(loaded.master_seed, 77u);
    ASSERT_EQ(loaded.entries.size(), 2u);

    // saveTo writes canonical order: gain desc.
    EXPECT_EQ(loaded.entries[0].gain, 9u);
    EXPECT_EQ(loaded.entries[1].gain, 4u);

    const CorpusEntry expected = syntheticEntry(9, 0, 0);
    const CorpusEntry &got = loaded.entries[0];
    EXPECT_EQ(got.worker, expected.worker);
    EXPECT_EQ(got.seq, expected.seq);
    EXPECT_EQ(got.config, expected.config);
    EXPECT_EQ(got.tc.seed.id, expected.tc.seed.id);
    EXPECT_EQ(got.tc.seed.trigger, expected.tc.seed.trigger);
    EXPECT_EQ(got.tc.seed.entropy, expected.tc.seed.entropy);
    EXPECT_EQ(got.tc.seed.window.meltdown,
              expected.tc.seed.window.meltdown);
    EXPECT_EQ(got.tc.seed.window.prot,
              expected.tc.seed.window.prot);
    EXPECT_EQ(got.tc.seed.window.mask_high_bits,
              expected.tc.seed.window.mask_high_bits);
    EXPECT_EQ(got.tc.seed.window.encode_ops,
              expected.tc.seed.window.encode_ops);
    EXPECT_EQ(got.tc.seed.window.encode_entropy,
              expected.tc.seed.window.encode_entropy);
    EXPECT_EQ(got.tc.seed.model.tmpl, expected.tc.seed.model.tmpl);
    EXPECT_EQ(got.tc.seed.model.attacker,
              expected.tc.seed.model.attacker);
    EXPECT_EQ(got.tc.seed.model.victim,
              expected.tc.seed.model.victim);
    EXPECT_EQ(got.tc.seed.model.supervisor_victim,
              expected.tc.seed.model.supervisor_victim);
    EXPECT_EQ(got.tc.schedule.transient_prot,
              expected.tc.schedule.transient_prot);
    EXPECT_EQ(got.tc.schedule.victim_supervisor,
              expected.tc.schedule.victim_supervisor);
    EXPECT_EQ(got.tc.schedule.double_fetch,
              expected.tc.schedule.double_fetch);
    ASSERT_EQ(got.tc.schedule.packets.size(),
              expected.tc.schedule.packets.size());
    for (size_t p = 0; p < got.tc.schedule.packets.size(); ++p) {
        const auto &gp = got.tc.schedule.packets[p];
        const auto &ep = expected.tc.schedule.packets[p];
        EXPECT_EQ(gp.label, ep.label);
        EXPECT_EQ(gp.kind, ep.kind);
        EXPECT_EQ(gp.entry, ep.entry);
        ASSERT_EQ(gp.instrs.size(), ep.instrs.size());
        for (size_t i = 0; i < gp.instrs.size(); ++i) {
            EXPECT_TRUE(gp.instrs[i] == ep.instrs[i]);
            EXPECT_EQ(gp.instrs[i].raw, ep.instrs[i].raw);
        }
    }
    EXPECT_EQ(got.tc.data.secret, expected.tc.data.secret);
    EXPECT_EQ(got.tc.data.operands, expected.tc.data.operands);
    EXPECT_EQ(got.tc.trigger_addr, expected.tc.trigger_addr);
    EXPECT_EQ(got.tc.window_addr, expected.tc.window_addr);
    EXPECT_EQ(got.tc.window_begin, expected.tc.window_begin);
    EXPECT_EQ(got.tc.window_end, expected.tc.window_end);
    EXPECT_EQ(got.tc.encode_begin, expected.tc.encode_begin);
    EXPECT_EQ(got.tc.encode_end, expected.tc.encode_end);
    EXPECT_EQ(got.tc.has_window_payload,
              expected.tc.has_window_payload);
}

TEST(CorpusIo, LoadRejectsCorruptInput)
{
    campaign::CorpusFile out;
    std::string error;

    std::stringstream bad_magic("not a corpus file at all");
    EXPECT_FALSE(SharedCorpus::loadFrom(bad_magic, out, &error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;

    SharedCorpus corpus(1, 4);
    corpus.offer(syntheticEntry(3, 0, 0));
    std::stringstream file;
    ASSERT_TRUE(corpus.saveTo(file, 1));
    const std::string bytes = file.str();

    // Truncation anywhere inside an entry fails the load.
    std::stringstream truncated(
        bytes.substr(0, bytes.size() - 10));
    EXPECT_FALSE(SharedCorpus::loadFrom(truncated, out, &error));

    // Trailing garbage after the final entry fails too.
    std::stringstream padded(bytes + "x");
    EXPECT_FALSE(SharedCorpus::loadFrom(padded, out, &error));
    EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

/** Rewrite a single-entry v2 corpus image as its v1 equivalent: the
 *  v2 tail is the entry's final six bytes (the attack model), and the
 *  version field sits right after the 8-byte magic. */
std::string
asV1Image(std::string bytes)
{
    bytes.resize(bytes.size() - 6);
    bytes[8] = 1;
    bytes[9] = bytes[10] = bytes[11] = 0;
    return bytes;
}

TEST(CorpusIo, V1FilesLoadWithImplicitSameDomainModel)
{
    SharedCorpus corpus(1, 4);
    corpus.offer(syntheticEntry(3, 0, 0)); // nontrivial v2 model
    std::stringstream v2_file;
    ASSERT_TRUE(corpus.saveTo(v2_file, 5));

    std::stringstream v1_file(asV1Image(v2_file.str()),
                              std::ios::in | std::ios::binary);
    campaign::CorpusFile loaded;
    std::string error;
    ASSERT_TRUE(SharedCorpus::loadFrom(v1_file, loaded, &error))
        << error;
    EXPECT_EQ(loaded.version, 1u);
    ASSERT_EQ(loaded.entries.size(), 1u);

    // Every v1 field survives; the model is the implicit default.
    const core::TestCase &tc = loaded.entries[0].tc;
    EXPECT_EQ(tc.seed.trigger, core::TriggerKind::ReturnMispredict);
    EXPECT_EQ(tc.seed.model.tmpl, core::AttackTemplate::SameDomain);
    EXPECT_FALSE(tc.seed.model.supervisor_victim);
    EXPECT_FALSE(tc.schedule.victim_supervisor);
    EXPECT_FALSE(tc.schedule.double_fetch);
}

TEST(CorpusIo, V1RejectsPostLegacyTriggerKinds)
{
    // A v1 image can only have been written by a build with eight
    // trigger kinds: a higher ordinal is corruption, not history.
    SharedCorpus corpus(1, 4);
    CorpusEntry entry = syntheticEntry(3, 0, 0);
    entry.tc.seed.trigger = core::TriggerKind::PrivEcall;
    corpus.offer(entry);
    std::stringstream v2_file;
    ASSERT_TRUE(corpus.saveTo(v2_file, 5));

    // The same bytes load fine as v2...
    std::stringstream v2_copy(v2_file.str(),
                              std::ios::in | std::ios::binary);
    campaign::CorpusFile loaded;
    std::string error;
    ASSERT_TRUE(SharedCorpus::loadFrom(v2_copy, loaded, &error))
        << error;

    // ...and fail as v1 at the trigger bound.
    std::stringstream v1_file(asV1Image(v2_file.str()),
                              std::ios::in | std::ios::binary);
    EXPECT_FALSE(SharedCorpus::loadFrom(v1_file, loaded, &error));
    EXPECT_NE(error.find("seed.trigger"), std::string::npos)
        << error;
}

TEST(CorpusIo, RejectsReservedPrivilegeInModel)
{
    SharedCorpus corpus(1, 4);
    corpus.offer(syntheticEntry(3, 0, 0));
    std::stringstream file;
    ASSERT_TRUE(corpus.saveTo(file, 5));
    std::string bytes = file.str();
    // The victim privilege is the entry's fourth-from-last byte;
    // 2 is the reserved (hypervisor) encoding.
    bytes[bytes.size() - 4] = 2;

    std::stringstream stream(bytes,
                             std::ios::in | std::ios::binary);
    campaign::CorpusFile loaded;
    std::string error;
    EXPECT_FALSE(SharedCorpus::loadFrom(stream, loaded, &error));
    EXPECT_NE(error.find("privilege"), std::string::npos) << error;
}

// --- Bug ledger ---------------------------------------------------------

TEST(Ledger, DeduplicatesIdenticalReports)
{
    BugReport report;
    report.attack = core::AttackType::Spectre;
    report.window = TriggerKind::BranchMispredict;
    report.components = {"dcache"};

    BugLedger ledger;
    EXPECT_TRUE(ledger.record(report, 0, 0));
    EXPECT_FALSE(ledger.record(report, 3, 1));
    EXPECT_FALSE(ledger.record(report, 5, 2));
    EXPECT_EQ(ledger.distinct(), 1u);
    EXPECT_EQ(ledger.totalReports(), 3u);

    auto entries = ledger.entries();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].worker, 0u) << "first reporter wins";
    EXPECT_EQ(entries[0].epoch, 0u);
    EXPECT_EQ(entries[0].hits, 3u);
}

TEST(Ledger, DistinguishesDifferentSignatures)
{
    BugReport a;
    a.window = TriggerKind::BranchMispredict;
    a.components = {"dcache"};
    BugReport b = a;
    b.components = {"icache"};
    BugReport c = a;
    c.window = TriggerKind::ReturnMispredict;

    BugLedger ledger;
    EXPECT_TRUE(ledger.record(a, 0, 0));
    EXPECT_TRUE(ledger.record(b, 0, 0));
    EXPECT_TRUE(ledger.record(c, 0, 0));
    EXPECT_EQ(ledger.distinct(), 3u);
}

// --- Full campaigns -----------------------------------------------------

CampaignOptions
smallCampaign(unsigned workers, uint64_t iters)
{
    CampaignOptions options;
    options.workers = workers;
    options.master_seed = 7;
    options.total_iterations = iters;
    options.epoch_iterations = 125;
    options.base_config = uarch::smallBoomConfig();
    return options;
}

/** Deduplicated (attack | window) vulnerability classes — the axis
 *  the paper's Table 5 counts bugs on. */
std::set<std::string>
bugClasses(const BugLedger &ledger)
{
    std::set<std::string> classes;
    for (const auto &record : ledger.entries()) {
        std::string cls = core::attackTypeName(record.report.attack);
        cls += '|';
        cls += core::triggerKindName(record.report.window);
        classes.insert(cls);
    }
    return classes;
}

TEST(Campaign, TwoWorkersMatchOneWorkerBugClasses)
{
    CampaignOrchestrator one(smallCampaign(1, 1000));
    CampaignStats sone = one.run();
    CampaignOrchestrator two(smallCampaign(2, 1000));
    CampaignStats stwo = two.run();

    EXPECT_EQ(sone.iterations, 1000u);
    EXPECT_EQ(stwo.iterations, 1000u);
    EXPECT_GT(one.ledger().distinct(), 0u);
    EXPECT_GT(two.ledger().distinct(), 0u);

    // Equivalent total budget => the same deduplicated set of
    // vulnerability classes, found by a different worker fleet. The
    // class set saturates well within 1000 iterations on the buggy
    // SmallBOOM config; if a future generator change shifts RNG
    // consumption enough to desaturate one fleet, raise the budget
    // rather than weakening the equality.
    EXPECT_EQ(bugClasses(one.ledger()), bugClasses(two.ledger()));
}

TEST(Campaign, RepeatRunsAreBitIdentical)
{
    CampaignOrchestrator a(smallCampaign(2, 750));
    CampaignStats sa = a.run();
    CampaignOrchestrator b(smallCampaign(2, 750));
    CampaignStats sb = b.run();

    EXPECT_EQ(sa.iterations, sb.iterations);
    EXPECT_EQ(sa.simulations, sb.simulations);
    EXPECT_EQ(sa.windows_triggered, sb.windows_triggered);
    EXPECT_EQ(sa.coverage_points, sb.coverage_points);
    EXPECT_EQ(sa.corpus_size, sb.corpus_size);
    EXPECT_EQ(sa.steals, sb.steals);

    auto ea = a.ledger().entries();
    auto eb = b.ledger().entries();
    ASSERT_EQ(ea.size(), eb.size());
    for (size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].report.key(), eb[i].report.key());
        EXPECT_EQ(ea[i].worker, eb[i].worker);
        EXPECT_EQ(ea[i].epoch, eb[i].epoch);
        EXPECT_EQ(ea[i].hits, eb[i].hits);
        EXPECT_EQ(ea[i].report.iteration, eb[i].report.iteration);
    }
}

TEST(Campaign, SeedStealingInjectsForeignSeeds)
{
    CampaignOptions options = smallCampaign(2, 1000);
    options.steals_per_epoch = 2;
    CampaignOrchestrator orchestrator(options);
    CampaignStats stats = orchestrator.run();
    EXPECT_GT(stats.steals, 0u);
    EXPECT_GT(stats.seeds_imported, 0u);
    EXPECT_LE(stats.seeds_imported, stats.steals);
    EXPECT_GT(stats.corpus_size, 0u);
}

TEST(Campaign, AblationPolicyAssignsVariants)
{
    CampaignOptions options = smallCampaign(3, 375);
    options.policy = ShardPolicy::AblationMatrix;
    CampaignOrchestrator orchestrator(options);
    CampaignStats stats = orchestrator.run();
    ASSERT_EQ(stats.workers.size(), 3u);
    EXPECT_EQ(stats.workers[0].variant, "full");
    EXPECT_EQ(stats.workers[1].variant, "dejavuzz-star");
    EXPECT_EQ(stats.workers[2].variant, "dejavuzz-minus");
}

TEST(Campaign, SweepPolicyAlternatesCores)
{
    CampaignOptions options = smallCampaign(2, 250);
    options.policy = ShardPolicy::ConfigSweep;
    CampaignOrchestrator orchestrator(options);
    CampaignStats stats = orchestrator.run();
    ASSERT_EQ(stats.workers.size(), 2u);
    EXPECT_NE(stats.workers[0].config, stats.workers[1].config);
}

// --- Multi-head subspace campaigns --------------------------------------

TEST(Campaign, HeadMatrixPartitionsTheTriggerSpace)
{
    const auto &heads = campaign::headMatrix();
    ASSERT_EQ(heads.size(), 4u);
    uint32_t seen = 0;
    for (const auto &head : heads) {
        EXPECT_NE(head.trigger_mask, 0u) << head.name;
        EXPECT_EQ(seen & head.trigger_mask, 0u)
            << head.name << " overlaps an earlier head";
        seen |= head.trigger_mask;
        EXPECT_NE(head.model_mask & core::kLegacyModelMask, 0u)
            << head.name << " must keep the same-domain template";
    }
    EXPECT_EQ(seen, core::kAllTriggerMask)
        << "the heads must cover every trigger kind";
}

TEST(Campaign, HeadsPolicyAssignsSubspaceVariants)
{
    CampaignOptions options = smallCampaign(4, 500);
    options.policy = ShardPolicy::Heads;
    CampaignOrchestrator orchestrator(options);
    CampaignStats stats = orchestrator.run();
    ASSERT_EQ(stats.workers.size(), 4u);
    EXPECT_EQ(stats.workers[0].variant, "head-predictors");
    EXPECT_EQ(stats.workers[1].variant, "head-caches");
    EXPECT_EQ(stats.workers[2].variant, "head-tlb");
    EXPECT_EQ(stats.workers[3].variant, "head-exceptions");
    // Head-local coverage: every head observes some points of its
    // own subspace.
    for (const auto &w : stats.workers)
        EXPECT_GT(w.coverage_points, 0u) << w.variant;
}

TEST(Campaign, HeadsDiscoverAttackClassesBaselineNeverReports)
{
    // The acceptance split: a heads campaign classifies findings as
    // privilege-transition and double-fetch; the replicas baseline
    // (implicit same-domain model) structurally cannot.
    CampaignOptions heads = smallCampaign(4, 1200);
    heads.policy = ShardPolicy::Heads;
    CampaignOrchestrator hc(heads);
    hc.run();

    CampaignOrchestrator baseline(smallCampaign(4, 1200));
    baseline.run();

    auto attacks = [](const BugLedger &ledger) {
        std::set<core::AttackType> set;
        for (const auto &record : ledger.entries())
            set.insert(record.report.attack);
        return set;
    };
    auto found = attacks(hc.ledger());
    EXPECT_TRUE(found.count(core::AttackType::PrivTransition));
    EXPECT_TRUE(found.count(core::AttackType::DoubleFetch));
    auto base = attacks(baseline.ledger());
    EXPECT_FALSE(base.count(core::AttackType::PrivTransition));
    EXPECT_FALSE(base.count(core::AttackType::DoubleFetch));
}

TEST(Campaign, RecordsEpochCoverageCurve)
{
    CampaignOrchestrator orchestrator(smallCampaign(2, 750));
    CampaignStats stats = orchestrator.run();
    ASSERT_EQ(stats.epoch_curve.size(), stats.epochs);
    uint64_t prev_iters = 0, prev_cov = 0;
    for (size_t i = 0; i < stats.epoch_curve.size(); ++i) {
        const auto &sample = stats.epoch_curve[i];
        EXPECT_EQ(sample.epoch, i);
        EXPECT_GE(sample.iterations, prev_iters);
        EXPECT_GE(sample.coverage_points, prev_cov)
            << "coverage growth must be monotone";
        prev_iters = sample.iterations;
        prev_cov = sample.coverage_points;
    }
    EXPECT_EQ(stats.epoch_curve.back().iterations,
              stats.iterations);
    EXPECT_EQ(stats.epoch_curve.back().coverage_points,
              stats.coverage_points);
}

// --- Corpus save -> load -> resume --------------------------------------

TEST(Campaign, CorpusSaveLoadResume)
{
    // First campaign: run and persist the corpus.
    CampaignOptions options = smallCampaign(2, 750);
    options.steals_per_epoch = 1;
    CampaignOrchestrator first(options);
    first.run();
    ASSERT_GT(first.corpus().size(), 0u);
    const auto saved = first.corpus().snapshotSorted();

    std::stringstream file;
    ASSERT_TRUE(first.corpus().saveTo(file, options.master_seed));

    campaign::CorpusFile loaded;
    std::string error;
    ASSERT_TRUE(SharedCorpus::loadFrom(file, loaded, &error))
        << error;
    ASSERT_EQ(loaded.entries.size(), saved.size());

    // Resume: preload into a fresh campaign with a different seed.
    CampaignOptions resume_options = smallCampaign(2, 750);
    resume_options.master_seed = 11;
    resume_options.steals_per_epoch = 1;
    CampaignOrchestrator second(resume_options);
    EXPECT_EQ(second.preloadCorpus(loaded.entries),
              loaded.entries.size());

    // Preload preserves the saved coverage-gain ordering exactly.
    const auto preloaded = second.corpus().snapshotSorted();
    ASSERT_EQ(preloaded.size(), saved.size());
    for (size_t i = 0; i < preloaded.size(); ++i) {
        EXPECT_EQ(preloaded[i].gain, saved[i].gain);
        EXPECT_EQ(preloaded[i].worker, saved[i].worker);
        EXPECT_EQ(preloaded[i].seq, saved[i].seq);
        EXPECT_EQ(preloaded[i].config, saved[i].config);
    }

    CampaignStats stats = second.run();
    EXPECT_EQ(stats.corpus_preloaded, loaded.entries.size());
    EXPECT_GE(stats.corpus_size, loaded.entries.size());

    // The resumed campaign admits no duplicate seeds: every
    // (worker, seq) identity in the final corpus is unique even
    // though the namesake workers kept offering.
    std::set<std::pair<unsigned, uint64_t>> identities;
    for (const auto &entry : second.corpus().snapshotSorted()) {
        EXPECT_TRUE(
            identities.insert({entry.worker, entry.seq}).second)
            << "duplicate corpus identity (" << entry.worker << ", "
            << entry.seq << ")";
    }
    EXPECT_GT(identities.size(), loaded.entries.size())
        << "resumed campaign should admit fresh entries too";
}

TEST(Campaign, PreloadCountsOnlyRetainedEntries)
{
    // A resuming campaign with a tighter retention bound keeps only
    // the top of the saved set; dropped entries must not be
    // reported as preloaded.
    CampaignOptions options = smallCampaign(2, 250);
    options.corpus_shards = 1;
    options.corpus_shard_cap = 2;
    CampaignOrchestrator orchestrator(options);
    // Canonical (gain-desc) order, as loadFrom yields it.
    std::vector<CorpusEntry> entries = {syntheticEntry(9, 0, 0),
                                        syntheticEntry(4, 0, 1),
                                        syntheticEntry(1, 1, 0)};
    EXPECT_EQ(orchestrator.preloadCorpus(entries), 2u);
    EXPECT_EQ(orchestrator.corpus().size(), 2u);
}

// --- Work-stealing scheduler determinism --------------------------------

/** Everything a determinism comparison should look at: the full bug
 *  ledger (keys, provenance, hit counts) and the corpus identity set
 *  (gain, worker, seq, config). */
void
expectSameOutcome(const CampaignOrchestrator &a,
                  const CampaignOrchestrator &b)
{
    auto ea = a.ledger().entries();
    auto eb = b.ledger().entries();
    ASSERT_EQ(ea.size(), eb.size());
    for (size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].report.key(), eb[i].report.key());
        EXPECT_EQ(ea[i].worker, eb[i].worker);
        EXPECT_EQ(ea[i].epoch, eb[i].epoch);
        EXPECT_EQ(ea[i].hits, eb[i].hits);
        EXPECT_EQ(ea[i].report.iteration, eb[i].report.iteration);
    }

    auto ka = a.corpus().snapshotKeys();
    auto kb = b.corpus().snapshotKeys();
    ASSERT_EQ(ka.size(), kb.size());
    for (size_t i = 0; i < ka.size(); ++i) {
        EXPECT_EQ(ka[i].gain, kb[i].gain);
        EXPECT_EQ(ka[i].worker, kb[i].worker);
        EXPECT_EQ(ka[i].seq, kb[i].seq);
        EXPECT_EQ(ka[i].config, kb[i].config);
    }

    EXPECT_EQ(a.stats().iterations, b.stats().iterations);
    EXPECT_EQ(a.stats().coverage_points,
              b.stats().coverage_points);
    EXPECT_EQ(a.stats().steals, b.stats().steals);
    EXPECT_EQ(a.stats().seeds_imported,
              b.stats().seeds_imported);
}

TEST(Scheduler, StealingMatchesNoStealBitIdentical)
{
    // The tentpole property: batch work-stealing changes which
    // thread executes a batch, never what the batch computes, so a
    // 4-worker stealing campaign and a --no-steal campaign with the
    // same master seed yield identical bug ledgers and corpus keys.
    CampaignOptions steal = smallCampaign(4, 2000);
    steal.batch_iterations = 16;
    steal.steal_batches = true;
    CampaignOptions barrier = steal;
    barrier.steal_batches = false;

    CampaignOrchestrator a(steal);
    CampaignStats sa = a.run();
    CampaignOrchestrator b(barrier);
    CampaignStats sb = b.run();

    EXPECT_GT(a.ledger().distinct(), 0u);
    expectSameOutcome(a, b);

    // The scheduler-occupancy counters are the only divergence
    // axis: a barrier run by definition steals nothing.
    EXPECT_EQ(sb.batches_stolen, 0u);
    EXPECT_EQ(sa.batches, sb.batches);
    EXPECT_LE(sa.batches_stolen, sa.batches);
}

TEST(Campaign, HeadsRepeatRunsAreBitIdentical)
{
    CampaignOptions options = smallCampaign(4, 1000);
    options.policy = ShardPolicy::Heads;
    CampaignOrchestrator a(options);
    a.run();
    CampaignOrchestrator b(options);
    b.run();
    EXPECT_GT(a.ledger().distinct(), 0u);
    expectSameOutcome(a, b);
}

TEST(Scheduler, HeadsStealingMatchesNoStealBitIdentical)
{
    // Work stealing moves batches between threads, never across
    // heads: the kind classes keyed on the head variant keep each
    // stolen batch inside its own subspace, so stealing cannot
    // change what a heads campaign computes.
    CampaignOptions steal = smallCampaign(4, 1000);
    steal.policy = ShardPolicy::Heads;
    steal.batch_iterations = 16;
    steal.steal_batches = true;
    CampaignOptions barrier = steal;
    barrier.steal_batches = false;

    CampaignOrchestrator a(steal);
    a.run();
    CampaignOrchestrator b(barrier);
    b.run();
    expectSameOutcome(a, b);
}

TEST(Scheduler, TelemetryDoesNotPerturbDeterminism)
{
    // Telemetry is observational only: a fully instrumented stealing
    // campaign (trace capture on, heartbeats streaming) must stay
    // bit-identical to a bare barrier campaign with the same seed.
    CampaignOptions barrier = smallCampaign(4, 2000);
    barrier.batch_iterations = 16;
    barrier.steal_batches = false;
    CampaignOrchestrator a(barrier);
    a.run();

    obs::resetForTest();
    obs::enableTrace(true);
    CampaignOptions instrumented = smallCampaign(4, 2000);
    instrumented.batch_iterations = 16;
    instrumented.steal_batches = true;
    instrumented.heartbeat_sec = 0.002;
    std::ostringstream heartbeats;
    instrumented.heartbeat_out = &heartbeats;
    CampaignOrchestrator b(instrumented);
    b.run();
    obs::enableTrace(false);
    const auto events = obs::takeTraceEvents();

    expectSameOutcome(a, b);
    EXPECT_NE(heartbeats.str().find("\"type\":\"heartbeat\""),
              std::string::npos);
#ifndef DEJAVUZZ_NO_TELEMETRY
    EXPECT_FALSE(events.empty());
#endif
}

TEST(Scheduler, BatchSizeOnePreservesEquivalence)
{
    // The finest grain exercises the seq/iteration numbering edge
    // cases (one identity range per iteration).
    CampaignOptions steal = smallCampaign(2, 400);
    steal.batch_iterations = 1;
    CampaignOptions barrier = steal;
    barrier.steal_batches = false;

    CampaignOrchestrator a(steal);
    a.run();
    CampaignOrchestrator b(barrier);
    b.run();
    expectSameOutcome(a, b);
}

TEST(Scheduler, SkewedWeightsPreserveEquivalence)
{
    // One shard with 4x the work — the heterogeneity case stealing
    // exists for. Outcomes must still be mode-independent.
    CampaignOptions steal = smallCampaign(4, 1400);
    steal.epoch_iterations = 50;
    steal.batch_iterations = 10;
    steal.shard_weights = {4.0, 1.0, 1.0, 1.0};
    CampaignOptions barrier = steal;
    barrier.steal_batches = false;

    CampaignOrchestrator a(steal);
    CampaignStats sa = a.run();
    CampaignOrchestrator b(barrier);
    b.run();
    expectSameOutcome(a, b);

    // The skewed shard really received ~4x the iterations.
    ASSERT_EQ(sa.workers.size(), 4u);
    EXPECT_GT(sa.workers[0].iterations,
              3 * sa.workers[1].iterations);
    EXPECT_EQ(sa.iterations, 1400u);
}

TEST(Scheduler, ZeroWeightShardReceivesNoStolenSeeds)
{
    // A zero-weight shard never plans an epoch; routing stolen
    // corpus seeds to it would leak them into a queue that never
    // drains and overstate the steals counter.
    CampaignOptions options = smallCampaign(3, 750);
    options.epoch_iterations = 125;
    options.shard_weights = {1.0, 1.0, 0.0};
    options.steals_per_epoch = 2;
    CampaignOrchestrator orchestrator(options);
    CampaignStats stats = orchestrator.run();

    ASSERT_EQ(stats.workers.size(), 3u);
    EXPECT_EQ(stats.workers[2].iterations, 0u);
    EXPECT_EQ(stats.workers[2].seeds_imported, 0u);
    EXPECT_EQ(stats.iterations, 750u);
    // Steals only target shards that can actually run them.
    EXPECT_LE(stats.seeds_imported, stats.steals);
    EXPECT_GT(stats.steals, 0u);
}

TEST(Scheduler, BatchAccountingIsCoherent)
{
    CampaignOptions options = smallCampaign(2, 500);
    options.batch_iterations = 32;
    CampaignOrchestrator orchestrator(options);
    CampaignStats stats = orchestrator.run();

    // 500 iterations at epoch 125 x 2 workers: per epoch each shard
    // plans ceil(125/32) = 4 batches, 2 epochs => 16 batches.
    EXPECT_EQ(stats.batches, 16u);
    EXPECT_LE(stats.batches_stolen, stats.batches);
    EXPECT_EQ(stats.batch_iterations, 32u);
    uint64_t epoch_stolen = 0;
    for (const auto &sample : stats.epoch_curve)
        epoch_stolen += sample.batches_stolen;
    EXPECT_EQ(epoch_stolen, stats.batches_stolen);
}

// --- Checkpoint save -> resume ------------------------------------------

/** Ledger + corpus + fleet-coverage equality — the state a resumed
 *  campaign must share with an uninterrupted one. */
void
expectSameCampaignState(const CampaignOrchestrator &a,
                        const CampaignOrchestrator &b)
{
    auto ea = a.ledger().entries();
    auto eb = b.ledger().entries();
    ASSERT_EQ(ea.size(), eb.size());
    for (size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].report.key(), eb[i].report.key());
        EXPECT_EQ(ea[i].worker, eb[i].worker);
        EXPECT_EQ(ea[i].epoch, eb[i].epoch);
        EXPECT_EQ(ea[i].hits, eb[i].hits);
        EXPECT_EQ(ea[i].report.iteration, eb[i].report.iteration);
        EXPECT_EQ(campaign::hashTestCase(ea[i].repro),
                  campaign::hashTestCase(eb[i].repro))
            << "reproducer mismatch for " << ea[i].report.key();
    }

    auto ka = a.corpus().snapshotKeys();
    auto kb = b.corpus().snapshotKeys();
    ASSERT_EQ(ka.size(), kb.size());
    for (size_t i = 0; i < ka.size(); ++i) {
        EXPECT_EQ(ka[i].gain, kb[i].gain);
        EXPECT_EQ(ka[i].worker, kb[i].worker);
        EXPECT_EQ(ka[i].seq, kb[i].seq);
        EXPECT_EQ(ka[i].config, kb[i].config);
    }

    EXPECT_EQ(a.stats().coverage_points, b.stats().coverage_points);
    EXPECT_EQ(a.stats().steals, b.stats().steals);
}

TEST(Campaign, CheckpointResumeMatchesUninterruptedRun)
{
    // The tentpole property: run 1500 iterations straight through,
    // versus 750 iterations -> checkpoint through the binary
    // snapshot + corpus formats -> resume to 1500 with the same
    // master seed. Ledger (keys, provenance, hit counts,
    // reproducers), corpus identities and fleet coverage must be
    // bit-identical.
    CampaignOrchestrator uninterrupted(smallCampaign(2, 1500));
    uninterrupted.run();
    ASSERT_GT(uninterrupted.ledger().distinct(), 0u);

    CampaignOrchestrator first(smallCampaign(2, 750));
    first.run();

    std::stringstream snap_file(std::ios::in | std::ios::out |
                                std::ios::binary);
    ASSERT_TRUE(campaign::saveCheckpoint(snap_file,
                                         first.makeCheckpoint()));
    campaign::CampaignCheckpoint checkpoint;
    std::string error;
    ASSERT_TRUE(
        campaign::loadCheckpoint(snap_file, checkpoint, &error))
        << error;
    EXPECT_EQ(checkpoint.iterations_done, 750u);

    std::stringstream corpus_file(std::ios::in | std::ios::out |
                                  std::ios::binary);
    ASSERT_TRUE(first.corpus().saveTo(corpus_file, 7));
    campaign::CorpusFile corpus;
    ASSERT_TRUE(SharedCorpus::loadFrom(corpus_file, corpus, &error))
        << error;

    CampaignOrchestrator resumed(smallCampaign(2, 1500));
    ASSERT_TRUE(resumed.restoreCheckpoint(checkpoint, &error))
        << error;
    resumed.restoreCorpus(corpus.entries);
    CampaignStats stats = resumed.run();

    expectSameCampaignState(uninterrupted, resumed);

    // The resumed log accounts only its own half, with the restored
    // provenance carried in the summary fields.
    EXPECT_EQ(stats.iterations, 750u);
    EXPECT_EQ(stats.bugs_restored, checkpoint.ledger.size());
    uint64_t restored_hits = 0;
    for (const auto &record : checkpoint.ledger)
        restored_hits += record.hits;
    EXPECT_EQ(stats.reports_restored, restored_hits);
    EXPECT_GT(stats.coverage_preloaded, 0u);
    EXPECT_EQ(stats.coverage_preloaded,
              first.stats().coverage_points);
}

TEST(Campaign, HeadsCheckpointResumeMatchesUninterruptedRun)
{
    // The head-local coverage groups ("<config>+head=<name>") and
    // per-head corpus tags must survive the snapshot/corpus round
    // trip, or a resumed heads campaign diverges.
    CampaignOptions full = smallCampaign(4, 1000);
    full.policy = ShardPolicy::Heads;
    CampaignOrchestrator uninterrupted(full);
    uninterrupted.run();
    ASSERT_GT(uninterrupted.ledger().distinct(), 0u);

    CampaignOptions half = full;
    half.total_iterations = 500;
    CampaignOrchestrator first(half);
    first.run();

    std::stringstream snap(std::ios::in | std::ios::out |
                           std::ios::binary);
    ASSERT_TRUE(
        campaign::saveCheckpoint(snap, first.makeCheckpoint()));
    campaign::CampaignCheckpoint checkpoint;
    std::string error;
    ASSERT_TRUE(campaign::loadCheckpoint(snap, checkpoint, &error))
        << error;

    CampaignOrchestrator resumed(full);
    ASSERT_TRUE(resumed.restoreCheckpoint(checkpoint, &error))
        << error;
    resumed.restoreCorpus(first.corpus().snapshotSorted());
    resumed.run();

    expectSameCampaignState(uninterrupted, resumed);
}

TEST(Campaign, CheckpointResumePreservesPreloadedEligibility)
{
    // Preloaded corpus entries are stealable by namesake shards; a
    // checkpoint must carry that eligibility set, or a resumed
    // campaign's steal choices diverge from the uninterrupted run.
    CampaignOrchestrator donor(smallCampaign(2, 500));
    donor.run();
    ASSERT_GT(donor.corpus().size(), 0u);
    const auto donated = donor.corpus().snapshotSorted();

    CampaignOptions options = smallCampaign(2, 1500);
    options.master_seed = 21;
    CampaignOrchestrator uninterrupted(options);
    uninterrupted.preloadCorpus(donated);
    uninterrupted.run();

    CampaignOptions half = options;
    half.total_iterations = 750;
    CampaignOrchestrator first(half);
    first.preloadCorpus(donated);
    first.run();

    std::stringstream snap(std::ios::in | std::ios::out |
                           std::ios::binary);
    ASSERT_TRUE(campaign::saveCheckpoint(snap,
                                         first.makeCheckpoint()));
    campaign::CampaignCheckpoint checkpoint;
    std::string error;
    ASSERT_TRUE(campaign::loadCheckpoint(snap, checkpoint, &error))
        << error;
    EXPECT_EQ(checkpoint.preloaded_ids.size(), donated.size());

    CampaignOrchestrator resumed(options);
    ASSERT_TRUE(resumed.restoreCheckpoint(checkpoint, &error))
        << error;
    resumed.restoreCorpus(first.corpus().snapshotSorted());
    resumed.run();

    expectSameCampaignState(uninterrupted, resumed);
}

TEST(Campaign, MinimizedResumeIsSelfDeterministic)
{
    // Minimizing before the save drops corpus entries, so the
    // resumed run may legitimately explore differently than an
    // uninterrupted one (steal selection sees a smaller corpus) —
    // but the minimized directory itself must still resume
    // deterministically: two resumes from the same artifacts are
    // bit-identical.
    CampaignOrchestrator first(smallCampaign(2, 750));
    first.run();
    first.minimizeCorpus();
    const campaign::CampaignCheckpoint cp = first.makeCheckpoint();
    const auto entries = first.corpus().snapshotSorted();

    auto resume = [&]() {
        auto orchestrator = std::make_unique<CampaignOrchestrator>(
            smallCampaign(2, 1500));
        std::string error;
        EXPECT_TRUE(orchestrator->restoreCheckpoint(cp, &error))
            << error;
        orchestrator->restoreCorpus(entries);
        orchestrator->run();
        return orchestrator;
    };
    auto a = resume();
    auto b = resume();
    expectSameCampaignState(*a, *b);
    EXPECT_GT(a->ledger().distinct(), 0u);
}

TEST(Campaign, CheckpointRejectsMismatchedFleet)
{
    CampaignOrchestrator first(smallCampaign(2, 500));
    first.run();
    const campaign::CampaignCheckpoint cp = first.makeCheckpoint();

    std::string error;
    // Wrong worker count.
    CampaignOrchestrator three(smallCampaign(3, 500));
    EXPECT_FALSE(three.restoreCheckpoint(cp, &error));
    EXPECT_FALSE(error.empty());
    // Wrong master seed.
    CampaignOptions other_seed = smallCampaign(2, 500);
    other_seed.master_seed = 99;
    CampaignOrchestrator reseeded(other_seed);
    EXPECT_FALSE(reseeded.restoreCheckpoint(cp, &error));
    // Wrong config group.
    CampaignOptions other_core = smallCampaign(2, 500);
    other_core.master_seed = 7;
    other_core.base_config = uarch::xiangshanMinimalConfig();
    CampaignOrchestrator recored(other_core);
    EXPECT_FALSE(recored.restoreCheckpoint(cp, &error));
}

// --- Corpus minimization ------------------------------------------------

TEST(Corpus, MinimizeDropsContentDuplicates)
{
    SharedCorpus corpus(2, 8);
    CorpusEntry original = syntheticEntry(9, 0, 0);
    // Same content under a different identity: a content duplicate.
    CorpusEntry duplicate = original;
    duplicate.gain = 5;
    duplicate.worker = 1;
    duplicate.seq = 3;
    CorpusEntry distinct = syntheticEntry(7, 0, 1);
    corpus.offer(original);
    corpus.offer(duplicate);
    corpus.offer(distinct);
    ASSERT_EQ(corpus.size(), 3u);
    ASSERT_EQ(campaign::hashTestCase(original.tc),
              campaign::hashTestCase(duplicate.tc));
    ASSERT_NE(campaign::hashTestCase(original.tc),
              campaign::hashTestCase(distinct.tc));

    const SharedCorpus::MinimizeStats stats = corpus.minimize();
    EXPECT_EQ(stats.before, 3u);
    EXPECT_EQ(stats.kept, 2u);
    EXPECT_EQ(stats.duplicates, 1u);
    EXPECT_EQ(stats.subsumed, 0u);

    // The canonical-first (highest-gain) twin survives.
    const auto remaining = corpus.snapshotSorted();
    ASSERT_EQ(remaining.size(), 2u);
    EXPECT_EQ(remaining[0].gain, 9u);
    EXPECT_EQ(remaining[0].worker, 0u);
}

TEST(Campaign, MinimizePreservesCoverageUnion)
{
    CampaignOptions options = smallCampaign(2, 1000);
    CampaignOrchestrator orchestrator(options);
    orchestrator.run();
    ASSERT_GT(orchestrator.corpus().size(), 0u);

    // Reference oracle: each entry's standalone coverage set, from
    // an independent fuzzer of the same (only) config.
    core::FuzzerOptions fopts;
    fopts.record_coverage_curve = false;
    core::Fuzzer oracle(uarch::smallBoomConfig(), fopts);
    auto coverageUnion = [&](const std::vector<CorpusEntry> &entries) {
        std::set<std::pair<uint16_t, uint32_t>> covered;
        for (const CorpusEntry &entry : entries) {
            for (const auto &point :
                 oracle
                     .replayCase(entry.tc,
                                 /*collect_coverage_tuples=*/true)
                     .coverage) {
                covered.insert({point.module_id, point.index});
            }
        }
        return covered;
    };

    const auto before_entries = orchestrator.corpus().snapshotSorted();
    const auto before_union = coverageUnion(before_entries);
    // A vacuously-empty union would make the preservation check
    // meaningless (e.g. if the oracle stopped materializing tuples).
    ASSERT_FALSE(before_union.empty());

    const SharedCorpus::MinimizeStats stats =
        orchestrator.minimizeCorpus();
    EXPECT_EQ(stats.before, before_entries.size());
    EXPECT_EQ(stats.kept, orchestrator.corpus().size());
    EXPECT_EQ(stats.kept + stats.dropped(), stats.before);

    // The distilled corpus still covers every point the full corpus
    // covered — minimization may drop entries, never coverage.
    const auto after_union =
        coverageUnion(orchestrator.corpus().snapshotSorted());
    EXPECT_EQ(after_union, before_union);

    EXPECT_EQ(orchestrator.stats().corpus_minimized,
              stats.dropped());
    EXPECT_EQ(orchestrator.stats().corpus_size, stats.kept);
}

// --- Campaign directory meta --------------------------------------------

TEST(CampaignDir, MetaRoundTripsAndDetectsMismatches)
{
    CampaignOptions options = smallCampaign(2, 750);
    const campaign::CampaignMeta meta =
        campaign::metaFromOptions(options);

    std::stringstream file;
    campaign::writeMeta(file, meta);
    campaign::CampaignMeta loaded;
    std::string error;
    ASSERT_TRUE(campaign::readMeta(file, loaded, &error)) << error;
    EXPECT_TRUE(campaign::metaMismatches(loaded, meta).empty());

    // Every drifted configuration field is called out by name.
    CampaignOptions drifted = options;
    drifted.workers = 4;
    drifted.master_seed = 8;
    drifted.batch_iterations = 64;
    const auto mismatches = campaign::metaMismatches(
        loaded, campaign::metaFromOptions(drifted));
    ASSERT_EQ(mismatches.size(), 3u);
    EXPECT_NE(mismatches[0].find("master_seed"), std::string::npos);
    EXPECT_NE(mismatches[1].find("workers"), std::string::npos);
    EXPECT_NE(mismatches[2].find("batch"), std::string::npos);

    // Garbage meta fails cleanly.
    std::stringstream bad("{\"meta_version\":1}");
    EXPECT_FALSE(campaign::readMeta(bad, loaded, &error));
    EXPECT_FALSE(error.empty());
}

TEST(CampaignDir, MetaCarriesTheTemplateMask)
{
    CampaignOptions options = smallCampaign(2, 750);
    options.fuzzer.model_mask =
        core::modelBit(core::AttackTemplate::PrivTransition) |
        core::modelBit(core::AttackTemplate::DoubleFetch);

    std::stringstream file;
    campaign::writeMeta(file, campaign::metaFromOptions(options));
    campaign::CampaignMeta loaded;
    std::string error;
    ASSERT_TRUE(campaign::readMeta(file, loaded, &error)) << error;
    EXPECT_EQ(loaded.model_mask, options.fuzzer.model_mask);

    // A resume drawing a different template set is a mismatch named
    // in template names, not raw mask bits.
    const auto mismatches = campaign::metaMismatches(
        loaded,
        campaign::metaFromOptions(smallCampaign(2, 750)));
    ASSERT_EQ(mismatches.size(), 1u);
    EXPECT_NE(mismatches[0].find("templates"), std::string::npos);
    EXPECT_NE(mismatches[0].find("priv-transition,double-fetch"),
              std::string::npos);
    EXPECT_NE(mismatches[0].find("same-domain"), std::string::npos);

    // Pre-attack-model meta.json files carry no templates field and
    // imply the legacy single model.
    std::string line;
    {
        std::stringstream again;
        campaign::writeMeta(again,
                            campaign::metaFromOptions(options));
        line = again.str();
    }
    const std::string field = ",\"templates\":12";
    const size_t at = line.find(field);
    ASSERT_NE(at, std::string::npos);
    line.erase(at, field.size());
    std::stringstream legacy(line);
    ASSERT_TRUE(campaign::readMeta(legacy, loaded, &error)) << error;
    EXPECT_EQ(loaded.model_mask, core::kLegacyModelMask);
}

TEST(CampaignDir, SaveLoadRoundTrip)
{
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) /
         "dvz_campaign_dir")
            .string();
    std::filesystem::remove_all(dir);
    EXPECT_FALSE(campaign::campaignDirExists(dir));

    CampaignOptions options = smallCampaign(2, 750);
    CampaignOrchestrator orchestrator(options);
    orchestrator.run();
    std::string error;
    ASSERT_TRUE(campaign::saveCampaignDir(dir, orchestrator, options,
                                          &error))
        << error;
    ASSERT_TRUE(campaign::campaignDirExists(dir));

    campaign::LoadedCampaignDir loaded;
    ASSERT_TRUE(campaign::loadCampaignDir(dir, loaded, &error))
        << error;
    EXPECT_TRUE(campaign::metaMismatches(
                    loaded.meta, campaign::metaFromOptions(options))
                    .empty());
    EXPECT_EQ(loaded.corpus.entries.size(),
              orchestrator.corpus().size());
    EXPECT_EQ(loaded.checkpoint.iterations_done, 750u);
    EXPECT_EQ(loaded.checkpoint.ledger.size(),
              orchestrator.ledger().distinct());

    std::filesystem::remove_all(dir);
}

TEST(CampaignDir, AutosaveDoesNotPerturbTheCampaign)
{
    // Autosaving is observational: a campaign that checkpoints at
    // every epoch barrier must land on exactly the outcome of one
    // that never saves at all, and the directory it leaves behind
    // must hold a complete, loadable latest generation.
    CampaignOrchestrator baseline(smallCampaign(2, 1000));
    baseline.run();
    ASSERT_GT(baseline.ledger().distinct(), 0u);

    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) /
         "dvz_autosave_dir")
            .string();
    std::filesystem::remove_all(dir);
    CampaignOptions options = smallCampaign(2, 1000);
    options.autosave_sec = 1e-9; // every epoch qualifies
    CampaignOrchestrator saved(options);
    saved.setAutosaveHook([&](std::string *err) {
        return campaign::saveCampaignDir(dir, saved, options, err);
    });
    saved.run();

    expectSameCampaignState(baseline, saved);

    std::string error, note;
    campaign::LoadedCampaignDir loaded;
    ASSERT_TRUE(
        campaign::loadCampaignDir(dir, loaded, &error, &note))
        << error;
    EXPECT_TRUE(note.empty()) << note;
    // Several autosave generations rotated through; only the count
    // monotonicity matters, not the exact cadence.
    EXPECT_GE(loaded.meta.generation, 2u);
    std::filesystem::remove_all(dir);
}

TEST(CampaignDir, ResumeFromAutosavedDirMatchesUninterrupted)
{
    // The crash-recovery path end to end through the directory
    // formats: half a campaign autosaved per epoch (plus its final
    // save), reloaded from disk, resumed to the full budget — and
    // required to be bit-identical to the uninterrupted run.
    CampaignOrchestrator uninterrupted(smallCampaign(2, 1500));
    uninterrupted.run();
    ASSERT_GT(uninterrupted.ledger().distinct(), 0u);

    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) /
         "dvz_autosave_resume_dir")
            .string();
    std::filesystem::remove_all(dir);
    CampaignOptions half = smallCampaign(2, 750);
    half.autosave_sec = 1e-9;
    CampaignOrchestrator first(half);
    first.setAutosaveHook([&](std::string *err) {
        return campaign::saveCampaignDir(dir, first, half, err);
    });
    first.run();
    std::string error;
    ASSERT_TRUE(
        campaign::saveCampaignDir(dir, first, half, &error))
        << error;

    campaign::LoadedCampaignDir loaded;
    ASSERT_TRUE(campaign::loadCampaignDir(dir, loaded, &error))
        << error;
    EXPECT_EQ(loaded.checkpoint.iterations_done, 750u);

    CampaignOrchestrator resumed(smallCampaign(2, 1500));
    ASSERT_TRUE(resumed.restoreCheckpoint(loaded.checkpoint, &error))
        << error;
    resumed.restoreCorpus(loaded.corpus.entries);
    resumed.run();

    expectSameCampaignState(uninterrupted, resumed);
    std::filesystem::remove_all(dir);
}

// --- Corruption robustness ----------------------------------------------

/**
 * Randomized corruption harness: mutate valid bytes (bit flips and
 * truncations) and require every load attempt to return cleanly —
 * false with a diagnostic, or true when the flip happened to land in
 * a don't-care payload byte. Crashing or hanging fails the test.
 */
template <typename LoadFn>
void
corruptionFuzz(const std::string &valid, uint64_t seed,
               const LoadFn &load)
{
    Rng rng(seed);
    for (int trial = 0; trial < 300; ++trial) {
        std::string bytes = valid;
        const unsigned mode = static_cast<unsigned>(rng.below(3));
        if (mode == 0) {
            bytes.resize(rng.below(bytes.size()));
        } else {
            const unsigned flips = 1 + rng.below(mode == 1 ? 1 : 8);
            for (unsigned f = 0; f < flips; ++f) {
                const size_t pos = rng.below(bytes.size());
                bytes[pos] = static_cast<char>(
                    static_cast<uint8_t>(bytes[pos]) ^
                    (uint8_t{1} << rng.below(8)));
            }
        }
        std::stringstream stream(bytes, std::ios::in |
                                            std::ios::binary);
        std::string error;
        const bool ok = load(stream, error);
        if (!ok) {
            EXPECT_FALSE(error.empty())
                << "failed load must carry a diagnostic";
        }
    }
}

TEST(CorpusIo, RandomCorruptionNeverCrashesTheLoader)
{
    CampaignOrchestrator orchestrator(smallCampaign(2, 750));
    orchestrator.run();
    ASSERT_GT(orchestrator.corpus().size(), 0u);
    std::stringstream file(std::ios::in | std::ios::out |
                           std::ios::binary);
    ASSERT_TRUE(orchestrator.corpus().saveTo(file, 7));

    corruptionFuzz(file.str(), 0xc0bb5,
                   [](std::istream &is, std::string &error) {
                       campaign::CorpusFile out;
                       return SharedCorpus::loadFrom(is, out,
                                                     &error);
                   });
}

TEST(CorpusIo, TrailerMakesCorruptionDetectionCertain)
{
    // The raw loaders above may accept a flip in a don't-care byte;
    // a trailered artifact may not: CRC-32 catches every 1-bit
    // payload error and every truncation, so each such mutation
    // must be rejected — this is what lets the campaign-dir loader
    // trust "trailer validates" as "artifact payload is whole".
    // (The generation and pad fields of the trailer itself are
    // outside the CRC; the loader cross-checks the generation
    // against meta.json instead.)
    CampaignOrchestrator orchestrator(smallCampaign(2, 750));
    orchestrator.run();
    std::stringstream file(std::ios::in | std::ios::out |
                           std::ios::binary);
    ASSERT_TRUE(orchestrator.corpus().saveTo(file, 7));
    const std::string valid = campaign::withTrailer(file.str(), 3);
    const size_t payload_size = valid.size() - campaign::kTrailerBytes;

    Rng rng(0x7ea11e5);
    for (int trial = 0; trial < 300; ++trial) {
        std::string bytes = valid;
        if (rng.below(2) == 0) {
            bytes.resize(rng.below(bytes.size()));
        } else {
            const size_t pos = rng.below(payload_size);
            bytes[pos] = static_cast<char>(
                static_cast<uint8_t>(bytes[pos]) ^
                (uint8_t{1} << rng.below(8)));
        }
        std::string payload, error;
        uint64_t gen = 0;
        EXPECT_FALSE(
            campaign::splitTrailer(bytes, payload, gen, &error))
            << "trial " << trial;
        EXPECT_FALSE(error.empty());
    }
}

TEST(Snapshot, RandomCorruptionNeverCrashesTheLoader)
{
    CampaignOrchestrator orchestrator(smallCampaign(2, 750));
    orchestrator.run();
    ASSERT_GT(orchestrator.ledger().distinct(), 0u);
    std::stringstream file(std::ios::in | std::ios::out |
                           std::ios::binary);
    ASSERT_TRUE(campaign::saveCheckpoint(
        file, orchestrator.makeCheckpoint()));

    corruptionFuzz(file.str(), 0x54a95,
                   [](std::istream &is, std::string &error) {
                       campaign::CampaignCheckpoint out;
                       return campaign::loadCheckpoint(is, out,
                                                       &error);
                   });
}

TEST(Snapshot, CheckpointSurvivesBinaryRoundTripExactly)
{
    CampaignOrchestrator orchestrator(smallCampaign(2, 750));
    orchestrator.run();
    const campaign::CampaignCheckpoint original =
        orchestrator.makeCheckpoint();

    std::stringstream file(std::ios::in | std::ios::out |
                           std::ios::binary);
    ASSERT_TRUE(campaign::saveCheckpoint(file, original));
    campaign::CampaignCheckpoint loaded;
    std::string error;
    ASSERT_TRUE(campaign::loadCheckpoint(file, loaded, &error))
        << error;

    EXPECT_EQ(loaded.master_seed, original.master_seed);
    EXPECT_EQ(loaded.iterations_done, original.iterations_done);
    EXPECT_EQ(loaded.epochs_done, original.epochs_done);
    EXPECT_EQ(loaded.steals, original.steals);
    EXPECT_EQ(loaded.steal_rng, original.steal_rng);
    ASSERT_EQ(loaded.groups.size(), original.groups.size());
    for (size_t g = 0; g < loaded.groups.size(); ++g) {
        EXPECT_EQ(loaded.groups[g].config,
                  original.groups[g].config);
        ASSERT_EQ(loaded.groups[g].modules.size(),
                  original.groups[g].modules.size());
        for (size_t m = 0; m < loaded.groups[g].modules.size();
             ++m) {
            EXPECT_EQ(loaded.groups[g].modules[m].words,
                      original.groups[g].modules[m].words);
        }
    }
    ASSERT_EQ(loaded.shards.size(), original.shards.size());
    for (size_t s = 0; s < loaded.shards.size(); ++s) {
        EXPECT_EQ(loaded.shards[s].next_batch,
                  original.shards[s].next_batch);
        EXPECT_EQ(loaded.shards[s].stolen,
                  original.shards[s].stolen);
        EXPECT_EQ(loaded.shards[s].pending_inject.size(),
                  original.shards[s].pending_inject.size());
    }
    ASSERT_EQ(loaded.ledger.size(), original.ledger.size());
    for (size_t b = 0; b < loaded.ledger.size(); ++b) {
        EXPECT_EQ(loaded.ledger[b].report.key(),
                  original.ledger[b].report.key());
        EXPECT_EQ(loaded.ledger[b].hits, original.ledger[b].hits);
        EXPECT_EQ(loaded.ledger[b].config,
                  original.ledger[b].config);
        EXPECT_EQ(campaign::hashTestCase(loaded.ledger[b].repro),
                  campaign::hashTestCase(original.ledger[b].repro));
    }
}

TEST(Campaign, SingleWorkerResumeInjectsSavedSeeds)
{
    // A saved corpus authored by worker 0 must be injectable into a
    // 1-worker resumed campaign (the namesake-worker case).
    CampaignOptions options = smallCampaign(1, 500);
    CampaignOrchestrator first(options);
    first.run();
    ASSERT_GT(first.corpus().size(), 0u);
    std::stringstream file;
    ASSERT_TRUE(first.corpus().saveTo(file, options.master_seed));
    campaign::CorpusFile loaded;
    ASSERT_TRUE(SharedCorpus::loadFrom(file, loaded));

    CampaignOptions resume_options = smallCampaign(1, 500);
    resume_options.master_seed = 13;
    CampaignOrchestrator second(resume_options);
    second.preloadCorpus(loaded.entries);
    CampaignStats stats = second.run();
    EXPECT_GT(stats.steals, 0u)
        << "preloaded entries should be stolen by the lone worker";
    EXPECT_GT(stats.seeds_imported, 0u);
}

} // namespace
} // namespace dejavuzz
