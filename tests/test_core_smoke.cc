/**
 * @file
 * End-to-end smoke tests of the out-of-order core through the
 * differential harness: programs complete, speculation squashes fire,
 * and a hand-written Spectre-V1 payload taints the data cache under
 * diffIFT.
 */

#include <gtest/gtest.h>

#include "harness/dualsim.hh"
#include "isa/builder.hh"
#include "swapmem/layout.hh"
#include "uarch/config.hh"

namespace dejavuzz {
namespace {

using harness::DualSim;
using harness::SimOptions;
using harness::StimulusData;
using isa::Op;
using namespace isa::reg;
using swapmem::PacketKind;
using swapmem::SwapPacket;
using swapmem::SwapSchedule;

SwapPacket
packetFrom(isa::ProgBuilder &prog, const char *label, PacketKind kind)
{
    SwapPacket packet;
    packet.label = label;
    packet.kind = kind;
    packet.instrs = prog.finish();
    return packet;
}

StimulusData
defaultStim()
{
    Rng rng(99);
    return StimulusData::random(rng);
}

TEST(CoreSmoke, StraightLineProgramCompletes)
{
    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.li(a0, 7);
    prog.li(a1, 5);
    prog.add(a2, a0, a1);
    prog.swapnext();

    SwapSchedule schedule;
    schedule.packets.push_back(
        packetFrom(prog, "transient", PacketKind::Transient));

    DualSim sim(uarch::smallBoomConfig());
    auto result = sim.runSingle(schedule, defaultStim());
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(result.budget_exceeded);
    EXPECT_GT(result.trace.commits.size(), 3u);
    // The committed PC stream is sequential.
    EXPECT_EQ(result.trace.commits.front().pc, swapmem::kSwapBase);
}

TEST(CoreSmoke, ArchitecturalResultsMatchGolden)
{
    // The OoO core must retire the same architectural effects as the
    // golden model: verify through memory.
    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.li(a0, 1111);
    prog.li(a1, 2222);
    prog.add(a2, a0, a1);
    prog.emit(Op::MUL, a3, a0, a1, 0);
    prog.la(t0, swapmem::kScratchAddr);
    prog.sd(a2, t0, 0);
    prog.sd(a3, t0, 8);
    prog.ld(a4, t0, 0);
    prog.swapnext();

    SwapSchedule schedule;
    schedule.packets.push_back(
        packetFrom(prog, "transient", PacketKind::Transient));

    DualSim sim(uarch::smallBoomConfig());
    auto result = sim.runSingle(schedule, defaultStim());
    ASSERT_TRUE(result.completed);
    // Commits happened for each instruction exactly once.
    size_t swapnexts = 0;
    for (const auto &commit : result.trace.commits)
        swapnexts += commit.op == Op::SWAPNEXT;
    EXPECT_EQ(swapnexts, 1u);
}

TEST(CoreSmoke, UntrainedTakenBranchMispredicts)
{
    // Default BHT state predicts not-taken; an architecturally taken
    // branch therefore opens a transient window on the fall-through.
    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.li(a0, 1);
    isa::Label exit_lbl = prog.newLabel();
    prog.branch(Op::BNE, a0, zero, exit_lbl); // taken, predicted NT
    for (int i = 0; i < 6; ++i)
        prog.nop(); // transient window payload
    prog.bind(exit_lbl);
    prog.swapnext();

    SwapSchedule schedule;
    schedule.packets.push_back(
        packetFrom(prog, "transient", PacketKind::Transient));

    DualSim sim(uarch::smallBoomConfig());
    auto result = sim.runSingle(schedule, defaultStim());
    ASSERT_TRUE(result.completed);
    ASSERT_TRUE(result.trace.windowTriggered());
    const auto *window = result.trace.principalWindow();
    ASSERT_NE(window, nullptr);
    EXPECT_EQ(window->cause, uarch::SquashCause::BranchMispredict);
    EXPECT_GT(window->flushed, 0u);
}

TEST(CoreSmoke, BhtTrainingFlipsPrediction)
{
    // Train a branch taken twice; a later not-taken run of the same
    // branch then mispredicts.
    uint64_t branch_addr = swapmem::kSwapBase + 0x40;

    auto makeTraining = [&]() {
        isa::ProgBuilder prog(swapmem::kSwapBase);
        prog.li(a0, 1);
        prog.padTo(branch_addr);
        isa::Label target = prog.newLabel();
        prog.branch(Op::BNE, a0, zero, target); // taken
        prog.nop();
        prog.bind(target);
        prog.swapnext();
        return prog;
    };

    SwapSchedule schedule;
    for (int i = 0; i < 2; ++i) {
        auto training = makeTraining();
        schedule.packets.push_back(packetFrom(
            training, "trigger_train", PacketKind::TriggerTrain));
    }
    // Transient packet: same branch address, not taken this time.
    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.li(a0, 0);
    prog.padTo(branch_addr);
    isa::Label target = prog.newLabel();
    prog.branch(Op::BNE, a0, zero, target); // NOT taken, predicted T
    prog.swapnext();                        // architectural path
    prog.bind(target);
    for (int i = 0; i < 4; ++i)
        prog.nop();
    prog.swapnext();
    schedule.packets.push_back(
        packetFrom(prog, "transient", PacketKind::Transient));

    DualSim sim(uarch::smallBoomConfig());
    auto result = sim.runSingle(schedule, defaultStim());
    ASSERT_TRUE(result.completed);
    ASSERT_TRUE(result.trace.windowTriggered());
    const auto *window = result.trace.principalWindow();
    ASSERT_NE(window, nullptr);
    EXPECT_EQ(window->cause, uarch::SquashCause::BranchMispredict);
    EXPECT_EQ(window->pc, branch_addr);
}

TEST(CoreSmoke, ExceptionOpensTransientWindow)
{
    // A faulting load commits late (trap_latency); younger
    // instructions execute transiently and are flushed.
    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.la(t0, swapmem::kUnmappedAddr);
    prog.ld(a0, t0, 0); // page fault
    for (int i = 0; i < 6; ++i)
        prog.addi(a1, a1, 1); // transient
    prog.swapnext();

    SwapSchedule schedule;
    schedule.packets.push_back(
        packetFrom(prog, "transient", PacketKind::Transient));

    DualSim sim(uarch::smallBoomConfig());
    auto result = sim.runSingle(schedule, defaultStim());
    ASSERT_TRUE(result.completed);
    ASSERT_FALSE(result.trace.squashes.empty());
    const auto &squash = result.trace.squashes.back();
    EXPECT_EQ(squash.cause, uarch::SquashCause::Exception);
    EXPECT_EQ(squash.exc, isa::ExcCause::LoadPageFault);
    EXPECT_GT(squash.flushed, 0u);
    EXPECT_GT(squash.transient_executed, 0u);
}

TEST(CoreSmoke, IllegalWindowOnlyOnXiangShan)
{
    auto makeSchedule = []() {
        isa::ProgBuilder prog(swapmem::kSwapBase);
        prog.illegal();
        for (int i = 0; i < 6; ++i)
            prog.addi(a1, a1, 1);
        prog.swapnext();
        SwapSchedule schedule;
        schedule.packets.push_back(
            packetFrom(prog, "transient", PacketKind::Transient));
        return schedule;
    };

    {
        // BOOM stalls illegal instructions at decode: no window.
        DualSim sim(uarch::smallBoomConfig());
        auto schedule = makeSchedule();
        auto result = sim.runSingle(schedule, defaultStim());
        ASSERT_TRUE(result.completed);
        const auto *window = result.trace.principalWindow();
        if (window != nullptr) {
            EXPECT_EQ(window->transient_executed, 0u);
        }
    }
    {
        // XiangShan lets them flow: transient window opens.
        DualSim sim(uarch::xiangshanMinimalConfig());
        auto schedule = makeSchedule();
        auto result = sim.runSingle(schedule, defaultStim());
        ASSERT_TRUE(result.completed);
        ASSERT_FALSE(result.trace.squashes.empty());
        const auto &squash = result.trace.squashes.back();
        EXPECT_EQ(squash.exc, isa::ExcCause::IllegalInstr);
        EXPECT_GT(squash.transient_executed, 0u);
    }
}

/**
 * Build the classic Spectre-V1 transient packet: a branch whose
 * condition operand comes from a cold (cache-missing) load resolves
 * late, opening a wide window on the predicted-not-taken fall-through
 * that loads the secret and encodes bit 0 into a leak-array line.
 */
isa::ProgBuilder
spectreV1Packet()
{
    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.la(t0, swapmem::kSecretAddr);
    // Probe base offset so the encode lines do not alias the secret's
    // own (direct-mapped) cache line.
    prog.la(t2, swapmem::kLeakArrayAddr + 0x100);
    prog.la(t4, swapmem::kOperandAddr); // cold line: slow condition
    prog.li(a1, 1);
    prog.ld(a0, t4, 0);                 // operand (random non-zero)
    prog.emit(Op::DIV, a0, a0, a1, 0);  // stretch the resolve delay
    isa::Label exit_lbl = prog.newLabel();
    prog.branch(Op::BNE, a0, zero, exit_lbl); // taken, predicted NT
    prog.lb(s0, t0, 0);                       // secret load (warm)
    prog.andi(t1, s0, 1);
    prog.slli(t1, t1, 6); // one cache line per bit value
    prog.add(t2, t2, t1);
    prog.ld(t3, t2, 0); // encode into dcache
    prog.nop();
    prog.bind(exit_lbl);
    prog.swapnext();
    return prog;
}

isa::ProgBuilder
secretWarmPacket()
{
    isa::ProgBuilder warm(swapmem::kSwapBase);
    warm.la(t0, swapmem::kSecretAddr);
    warm.ld(a1, t0, 0);
    warm.swapnext();
    return warm;
}

SwapSchedule
spectreV1Schedule()
{
    SwapSchedule schedule;
    auto warm = secretWarmPacket();
    schedule.packets.push_back(
        packetFrom(warm, "window_train", PacketKind::WindowTrain));
    auto prog = spectreV1Packet();
    schedule.packets.push_back(
        packetFrom(prog, "transient", PacketKind::Transient));
    schedule.transient_prot = swapmem::SecretProt::Open; // Spectre
    return schedule;
}

TEST(CoreSmoke, SpectreV1TaintsDCacheUnderDiffIft)
{
    DualSim sim(uarch::smallBoomConfig());
    SimOptions options;
    options.mode = ift::IftMode::DiffIFT;
    options.taint_log = true;
    options.sinks = true;
    auto schedule = spectreV1Schedule();
    StimulusData stim = defaultStim();
    stim.operands[0] = 1; // branch condition: taken
    auto result = sim.runDual(schedule, stim, options);

    ASSERT_TRUE(result.dut0.completed);
    ASSERT_TRUE(result.dut1.completed);
    ASSERT_TRUE(result.dut0.trace.windowTriggered());
    const auto *window = result.dut0.trace.principalWindow();
    ASSERT_NE(window, nullptr);
    EXPECT_GT(window->transient_executed, 2u)
        << "window payload must have executed transiently";

    // Taint must have propagated during the run.
    EXPECT_GT(result.dut0.taint_log.finalTaintSum(), 0u);

    // The data cache holds live tainted lines: the warmed secret line
    // AND the secret-indexed encode line.
    size_t dcache_live_tainted = 0;
    for (const auto &sink : result.dut0.sinks) {
        if (sink.module() == "dcache")
            dcache_live_tainted = sink.liveTaintedEntries();
    }
    EXPECT_GE(dcache_live_tainted, 2u);
}

TEST(CoreSmoke, DiffIftSuppressesTaintVersusCellIft)
{
    // The same Spectre-V1 run under CellIFT must accumulate strictly
    // more taint than under diffIFT: the rollback of the tainted
    // window state explodes control taints only when the gate is
    // unconditionally open.
    DualSim sim(uarch::smallBoomConfig());
    SimOptions options;
    options.taint_log = true;
    StimulusData stim = defaultStim();
    stim.operands[0] = 1;

    options.mode = ift::IftMode::DiffIFT;
    auto schedule1 = spectreV1Schedule();
    auto diff_result = sim.runDual(schedule1, stim, options);

    options.mode = ift::IftMode::CellIFT;
    auto schedule2 = spectreV1Schedule();
    auto cell_result = sim.runDual(schedule2, stim, options);

    uint64_t diff_max = 0;
    for (const auto &cycle : diff_result.dut0.taint_log.cycles)
        diff_max = std::max(diff_max, cycle.taintSum());
    uint64_t cell_max = 0;
    for (const auto &cycle : cell_result.dut0.taint_log.cycles)
        cell_max = std::max(cell_max, cycle.taintSum());

    EXPECT_GT(diff_max, 0u);
    EXPECT_GT(cell_max, diff_max * 4)
        << "CellIFT should over-taint vs diffIFT";

    // diffIFT-FN (identical control signals) must stay at or below
    // plain diffIFT: control taints are fully suppressed.
    options.mode = ift::IftMode::DiffIFTFN;
    auto schedule3 = spectreV1Schedule();
    auto fn_result = sim.runDual(schedule3, stim, options);
    uint64_t fn_max = 0;
    for (const auto &cycle : fn_result.dut0.taint_log.cycles)
        fn_max = std::max(fn_max, cycle.taintSum());
    EXPECT_LE(fn_max, diff_max);
    EXPECT_GT(fn_max, 0u); // data taints still flow
}

} // namespace
} // namespace dejavuzz
