/**
 * @file
 * Module-level unit and property tests: taint policy kernels, the
 * RTL-IR netlist + instrumentation pass (incl. the paper's Fig. 2
 * RoB-entry circuit), predictors, caches, swapMem scheduling and the
 * coverage matrix.
 */

#include <gtest/gtest.h>

#include "ift/coverage.hh"
#include "ift/policy.hh"
#include "ift/taint.hh"
#include "rtl/fig2_rob.hh"
#include "rtl/netlist.hh"
#include "swapmem/memory.hh"
#include "swapmem/packet.hh"
#include "uarch/caches.hh"
#include "uarch/predictors.hh"
#include "util/rng.hh"

namespace dejavuzz {
namespace {

using ift::TV;

// --- taint policy properties (parameterized sweeps) ---------------------

class PolicyProperty : public ::testing::TestWithParam<int> {};

TEST_P(PolicyProperty, NoTaintInNoTaintOut)
{
    Rng rng(GetParam() * 31 + 7);
    for (int i = 0; i < 200; ++i) {
        TV a = ift::clean(rng.next());
        TV b = ift::clean(rng.next());
        EXPECT_EQ(ift::andCell(a, b).t, 0u);
        EXPECT_EQ(ift::orCell(a, b).t, 0u);
        EXPECT_EQ(ift::xorCell(a, b).t, 0u);
        EXPECT_EQ(ift::addCell(a, b).t, 0u);
        EXPECT_EQ(ift::subCell(a, b).t, 0u);
        EXPECT_EQ(ift::mulLikeCell(a.v * b.v, a, b).t, 0u);
    }
}

TEST_P(PolicyProperty, AndPolicyMatchesTruthTable)
{
    // Policy 1: a tainted input bit taints the output bit only when
    // the other operand's value admits both outcomes (is 1), or both
    // are tainted.
    Rng rng(GetParam() * 131 + 3);
    for (int i = 0; i < 200; ++i) {
        TV a{rng.next(), rng.next()};
        TV b{rng.next(), rng.next()};
        TV out = ift::andCell(a, b);
        uint64_t expect =
            (a.v & b.t) | (b.v & a.t) | (a.t & b.t);
        EXPECT_EQ(out.t, expect);
        EXPECT_EQ(out.v, a.v & b.v);
    }
}

TEST_P(PolicyProperty, DiffIftIsSubsetOfCellIft)
{
    // For any mux evaluation, diffIFT's output taint is a subset of
    // CellIFT's (the diff gate only ever suppresses).
    Rng rng(GetParam() * 17 + 11);
    for (int i = 0; i < 200; ++i) {
        TV sel{rng.below(2), rng.below(2)};
        TV a{rng.next(), rng.next()};
        TV b{rng.next(), rng.next()};

        ift::TaintCtx cell;
        cell.begin(ift::IftMode::CellIFT, nullptr, nullptr);
        TV cell_out = cell.mux(1, sel, a, b);

        // diffIFT with a sibling trace whose select value randomly
        // matches or differs.
        ift::ControlTrace sibling;
        sibling.record(1, rng.below(2));
        ift::TaintCtx diff;
        diff.begin(ift::IftMode::DiffIFT, nullptr, &sibling);
        TV diff_out = diff.mux(1, sel, a, b);

        EXPECT_EQ(diff_out.v, cell_out.v);
        EXPECT_EQ(diff_out.t & ~cell_out.t, 0u)
            << "diffIFT must never taint more than CellIFT";
    }
}

TEST_P(PolicyProperty, FnModeNeverPropagatesControlTaint)
{
    Rng rng(GetParam() * 97 + 5);
    ift::TaintCtx ctx;
    ctx.begin(ift::IftMode::DiffIFTFN, nullptr, nullptr);
    for (int i = 0; i < 100; ++i) {
        TV sel{rng.below(2), 1}; // tainted select
        TV a = ift::clean(rng.next());
        TV b = ift::clean(rng.next());
        TV out = ctx.mux(1, sel, a, b);
        EXPECT_EQ(out.t, 0u); // data taints only, and inputs are clean
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PolicyProperty,
                         ::testing::Range(0, 8));

TEST(Policies, StructuralDivergenceOpensGate)
{
    // A missing or mismatching sibling record means the pipelines
    // diverged: the gate must open.
    ift::ControlTrace sibling;
    sibling.record(42, 1);
    ift::TaintCtx ctx;
    ctx.begin(ift::IftMode::DiffIFT, nullptr, &sibling);
    EXPECT_FALSE(ctx.gate(42, 1)); // same sig, same value
    EXPECT_TRUE(ctx.gate(42, 1));  // past the end: divergence
    ift::TaintCtx ctx2;
    ctx2.begin(ift::IftMode::DiffIFT, nullptr, &sibling);
    EXPECT_TRUE(ctx2.gate(7, 1)); // different signal id: divergence
}

// --- RTL IR: Fig. 2 RoB-entry circuit ------------------------------------

TEST(RtlFig2, CellIftTaintsEveryEntryOnTaintedTail)
{
    auto rob = rtl::buildFig2Rob(8);
    rtl::Evaluator eval(rob.netlist);
    ift::TaintCtx ctx;
    ctx.begin(ift::IftMode::CellIFT, nullptr, nullptr);

    // Clean enqueue into entry 3.
    eval.setInput(rob.enq_uopc, TV{0x2a, 0});
    eval.setInput(rob.enq_valid, TV{1, 0});
    eval.setInput(rob.rob_tail_idx, TV{3, 0});
    eval.step(ctx);
    EXPECT_EQ(eval.regState(rob.uopc_regs[3]).v, 0x2au);
    EXPECT_EQ(eval.taintedRegCount(), 0u);

    // Rollback: the tail pointer is tainted -> under CellIFT every
    // entry's update mux has a tainted select and all 8 uopc
    // registers become tainted at once (the paper's taint explosion).
    eval.setInput(rob.enq_uopc, TV{0x15, 0});
    eval.setInput(rob.enq_valid, TV{1, 1});
    eval.setInput(rob.rob_tail_idx, TV{5, 0xff});
    eval.step(ctx);
    EXPECT_EQ(eval.taintedRegCount(), 8u);
}

TEST(RtlFig2, DiffIftSuppressesWhenVariantsAgree)
{
    auto rob = rtl::buildFig2Rob(8);
    rtl::Evaluator eval(rob.netlist);

    // Sibling trace produced by an identical evaluation: every
    // control signal matches, so no control taint propagates.
    ift::ControlTrace sibling;
    {
        rtl::Evaluator twin(rob.netlist);
        ift::TaintCtx rec;
        rec.begin(ift::IftMode::DiffIFT, &sibling, nullptr);
        twin.setInput(rob.enq_uopc, TV{0x15, 0});
        twin.setInput(rob.enq_valid, TV{1, 1});
        twin.setInput(rob.rob_tail_idx, TV{5, 0xff});
        twin.step(rec);
    }
    ift::TaintCtx ctx;
    ctx.begin(ift::IftMode::DiffIFT, nullptr, &sibling);
    eval.setInput(rob.enq_uopc, TV{0x15, 0});
    eval.setInput(rob.enq_valid, TV{1, 1});
    eval.setInput(rob.rob_tail_idx, TV{5, 0xff});
    eval.step(ctx);
    // Data taint reaches only the written entry; no explosion.
    EXPECT_LE(eval.taintedRegCount(), 1u);
}

TEST(RtlInstrument, CellIftFlattensMemoriesAndTimesOut)
{
    rtl::Netlist netlist;
    netlist.memory("big", 4096, 64);
    auto diff = rtl::instrument(netlist, ift::IftMode::DiffIFT,
                                100'000);
    EXPECT_FALSE(diff.timed_out);
    EXPECT_EQ(diff.flattened_bits, 0u);
    auto cell = rtl::instrument(netlist, ift::IftMode::CellIFT,
                                100'000);
    EXPECT_TRUE(cell.timed_out)
        << "4096x64 memory flattens past the cell budget";
    auto cell_big = rtl::instrument(netlist, ift::IftMode::CellIFT,
                                    10'000'000);
    EXPECT_FALSE(cell_big.timed_out);
    EXPECT_EQ(cell_big.flattened_bits, 4096u * 64u);
}

// --- predictors ------------------------------------------------------------

TEST(Predictors, BhtTwoBitCounterConverges)
{
    uarch::Bht bht(64);
    EXPECT_FALSE(bht.predictTaken(0x1000)); // weakly not-taken reset
    bht.update(0x1000, true, false);
    EXPECT_TRUE(bht.predictTaken(0x1000)); // one update crosses
    bht.update(0x1000, false, false);
    bht.update(0x1000, false, false);
    EXPECT_FALSE(bht.predictTaken(0x1000));
    // Aliasing: same index every bht-size stride.
    bht.update(0x1000, true, false);
    bht.update(0x1000, true, false);
    EXPECT_TRUE(bht.predictTaken(0x1000 + 64 * 4));
}

TEST(Predictors, RasPartialVsFullRecovery)
{
    uarch::Ras ras(4);
    ras.commitPush(TV{0x100, 0});
    ras.commitPush(TV{0x200, 0});
    ras.recover(false); // sync spec with committed
    // Transient wrap: 4 pushes overwrite everything incl. below-TOS.
    for (int i = 0; i < 4; ++i)
        ras.push(TV{0xdead, ~0ULL});
    ras.recover(true); // B2: TOS + top entry only
    EXPECT_EQ(ras.entry(1).v, 0x200u); // top restored
    EXPECT_EQ(ras.entry(0).v, 0xdeadu); // below-TOS corrupted
    for (int i = 0; i < 4; ++i)
        ras.push(TV{0xbeef, ~0ULL});
    ras.recover(false); // full restore
    EXPECT_EQ(ras.entry(0).v, 0x100u);
    EXPECT_EQ(ras.entry(1).v, 0x200u);
}

TEST(Predictors, LoopPredictorLearnsTripCount)
{
    uarch::LoopPred loop(8);
    uint64_t pc = 0x2000;
    // Three identical trips of 4 taken + 1 not-taken.
    for (int trip = 0; trip < 3; ++trip) {
        for (int i = 0; i < 4; ++i)
            loop.update(pc, true, false);
        loop.update(pc, false, false);
    }
    bool taken = false;
    ASSERT_TRUE(loop.predict(pc, taken));
}

// --- caches ------------------------------------------------------------------

TEST(Caches, LfbRetainsStaleTaintWithDeadLiveness)
{
    uarch::DCache dcache(16, 2, 2, 2, 4);
    int mshr = dcache.allocMshr(TV{0x1000, ~0ULL}, false);
    ASSERT_GE(mshr, 0);
    std::vector<TV> refill(2);
    refill[mshr] = TV{0xdeadbeef, ~0ULL}; // secret-tainted fill data
    for (int i = 0; i < 4; ++i)
        dcache.tick(refill);
    EXPECT_TRUE(dcache.mshrDone(mshr));
    EXPECT_TRUE(dcache.hit(0x1000));
    // The paper's liveness example: LFB data tainted, owner invalid.
    std::vector<ift::SinkSnapshot> sinks;
    ift::SinkWriter writer(sinks);
    dcache.appendSinks(writer);
    writer.finish();
    bool found = false;
    for (const auto &sink : sinks) {
        if (sink.module() != "lfb")
            continue;
        found = true;
        EXPECT_GT(sink.taintedEntries(), 0u);
        EXPECT_EQ(sink.liveTaintedEntries(), 0u)
            << "stale LFB data must be dead";
    }
    EXPECT_TRUE(found);
}

TEST(Caches, ICacheRefillEngineIsExclusive)
{
    uarch::ICache icache(8, 4);
    EXPECT_FALSE(icache.hit(0x4000));
    EXPECT_TRUE(icache.startRefill(0x4000, false));
    EXPECT_FALSE(icache.startRefill(0x8000, false)) << "engine busy";
    for (int i = 0; i < 4; ++i)
        icache.tick();
    EXPECT_TRUE(icache.hit(0x4000));
    EXPECT_FALSE(icache.refillBusy());
}

// --- swapMem -------------------------------------------------------------------

TEST(SwapMem, ScheduleAppliesProtectionAtTransientPacket)
{
    swapmem::SwapSchedule schedule;
    swapmem::SwapPacket train;
    train.kind = swapmem::PacketKind::TriggerTrain;
    isa::Instr nop;
    nop.op = isa::Op::ADDI;
    train.instrs = {nop};
    schedule.packets.push_back(train);
    swapmem::SwapPacket transient;
    transient.kind = swapmem::PacketKind::Transient;
    transient.instrs = {nop};
    schedule.packets.push_back(transient);
    schedule.transient_prot = swapmem::SecretProt::Pmp;

    swapmem::Memory mem;
    swapmem::SwapRuntime runtime(schedule);
    EXPECT_EQ(runtime.start(mem), swapmem::kSwapBase);
    EXPECT_EQ(mem.secretProt(), swapmem::SecretProt::Open);
    runtime.advance(mem);
    EXPECT_EQ(mem.secretProt(), swapmem::SecretProt::Pmp);
    EXPECT_EQ(runtime.advance(mem), 0u);
    EXPECT_TRUE(runtime.done());
}

TEST(SwapMem, ReductionHelperPreservesTransient)
{
    swapmem::SwapSchedule schedule;
    isa::Instr nop;
    nop.op = isa::Op::ADDI;
    for (int i = 0; i < 3; ++i) {
        swapmem::SwapPacket train;
        train.kind = swapmem::PacketKind::TriggerTrain;
        train.instrs = {nop, nop};
        schedule.packets.push_back(train);
    }
    swapmem::SwapPacket transient;
    transient.kind = swapmem::PacketKind::Transient;
    transient.instrs = {nop};
    schedule.packets.push_back(transient);

    EXPECT_EQ(schedule.trainingOverhead(), 6u);
    auto reduced = schedule.without(1);
    EXPECT_EQ(reduced.packets.size(), 3u);
    EXPECT_EQ(reduced.trainingOverhead(), 4u);
    EXPECT_EQ(reduced.transientIndex(), 2u);
}

// --- coverage matrix ------------------------------------------------------------

TEST(Coverage, TuplesArePerModulePerCount)
{
    ift::TaintCoverage coverage;
    uint16_t m0 = coverage.registerModule("a", 16);
    uint16_t m1 = coverage.registerModule("b", 16);
    EXPECT_FALSE(coverage.sample(m0, 0)) << "zero counts are ignored";
    EXPECT_TRUE(coverage.sample(m0, 3));
    EXPECT_FALSE(coverage.sample(m0, 3)) << "repeat: no new point";
    EXPECT_TRUE(coverage.sample(m1, 3)) << "same count, other module";
    EXPECT_TRUE(coverage.sample(m0, 5));
    EXPECT_EQ(coverage.points(), 3u);
    EXPECT_EQ(coverage.takeNewPoints(), 3u);
    EXPECT_EQ(coverage.takeNewPoints(), 0u);
    // Counts past the registered maximum clamp into the last slot.
    EXPECT_TRUE(coverage.sample(m0, 999));
    EXPECT_FALSE(coverage.sample(m0, 1000));
}

} // namespace
} // namespace dejavuzz
