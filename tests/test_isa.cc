/**
 * @file
 * ISA layer tests: encode/decode round trips, instruction metadata,
 * builder label fixups and li expansion.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "isa/encoding.hh"
#include "isa/instr.hh"
#include "util/rng.hh"

namespace dejavuzz::isa {
namespace {

Instr
make(Op op, uint8_t rd, uint8_t rs1, uint8_t rs2, int64_t imm)
{
    Instr instr;
    instr.op = op;
    instr.rd = rd;
    instr.rs1 = rs1;
    instr.rs2 = rs2;
    instr.imm = imm;
    return instr;
}

TEST(IsaEncoding, NopIsCanonical)
{
    Instr nop = make(Op::ADDI, 0, 0, 0, 0);
    EXPECT_EQ(encode(nop), kNopWord);
    Instr decoded = decode(kNopWord);
    EXPECT_EQ(decoded.op, Op::ADDI);
    EXPECT_EQ(decoded.rd, 0);
    EXPECT_EQ(decoded.imm, 0);
}

TEST(IsaEncoding, IllegalWordDecodesAsIllegal)
{
    EXPECT_EQ(decode(kIllegalWord).op, Op::ILLEGAL);
    EXPECT_EQ(decode(0x00000000u).op, Op::ILLEGAL);
    EXPECT_EQ(decode(0xffffffffu).op, Op::ILLEGAL);
}

TEST(IsaEncoding, KnownEncodings)
{
    // Cross-checked against the RISC-V spec / binutils.
    EXPECT_EQ(encode(make(Op::ADDI, 5, 6, 0, -1)), 0xfff30293u);
    EXPECT_EQ(encode(make(Op::LUI, 10, 0, 0, 0x12345)), 0x12345537u);
    EXPECT_EQ(encode(make(Op::JAL, 1, 0, 0, 16)), 0x010000efu);
    EXPECT_EQ(encode(make(Op::JALR, 0, 1, 0, 0)), 0x00008067u);
    EXPECT_EQ(encode(make(Op::ECALL, 0, 0, 0, 0)), 0x00000073u);
    EXPECT_EQ(encode(make(Op::MRET, 0, 0, 0, 0)), 0x30200073u);
    EXPECT_EQ(encode(make(Op::LD, 8, 5, 0, 8)), 0x0082b403u);
    EXPECT_EQ(encode(make(Op::SD, 0, 2, 8, 16)), 0x00813823u);
    EXPECT_EQ(encode(make(Op::BEQ, 0, 10, 10, 8)), 0x00a50463u);
}

/** Round-trip sweep over every op with randomized fields. */
class RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RoundTrip, EncodeDecodeIdentity)
{
    Op op = static_cast<Op>(GetParam());
    if (op == Op::ILLEGAL)
        GTEST_SKIP() << "illegal has no canonical encoding";
    dejavuzz::Rng rng(GetParam() * 7919 + 13);
    for (int trial = 0; trial < 50; ++trial) {
        Instr instr;
        instr.op = op;
        instr.rd = static_cast<uint8_t>(rng.below(32));
        instr.rs1 = static_cast<uint8_t>(rng.below(32));
        instr.rs2 = static_cast<uint8_t>(rng.below(32));
        switch (opClass(op)) {
          case OpClass::Branch:
            instr.imm = (static_cast<int64_t>(rng.below(2048)) - 1024)
                        * 2;
            break;
          case OpClass::Jal:
            instr.imm =
                (static_cast<int64_t>(rng.below(1 << 19)) - (1 << 18)) *
                2;
            break;
          case OpClass::System:
            if (op == Op::ECALL || op == Op::EBREAK || op == Op::MRET ||
                op == Op::SRET) {
                instr.rd = instr.rs1 = instr.rs2 = 0;
                instr.imm = 0;
            } else {
                instr.imm = static_cast<int64_t>(rng.below(4096));
            }
            break;
          case OpClass::Fence:
          case OpClass::FpMove:
            instr.imm = 0;
            if (opClass(op) == OpClass::Fence)
                instr.rd = instr.rs1 = instr.rs2 = 0;
            else
                instr.rs2 = 0;
            break;
          default:
            switch (op) {
              case Op::SLLI: case Op::SRLI: case Op::SRAI:
                instr.imm = static_cast<int64_t>(rng.below(64));
                break;
              case Op::SLLIW: case Op::SRLIW: case Op::SRAIW:
                instr.imm = static_cast<int64_t>(rng.below(32));
                break;
              default:
                instr.imm =
                    static_cast<int64_t>(rng.below(4096)) - 2048;
                break;
            }
            break;
        }
        // Zero the fields the op does not use (decode normalizes
        // unused fields to zero).
        if (!readsIntRs1(op) && !fpRs1(op))
            instr.rs1 = 0;
        if (!readsIntRs2(op) && !fpRs2(op))
            instr.rs2 = 0;
        if (!writesIntRd(op) && !fpRd(op))
            instr.rd = 0;
        if (opClass(op) == OpClass::IntAlu ||
            opClass(op) == OpClass::MulDiv ||
            opClass(op) == OpClass::FpAlu ||
            opClass(op) == OpClass::FpDiv) {
            bool has_imm =
                !readsIntRs2(op) && opClass(op) == OpClass::IntAlu &&
                op != Op::LUI && op != Op::AUIPC;
            if (!has_imm && op != Op::LUI && op != Op::AUIPC)
                instr.imm = readsIntRs2(op) || fpRs2(op) ? 0 : instr.imm;
        }
        if (op == Op::LUI || op == Op::AUIPC)
            instr.imm = static_cast<int64_t>(rng.below(1 << 20));
        if (opClass(op) == OpClass::MulDiv ||
            opClass(op) == OpClass::FpAlu ||
            opClass(op) == OpClass::FpDiv ||
            (opClass(op) == OpClass::IntAlu && readsIntRs2(op)))
            instr.imm = 0;

        Instr decoded = decode(encode(instr));
        EXPECT_EQ(decoded.op, instr.op) << mnemonic(op);
        EXPECT_EQ(decoded.rd, instr.rd) << mnemonic(op);
        EXPECT_EQ(decoded.rs1, instr.rs1) << mnemonic(op);
        EXPECT_EQ(decoded.rs2, instr.rs2) << mnemonic(op);
        EXPECT_EQ(decoded.imm, instr.imm) << mnemonic(op);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, RoundTrip,
    ::testing::Range(0, static_cast<int>(Op::NumOps) - 1),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string name = mnemonic(static_cast<Op>(info.param));
        for (char &c : name) {
            if (c == '.')
                c = '_';
        }
        return name;
    });

TEST(IsaMeta, CallRetIdioms)
{
    EXPECT_TRUE(isCall(make(Op::JAL, 1, 0, 0, 64)));
    EXPECT_TRUE(isCall(make(Op::JALR, 1, 10, 0, 0)));
    EXPECT_FALSE(isCall(make(Op::JAL, 0, 0, 0, 64)));
    EXPECT_TRUE(isRet(make(Op::JALR, 0, 1, 0, 0)));
    EXPECT_FALSE(isRet(make(Op::JALR, 0, 1, 0, 4)));
    EXPECT_FALSE(isRet(make(Op::JALR, 1, 1, 0, 0)));
}

TEST(IsaMeta, AccessBytes)
{
    EXPECT_EQ(accessBytes(Op::LB), 1u);
    EXPECT_EQ(accessBytes(Op::LHU), 2u);
    EXPECT_EQ(accessBytes(Op::LW), 4u);
    EXPECT_EQ(accessBytes(Op::FLD), 8u);
    EXPECT_EQ(accessBytes(Op::SD), 8u);
    EXPECT_EQ(accessBytes(Op::ADD), 0u);
}

TEST(Builder, LabelsResolveForwardAndBackward)
{
    ProgBuilder prog(0x1000);
    Label fwd = prog.newLabel();
    Label back = prog.newLabel();
    prog.bind(back);
    prog.nop();
    prog.branch(Op::BEQ, 0, 0, fwd);
    prog.jal(0, back);
    prog.bind(fwd);
    prog.nop();
    const auto &instrs = prog.finish();
    // beq at 0x1004 -> fwd at 0x100c: offset 8.
    EXPECT_EQ(instrs[1].imm, 8);
    // jal at 0x1008 -> back at 0x1000: offset -8.
    EXPECT_EQ(instrs[2].imm, -8);
}

TEST(Builder, PadToAligns)
{
    ProgBuilder prog(0x2000);
    prog.nop();
    prog.padTo(0x2100);
    EXPECT_EQ(prog.here(), 0x2100u);
    EXPECT_EQ(prog.size(), 0x100u / 4);
}

TEST(Builder, DisasmSmoke)
{
    EXPECT_EQ(disasm(make(Op::ADDI, 5, 6, 0, -1)), "addi t0, t1, -1");
    EXPECT_EQ(disasm(make(Op::LD, 8, 5, 0, 8)), "ld s0, 8(t0)");
    EXPECT_EQ(disasm(make(Op::JALR, 0, 1, 0, 0)), "jalr zero, 0(ra)");
}

} // namespace
} // namespace dejavuzz::isa
