/**
 * @file
 * The triage pipeline: signature clustering, the ddmin shrinker, PoC
 * artifacts and the end-to-end triageLedger() contract.
 *
 * The clustering tests pin the determinism guarantees (permutation
 * invariance, singleton preservation, near-duplicate merging); the
 * shrinker tests are property-based over real Phase-1-triggered
 * reproducers from a small campaign (signature preserved, idempotent,
 * never growing); the pipeline tests assert the artifacts CI gates
 * on — every emitted PoC re-reproduces standalone and two triage
 * passes over the same ledger serialize byte-identically.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/poc_suite.hh"
#include "campaign/io_util.hh"
#include "campaign/ledger.hh"
#include "campaign/orchestrator.hh"
#include "replay/replay.hh"
#include "report/triage_log.hh"
#include "triage/cluster.hh"
#include "triage/poc.hh"
#include "triage/shrink.hh"
#include "triage/signature.hh"
#include "triage/triage.hh"
#include "uarch/config.hh"

namespace dejavuzz {
namespace {

using campaign::BugRecord;
using campaign::CampaignOptions;
using campaign::CampaignOrchestrator;

/** Hand-build a ledger record with the given signature axes. */
BugRecord
record(core::AttackType attack, core::TriggerKind window,
       std::initializer_list<const char *> components,
       bool masked = false)
{
    BugRecord rec;
    rec.report.attack = attack;
    rec.report.window = window;
    rec.report.masked_address = masked;
    for (const char *component : components)
        rec.report.components.insert(component);
    rec.config = "SmallBOOM";
    rec.variant = "full";
    return rec;
}

CampaignOptions
smallCampaign(unsigned workers, uint64_t iters)
{
    CampaignOptions options;
    options.workers = workers;
    options.master_seed = 7;
    options.total_iterations = iters;
    options.epoch_iterations = 125;
    options.base_config = uarch::smallBoomConfig();
    return options;
}

/** A fuzzer configured like the ledger's origin (full variant). */
core::Fuzzer &
originFuzzer(triage::FuzzerCache &cache, const BugRecord &rec)
{
    std::string error;
    core::Fuzzer *fuzzer = cache.get(rec.config, rec.variant, &error);
    EXPECT_NE(fuzzer, nullptr) << error;
    return *fuzzer;
}

// --- signatures -----------------------------------------------------------

TEST(TriageSignature, SimilarityAxes)
{
    using core::AttackType;
    using core::TriggerKind;
    const auto a = triage::signatureOf(
        record(AttackType::Spectre, TriggerKind::BranchMispredict,
               {"dcache", "lsu"})
            .report);
    const auto same = triage::signatureOf(
        record(AttackType::Spectre, TriggerKind::BranchMispredict,
               {"dcache", "lsu"})
            .report);
    const auto half = triage::signatureOf(
        record(AttackType::Spectre, TriggerKind::ReturnMispredict,
               {"dcache"})
            .report);
    const auto disjoint = triage::signatureOf(
        record(AttackType::Spectre, TriggerKind::BranchMispredict,
               {"icache"})
            .report);
    const auto meltdown = triage::signatureOf(
        record(AttackType::Meltdown, TriggerKind::BranchMispredict,
               {"dcache", "lsu"})
            .report);

    EXPECT_DOUBLE_EQ(triage::similarity(a, same), 1.0);
    // Window kind deliberately does not gate similarity.
    EXPECT_DOUBLE_EQ(triage::similarity(a, half), 0.5);
    EXPECT_DOUBLE_EQ(triage::similarity(a, disjoint), 0.0);
    // Attack family gates to zero regardless of overlap.
    EXPECT_DOUBLE_EQ(triage::similarity(a, meltdown), 0.0);
    // Symmetry.
    EXPECT_DOUBLE_EQ(triage::similarity(half, a),
                     triage::similarity(a, half));
    // Two empty component sets of the same family are identical.
    const auto empty1 = triage::signatureOf(
        record(AttackType::Spectre, TriggerKind::BranchMispredict, {})
            .report);
    const auto empty2 = triage::signatureOf(
        record(AttackType::Spectre, TriggerKind::ReturnMispredict, {})
            .report);
    EXPECT_DOUBLE_EQ(triage::similarity(empty1, empty2), 1.0);
    // The masked-address flag is a distinct root-cause axis.
    const auto masked = triage::signatureOf(
        record(AttackType::Spectre, TriggerKind::BranchMispredict,
               {"dcache", "lsu"}, true)
            .report);
    EXPECT_DOUBLE_EQ(triage::similarity(a, masked), 0.0);
}

// --- clustering -----------------------------------------------------------

TEST(TriageCluster, NearDuplicatesMergeSingletonsStay)
{
    using core::AttackType;
    using core::TriggerKind;
    std::vector<BugRecord> ledger = {
        // Two near-duplicates: {dcache,lsu} vs {dcache} = 0.5.
        record(AttackType::Spectre, TriggerKind::BranchMispredict,
               {"dcache", "lsu"}),
        record(AttackType::Spectre, TriggerKind::ReturnMispredict,
               {"dcache"}),
        // Disjoint singleton.
        record(AttackType::Spectre, TriggerKind::BranchMispredict,
               {"icache"}),
        // Same components but different family: singleton.
        record(AttackType::Meltdown, TriggerKind::LoadAccessFault,
               {"dcache", "lsu"}),
    };

    const auto clusters = triage::clusterLedger(ledger, {});
    ASSERT_EQ(clusters.size(), 3u);
    // Dense ids sorted by representative key.
    for (size_t i = 0; i < clusters.size(); ++i) {
        EXPECT_EQ(clusters[i].id,
                  std::string("C00") + std::to_string(i));
        EXPECT_EQ(clusters[i].representative,
                  clusters[i].members.front());
        EXPECT_TRUE(std::is_sorted(clusters[i].members.begin(),
                                   clusters[i].members.end()));
    }
    // The two Spectre dcache entries share a cluster; the others are
    // singletons.
    const std::string merged = triage::clusterOf(
        clusters, ledger[0].report.key());
    EXPECT_EQ(merged,
              triage::clusterOf(clusters, ledger[1].report.key()));
    EXPECT_NE(merged,
              triage::clusterOf(clusters, ledger[2].report.key()));
    EXPECT_NE(merged,
              triage::clusterOf(clusters, ledger[3].report.key()));
    EXPECT_EQ(triage::clusterOf(clusters, "no-such-key"), "");
}

TEST(TriageCluster, ThresholdControlsMerging)
{
    using core::AttackType;
    using core::TriggerKind;
    std::vector<BugRecord> ledger = {
        record(AttackType::Spectre, TriggerKind::BranchMispredict,
               {"dcache", "lsu"}),
        record(AttackType::Spectre, TriggerKind::BranchMispredict,
               {"dcache"}),
    };
    triage::ClusterOptions strict;
    strict.threshold = 0.75;
    EXPECT_EQ(triage::clusterLedger(ledger, strict).size(), 2u);
    triage::ClusterOptions loose;
    loose.threshold = 0.5;
    EXPECT_EQ(triage::clusterLedger(ledger, loose).size(), 1u);
}

TEST(TriageCluster, OrderIndependentUnderPermutation)
{
    // A real campaign ledger, clustered in ledger order and in
    // several deterministic permutations: identical clusters, ids
    // and members either way.
    CampaignOrchestrator orchestrator(smallCampaign(2, 1000));
    orchestrator.run();
    std::vector<BugRecord> ledger = orchestrator.ledger().entries();
    ASSERT_GT(ledger.size(), 2u);

    const auto baseline = triage::clusterLedger(ledger, {});
    auto permuted = ledger;
    std::reverse(permuted.begin(), permuted.end());
    for (int round = 0; round < 3; ++round) {
        // Deterministic reshuffle: rotate by a coprime-ish stride.
        std::rotate(permuted.begin(),
                    permuted.begin() + 1 + round,
                    permuted.end());
        const auto clusters = triage::clusterLedger(permuted, {});
        ASSERT_EQ(clusters.size(), baseline.size());
        for (size_t i = 0; i < clusters.size(); ++i) {
            EXPECT_EQ(clusters[i].id, baseline[i].id);
            EXPECT_EQ(clusters[i].representative,
                      baseline[i].representative);
            EXPECT_EQ(clusters[i].members, baseline[i].members);
        }
    }
}

// --- shrinker -------------------------------------------------------------

TEST(TriageShrink, PropertiesOverCampaignReproducers)
{
    // Property pass over a randomized corpus of real
    // Phase-1-triggered reproducers: for every ledger bug of a small
    // campaign the minimized case must (a) reproduce the exact
    // signature, (b) never grow, (c) be a shrink fixpoint.
    CampaignOrchestrator orchestrator(smallCampaign(2, 1000));
    orchestrator.run();
    const std::vector<BugRecord> ledger =
        orchestrator.ledger().entries();
    ASSERT_GT(ledger.size(), 0u);

    triage::FuzzerCache cache;
    size_t checked = 0;
    for (const BugRecord &rec : ledger) {
        if (checked == 4)
            break; // bound the test's runtime; cases are ~equivalent
        ++checked;
        core::Fuzzer &fuzzer = originFuzzer(cache, rec);
        const std::string key = rec.report.key();

        triage::ShrinkStats stats;
        const core::TestCase shrunk =
            triage::shrinkCase(fuzzer, rec.repro, key, &stats);
        ASSERT_TRUE(stats.reproduced_initially) << key;

        // (a) the minimized case reproduces the same signature —
        // hence lands in the same cluster as the original.
        const auto outcome = fuzzer.replayCase(shrunk);
        ASSERT_TRUE(outcome.report.has_value()) << key;
        EXPECT_EQ(outcome.report->key(), key);

        // (b) monotone: never more packets/instructions than before.
        EXPECT_LE(stats.packets_after, stats.packets_before);
        EXPECT_LE(stats.instrs_after, stats.instrs_before);
        EXPECT_LE(stats.effective_after, stats.effective_before);

        // (c) idempotent: a second shrink changes nothing.
        triage::ShrinkStats again;
        const core::TestCase twice =
            triage::shrinkCase(fuzzer, shrunk, key, &again);
        EXPECT_EQ(campaign::hashTestCase(twice),
                  campaign::hashTestCase(shrunk))
            << key;
        EXPECT_EQ(again.instrs_after, stats.instrs_after);
        EXPECT_EQ(again.effective_after, stats.effective_after);
    }
}

TEST(TriageShrink, NonReproducingInputReturnedUnchanged)
{
    CampaignOrchestrator orchestrator(smallCampaign(1, 500));
    orchestrator.run();
    const std::vector<BugRecord> ledger =
        orchestrator.ledger().entries();
    ASSERT_GT(ledger.size(), 0u);

    triage::FuzzerCache cache;
    core::Fuzzer &fuzzer = originFuzzer(cache, ledger[0]);
    triage::ShrinkStats stats;
    const core::TestCase out = triage::shrinkCase(
        fuzzer, ledger[0].repro, "not|a|real,key,", &stats);
    EXPECT_FALSE(stats.reproduced_initially);
    EXPECT_EQ(stats.oracle_calls, 1u);
    EXPECT_EQ(campaign::hashTestCase(out),
              campaign::hashTestCase(ledger[0].repro));
}

// --- PoC artifacts --------------------------------------------------------

TEST(TriagePoc, FileRoundTripsExactly)
{
    CampaignOrchestrator orchestrator(smallCampaign(1, 500));
    orchestrator.run();
    const std::vector<BugRecord> ledger =
        orchestrator.ledger().entries();
    ASSERT_GT(ledger.size(), 0u);

    triage::PocArtifact poc;
    poc.cluster = "C007";
    poc.key = ledger[0].report.key();
    poc.config = ledger[0].config;
    poc.variant = ledger[0].variant;
    poc.tc = ledger[0].repro;

    std::ostringstream os;
    triage::writePocFile(os, poc);
    const std::string text = os.str();
    EXPECT_EQ(text.rfind("DVZPOC 1\n", 0), 0u);
    EXPECT_NE(text.find("\nend\n"), std::string::npos);

    std::istringstream is(text);
    triage::PocArtifact loaded;
    std::string error;
    ASSERT_TRUE(triage::readPocFile(is, loaded, &error)) << error;
    EXPECT_EQ(loaded.cluster, poc.cluster);
    EXPECT_EQ(loaded.key, poc.key);
    EXPECT_EQ(loaded.config, poc.config);
    EXPECT_EQ(loaded.variant, poc.variant);
    EXPECT_EQ(campaign::hashTestCase(loaded.tc),
              campaign::hashTestCase(poc.tc));

    // Serialization is deterministic.
    std::ostringstream os2;
    triage::writePocFile(os2, poc);
    EXPECT_EQ(os2.str(), text);

    EXPECT_EQ(triage::pocFileName("C007"), "C007.dvzpoc");
}

TEST(TriagePoc, MalformedFilesRejected)
{
    triage::PocArtifact out;
    std::string error;
    {
        std::istringstream is("not a poc\n");
        EXPECT_FALSE(triage::readPocFile(is, out, &error));
        EXPECT_NE(error.find("DVZPOC"), std::string::npos);
    }
    {
        // Valid magic, no case blob.
        std::istringstream is("DVZPOC 1\nkey: k\nconfig: c\n"
                              "variant: v\nend\n");
        EXPECT_FALSE(triage::readPocFile(is, out, &error));
        EXPECT_NE(error.find("case"), std::string::npos);
    }
    {
        // Truncated: no end terminator.
        std::istringstream is("DVZPOC 1\nkey: k\n");
        EXPECT_FALSE(triage::readPocFile(is, out, &error));
        EXPECT_NE(error.find("end"), std::string::npos);
    }
    {
        // Unknown field (forward-compat means a version bump).
        std::istringstream is("DVZPOC 1\nbogus: x\nend\n");
        EXPECT_FALSE(triage::readPocFile(is, out, &error));
        EXPECT_NE(error.find("bogus"), std::string::npos);
    }
    {
        // Corrupt hex.
        std::istringstream is("DVZPOC 1\nkey: k\nconfig: c\n"
                              "variant: v\ncase: zz\nend\n");
        EXPECT_FALSE(triage::readPocFile(is, out, &error));
        EXPECT_NE(error.find("hex"), std::string::npos);
    }
}

// --- end-to-end pipeline --------------------------------------------------

TEST(TriagePipeline, PocsReproduceAndArtifactsAreDeterministic)
{
    CampaignOrchestrator orchestrator(smallCampaign(2, 1000));
    orchestrator.run();
    const std::vector<BugRecord> ledger =
        orchestrator.ledger().entries();
    ASSERT_GT(ledger.size(), 0u);

    triage::TriageOptions options;
    triage::FuzzerCache cache;
    const triage::TriageResult result =
        triage::triageLedger(ledger, options, cache);

    ASSERT_GT(result.clusters.size(), 0u);
    ASSERT_EQ(result.matrix.size(), result.ledger.size());
    // One PoC per cluster: every representative is a replayable
    // first-reporter case, so no cluster may be skipped.
    ASSERT_EQ(result.pocs.size(), result.clusters.size());

    // Matrix sanity: each row covers every registered config, and
    // the origin-config cell reproduces (the replay contract).
    const size_t n_configs = uarch::registeredCoreConfigs().size();
    for (size_t i = 0; i < result.matrix.size(); ++i) {
        const triage::BugPortability &row = result.matrix[i];
        ASSERT_EQ(row.cells.size(), n_configs);
        bool origin_seen = false;
        for (const triage::PortabilityCell &cell : row.cells) {
            if (cell.config == row.origin_config) {
                origin_seen = true;
                EXPECT_TRUE(cell.reproduced)
                    << row.key << " on " << cell.config << ": "
                    << cell.observed;
            }
        }
        EXPECT_TRUE(origin_seen);
        // Annotations mirror the matrix.
        EXPECT_EQ(result.ledger[i].reproduces_on,
                  row.reproducesOn());
        EXPECT_FALSE(result.ledger[i].cluster.empty());
    }

    // Every emitted PoC reproduces its claimed signature standalone,
    // and its minimized case stays in its cluster.
    for (const triage::PocEntry &poc : result.pocs) {
        std::string error;
        core::Fuzzer *fuzzer =
            cache.get(poc.artifact.config, poc.artifact.variant,
                      &error);
        ASSERT_NE(fuzzer, nullptr) << error;
        const auto outcome = fuzzer->replayCase(poc.artifact.tc);
        ASSERT_TRUE(outcome.report.has_value())
            << poc.artifact.cluster;
        EXPECT_EQ(outcome.report->key(), poc.artifact.key);
        EXPECT_EQ(triage::clusterOf(result.clusters,
                                    outcome.report->key()),
                  poc.artifact.cluster);
    }

    // The serialized artifact is byte-identical across an
    // independent second pass over the same ledger.
    triage::FuzzerCache cache2;
    const triage::TriageResult second =
        triage::triageLedger(ledger, options, cache2);
    std::ostringstream first_jsonl, second_jsonl;
    triage::writeTriageJsonl(first_jsonl, result);
    triage::writeTriageJsonl(second_jsonl, second);
    EXPECT_EQ(first_jsonl.str(), second_jsonl.str());
    ASSERT_EQ(second.pocs.size(), result.pocs.size());
    for (size_t i = 0; i < result.pocs.size(); ++i) {
        std::ostringstream a, b;
        triage::writePocFile(a, result.pocs[i].artifact);
        triage::writePocFile(b, second.pocs[i].artifact);
        EXPECT_EQ(a.str(), b.str());
    }

    // The jsonl parses back through the report-side reader with
    // matching shapes.
    std::istringstream parse_in(first_jsonl.str());
    report::TriageLog parsed;
    std::string parse_error;
    ASSERT_TRUE(report::parseTriageLog(parse_in, parsed,
                                       &parse_error))
        << parse_error;
    EXPECT_EQ(parsed.clusters.size(), result.clusters.size());
    EXPECT_EQ(parsed.portability.size(),
              result.matrix.size() * n_configs);
    EXPECT_EQ(parsed.pocs.size(), result.pocs.size());
    EXPECT_FALSE(
        report::buildTriageTables(parsed).empty());
}

TEST(TriagePipeline, WritePocsRoundTripsOnDisk)
{
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) /
         "dvz_triage_pocs")
            .string();
    std::filesystem::remove_all(dir);

    CampaignOrchestrator orchestrator(smallCampaign(1, 500));
    orchestrator.run();
    ASSERT_GT(orchestrator.ledger().distinct(), 0u);

    triage::TriageOptions options;
    options.matrix = false; // PoC path only
    triage::FuzzerCache cache;
    const triage::TriageResult result = triage::triageLedger(
        orchestrator.ledger().entries(), options, cache);
    ASSERT_GT(result.pocs.size(), 0u);

    std::string error;
    ASSERT_TRUE(triage::writePocs(dir, result, &error)) << error;
    for (const triage::PocEntry &poc : result.pocs) {
        const std::string path =
            dir + "/pocs/" + triage::pocFileName(poc.artifact.cluster);
        std::ifstream is(path, std::ios::binary);
        ASSERT_TRUE(is.good()) << path;
        triage::PocArtifact loaded;
        ASSERT_TRUE(triage::readPocFile(is, loaded, &error)) << error;
        EXPECT_EQ(loaded.key, poc.artifact.key);
    }
    std::filesystem::remove_all(dir);
}

TEST(TriagePipeline, AnnotateLedgerCopiesClusterAssignments)
{
    CampaignOrchestrator orchestrator(smallCampaign(1, 500));
    orchestrator.run();
    ASSERT_GT(orchestrator.ledger().distinct(), 0u);

    triage::TriageOptions options;
    options.emit_pocs = false;
    triage::FuzzerCache cache;
    const triage::TriageResult result = triage::triageLedger(
        orchestrator.ledger().entries(), options, cache);
    triage::annotateLedger(orchestrator.ledger(), result);

    for (const BugRecord &rec : orchestrator.ledger().entries()) {
        EXPECT_FALSE(rec.cluster.empty()) << rec.report.key();
        EXPECT_FALSE(rec.reproduces_on.empty())
            << rec.report.key();
    }
    // Unknown keys are rejected, not silently inserted.
    EXPECT_FALSE(
        orchestrator.ledger().annotate("no-such-key", "C999", {}));
}

TEST(TriagePipeline, EmptyLedgerYieldsEmptyArtifacts)
{
    triage::TriageOptions options;
    triage::FuzzerCache cache;
    const triage::TriageResult result =
        triage::triageLedger({}, options, cache);
    EXPECT_TRUE(result.clusters.empty());
    EXPECT_TRUE(result.matrix.empty());
    EXPECT_TRUE(result.pocs.empty());
    std::ostringstream os;
    triage::writeTriageJsonl(os, result);
    EXPECT_TRUE(os.str().empty());
}

// --- verdict --------------------------------------------------------------

TEST(TriageVerdict, EmptyLedgerExitPaths)
{
    replay::ReplaySummary empty;
    std::string line;
    EXPECT_EQ(replay::replayVerdict(empty, false, line), 0);
    EXPECT_EQ(line, "replay: 0 bugs, nothing replayed");
    EXPECT_EQ(replay::replayVerdict(empty, true, line), 1);
    EXPECT_NE(line.find("--require-bugs"), std::string::npos);

    replay::ReplaySummary some;
    some.bugs.push_back({"k", "c", "v", 0.0, true, "k"});
    EXPECT_EQ(replay::replayVerdict(some, true, line), 0);
    EXPECT_EQ(line, "replay: 1/1 ledger bugs reproduced");
    some.bugs.push_back({"k2", "c", "v", 0.0, false, "no-leak"});
    EXPECT_EQ(replay::replayVerdict(some, false, line), 1);
    EXPECT_EQ(line, "replay: 1/2 ledger bugs reproduced");
}

// --- cross-check against the hand-written PoC suite -----------------------

TEST(TriagePocSuite, ShrunkPocsAreAsLeanAsHandWrittenOnes)
{
    // The hand-written suite (bench/poc_suite.hh) is the human
    // yardstick for "minimal exploit": its densest transient packet
    // bounds what a reduced exploit should need. Campaign PoCs carry
    // window setup the hand suite leaves implicit, so allow 2x.
    const size_t hand_max = bench::maxTransientEffectiveSize();
    ASSERT_GT(hand_max, 0u);

    CampaignOrchestrator orchestrator(smallCampaign(2, 1000));
    orchestrator.run();
    ASSERT_GT(orchestrator.ledger().distinct(), 0u);

    triage::TriageOptions options;
    options.matrix = false;
    triage::FuzzerCache cache;
    const triage::TriageResult result = triage::triageLedger(
        orchestrator.ledger().entries(), options, cache);
    ASSERT_GT(result.pocs.size(), 0u);

    for (const triage::PocEntry &poc : result.pocs) {
        const auto &schedule = poc.artifact.tc.schedule;
        const size_t idx = schedule.transientIndex();
        EXPECT_LE(schedule.packets[idx].effectiveSize(),
                  2 * hand_max)
            << poc.artifact.cluster << " (" << poc.artifact.key
            << ") shrank worse than the hand-written yardstick";
    }
}

} // namespace
} // namespace dejavuzz
