/**
 * @file
 * Tests of the telemetry subsystem: log2-histogram bucket boundaries,
 * snapshot merge associativity, quantile estimation, registry
 * round-trips, scoped-span nesting and thread-track integrity of the
 * Chrome trace serialization, heartbeat record formatting, and the
 * heartbeat emitter's timing/monotonicity guarantees.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/heartbeat.hh"
#include "obs/telemetry.hh"
#include "report/json.hh"

namespace dejavuzz {
namespace {

using obs::Ctr;
using obs::Gauge;
using obs::Hist;
using obs::HistSnapshot;
using obs::TelemetrySnapshot;
using obs::TraceEvent;

// --- Histogram shape ----------------------------------------------------

TEST(ObsHistogram, BucketBoundariesArePowersOfTwo)
{
    // Bucket 0 holds only zero; bucket b holds [2^(b-1), 2^b).
    EXPECT_EQ(obs::histBucket(0), 0u);
    EXPECT_EQ(obs::histBucket(1), 1u);
    EXPECT_EQ(obs::histBucket(2), 2u);
    EXPECT_EQ(obs::histBucket(3), 2u);
    EXPECT_EQ(obs::histBucket(4), 3u);
    EXPECT_EQ(obs::histBucket(1023), 10u);
    EXPECT_EQ(obs::histBucket(1024), 11u);

    // The top bucket absorbs everything from 2^62 upward.
    EXPECT_EQ(obs::histBucket(uint64_t{1} << 61), 62u);
    EXPECT_EQ(obs::histBucket(uint64_t{1} << 62), 63u);
    EXPECT_EQ(obs::histBucket(~uint64_t{0}), 63u);
}

TEST(ObsHistogram, BucketLowRoundTrips)
{
    for (unsigned b = 0; b < obs::kHistBuckets; ++b) {
        EXPECT_EQ(obs::histBucket(obs::histBucketLow(b)), b);
        // One below the lower bound lands in the previous bucket.
        if (b >= 2)
            EXPECT_EQ(obs::histBucket(obs::histBucketLow(b) - 1),
                      b - 1);
    }
}

/** Record into a local snapshot the way histRecord records into the
 *  registry: count += w, sum += v*w, bucket(v) += w. */
void
recordInto(HistSnapshot &h, uint64_t value, uint64_t weight = 1)
{
    h.count += weight;
    h.sum += value * weight;
    h.buckets[obs::histBucket(value)] += weight;
}

TEST(ObsHistogram, MergeIsAssociativeAndCommutative)
{
    HistSnapshot a, b, c;
    recordInto(a, 0);
    recordInto(a, 17, 3);
    recordInto(b, 1 << 20);
    recordInto(b, 5);
    recordInto(c, ~uint64_t{0});
    recordInto(c, 64, 64);

    HistSnapshot ab_c = a;
    ab_c.merge(b);
    ab_c.merge(c);

    HistSnapshot bc = b;
    bc.merge(c);
    HistSnapshot a_bc = a;
    a_bc.merge(bc);

    HistSnapshot cba = c;
    cba.merge(b);
    cba.merge(a);

    for (const HistSnapshot *m : {&a_bc, &cba}) {
        EXPECT_EQ(ab_c.count, m->count);
        EXPECT_EQ(ab_c.sum, m->sum);
        for (unsigned i = 0; i < obs::kHistBuckets; ++i)
            EXPECT_EQ(ab_c.buckets[i], m->buckets[i]);
    }
}

TEST(ObsHistogram, QuantileLowFindsBucketLowerBounds)
{
    HistSnapshot h;
    EXPECT_EQ(h.quantileLow(0.5), 0u) << "empty histogram";

    recordInto(h, 0);
    recordInto(h, 1);
    recordInto(h, 100, 98);
    // 100 observations: one 0, one 1, 98 in [64, 128).
    EXPECT_EQ(h.quantileLow(0.0), 0u);
    EXPECT_EQ(h.quantileLow(0.5), 64u);
    EXPECT_EQ(h.quantileLow(0.99), 64u);
    EXPECT_EQ(h.quantileLow(1.0), 64u);
}

// --- Registry round-trips (compiled out with the telemetry) -------------

#ifndef DEJAVUZZ_NO_TELEMETRY

TEST(ObsRegistry, CountersGaugesHistogramsRoundTrip)
{
    obs::resetForTest();
    obs::counterAdd(Ctr::Rollbacks, 3);
    obs::counterAdd(Ctr::Rollbacks);
    obs::gaugeSet(Gauge::Workers, 5);
    obs::histRecord(Hist::DequeDepth, 4, 2);

    const TelemetrySnapshot snap = obs::snapshot();
    EXPECT_EQ(snap.counter(Ctr::Rollbacks), 4u);
    EXPECT_EQ(snap.counter(Ctr::Iterations), 0u);
    EXPECT_EQ(snap.gauge(Gauge::Workers), 5u);
    const HistSnapshot &h = snap.hist(Hist::DequeDepth);
    EXPECT_EQ(h.count, 2u);
    EXPECT_EQ(h.sum, 8u);
    EXPECT_EQ(h.buckets[obs::histBucket(4)], 2u);
    obs::resetForTest();
}

TEST(ObsRegistry, SampledSpanKeepsTotalsUnbiased)
{
    obs::resetForTest();
    // Fresh thread => fresh thread-local sampling phase: exactly
    // 2 of 128 constructions time themselves, each recorded with
    // weight 64, so the count estimates the true call total.
    std::thread([] {
        for (int i = 0; i < 128; ++i)
            obs::SampledSpan span(Hist::ModuleTaintNs);
    }).join();
    const TelemetrySnapshot snap = obs::snapshot();
    EXPECT_EQ(snap.hist(Hist::ModuleTaintNs).count, 128u);
    obs::resetForTest();
}

TEST(ObsTrace, SpansNestAndKeepTheirThreadTrack)
{
    obs::resetForTest();
    obs::enableTrace(true);
    std::thread([] {
        obs::setThreadTrack(3);
        {
            obs::ScopedSpan outer(Hist::Phase1Ns);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            obs::ScopedSpan inner(Hist::Phase2Ns);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        obs::drainThreadSpans();
    }).join();
    obs::enableTrace(false);

    std::vector<TraceEvent> events = obs::takeTraceEvents();
    ASSERT_EQ(events.size(), 2u);

    const TraceEvent *outer = nullptr, *inner = nullptr;
    for (const auto &e : events) {
        if (e.kind == Hist::Phase1Ns)
            outer = &e;
        else if (e.kind == Hist::Phase2Ns)
            inner = &e;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->track, 3u);
    EXPECT_EQ(inner->track, 3u);
    // Proper nesting: the inner span's interval lies inside the
    // outer's (Perfetto renders overlap-without-nesting as garbage).
    EXPECT_GE(inner->begin_ns, outer->begin_ns);
    EXPECT_LE(inner->begin_ns + inner->dur_ns,
              outer->begin_ns + outer->dur_ns);

    // The buffer was already drained.
    EXPECT_TRUE(obs::takeTraceEvents().empty());
    obs::resetForTest();
}

TEST(ObsTrace, DisabledTraceRecordsHistogramsOnly)
{
    obs::resetForTest();
    {
        obs::ScopedSpan span(Hist::Phase3Ns);
    }
    EXPECT_EQ(obs::snapshot().hist(Hist::Phase3Ns).count, 1u);
    EXPECT_TRUE(obs::takeTraceEvents().empty());
    obs::resetForTest();
}

#endif // !DEJAVUZZ_NO_TELEMETRY

// --- Chrome trace serialization -----------------------------------------

TEST(ObsTrace, ChromeTraceCarriesTracksAndArgs)
{
    std::vector<TraceEvent> events;
    events.push_back({Hist::BatchNs, 1, 1000, 500, 2, 7, true});
    events.push_back({Hist::Phase2Ns, 0, 1200, 100, 0, 0, false});

    std::ostringstream os;
    obs::writeChromeTrace(os, events);
    const std::string json = os.str();

    EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    // Track 0 is the main thread; executor t registers track t+1.
    EXPECT_NE(json.find("\"args\":{\"name\":\"main\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"name\":\"worker 0\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"batch\",\"ph\":\"X\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"phase2\",\"ph\":\"X\""),
              std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"shard\":2,\"batch\":7}"),
              std::string::npos);
    // Timestamps are microseconds (1000 ns -> 1.000 us).
    EXPECT_NE(json.find("\"ts\":1.000,\"dur\":0.500"),
              std::string::npos);
    EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

// --- Heartbeat records --------------------------------------------------

TEST(ObsHeartbeat, RecordFormatsAsFlatJson)
{
    TelemetrySnapshot snap;
    snap.counters[static_cast<unsigned>(Ctr::Iterations)] = 7;
    snap.counters[static_cast<unsigned>(Ctr::StealHits)] = 2;
    snap.gauges[static_cast<unsigned>(Gauge::Workers)] = 4;
    auto &batch =
        snap.hists[static_cast<unsigned>(Hist::BatchNs)];
    recordInto(batch, 1000, 3);

    const std::string line =
        obs::formatHeartbeatRecord(2, 1.5, snap);

    report::JsonObject obj;
    std::string error;
    ASSERT_TRUE(report::parseFlatJsonObject(line, obj, &error))
        << error;
    EXPECT_EQ(obj["type"].text, "heartbeat");
    EXPECT_DOUBLE_EQ(obj["seq"].number, 2.0);
    EXPECT_DOUBLE_EQ(obj["wall_seconds"].number, 1.5);
    EXPECT_DOUBLE_EQ(obj["iterations"].number, 7.0);
    EXPECT_DOUBLE_EQ(obj["steal_hits"].number, 2.0);
    EXPECT_DOUBLE_EQ(obj["workers"].number, 4.0);
    EXPECT_DOUBLE_EQ(obj["batch_ns_count"].number, 3.0);
    EXPECT_DOUBLE_EQ(obj["batch_ns_sum"].number, 3000.0);
    EXPECT_DOUBLE_EQ(obj["batch_p50_ns"].number,
                     static_cast<double>(
                         obs::histBucketLow(obs::histBucket(1000))));
    // Every instrument appears, even the zero-valued ones.
    for (unsigned i = 0; i < obs::kNumCtrs; ++i)
        EXPECT_TRUE(
            obj.count(obs::ctrName(static_cast<Ctr>(i))))
            << obs::ctrName(static_cast<Ctr>(i));
    for (unsigned i = 0; i < obs::kNumHists; ++i) {
        const std::string name =
            obs::histName(static_cast<Hist>(i));
        EXPECT_TRUE(obj.count(name + "_count")) << name;
        EXPECT_TRUE(obj.count(name + "_sum")) << name;
    }
}

TEST(ObsHeartbeat, EmitterProducesFinalRecordOnStop)
{
    std::vector<std::string> lines;
    {
        // Interval far beyond the test's lifetime: the only record
        // is the final one stop() emits, so even runs shorter than
        // the interval heartbeat at least once.
        obs::HeartbeatEmitter emitter(
            3600.0,
            [&lines](const std::string &line) {
                lines.push_back(line);
            });
        emitter.stop();
        emitter.stop(); // idempotent
    }
    ASSERT_EQ(lines.size(), 1u);
    report::JsonObject obj;
    ASSERT_TRUE(report::parseFlatJsonObject(lines[0], obj));
    EXPECT_DOUBLE_EQ(obj["seq"].number, 0.0);
}

TEST(ObsHeartbeat, EmitterStreamsMonotonicRecords)
{
    std::mutex mutex;
    std::vector<std::string> lines;
    {
        obs::HeartbeatEmitter emitter(
            0.005,
            [&mutex, &lines](const std::string &line) {
                std::lock_guard<std::mutex> lock(mutex);
                lines.push_back(line);
            });
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
    ASSERT_GE(lines.size(), 2u);
    double prev_seq = -1.0, prev_wall = -1.0;
    for (const auto &line : lines) {
        report::JsonObject obj;
        std::string error;
        ASSERT_TRUE(report::parseFlatJsonObject(line, obj, &error))
            << error;
        EXPECT_GT(obj["seq"].number, prev_seq);
        EXPECT_GE(obj["wall_seconds"].number, prev_wall);
        prev_seq = obj["seq"].number;
        prev_wall = obj["wall_seconds"].number;
    }
}

TEST(ObsHeartbeat, EmitterInactiveWithoutInterval)
{
    std::vector<std::string> lines;
    obs::HeartbeatEmitter emitter(
        0.0,
        [&lines](const std::string &line) {
            lines.push_back(line);
        });
    emitter.stop();
    EXPECT_TRUE(lines.empty());
}

} // namespace
} // namespace dejavuzz
