/**
 * @file
 * The dejavuzz-replay regression harness, end to end: every bug a
 * campaign's ledger records must re-trigger with the identical
 * signature when its saved reproducer is pushed back through the
 * Phase-2/Phase-3 pipeline — directly from a checkpoint, and through
 * a full campaign-directory save/load round trip.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "campaign/campaign_dir.hh"
#include "campaign/orchestrator.hh"
#include "campaign/snapshot.hh"
#include "core/fuzzer.hh"
#include "replay/replay.hh"
#include "triage/portability.hh"
#include "uarch/config.hh"

namespace dejavuzz {
namespace {

using campaign::CampaignOptions;
using campaign::CampaignOrchestrator;

CampaignOptions
smallCampaign(unsigned workers, uint64_t iters)
{
    CampaignOptions options;
    options.workers = workers;
    options.master_seed = 7;
    options.total_iterations = iters;
    options.epoch_iterations = 125;
    options.base_config = uarch::smallBoomConfig();
    return options;
}

TEST(Replay, EveryLedgerBugReproducesFromItsSavedCase)
{
    CampaignOrchestrator orchestrator(smallCampaign(2, 1000));
    orchestrator.run();
    ASSERT_GT(orchestrator.ledger().distinct(), 0u)
        << "campaign found no bugs; nothing to replay";

    const campaign::CampaignCheckpoint cp =
        orchestrator.makeCheckpoint();
    ASSERT_EQ(cp.ledger.size(), orchestrator.ledger().distinct());

    const replay::ReplaySummary summary =
        replay::replayLedger(cp.ledger);
    ASSERT_EQ(summary.total(), cp.ledger.size());
    for (const replay::BugReplay &bug : summary.bugs) {
        EXPECT_TRUE(bug.reproduced)
            << bug.key << " did not reproduce: " << bug.observed;
    }
    EXPECT_TRUE(summary.allReproduced());
}

TEST(Replay, ReplaysAcrossConfigsAndVariants)
{
    // Sweep + ablation fleets record per-bug config/variant
    // provenance; replay must rebuild the right simulator for each.
    CampaignOptions options = smallCampaign(4, 1500);
    options.policy = campaign::ShardPolicy::ConfigSweep;
    CampaignOrchestrator orchestrator(options);
    orchestrator.run();
    ASSERT_GT(orchestrator.ledger().distinct(), 0u);

    const replay::ReplaySummary summary =
        replay::replayLedger(orchestrator.makeCheckpoint().ledger);
    EXPECT_TRUE(summary.allReproduced());
    for (const replay::BugReplay &bug : summary.bugs)
        EXPECT_FALSE(bug.config.empty());
}

TEST(Replay, UnknownConfigIsReportedNotCrashed)
{
    CampaignOrchestrator orchestrator(smallCampaign(1, 500));
    orchestrator.run();
    campaign::CampaignCheckpoint cp = orchestrator.makeCheckpoint();
    ASSERT_GT(cp.ledger.size(), 0u);
    cp.ledger[0].config = "NoSuchCore";

    const replay::ReplaySummary summary =
        replay::replayLedger(cp.ledger);
    EXPECT_FALSE(summary.bugs[0].reproduced);
    EXPECT_NE(summary.bugs[0].observed.find("NoSuchCore"),
              std::string::npos);
}

TEST(Replay, CampaignDirRoundTripReplaysFully)
{
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) /
         "dvz_replay_dir")
            .string();
    std::filesystem::remove_all(dir);

    CampaignOptions options = smallCampaign(2, 1000);
    CampaignOrchestrator orchestrator(options);
    orchestrator.run();
    ASSERT_GT(orchestrator.ledger().distinct(), 0u);

    std::string error;
    ASSERT_TRUE(campaign::saveCampaignDir(dir, orchestrator, options,
                                          &error))
        << error;
    ASSERT_TRUE(campaign::campaignDirExists(dir));

    replay::ReplaySummary summary;
    ASSERT_TRUE(replay::replayCampaignDir(dir, summary, &error))
        << error;
    EXPECT_EQ(summary.total(), orchestrator.ledger().distinct());
    EXPECT_TRUE(summary.allReproduced());

    std::filesystem::remove_all(dir);
}

TEST(Replay, MissingDirectoryFailsCleanly)
{
    replay::ReplaySummary summary;
    std::string error;
    EXPECT_FALSE(replay::replayCampaignDir(
        "/nonexistent/dvz-campaign", summary, &error));
    EXPECT_FALSE(error.empty());
}

TEST(Portability, MatrixCoversEveryRegisteredConfig)
{
    // Every ledger bug gets one cell per registered core config —
    // not just its origin — and the origin cell must reproduce (the
    // same contract replayLedger() enforces).
    CampaignOrchestrator orchestrator(smallCampaign(2, 1000));
    orchestrator.run();
    const std::vector<campaign::BugRecord> ledger =
        orchestrator.ledger().entries();
    ASSERT_GT(ledger.size(), 0u);

    const std::vector<uarch::CoreConfig> registry =
        uarch::registeredCoreConfigs();
    ASSERT_GE(registry.size(), 2u)
        << "portability needs at least two registered configs";

    triage::FuzzerCache cache;
    const std::vector<triage::BugPortability> matrix =
        triage::portabilityMatrix(ledger, cache);
    ASSERT_EQ(matrix.size(), ledger.size());

    for (size_t i = 0; i < matrix.size(); ++i) {
        const triage::BugPortability &row = matrix[i];
        EXPECT_EQ(row.key, ledger[i].report.key());
        EXPECT_EQ(row.origin_config, ledger[i].config);
        ASSERT_EQ(row.cells.size(), registry.size());
        for (size_t c = 0; c < row.cells.size(); ++c) {
            // Cells follow registry order and always carry sink-diff
            // provenance, reproduced or not.
            EXPECT_EQ(row.cells[c].config, registry[c].name);
            EXPECT_FALSE(row.cells[c].observed.empty());
            if (row.cells[c].config == row.origin_config) {
                EXPECT_TRUE(row.cells[c].reproduced)
                    << row.key << " on its origin "
                    << row.cells[c].config << ": "
                    << row.cells[c].observed;
                EXPECT_EQ(row.cells[c].observed, row.key);
            }
        }
        // reproducesOn() mirrors the reproduced cells, registry order.
        std::vector<std::string> expected;
        for (const triage::PortabilityCell &cell : row.cells)
            if (cell.reproduced)
                expected.push_back(cell.config);
        EXPECT_EQ(row.reproducesOn(), expected);
    }
}

TEST(Portability, MatrixIsDeterministicAcrossRuns)
{
    // Two independent passes over the same ledger — fresh simulator
    // caches each time — must agree cell for cell, including the
    // observed foreign signatures.
    CampaignOrchestrator orchestrator(smallCampaign(2, 1000));
    orchestrator.run();
    const std::vector<campaign::BugRecord> ledger =
        orchestrator.ledger().entries();
    ASSERT_GT(ledger.size(), 0u);

    triage::FuzzerCache cache1, cache2;
    const auto first = triage::portabilityMatrix(ledger, cache1);
    const auto second = triage::portabilityMatrix(ledger, cache2);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].key, second[i].key);
        ASSERT_EQ(first[i].cells.size(), second[i].cells.size());
        for (size_t c = 0; c < first[i].cells.size(); ++c) {
            EXPECT_EQ(first[i].cells[c].reproduced,
                      second[i].cells[c].reproduced);
            EXPECT_EQ(first[i].cells[c].observed,
                      second[i].cells[c].observed);
        }
    }
}

TEST(Portability, UnreplayableRecordYieldsDiagnosticCells)
{
    CampaignOrchestrator orchestrator(smallCampaign(1, 500));
    orchestrator.run();
    std::vector<campaign::BugRecord> ledger =
        orchestrator.ledger().entries();
    ASSERT_GT(ledger.size(), 0u);
    ledger[0].variant = "no-such-variant";

    triage::FuzzerCache cache;
    const auto matrix = triage::portabilityMatrix(ledger, cache);
    ASSERT_EQ(matrix.size(), ledger.size());
    for (const triage::PortabilityCell &cell : matrix[0].cells) {
        EXPECT_FALSE(cell.reproduced);
        EXPECT_NE(cell.observed.find("no-such-variant"),
                  std::string::npos);
    }
    EXPECT_TRUE(matrix[0].reproducesOn().empty());
}

} // namespace
} // namespace dejavuzz
