/**
 * @file
 * The dejavuzz-replay regression harness, end to end: every bug a
 * campaign's ledger records must re-trigger with the identical
 * signature when its saved reproducer is pushed back through the
 * Phase-2/Phase-3 pipeline — directly from a checkpoint, and through
 * a full campaign-directory save/load round trip.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "campaign/campaign_dir.hh"
#include "campaign/orchestrator.hh"
#include "campaign/snapshot.hh"
#include "core/fuzzer.hh"
#include "replay/replay.hh"
#include "uarch/config.hh"

namespace dejavuzz {
namespace {

using campaign::CampaignOptions;
using campaign::CampaignOrchestrator;

CampaignOptions
smallCampaign(unsigned workers, uint64_t iters)
{
    CampaignOptions options;
    options.workers = workers;
    options.master_seed = 7;
    options.total_iterations = iters;
    options.epoch_iterations = 125;
    options.base_config = uarch::smallBoomConfig();
    return options;
}

TEST(Replay, EveryLedgerBugReproducesFromItsSavedCase)
{
    CampaignOrchestrator orchestrator(smallCampaign(2, 1000));
    orchestrator.run();
    ASSERT_GT(orchestrator.ledger().distinct(), 0u)
        << "campaign found no bugs; nothing to replay";

    const campaign::CampaignCheckpoint cp =
        orchestrator.makeCheckpoint();
    ASSERT_EQ(cp.ledger.size(), orchestrator.ledger().distinct());

    const replay::ReplaySummary summary =
        replay::replayLedger(cp.ledger);
    ASSERT_EQ(summary.total(), cp.ledger.size());
    for (const replay::BugReplay &bug : summary.bugs) {
        EXPECT_TRUE(bug.reproduced)
            << bug.key << " did not reproduce: " << bug.observed;
    }
    EXPECT_TRUE(summary.allReproduced());
}

TEST(Replay, ReplaysAcrossConfigsAndVariants)
{
    // Sweep + ablation fleets record per-bug config/variant
    // provenance; replay must rebuild the right simulator for each.
    CampaignOptions options = smallCampaign(4, 1500);
    options.policy = campaign::ShardPolicy::ConfigSweep;
    CampaignOrchestrator orchestrator(options);
    orchestrator.run();
    ASSERT_GT(orchestrator.ledger().distinct(), 0u);

    const replay::ReplaySummary summary =
        replay::replayLedger(orchestrator.makeCheckpoint().ledger);
    EXPECT_TRUE(summary.allReproduced());
    for (const replay::BugReplay &bug : summary.bugs)
        EXPECT_FALSE(bug.config.empty());
}

TEST(Replay, UnknownConfigIsReportedNotCrashed)
{
    CampaignOrchestrator orchestrator(smallCampaign(1, 500));
    orchestrator.run();
    campaign::CampaignCheckpoint cp = orchestrator.makeCheckpoint();
    ASSERT_GT(cp.ledger.size(), 0u);
    cp.ledger[0].config = "NoSuchCore";

    const replay::ReplaySummary summary =
        replay::replayLedger(cp.ledger);
    EXPECT_FALSE(summary.bugs[0].reproduced);
    EXPECT_NE(summary.bugs[0].observed.find("NoSuchCore"),
              std::string::npos);
}

TEST(Replay, CampaignDirRoundTripReplaysFully)
{
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) /
         "dvz_replay_dir")
            .string();
    std::filesystem::remove_all(dir);

    CampaignOptions options = smallCampaign(2, 1000);
    CampaignOrchestrator orchestrator(options);
    orchestrator.run();
    ASSERT_GT(orchestrator.ledger().distinct(), 0u);

    std::string error;
    ASSERT_TRUE(campaign::saveCampaignDir(dir, orchestrator, options,
                                          &error))
        << error;
    ASSERT_TRUE(campaign::campaignDirExists(dir));

    replay::ReplaySummary summary;
    ASSERT_TRUE(replay::replayCampaignDir(dir, summary, &error))
        << error;
    EXPECT_EQ(summary.total(), orchestrator.ledger().distinct());
    EXPECT_TRUE(summary.allReproduced());

    std::filesystem::remove_all(dir);
}

TEST(Replay, MissingDirectoryFailsCleanly)
{
    replay::ReplaySummary summary;
    std::string error;
    EXPECT_FALSE(replay::replayCampaignDir(
        "/nonexistent/dvz-campaign", summary, &error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace dejavuzz
