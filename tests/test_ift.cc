/**
 * @file
 * Randomized property tests for the taint-coverage matrix and the
 * campaign-global coverage map built on top of it: mergeFrom is
 * commutative, idempotent and monotone; merged/marked imports never
 * leak into the local-gain delta; and GlobalCoverage's atomic-word
 * merge/pull/restore agree with the reference TaintCoverage union.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "campaign/coverage_map.hh"
#include "ift/coverage.hh"
#include "util/rng.hh"

namespace dejavuzz {
namespace {

using PointSet = std::set<std::pair<uint16_t, uint32_t>>;

/** Module widths chosen to straddle the 64-bit word boundaries the
 *  global map packs bitmaps into. */
constexpr uint32_t kModuleWidths[] = {7, 63, 64, 65, 130};

ift::TaintCoverage
blankMap()
{
    ift::TaintCoverage map;
    for (uint32_t width : kModuleWidths)
        map.registerModule("m" + std::to_string(width), width);
    return map;
}

/** A random map over the shared shape; density in [0, 1]. */
ift::TaintCoverage
randomMap(Rng &rng, unsigned percent)
{
    ift::TaintCoverage map = blankMap();
    for (uint16_t m = 0;
         m < static_cast<uint16_t>(map.moduleCount()); ++m) {
        const uint32_t slots = map.moduleSlots(m);
        for (uint32_t s = 1; s < slots; ++s) {
            if (rng.below(100) < percent)
                map.sample(m, s);
        }
    }
    return map;
}

PointSet
points(const ift::TaintCoverage &map)
{
    PointSet out;
    for (const ift::CoveragePoint &point : map.tuples())
        out.insert({point.module_id, point.index});
    return out;
}

PointSet
points(const campaign::GlobalCoverage &map)
{
    ift::TaintCoverage local = blankMap();
    map.pullInto(local);
    return points(local);
}

TEST(TaintCoverage, MergeIsCommutativeIdempotentMonotone)
{
    Rng rng(0x1f71);
    for (int trial = 0; trial < 50; ++trial) {
        const ift::TaintCoverage a = randomMap(rng, 20);
        const ift::TaintCoverage b = randomMap(rng, 20);
        const PointSet pa = points(a), pb = points(b);

        // Commutative: a ∪ b == b ∪ a, as point sets and counts.
        ift::TaintCoverage ab = a, ba = b;
        const uint64_t fresh_ab = ab.mergeFrom(b);
        const uint64_t fresh_ba = ba.mergeFrom(a);
        EXPECT_EQ(points(ab), points(ba));
        EXPECT_EQ(ab.points(), ba.points());

        // The fresh count is exactly the set difference.
        PointSet b_minus_a, a_minus_b;
        std::set_difference(
            pb.begin(), pb.end(), pa.begin(), pa.end(),
            std::inserter(b_minus_a, b_minus_a.end()));
        std::set_difference(
            pa.begin(), pa.end(), pb.begin(), pb.end(),
            std::inserter(a_minus_b, a_minus_b.end()));
        EXPECT_EQ(fresh_ab, b_minus_a.size());
        EXPECT_EQ(fresh_ba, a_minus_b.size());

        // Monotone: no slot of a is ever unset by the merge, and the
        // union is exactly pa ∪ pb.
        PointSet expected = pa;
        expected.insert(pb.begin(), pb.end());
        EXPECT_EQ(points(ab), expected);
        EXPECT_EQ(ab.points(), expected.size());

        // Idempotent: merging the same map again adds nothing.
        EXPECT_EQ(ab.mergeFrom(b), 0u);
        EXPECT_EQ(ab.mergeFrom(a), 0u);
        EXPECT_EQ(points(ab), expected);
    }
}

TEST(TaintCoverage, ImportsNeverCountAsLocalGain)
{
    Rng rng(0x94a1);
    ift::TaintCoverage local = blankMap();
    local.sample(0, 1);
    local.sample(1, 5);
    EXPECT_EQ(local.takeNewPoints(), 2u);

    // mergeFrom and markSlot are imports: the Phase-2 gain delta
    // (takeNewPoints) must stay zero afterwards.
    const ift::TaintCoverage other = randomMap(rng, 30);
    local.mergeFrom(other);
    EXPECT_EQ(local.takeNewPoints(), 0u);
    const bool was_new = local.markSlot(2, 7);
    if (was_new)
        EXPECT_EQ(local.takeNewPoints(), 0u);

    // A genuine local sample still counts.
    if (!local.slotSet(4, 99)) {
        EXPECT_TRUE(local.sample(4, 99));
        EXPECT_EQ(local.takeNewPoints(), 1u);
    }
}

TEST(TaintCoverage, SampleClampsAndIgnoresZero)
{
    ift::TaintCoverage map = blankMap();
    EXPECT_FALSE(map.sample(0, 0)) << "zero taint is not coverage";
    EXPECT_EQ(map.points(), 0u);

    // Out-of-range counts clamp onto the top slot — one point, not
    // one per distinct oversized count.
    const uint32_t top = map.moduleSlots(0) - 1;
    EXPECT_TRUE(map.sample(0, top + 100));
    EXPECT_FALSE(map.sample(0, top + 500));
    EXPECT_TRUE(map.slotSet(0, top));
    EXPECT_EQ(map.points(), 1u);
}

TEST(GlobalCoverage, MergePullRestoreAgreeWithReferenceUnion)
{
    Rng rng(0x910b);
    for (int trial = 0; trial < 25; ++trial) {
        const ift::TaintCoverage shape = blankMap();
        campaign::GlobalCoverage global(shape);
        ift::TaintCoverage reference = blankMap();

        uint64_t fresh_global = 0;
        for (int w = 0; w < 4; ++w) {
            const ift::TaintCoverage worker = randomMap(rng, 15);
            fresh_global += global.mergeFrom(worker);
            reference.mergeFrom(worker);
        }
        EXPECT_EQ(global.points(), reference.points());
        EXPECT_EQ(fresh_global, reference.points());
        EXPECT_EQ(points(global), points(reference));

        // Re-merging the union is a no-op; pulling twice too.
        EXPECT_EQ(global.mergeFrom(reference), 0u);
        ift::TaintCoverage pulled = blankMap();
        EXPECT_EQ(global.pullInto(pulled), reference.points());
        EXPECT_EQ(global.pullInto(pulled), 0u);

        // Word-level save/restore round trip (the checkpoint path):
        // restoring every word into a blank global map reproduces
        // the identical point set and count.
        campaign::GlobalCoverage restored(shape);
        for (size_t m = 0; m < global.moduleCount(); ++m) {
            for (size_t w = 0; w < global.moduleWords(m); ++w) {
                EXPECT_TRUE(
                    restored.restoreWord(m, w, global.word(m, w)));
            }
        }
        EXPECT_EQ(restored.points(), global.points());
        EXPECT_EQ(points(restored), points(global));

        // Bits past a module's slot count are rejected, leaving the
        // map untouched.
        const size_t last = global.moduleCount() - 1;
        const uint32_t slots = global.moduleSlots(last);
        if (slots % 64 != 0) {
            const size_t word = global.moduleWords(last) - 1;
            const uint64_t bad = uint64_t{1} << (slots % 64);
            const uint64_t before = restored.points();
            EXPECT_FALSE(restored.restoreWord(last, word, bad));
            EXPECT_EQ(restored.points(), before);
        }
    }
}

} // namespace
} // namespace dejavuzz
