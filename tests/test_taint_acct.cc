/**
 * @file
 * Randomized property test for the incremental taint accounting
 * (src/ift/taintacct.hh).
 *
 * The invariant: after *every* cycle, the O(1) per-module taint
 * population counts assembled from the running accounts
 * (Core::moduleTaintStats) equal a full O(state) re-scan
 * (Core::moduleTaintStatsRescan) — including every scan quirk the
 * rescan oracle preserves (stale-entry counting, valid-gated MSHRs,
 * the RoB's addr-excluded bit count, ...). The default build defines
 * NDEBUG, which compiles out the per-append dv_assert cross-check in
 * Core::appendTaintLog, so this suite calls the always-compiled
 * Core::verifyTaintAccounts() explicitly after each tick.
 *
 * Stimuli: the PoC suite plus Phase-1-triggered windows on both
 * core configs, under closed-gate diffIFT and full CellIFT (the
 * open-gate mode propagates the most taint and stresses the
 * accounting hardest), plus random secrets/operands.
 */

#include <gtest/gtest.h>

#include "bench/poc_suite.hh"
#include "core/phases.hh"
#include "core/stimgen.hh"
#include "harness/dualsim.hh"
#include "harness/stimulus.hh"
#include "ift/policy.hh"
#include "ift/taintlog.hh"
#include "swapmem/memory.hh"
#include "swapmem/packet.hh"
#include "uarch/config.hh"
#include "uarch/core.hh"
#include "util/rng.hh"

namespace dejavuzz {
namespace {

using core::Phase1;
using core::Seed;
using core::StimGen;
using core::TestCase;
using harness::SimOptions;
using harness::StimulusData;

/** Generate Phase-1-triggered test cases (randomized by @p salt). */
std::vector<TestCase>
triggeredCases(const uarch::CoreConfig &cfg, unsigned want,
               uint64_t salt)
{
    harness::DualSim sim(cfg);
    StimGen gen(cfg);
    Phase1 phase1(sim, SimOptions{});
    Rng rng(0xacc7 ^ salt);
    std::vector<TestCase> cases;
    for (unsigned i = 0; i < 64 && cases.size() < want; ++i) {
        Seed seed = gen.newSeed(rng, i);
        TestCase tc = gen.generatePhase1(seed);
        bool triggered = false;
        phase1.run(tc, triggered, true);
        if (!triggered)
            continue;
        gen.completeWindow(tc);
        cases.push_back(std::move(tc));
    }
    return cases;
}

/**
 * Drive one core through @p schedule (mirroring the harness's
 * per-cycle protocol) and check the incremental accounts against the
 * rescan oracle after every single tick.
 */
void
runAndVerify(const uarch::CoreConfig &cfg,
             const swapmem::SwapSchedule &schedule,
             const StimulusData &data, ift::IftMode mode,
             bool flipped_secret)
{
    uarch::Core core(cfg);
    swapmem::Memory mem;
    auto secret = flipped_secret ? data.flippedSecret() : data.secret;
    mem.installSecret(secret.data(), secret.size());
    for (size_t i = 0; i < data.operands.size(); ++i)
        mem.setOperand(static_cast<unsigned>(i), data.operands[i]);

    swapmem::SwapRuntime runtime(schedule);
    uint64_t entry = runtime.start(mem);
    if (runtime.done())
        return;
    core.startSequence(entry);

    uarch::TraceLog trace;
    ift::TaintLog log;
    uint64_t packet_cycles = 0;
    uint64_t prev_transitions = 0;
    while (core.cycle() < 4000) {
        ift::TaintCtx ctx;
        ctx.begin(mode, nullptr, nullptr);
        uarch::TickEvents ev = core.tick(mem, ctx, &trace);
        ++packet_cycles;
        core.appendTaintLog(log);

        if (!core.verifyTaintAccounts()) {
            std::array<uarch::ModuleStat, uarch::kModCount> fast;
            std::array<uarch::ModuleStat, uarch::kModCount> slow;
            core.moduleTaintStats(fast);
            core.moduleTaintStatsRescan(slow);
            for (size_t m = 0; m < uarch::kModCount; ++m) {
                EXPECT_EQ(fast[m].tainted_regs, slow[m].tainted_regs)
                    << "cycle " << core.cycle() << " module " << m;
                EXPECT_EQ(fast[m].taint_bits, slow[m].taint_bits)
                    << "cycle " << core.cycle() << " module " << m;
            }
            FAIL() << "account/rescan mismatch at cycle "
                   << core.cycle();
        }
        // Transition counts only ever grow.
        uint64_t transitions = core.taintTransitions();
        ASSERT_GE(transitions, prev_transitions);
        prev_transitions = transitions;

        bool force_advance = packet_cycles >= 1500;
        if (ev.swap_next || ev.trapped || force_advance) {
            uint64_t next_entry = runtime.advance(mem);
            if (runtime.done())
                break;
            core.flushICache();
            core.startSequence(next_entry);
            packet_cycles = 0;
        }
    }
}

TEST(TaintAcctProperty, PocSuiteMatchesRescanEveryCycle)
{
    for (const auto &cfg : {uarch::smallBoomConfig(),
                            uarch::xiangshanMinimalConfig()}) {
        SCOPED_TRACE(cfg.name);
        for (const auto &poc : bench::pocSuite()) {
            SCOPED_TRACE(poc.name);
            for (auto mode : {ift::IftMode::DiffIFT,
                              ift::IftMode::CellIFT}) {
                SCOPED_TRACE(static_cast<int>(mode));
                runAndVerify(cfg, poc.schedule, poc.data, mode, false);
                runAndVerify(cfg, poc.schedule, poc.data, mode, true);
            }
        }
    }
}

TEST(TaintAcctProperty, TriggeredWindowsMatchRescanEveryCycle)
{
    Rng rng(0x7a1e7);
    for (const auto &cfg : {uarch::smallBoomConfig(),
                            uarch::xiangshanMinimalConfig()}) {
        SCOPED_TRACE(cfg.name);
        auto cases = triggeredCases(cfg, 5, rng.next());
        ASSERT_FALSE(cases.empty());
        for (size_t i = 0; i < cases.size(); ++i) {
            SCOPED_TRACE(i);
            for (auto mode : {ift::IftMode::DiffIFT,
                              ift::IftMode::CellIFT}) {
                SCOPED_TRACE(static_cast<int>(mode));
                runAndVerify(cfg, cases[i].schedule, cases[i].data,
                             mode, false);
                runAndVerify(cfg, cases[i].schedule, cases[i].data,
                             mode, true);
            }
        }
    }
}

TEST(TaintAcctProperty, RandomSecretsMatchRescanEveryCycle)
{
    // Same schedules, fresh random secrets/operands: the taint
    // footprint (and so the transition pattern) shifts with the data.
    Rng rng(0x5ec4e7);
    auto cfg = uarch::smallBoomConfig();
    for (const auto &poc : bench::pocSuite()) {
        SCOPED_TRACE(poc.name);
        for (int round = 0; round < 2; ++round) {
            StimulusData data = StimulusData::random(rng);
            runAndVerify(cfg, poc.schedule, data,
                         ift::IftMode::CellIFT, false);
        }
    }
}

} // namespace
} // namespace dejavuzz
