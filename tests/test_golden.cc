/**
 * @file
 * Golden architectural simulator tests: instruction semantics,
 * exception behaviour, li expansion correctness and swapMem
 * interaction.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim/golden.hh"
#include "swapmem/layout.hh"
#include "swapmem/memory.hh"
#include "util/rng.hh"

namespace dejavuzz {
namespace {

using isa::Op;
using namespace isa::reg;
using sim::Golden;
using sim::HaltReason;
using swapmem::Memory;

/** Load a builder program at the swap base and run it. */
sim::GoldenRun
runProgram(isa::ProgBuilder &prog, Golden &golden, Memory &mem,
           uint64_t max_steps = 1000)
{
    auto words = prog.words();
    mem.loadBlock(prog.base(), words.data(), words.size());
    golden.reset();
    golden.pc = prog.base();
    return golden.run(mem, max_steps, &mem);
}

TEST(Golden, ArithmeticBasics)
{
    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.li(a0, 7);
    prog.li(a1, 5);
    prog.add(a2, a0, a1);
    prog.sub(a3, a0, a1);
    prog.emit(Op::MUL, a4, a0, a1, 0);
    prog.emit(Op::DIV, a5, a0, a1, 0);
    prog.swapnext();

    Golden golden;
    Memory mem;
    auto run = runProgram(prog, golden, mem);
    EXPECT_EQ(run.reason, HaltReason::SwapNext);
    EXPECT_EQ(golden.xregs[a2], 12u);
    EXPECT_EQ(golden.xregs[a3], 2u);
    EXPECT_EQ(golden.xregs[a4], 35u);
    EXPECT_EQ(golden.xregs[a5], 1u);
}

TEST(Golden, LiExpansionMatchesValue)
{
    Rng rng(42);
    std::vector<uint64_t> values = {
        0, 1, 2047, 2048, -1ULL, 0x7fffffffULL, 0x80000000ULL,
        0xffffffffULL, 0x100000000ULL, 0x8000000000000000ULL,
        0x8000000080004000ULL, swapmem::kSecretAddr,
        swapmem::kLeakArrayAddr,
    };
    for (int i = 0; i < 40; ++i)
        values.push_back(rng.next());

    for (uint64_t value : values) {
        isa::ProgBuilder prog(swapmem::kSwapBase);
        prog.li(a0, value);
        prog.swapnext();
        Golden golden;
        Memory mem;
        auto run = runProgram(prog, golden, mem);
        ASSERT_EQ(run.reason, HaltReason::SwapNext);
        EXPECT_EQ(golden.xregs[a0], value)
            << "li 0x" << std::hex << value;
    }
}

TEST(Golden, BranchAndCall)
{
    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.li(a0, 1);
    isa::Label skip = prog.newLabel();
    prog.branch(Op::BNE, a0, zero, skip);
    prog.li(a1, 99); // skipped
    prog.bind(skip);
    prog.li(a2, 3);
    prog.swapnext();

    Golden golden;
    Memory mem;
    auto run = runProgram(prog, golden, mem);
    EXPECT_EQ(run.reason, HaltReason::SwapNext);
    EXPECT_EQ(golden.xregs[a1], 0u);
    EXPECT_EQ(golden.xregs[a2], 3u);
}

TEST(Golden, LoadStoreRoundTrip)
{
    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.la(t0, swapmem::kScratchAddr);
    prog.li(a0, 0x1122334455667788ULL);
    prog.sd(a0, t0, 0);
    prog.ld(a1, t0, 0);
    prog.emit(Op::LW, a2, t0, 0, 0);
    prog.emit(Op::LBU, a3, t0, 0, 7);
    prog.swapnext();

    Golden golden;
    Memory mem;
    auto run = runProgram(prog, golden, mem);
    EXPECT_EQ(run.reason, HaltReason::SwapNext);
    EXPECT_EQ(golden.xregs[a1], 0x1122334455667788ULL);
    EXPECT_EQ(golden.xregs[a2], 0x55667788ULL);
    EXPECT_EQ(golden.xregs[a3], 0x11ULL);
}

TEST(Golden, MisalignedLoadFaults)
{
    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.la(t0, swapmem::kScratchAddr + 1);
    prog.ld(a0, t0, 0);
    prog.swapnext();

    Golden golden;
    Memory mem;
    auto run = runProgram(prog, golden, mem);
    EXPECT_EQ(run.reason, HaltReason::Exception);
    EXPECT_EQ(run.exc, isa::ExcCause::LoadAddrMisaligned);
}

TEST(Golden, SecretProtectionFaults)
{
    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.la(t0, swapmem::kSecretAddr);
    prog.ld(a0, t0, 0);
    prog.swapnext();

    {
        Golden golden;
        Memory mem;
        mem.setSecretProt(swapmem::SecretProt::Open);
        auto run = runProgram(prog, golden, mem);
        EXPECT_EQ(run.reason, HaltReason::SwapNext);
    }
    {
        Golden golden;
        Memory mem;
        mem.setSecretProt(swapmem::SecretProt::Pmp);
        auto run = runProgram(prog, golden, mem);
        EXPECT_EQ(run.reason, HaltReason::Exception);
        EXPECT_EQ(run.exc, isa::ExcCause::LoadAccessFault);
    }
    {
        Golden golden;
        Memory mem;
        mem.setSecretProt(swapmem::SecretProt::Pte);
        auto run = runProgram(prog, golden, mem);
        EXPECT_EQ(run.reason, HaltReason::Exception);
        EXPECT_EQ(run.exc, isa::ExcCause::LoadPageFault);
    }
}

TEST(Golden, UnmappedHolePageFaults)
{
    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.la(t0, swapmem::kUnmappedAddr);
    prog.ld(a0, t0, 0);
    prog.swapnext();

    Golden golden;
    Memory mem;
    auto run = runProgram(prog, golden, mem);
    EXPECT_EQ(run.reason, HaltReason::Exception);
    EXPECT_EQ(run.exc, isa::ExcCause::LoadPageFault);
}

TEST(Golden, IllegalInstructionFaults)
{
    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.illegal();
    prog.swapnext();

    Golden golden;
    Memory mem;
    auto run = runProgram(prog, golden, mem);
    EXPECT_EQ(run.reason, HaltReason::Exception);
    EXPECT_EQ(run.exc, isa::ExcCause::IllegalInstr);
}

TEST(Golden, SecretBytesAreTainted)
{
    Memory mem;
    std::array<uint8_t, 8> secret{1, 2, 3, 4, 5, 6, 7, 8};
    mem.installSecret(secret.data(), secret.size());
    auto tv = mem.read(swapmem::kSecretAddr, 8);
    EXPECT_EQ(tv.v, 0x0807060504030201ULL);
    EXPECT_EQ(tv.t, ~0ULL);
    // Non-secret data is clean.
    auto clean_tv = mem.read(swapmem::kScratchAddr, 8);
    EXPECT_EQ(clean_tv.t, 0ULL);
}

TEST(Golden, MemoryUndoLogRollsBack)
{
    Memory mem;
    mem.write(swapmem::kScratchAddr, 8, ift::TV{0xdeadbeefULL, 0});
    mem.beginUndo();
    mem.write(swapmem::kScratchAddr, 8, ift::TV{0x1234ULL, ~0ULL});
    EXPECT_EQ(mem.read(swapmem::kScratchAddr, 8).v, 0x1234ULL);
    mem.rollbackUndo();
    EXPECT_EQ(mem.read(swapmem::kScratchAddr, 8).v, 0xdeadbeefULL);
    EXPECT_EQ(mem.read(swapmem::kScratchAddr, 8).t, 0ULL);
}

TEST(Golden, RandomProgramsAgreeOnTermination)
{
    // Property: programs of random straight-line arithmetic always
    // reach the trailing SWAPNEXT.
    Rng rng(1234);
    for (int trial = 0; trial < 25; ++trial) {
        isa::ProgBuilder prog(swapmem::kSwapBase);
        for (int i = 0; i < 30; ++i) {
            auto rd = static_cast<uint8_t>(rng.range(5, 15));
            auto rs1 = static_cast<uint8_t>(rng.range(5, 15));
            auto rs2 = static_cast<uint8_t>(rng.range(5, 15));
            switch (rng.below(5)) {
              case 0: prog.add(rd, rs1, rs2); break;
              case 1: prog.sub(rd, rs1, rs2); break;
              case 2: prog.emit(Op::MUL, rd, rs1, rs2, 0); break;
              case 3: prog.emit(Op::XOR, rd, rs1, rs2, 0); break;
              default:
                prog.addi(rd, rs1,
                          static_cast<int64_t>(rng.below(100)));
                break;
            }
        }
        prog.swapnext();
        Golden golden;
        Memory mem;
        auto run = runProgram(prog, golden, mem);
        EXPECT_EQ(run.reason, HaltReason::SwapNext);
    }
}

} // namespace
} // namespace dejavuzz
