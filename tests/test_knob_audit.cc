/**
 * @file
 * Knob-wiring audit: every FuzzerOptions and CampaignOptions field
 * must demonstrably alter behavior when flipped (the ift_mode
 * dead-knob bug class — an option the constructor silently dropped).
 * Each test flips exactly one knob against a pinned baseline and
 * asserts a measurable delta; knobs whose *documented* contract is
 * outcome-equivalence (steal_batches, record_coverage_curve,
 * heartbeats) instead assert that equivalence plus the observational
 * side channel that proves the knob is read at all.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "campaign/ledger.hh"
#include "campaign/orchestrator.hh"
#include "core/fuzzer.hh"
#include "uarch/config.hh"

namespace dejavuzz {
namespace {

using campaign::CampaignOptions;
using campaign::CampaignOrchestrator;
using campaign::CampaignStats;
using campaign::ShardPolicy;
using core::Fuzzer;
using core::FuzzerOptions;

// --- FuzzerOptions ------------------------------------------------------

/** A behavioral fingerprint: if any component differs between two
 *  runs, the knob that separated them is wired. */
struct Fingerprint
{
    uint64_t simulations = 0;
    uint64_t windows = 0;
    uint64_t coverage = 0;
    std::set<std::string> bug_keys;

    bool
    operator==(const Fingerprint &other) const
    {
        return simulations == other.simulations &&
               windows == other.windows &&
               coverage == other.coverage &&
               bug_keys == other.bug_keys;
    }
};

Fingerprint
fingerprint(const FuzzerOptions &options, uint64_t iters = 300)
{
    Fuzzer fuzzer(uarch::smallBoomConfig(), options);
    fuzzer.run(iters);
    Fingerprint fp;
    fp.simulations = fuzzer.stats().simulations;
    fp.windows = fuzzer.stats().windows_triggered;
    fp.coverage = fuzzer.stats().coverage_points;
    for (const auto &bug : fuzzer.stats().bugs)
        fp.bug_keys.insert(bug.key());
    return fp;
}

/** The audit primitive: flipping @p flip must change the
 *  fingerprint, and the flipped configuration must itself be
 *  deterministic (so the delta is the knob, not noise). */
template <typename Flip>
void
expectKnobWired(const char *name, Flip flip)
{
    FuzzerOptions base;
    FuzzerOptions flipped;
    flip(flipped);
    const Fingerprint a = fingerprint(base);
    const Fingerprint b = fingerprint(flipped);
    EXPECT_FALSE(a == b) << name << " flip produced no delta";
    const Fingerprint b2 = fingerprint(flipped);
    EXPECT_TRUE(b == b2) << name << " flip is nondeterministic";
}

TEST(KnobAudit, FuzzerMasterSeed)
{
    expectKnobWired("master_seed",
                    [](FuzzerOptions &o) { o.master_seed = 99; });
}

TEST(KnobAudit, FuzzerDerivedTraining)
{
    expectKnobWired("derived_training", [](FuzzerOptions &o) {
        o.derived_training = false;
    });
}

TEST(KnobAudit, FuzzerCoverageFeedback)
{
    expectKnobWired("coverage_feedback", [](FuzzerOptions &o) {
        o.coverage_feedback = false;
    });
}

TEST(KnobAudit, FuzzerUseLiveness)
{
    expectKnobWired("use_liveness",
                    [](FuzzerOptions &o) { o.use_liveness = false; });
}

TEST(KnobAudit, FuzzerTrainingReduction)
{
    expectKnobWired("training_reduction", [](FuzzerOptions &o) {
        o.training_reduction = false;
    });
}

TEST(KnobAudit, FuzzerIftMode)
{
    // The original dead knob: FuzzerOptions::ift_mode was never
    // copied into the sim options, so CellIFT campaigns silently ran
    // DiffIFT. CellIFT over-taints, so the coverage signal differs.
    expectKnobWired("ift_mode", [](FuzzerOptions &o) {
        o.ift_mode = ift::IftMode::CellIFT;
    });
}

TEST(KnobAudit, FuzzerMaxMutations)
{
    expectKnobWired("max_mutations",
                    [](FuzzerOptions &o) { o.max_mutations = 1; });
}

TEST(KnobAudit, FuzzerPhase1Retries)
{
    expectKnobWired("phase1_retries",
                    [](FuzzerOptions &o) { o.phase1_retries = 0; });
}

TEST(KnobAudit, FuzzerTriggerMask)
{
    expectKnobWired("trigger_mask", [](FuzzerOptions &o) {
        o.trigger_mask =
            core::triggerBit(core::TriggerKind::BranchMispredict);
    });
}

TEST(KnobAudit, FuzzerModelMask)
{
    expectKnobWired("model_mask", [](FuzzerOptions &o) {
        o.trigger_mask = core::kAllTriggerMask;
        o.model_mask = core::kAllModelMask;
    });
}

TEST(KnobAudit, FuzzerRecordCoverageCurve)
{
    // Documented contract: observational only. The curve appears or
    // not; everything else is bit-identical.
    FuzzerOptions on;
    FuzzerOptions off;
    off.record_coverage_curve = false;

    Fuzzer a(uarch::smallBoomConfig(), on);
    a.run(200);
    Fuzzer b(uarch::smallBoomConfig(), off);
    b.run(200);

    EXPECT_FALSE(a.stats().coverage_curve.empty());
    EXPECT_TRUE(b.stats().coverage_curve.empty());
    EXPECT_EQ(a.stats().simulations, b.stats().simulations);
    EXPECT_EQ(a.stats().coverage_points, b.stats().coverage_points);
    ASSERT_EQ(a.stats().bugs.size(), b.stats().bugs.size());
    for (size_t i = 0; i < a.stats().bugs.size(); ++i)
        EXPECT_EQ(a.stats().bugs[i].key(), b.stats().bugs[i].key());
}

// --- CampaignOptions ----------------------------------------------------

CampaignOptions
baseCampaign()
{
    CampaignOptions options;
    options.workers = 2;
    options.master_seed = 7;
    options.total_iterations = 500;
    options.epoch_iterations = 125;
    options.base_config = uarch::smallBoomConfig();
    return options;
}

std::set<std::string>
ledgerKeys(const CampaignOrchestrator &orchestrator)
{
    std::set<std::string> keys;
    for (const auto &record : orchestrator.ledger().entries())
        keys.insert(record.report.key());
    return keys;
}

TEST(KnobAudit, CampaignWorkers)
{
    CampaignOptions four = baseCampaign();
    four.workers = 4;
    CampaignOrchestrator a(baseCampaign());
    CampaignStats sa = a.run();
    CampaignOrchestrator b(four);
    CampaignStats sb = b.run();
    EXPECT_EQ(sa.workers.size(), 2u);
    EXPECT_EQ(sb.workers.size(), 4u);
    // Same total budget, different fleet decomposition.
    EXPECT_EQ(sa.iterations, sb.iterations);
    EXPECT_NE(sa.workers[0].iterations, sb.workers[0].iterations);
}

TEST(KnobAudit, CampaignPolicy)
{
    CampaignOptions heads = baseCampaign();
    heads.policy = ShardPolicy::Heads;
    CampaignOrchestrator a(baseCampaign());
    CampaignStats sa = a.run();
    CampaignOrchestrator b(heads);
    CampaignStats sb = b.run();
    EXPECT_EQ(sa.workers[0].variant, "full");
    EXPECT_EQ(sb.workers[0].variant, "head-predictors");
}

TEST(KnobAudit, CampaignFuzzerModelMask)
{
    // The fleet-wide template set (the `--templates` CLI knob) must
    // reach every worker: a priv-transition-only campaign reports
    // the PrivTransition class the baseline never draws.
    CampaignOptions priv = baseCampaign();
    priv.fuzzer.model_mask =
        core::modelBit(core::AttackTemplate::PrivTransition);
    CampaignOrchestrator a(baseCampaign());
    a.run();
    CampaignOrchestrator b(priv);
    b.run();
    auto hasClass = [](const std::set<std::string> &keys,
                       const char *prefix) {
        for (const std::string &key : keys) {
            if (key.rfind(prefix, 0) == 0)
                return true;
        }
        return false;
    };
    EXPECT_FALSE(hasClass(ledgerKeys(a), "PrivTransition"));
    EXPECT_TRUE(hasClass(ledgerKeys(b), "PrivTransition"));
}

TEST(KnobAudit, CampaignMasterSeed)
{
    CampaignOptions reseeded = baseCampaign();
    reseeded.master_seed = 1234;
    CampaignOrchestrator a(baseCampaign());
    CampaignStats sa = a.run();
    CampaignOrchestrator b(reseeded);
    CampaignStats sb = b.run();
    EXPECT_TRUE(sa.coverage_points != sb.coverage_points ||
                ledgerKeys(a) != ledgerKeys(b))
        << "master_seed flip produced identical campaigns";
}

TEST(KnobAudit, CampaignEpochIterations)
{
    CampaignOptions coarse = baseCampaign();
    coarse.epoch_iterations = 250;
    CampaignOrchestrator a(baseCampaign());
    CampaignStats sa = a.run();
    CampaignOrchestrator b(coarse);
    CampaignStats sb = b.run();
    EXPECT_NE(sa.epochs, sb.epochs);
}

TEST(KnobAudit, CampaignBatchIterations)
{
    CampaignOptions fine = baseCampaign();
    fine.batch_iterations = 8;
    CampaignOrchestrator a(baseCampaign());
    CampaignStats sa = a.run();
    CampaignOrchestrator b(fine);
    CampaignStats sb = b.run();
    EXPECT_NE(sa.batches, sb.batches);
}

TEST(KnobAudit, CampaignStealBatches)
{
    // Documented contract: outcome-equivalent; only the scheduler
    // occupancy counters move. The full equivalence is asserted in
    // test_campaign.cc — here the audit checks the knob is read.
    CampaignOptions steal = baseCampaign();
    steal.total_iterations = 2000;
    steal.batch_iterations = 8;
    steal.steal_batches = true;
    CampaignOptions barrier = steal;
    barrier.steal_batches = false;
    CampaignOrchestrator a(steal);
    CampaignStats sa = a.run();
    CampaignOrchestrator b(barrier);
    CampaignStats sb = b.run();
    EXPECT_EQ(sb.batches_stolen, 0u);
    EXPECT_EQ(sa.coverage_points, sb.coverage_points);
    EXPECT_EQ(ledgerKeys(a), ledgerKeys(b));
}

TEST(KnobAudit, CampaignShardWeights)
{
    CampaignOptions skewed = baseCampaign();
    skewed.shard_weights = {3.0, 1.0};
    CampaignOrchestrator a(baseCampaign());
    CampaignStats sa = a.run();
    CampaignOrchestrator b(skewed);
    CampaignStats sb = b.run();
    EXPECT_EQ(sa.workers[0].iterations, sa.workers[1].iterations);
    EXPECT_GT(sb.workers[0].iterations, sb.workers[1].iterations);
}

TEST(KnobAudit, CampaignCorpusShardCap)
{
    CampaignOptions tiny = baseCampaign();
    tiny.total_iterations = 1000;
    tiny.corpus_shards = 1;
    tiny.corpus_shard_cap = 1;
    CampaignOptions roomy = tiny;
    roomy.corpus_shard_cap = 64;
    CampaignOrchestrator a(tiny);
    CampaignStats sa = a.run();
    CampaignOrchestrator b(roomy);
    CampaignStats sb = b.run();
    EXPECT_LE(sa.corpus_size, 1u);
    EXPECT_GT(sb.corpus_size, sa.corpus_size);
}

TEST(KnobAudit, CampaignCorpusShards)
{
    CampaignOptions one = baseCampaign();
    one.total_iterations = 1000;
    one.corpus_shards = 1;
    one.corpus_shard_cap = 2;
    CampaignOptions many = one;
    many.corpus_shards = 8;
    CampaignOrchestrator a(one);
    CampaignStats sa = a.run();
    CampaignOrchestrator b(many);
    CampaignStats sb = b.run();
    EXPECT_GT(sb.corpus_size, sa.corpus_size)
        << "shard count must scale retention capacity";
}

TEST(KnobAudit, CampaignStealsPerEpoch)
{
    CampaignOptions none = baseCampaign();
    none.total_iterations = 1000;
    none.steals_per_epoch = 0;
    CampaignOptions some = none;
    some.steals_per_epoch = 2;
    CampaignOrchestrator a(none);
    CampaignStats sa = a.run();
    CampaignOrchestrator b(some);
    CampaignStats sb = b.run();
    EXPECT_EQ(sa.steals, 0u);
    EXPECT_GT(sb.steals, 0u);
}

TEST(KnobAudit, CampaignHeartbeats)
{
    // Observational knob: lines appear iff enabled; outcomes match.
    CampaignOptions quiet = baseCampaign();
    CampaignOptions chatty = baseCampaign();
    chatty.heartbeat_sec = 0.001;
    std::ostringstream lines;
    chatty.heartbeat_out = &lines;
    CampaignOrchestrator a(quiet);
    CampaignStats sa = a.run();
    CampaignOrchestrator b(chatty);
    CampaignStats sb = b.run();
    EXPECT_NE(lines.str().find("\"type\":\"heartbeat\""),
              std::string::npos);
    EXPECT_EQ(sa.coverage_points, sb.coverage_points);
    EXPECT_EQ(ledgerKeys(a), ledgerKeys(b));
}

} // namespace
} // namespace dejavuzz
