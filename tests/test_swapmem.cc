/**
 * @file
 * Property and round-trip tests for the swappable-memory substrate:
 * instruction encode/decode (randomized round trips and
 * decode-stability over arbitrary words), address-space layout
 * invariants, swap-packet/schedule accounting, and the SwapRuntime's
 * packet loads + secret-permission transitions observed through the
 * backing memory.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "isa/encoding.hh"
#include "isa/instr.hh"
#include "swapmem/layout.hh"
#include "swapmem/memory.hh"
#include "swapmem/packet.hh"
#include "util/rng.hh"

namespace dejavuzz {
namespace {

using isa::Instr;
using isa::Op;

// --- instruction encode/decode ------------------------------------------

/** Immediate shape of an operation (mirrors the RISC-V formats). */
enum class ImmKind {
    None,     ///< R-type / fixed encodings: imm must be 0
    I12,      ///< 12-bit signed
    S12,      ///< 12-bit signed (store split encoding)
    B13,      ///< 13-bit signed, even
    U20,      ///< 20-bit unsigned (LUI/AUIPC upper immediate)
    J21,      ///< 21-bit signed, even
    Shift64,  ///< [0, 63]
    Shift32,  ///< [0, 31]
    Csr12,    ///< 12-bit unsigned CSR number
};

struct OpSpec
{
    Op op;
    ImmKind imm;
};

/** Every encodable op with its immediate shape (ILLEGAL excluded —
 *  its encoding round-trips through `raw`, tested separately). */
const std::vector<OpSpec> &
opSpecs()
{
    static const std::vector<OpSpec> specs = {
        {Op::LUI, ImmKind::U20},      {Op::AUIPC, ImmKind::U20},
        {Op::JAL, ImmKind::J21},      {Op::JALR, ImmKind::I12},
        {Op::BEQ, ImmKind::B13},      {Op::BNE, ImmKind::B13},
        {Op::BLT, ImmKind::B13},      {Op::BGE, ImmKind::B13},
        {Op::BLTU, ImmKind::B13},     {Op::BGEU, ImmKind::B13},
        {Op::LB, ImmKind::I12},       {Op::LH, ImmKind::I12},
        {Op::LW, ImmKind::I12},       {Op::LD, ImmKind::I12},
        {Op::LBU, ImmKind::I12},      {Op::LHU, ImmKind::I12},
        {Op::LWU, ImmKind::I12},      {Op::SB, ImmKind::S12},
        {Op::SH, ImmKind::S12},       {Op::SW, ImmKind::S12},
        {Op::SD, ImmKind::S12},       {Op::ADDI, ImmKind::I12},
        {Op::SLTI, ImmKind::I12},     {Op::SLTIU, ImmKind::I12},
        {Op::XORI, ImmKind::I12},     {Op::ORI, ImmKind::I12},
        {Op::ANDI, ImmKind::I12},     {Op::SLLI, ImmKind::Shift64},
        {Op::SRLI, ImmKind::Shift64}, {Op::SRAI, ImmKind::Shift64},
        {Op::ADD, ImmKind::None},     {Op::SUB, ImmKind::None},
        {Op::SLL, ImmKind::None},     {Op::SLT, ImmKind::None},
        {Op::SLTU, ImmKind::None},    {Op::XOR, ImmKind::None},
        {Op::SRL, ImmKind::None},     {Op::SRA, ImmKind::None},
        {Op::OR, ImmKind::None},      {Op::AND, ImmKind::None},
        {Op::ADDIW, ImmKind::I12},    {Op::SLLIW, ImmKind::Shift32},
        {Op::SRLIW, ImmKind::Shift32},
        {Op::SRAIW, ImmKind::Shift32},
        {Op::ADDW, ImmKind::None},    {Op::SUBW, ImmKind::None},
        {Op::SLLW, ImmKind::None},    {Op::SRLW, ImmKind::None},
        {Op::SRAW, ImmKind::None},    {Op::MUL, ImmKind::None},
        {Op::MULH, ImmKind::None},    {Op::MULHU, ImmKind::None},
        {Op::DIV, ImmKind::None},     {Op::DIVU, ImmKind::None},
        {Op::REM, ImmKind::None},     {Op::REMU, ImmKind::None},
        {Op::MULW, ImmKind::None},    {Op::DIVW, ImmKind::None},
        {Op::REMW, ImmKind::None},    {Op::FENCE, ImmKind::None},
        {Op::FENCE_I, ImmKind::None}, {Op::ECALL, ImmKind::None},
        {Op::EBREAK, ImmKind::None},  {Op::MRET, ImmKind::None},
        {Op::SRET, ImmKind::None},    {Op::CSRRW, ImmKind::Csr12},
        {Op::CSRRS, ImmKind::Csr12},  {Op::CSRRC, ImmKind::Csr12},
        {Op::FLD, ImmKind::I12},      {Op::FSD, ImmKind::S12},
        {Op::FADD_D, ImmKind::None},  {Op::FSUB_D, ImmKind::None},
        {Op::FMUL_D, ImmKind::None},  {Op::FDIV_D, ImmKind::None},
        {Op::FMV_X_D, ImmKind::None}, {Op::FMV_D_X, ImmKind::None},
        {Op::SWAPNEXT, ImmKind::I12},
    };
    return specs;
}

int64_t
randomImm(Rng &rng, ImmKind kind)
{
    switch (kind) {
      case ImmKind::None:
        return 0;
      case ImmKind::I12:
      case ImmKind::S12:
        return static_cast<int64_t>(rng.below(1u << 12)) - 2048;
      case ImmKind::B13:
        return (static_cast<int64_t>(rng.below(1u << 13)) - 4096) &
               ~int64_t{1};
      case ImmKind::U20:
        return static_cast<int64_t>(rng.below(1u << 20));
      case ImmKind::J21:
        return (static_cast<int64_t>(rng.below(1u << 21)) -
                (1 << 20)) &
               ~int64_t{1};
      case ImmKind::Shift64:
        return static_cast<int64_t>(rng.below(64));
      case ImmKind::Shift32:
        return static_cast<int64_t>(rng.below(32));
      case ImmKind::Csr12:
        return static_cast<int64_t>(rng.below(1u << 12));
    }
    return 0;
}

/** A random instruction whose field population matches what the
 *  decoder's normalization produces (unused registers zero). */
Instr
randomInstr(Rng &rng, const OpSpec &spec)
{
    Instr instr;
    instr.op = spec.op;
    const bool uses_rd =
        isa::writesIntRd(spec.op) || isa::fpRd(spec.op);
    const bool uses_rs1 =
        isa::readsIntRs1(spec.op) || isa::fpRs1(spec.op);
    const bool uses_rs2 =
        isa::readsIntRs2(spec.op) || isa::fpRs2(spec.op);
    instr.rd = uses_rd ? static_cast<uint8_t>(rng.below(32)) : 0;
    instr.rs1 = uses_rs1 ? static_cast<uint8_t>(rng.below(32)) : 0;
    instr.rs2 = uses_rs2 ? static_cast<uint8_t>(rng.below(32)) : 0;
    instr.imm = randomImm(rng, spec.imm);
    return instr;
}

TEST(IsaEncoding, RandomizedEncodeDecodeRoundTrip)
{
    Rng rng(0xe9c0de);
    const auto &specs = opSpecs();
    for (int trial = 0; trial < 4000; ++trial) {
        const OpSpec &spec = rng.pick(specs);
        const Instr instr = randomInstr(rng, spec);
        const uint32_t word = isa::encode(instr);
        const Instr decoded = isa::decode(word);
        EXPECT_TRUE(decoded == instr)
            << "op " << isa::mnemonic(spec.op) << ": "
            << isa::disasm(instr) << " decoded as "
            << isa::disasm(decoded);
        EXPECT_EQ(decoded.raw, word);
    }
}

TEST(IsaEncoding, DecodeIsStableOverArbitraryWords)
{
    // decode() is total: any 32-bit word yields an instruction, and
    // one re-encode reaches a fixed point — decode(encode(i)) == i
    // and encode(decode(encode(i))) == encode(i).
    Rng rng(0xdec0de5);
    unsigned legal = 0;
    for (int trial = 0; trial < 20000; ++trial) {
        const auto word = static_cast<uint32_t>(rng.next());
        const Instr first = isa::decode(word);
        const uint32_t reencoded = isa::encode(first);
        const Instr second = isa::decode(reencoded);
        EXPECT_TRUE(second == first)
            << "word " << word << " decode not stable";
        EXPECT_EQ(isa::encode(second), reencoded);
        legal += first.op != Op::ILLEGAL;
    }
    // The property must not hold vacuously on an all-illegal sample.
    EXPECT_GT(legal, 100u);
}

TEST(IsaEncoding, IllegalWordsRoundTripThroughRaw)
{
    const Instr illegal = isa::decode(isa::kIllegalWord);
    EXPECT_EQ(illegal.op, Op::ILLEGAL);
    EXPECT_EQ(isa::encode(illegal), isa::kIllegalWord);

    // Any undecodable word is preserved bit-exactly via `raw`.
    Rng rng(0x111e9a1);
    for (int trial = 0; trial < 5000; ++trial) {
        const auto word = static_cast<uint32_t>(rng.next());
        const Instr decoded = isa::decode(word);
        if (decoded.op == Op::ILLEGAL)
            EXPECT_EQ(isa::encode(decoded), word);
    }
}

TEST(IsaEncoding, CanonicalNop)
{
    const Instr nop = isa::decode(isa::kNopWord);
    EXPECT_EQ(nop.op, Op::ADDI);
    EXPECT_EQ(nop.rd, 0);
    EXPECT_EQ(nop.rs1, 0);
    EXPECT_EQ(nop.imm, 0);
    EXPECT_EQ(isa::encode(nop), isa::kNopWord);
}

// --- address-space layout invariants ------------------------------------

TEST(SwapLayout, RegionsArePageAlignedDisjointAndInRange)
{
    using namespace swapmem;
    struct Region
    {
        const char *name;
        uint64_t base;
        uint64_t size;
    };
    const Region regions[] = {
        {"shared", kSharedBase, kSharedSize},
        {"swappable", kSwapBase, kSwapSize},
        {"dedicated", kDedicatedBase, kDedicatedSize},
        {"data", kDataBase, kDataSize},
    };
    for (const Region &region : regions) {
        EXPECT_EQ(region.base % kPageBytes, 0u)
            << region.name << " base not page-aligned";
        EXPECT_EQ(region.size % kPageBytes, 0u)
            << region.name << " size not page-granular";
        EXPECT_LE(region.base + region.size, kMemBytes)
            << region.name << " exceeds the physical image";
        EXPECT_GT(region.size, 0u);
    }
    for (const Region &a : regions) {
        for (const Region &b : regions) {
            if (a.base == b.base)
                continue;
            const bool disjoint = a.base + a.size <= b.base ||
                                  b.base + b.size <= a.base;
            EXPECT_TRUE(disjoint)
                << a.name << " overlaps " << b.name;
        }
    }
}

TEST(SwapLayout, BlocksSitInsideTheirRegions)
{
    using namespace swapmem;
    EXPECT_GE(kSecretAddr, kDedicatedBase);
    EXPECT_LE(kSecretAddr + kSecretBytes,
              kDedicatedBase + kDedicatedSize);
    EXPECT_GE(kOperandAddr, kDedicatedBase);
    EXPECT_LE(kOperandAddr + kOperandBytes,
              kDedicatedBase + kDedicatedSize);
    // Secret and operand blocks must not overlap.
    EXPECT_LE(kSecretAddr + kSecretBytes, kOperandAddr);

    EXPECT_GE(kLeakArrayAddr, kDataBase);
    EXPECT_LE(kLeakArrayAddr + kLeakArrayBytes, kDataBase + kDataSize);
    EXPECT_GE(kScratchAddr, kDataBase);
    EXPECT_LE(kScratchAddr + kScratchBytes, kDataBase + kDataSize);
    EXPECT_LE(kLeakArrayAddr + kLeakArrayBytes, kScratchAddr);

    EXPECT_GE(kTrapVector, kSharedBase);
    EXPECT_LT(kTrapVector, kSharedBase + kSharedSize);
    EXPECT_GE(kResetVector, kSharedBase);
    EXPECT_LT(kResetVector, kSharedBase + kSharedSize);

    // The unmapped hole really is outside every mapped region but
    // inside the physical image.
    EXPECT_EQ(kUnmappedAddr, kDataBase + kDataSize);
    EXPECT_LT(kUnmappedAddr, kMemBytes);
}

// --- swap packets and schedules -----------------------------------------

swapmem::SwapPacket
makePacket(swapmem::PacketKind kind, std::vector<Instr> instrs,
           const char *label)
{
    swapmem::SwapPacket packet;
    packet.label = label;
    packet.kind = kind;
    packet.instrs = std::move(instrs);
    return packet;
}

Instr
nop()
{
    return isa::decode(isa::kNopWord);
}

TEST(SwapSchedule, OverheadAccountingAndReduction)
{
    using swapmem::PacketKind;
    swapmem::SwapSchedule schedule;
    schedule.packets = {
        makePacket(PacketKind::TriggerTrain,
                   {Instr{Op::ADDI, 5, 6, 0, 1, 0}, nop(), nop()},
                   "t0"),
        makePacket(PacketKind::WindowTrain,
                   {Instr{Op::LD, 10, 11, 0, 8, 0}, nop()}, "w0"),
        makePacket(PacketKind::Transient,
                   {Instr{Op::LD, 12, 13, 0, 0, 0},
                    Instr{Op::SWAPNEXT, 0, 0, 0, 0, 0}},
                   "x"),
    };

    EXPECT_EQ(schedule.transientIndex(), 2u);
    // TO counts every training instruction, ETO only non-nops; the
    // transient packet never counts toward either.
    EXPECT_EQ(schedule.trainingOverhead(), 5u);
    EXPECT_EQ(schedule.effectiveTrainingOverhead(), 2u);

    const swapmem::SwapSchedule reduced = schedule.without(1);
    ASSERT_EQ(reduced.packets.size(), 2u);
    EXPECT_EQ(reduced.packets[0].label, "t0");
    EXPECT_EQ(reduced.packets[1].label, "x");
    EXPECT_EQ(reduced.transientIndex(), 1u);
    EXPECT_EQ(reduced.transient_prot, schedule.transient_prot);
    EXPECT_EQ(reduced.trainingOverhead(), 3u);
    // The original schedule is untouched.
    EXPECT_EQ(schedule.packets.size(), 3u);
}

TEST(SwapRuntime, PacketLoadsRoundTripThroughMemory)
{
    using swapmem::PacketKind;
    Rng rng(0x5aa9);
    const auto &specs = opSpecs();

    swapmem::SwapSchedule schedule;
    schedule.transient_prot = swapmem::SecretProt::Pmp;
    std::vector<std::vector<Instr>> expected;
    const PacketKind kinds[] = {PacketKind::TriggerTrain,
                                PacketKind::WindowTrain,
                                PacketKind::Transient};
    for (PacketKind kind : kinds) {
        std::vector<Instr> instrs;
        const size_t count = 1 + rng.below(16);
        for (size_t i = 0; i < count; ++i)
            instrs.push_back(randomInstr(rng, rng.pick(specs)));
        expected.push_back(instrs);
        schedule.packets.push_back(
            makePacket(kind, std::move(instrs), "pkt"));
    }

    swapmem::Memory mem;
    swapmem::SwapRuntime runtime(schedule);
    uint64_t entry = runtime.start(mem);
    EXPECT_EQ(entry, swapmem::kSwapBase);

    for (size_t p = 0; p < schedule.packets.size(); ++p) {
        ASSERT_FALSE(runtime.done());
        EXPECT_EQ(runtime.cursor(), p);
        // The loaded region holds the genuine RISC-V encodings:
        // fetching and decoding them recovers the packet bit-exactly.
        for (size_t i = 0; i < expected[p].size(); ++i) {
            const uint32_t word =
                mem.fetchWord(swapmem::kSwapBase + 4 * i);
            EXPECT_TRUE(isa::decode(word) == expected[p][i])
                << "packet " << p << " instr " << i;
        }
        // Words past the packet are zeroed by the reload.
        const uint32_t after = mem.fetchWord(
            swapmem::kSwapBase + 4 * expected[p].size());
        EXPECT_EQ(after, 0u);

        // The secret opens up for training and locks down exactly
        // when the transient packet is entered.
        const bool transient = schedule.packets[p].kind ==
                               PacketKind::Transient;
        EXPECT_EQ(mem.secretProt(),
                  transient ? swapmem::SecretProt::Pmp
                            : swapmem::SecretProt::Open)
            << "packet " << p;
        entry = runtime.advance(mem);
    }
    EXPECT_TRUE(runtime.done());
    EXPECT_EQ(entry, 0u);
}

} // namespace
} // namespace dejavuzz
