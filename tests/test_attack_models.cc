/**
 * @file
 * Attack-model template layer tests: the privilege-transition and
 * double-fetch scenario classes, the supervisor victim placement, the
 * PMP guard block, and the determinism/replay contracts for seeds
 * drawn under non-default model masks.
 */

#include <gtest/gtest.h>

#include "bench/poc_suite.hh"
#include "core/fuzzer.hh"
#include "core/phases.hh"
#include "core/stimgen.hh"
#include "harness/dualsim.hh"
#include "swapmem/memory.hh"
#include "uarch/config.hh"

namespace dejavuzz {
namespace {

using core::AttackModel;
using core::AttackTemplate;
using core::AttackType;
using core::Fuzzer;
using core::FuzzerOptions;
using core::Seed;
using core::StimGen;
using core::TestCase;
using core::TriggerKind;
using swapmem::AccessKind;
using swapmem::Memory;
using swapmem::SecretProt;

// --- memory-level mechanics ------------------------------------------------

TEST(PmpGuard, DeniedBelowMachineMode)
{
    Memory mem;
    EXPECT_EQ(mem.check(swapmem::kPmpGuardAddr, 8, AccessKind::Load,
                        isa::Priv::U),
              isa::ExcCause::LoadAccessFault);
    EXPECT_EQ(mem.check(swapmem::kPmpGuardAddr, 8, AccessKind::Store,
                        isa::Priv::U),
              isa::ExcCause::StoreAccessFault);
    EXPECT_EQ(mem.check(swapmem::kPmpGuardAddr, 8, AccessKind::Load,
                        isa::Priv::M),
              isa::ExcCause::None);
    // The guard is independent of the secret protection state.
    mem.setSecretProt(SecretProt::Open);
    EXPECT_EQ(mem.check(swapmem::kPmpGuardAddr, 8, AccessKind::Load,
                        isa::Priv::U),
              isa::ExcCause::LoadAccessFault);
}

TEST(SupervisorVictim, SecretPageFaultsForUser)
{
    Memory mem;
    mem.setVictimSupervisor(true);
    // Page fault dominates the PMP flavour: the walk fails first.
    mem.setSecretProt(SecretProt::Pmp);
    EXPECT_EQ(mem.check(swapmem::kSecretAddr, 8, AccessKind::Load,
                        isa::Priv::U),
              isa::ExcCause::LoadPageFault);
    EXPECT_EQ(mem.check(swapmem::kSecretAddr, 8, AccessKind::Load,
                        isa::Priv::M),
              isa::ExcCause::None);
    mem.setVictimSupervisor(false);
    EXPECT_EQ(mem.check(swapmem::kSecretAddr, 8, AccessKind::Load,
                        isa::Priv::U),
              isa::ExcCause::LoadAccessFault);
}

TEST(SecretSwap, IdempotentAndUndoCovered)
{
    Memory mem;
    uint8_t secret[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    mem.installSecret(secret, sizeof(secret));
    uint8_t v1 = mem.byte(swapmem::kSecretAddr);

    mem.beginUndo();
    mem.applySecretSwap();
    EXPECT_TRUE(mem.secretSwapped());
    EXPECT_EQ(mem.byte(swapmem::kSecretAddr), v1 ^ 0x5a);
    // A second application is a no-op (Phase-3 fused reload path).
    mem.applySecretSwap();
    EXPECT_EQ(mem.byte(swapmem::kSecretAddr), v1 ^ 0x5a);
    // Speculative rollback restores the pre-swap bytes.
    mem.rollbackUndo();
    mem.clearSecretSwap();
    EXPECT_EQ(mem.byte(swapmem::kSecretAddr), v1);
    EXPECT_FALSE(mem.secretSwapped());
}

TEST(SecretSwap, ResetAndCopyCarryFlags)
{
    Memory a;
    a.setVictimSupervisor(true);
    a.applySecretSwap();
    Memory b;
    b.copyFrom(a);
    EXPECT_TRUE(b.victimSupervisor());
    EXPECT_TRUE(b.secretSwapped());
    b.reset();
    EXPECT_FALSE(b.victimSupervisor());
    EXPECT_FALSE(b.secretSwapped());
}

// --- seed drawing under masks ----------------------------------------------

TEST(AttackModels, LegacyMaskDrawsOnlySameDomain)
{
    StimGen gen(uarch::smallBoomConfig());
    Rng rng(321);
    for (unsigned i = 0; i < 64; ++i) {
        Seed seed = gen.newSeed(rng, i);
        EXPECT_EQ(seed.model.tmpl, AttackTemplate::SameDomain);
        EXPECT_LT(static_cast<unsigned>(seed.trigger),
                  core::kLegacyTriggerKinds);
    }
}

TEST(AttackModels, TemplateMasksRestrictTriggers)
{
    StimGen gen(uarch::smallBoomConfig());
    Rng rng(99);
    for (unsigned i = 0; i < 64; ++i) {
        Seed seed = gen.newSeed(rng, i, TriggerKind::kCount,
                                core::kAllTriggerMask,
                                core::kAllModelMask);
        uint32_t allowed = core::templateTriggerMask(seed.model.tmpl);
        EXPECT_NE(allowed & core::triggerBit(seed.trigger), 0u)
            << core::attackTemplateName(seed.model.tmpl) << " drew "
            << core::triggerKindName(seed.trigger);
        switch (seed.model.tmpl) {
          case AttackTemplate::MeltdownSupervisor:
            EXPECT_TRUE(seed.model.supervisor_victim);
            EXPECT_EQ(seed.model.victim, isa::Priv::S);
            EXPECT_TRUE(seed.window.meltdown);
            break;
          case AttackTemplate::PrivTransition:
            EXPECT_EQ(seed.model.victim, isa::Priv::M);
            break;
          default:
            EXPECT_FALSE(seed.model.supervisor_victim);
            break;
        }
    }
}

TEST(AttackModels, AccessFaultMeltdownDecoupled)
{
    // Satellite fix: LoadAccessFault no longer force-sets meltdown.
    StimGen gen(uarch::smallBoomConfig());
    Rng rng(7);
    bool saw_meltdown = false;
    bool saw_spectre = false;
    for (unsigned i = 0; i < 64; ++i) {
        Seed seed =
            gen.newSeed(rng, i, TriggerKind::LoadAccessFault);
        (seed.window.meltdown ? saw_meltdown : saw_spectre) = true;
        if (seed.window.meltdown)
            EXPECT_EQ(seed.window.prot, SecretProt::Pmp);
        else
            EXPECT_EQ(seed.window.prot, SecretProt::Open);
    }
    EXPECT_TRUE(saw_meltdown);
    EXPECT_TRUE(saw_spectre);
}

TEST(AttackModels, ScheduleCarriesModelFlags)
{
    StimGen gen(uarch::smallBoomConfig());
    Rng rng(55);
    Seed seed = gen.newSeed(rng, 0, TriggerKind::BranchMispredict,
                            core::kAllTriggerMask,
                            core::modelBit(AttackTemplate::DoubleFetch));
    EXPECT_EQ(seed.model.tmpl, AttackTemplate::DoubleFetch);
    TestCase tc = gen.generatePhase1(seed);
    EXPECT_TRUE(tc.schedule.double_fetch);
    EXPECT_FALSE(tc.schedule.victim_supervisor);
    // Reduction keeps the flags.
    EXPECT_TRUE(tc.schedule.without(0).double_fetch);

    Seed sup = gen.newSeed(
        rng, 1, TriggerKind::kCount, core::kAllTriggerMask,
        core::modelBit(AttackTemplate::MeltdownSupervisor));
    EXPECT_EQ(sup.trigger, TriggerKind::LoadPageFault);
    TestCase sup_tc = gen.generatePhase1(sup);
    EXPECT_TRUE(sup_tc.schedule.victim_supervisor);
}

// --- end-to-end bug discovery per template ---------------------------------

/** Run a small campaign restricted to @p model_mask and return the
 *  attack types of the bugs it found. */
std::set<AttackType>
campaignAttacks(uint32_t model_mask, uint64_t master_seed,
                uint64_t iters = 400)
{
    FuzzerOptions options;
    options.master_seed = master_seed;
    options.trigger_mask = core::kAllTriggerMask;
    options.model_mask = model_mask;
    Fuzzer fuzzer(uarch::smallBoomConfig(), options);
    fuzzer.runUntilFirstBug(iters);
    std::set<AttackType> attacks;
    for (const auto &bug : fuzzer.stats().bugs)
        attacks.insert(bug.attack);
    return attacks;
}

TEST(AttackModels, PrivTransitionCampaignFindsPrivTransitionBug)
{
    auto attacks = campaignAttacks(
        core::modelBit(AttackTemplate::PrivTransition), 13);
    ASSERT_FALSE(attacks.empty());
    EXPECT_TRUE(attacks.count(AttackType::PrivTransition));
}

TEST(AttackModels, DoubleFetchCampaignFindsDoubleFetchBug)
{
    auto attacks = campaignAttacks(
        core::modelBit(AttackTemplate::DoubleFetch), 17);
    ASSERT_FALSE(attacks.empty());
    EXPECT_TRUE(attacks.count(AttackType::DoubleFetch));
}

TEST(AttackModels, SupervisorCampaignFindsMeltdownBug)
{
    auto attacks = campaignAttacks(
        core::modelBit(AttackTemplate::MeltdownSupervisor), 19);
    ASSERT_FALSE(attacks.empty());
    EXPECT_TRUE(attacks.count(AttackType::Meltdown));
}

TEST(AttackModels, BaselineNeverReportsNewAttackClasses)
{
    // The implicit single-model baseline cannot classify a bug as
    // privilege-transition or double-fetch - the acceptance split the
    // multi-head campaign is measured against.
    FuzzerOptions options;
    options.master_seed = 11;
    Fuzzer fuzzer(uarch::smallBoomConfig(), options);
    fuzzer.run(300);
    for (const auto &bug : fuzzer.stats().bugs) {
        EXPECT_NE(bug.attack, AttackType::PrivTransition);
        EXPECT_NE(bug.attack, AttackType::DoubleFetch);
    }
}

TEST(AttackModels, MaskedCampaignDeterministic)
{
    FuzzerOptions options;
    options.master_seed = 23;
    options.trigger_mask = core::kAllTriggerMask;
    options.model_mask = core::kAllModelMask;
    Fuzzer a(uarch::smallBoomConfig(), options);
    Fuzzer b(uarch::smallBoomConfig(), options);
    a.run(120);
    b.run(120);
    EXPECT_EQ(a.stats().coverage_points, b.stats().coverage_points);
    EXPECT_EQ(a.stats().windows_triggered,
              b.stats().windows_triggered);
    ASSERT_EQ(a.stats().bugs.size(), b.stats().bugs.size());
    for (size_t i = 0; i < a.stats().bugs.size(); ++i)
        EXPECT_EQ(a.stats().bugs[i].key(), b.stats().bugs[i].key());
}

TEST(AttackModels, PrivTransitionBugReplays)
{
    FuzzerOptions options;
    options.master_seed = 13;
    options.trigger_mask = core::kAllTriggerMask;
    options.model_mask =
        core::modelBit(AttackTemplate::PrivTransition);
    Fuzzer fuzzer(uarch::smallBoomConfig(), options);
    Fuzzer::BatchSpec spec;
    spec.rng_seed = 13;
    spec.iterations = 400;
    ift::TaintCoverage baseline;
    uarch::Core::registerModules(baseline,
                                 uarch::smallBoomConfig());
    spec.baseline = &baseline;
    auto batch = fuzzer.runBatch(spec);
    ASSERT_FALSE(batch.bugs.empty());
    ASSERT_EQ(batch.bugs.size(), batch.bug_cases.size());

    Fuzzer replayer(uarch::smallBoomConfig(), options);
    auto outcome = replayer.replayCase(batch.bug_cases[0]);
    ASSERT_TRUE(outcome.report.has_value());
    EXPECT_EQ(outcome.report->key(), batch.bugs[0].key());
}

// --- hand-written scenario PoCs --------------------------------------------

harness::DualResult
runPoc(const bench::Poc &poc)
{
    harness::DualSim sim(uarch::smallBoomConfig());
    harness::SimOptions options;
    options.mode = ift::IftMode::DiffIFT;
    options.taint_log = true;
    options.sinks = true;
    return sim.runDual(poc.schedule, poc.data, options);
}

size_t
dcacheLiveTainted(const harness::DutResult &dut)
{
    for (const auto &sink : dut.sinks) {
        if (sink.module() == "dcache")
            return sink.liveTaintedEntries();
    }
    return 0;
}

const uarch::SquashRec *
findSquash(const uarch::TraceLog &trace, uarch::SquashCause cause)
{
    for (const auto &squash : trace.squashes) {
        if (squash.cause == cause && squash.flushed > 0)
            return &squash;
    }
    return nullptr;
}

TEST(ScenarioPocs, PrivEcallLeaksInTrapShadow)
{
    auto result = runPoc(bench::privEcall());
    ASSERT_TRUE(result.dut0.completed);
    const auto *window =
        findSquash(result.dut0.trace, uarch::SquashCause::Exception);
    ASSERT_NE(window, nullptr);
    EXPECT_EQ(window->exc, isa::ExcCause::EcallU);
    EXPECT_GT(window->transient_executed, 2u)
        << "payload must execute inside the ecall trap shadow";
    EXPECT_GT(result.dut0.taint_log.finalTaintSum(), 0u);
    EXPECT_GE(dcacheLiveTainted(result.dut0), 2u)
        << "secret line + encode line must survive the flush";
}

TEST(ScenarioPocs, PrivReturnLeaksUnderStaleMachineMode)
{
    auto result = runPoc(bench::privReturn());
    ASSERT_TRUE(result.dut0.completed);
    const auto *window = findSquash(result.dut0.trace,
                                    uarch::SquashCause::PrivReturn);
    ASSERT_NE(window, nullptr);
    EXPECT_GT(window->transient_executed, 2u)
        << "payload must execute before the mret commit flush";
    EXPECT_GT(result.dut0.taint_log.finalTaintSum(), 0u);
    EXPECT_GE(dcacheLiveTainted(result.dut0), 2u);
}

TEST(ScenarioPocs, DoubleFetchObservesSwappedSecret)
{
    auto result = runPoc(bench::doubleFetch());
    ASSERT_TRUE(result.dut0.completed);
    const auto *window = findSquash(
        result.dut0.trace, uarch::SquashCause::BranchMispredict);
    ASSERT_NE(window, nullptr);
    EXPECT_GT(window->transient_executed, 2u);
    EXPECT_GT(result.dut0.taint_log.finalTaintSum(), 0u);
    EXPECT_GE(dcacheLiveTainted(result.dut0), 2u);
}

TEST(ScenarioPocs, MeltdownSupervisorPageFaultForwards)
{
    auto result = runPoc(bench::meltdownSupervisor());
    ASSERT_TRUE(result.dut0.completed);
    const auto *window =
        findSquash(result.dut0.trace, uarch::SquashCause::Exception);
    ASSERT_NE(window, nullptr);
    EXPECT_EQ(window->exc, isa::ExcCause::LoadPageFault)
        << "supervisor placement must fail the walk, not the PMP";
    EXPECT_GT(window->transient_executed, 0u);
    EXPECT_GT(result.dut0.taint_log.finalTaintSum(), 0u);
    EXPECT_GE(dcacheLiveTainted(result.dut0), 2u);
}

TEST(ScenarioPocs, ScenarioSuiteDeterministicAcrossReruns)
{
    for (const auto &poc : bench::scenarioPocSuite()) {
        auto a = runPoc(poc);
        auto b = runPoc(poc);
        EXPECT_EQ(a.dut0.timing_hash, b.dut0.timing_hash) << poc.name;
        EXPECT_EQ(a.dut0.state_hash, b.dut0.state_hash) << poc.name;
        EXPECT_EQ(a.dut0.cycles, b.dut0.cycles) << poc.name;
    }
}

} // namespace
} // namespace dejavuzz
