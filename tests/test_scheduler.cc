/**
 * @file
 * Unit tests of the work-stealing batch scheduler: owner FIFO order,
 * thief LIFO (back-of-deque) order, most-loaded victim selection,
 * kind compatibility, empty-steal behaviour, and a concurrent drain
 * hammer that the ThreadSanitizer CI job leans on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "campaign/scheduler.hh"

namespace dejavuzz {
namespace {

using campaign::BatchTask;
using campaign::WorkStealingScheduler;

BatchTask
task(unsigned shard, uint64_t index, uint64_t iters = 10)
{
    BatchTask t;
    t.shard = shard;
    t.index = index;
    t.iterations = iters;
    t.slot = static_cast<size_t>(index);
    return t;
}

TEST(Scheduler, OwnerPopsInFifoOrder)
{
    WorkStealingScheduler sched({0, 0});
    for (uint64_t i = 0; i < 4; ++i)
        sched.push(0, task(0, i));

    BatchTask out;
    for (uint64_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(sched.popOwn(0, out));
        EXPECT_EQ(out.index, i) << "owner end must be FIFO";
    }
    EXPECT_FALSE(sched.popOwn(0, out));
}

TEST(Scheduler, ThiefStealsFromTheBack)
{
    WorkStealingScheduler sched({0, 0});
    for (uint64_t i = 0; i < 3; ++i)
        sched.push(0, task(0, i));

    BatchTask out;
    ASSERT_TRUE(sched.steal(1, out));
    EXPECT_EQ(out.index, 2u) << "thief end must be LIFO";
    ASSERT_TRUE(sched.popOwn(0, out));
    EXPECT_EQ(out.index, 0u) << "owner still drains the front";
    EXPECT_EQ(sched.stolen(), 1u);
}

TEST(Scheduler, StealPrefersTheMostLoadedVictim)
{
    WorkStealingScheduler sched({0, 0, 0});
    sched.push(0, task(0, 0));
    for (uint64_t i = 0; i < 5; ++i)
        sched.push(1, task(1, i));

    BatchTask out;
    ASSERT_TRUE(sched.steal(2, out));
    EXPECT_EQ(out.shard, 1u) << "victim must be the deepest deque";
    EXPECT_EQ(sched.load(1), 4u);
    EXPECT_EQ(sched.load(0), 1u);
}

TEST(Scheduler, StealNeverCrossesKinds)
{
    // Worker 0/1 share a kind; worker 2 is its own kind (e.g. a
    // different core config) and must not execute their batches.
    WorkStealingScheduler sched({0, 0, 1});
    for (uint64_t i = 0; i < 3; ++i)
        sched.push(0, task(0, i));

    BatchTask out;
    EXPECT_FALSE(sched.steal(2, out))
        << "incompatible thief must come up empty";
    EXPECT_TRUE(sched.steal(1, out));
    EXPECT_EQ(sched.stolen(), 1u);
}

TEST(Scheduler, EmptyStealReturnsFalse)
{
    WorkStealingScheduler sched({0, 0});
    BatchTask out;
    EXPECT_FALSE(sched.steal(0, out));
    EXPECT_FALSE(sched.steal(1, out));
    EXPECT_EQ(sched.stolen(), 0u);

    // A thief must also not steal its own deque's work through the
    // victim scan.
    sched.push(0, task(0, 0));
    EXPECT_FALSE(sched.steal(0, out));
    EXPECT_EQ(sched.load(0), 1u);
}

TEST(Scheduler, ConcurrentDrainLosesNothing)
{
    // A skewed plan hammered by popOwn+steal from every thread:
    // every batch must be executed exactly once no matter how the
    // pops and steals interleave (the TSan job replays this).
    constexpr unsigned kWorkers = 4;
    constexpr uint64_t kSkewed = 256;
    constexpr uint64_t kRest = 32;

    WorkStealingScheduler sched(
        std::vector<unsigned>(kWorkers, 0));
    uint64_t total = 0;
    for (unsigned w = 0; w < kWorkers; ++w) {
        const uint64_t n = w == 0 ? kSkewed : kRest;
        for (uint64_t i = 0; i < n; ++i)
            sched.push(w, task(w, i, /*iters=*/1));
        total += n;
    }

    std::atomic<uint64_t> executed{0};
    std::vector<std::atomic<uint32_t>> seen(kWorkers);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kWorkers; ++t) {
        threads.emplace_back([&, t] {
            BatchTask out;
            for (;;) {
                if (!sched.popOwn(t, out) && !sched.steal(t, out))
                    break;
                seen[out.shard].fetch_add(
                    1, std::memory_order_relaxed);
                executed.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(executed.load(), total);
    EXPECT_EQ(seen[0].load(), kSkewed);
    for (unsigned w = 1; w < kWorkers; ++w)
        EXPECT_EQ(seen[w].load(), kRest);
    for (unsigned w = 0; w < kWorkers; ++w)
        EXPECT_EQ(sched.load(w), 0u);
    EXPECT_LE(sched.stolen(), total);
}

} // namespace
} // namespace dejavuzz
