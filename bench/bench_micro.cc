/**
 * @file
 * Google-benchmark micro-benchmarks: taint-policy kernels, core tick
 * throughput per IFT mode, and full differential-run latency. These
 * underpin the wall-clock numbers of the experiment harnesses.
 */

#include <benchmark/benchmark.h>

#include "bench/poc_suite.hh"
#include "harness/dualsim.hh"
#include "ift/policy.hh"
#include "ift/taint.hh"
#include "rtl/fig2_rob.hh"
#include "uarch/config.hh"

using namespace dejavuzz;

namespace {

void
BM_PolicyKernels(benchmark::State &state)
{
    ift::TaintCtx ctx;
    ctx.begin(ift::IftMode::CellIFT, nullptr, nullptr);
    ift::TV a{0x1234, 0xff};
    ift::TV b{0x5678, 0};
    for (auto _ : state) {
        auto r1 = ift::andCell(a, b);
        auto r2 = ift::addCell(r1, b);
        auto r3 = ctx.mux(1, ift::TV{1, 1}, r2, a);
        benchmark::DoNotOptimize(r3);
    }
}
BENCHMARK(BM_PolicyKernels);

void
BM_Fig2RobEval(benchmark::State &state)
{
    auto rob = rtl::buildFig2Rob(32);
    rtl::Evaluator eval(rob.netlist);
    ift::TaintCtx ctx;
    ctx.begin(ift::IftMode::CellIFT, nullptr, nullptr);
    eval.setInput(rob.enq_uopc, ift::TV{0x2a, 0});
    eval.setInput(rob.enq_valid, ift::TV{1, 0});
    eval.setInput(rob.rob_tail_idx, ift::TV{3, 0xff});
    for (auto _ : state) {
        eval.step(ctx);
        benchmark::DoNotOptimize(eval.taintSum());
    }
}
BENCHMARK(BM_Fig2RobEval);

void
BM_CoreTick(benchmark::State &state)
{
    auto mode = static_cast<ift::IftMode>(state.range(0));
    auto cfg = uarch::smallBoomConfig();
    uarch::Core core(cfg);
    swapmem::Memory mem;
    auto poc = bench::spectreV1();
    mem.installSecret(poc.data.secret.data(), poc.data.secret.size());
    swapmem::SwapRuntime runtime(poc.schedule);
    core.startSequence(runtime.start(mem));
    ift::TaintCtx ctx;
    ctx.begin(mode, nullptr, nullptr);
    for (auto _ : state) {
        auto ev = core.tick(mem, ctx, nullptr);
        if (ev.swap_next || ev.trapped) {
            uint64_t entry = runtime.advance(mem);
            if (runtime.done()) {
                swapmem::SwapRuntime fresh(poc.schedule);
                runtime = fresh;
                entry = runtime.start(mem);
            }
            core.flushICache();
            core.startSequence(entry);
        }
    }
}
BENCHMARK(BM_CoreTick)
    ->Arg(static_cast<int>(ift::IftMode::Off))
    ->Arg(static_cast<int>(ift::IftMode::CellIFT))
    ->Arg(static_cast<int>(ift::IftMode::DiffIFT));

void
BM_DualRun(benchmark::State &state)
{
    auto mode = static_cast<ift::IftMode>(state.range(0));
    auto cfg = uarch::smallBoomConfig();
    harness::DualSim sim(cfg);
    harness::SimOptions options;
    options.mode = mode;
    options.taint_log = mode != ift::IftMode::Off;
    auto poc = bench::spectreV1();
    for (auto _ : state) {
        auto result = sim.runDual(poc.schedule, poc.data, options);
        benchmark::DoNotOptimize(result.dut0.cycles);
    }
}
BENCHMARK(BM_DualRun)
    ->Arg(static_cast<int>(ift::IftMode::Off))
    ->Arg(static_cast<int>(ift::IftMode::CellIFT))
    ->Arg(static_cast<int>(ift::IftMode::DiffIFT));

} // namespace

BENCHMARK_MAIN();
