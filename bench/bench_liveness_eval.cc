/**
 * @file
 * Liveness evaluation (paper §6.3): SpecDoctor's phase-3 candidates
 * (stimuli whose timing-component state hashes differ across secret
 * variants) are analyzed with DejaVuzz's encode-sanitization +
 * taint-liveness machinery.
 *
 * Paper shape: of 75 candidates only 17 were real leaks; the rest
 * were secrets resting unexploitably in the d-cache/LFB. Without
 * liveness annotations 54 of 75 were misclassified.
 */

#include <cstdio>

#include "baseline/specdoctor.hh"
#include "bench/bench_util.hh"
#include "core/phases.hh"
#include "harness/dualsim.hh"
#include "uarch/config.hh"

using namespace dejavuzz;

int
main()
{
    uint64_t iters = bench::envKnob("DEJAVUZZ_LIVENESS_ITERS", 600);
    auto cfg = uarch::smallBoomConfig();

    bench::banner("Liveness evaluation (SpecDoctor phase-3 candidates)");

    baseline::SpecDoctor::Options sd_options;
    sd_options.master_seed = 0x11fe;
    baseline::SpecDoctor specdoctor(cfg, sd_options);
    specdoctor.run(iters);
    const auto &candidates = specdoctor.candidates();
    std::printf("SpecDoctor: %lu iterations, %zu hash-differ"
                " candidates, %lu phase-4 confirmations\n",
                static_cast<unsigned long>(iters), candidates.size(),
                static_cast<unsigned long>(
                    specdoctor.stats().confirmed));

    harness::DualSim sim(cfg);
    harness::SimOptions options;
    options.mode = ift::IftMode::DiffIFT;
    options.sinks = true;

    size_t real_with_liveness = 0;
    size_t real_without_liveness = 0;
    isa::Instr nop;
    nop.op = isa::Op::ADDI;

    for (const auto &candidate : candidates) {
        // Encode sanitization: nop the injected payload and diff.
        swapmem::SwapSchedule sanitized = candidate.schedule;
        auto &instrs = sanitized.packets[0].instrs;
        for (size_t i = candidate.payload_begin;
             i < candidate.payload_end && i < instrs.size(); ++i)
            instrs[i] = nop;

        auto orig = sim.runDual(candidate.schedule, candidate.data,
                                options);
        auto base = sim.runDual(sanitized, candidate.data, options);

        std::set<std::string> live;
        size_t encoded = 0;
        size_t live_encoded = 0;
        core::diffSinks(orig.dut0.sinks, base.dut0.sinks, true, live,
                        encoded, live_encoded);
        bool real = live_encoded > 0 ||
                    !core::constantTimeViolations(orig).empty();
        real_with_liveness += real;

        live.clear();
        encoded = 0;
        live_encoded = 0;
        core::diffSinks(orig.dut0.sinks, base.dut0.sinks, false, live,
                        encoded, live_encoded);
        bool flagged = live_encoded > 0 ||
                       !core::constantTimeViolations(orig).empty();
        real_without_liveness += flagged;
    }

    size_t total = candidates.size();
    std::printf("\nwith taint-liveness annotations: %zu/%zu real"
                " leaks, %zu false positives filtered\n",
                real_with_liveness, total,
                total - real_with_liveness);
    std::printf("without liveness (reachability only): %zu/%zu"
                " flagged => %zu misclassified\n",
                real_without_liveness, total,
                real_without_liveness - real_with_liveness);
    std::printf("\npaper: 17/75 real with liveness; 54/75"
                " misclassified without.\n");
    return 0;
}
