/**
 * @file
 * Table 5: transient execution vulnerabilities discovered by full
 * three-phase campaigns on both cores, classified by attack type,
 * transient window type and encoded timing component, plus
 * time-to-first-bug compared with SpecDoctor.
 *
 * Paper shape: DejaVuzz covers Meltdown and Spectre attacks across
 * every window type its core supports and encodes into i/d-cache,
 * TLBs, predictors (BOOM only) and LSU/FPU contention; it finds its
 * first bug in minutes while SpecDoctor confirms nothing in a
 * comparable budget (days / 100k iterations in the paper).
 */

#include <cstdio>
#include <map>
#include <set>

#include "baseline/specdoctor.hh"
#include "bench/bench_util.hh"
#include "core/fuzzer.hh"
#include "uarch/config.hh"

using namespace dejavuzz;
using core::AttackType;
using core::TriggerKind;

int
main()
{
    uint64_t iters = bench::envKnob("DEJAVUZZ_T5_ITERS", 1200);
    uint64_t sd_iters = bench::envKnob("DEJAVUZZ_T5_SD_ITERS", 400);

    bench::banner("Table 5: discovered transient execution bugs");

    struct CoreCase
    {
        const char *name;
        uarch::CoreConfig cfg;
    };
    CoreCase cases[2] = {
        {"BOOM", uarch::smallBoomConfig()},
        {"XiangShan", uarch::xiangshanMinimalConfig()},
    };

    for (const auto &core_case : cases) {
        core::FuzzerOptions options;
        options.master_seed = 0x7ab1e5;
        core::Fuzzer fuzzer(core_case.cfg, options);
        bench::Stopwatch timer;
        fuzzer.run(iters);
        double elapsed = timer.seconds();
        const auto &stats = fuzzer.stats();

        std::printf("\n%s: %lu iterations in %.1fs, %lu windows,"
                    " %zu reports (%zu distinct classes)\n",
                    core_case.name,
                    static_cast<unsigned long>(stats.iterations),
                    elapsed,
                    static_cast<unsigned long>(
                        stats.windows_triggered),
                    stats.bugs.size(), stats.distinctBugs());
        std::printf("first bug: iteration %lu (%.2fs; paper: ~10min"
                    " for DejaVuzz vs days for SpecDoctor)\n",
                    static_cast<unsigned long>(
                        stats.first_bug_iteration),
                    stats.first_bug_seconds);

        // Attack x window grid with the union of components.
        std::map<std::string, std::set<std::string>> grid;
        std::set<std::string> masked;
        for (const auto &bug : stats.bugs) {
            std::string row = std::string(attackTypeName(bug.attack)) +
                              " / " + triggerKindName(bug.window);
            grid[row].insert(bug.components.begin(),
                             bug.components.end());
            if (bug.masked_address)
                masked.insert(row);
        }
        std::printf("%-36s %s\n", "attack / window",
                    "encoded timing components");
        for (const auto &[row, components] : grid) {
            std::string list;
            for (const auto &component : components) {
                if (!list.empty())
                    list += ", ";
                list += component;
            }
            const char *mark =
                masked.count(row) != 0 ? " [+masked-addr B1]" : "";
            std::printf("%-36s %s%s\n", row.c_str(), list.c_str(),
                        mark);
        }
    }

    // SpecDoctor comparison on BOOM.
    baseline::SpecDoctor::Options sd_options;
    sd_options.master_seed = 0x5dc;
    baseline::SpecDoctor specdoctor(uarch::smallBoomConfig(),
                                    sd_options);
    bench::Stopwatch sd_timer;
    specdoctor.run(sd_iters);
    const auto &sd_stats = specdoctor.stats();
    std::printf("\nSpecDoctor (BOOM): %lu iterations in %.1fs,"
                " %lu rollbacks, %lu candidates, %lu confirmed"
                " (paper: none in ~100k iterations / a week)\n",
                static_cast<unsigned long>(sd_stats.iterations),
                sd_timer.seconds(),
                static_cast<unsigned long>(sd_stats.rollbacks),
                static_cast<unsigned long>(sd_stats.candidates),
                static_cast<unsigned long>(sd_stats.confirmed));
    return 0;
}
