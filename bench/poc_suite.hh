/**
 * @file
 * The five classic transient-execution PoCs used by the paper's
 * micro-benchmarks (Table 4 simulation rows, Fig. 6 taint series):
 * Spectre-V1, Spectre-V2, Meltdown, Spectre-V4 and Spectre-RSB, each
 * expressed as a swap schedule against the shared substrate.
 */

#ifndef DEJAVUZZ_BENCH_POC_SUITE_HH
#define DEJAVUZZ_BENCH_POC_SUITE_HH

#include <algorithm>
#include <string>
#include <vector>

#include "harness/stimulus.hh"
#include "isa/builder.hh"
#include "swapmem/layout.hh"
#include "swapmem/packet.hh"
#include "util/rng.hh"

namespace dejavuzz::bench {

struct Poc
{
    std::string name;
    swapmem::SwapSchedule schedule;
    harness::StimulusData data;
};

namespace poc_detail {

using isa::Op;
using namespace isa::reg;

inline swapmem::SwapPacket
packetOf(isa::ProgBuilder &prog, const char *label,
         swapmem::PacketKind kind)
{
    swapmem::SwapPacket packet;
    packet.label = label;
    packet.kind = kind;
    packet.instrs = prog.finish();
    return packet;
}

inline swapmem::SwapPacket
warmPacket()
{
    isa::ProgBuilder warm(swapmem::kSwapBase);
    warm.la(s1, swapmem::kSecretAddr);
    warm.ld(t5, s1, 0);
    warm.la(t2, swapmem::kLeakArrayAddr + 0x100);
    warm.ld(t5, t2, 0x400); // probe-page TLB
    warm.swapnext();
    return packetOf(warm, "window_train", swapmem::PacketKind::WindowTrain);
}

/** Common prologue: bases, slow condition chain into a0. */
inline void
prologue(isa::ProgBuilder &prog)
{
    prog.la(s1, swapmem::kSecretAddr);
    prog.la(t2, swapmem::kLeakArrayAddr + 0x100);
    prog.la(t4, swapmem::kOperandAddr);
    prog.li(t5, 1);
    prog.ld(a0, t4, 0);
    prog.emit(Op::DIV, a0, a0, t5, 0);
    prog.emit(Op::DIV, a0, a0, t5, 0);
}

/** Secret access + d-cache encode of bit 0. */
inline void
payload(isa::ProgBuilder &prog)
{
    prog.lb(s0, s1, 0);
    prog.andi(t1, s0, 1);
    prog.slli(t1, t1, 6);
    prog.add(t1, t1, t2);
    prog.ld(s3, t1, 0);
    prog.nop();
}

} // namespace poc_detail

/** Spectre-V1: untrained-taken branch, window on the fall-through. */
inline Poc
spectreV1()
{
    using namespace poc_detail;
    Poc poc;
    poc.name = "Spectre-V1";
    Rng rng(0x51);
    poc.data = harness::StimulusData::random(rng);
    poc.data.operands[0] = 1;

    isa::ProgBuilder prog(swapmem::kSwapBase);
    prologue(prog);
    isa::Label exit_lbl = prog.newLabel();
    prog.branch(Op::BNE, a0, zero, exit_lbl);
    payload(prog);
    prog.bind(exit_lbl);
    prog.swapnext();

    poc.schedule.packets.push_back(warmPacket());
    poc.schedule.packets.push_back(
        packetOf(prog, "transient", swapmem::PacketKind::Transient));
    return poc;
}

/** Spectre-V2: indirect jump trained to the window address. */
inline Poc
spectreV2()
{
    using namespace poc_detail;
    Poc poc;
    poc.name = "Spectre-V2";
    Rng rng(0x52);
    poc.data = harness::StimulusData::random(rng);
    constexpr uint64_t kTrigger = swapmem::kSwapBase + 0x100;
    constexpr uint64_t kWindow = kTrigger + 0x40;
    constexpr uint64_t kExit = swapmem::kSwapBase + 0x200;
    poc.data.operands[1] = kExit;

    // Training: same jump, steered to the window.
    isa::ProgBuilder train(swapmem::kSwapBase);
    train.li(t5, kWindow);
    train.padTo(kTrigger);
    train.jalr(0, t5, 0);
    train.padTo(kWindow);
    train.swapnext();

    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.la(s1, swapmem::kSecretAddr);
    prog.la(t2, swapmem::kLeakArrayAddr + 0x100);
    prog.li(t5, 1);
    // The slow chain sits right before the trigger so it resolves
    // well after fetch has redirected into the trained window.
    prog.padTo(kTrigger - 5 * 4);
    prog.la(t1, swapmem::kOperandAddr + 8);
    prog.ld(a0, t1, 0); // architectural target: exit
    prog.emit(Op::DIV, a0, a0, t5, 0);
    prog.emit(Op::DIV, a0, a0, t5, 0);
    prog.jalr(0, a0, 0);
    prog.padTo(kWindow);
    payload(prog);
    prog.padTo(kExit);
    prog.swapnext();

    poc.schedule.packets.push_back(warmPacket());
    isa::ProgBuilder train2(swapmem::kSwapBase);
    train2.li(t5, kWindow);
    train2.padTo(kTrigger);
    train2.jalr(0, t5, 0);
    train2.padTo(kWindow);
    train2.swapnext();
    poc.schedule.packets.push_back(packetOf(
        train2, "trigger_train_0", swapmem::PacketKind::TriggerTrain));
    poc.schedule.packets.push_back(
        packetOf(prog, "transient", swapmem::PacketKind::Transient));
    return poc;
}

/** Meltdown: protected secret accessed inside a fault window. */
inline Poc
meltdown()
{
    using namespace poc_detail;
    Poc poc;
    poc.name = "Meltdown";
    Rng rng(0x4d);
    poc.data = harness::StimulusData::random(rng);

    isa::ProgBuilder prog(swapmem::kSwapBase);
    prologue(prog);
    // The slow chain result delays the faulting access's commit.
    prog.emit(Op::DIV, a0, a0, t5, 0);
    payload(prog); // lb faults (PMP) but forwards the warm secret
    prog.swapnext();

    poc.schedule.packets.push_back(warmPacket());
    poc.schedule.packets.push_back(
        packetOf(prog, "transient", swapmem::PacketKind::Transient));
    poc.schedule.transient_prot = swapmem::SecretProt::Pmp;
    return poc;
}

/** Spectre-V4: speculative store bypass (memory disambiguation). */
inline Poc
spectreV4()
{
    using namespace poc_detail;
    Poc poc;
    poc.name = "Spectre-V4";
    Rng rng(0x54);
    poc.data = harness::StimulusData::random(rng);
    poc.data.operands[3] = swapmem::kScratchAddr + 0x80;

    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.la(s1, swapmem::kSecretAddr);
    prog.la(t2, swapmem::kLeakArrayAddr + 0x100);
    prog.li(t5, 1);
    prog.li(a2, 0); // the overwriting value
    prog.la(a4, swapmem::kScratchAddr + 0x80);
    // Stale pointer to the secret sits in memory; warm its line.
    prog.la(t1, swapmem::kSecretAddr);
    prog.sd(t1, a4, 0);
    // Slow store-address chain right before the store so the younger
    // load issues past it speculatively.
    prog.la(t1, swapmem::kOperandAddr + 24);
    prog.ld(a3, t1, 0);
    prog.emit(Op::DIV, a3, a3, t5, 0);
    prog.emit(Op::DIV, a3, a3, t5, 0);
    prog.sd(a2, a3, 0); // overwrite (slow address)
    prog.ld(t1, a4, 0); // speculative load: reads the stale pointer
    prog.lb(s0, t1, 0); // dereference: the secret
    prog.andi(t1, s0, 1);
    prog.slli(t1, t1, 6);
    prog.add(t1, t1, t2);
    prog.ld(s3, t1, 0);
    prog.swapnext();

    poc.schedule.packets.push_back(warmPacket());
    poc.schedule.packets.push_back(
        packetOf(prog, "transient", swapmem::PacketKind::Transient));
    return poc;
}

/** Spectre-RSB: return steered into the window by a trained RAS. */
inline Poc
spectreRsb()
{
    using namespace poc_detail;
    Poc poc;
    poc.name = "Spectre-RSB";
    Rng rng(0x5b);
    poc.data = harness::StimulusData::random(rng);
    constexpr uint64_t kTrigger = swapmem::kSwapBase + 0x100;
    constexpr uint64_t kWindow = kTrigger + 0x40;
    constexpr uint64_t kExit = swapmem::kSwapBase + 0x200;
    poc.data.operands[1] = kExit;

    // Training: call whose return address is the window start; the
    // callee exits without returning.
    isa::ProgBuilder train(swapmem::kSwapBase);
    train.padTo(kWindow - 4);
    train.emit(Op::JAL, 1, 0, 0, 8);
    train.nop();
    train.swapnext();

    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.la(s1, swapmem::kSecretAddr);
    prog.la(t2, swapmem::kLeakArrayAddr + 0x100);
    prog.li(t5, 1);
    prog.padTo(kTrigger - 5 * 4);
    prog.la(t1, swapmem::kOperandAddr + 8);
    prog.ld(1 /*ra*/, t1, 0);
    prog.emit(Op::DIV, 1, 1, t5, 0);
    prog.emit(Op::DIV, 1, 1, t5, 0);
    prog.ret();
    prog.padTo(kWindow);
    payload(prog);
    prog.padTo(kExit);
    prog.swapnext();

    poc.schedule.packets.push_back(warmPacket());
    poc.schedule.packets.push_back(packetOf(
        train, "trigger_train_0", swapmem::PacketKind::TriggerTrain));
    poc.schedule.packets.push_back(
        packetOf(prog, "transient", swapmem::PacketKind::Transient));
    return poc;
}

/** The five-PoC suite in the paper's Table-4 order. */
inline std::vector<Poc>
pocSuite()
{
    return {spectreV1(), spectreV2(), meltdown(), spectreV4(),
            spectreRsb()};
}

/**
 * Priv-Ecall: the trap shadow of an `ecall` at the U→M boundary. The
 * RoB unwind takes trap_latency cycles during which the younger
 * payload executes transiently; the PMP-protected secret is read
 * through transient fault forwarding inside that shadow.
 */
inline Poc
privEcall()
{
    using namespace poc_detail;
    Poc poc;
    poc.name = "Priv-Ecall";
    Rng rng(0x7e);
    poc.data = harness::StimulusData::random(rng);

    isa::ProgBuilder prog(swapmem::kSwapBase);
    prologue(prog);
    prog.ecall(); // traps to M; the trap advances the swap runtime
    payload(prog);
    prog.swapnext(); // unreachable: the trap ends the packet

    poc.schedule.packets.push_back(warmPacket());
    poc.schedule.packets.push_back(
        packetOf(prog, "transient", swapmem::PacketKind::Transient));
    poc.schedule.transient_prot = swapmem::SecretProt::Pmp;
    return poc;
}

/**
 * Priv-Return: the post-`mret` flush window. A privilege-entry
 * packet ecalls into M mode (the trap advances the runtime), so the
 * transient packet starts privileged; when its mret commits,
 * everything younger was fetched under the stale M privilege and is
 * flushed — after having read the PMP-protected secret legally.
 */
inline Poc
privReturn()
{
    using namespace poc_detail;
    Poc poc;
    poc.name = "Priv-Return";
    Rng rng(0x7f);
    poc.data = harness::StimulusData::random(rng);

    isa::ProgBuilder entry(swapmem::kSwapBase);
    entry.nop();
    entry.nop();
    entry.ecall();

    isa::ProgBuilder prog(swapmem::kSwapBase);
    prologue(prog); // slow chain keeps the mret from the RoB head
    prog.emit(Op::DIV, a0, a0, t5, 0);
    prog.mret();
    payload(prog); // executes in M, flushed at the mret commit
    prog.swapnext();

    poc.schedule.packets.push_back(warmPacket());
    poc.schedule.packets.push_back(packetOf(
        entry, "priv_entry", swapmem::PacketKind::TriggerTrain));
    poc.schedule.packets.push_back(
        packetOf(prog, "transient", swapmem::PacketKind::Transient));
    poc.schedule.transient_prot = swapmem::SecretProt::Pmp;
    return poc;
}

/**
 * Double-Fetch: Spectre-V1 control flow, but the secret bytes are
 * swapped when the transient packet loads — the warm packet's cached
 * copy goes stale, and the speculative re-fetch observes the
 * mutated value (the TOCTOU hazard the swap runtime models).
 */
inline Poc
doubleFetch()
{
    using namespace poc_detail;
    Poc poc;
    poc.name = "Double-Fetch";
    Rng rng(0xdf);
    poc.data = harness::StimulusData::random(rng);
    poc.data.operands[0] = 1;

    isa::ProgBuilder prog(swapmem::kSwapBase);
    prologue(prog);
    isa::Label exit_lbl = prog.newLabel();
    prog.branch(Op::BNE, a0, zero, exit_lbl);
    payload(prog);
    prog.bind(exit_lbl);
    prog.swapnext();

    poc.schedule.packets.push_back(warmPacket());
    poc.schedule.packets.push_back(
        packetOf(prog, "transient", swapmem::PacketKind::Transient));
    poc.schedule.double_fetch = true;
    return poc;
}

/**
 * Meltdown-Supervisor: the secret sits in a supervisor page for the
 * transient packet, so the U-mode access raises a load page fault
 * (the walk fails before any PMP check) while forwarding leaks the
 * warm copy — the cross-privilege Meltdown placement.
 */
inline Poc
meltdownSupervisor()
{
    using namespace poc_detail;
    Poc poc;
    poc.name = "Meltdown-Supervisor";
    Rng rng(0x4e);
    poc.data = harness::StimulusData::random(rng);

    isa::ProgBuilder prog(swapmem::kSwapBase);
    prologue(prog);
    prog.emit(Op::DIV, a0, a0, t5, 0);
    payload(prog); // lb page-faults but forwards the warm secret
    prog.swapnext();

    poc.schedule.packets.push_back(warmPacket());
    poc.schedule.packets.push_back(
        packetOf(prog, "transient", swapmem::PacketKind::Transient));
    poc.schedule.victim_supervisor = true;
    return poc;
}

/**
 * The attack-model scenario PoCs: one reproducer per template the
 * attack-model layer instantiates beyond the same-domain classics
 * (privilege transitions both directions, double fetch, supervisor
 * victim placement). Kept separate from pocSuite() so the classic
 * five keep defining the triage shrinker bound.
 */
inline std::vector<Poc>
scenarioPocSuite()
{
    return {privEcall(), privReturn(), doubleFetch(),
            meltdownSupervisor()};
}

/** Non-nop size of @p poc's transient packet: the hand-written
 *  measure of "how much code a minimal exploit really needs". */
inline size_t
transientEffectiveSize(const Poc &poc)
{
    const size_t idx = poc.schedule.transientIndex();
    return poc.schedule.packets[idx].effectiveSize();
}

/**
 * The largest transient effective size across the hand-written
 * suite. The triage shrinker's output is cross-checked against this
 * bound: a campaign-found bug minimized by ddmin should not need
 * grossly more live instructions than the densest hand-crafted
 * exploit of the same pipeline (tests/test_triage.cc).
 */
inline size_t
maxTransientEffectiveSize()
{
    size_t max = 0;
    for (const Poc &poc : pocSuite())
        max = std::max(max, transientEffectiveSize(poc));
    return max;
}

} // namespace dejavuzz::bench

#endif // DEJAVUZZ_BENCH_POC_SUITE_HH
