/**
 * @file
 * Ablation: the training reduction strategy (paper step 1.2).
 * With reduction disabled, every derived training packet survives
 * into the final schedule; with it enabled, exception windows keep
 * zero training and misprediction windows keep the single necessary
 * packet. Also reports the re-simulation cost reduction pays.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/fuzzer.hh"
#include "core/phases.hh"
#include "core/stimgen.hh"
#include "harness/dualsim.hh"
#include "uarch/config.hh"

using namespace dejavuzz;
using core::TriggerKind;

namespace {

struct Row
{
    double to = 0.0;
    double packets = 0.0;
    double sims = 0.0;
    unsigned windows = 0;
};

Row
measure(const uarch::CoreConfig &cfg, TriggerKind kind, bool reduce,
        unsigned windows)
{
    harness::DualSim sim(cfg);
    core::StimGen gen(cfg);
    harness::SimOptions options;
    core::Phase1 phase1(sim, options);
    Row row;
    Rng rng(0xab1a ^ static_cast<uint64_t>(kind));
    uint64_t to_sum = 0;
    uint64_t packet_sum = 0;
    uint64_t sim_sum = 0;
    for (unsigned w = 0; w < windows * 2 && row.windows < windows;
         ++w) {
        core::Seed seed = gen.newSeed(rng, w, kind);
        core::TestCase tc = gen.generatePhase1(seed);
        bool triggered = false;
        sim_sum += phase1.run(tc, triggered, reduce);
        if (!triggered)
            continue;
        ++row.windows;
        to_sum += tc.schedule.trainingOverhead();
        packet_sum += tc.schedule.packets.size() - 1;
    }
    if (row.windows > 0) {
        row.to = static_cast<double>(to_sum) / row.windows;
        row.packets = static_cast<double>(packet_sum) / row.windows;
        row.sims = static_cast<double>(sim_sum) / row.windows;
    }
    return row;
}

} // namespace

int
main()
{
    unsigned windows = static_cast<unsigned>(
        bench::envKnob("DEJAVUZZ_ABL_WINDOWS", 12));
    auto cfg = uarch::smallBoomConfig();

    bench::banner("Ablation: training reduction (step 1.2) on BOOM");
    std::printf("(%u windows/type; TO = final training instructions,"
                " pkts = surviving training packets,\n sims ="
                " simulations spent per window incl. reduction"
                " re-runs)\n\n", windows);
    std::printf("%-20s | %8s %6s %6s | %8s %6s %6s\n", "",
                "TO(off)", "pkts", "sims", "TO(on)", "pkts", "sims");

    TriggerKind kinds[4] = {
        TriggerKind::LoadPageFault, TriggerKind::MemDisambiguation,
        TriggerKind::BranchMispredict, TriggerKind::ReturnMispredict};
    for (TriggerKind kind : kinds) {
        Row off = measure(cfg, kind, false, windows);
        Row on = measure(cfg, kind, true, windows);
        std::printf("%-20s | %8.1f %6.1f %6.1f | %8.1f %6.1f %6.1f\n",
                    core::triggerKindName(kind), off.to, off.packets,
                    off.sims, on.to, on.packets, on.sims);
    }

    std::printf("\nshape: reduction drops every packet for exception/"
                "disambiguation windows (TO -> 0)\nand keeps the"
                " single effective packet for misprediction windows,"
                "\nat the cost of one re-simulation per candidate"
                " packet.\n");
    return 0;
}
