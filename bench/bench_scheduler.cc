/**
 * @file
 * Work-stealing scheduler benchmark: epoch completion time of a
 * skewed-shard campaign (one worker given 4x the iteration quota)
 * under the barrier fleet (--no-steal) versus batch work-stealing.
 *
 * The barrier fleet's epoch time is bounded by the slowest shard
 * (three workers idle while the 4x shard grinds); stealing converts
 * that idle into executed batches, so the same iteration budget
 * finishes measurably faster. The CI perf-smoke job runs this with
 * --benchmark_format=json and fails when stealing is not faster
 * than the barrier baseline on the skewed workload.
 *
 * Both modes produce bit-identical bug ledgers and corpora (asserted
 * in tests/test_campaign.cc); this file measures only wall clock and
 * scheduler occupancy.
 */

#include <benchmark/benchmark.h>

#include "campaign/orchestrator.hh"
#include "uarch/config.hh"
#include "util/logging.hh"

using namespace dejavuzz;

namespace {

campaign::CampaignOptions
skewedCampaign(bool steal)
{
    campaign::CampaignOptions options;
    options.workers = 4;
    options.master_seed = 7;
    options.policy = campaign::ShardPolicy::Replicas;
    options.base_config = uarch::smallBoomConfig();
    // One worker gets 4x the per-epoch quota: 200+50+50+50 = 350
    // iterations per epoch, 700 total => 2 epochs.
    options.epoch_iterations = 50;
    options.shard_weights = {4.0, 1.0, 1.0, 1.0};
    options.total_iterations = 700;
    options.batch_iterations = 10;
    options.steal_batches = steal;
    return options;
}

void
runSkewed(benchmark::State &state, bool steal)
{
    uint64_t stolen = 0;
    uint64_t idle_ns = 0;
    uint64_t iterations = 0;
    for (auto _ : state) {
        campaign::CampaignOrchestrator orchestrator(
            skewedCampaign(steal));
        campaign::CampaignStats stats = orchestrator.run();
        stolen += stats.batches_stolen;
        idle_ns += stats.steal_idle_ns;
        iterations += stats.iterations;
        benchmark::DoNotOptimize(stats.coverage_points);
    }
    state.counters["batches_stolen"] = benchmark::Counter(
        static_cast<double>(stolen), benchmark::Counter::kAvgIterations);
    state.counters["steal_idle_s"] = benchmark::Counter(
        static_cast<double>(idle_ns) / 1e9,
        benchmark::Counter::kAvgIterations);
    state.counters["fuzz_iters_per_s"] = benchmark::Counter(
        static_cast<double>(iterations),
        benchmark::Counter::kIsRate);
}

void
BM_SkewedEpochBarrier(benchmark::State &state)
{
    runSkewed(state, /*steal=*/false);
}

void
BM_SkewedEpochStealing(benchmark::State &state)
{
    runSkewed(state, /*steal=*/true);
}

// Real time is the comparison axis: the barrier mode's waste is
// three parked threads, which CPU time does not see.
BENCHMARK(BM_SkewedEpochBarrier)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(3);
BENCHMARK(BM_SkewedEpochStealing)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(3);

} // namespace

// Hand-rolled BENCHMARK_MAIN(): quiet the inform() digest before the
// runner does anything (--benchmark_list_tests must print only the
// benchmark names).
int
main(int argc, char **argv)
{
    dejavuzz::setQuiet(true);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
