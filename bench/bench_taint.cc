/**
 * @file
 * Taint-accounting and Phase-3 lane-fusion throughput.
 *
 * BM_TaintStatsIncremental / BM_TaintStatsRescan isolate the cost of
 * assembling the per-module taint statistics every cycle: the
 * incremental accounts (ift/taintacct.hh) are an O(kModCount) read of
 * running sums, the rescan walks all of the shadow state. The
 * incremental path must win (CI gate in perf-smoke).
 *
 * BM_Phase3Standalone / BM_Phase3Fused measure a full Phase-2 +
 * Phase-3 analysis of triggered windows: the standalone variant
 * re-simulates the sanitized schedule from reset (2+2 passes), the
 * fused variant resumes Phase 3 from the lockstep run's
 * transient-boundary snapshot (2+1 passes, prefix skipped).
 */

#include <benchmark/benchmark.h>

#include <array>
#include <vector>

#include "bench/poc_suite.hh"
#include "core/phases.hh"
#include "core/stimgen.hh"
#include "harness/dualsim.hh"
#include "ift/policy.hh"
#include "swapmem/memory.hh"
#include "swapmem/packet.hh"
#include "uarch/config.hh"
#include "uarch/core.hh"
#include "util/logging.hh"
#include "util/rng.hh"

using namespace dejavuzz;

namespace {

/** Per-cycle stats assembly over one PoC run; @p rescan picks the
 *  oracle path. Returns cycles simulated (rate counter). */
template <typename StatsFn>
uint64_t
runWithStats(const uarch::CoreConfig &cfg, const bench::Poc &poc,
             StatsFn &&stats_fn)
{
    uarch::Core core(cfg);
    swapmem::Memory mem;
    mem.installSecret(poc.data.secret.data(), poc.data.secret.size());
    for (size_t i = 0; i < poc.data.operands.size(); ++i)
        mem.setOperand(static_cast<unsigned>(i), poc.data.operands[i]);
    swapmem::SwapRuntime runtime(poc.schedule);
    uint64_t entry = runtime.start(mem);
    if (runtime.done())
        return 0;
    core.startSequence(entry);

    std::array<uarch::ModuleStat, uarch::kModCount> stats;
    uint64_t packet_cycles = 0;
    while (core.cycle() < 4000) {
        ift::TaintCtx ctx;
        ctx.begin(ift::IftMode::CellIFT, nullptr, nullptr);
        uarch::TickEvents ev = core.tick(mem, ctx, nullptr);
        ++packet_cycles;
        stats_fn(core, stats);
        benchmark::DoNotOptimize(stats);
        if (ev.swap_next || ev.trapped || packet_cycles >= 1500) {
            uint64_t next_entry = runtime.advance(mem);
            if (runtime.done())
                break;
            core.flushICache();
            core.startSequence(next_entry);
            packet_cycles = 0;
        }
    }
    return core.cycle();
}

template <typename StatsFn>
void
runTaintStats(benchmark::State &state, StatsFn &&stats_fn)
{
    auto cfg = uarch::smallBoomConfig();
    auto suite = bench::pocSuite();
    uint64_t cycles = 0;
    for (auto _ : state) {
        for (const auto &poc : suite)
            cycles += runWithStats(cfg, poc, stats_fn);
    }
    state.counters["stat_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void
BM_TaintStatsIncremental(benchmark::State &state)
{
    runTaintStats(state, [](const uarch::Core &core, auto &stats) {
        core.moduleTaintStats(stats);
    });
}
BENCHMARK(BM_TaintStatsIncremental)->Unit(benchmark::kMillisecond);

void
BM_TaintStatsRescan(benchmark::State &state)
{
    runTaintStats(state, [](const uarch::Core &core, auto &stats) {
        core.moduleTaintStatsRescan(stats);
    });
}
BENCHMARK(BM_TaintStatsRescan)->Unit(benchmark::kMillisecond);

/** Phase-1-triggered, window-completed test cases (fixed seed). */
std::vector<core::TestCase>
triggeredCases(const uarch::CoreConfig &cfg, unsigned want)
{
    harness::DualSim sim(cfg);
    core::StimGen gen(cfg);
    core::Phase1 phase1(sim, harness::SimOptions{});
    Rng rng(0xbe9c);
    std::vector<core::TestCase> cases;
    for (unsigned i = 0; i < 64 && cases.size() < want; ++i) {
        core::Seed seed = gen.newSeed(rng, i);
        core::TestCase tc = gen.generatePhase1(seed);
        bool triggered = false;
        phase1.run(tc, triggered, true);
        if (!triggered)
            continue;
        gen.completeWindow(tc);
        if (tc.has_window_payload)
            cases.push_back(std::move(tc));
    }
    return cases;
}

void
runPhase3(benchmark::State &state, bool fused)
{
    auto cfg = uarch::smallBoomConfig();
    auto cases = triggeredCases(cfg, 6);
    core::StimGen gen(cfg);
    harness::DualSim sim(cfg);

    harness::SimOptions phase2_options;
    phase2_options.mode = ift::IftMode::DiffIFT;
    phase2_options.taint_log = true;
    phase2_options.sinks = true;
    harness::SimOptions phase3_options;
    phase3_options.mode = ift::IftMode::DiffIFT;
    phase3_options.sinks = true;

    harness::DualResult explore;
    harness::DualResult analyze;
    uint64_t passes = 0;
    for (auto _ : state) {
        for (const auto &tc : cases) {
            swapmem::SwapSchedule sanitized =
                gen.sanitizedSchedule(tc);
            sim.armFusion(fused ? &sanitized : nullptr);
            sim.runDual(tc.schedule, tc.data, phase2_options,
                        explore);
            passes += explore.sim_passes;
            if (sim.fusionCaptured())
                sim.runFusedPhase3(phase3_options, analyze);
            else
                sim.runDual(sanitized, tc.data, phase3_options,
                            analyze);
            passes += analyze.sim_passes;
            benchmark::DoNotOptimize(analyze.dut0.state_hash);
        }
    }
    state.counters["sim_passes_per_s"] = benchmark::Counter(
        static_cast<double>(passes), benchmark::Counter::kIsRate);
}

void
BM_Phase3Standalone(benchmark::State &state)
{
    runPhase3(state, /*fused=*/false);
}
BENCHMARK(BM_Phase3Standalone)->Unit(benchmark::kMillisecond);

void
BM_Phase3Fused(benchmark::State &state)
{
    runPhase3(state, /*fused=*/true);
}
BENCHMARK(BM_Phase3Fused)->Unit(benchmark::kMillisecond);

} // namespace

// Hand-rolled BENCHMARK_MAIN(): quiet the inform() digest before the
// runner does anything (--benchmark_list_tests must print only the
// benchmark names).
int
main(int argc, char **argv)
{
    dejavuzz::setQuiet(true);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
