/**
 * @file
 * Shared helpers for the experiment harnesses: env-var scaling knobs
 * and wall-clock timing.
 */

#ifndef DEJAVUZZ_BENCH_BENCH_UTIL_HH
#define DEJAVUZZ_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace dejavuzz::bench {

/** Integer knob from the environment with a default. */
inline uint64_t
envKnob(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    return std::strtoull(value, nullptr, 0);
}

class Stopwatch
{
  public:
    Stopwatch() : start_(clock::now()) {}
    double
    seconds() const
    {
        return std::chrono::duration<double>(clock::now() - start_)
            .count();
    }
    void reset() { start_ = clock::now(); }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

inline void
banner(const char *title)
{
    std::printf("\n=== %s ===\n", title);
}

} // namespace dejavuzz::bench

#endif // DEJAVUZZ_BENCH_BENCH_UTIL_HH
