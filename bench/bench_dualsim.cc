/**
 * @file
 * Differential-harness throughput: lockstep co-simulation vs the
 * legacy 4-pass diffIFT pipeline, on the multi-packet PoC suite.
 *
 * The lockstep strategy must beat the 4-pass baseline (CI gate); the
 * repo targets >=1.6x on the plain Phase-3-style configuration
 * (sinks only). The TaintLog variants measure the Phase-2
 * configuration where per-cycle taint sampling adds a fixed cost to
 * both strategies.
 */

#include <benchmark/benchmark.h>

#include "bench/poc_suite.hh"
#include "harness/dualsim.hh"
#include "uarch/config.hh"
#include "util/logging.hh"

using namespace dejavuzz;

namespace {

harness::SimOptions
diffOptions(bool lockstep, bool taint_log)
{
    harness::SimOptions options;
    options.mode = ift::IftMode::DiffIFT;
    options.sinks = true;
    options.taint_log = taint_log;
    options.lockstep_diff = lockstep;
    return options;
}

void
runDiffIft(benchmark::State &state, bool lockstep, bool taint_log)
{
    auto cfg = uarch::smallBoomConfig();
    harness::DualSim sim(cfg);
    auto options = diffOptions(lockstep, taint_log);
    auto suite = bench::pocSuite();
    harness::DualResult result;
    uint64_t cycles = 0;
    for (auto _ : state) {
        for (const auto &poc : suite) {
            sim.runDual(poc.schedule, poc.data, options, result);
            cycles += result.dut0.cycles + result.dut1.cycles;
            benchmark::DoNotOptimize(result.dut0.state_hash);
        }
    }
    state.counters["dut_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void
BM_DiffIFTLockstep(benchmark::State &state)
{
    runDiffIft(state, /*lockstep=*/true, /*taint_log=*/false);
}
BENCHMARK(BM_DiffIFTLockstep)->Unit(benchmark::kMillisecond);

void
BM_DiffIFTFourPass(benchmark::State &state)
{
    runDiffIft(state, /*lockstep=*/false, /*taint_log=*/false);
}
BENCHMARK(BM_DiffIFTFourPass)->Unit(benchmark::kMillisecond);

void
BM_DiffIFTLockstepTaintLog(benchmark::State &state)
{
    runDiffIft(state, /*lockstep=*/true, /*taint_log=*/true);
}
BENCHMARK(BM_DiffIFTLockstepTaintLog)->Unit(benchmark::kMillisecond);

void
BM_DiffIFTFourPassTaintLog(benchmark::State &state)
{
    runDiffIft(state, /*lockstep=*/false, /*taint_log=*/true);
}
BENCHMARK(BM_DiffIFTFourPassTaintLog)->Unit(benchmark::kMillisecond);

} // namespace

// Hand-rolled BENCHMARK_MAIN(): quiet the inform() digest before the
// runner does anything (--benchmark_list_tests must print only the
// benchmark names).
int
main(int argc, char **argv)
{
    dejavuzz::setQuiet(true);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
