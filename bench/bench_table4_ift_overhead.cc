/**
 * @file
 * Table 4: overhead of differential information flow tracking.
 *
 * Compile row: the RTL-IR instrumentation pass over a netlist sized
 * like each core. CellIFT must flatten every memory into per-bit
 * cells, which exceeds the cell budget on the XiangShan-sized design
 * (the paper's 8h timeout); diffIFT stays word-level.
 *
 * Simulation rows: wall-clock time of the five classic PoCs under
 * Base (no IFT), CellIFT and diffIFT on the differential testbench.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/poc_suite.hh"
#include "harness/dualsim.hh"
#include "rtl/netlist.hh"
#include "uarch/config.hh"

using namespace dejavuzz;

namespace {

/** Build an RTL-IR netlist mirroring a core's memory footprint. */
rtl::Netlist
coreLikeNetlist(const uarch::CoreConfig &cfg)
{
    rtl::Netlist netlist;
    auto mem = [&](const char *name, uint32_t entries, uint8_t width) {
        netlist.memory(name, entries, width);
    };
    mem("prf", cfg.prf_entries, 64);
    mem("rob", cfg.rob_entries, 64);
    mem("bht", cfg.bht_entries, 2);
    mem("btb", cfg.btb_entries, 64);
    mem("ras", cfg.ras_entries, 64);
    mem("icache_data", cfg.icache_lines * 8, 64);
    mem("dcache_data", cfg.dcache_lines * 8, 64);
    mem("lq", cfg.lq_entries, 64);
    mem("sq", cfg.sq_entries, 64);
    // Control logic: a few thousand word-level cells.
    rtl::NodeId a = netlist.input("a");
    rtl::NodeId b = netlist.input("b");
    unsigned cells = cfg.rob_entries * 40 + cfg.prf_entries * 10;
    rtl::NodeId acc = a;
    for (unsigned i = 0; i < cells; ++i) {
        acc = (i % 3 == 0)   ? netlist.andGate(acc, b)
              : (i % 3 == 1) ? netlist.add(acc, b)
                             : netlist.mux(netlist.eq(acc, b), acc, b);
    }
    return netlist;
}

double
runSuite(const uarch::CoreConfig &cfg, ift::IftMode mode,
         const char *poc_name, unsigned repeats)
{
    harness::DualSim sim(cfg);
    harness::SimOptions options;
    options.mode = mode;
    options.taint_log = mode != ift::IftMode::Off;

    auto suite = bench::pocSuite();
    const bench::Poc *poc = nullptr;
    for (const auto &candidate : suite) {
        if (candidate.name == poc_name)
            poc = &candidate;
    }
    bench::Stopwatch timer;
    for (unsigned r = 0; r < repeats; ++r) {
        if (mode == ift::IftMode::Off) {
            (void)sim.runSingle(poc->schedule, poc->data, options);
        } else {
            (void)sim.runDual(poc->schedule, poc->data, options);
        }
    }
    return timer.seconds() / repeats * 1e3; // ms per run
}

} // namespace

int
main()
{
    unsigned repeats = static_cast<unsigned>(
        bench::envKnob("DEJAVUZZ_T4_REPEATS", 40));

    bench::banner("Table 4: overhead of diffIFT (vs Base and CellIFT)");

    // --- compile (instrumentation) row ---------------------------------
    struct CoreCase
    {
        const char *name;
        uarch::CoreConfig cfg;
        uint64_t budget; ///< instrumentation cell budget ("8h" analog)
    };
    CoreCase cases[2] = {
        {"BOOM", uarch::smallBoomConfig(), 4'000'000},
        {"XiangShan", uarch::xiangshanMinimalConfig(), 400'000},
    };

    std::printf("%-22s %-10s %-12s %-12s\n", "Instrumentation", "base",
                "CellIFT", "diffIFT");
    for (const auto &core_case : cases) {
        rtl::Netlist netlist = coreLikeNetlist(core_case.cfg);
        bench::Stopwatch timer;
        auto cell_report = rtl::instrument(netlist, ift::IftMode::CellIFT,
                                           core_case.budget);
        double cell_ms = timer.seconds() * 1e3;
        timer.reset();
        auto diff_report = rtl::instrument(netlist, ift::IftMode::DiffIFT,
                                           core_case.budget);
        double diff_ms = timer.seconds() * 1e3;
        char cell_buf[48];
        if (cell_report.timed_out) {
            std::snprintf(cell_buf, sizeof(cell_buf),
                          "TIMEOUT(>%lluc)",
                          static_cast<unsigned long long>(
                              core_case.budget));
        } else {
            std::snprintf(cell_buf, sizeof(cell_buf), "%lluc/%.2fms",
                          static_cast<unsigned long long>(
                              cell_report.shadow_cells),
                          cell_ms);
        }
        char diff_buf[48];
        std::snprintf(diff_buf, sizeof(diff_buf), "%lluc/%.2fms",
                      static_cast<unsigned long long>(
                          diff_report.shadow_cells),
                      diff_ms);
        std::printf("%-22s %-10s %-12s %-12s\n", core_case.name, "-",
                    cell_buf, diff_buf);
    }

    // --- simulation rows -------------------------------------------------
    const char *pocs[5] = {"Spectre-V1", "Spectre-V2", "Meltdown",
                           "Spectre-V4", "Spectre-RSB"};
    for (const auto &core_case : cases) {
        std::printf("\n%s simulation (ms/run, %u repeats):\n",
                    core_case.name, repeats);
        std::printf("  %-12s %-10s %-10s %-10s\n", "testcase", "base",
                    "CellIFT", "diffIFT");
        for (const char *poc : pocs) {
            double base_ms =
                runSuite(core_case.cfg, ift::IftMode::Off, poc, repeats);
            double cell_ms = runSuite(core_case.cfg,
                                      ift::IftMode::CellIFT, poc,
                                      repeats);
            double diff_ms = runSuite(core_case.cfg,
                                      ift::IftMode::DiffIFT, poc,
                                      repeats);
            std::printf("  %-12s %-10.3f %-10.3f %-10.3f\n", poc,
                        base_ms, cell_ms, diff_ms);
        }
    }

    std::printf("\npaper shape: diffIFT compile ~2x base (vs CellIFT"
                " 23x / timeout on XiangShan); diffIFT simulation a"
                " small multiple of base, far below CellIFT's ~75x.\n");
    return 0;
}
