/**
 * @file
 * Figure 7: taint-coverage growth over fuzzing iterations on BOOM,
 * for DejaVuzz, the DejaVuzz- no-feedback ablation, and SpecDoctor
 * (whose differential test cases are replayed under diffIFT so its
 * exploration is scored with the same coverage metric).
 *
 * Paper shape: DejaVuzz ends ~4.7x above SpecDoctor and ~1.2x above
 * DejaVuzz-, and reaches SpecDoctor's saturation point within a few
 * hundred iterations.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baseline/specdoctor.hh"
#include "bench/bench_util.hh"
#include "core/fuzzer.hh"
#include "uarch/config.hh"
#include "util/stats.hh"

using namespace dejavuzz;

namespace {

std::vector<uint64_t>
padCurve(std::vector<uint64_t> curve, uint64_t iters)
{
    uint64_t last = curve.empty() ? 0 : curve.back();
    curve.resize(iters, last);
    return curve;
}

/** Mean/CI across trials at sampled iteration points. */
void
printCurves(const char *name,
            const std::vector<std::vector<uint64_t>> &trials,
            uint64_t iters)
{
    std::printf("%s (final per trial:", name);
    for (const auto &trial : trials)
        std::printf(" %lu", static_cast<unsigned long>(trial.back()));
    std::printf(")\n");
    std::printf("  iter,mean,ci95\n");
    for (uint64_t at = 0; at <= iters; at += iters / 10) {
        uint64_t index = at == 0 ? 0 : at - 1;
        RunningStat stat;
        for (const auto &trial : trials)
            stat.add(static_cast<double>(trial[index]));
        std::printf("  %lu,%.1f,%.1f\n",
                    static_cast<unsigned long>(at), stat.mean(),
                    stat.ci95());
    }
}

double
finalMean(const std::vector<std::vector<uint64_t>> &trials)
{
    RunningStat stat;
    for (const auto &trial : trials)
        stat.add(static_cast<double>(trial.back()));
    return stat.mean();
}

} // namespace

int
main()
{
    uint64_t iters = bench::envKnob("DEJAVUZZ_FIG7_ITERS", 2000);
    uint64_t trials = bench::envKnob("DEJAVUZZ_FIG7_TRIALS", 3);
    auto cfg = uarch::smallBoomConfig();

    bench::banner("Figure 7: taint coverage over iterations (BOOM)");
    std::printf("(%lu iterations x %lu trials; paper: 20000 x 5)\n",
                static_cast<unsigned long>(iters),
                static_cast<unsigned long>(trials));

    std::vector<std::vector<uint64_t>> dejavuzz_trials;
    std::vector<std::vector<uint64_t>> minus_trials;
    std::vector<std::vector<uint64_t>> sd_trials;

    for (uint64_t trial = 0; trial < trials; ++trial) {
        // DejaVuzz.
        core::FuzzerOptions options;
        options.master_seed = 1000 + trial;
        core::Fuzzer dejavuzz(cfg, options);
        dejavuzz.run(iters);
        dejavuzz_trials.push_back(
            padCurve(dejavuzz.stats().coverage_curve, iters));

        // DejaVuzz-: no coverage feedback (blind window mutation).
        core::FuzzerOptions minus_options = options;
        minus_options.coverage_feedback = false;
        core::Fuzzer minus(cfg, minus_options);
        minus.run(iters);
        minus_trials.push_back(
            padCurve(minus.stats().coverage_curve, iters));

        // SpecDoctor: replay its phase-3 stimuli under diffIFT and
        // score the same taint-coverage matrix.
        ift::TaintCoverage sd_coverage;
        auto ids = uarch::Core::registerModules(sd_coverage, cfg);
        harness::DualSim replay_sim(cfg);
        std::vector<uint64_t> sd_curve;
        baseline::SpecDoctor::Options sd_options;
        sd_options.master_seed = 2000 + trial;
        baseline::SpecDoctor specdoctor(cfg, sd_options);
        specdoctor.replay_hook = [&](const swapmem::SwapSchedule &sched,
                                     const harness::StimulusData &data) {
            harness::SimOptions sim_options;
            sim_options.mode = ift::IftMode::DiffIFT;
            sim_options.taint_log = true;
            auto result = replay_sim.runDual(sched, data, sim_options);
            const auto &log = result.dut0.taint_log;
            for (const auto &cycle : log.cycles) {
                for (const auto *sample = log.samplesBegin(cycle);
                     sample != log.samplesEnd(cycle); ++sample) {
                    sd_coverage.sample(ids[sample->module_id],
                                       sample->tainted_regs);
                }
            }
        };
        for (uint64_t i = 0; i < iters; ++i) {
            specdoctor.run(1);
            sd_curve.push_back(sd_coverage.points());
        }
        sd_trials.push_back(std::move(sd_curve));
    }

    printCurves("DejaVuzz", dejavuzz_trials, iters);
    printCurves("DejaVuzz-", minus_trials, iters);
    printCurves("SpecDoctor", sd_trials, iters);

    double dv = finalMean(dejavuzz_trials);
    double dv_minus = finalMean(minus_trials);
    double sd = finalMean(sd_trials);
    std::printf("\nfinal coverage: DejaVuzz=%.0f DejaVuzz-=%.0f"
                " SpecDoctor=%.0f\n", dv, dv_minus, sd);
    if (sd > 0) {
        std::printf("DejaVuzz / SpecDoctor = %.2fx (paper: 4.7x)\n",
                    dv / sd);
    }
    if (dv_minus > 0) {
        std::printf("DejaVuzz / DejaVuzz-  = %.2fx (paper: 1.22x)\n",
                    dv / dv_minus);
    }

    // Iterations for DejaVuzz to reach SpecDoctor's saturation.
    if (!dejavuzz_trials.empty() && sd > 0) {
        const auto &curve = dejavuzz_trials[0];
        for (uint64_t i = 0; i < curve.size(); ++i) {
            if (static_cast<double>(curve[i]) >= sd) {
                std::printf("DejaVuzz reaches SpecDoctor saturation at"
                            " iteration %lu (paper: 118)\n",
                            static_cast<unsigned long>(i + 1));
                break;
            }
        }
    }
    return 0;
}
