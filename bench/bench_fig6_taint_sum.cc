/**
 * @file
 * Figure 6: taint sum over cycles while executing each classic PoC on
 * BOOM, under diffIFT, diffIFT-FN (identical control signals: the
 * worst-case false-negative study) and CellIFT.
 *
 * Paper shape: CellIFT explodes (every register tainted after the
 * transient window); diffIFT stays low; diffIFT-FN tracks diffIFT's
 * data taints but stops growing once encoding needs control taints.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/poc_suite.hh"
#include "harness/dualsim.hh"
#include "uarch/config.hh"

using namespace dejavuzz;

namespace {

struct Series
{
    std::vector<uint64_t> sums; ///< indexed by cycle
    uint64_t window_open = 0;
};

Series
measure(const uarch::CoreConfig &cfg, const bench::Poc &poc,
        ift::IftMode mode)
{
    harness::DualSim sim(cfg);
    harness::SimOptions options;
    options.mode = mode;
    options.taint_log = true;
    auto result = sim.runDual(poc.schedule, poc.data, options);
    Series series;
    for (const auto &cycle : result.dut0.taint_log.cycles) {
        if (series.sums.size() <= cycle.cycle)
            series.sums.resize(cycle.cycle + 1, 0);
        series.sums[cycle.cycle] = cycle.taintSum();
    }
    const auto *window = result.dut0.trace.principalWindow();
    if (window != nullptr)
        series.window_open = window->open_cycle;
    return series;
}

} // namespace

int
main()
{
    bench::banner("Figure 6: taint sum vs cycle (BOOM)");
    auto cfg = uarch::smallBoomConfig();

    for (const auto &poc : bench::pocSuite()) {
        Series diff = measure(cfg, poc, ift::IftMode::DiffIFT);
        Series fn = measure(cfg, poc, ift::IftMode::DiffIFTFN);
        Series cell = measure(cfg, poc, ift::IftMode::CellIFT);

        auto peak = [](const Series &series) {
            uint64_t best = 0;
            for (uint64_t sum : series.sums)
                best = std::max(best, sum);
            return best;
        };
        auto final_sum = [](const Series &series) {
            return series.sums.empty() ? 0 : series.sums.back();
        };

        std::printf("\n%s (window opens at cycle %lu):\n",
                    poc.name.c_str(),
                    static_cast<unsigned long>(diff.window_open));
        std::printf("  %-12s %12s %12s\n", "mode", "peak-taint",
                    "final-taint");
        std::printf("  %-12s %12lu %12lu\n", "diffIFT",
                    static_cast<unsigned long>(peak(diff)),
                    static_cast<unsigned long>(final_sum(diff)));
        std::printf("  %-12s %12lu %12lu\n", "diffIFT-FN",
                    static_cast<unsigned long>(peak(fn)),
                    static_cast<unsigned long>(final_sum(fn)));
        std::printf("  %-12s %12lu %12lu\n", "CellIFT",
                    static_cast<unsigned long>(peak(cell)),
                    static_cast<unsigned long>(final_sum(cell)));

        // CSV series for plotting (every 8th cycle).
        std::printf("  cycle,diffIFT,diffIFT_FN,CellIFT\n");
        size_t cycles = std::max({diff.sums.size(), fn.sums.size(),
                                  cell.sums.size()});
        for (size_t c = 0; c < cycles; c += 8) {
            auto at = [c](const Series &series) {
                return c < series.sums.size() ? series.sums[c] : 0;
            };
            std::printf("  %zu,%lu,%lu,%lu\n", c,
                        static_cast<unsigned long>(at(diff)),
                        static_cast<unsigned long>(at(fn)),
                        static_cast<unsigned long>(at(cell)));
        }
    }

    std::printf("\npaper shape: CellIFT explodes to the full design"
                " size after the window; diffIFT stays low; the FN"
                " variant plateaus at the residual data taints.\n");
    return 0;
}
