/**
 * @file
 * Table 2 analogue: the cores used for evaluation. The paper reports
 * configuration, ISA, Verilog LoC and annotation LoC; our substrate
 * reports the structural inventory of the simulated cores plus the
 * liveness-annotation counts.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "uarch/config.hh"
#include "uarch/core.hh"

using namespace dejavuzz;

int
main()
{
    bench::banner("Table 2: cores used for evaluation");
    std::printf("%-24s %-14s %-14s\n", "Feature", "BOOM",
                "XiangShan");

    auto boom_cfg = uarch::smallBoomConfig();
    auto xs_cfg = uarch::xiangshanMinimalConfig();
    uarch::Core boom(boom_cfg);
    uarch::Core xiangshan(xs_cfg);
    auto boom_inv = boom.inventory();
    auto xs_inv = xiangshan.inventory();

    std::printf("%-24s %-14s %-14s\n", "Configuration",
                boom_cfg.name.c_str(), xs_cfg.name.c_str());
    std::printf("%-24s %-14s %-14s\n", "ISA", boom_cfg.isa.c_str(),
                xs_cfg.isa.c_str());
    std::printf("%-24s %-14u %-14u\n", "Modules", boom_inv.modules,
                xs_inv.modules);
    std::printf("%-24s %-14u %-14u\n", "State registers",
                boom_inv.state_regs, xs_inv.state_regs);
    std::printf("%-24s %-14lu %-14lu\n", "State bits",
                static_cast<unsigned long>(boom_inv.state_bits),
                static_cast<unsigned long>(xs_inv.state_bits));
    std::printf("%-24s %-14u %-14u\n", "Annotated sink arrays",
                boom_inv.annotated_sinks, xs_inv.annotated_sinks);
    std::printf("%-24s %-14u %-14u\n", "Annotation LoC (paper)",
                boom_cfg.annotation_loc, xs_cfg.annotation_loc);
    std::printf("\npaper: BOOM 171K Verilog LoC / 212 annotation LoC;"
                " XiangShan 893K / 592.\n");
    return 0;
}
