/**
 * @file
 * Table 3: training overhead (TO) and effective training overhead
 * (ETO, excluding alignment nops) per transient-window type, for
 * DejaVuzz, the DejaVuzz* random-training ablation, and SpecDoctor,
 * on both cores.
 *
 * Paper shape to reproduce: DejaVuzz triggers all types its core
 * supports (BOOM cannot open illegal-instruction windows) with zero
 * overhead for exception windows and a few effective instructions for
 * misprediction windows; DejaVuzz* needs more training and misses
 * some types; SpecDoctor covers only 4 types at ~110+ instructions.
 */

#include <cstdio>

#include "baseline/specdoctor.hh"
#include "bench/bench_util.hh"
#include "core/fuzzer.hh"
#include "uarch/config.hh"

using namespace dejavuzz;
using core::TriggerKind;

namespace {

struct Cell
{
    bool triggered = false;
    double to = 0.0;
    double eto = 0.0;
    bool has_eto = true;
};

Cell
measureDejavuzz(const uarch::CoreConfig &cfg, TriggerKind kind,
                unsigned windows, bool derived)
{
    core::FuzzerOptions options;
    options.master_seed = 0x7ab1e3;
    options.derived_training = derived;
    options.phase1_retries = derived ? 3 : 12;
    core::Fuzzer fuzzer(cfg, options);

    // The paper excludes misprediction windows that need no training
    // (e.g. fall-through windows against the default prediction).
    bool exclude_zero =
        kind == TriggerKind::BranchMispredict ||
        kind == TriggerKind::IndirectMispredict ||
        kind == TriggerKind::ReturnMispredict;

    Cell cell;
    uint64_t to_sum = 0;
    uint64_t eto_sum = 0;
    unsigned hits = 0;
    Rng rng(0x7ab1e3 ^ static_cast<uint64_t>(kind) ^
            (derived ? 0 : 0x99));
    for (unsigned w = 0; w < windows * (exclude_zero ? 2 : 1); ++w) {
        size_t to = 0;
        size_t eto = 0;
        if (fuzzer.triggerOnce(kind, rng.next(), to, eto)) {
            if (exclude_zero && to == 0)
                continue;
            ++hits;
            to_sum += to;
            eto_sum += eto;
            if (hits >= windows)
                break;
        }
    }
    if (hits == 0)
        return cell;
    cell.triggered = true;
    cell.to = static_cast<double>(to_sum) / hits;
    cell.eto = static_cast<double>(eto_sum) / hits;
    cell.has_eto = derived;
    return cell;
}

void
printRow(const char *fuzzer, const Cell *cells, bool with_eto)
{
    std::printf("  %-10s", fuzzer);
    for (unsigned k = 0; k < core::kTriggerKinds; ++k) {
        const Cell &cell = cells[k];
        if (!cell.triggered) {
            std::printf(" %13s", "/");
        } else if (with_eto && cell.has_eto) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.1f (%.1f)", cell.to,
                          cell.eto);
            std::printf(" %13s", buf);
        } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.1f", cell.to);
            std::printf(" %13s", buf);
        }
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    unsigned windows = static_cast<unsigned>(
        bench::envKnob("DEJAVUZZ_T3_WINDOWS", 15));
    uint64_t sd_iters = bench::envKnob("DEJAVUZZ_T3_SD_ITERS", 400);

    bench::banner("Table 3: training overhead per window type");
    std::printf("(TO avg instrs; ETO in parentheses; '/' ="
                " window type not triggered; %u windows/type)\n",
                windows);
    std::printf("  %-10s", "fuzzer");
    for (unsigned k = 0; k < core::kTriggerKinds; ++k)
        std::printf(" %13s", core::triggerKindName(
                                 static_cast<TriggerKind>(k)));
    std::printf("\n");

    struct CoreCase
    {
        const char *name;
        uarch::CoreConfig cfg;
        bool run_specdoctor;
    };
    CoreCase cases[2] = {
        {"BOOM", uarch::smallBoomConfig(), true},
        {"XiangShan", uarch::xiangshanMinimalConfig(), false},
    };

    for (const auto &core_case : cases) {
        std::printf("%s:\n", core_case.name);
        Cell dejavuzz[core::kTriggerKinds];
        Cell star[core::kTriggerKinds];
        for (unsigned k = 0; k < core::kTriggerKinds; ++k) {
            auto kind = static_cast<TriggerKind>(k);
            dejavuzz[k] =
                measureDejavuzz(core_case.cfg, kind, windows, true);
            star[k] = measureDejavuzz(core_case.cfg, kind,
                                      windows, false);
        }
        printRow("DejaVuzz", dejavuzz, true);
        printRow("DejaVuzz*", star, false);

        if (core_case.run_specdoctor) {
            // SpecDoctor is only compared on BOOM (as in the paper).
            baseline::SpecDoctor::Options sd_options;
            sd_options.master_seed = 0x5d;
            baseline::SpecDoctor specdoctor(core_case.cfg, sd_options);
            specdoctor.run(sd_iters);
            const auto &stats = specdoctor.stats();
            Cell sd[core::kTriggerKinds];
            for (unsigned k = 0; k < core::kTriggerKinds; ++k) {
                if (stats.window_count[k] == 0)
                    continue;
                sd[k].triggered = true;
                sd[k].to = static_cast<double>(stats.window_to[k]) /
                           stats.window_count[k];
                sd[k].has_eto = false;
            }
            printRow("SpecDoctor", sd, false);
        }
    }

    std::printf("\npaper: DejaVuzz ETO 0 for exceptions, 2.7-4 for"
                " mispredictions (TO ~85-90 incl. alignment nops);\n"
                "       DejaVuzz* higher/missing; SpecDoctor only"
                " page-fault/disamb/branch/indjump at ~113-127.\n");
    return 0;
}
