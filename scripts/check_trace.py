#!/usr/bin/env python3
"""Validate a DejaVuzz --trace-out file.

Checks that the file is well-formed Chrome trace-event JSON, that
every complete ("X") event nests properly within its track (Perfetto
renders overlapping non-nested spans as garbage), and optionally that
a set of span names is present:

    check_trace.py trace.json --require batch phase1 phase2 phase3

Exits non-zero with a diagnostic on the first violation.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def check_nesting(track, events):
    """Spans on one track must form a proper nesting forest: sorted
    by begin time, each span either starts after the enclosing span
    ends or ends before it does."""
    spans = sorted(
        ((e["ts"], e["ts"] + e["dur"], e["name"]) for e in events),
        key=lambda s: (s[0], -s[1]),
    )
    stack = []
    for begin, end, name in spans:
        while stack and begin >= stack[-1][1]:
            stack.pop()
        if stack and end > stack[-1][1]:
            fail(
                f"track {track}: span '{name}' [{begin}, {end}] "
                f"overlaps '{stack[-1][2]}' "
                f"[{stack[-1][0]}, {stack[-1][1]}] without nesting"
            )
        stack.append((begin, end, name))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require",
        nargs="*",
        default=[],
        metavar="NAME",
        help="span names that must appear at least once",
    )
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.trace}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("missing top-level traceEvents array")
    events = doc["traceEvents"]

    tracks = {}
    names = set()
    for e in events:
        for key in ("ph", "pid", "tid"):
            if key not in e:
                fail(f"event missing '{key}': {e}")
        if e["ph"] == "M":
            continue
        if e["ph"] != "X":
            fail(f"unexpected event phase '{e['ph']}': {e}")
        for key in ("name", "ts", "dur"):
            if key not in e:
                fail(f"X event missing '{key}': {e}")
        if e["dur"] < 0:
            fail(f"negative duration: {e}")
        names.add(e["name"])
        tracks.setdefault(e["tid"], []).append(e)

    for track, track_events in sorted(tracks.items()):
        check_nesting(track, track_events)

    missing = [n for n in args.require if n not in names]
    if missing:
        fail(
            f"required span(s) absent: {', '.join(missing)} "
            f"(present: {', '.join(sorted(names)) or 'none'})"
        )

    n_spans = sum(len(v) for v in tracks.values())
    print(
        f"check_trace: OK — {n_spans} spans on {len(tracks)} "
        f"track(s), names: {', '.join(sorted(names)) or 'none'}"
    )


if __name__ == "__main__":
    main()
