#!/usr/bin/env bash
# Check the top-level Markdown files (README, ISSUE, CHANGES,
# ROADMAP) and docs/*.md for dead relative links.
#
# Extracts every Markdown link target, skips absolute URLs and
# pure-anchor links, strips #fragments, and verifies the target
# exists relative to the file that references it. Exits non-zero
# listing every dead link.

set -u
cd "$(dirname "$0")/.."

fail=0
for file in README.md ISSUE.md CHANGES.md ROADMAP.md docs/*.md; do
    [ -f "$file" ] || continue
    dir=$(dirname "$file")
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "dead link in $file: $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//; s/[[:space:]]+"[^"]*"$//')
done

if [ "$fail" -eq 0 ]; then
    echo "all relative links resolve"
fi
exit "$fail"
