#!/usr/bin/env bash
# Check every Markdown file in the repository (top-level pages, the
# docs/ tree, and anything added later) for dead relative links.
#
# Extracts every Markdown link target, skips absolute URLs and
# pure-anchor links, strips #fragments, and verifies the target
# exists relative to the file that references it. Exits non-zero
# listing every dead link.

set -u
cd "$(dirname "$0")/.."

fail=0
while IFS= read -r file; do
    [ -f "$file" ] || continue
    dir=$(dirname "$file")
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "dead link in $file: $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//; s/[[:space:]]+"[^"]*"$//')
done < <(find . -name '*.md' \
    -not -path './.git/*' -not -path './build*/*' | sort)

if [ "$fail" -eq 0 ]; then
    echo "all relative links resolve"
fi
exit "$fail"
