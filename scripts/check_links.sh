#!/usr/bin/env bash
# Check every Markdown file in the repository (top-level pages, the
# docs/ tree, and anything added later) for dead relative links and
# dead intra-document anchors.
#
# Extracts every Markdown link target and skips absolute URLs. For
# the path part, verifies the target exists relative to the file
# that references it. For the #fragment part (including pure-anchor
# links like [x](#section)), computes the GitHub-style anchor of
# every heading in the target Markdown file — lowercased,
# punctuation stripped, spaces to hyphens, -1/-2/... suffixes for
# duplicates — and verifies the fragment matches one. Exits non-zero
# listing every dead link/anchor.

set -u
cd "$(dirname "$0")/.."

# GitHub-style anchors of a Markdown file, one per line.
anchors_of() {
    grep -E '^#{1,6}[[:space:]]' "$1" |
        sed -E 's/^#+[[:space:]]+//; s/[[:space:]]+$//' |
        tr '[:upper:]' '[:lower:]' |
        sed -E 's/[`*]//g; s/[^a-z0-9 _-]//g; s/[[:space:]]/-/g' |
        awk '{ n = seen[$0]++; if (n) print $0 "-" n; else print $0 }'
}

fail=0
while IFS= read -r file; do
    [ -f "$file" ] || continue
    dir=$(dirname "$file")
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*) continue ;;
        esac
        path="${target%%#*}"
        frag=""
        case "$target" in
            *'#'*) frag="${target#*#}" ;;
        esac
        if [ -n "$path" ] && [ ! -e "$dir/$path" ]; then
            echo "dead link in $file: $target"
            fail=1
            continue
        fi
        [ -n "$frag" ] || continue
        # Anchor validation; a pure-anchor link targets its own file.
        anchor_file="$file"
        [ -n "$path" ] && anchor_file="$dir/$path"
        case "$anchor_file" in
            *.md) ;;
            *) continue ;;
        esac
        if ! anchors_of "$anchor_file" | grep -qxF "$frag"; then
            echo "dead anchor in $file: $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//; s/[[:space:]]+"[^"]*"$//')
done < <(find . -name '*.md' \
    -not -path './.git/*' -not -path './build*/*' | sort)

if [ "$fail" -eq 0 ]; then
    echo "all relative links and anchors resolve"
fi
exit "$fail"
