#!/usr/bin/env bash
# SIGKILL crash-resume test for the campaign-directory checkpointing
# (docs/robustness.md). Repeatedly launches a campaign with periodic
# autosaves, SIGKILLs the dejavuzz process at a different offset each
# round — early (possibly before the first autosave), mid-run, and
# late (possibly mid-rotation) — and then re-runs the identical
# invocation, which must resume from the newest complete save
# generation and finish with exit code 0. Afterwards the ledger must
# replay (`dejavuzz-replay --require-bugs`) and the saved log must
# parse and validate (`dejavuzz-report`), proving the surviving
# generation is coherent, not merely present.
#
# Usage: scripts/crash_resume_test.sh [BUILD_DIR]
#   BUILD_DIR  directory holding the dejavuzz binaries (default: build)

set -u

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}
DEJAVUZZ=$BUILD_DIR/dejavuzz
REPLAY=$BUILD_DIR/dejavuzz-replay
REPORT=$BUILD_DIR/dejavuzz-report

for bin in "$DEJAVUZZ" "$REPLAY" "$REPORT"; do
    if [ ! -x "$bin" ]; then
        echo "crash_resume_test: missing binary $bin" >&2
        exit 2
    fi
done

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

DIR=$WORK/campaign
LOG=$WORK/run.log

# One full campaign invocation against $DIR with an iteration budget
# of $1. Apart from the growing budget (resuming with a larger
# --iters extends the saved run, so every round has fresh work to be
# killed in) the flags must be identical between the killed runs and
# the resumes — a campaign directory only accepts a matching
# configuration.
run_campaign() {
    "$DEJAVUZZ" --workers 2 --iters "$1" --master-seed 11 \
        --campaign-dir "$DIR" --autosave-sec 0.1 \
        --heartbeat-sec 0.1 --batch-retries 2 --quiet \
        >/dev/null 2>>"$LOG" &
    CAMPAIGN_PID=$!
}

fail=0
iters=0

# Kill offsets in seconds: before/around the first autosave, mid-run,
# and late in the run (likely mid-rotation given the 0.1 s cadence).
for offset in 0.05 0.3 0.8; do
    iters=$((iters + 6000))
    run_campaign "$iters"
    sleep "$offset"
    if kill -9 "$CAMPAIGN_PID" 2>/dev/null; then
        wait "$CAMPAIGN_PID" 2>/dev/null
        echo "crash_resume_test: killed campaign after ${offset}s"
    else
        # The campaign finished before the kill fired; that round
        # degenerates to a clean resume, which is still worth doing.
        wait "$CAMPAIGN_PID" 2>/dev/null
        echo "crash_resume_test: campaign finished before ${offset}s kill"
    fi

    # The resume must load whatever the kill left behind and run to
    # completion. A torn latest generation must fall back to .prev.
    run_campaign "$iters"
    wait "$CAMPAIGN_PID"
    rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "crash_resume_test: resume after ${offset}s kill exited $rc" >&2
        tail -20 "$LOG" >&2
        fail=1
    fi
done

# The surviving directory must hold a coherent campaign: the ledger
# replays bug-for-bug and the checkpointed log (CRC trailer included)
# parses and validates cleanly.
if ! "$REPLAY" "$DIR" --require-bugs --quiet; then
    echo "crash_resume_test: ledger replay failed" >&2
    fail=1
fi
if ! "$REPORT" "$DIR/campaign.jsonl" >/dev/null; then
    echo "crash_resume_test: saved log failed report validation" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "crash_resume_test: FAILED" >&2
    exit 1
fi
echo "crash_resume_test: OK"
