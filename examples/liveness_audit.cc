/**
 * @file
 * Domain scenario: the taint-liveness annotation workflow. A stale
 * Line Fill Buffer entry keeps the secret's bits after its MSHR
 * retires - reachable taint, but dead. The annotated sink (the
 * paper's `(* liveness_mask = "mshr_valid_vec" *)` example) lets the
 * analysis filter it, while the live d-cache encode is kept.
 *
 *   ./examples/liveness_audit
 */

#include <cstdio>

#include "harness/dualsim.hh"
#include "ift/liveness.hh"
#include "isa/builder.hh"
#include "swapmem/layout.hh"
#include "uarch/config.hh"

using namespace dejavuzz;
using namespace dejavuzz::isa::reg;
using isa::Op;

int
main()
{
    // Architecturally load the secret (it is open here): the refill
    // parks the secret in the LFB; once the line is installed the
    // MSHR retires and the LFB data is dead but still tainted.
    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.la(s1, swapmem::kSecretAddr);
    prog.ld(s0, s1, 0);     // secret -> LFB -> d-cache
    prog.andi(t1, s0, 1);
    prog.slli(t1, t1, 6);
    prog.la(t2, swapmem::kLeakArrayAddr + 0x100);
    prog.add(t2, t2, t1);
    prog.ld(t3, t2, 0);     // secret-indexed line (live encode)
    prog.swapnext();

    swapmem::SwapSchedule schedule;
    swapmem::SwapPacket packet;
    packet.label = "audit";
    packet.kind = swapmem::PacketKind::Transient;
    packet.instrs = prog.finish();
    schedule.packets.push_back(packet);

    Rng rng(7);
    auto data = harness::StimulusData::random(rng);

    harness::DualSim sim(uarch::smallBoomConfig());
    harness::SimOptions options;
    options.mode = ift::IftMode::DiffIFT;
    options.sinks = true;
    auto result = sim.runDual(schedule, data, options);

    std::printf("%-10s %-10s %-9s %-6s %-6s %s\n", "module", "sink",
                "annotated", "taint", "live", "verdict");
    for (const auto &sink : result.dut0.sinks) {
        size_t tainted = sink.taintedEntries();
        if (tainted == 0)
            continue;
        size_t live = sink.liveTaintedEntries();
        const char *verdict =
            live > 0 ? "EXPLOITABLE" : "dead (filtered)";
        std::printf("%-10s %-10s %-9s %-6zu %-6zu %s\n",
                    sink.module().c_str(), sink.name().c_str(),
                    sink.annotated ? "yes" : "no", tainted, live,
                    verdict);
    }

    auto verdict = ift::analyzeSinks(result.dut0.sinks, true);
    std::printf("\nwith liveness: exploitable=%s (%zu live sinks,"
                " %zu dead filtered)\n",
                verdict.exploitable ? "yes" : "no",
                verdict.live_sinks.size(), verdict.dead_sinks.size());
    auto no_liveness = ift::analyzeSinks(result.dut0.sinks, false);
    std::printf("without liveness: %zu sinks flagged (the paper's"
                " false-positive mode)\n",
                no_liveness.live_sinks.size());
    return 0;
}
