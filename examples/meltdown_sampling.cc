/**
 * @file
 * Domain scenario: the B1 Meltdown-Sampling bug on XiangShan. The
 * fuzzer's MDS-style masked secret accesses produce architecturally
 * illegal addresses; on a core whose load-unit address wire silently
 * truncates the high bits, the access samples the warm secret.
 *
 *   ./examples/meltdown_sampling
 */

#include <cstdio>

#include "core/fuzzer.hh"
#include "uarch/config.hh"

using namespace dejavuzz;

namespace {

void
campaign(const uarch::CoreConfig &cfg, const char *label)
{
    core::FuzzerOptions options;
    options.master_seed = 0xb1b1;
    core::Fuzzer fuzzer(cfg, options);
    fuzzer.run(500);
    const auto &stats = fuzzer.stats();

    unsigned masked_meltdown = 0;
    unsigned plain_meltdown = 0;
    for (const auto &bug : stats.bugs) {
        if (bug.attack != core::AttackType::Meltdown)
            continue;
        if (bug.masked_address)
            ++masked_meltdown;
        else
            ++plain_meltdown;
    }
    std::printf("%-34s windows=%-4lu meltdown-leaks=%-4u"
                " masked-addr (B1) leaks=%u\n", label,
                static_cast<unsigned long>(stats.windows_triggered),
                plain_meltdown, masked_meltdown);
}

} // namespace

int
main()
{
    std::printf("Meltdown-Sampling (B1) hunt: 500 iterations/core\n\n");

    campaign(uarch::xiangshanMinimalConfig(),
             "XiangShan (B1 truncation present)");

    uarch::CoreConfig fixed = uarch::xiangshanMinimalConfig();
    fixed.bug_b1_addr_truncation = false;
    campaign(fixed, "XiangShan with the B1 fix");

    campaign(uarch::smallBoomConfig(),
             "BOOM (full-width load unit)");

    std::printf("\nexpected: only the B1 core leaks through masked"
                " (illegal) addresses.\n");
    return 0;
}
