/**
 * @file
 * Quickstart: build a BOOM-like core, run a hand-written Spectre-V1
 * stimulus on the differential testbench under diffIFT, and inspect
 * the transient window, the taint log and the leak verdict.
 *
 *   ./examples/quickstart
 */

#include <cstdio>

#include "harness/dualsim.hh"
#include "isa/builder.hh"
#include "swapmem/layout.hh"
#include "uarch/config.hh"

using namespace dejavuzz;
using namespace dejavuzz::isa::reg;
using isa::Op;

int
main()
{
    // 1. A window-training packet warms the secret while accessible.
    isa::ProgBuilder warm(swapmem::kSwapBase);
    warm.la(s1, swapmem::kSecretAddr);
    warm.ld(t5, s1, 0);
    warm.swapnext();

    // 2. The transient packet: a slow-to-resolve branch is predicted
    //    not-taken; the fall-through (transient) path loads the secret
    //    and encodes bit 0 into a probe cache line.
    isa::ProgBuilder prog(swapmem::kSwapBase);
    prog.la(s1, swapmem::kSecretAddr);
    prog.la(t2, swapmem::kLeakArrayAddr + 0x100);
    prog.la(t4, swapmem::kOperandAddr);
    prog.li(t5, 1);
    prog.ld(a0, t4, 0);                // cold load...
    prog.emit(Op::DIV, a0, a0, t5, 0); // ...into a divide chain
    prog.emit(Op::DIV, a0, a0, t5, 0);
    isa::Label exit_lbl = prog.newLabel();
    prog.branch(Op::BNE, a0, zero, exit_lbl); // taken; predicted NT
    prog.lb(s0, s1, 0);  // (transient) secret load
    prog.andi(t1, s0, 1);
    prog.slli(t1, t1, 6);
    prog.add(t1, t1, t2);
    prog.ld(s3, t1, 0);  // (transient) encode into the d-cache
    prog.bind(exit_lbl);
    prog.swapnext();

    // 3. A swap schedule: training first, transient packet last.
    swapmem::SwapSchedule schedule;
    swapmem::SwapPacket warm_packet;
    warm_packet.label = "window_train";
    warm_packet.kind = swapmem::PacketKind::WindowTrain;
    warm_packet.instrs = warm.finish();
    schedule.packets.push_back(warm_packet);
    swapmem::SwapPacket transient;
    transient.label = "transient";
    transient.kind = swapmem::PacketKind::Transient;
    transient.instrs = prog.finish();
    schedule.packets.push_back(transient);

    // 4. Differential run: two DUTs, bit-flipped secrets, diffIFT.
    Rng rng(2024);
    auto data = harness::StimulusData::random(rng);
    data.operands[0] = 1; // branch condition: architecturally taken

    harness::DualSim sim(uarch::smallBoomConfig());
    harness::SimOptions options;
    options.mode = ift::IftMode::DiffIFT;
    options.taint_log = true;
    options.sinks = true;
    auto result = sim.runDual(schedule, data, options);

    // 5. Observability: the RoB IO trace shows the transient window...
    std::printf("run completed: %s (%lu cycles)\n",
                result.dut0.completed ? "yes" : "no",
                static_cast<unsigned long>(result.dut0.cycles));
    const auto *window = result.dut0.trace.principalWindow();
    if (window != nullptr) {
        std::printf("transient window: %s at pc=0x%lx, %u transient"
                    " instructions flushed (cycles %u..%u)\n",
                    uarch::squashCauseName(window->cause), window->pc,
                    window->transient_executed, window->open_cycle,
                    window->cycle);
    }

    // ...the taint log shows the secret propagating...
    std::printf("final taint sum: %lu bits\n",
                static_cast<unsigned long>(
                    result.dut0.taint_log.finalTaintSum()));

    // ...and the annotated sinks show where it is exploitable.
    std::printf("live tainted sinks:\n");
    for (const auto &sink : result.dut0.sinks) {
        size_t live = sink.liveTaintedEntries();
        size_t dead = sink.taintedEntries() - live;
        if (live + dead > 0) {
            std::printf("  %-10s %-10s live=%zu dead=%zu\n",
                        sink.module().c_str(), sink.name().c_str(), live,
                        dead);
        }
    }
    return 0;
}
