/**
 * @file
 * Domain scenario: hunt return-address-misprediction (Spectre-RSB
 * family) windows with the full three-phase pipeline on BOOM, and
 * show the Phantom-RSB (B2) below-TOS corruption being found and
 * disappearing on a fixed core.
 *
 *   ./examples/spectre_rsb_hunt
 */

#include <cstdio>

#include "core/fuzzer.hh"
#include "core/phases.hh"
#include "core/stimgen.hh"
#include "uarch/config.hh"

using namespace dejavuzz;
using core::TriggerKind;

namespace {

void
hunt(const uarch::CoreConfig &cfg, const char *label)
{
    std::printf("\n--- %s ---\n", label);
    harness::DualSim sim(cfg);
    core::StimGen gen(cfg);
    harness::SimOptions options;
    options.mode = ift::IftMode::DiffIFT;
    ift::TaintCoverage coverage;
    auto ids = uarch::Core::registerModules(coverage, cfg);
    core::Phase1 phase1(sim, options);
    core::Phase2 phase2(sim, options, coverage, ids);
    core::Phase3 phase3(sim, options, gen);

    Rng rng(0x5b5b);
    unsigned windows = 0;
    unsigned ras_leaks = 0;
    unsigned other_leaks = 0;
    for (unsigned i = 0; i < 60; ++i) {
        core::Seed seed =
            gen.newSeed(rng, i, TriggerKind::ReturnMispredict);
        core::TestCase tc = gen.generatePhase1(seed);
        bool triggered = false;
        phase1.run(tc, triggered, true);
        if (!triggered)
            continue;
        ++windows;
        gen.completeWindow(tc);
        for (int m = 0; m < 4; ++m) {
            auto explored = phase2.run(tc);
            if (explored.window_ok && explored.taint_propagated) {
                auto verdict = phase3.run(tc, explored, true);
                if (verdict.leak && verdict.report.has_value()) {
                    if (verdict.report->components.count("ras") != 0)
                        ++ras_leaks;
                    else
                        ++other_leaks;
                }
            }
            gen.mutateWindow(tc, rng.next());
        }
    }
    std::printf("return windows triggered: %u\n", windows);
    std::printf("leaks with a live tainted RAS entry (Phantom-RSB"
                " signature): %u\n", ras_leaks);
    std::printf("other leaks through return windows: %u\n",
                other_leaks);
}

} // namespace

int
main()
{
    std::printf("Hunting Spectre-RSB / Phantom-RSB on BOOM\n");

    hunt(uarch::smallBoomConfig(),
         "BOOM with B2 (partial RAS restore)");

    uarch::CoreConfig fixed = uarch::smallBoomConfig();
    fixed.bug_b2_ras_partial_restore = false;
    hunt(fixed, "BOOM with the B2 fix (full RAS restore)");

    std::printf("\nexpected: the fixed core shows no live tainted RAS"
                " entries.\n");
    return 0;
}
