/**
 * @file
 * The `dejavuzz-replay` CLI: turn a saved campaign directory into a
 * deterministic regression suite and a triage pipeline.
 *
 *   dejavuzz-replay DIR                # replay every ledger bug
 *   dejavuzz-replay DIR --require-bugs # also fail on an empty ledger
 *   dejavuzz-replay DIR --triage       # cluster + portability matrix
 *                                      #   -> DIR/triage.jsonl
 *   dejavuzz-replay DIR --triage --emit-pocs
 *                                      # + minimized PoCs -> DIR/pocs/
 *   dejavuzz-replay --poc FILE [--poc FILE ...]
 *                                      # replay standalone PoC files
 *
 * Each bug recorded in DIR's checkpoint is re-executed through the
 * Phase-2/Phase-3 pipeline from its saved reproducer test case; the
 * run succeeds only when 100% of signatures reproduce bit-identically
 * (and, under --require-bugs, the ledger is non-empty — the mode CI
 * regression gates use, so a silently-empty campaign cannot pass).
 * Triage output is a pure function of the campaign directory: two
 * runs produce byte-identical triage.jsonl and PoC files.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign_dir.hh"
#include "obs/telemetry.hh"
#include "replay/replay.hh"
#include "triage/triage.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
        "usage: %s [CAMPAIGN_DIR] [options]\n"
        "\n"
        "  --require-bugs   fail when the ledger is empty (CI gate)\n"
        "  --triage         cluster the ledger and write "
        "CAMPAIGN_DIR/triage.jsonl\n"
        "  --matrix         with --triage: replay every bug on every\n"
        "                   registered core config (default on)\n"
        "  --no-matrix      with --triage: skip the portability "
        "matrix\n"
        "  --emit-pocs      with --triage: shrink one PoC per "
        "cluster\n"
        "                   into CAMPAIGN_DIR/pocs/\n"
        "  --threshold X    cluster similarity threshold "
        "(default 0.5)\n"
        "  --poc FILE       replay a standalone PoC file "
        "(repeatable;\n"
        "                   CAMPAIGN_DIR not required)\n"
        "  --trace-out PATH write a Chrome trace-event JSON of the\n"
        "                   replay (one span per bug; open in "
        "Perfetto)\n"
        "  --quiet          only print the final summary line\n"
        "  --help           this text\n",
        argv0);
}

/** Replay one standalone PoC file; true when it reproduces. */
bool
replayPoc(const std::string &path,
          dejavuzz::triage::FuzzerCache &fuzzers, bool quiet)
{
    namespace triage = dejavuzz::triage;
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::fprintf(stderr, "  [FAIL] %s: cannot open\n",
                     path.c_str());
        return false;
    }
    triage::PocArtifact poc;
    std::string error;
    if (!triage::readPocFile(is, poc, &error)) {
        std::fprintf(stderr, "  [FAIL] %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    dejavuzz::core::Fuzzer *fuzzer =
        fuzzers.get(poc.config, poc.variant, &error);
    if (!fuzzer) {
        std::fprintf(stderr, "  [FAIL] %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    const auto outcome = fuzzer->replayCase(poc.tc);
    const std::string observed =
        outcome.timed_out
            ? "replay-timeout"
            : outcome.report.has_value()
                  ? outcome.report->key()
                  : (outcome.window_ok ? "no-leak"
                                       : "window-not-triggered");
    const bool ok = observed == poc.key;
    if (!quiet || !ok) {
        std::fprintf(stderr, "  [%s] %s (%s, %s)%s%s\n",
                     ok ? "ok" : "FAIL", path.c_str(),
                     poc.config.c_str(), poc.variant.c_str(),
                     ok ? "" : " -> ", ok ? "" : observed.c_str());
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir;
    std::string trace_out_path;
    std::vector<std::string> poc_paths;
    bool require_bugs = false;
    bool quiet = false;
    bool triage = false;
    bool matrix = true;
    bool emit_pocs = false;
    double threshold = 0.5;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--require-bugs") {
            require_bugs = true;
        } else if (arg == "--triage") {
            triage = true;
        } else if (arg == "--matrix") {
            matrix = true;
        } else if (arg == "--no-matrix") {
            matrix = false;
        } else if (arg == "--emit-pocs") {
            triage = true;
            emit_pocs = true;
        } else if (arg == "--threshold") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--threshold needs a value\n");
                return 2;
            }
            char *end = nullptr;
            threshold = std::strtod(argv[++i], &end);
            if (!end || *end != '\0' || threshold < 0.0 ||
                threshold > 1.0) {
                std::fprintf(stderr,
                             "--threshold must be in [0, 1]\n");
                return 2;
            }
        } else if (arg == "--poc") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--poc needs a value\n");
                return 2;
            }
            poc_paths.push_back(argv[++i]);
        } else if (arg == "--trace-out") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--trace-out needs a value\n");
                return 2;
            }
            trace_out_path = argv[++i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        } else if (dir.empty()) {
            dir = arg;
        } else {
            std::fprintf(stderr, "unexpected argument %s\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (dir.empty() && poc_paths.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (dir.empty() && (triage || require_bugs)) {
        std::fprintf(stderr,
                     "--triage/--require-bugs need a CAMPAIGN_DIR\n");
        return 2;
    }

    // Standalone PoC mode: no campaign directory involved.
    if (dir.empty()) {
        dejavuzz::triage::FuzzerCache fuzzers;
        size_t ok = 0;
        for (const std::string &path : poc_paths)
            ok += replayPoc(path, fuzzers, quiet) ? 1 : 0;
        std::fprintf(stderr, "replay: %zu/%zu PoCs reproduced\n", ok,
                     poc_paths.size());
        return ok == poc_paths.size() ? 0 : 1;
    }

    std::ofstream trace_file;
    if (!trace_out_path.empty()) {
        trace_file.open(trace_out_path,
                        std::ios::out | std::ios::trunc);
        if (!trace_file) {
            std::fprintf(stderr,
                         "cannot open --trace-out %s for writing\n",
                         trace_out_path.c_str());
            return 1;
        }
        dejavuzz::obs::enableTrace(true);
    }

    dejavuzz::replay::ReplaySummary summary;
    std::string error;
    std::string note;
    if (!dejavuzz::replay::replayCampaignDir(dir, summary, &error,
                                             &note)) {
        std::fprintf(stderr, "dejavuzz-replay: %s\n", error.c_str());
        return 1;
    }
    if (!note.empty())
        std::fprintf(stderr, "dejavuzz-replay: %s\n", note.c_str());

    if (!trace_out_path.empty()) {
        dejavuzz::obs::writeChromeTrace(
            trace_file, dejavuzz::obs::takeTraceEvents());
        trace_file.flush();
        if (!trace_file) {
            std::fprintf(stderr, "write to --trace-out %s failed\n",
                         trace_out_path.c_str());
            return 1;
        }
    }

    if (!quiet) {
        for (const auto &bug : summary.bugs) {
            std::fprintf(stderr, "  [%s] %s (%s, %s, %.3fs)%s%s\n",
                         bug.reproduced ? "ok" : "FAIL",
                         bug.key.c_str(), bug.config.c_str(),
                         bug.variant.c_str(), bug.seconds,
                         bug.reproduced ? "" : " -> ",
                         bug.reproduced ? "" : bug.observed.c_str());
        }
    }

    int exit_code = 0;

    if (triage) {
        namespace tr = dejavuzz::triage;
        namespace campaign = dejavuzz::campaign;
        campaign::CampaignMeta meta;
        campaign::CampaignCheckpoint checkpoint;
        std::string triage_note;
        if (!campaign::loadCampaignSnapshot(dir, meta, checkpoint,
                                            &error, &triage_note)) {
            std::fprintf(stderr, "dejavuzz-replay: %s\n",
                         error.c_str());
            return 1;
        }
        if (!triage_note.empty())
            std::fprintf(stderr, "dejavuzz-replay: %s\n",
                         triage_note.c_str());
        tr::TriageOptions options;
        options.cluster.threshold = threshold;
        options.matrix = matrix;
        options.emit_pocs = emit_pocs;
        tr::FuzzerCache fuzzers;
        tr::TriageResult result =
            tr::triageLedger(checkpoint.ledger, options, fuzzers);

        const std::string jsonl_path = dir + "/triage.jsonl";
        std::ofstream jsonl(jsonl_path,
                            std::ios::out | std::ios::trunc);
        if (!jsonl) {
            std::fprintf(stderr,
                         "dejavuzz-replay: cannot open %s\n",
                         jsonl_path.c_str());
            return 1;
        }
        tr::writeTriageJsonl(jsonl, result);
        jsonl.flush();
        if (!jsonl) {
            std::fprintf(stderr,
                         "dejavuzz-replay: write to %s failed\n",
                         jsonl_path.c_str());
            return 1;
        }
        if (emit_pocs &&
            !tr::writePocs(dir, result, &error)) {
            std::fprintf(stderr, "dejavuzz-replay: %s\n",
                         error.c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "triage: %zu bugs -> %zu clusters, %zu PoCs "
                     "(%s)\n",
                     result.ledger.size(), result.clusters.size(),
                     result.pocs.size(), jsonl_path.c_str());
    }

    std::string verdict;
    const int replay_code = dejavuzz::replay::replayVerdict(
        summary, require_bugs, verdict);
    std::fprintf(stderr, "%s\n", verdict.c_str());
    return replay_code != 0 ? replay_code : exit_code;
}
