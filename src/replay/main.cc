/**
 * @file
 * The `dejavuzz-replay` CLI: turn a saved campaign directory into a
 * deterministic regression suite.
 *
 *   dejavuzz-replay DIR                # replay every ledger bug
 *   dejavuzz-replay DIR --require-bugs # also fail on an empty ledger
 *
 * Each bug recorded in DIR's checkpoint is re-executed through the
 * Phase-2/Phase-3 pipeline from its saved reproducer test case; the
 * run succeeds only when 100% of signatures reproduce bit-identically
 * (and, under --require-bugs, the ledger is non-empty — the mode CI
 * regression gates use, so a silently-empty campaign cannot pass).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/telemetry.hh"
#include "replay/replay.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
        "usage: %s CAMPAIGN_DIR [options]\n"
        "\n"
        "  --require-bugs   fail when the ledger is empty (CI gate)\n"
        "  --trace-out PATH write a Chrome trace-event JSON of the\n"
        "                   replay (one span per bug; open in "
        "Perfetto)\n"
        "  --quiet          only print the final summary line\n"
        "  --help           this text\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir;
    std::string trace_out_path;
    bool require_bugs = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--require-bugs") {
            require_bugs = true;
        } else if (arg == "--trace-out") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--trace-out needs a value\n");
                return 2;
            }
            trace_out_path = argv[++i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        } else if (dir.empty()) {
            dir = arg;
        } else {
            std::fprintf(stderr, "unexpected argument %s\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (dir.empty()) {
        usage(argv[0]);
        return 2;
    }

    std::ofstream trace_file;
    if (!trace_out_path.empty()) {
        trace_file.open(trace_out_path,
                        std::ios::out | std::ios::trunc);
        if (!trace_file) {
            std::fprintf(stderr,
                         "cannot open --trace-out %s for writing\n",
                         trace_out_path.c_str());
            return 1;
        }
        dejavuzz::obs::enableTrace(true);
    }

    dejavuzz::replay::ReplaySummary summary;
    std::string error;
    if (!dejavuzz::replay::replayCampaignDir(dir, summary, &error)) {
        std::fprintf(stderr, "dejavuzz-replay: %s\n", error.c_str());
        return 1;
    }

    if (!trace_out_path.empty()) {
        dejavuzz::obs::writeChromeTrace(
            trace_file, dejavuzz::obs::takeTraceEvents());
        trace_file.flush();
        if (!trace_file) {
            std::fprintf(stderr, "write to --trace-out %s failed\n",
                         trace_out_path.c_str());
            return 1;
        }
    }

    if (!quiet) {
        for (const auto &bug : summary.bugs) {
            std::fprintf(stderr, "  [%s] %s (%s, %s, %.3fs)%s%s\n",
                         bug.reproduced ? "ok" : "FAIL",
                         bug.key.c_str(), bug.config.c_str(),
                         bug.variant.c_str(), bug.seconds,
                         bug.reproduced ? "" : " -> ",
                         bug.reproduced ? "" : bug.observed.c_str());
        }
    }
    std::fprintf(stderr, "replay: %zu/%zu ledger bugs reproduced\n",
                 summary.reproduced(), summary.total());

    if (require_bugs && summary.total() == 0) {
        std::fprintf(stderr,
                     "replay: ledger is empty but --require-bugs "
                     "was given\n");
        return 1;
    }
    return summary.allReproduced() ? 0 : 1;
}
