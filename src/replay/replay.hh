/**
 * @file
 * Deterministic bug replay: re-execute a campaign's ledger as a
 * regression suite.
 *
 * Every ledger record carries its first reporter's exact test case
 * plus the config/variant it ran under. replayLedger() rebuilds that
 * fuzzer configuration per record, pushes the reproducer through
 * core::Fuzzer::replayCase (the same Phase-2/Phase-3 pipeline the
 * campaign evaluated it with) and checks that the identical bug
 * signature comes back — the SpecDoctor-style replay confirmation
 * the paper's evaluation methodology relies on, packaged as the
 * `dejavuzz-replay` CLI over a `--campaign-dir`.
 */

#ifndef DEJAVUZZ_REPLAY_REPLAY_HH
#define DEJAVUZZ_REPLAY_REPLAY_HH

#include <string>
#include <vector>

#include "campaign/ledger.hh"

namespace dejavuzz::replay {

/** Outcome of replaying one ledger record. */
struct BugReplay
{
    std::string key;      ///< the ledger signature being reproduced
    std::string config;   ///< core config the bug was found on
    std::string variant;  ///< ablation variant it was found under
    double seconds = 0.0; ///< replay wall time of this record
    bool reproduced = false;
    /** What the replay produced: the observed signature, "no-leak"
     *  when Phase 3 found nothing, or a diagnostic for records whose
     *  config/variant this build cannot reconstruct. */
    std::string observed;
};

/** Aggregate replay outcome. */
struct ReplaySummary
{
    std::vector<BugReplay> bugs; ///< one per ledger record, in order

    size_t total() const { return bugs.size(); }
    size_t reproduced() const;
    bool allReproduced() const { return reproduced() == total(); }
};

/**
 * Replay every record of @p ledger. Fuzzer instances are cached per
 * (config, variant), so replaying a full campaign builds at most a
 * handful of simulators. Records never fail the call itself — a
 * non-reproducing bug is a result, not an error.
 */
ReplaySummary replayLedger(const std::vector<campaign::BugRecord> &ledger);

/**
 * The process exit code and human-readable verdict line for a replay
 * run. An empty ledger is success ("replay: 0 bugs, nothing
 * replayed") unless @p require_bugs demands findings — the
 * regression-gate mode, where an unexpectedly empty ledger must fail
 * loudly instead of vacuously passing. A non-empty ledger succeeds
 * exactly when every bug reproduced.
 */
int replayVerdict(const ReplaySummary &summary, bool require_bugs,
                  std::string &line);

/**
 * Load the checkpoint of @p dir (a `--campaign-dir`) and replay its
 * ledger. Returns false on a missing/corrupt directory (diagnostic
 * in @p error when non-null). When the loader had to fall back to
 * the previous save generation (torn latest), @p note describes the
 * recovery — callers should surface it so a silently-older ledger
 * never masquerades as the latest one.
 */
bool replayCampaignDir(const std::string &dir, ReplaySummary &out,
                       std::string *error = nullptr,
                       std::string *note = nullptr);

} // namespace dejavuzz::replay

#endif // DEJAVUZZ_REPLAY_REPLAY_HH
