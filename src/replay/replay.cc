#include "replay/replay.hh"

#include <map>
#include <memory>
#include <utility>

#include "campaign/campaign_dir.hh"
#include "campaign/orchestrator.hh"
#include "core/fuzzer.hh"
#include "obs/telemetry.hh"
#include "uarch/config.hh"

namespace dejavuzz::replay {

size_t
ReplaySummary::reproduced() const
{
    size_t n = 0;
    for (const BugReplay &bug : bugs)
        n += bug.reproduced ? 1 : 0;
    return n;
}

ReplaySummary
replayLedger(const std::vector<campaign::BugRecord> &ledger)
{
    ReplaySummary summary;
    // One simulator per (config, variant) pair actually present in
    // the ledger; reused across its records.
    std::map<std::pair<std::string, std::string>,
             std::unique_ptr<core::Fuzzer>>
        fuzzers;

    for (const campaign::BugRecord &record : ledger) {
        BugReplay result;
        result.key = record.report.key();
        result.config = record.config;
        result.variant = record.variant;

        uarch::CoreConfig config;
        if (!uarch::coreConfigByName(record.config, config)) {
            result.observed =
                "unknown core config \"" + record.config + "\"";
            summary.bugs.push_back(std::move(result));
            continue;
        }
        core::FuzzerOptions fopts;
        if (!campaign::applyAblationVariant(record.variant, fopts)) {
            result.observed =
                "unknown ablation variant \"" + record.variant +
                "\"";
            summary.bugs.push_back(std::move(result));
            continue;
        }
        fopts.record_coverage_curve = false;

        auto key = std::make_pair(record.config, record.variant);
        auto it = fuzzers.find(key);
        if (it == fuzzers.end()) {
            it = fuzzers
                     .emplace(key, std::make_unique<core::Fuzzer>(
                                       config, fopts))
                     .first;
        }

        const uint64_t begin = obs::nowNs();
        core::Fuzzer::ReplayOutcome outcome;
        {
            obs::ScopedSpan span(obs::Hist::ReplayNs);
            outcome = it->second->replayCase(record.repro);
        }
        result.seconds = (obs::nowNs() - begin) / 1e9;
        if (outcome.timed_out) {
            // The guard cut the replay off: not reproduced, but the
            // pipeline keeps going instead of hanging on one case.
            result.observed = "replay-timeout";
        } else if (!outcome.report.has_value()) {
            result.observed = outcome.window_ok
                                  ? "no-leak"
                                  : "window-not-triggered";
        } else {
            result.observed = outcome.report->key();
            result.reproduced = result.observed == result.key;
        }
        summary.bugs.push_back(std::move(result));
    }
    return summary;
}

int
replayVerdict(const ReplaySummary &summary, bool require_bugs,
              std::string &line)
{
    // An empty ledger is a legitimate campaign outcome (the core
    // under test may simply be clean), so the default verdict is
    // success with an explicit "nothing replayed" line — silence or
    // a failure exit here caused real confusion in CI. The
    // regression-gate reading (--require-bugs) inverts that: a gate
    // that vacuously passes because the snapshot went missing is
    // worse than a failure.
    if (summary.total() == 0) {
        if (require_bugs) {
            line = "replay: ledger is empty but --require-bugs "
                   "was given";
            return 1;
        }
        line = "replay: 0 bugs, nothing replayed";
        return 0;
    }
    line = "replay: " + std::to_string(summary.reproduced()) + "/" +
           std::to_string(summary.total()) +
           " ledger bugs reproduced";
    return summary.allReproduced() ? 0 : 1;
}

bool
replayCampaignDir(const std::string &dir, ReplaySummary &out,
                  std::string *error, std::string *note)
{
    // Reproducers live in the snapshot; the corpus artifact is
    // neither read nor required to replay a ledger.
    campaign::CampaignMeta meta;
    campaign::CampaignCheckpoint checkpoint;
    if (!campaign::loadCampaignSnapshot(dir, meta, checkpoint,
                                        error, note)) {
        return false;
    }
    out = replayLedger(checkpoint.ledger);
    return true;
}

} // namespace dejavuzz::replay
