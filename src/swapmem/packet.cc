#include "swapmem/packet.hh"

#include "util/logging.hh"

namespace dejavuzz::swapmem {

const char *
packetKindName(PacketKind kind)
{
    switch (kind) {
      case PacketKind::TriggerTrain:
        return "trigger-train";
      case PacketKind::WindowTrain:
        return "window-train";
      case PacketKind::Transient:
        return "transient";
    }
    return "?";
}

size_t
SwapSchedule::transientIndex() const
{
    size_t found = packets.size();
    for (size_t i = 0; i < packets.size(); ++i) {
        if (packets[i].kind == PacketKind::Transient) {
            dv_assert(found == packets.size());
            found = i;
        }
    }
    dv_assert(found < packets.size());
    return found;
}

size_t
SwapSchedule::trainingOverhead() const
{
    size_t n = 0;
    for (const auto &packet : packets) {
        if (packet.kind != PacketKind::Transient)
            n += packet.size();
    }
    return n;
}

size_t
SwapSchedule::effectiveTrainingOverhead() const
{
    size_t n = 0;
    for (const auto &packet : packets) {
        if (packet.kind != PacketKind::Transient)
            n += packet.effectiveSize();
    }
    return n;
}

SwapSchedule
SwapSchedule::without(size_t packet_index) const
{
    dv_assert(packet_index < packets.size());
    dv_assert(packets[packet_index].kind != PacketKind::Transient);
    SwapSchedule reduced;
    reduced.transient_prot = transient_prot;
    reduced.victim_supervisor = victim_supervisor;
    reduced.double_fetch = double_fetch;
    for (size_t i = 0; i < packets.size(); ++i) {
        if (i != packet_index)
            reduced.packets.push_back(packets[i]);
    }
    return reduced;
}

uint64_t
SwapRuntime::start(Memory &mem)
{
    dv_assert(!started_);
    started_ = true;
    cursor_ = 0;
    if (done())
        return 0;
    loadCurrent(mem);
    return current().entry;
}

const SwapPacket &
SwapRuntime::current() const
{
    dv_assert(!done());
    return schedule_->packets[cursor_];
}

uint64_t
SwapRuntime::advance(Memory &mem)
{
    dv_assert(started_ && !done());
    ++cursor_;
    if (done())
        return 0;
    loadCurrent(mem);
    return current().entry;
}

void
SwapRuntime::loadCurrent(Memory &mem)
{
    const SwapPacket &packet = current();
    mem.zeroRange(kSwapBase, kSwapSize);
    std::vector<uint32_t> words;
    words.reserve(packet.instrs.size());
    for (const auto &instr : packet.instrs)
        words.push_back(isa::encode(instr));
    dv_assert(words.size() * 4 <= kSwapSize);
    mem.loadBlock(kSwapBase, words.data(), words.size());

    // Update the secret's protection when entering the transient
    // packet (the paper updates permissions after all training).
    if (packet.kind == PacketKind::Transient) {
        mem.setSecretProt(schedule_->transient_prot);
        mem.setVictimSupervisor(schedule_->victim_supervisor);
        // Double-fetch: mutate the secret under the transient packet
        // while the training packets' cached copy stays stale (the
        // d-cache is deliberately not flushed across swaps).
        if (schedule_->double_fetch)
            mem.applySecretSwap();
    } else {
        mem.setSecretProt(SecretProt::Open);
        mem.setVictimSupervisor(false);
    }
}

} // namespace dejavuzz::swapmem
