/**
 * @file
 * Byte-addressable backing memory with per-byte taint, page
 * permissions, PMP-style secret protection, and an undo log.
 *
 * Each DUT instance owns one Memory (the dedicated region differs
 * between instances; everything else is identical). The undo log lets
 * the differential harness re-run one instance's cycle after learning
 * the sibling's control trace without copying the whole image.
 */

#ifndef DEJAVUZZ_SWAPMEM_MEMORY_HH
#define DEJAVUZZ_SWAPMEM_MEMORY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ift/taint.hh"
#include "isa/exceptions.hh"
#include "swapmem/layout.hh"

namespace dejavuzz::swapmem {

/** How the secret block is architecturally protected right now. */
enum class SecretProt : uint8_t {
    Open,   ///< readable by U-mode (training phase / Spectre payloads)
    Pmp,    ///< PMP-denied => load access fault
    Pte,    ///< PTE-denied => load page fault
};

/** Kind of access being permission-checked. */
enum class AccessKind : uint8_t { Load, Store, Fetch };

class Memory
{
  public:
    Memory();

    /**
     * Restore the pristine all-zero image, reusing the allocation.
     * Only pages dirtied since construction (or the previous reset)
     * are cleared, so a pooled Memory resets in proportion to the
     * previous run's write footprint rather than the image size.
     * Bit-identical to a freshly constructed Memory.
     */
    void reset();

    /**
     * Make this Memory bit-identical to @p other, reusing the
     * allocation. Cost is proportional to the union of the two dirty
     * footprints, not the image size: pages dirty here but clean in
     * @p other are zeroed; pages dirty in @p other are copied. Any
     * active undo log on this instance is dropped (the snapshot is a
     * confirmed state, not a speculative one).
     */
    void copyFrom(const Memory &other);

    // --- raw byte access (no permission checks) ------------------------
    uint8_t byte(uint64_t addr) const;
    void setByte(uint64_t addr, uint8_t value, bool tainted);

    /** Little-endian load of @p bytes (1/2/4/8) with taint. */
    ift::TV read(uint64_t addr, unsigned bytes) const;
    /** Little-endian store with per-byte taint derived from tv.t. */
    void write(uint64_t addr, unsigned bytes, ift::TV tv);

    /** 32-bit instruction fetch word. */
    uint32_t fetchWord(uint64_t addr) const;

    /** Copy a block in (used by the swap runtime packet loader). */
    void loadBlock(uint64_t addr, const uint32_t *words, size_t count);
    /** Zero-fill a range (clears taint as well). */
    void zeroRange(uint64_t addr, uint64_t bytes);

    // --- permissions ----------------------------------------------------
    /**
     * Architectural permission check. Returns ExcCause::None when the
     * access is allowed for @p priv.
     */
    isa::ExcCause check(uint64_t addr, unsigned bytes, AccessKind kind,
                        isa::Priv priv) const;

    void setSecretProt(SecretProt prot) { secret_prot_ = prot; }
    SecretProt secretProt() const { return secret_prot_; }

    /**
     * Victim placement: when set, the secret block lives in a
     * supervisor page - any U-mode access page-faults independent of
     * the PMP-style secret protection (MeltdownSupervisor template).
     */
    void setVictimSupervisor(bool on) { victim_supervisor_ = on; }
    bool victimSupervisor() const { return victim_supervisor_; }

    /**
     * Double-fetch swap: XOR-mutate the secret bytes in place (via the
     * undo-covered byte store, so speculative rollback restores them).
     * Idempotent per swap generation - the flag makes replayed packet
     * loads after a Phase-3 fused reload apply the swap exactly once.
     */
    void applySecretSwap();
    void clearSecretSwap() { secret_swapped_ = false; }
    bool secretSwapped() const { return secret_swapped_; }

    /** Install the secret block (tainted bytes). */
    void installSecret(const uint8_t *data, size_t bytes);
    /** Write a mutable operand slot (untainted). */
    void setOperand(unsigned slot, uint64_t value);
    uint64_t operandAddr(unsigned slot) const;

    // --- undo log --------------------------------------------------------
    void beginUndo();
    void rollbackUndo();
    void discardUndo();

    bool inRange(uint64_t addr) const { return addr < kMemBytes; }

  private:
    struct UndoRec
    {
        uint32_t addr;
        uint8_t value;
        uint8_t taint;
    };

    std::vector<uint8_t> data_;
    std::vector<uint8_t> taint_;
    SecretProt secret_prot_ = SecretProt::Open;
    bool victim_supervisor_ = false;
    bool secret_swapped_ = false;
    bool undo_active_ = false;
    std::vector<UndoRec> undo_;
    /** One bit per page with any write since the last reset. */
    uint64_t dirty_pages_ = 0;
    static_assert(kMemBytes / kPageBytes <= 64,
                  "dirty-page mask is a single 64-bit word");
};

} // namespace dejavuzz::swapmem

#endif // DEJAVUZZ_SWAPMEM_MEMORY_HH
