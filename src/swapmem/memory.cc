#include "swapmem/memory.hh"

#include <bit>
#include <cstring>

#include "util/logging.hh"

namespace dejavuzz::swapmem {

using ift::TV;

Memory::Memory()
{
    data_.assign(kMemBytes, 0);
    taint_.assign(kMemBytes, 0);
}

void
Memory::reset()
{
    uint64_t dirty = dirty_pages_;
    while (dirty != 0) {
        unsigned page = static_cast<unsigned>(std::countr_zero(dirty));
        dirty &= dirty - 1;
        uint64_t base = static_cast<uint64_t>(page) * kPageBytes;
        std::memset(&data_[base], 0, kPageBytes);
        std::memset(&taint_[base], 0, kPageBytes);
    }
    dirty_pages_ = 0;
    secret_prot_ = SecretProt::Open;
    victim_supervisor_ = false;
    secret_swapped_ = false;
    undo_active_ = false;
    undo_.clear();
}

void
Memory::copyFrom(const Memory &other)
{
    uint64_t stale = dirty_pages_ & ~other.dirty_pages_;
    while (stale != 0) {
        unsigned page = static_cast<unsigned>(std::countr_zero(stale));
        stale &= stale - 1;
        uint64_t base = static_cast<uint64_t>(page) * kPageBytes;
        std::memset(&data_[base], 0, kPageBytes);
        std::memset(&taint_[base], 0, kPageBytes);
    }
    uint64_t live = other.dirty_pages_;
    while (live != 0) {
        unsigned page = static_cast<unsigned>(std::countr_zero(live));
        live &= live - 1;
        uint64_t base = static_cast<uint64_t>(page) * kPageBytes;
        std::memcpy(&data_[base], &other.data_[base], kPageBytes);
        std::memcpy(&taint_[base], &other.taint_[base], kPageBytes);
    }
    dirty_pages_ = other.dirty_pages_;
    secret_prot_ = other.secret_prot_;
    victim_supervisor_ = other.victim_supervisor_;
    secret_swapped_ = other.secret_swapped_;
    undo_active_ = false;
    undo_.clear();
}

uint8_t
Memory::byte(uint64_t addr) const
{
    return addr < kMemBytes ? data_[addr] : 0;
}

void
Memory::setByte(uint64_t addr, uint8_t value, bool tainted)
{
    if (addr >= kMemBytes)
        return;
    if (undo_active_) {
        undo_.push_back(UndoRec{static_cast<uint32_t>(addr),
                                data_[addr], taint_[addr]});
    }
    dirty_pages_ |= 1ULL << (addr / kPageBytes);
    data_[addr] = value;
    taint_[addr] = tainted ? 1 : 0;
}

TV
Memory::read(uint64_t addr, unsigned bytes) const
{
    TV tv;
    for (unsigned i = 0; i < bytes; ++i) {
        uint64_t a = addr + i;
        if (a >= kMemBytes)
            continue;
        tv.v |= static_cast<uint64_t>(data_[a]) << (8 * i);
        if (taint_[a])
            tv.t |= 0xffULL << (8 * i);
    }
    return tv;
}

void
Memory::write(uint64_t addr, unsigned bytes, TV tv)
{
    for (unsigned i = 0; i < bytes; ++i) {
        uint64_t a = addr + i;
        if (a >= kMemBytes)
            continue;
        bool byte_tainted = ((tv.t >> (8 * i)) & 0xff) != 0;
        setByte(a, static_cast<uint8_t>(tv.v >> (8 * i)), byte_tainted);
    }
}

uint32_t
Memory::fetchWord(uint64_t addr) const
{
    uint32_t word = 0;
    for (unsigned i = 0; i < 4; ++i) {
        uint64_t a = addr + i;
        if (a < kMemBytes)
            word |= static_cast<uint32_t>(data_[a]) << (8 * i);
    }
    return word;
}

void
Memory::loadBlock(uint64_t addr, const uint32_t *words, size_t count)
{
    for (size_t i = 0; i < count; ++i) {
        uint32_t word = words[i];
        for (unsigned b = 0; b < 4; ++b) {
            setByte(addr + 4 * i + b,
                    static_cast<uint8_t>(word >> (8 * b)), false);
        }
    }
}

void
Memory::zeroRange(uint64_t addr, uint64_t bytes)
{
    for (uint64_t i = 0; i < bytes; ++i)
        setByte(addr + i, 0, false);
}

isa::ExcCause
Memory::check(uint64_t addr, unsigned bytes, AccessKind kind,
              isa::Priv priv) const
{
    using isa::ExcCause;

    // Alignment first (both evaluated cores trap on misalignment).
    if (bytes > 1 && (addr % bytes) != 0) {
        switch (kind) {
          case AccessKind::Load:
            return ExcCause::LoadAddrMisaligned;
          case AccessKind::Store:
            return ExcCause::StoreAddrMisaligned;
          case AccessKind::Fetch:
            return ExcCause::InstrAddrMisaligned;
        }
    }

    // Secret-block protection (checked before the generic map so the
    // two protection flavours produce distinct causes).
    uint64_t end = addr + bytes;
    bool hits_secret =
        addr < kSecretAddr + kSecretBytes && end > kSecretAddr;
    if (hits_secret && priv != isa::Priv::M) {
        // Supervisor victim placement dominates the PMP-style secret
        // protection: the page walk fails before any PMP check.
        if (victim_supervisor_) {
            return kind == AccessKind::Store
                       ? ExcCause::StorePageFault
                       : ExcCause::LoadPageFault;
        }
        if (secret_prot_ == SecretProt::Pmp) {
            return kind == AccessKind::Store
                       ? ExcCause::StoreAccessFault
                       : ExcCause::LoadAccessFault;
        }
        if (secret_prot_ == SecretProt::Pte) {
            return kind == AccessKind::Store
                       ? ExcCause::StorePageFault
                       : ExcCause::LoadPageFault;
        }
    }

    // PMP guard block: denied below M mode regardless of the secret
    // protection state.
    bool hits_guard =
        addr < kPmpGuardAddr + kPmpGuardBytes && end > kPmpGuardAddr;
    if (hits_guard && priv != isa::Priv::M) {
        switch (kind) {
          case AccessKind::Load:
            return ExcCause::LoadAccessFault;
          case AccessKind::Store:
            return ExcCause::StoreAccessFault;
          case AccessKind::Fetch:
            return ExcCause::InstrAccessFault;
        }
    }

    // Out of the physical image => access fault.
    if (end > kMemBytes || end < addr) {
        switch (kind) {
          case AccessKind::Load:
            return ExcCause::LoadAccessFault;
          case AccessKind::Store:
            return ExcCause::StoreAccessFault;
          case AccessKind::Fetch:
            return ExcCause::InstrAccessFault;
        }
    }

    // Mapped-region check: everything below kMemBytes is mapped except
    // the deliberate holes used to generate page faults (the null page
    // below the shared region and the tail hole above the data region).
    bool in_hole = addr >= kUnmappedAddr || addr < kSharedBase;
    if (in_hole) {
        switch (kind) {
          case AccessKind::Load:
            return ExcCause::LoadPageFault;
          case AccessKind::Store:
            return ExcCause::StorePageFault;
          case AccessKind::Fetch:
            return ExcCause::InstrPageFault;
        }
    }

    // The shared (firmware) region is not writable from U mode.
    if (kind == AccessKind::Store && priv == isa::Priv::U &&
        addr >= kSharedBase && addr < kSharedBase + kSharedSize) {
        return ExcCause::StoreAccessFault;
    }

    return ExcCause::None;
}

void
Memory::applySecretSwap()
{
    if (secret_swapped_)
        return;
    for (uint64_t i = 0; i < kSecretBytes; ++i) {
        uint64_t addr = kSecretAddr + i;
        setByte(addr, static_cast<uint8_t>(data_[addr] ^ 0x5a), true);
    }
    secret_swapped_ = true;
}

void
Memory::installSecret(const uint8_t *data, size_t bytes)
{
    dv_assert(bytes <= kSecretBytes);
    for (size_t i = 0; i < kSecretBytes; ++i) {
        uint8_t value = i < bytes ? data[i] : 0;
        setByte(kSecretAddr + i, value, true);
    }
}

void
Memory::setOperand(unsigned slot, uint64_t value)
{
    uint64_t addr = operandAddr(slot);
    dv_assert(addr + 8 <= kOperandAddr + kOperandBytes);
    write(addr, 8, TV{value, 0});
}

uint64_t
Memory::operandAddr(unsigned slot) const
{
    return kOperandAddr + 8ULL * slot;
}

void
Memory::beginUndo()
{
    dv_assert(!undo_active_);
    undo_active_ = true;
    undo_.clear();
}

void
Memory::rollbackUndo()
{
    dv_assert(undo_active_);
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
        data_[it->addr] = it->value;
        taint_[it->addr] = it->taint;
    }
    undo_.clear();
    undo_active_ = false;
}

void
Memory::discardUndo()
{
    dv_assert(undo_active_);
    undo_.clear();
    undo_active_ = false;
}

} // namespace dejavuzz::swapmem
