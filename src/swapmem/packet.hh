/**
 * @file
 * Swap packets and the swap schedule (paper §3.2, §4.1).
 *
 * A packet is one instruction sequence that the swap runtime loads
 * into the swappable region. The schedule orders packets: window
 * training first, then trigger training, then - after the secret's
 * permissions are updated - the transient packet. The runtime swaps
 * to the next packet whenever the DUT commits a SWAPNEXT or takes an
 * architectural trap (the paper's trap-handler-driven swap).
 */

#ifndef DEJAVUZZ_SWAPMEM_PACKET_HH
#define DEJAVUZZ_SWAPMEM_PACKET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/encoding.hh"
#include "isa/instr.hh"
#include "swapmem/layout.hh"
#include "swapmem/memory.hh"

namespace dejavuzz::swapmem {

/** Role of a packet inside a schedule. */
enum class PacketKind : uint8_t {
    TriggerTrain, ///< trains the component that opens the window
    WindowTrain,  ///< warms memory state used inside the window
    Transient,    ///< the transient packet (trigger + window payload)
};

const char *packetKindName(PacketKind kind);

/** One swappable instruction sequence. */
struct SwapPacket
{
    std::string label;
    PacketKind kind = PacketKind::TriggerTrain;
    std::vector<isa::Instr> instrs;  ///< placed at kSwapBase
    uint64_t entry = kSwapBase;      ///< PC the runtime jumps to

    /** Number of instructions (training overhead accounting). */
    size_t size() const { return instrs.size(); }

    /** Non-nop instructions (effective training overhead). */
    size_t
    effectiveSize() const
    {
        size_t n = 0;
        for (const auto &instr : instrs) {
            bool is_nop = instr.op == isa::Op::ADDI && instr.rd == 0 &&
                          instr.rs1 == 0 && instr.imm == 0;
            n += !is_nop;
        }
        return n;
    }
};

/** Ordered packet list plus the permission-update point. */
struct SwapSchedule
{
    std::vector<SwapPacket> packets;
    /** Protection applied to the secret before the transient packet. */
    SecretProt transient_prot = SecretProt::Open;
    /** Secret placed in a supervisor page for the transient packet. */
    bool victim_supervisor = false;
    /** Swap (mutate) the secret bytes when loading the transient
     *  packet - stale cached copies become the double-fetch hazard. */
    bool double_fetch = false;

    /** Index of the transient packet (asserts there is exactly one). */
    size_t transientIndex() const;

    /** Sum of training-packet instruction counts (paper's TO). */
    size_t trainingOverhead() const;
    /** Sum of non-nop training instructions (paper's ETO). */
    size_t effectiveTrainingOverhead() const;

    /** Remove the training packet at @p packet_index (reduction step). */
    SwapSchedule without(size_t packet_index) const;
};

/**
 * The swap runtime: the pre-silicon analogue of the paper's ~500 LoC
 * DPI-C firmware. Owns the schedule cursor for one DUT instance and
 * performs packet loads into the swappable region.
 */
class SwapRuntime
{
  public:
    explicit SwapRuntime(const SwapSchedule &schedule)
        : schedule_(&schedule)
    {}

    /** Load packet 0; returns its entry PC. */
    uint64_t start(Memory &mem);

    bool done() const { return cursor_ >= schedule_->packets.size(); }
    size_t cursor() const { return cursor_; }
    bool started() const { return started_; }

    /**
     * Resume mid-schedule without touching memory: the caller restored
     * a memory snapshot taken at this cursor position on a schedule
     * whose packets [0, cursor] are identical (Phase-3 lane fusion).
     */
    void
    resumeAt(size_t cursor, bool started)
    {
        cursor_ = cursor;
        started_ = started;
    }

    /**
     * Reload the current packet into @p mem — needed after resumeAt
     * when this schedule's current packet differs from the one the
     * snapshot was taken under (the sanitized transient packet).
     */
    void
    reload(Memory &mem)
    {
        loadCurrent(mem);
    }

    /** Currently-loaded packet (valid when !done()). */
    const SwapPacket &current() const;

    /**
     * Advance to the next packet: flush + reload the swappable region,
     * update secret permissions when crossing into the transient
     * packet. Returns the new entry PC, or 0 when the schedule ended.
     */
    uint64_t advance(Memory &mem);

  private:
    void loadCurrent(Memory &mem);

    const SwapSchedule *schedule_;
    size_t cursor_ = 0;
    bool started_ = false;
};

} // namespace dejavuzz::swapmem

#endif // DEJAVUZZ_SWAPMEM_PACKET_HH
