/**
 * @file
 * Address-space layout of the dynamic swappable memory (paper §3.2,
 * Fig. 4 bottom).
 *
 * Three regions share one physical address space:
 *  - shared:    execution environment common to both DUT instances
 *               (reset stub, trap handler hook, scratch firmware);
 *  - swappable: the window the swap runtime re-loads with a different
 *               instruction packet at each schedule step;
 *  - dedicated: per-DUT-instance data - the secret and the mutable
 *               operands - so variants differ only here;
 * plus a plain data region for leak/scratch arrays.
 */

#ifndef DEJAVUZZ_SWAPMEM_LAYOUT_HH
#define DEJAVUZZ_SWAPMEM_LAYOUT_HH

#include <cstdint>

namespace dejavuzz::swapmem {

constexpr uint64_t kPageBytes = 0x1000;

constexpr uint64_t kSharedBase = 0x0000'1000;
constexpr uint64_t kSharedSize = 0x0000'3000;

constexpr uint64_t kSwapBase = 0x0001'0000;
constexpr uint64_t kSwapSize = 0x0000'4000;

constexpr uint64_t kDedicatedBase = 0x0002'0000;
constexpr uint64_t kDedicatedSize = 0x0000'2000;

constexpr uint64_t kDataBase = 0x0003'0000;
constexpr uint64_t kDataSize = 0x0000'8000;

constexpr uint64_t kMemBytes = 0x0004'0000;

/** Secret block inside the dedicated region. */
constexpr uint64_t kSecretAddr = kDedicatedBase;
constexpr uint64_t kSecretBytes = 64;

/** Mutable operand block inside the dedicated region. */
constexpr uint64_t kOperandAddr = kDedicatedBase + 0x100;
constexpr uint64_t kOperandBytes = 0x100;

/**
 * Always-PMP-denied guard block inside the dedicated region: U-mode
 * accesses raise access faults regardless of the secret protection
 * state, so access-fault windows can be opened without touching the
 * secret (non-Meltdown LoadAccessFault stimuli).
 */
constexpr uint64_t kPmpGuardAddr = kDedicatedBase + 0x200;
constexpr uint64_t kPmpGuardBytes = 0x40;

/** Trap vector: the swap runtime's handler entry in the shared region. */
constexpr uint64_t kTrapVector = kSharedBase;

/** Reset vector: shared-region startup stub. */
constexpr uint64_t kResetVector = kSharedBase + 0x100;

/** Leak array (the classic Spectre probe array) in the data region. */
constexpr uint64_t kLeakArrayAddr = kDataBase;
constexpr uint64_t kLeakArrayBytes = 0x4000;

/** Scratch area for generated loads/stores. */
constexpr uint64_t kScratchAddr = kDataBase + 0x4000;
constexpr uint64_t kScratchBytes = 0x4000;

/**
 * A hole inside the physical image with no page mapping: accesses
 * raise page faults (the image spans [0, kMemBytes) but the range
 * [kUnmappedAddr, kMemBytes) is left out of the page map).
 */
constexpr uint64_t kUnmappedAddr = kDataBase + kDataSize;

} // namespace dejavuzz::swapmem

#endif // DEJAVUZZ_SWAPMEM_LAYOUT_HH
