#include "sim/golden.hh"

#include <bit>
#include <cstring>

#include "util/bits.hh"
#include "util/logging.hh"

namespace dejavuzz::sim {

using isa::ExcCause;
using isa::Instr;
using isa::Op;
using swapmem::AccessKind;

void
Golden::reset()
{
    pc = swapmem::kSwapBase;
    xregs.fill(0);
    fregs.fill(0);
    priv = isa::Priv::U;
    xregs[2] = swapmem::kScratchAddr + swapmem::kScratchBytes - 64;
}

namespace {

double
asDouble(uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

uint64_t
asBits(double value)
{
    return std::bit_cast<uint64_t>(value);
}

uint64_t
mulhSigned(int64_t a, int64_t b)
{
    return static_cast<uint64_t>(
        (static_cast<__int128>(a) * static_cast<__int128>(b)) >> 64);
}

uint64_t
mulhUnsigned(uint64_t a, uint64_t b)
{
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(a) *
         static_cast<unsigned __int128>(b)) >> 64);
}

} // namespace

GoldenStep
Golden::step(const swapmem::Memory &mem, swapmem::Memory *writable_mem)
{
    GoldenStep rec;
    rec.pc = pc;
    rec.next_pc = pc + 4;

    // Fetch permission check.
    ExcCause fetch_exc = mem.check(pc, 4, AccessKind::Fetch, priv);
    if (fetch_exc != ExcCause::None) {
        rec.exc = fetch_exc;
        return rec;
    }

    Instr instr = isa::decode(mem.fetchWord(pc));
    rec.instr = instr;

    auto rs1 = [&] { return xregs[instr.rs1]; };
    auto rs2 = [&] { return xregs[instr.rs2]; };
    auto setRd = [&](uint64_t value) {
        if (instr.rd != 0)
            xregs[instr.rd] = value;
    };
    auto sext32 = [](uint64_t value) {
        return static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int32_t>(value)));
    };

    switch (instr.op) {
      case Op::LUI:
        setRd(static_cast<uint64_t>(
            signExtend(static_cast<uint64_t>(instr.imm) << 12, 32)));
        break;
      case Op::AUIPC:
        setRd(pc + static_cast<uint64_t>(
                       signExtend(static_cast<uint64_t>(instr.imm) << 12,
                                  32)));
        break;
      case Op::JAL:
        setRd(pc + 4);
        rec.next_pc = pc + static_cast<uint64_t>(instr.imm);
        break;
      case Op::JALR: {
        uint64_t target = (rs1() + static_cast<uint64_t>(instr.imm)) &
                          ~1ULL;
        setRd(pc + 4);
        rec.next_pc = target;
        break;
      }
      case Op::BEQ: rec.branch_taken = rs1() == rs2(); goto branch;
      case Op::BNE: rec.branch_taken = rs1() != rs2(); goto branch;
      case Op::BLT:
        rec.branch_taken = static_cast<int64_t>(rs1()) <
                           static_cast<int64_t>(rs2());
        goto branch;
      case Op::BGE:
        rec.branch_taken = static_cast<int64_t>(rs1()) >=
                           static_cast<int64_t>(rs2());
        goto branch;
      case Op::BLTU: rec.branch_taken = rs1() < rs2(); goto branch;
      case Op::BGEU: rec.branch_taken = rs1() >= rs2(); goto branch;
      branch:
        if (rec.branch_taken)
            rec.next_pc = pc + static_cast<uint64_t>(instr.imm);
        break;

      case Op::LB: case Op::LH: case Op::LW: case Op::LD:
      case Op::LBU: case Op::LHU: case Op::LWU: case Op::FLD: {
        unsigned bytes = isa::accessBytes(instr.op);
        uint64_t addr = rs1() + static_cast<uint64_t>(instr.imm);
        rec.mem_addr = addr;
        ExcCause exc = mem.check(addr, bytes, AccessKind::Load, priv);
        if (exc != ExcCause::None) {
            rec.exc = exc;
            return rec;
        }
        uint64_t raw = mem.read(addr, bytes).v;
        uint64_t value = isa::loadSigned(instr.op)
                             ? static_cast<uint64_t>(
                                   signExtend(raw, bytes * 8))
                             : raw;
        if (instr.op == Op::FLD)
            fregs[instr.rd] = raw;
        else
            setRd(value);
        break;
      }
      case Op::SB: case Op::SH: case Op::SW: case Op::SD:
      case Op::FSD: {
        unsigned bytes = isa::accessBytes(instr.op);
        uint64_t addr = rs1() + static_cast<uint64_t>(instr.imm);
        rec.mem_addr = addr;
        ExcCause exc = mem.check(addr, bytes, AccessKind::Store, priv);
        if (exc != ExcCause::None) {
            rec.exc = exc;
            return rec;
        }
        uint64_t value = instr.op == Op::FSD ? fregs[instr.rs2] : rs2();
        if (writable_mem != nullptr)
            writable_mem->write(addr, bytes, ift::TV{value, 0});
        break;
      }

      case Op::ADDI:  setRd(rs1() + static_cast<uint64_t>(instr.imm)); break;
      case Op::SLTI:
        setRd(static_cast<int64_t>(rs1()) < instr.imm ? 1 : 0);
        break;
      case Op::SLTIU:
        setRd(rs1() < static_cast<uint64_t>(instr.imm) ? 1 : 0);
        break;
      case Op::XORI:  setRd(rs1() ^ static_cast<uint64_t>(instr.imm)); break;
      case Op::ORI:   setRd(rs1() | static_cast<uint64_t>(instr.imm)); break;
      case Op::ANDI:  setRd(rs1() & static_cast<uint64_t>(instr.imm)); break;
      case Op::SLLI:  setRd(rs1() << (instr.imm & 63)); break;
      case Op::SRLI:  setRd(rs1() >> (instr.imm & 63)); break;
      case Op::SRAI:
        setRd(static_cast<uint64_t>(static_cast<int64_t>(rs1()) >>
                                    (instr.imm & 63)));
        break;
      case Op::ADD:  setRd(rs1() + rs2()); break;
      case Op::SUB:  setRd(rs1() - rs2()); break;
      case Op::SLL:  setRd(rs1() << (rs2() & 63)); break;
      case Op::SLT:
        setRd(static_cast<int64_t>(rs1()) < static_cast<int64_t>(rs2())
                  ? 1 : 0);
        break;
      case Op::SLTU: setRd(rs1() < rs2() ? 1 : 0); break;
      case Op::XOR:  setRd(rs1() ^ rs2()); break;
      case Op::SRL:  setRd(rs1() >> (rs2() & 63)); break;
      case Op::SRA:
        setRd(static_cast<uint64_t>(static_cast<int64_t>(rs1()) >>
                                    (rs2() & 63)));
        break;
      case Op::OR:   setRd(rs1() | rs2()); break;
      case Op::AND:  setRd(rs1() & rs2()); break;

      case Op::ADDIW:
        setRd(sext32(rs1() + static_cast<uint64_t>(instr.imm)));
        break;
      case Op::SLLIW: setRd(sext32(rs1() << (instr.imm & 31))); break;
      case Op::SRLIW:
        setRd(sext32(static_cast<uint32_t>(rs1()) >> (instr.imm & 31)));
        break;
      case Op::SRAIW:
        setRd(sext32(static_cast<uint64_t>(
            static_cast<int32_t>(rs1()) >> (instr.imm & 31))));
        break;
      case Op::ADDW: setRd(sext32(rs1() + rs2())); break;
      case Op::SUBW: setRd(sext32(rs1() - rs2())); break;
      case Op::SLLW: setRd(sext32(rs1() << (rs2() & 31))); break;
      case Op::SRLW:
        setRd(sext32(static_cast<uint32_t>(rs1()) >> (rs2() & 31)));
        break;
      case Op::SRAW:
        setRd(sext32(static_cast<uint64_t>(
            static_cast<int32_t>(rs1()) >> (rs2() & 31))));
        break;

      case Op::MUL:  setRd(rs1() * rs2()); break;
      case Op::MULH: setRd(mulhSigned(static_cast<int64_t>(rs1()),
                                      static_cast<int64_t>(rs2())));
        break;
      case Op::MULHU: setRd(mulhUnsigned(rs1(), rs2())); break;
      case Op::DIV: {
        auto a = static_cast<int64_t>(rs1());
        auto b = static_cast<int64_t>(rs2());
        if (b == 0)
            setRd(~0ULL);
        else if (a == INT64_MIN && b == -1)
            setRd(static_cast<uint64_t>(INT64_MIN));
        else
            setRd(static_cast<uint64_t>(a / b));
        break;
      }
      case Op::DIVU:
        setRd(rs2() == 0 ? ~0ULL : rs1() / rs2());
        break;
      case Op::REM: {
        auto a = static_cast<int64_t>(rs1());
        auto b = static_cast<int64_t>(rs2());
        if (b == 0)
            setRd(static_cast<uint64_t>(a));
        else if (a == INT64_MIN && b == -1)
            setRd(0);
        else
            setRd(static_cast<uint64_t>(a % b));
        break;
      }
      case Op::REMU:
        setRd(rs2() == 0 ? rs1() : rs1() % rs2());
        break;
      case Op::MULW: setRd(sext32(rs1() * rs2())); break;
      case Op::DIVW: {
        auto a = static_cast<int32_t>(rs1());
        auto b = static_cast<int32_t>(rs2());
        if (b == 0)
            setRd(~0ULL);
        else if (a == INT32_MIN && b == -1)
            setRd(sext32(static_cast<uint32_t>(INT32_MIN)));
        else
            setRd(sext32(static_cast<uint32_t>(a / b)));
        break;
      }
      case Op::REMW: {
        auto a = static_cast<int32_t>(rs1());
        auto b = static_cast<int32_t>(rs2());
        if (b == 0)
            setRd(sext32(static_cast<uint32_t>(a)));
        else if (a == INT32_MIN && b == -1)
            setRd(0);
        else
            setRd(sext32(static_cast<uint32_t>(a % b)));
        break;
      }

      case Op::FENCE:
      case Op::FENCE_I:
        break;

      case Op::ECALL:
        rec.exc = priv == isa::Priv::M ? ExcCause::EcallM
                                       : ExcCause::EcallU;
        return rec;
      case Op::EBREAK:
        rec.exc = ExcCause::Breakpoint;
        return rec;
      case Op::MRET:
      case Op::SRET:
        if (priv != isa::Priv::M) {
            rec.exc = ExcCause::IllegalInstr;
            return rec;
        }
        priv = isa::Priv::U;
        break;
      case Op::CSRRW:
      case Op::CSRRS:
      case Op::CSRRC:
        // Minimal CSR file: reads return 0; writes are dropped. The
        // generator never relies on CSR values.
        setRd(0);
        break;

      case Op::FADD_D:
        fregs[instr.rd] = asBits(asDouble(fregs[instr.rs1]) +
                                 asDouble(fregs[instr.rs2]));
        break;
      case Op::FSUB_D:
        fregs[instr.rd] = asBits(asDouble(fregs[instr.rs1]) -
                                 asDouble(fregs[instr.rs2]));
        break;
      case Op::FMUL_D:
        fregs[instr.rd] = asBits(asDouble(fregs[instr.rs1]) *
                                 asDouble(fregs[instr.rs2]));
        break;
      case Op::FDIV_D:
        fregs[instr.rd] = asBits(asDouble(fregs[instr.rs1]) /
                                 asDouble(fregs[instr.rs2]));
        break;
      case Op::FMV_X_D:
        setRd(fregs[instr.rs1]);
        break;
      case Op::FMV_D_X:
        fregs[instr.rd] = rs1();
        break;

      case Op::SWAPNEXT:
        // Terminal marker; the runner interprets it.
        break;

      case Op::ILLEGAL:
      default:
        rec.exc = ExcCause::IllegalInstr;
        return rec;
    }

    pc = rec.next_pc;
    return rec;
}

GoldenRun
Golden::run(const swapmem::Memory &mem, uint64_t max_steps,
            swapmem::Memory *writable_mem, bool keep_trace)
{
    GoldenRun result;
    for (uint64_t i = 0; i < max_steps; ++i) {
        GoldenStep rec = step(mem, writable_mem);
        ++result.steps;
        if (keep_trace)
            result.trace.push_back(rec);
        if (rec.exc != ExcCause::None) {
            result.reason = HaltReason::Exception;
            result.exc = rec.exc;
            result.final_pc = rec.pc;
            return result;
        }
        if (rec.instr.op == Op::SWAPNEXT) {
            result.reason = HaltReason::SwapNext;
            result.final_pc = rec.pc;
            return result;
        }
    }
    result.reason = HaltReason::MaxSteps;
    result.final_pc = pc;
    return result;
}

} // namespace dejavuzz::sim
