/**
 * @file
 * Golden architectural simulator (the paper's "ISA simulator").
 *
 * Executes the supported RV64 subset with precise architectural
 * semantics: no speculation, no microarchitectural state. The
 * stimulus generator uses it to compute the operands a trigger needs
 * (branch outcomes, jump targets, faulting addresses) and to predict
 * where a packet architecturally ends.
 */

#ifndef DEJAVUZZ_SIM_GOLDEN_HH
#define DEJAVUZZ_SIM_GOLDEN_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/encoding.hh"
#include "isa/exceptions.hh"
#include "isa/instr.hh"
#include "swapmem/memory.hh"

namespace dejavuzz::sim {

/** Why a golden run stopped. */
enum class HaltReason : uint8_t {
    Running,     ///< step budget not exhausted, no terminal event
    SwapNext,    ///< committed a SWAPNEXT (sequence complete)
    Exception,   ///< took an architectural exception
    MaxSteps,    ///< ran out of the step budget
};

/** Record of one architecturally executed instruction. */
struct GoldenStep
{
    uint64_t pc = 0;
    isa::Instr instr;
    uint64_t next_pc = 0;
    bool branch_taken = false;       ///< meaningful for branches
    uint64_t mem_addr = 0;           ///< meaningful for loads/stores
    isa::ExcCause exc = isa::ExcCause::None;
};

/** Outcome of running a sequence on the golden model. */
struct GoldenRun
{
    HaltReason reason = HaltReason::Running;
    isa::ExcCause exc = isa::ExcCause::None;
    uint64_t final_pc = 0;
    uint64_t steps = 0;
    std::vector<GoldenStep> trace;
};

/** Architectural state + stepper. */
class Golden
{
  public:
    Golden() { reset(); }

    void reset();

    uint64_t pc = 0;
    std::array<uint64_t, 32> xregs{};
    std::array<uint64_t, 32> fregs{};
    isa::Priv priv = isa::Priv::U;

    /**
     * Execute one instruction from @p mem. Exceptions do not redirect
     * to a trap vector; they are reported in the step record (the swap
     * runtime treats any trap as sequence-complete).
     */
    GoldenStep step(const swapmem::Memory &mem,
                    swapmem::Memory *writable_mem = nullptr);

    /**
     * Run until a terminal event or @p max_steps, recording a trace.
     * Stores are applied when @p writable_mem is non-null.
     */
    GoldenRun run(const swapmem::Memory &mem, uint64_t max_steps,
                  swapmem::Memory *writable_mem = nullptr,
                  bool keep_trace = true);
};

} // namespace dejavuzz::sim

#endif // DEJAVUZZ_SIM_GOLDEN_HH
