#include "isa/instr.hh"

#include <array>
#include <cstdio>

namespace dejavuzz::isa {

namespace {

struct OpInfo
{
    const char *name;
    OpClass cls;
};

constexpr size_t kNumOps = static_cast<size_t>(Op::NumOps);

constexpr std::array<OpInfo, kNumOps> kOpInfo = {{
    {"lui", OpClass::IntAlu},    {"auipc", OpClass::IntAlu},
    {"jal", OpClass::Jal},       {"jalr", OpClass::Jalr},
    {"beq", OpClass::Branch},    {"bne", OpClass::Branch},
    {"blt", OpClass::Branch},    {"bge", OpClass::Branch},
    {"bltu", OpClass::Branch},   {"bgeu", OpClass::Branch},
    {"lb", OpClass::Load},       {"lh", OpClass::Load},
    {"lw", OpClass::Load},       {"ld", OpClass::Load},
    {"lbu", OpClass::Load},      {"lhu", OpClass::Load},
    {"lwu", OpClass::Load},
    {"sb", OpClass::Store},      {"sh", OpClass::Store},
    {"sw", OpClass::Store},      {"sd", OpClass::Store},
    {"addi", OpClass::IntAlu},   {"slti", OpClass::IntAlu},
    {"sltiu", OpClass::IntAlu},  {"xori", OpClass::IntAlu},
    {"ori", OpClass::IntAlu},    {"andi", OpClass::IntAlu},
    {"slli", OpClass::IntAlu},   {"srli", OpClass::IntAlu},
    {"srai", OpClass::IntAlu},
    {"add", OpClass::IntAlu},    {"sub", OpClass::IntAlu},
    {"sll", OpClass::IntAlu},    {"slt", OpClass::IntAlu},
    {"sltu", OpClass::IntAlu},   {"xor", OpClass::IntAlu},
    {"srl", OpClass::IntAlu},    {"sra", OpClass::IntAlu},
    {"or", OpClass::IntAlu},     {"and", OpClass::IntAlu},
    {"addiw", OpClass::IntAlu},  {"slliw", OpClass::IntAlu},
    {"srliw", OpClass::IntAlu},  {"sraiw", OpClass::IntAlu},
    {"addw", OpClass::IntAlu},   {"subw", OpClass::IntAlu},
    {"sllw", OpClass::IntAlu},   {"srlw", OpClass::IntAlu},
    {"sraw", OpClass::IntAlu},
    {"mul", OpClass::MulDiv},    {"mulh", OpClass::MulDiv},
    {"mulhu", OpClass::MulDiv},  {"div", OpClass::MulDiv},
    {"divu", OpClass::MulDiv},   {"rem", OpClass::MulDiv},
    {"remu", OpClass::MulDiv},   {"mulw", OpClass::MulDiv},
    {"divw", OpClass::MulDiv},   {"remw", OpClass::MulDiv},
    {"fence", OpClass::Fence},   {"fence.i", OpClass::Fence},
    {"ecall", OpClass::System},  {"ebreak", OpClass::System},
    {"mret", OpClass::System},   {"sret", OpClass::System},
    {"csrrw", OpClass::System},  {"csrrs", OpClass::System},
    {"csrrc", OpClass::System},
    {"fld", OpClass::FpLoad},    {"fsd", OpClass::FpStore},
    {"fadd.d", OpClass::FpAlu},  {"fsub.d", OpClass::FpAlu},
    {"fmul.d", OpClass::FpAlu},  {"fdiv.d", OpClass::FpDiv},
    {"fmv.x.d", OpClass::FpMove},{"fmv.d.x", OpClass::FpMove},
    {"swapnext", OpClass::Custom},
    {"illegal", OpClass::IllegalOp},
}};

constexpr std::array<const char *, 32> kRegNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
};

constexpr std::array<const char *, 32> kFregNames = {
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
    "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
};

} // namespace

OpClass
opClass(Op op)
{
    return kOpInfo[static_cast<size_t>(op)].cls;
}

const char *
mnemonic(Op op)
{
    return kOpInfo[static_cast<size_t>(op)].name;
}

bool
isBranch(Op op)
{
    return opClass(op) == OpClass::Branch;
}

bool
isLoad(Op op)
{
    OpClass c = opClass(op);
    return c == OpClass::Load || c == OpClass::FpLoad;
}

bool
isStore(Op op)
{
    OpClass c = opClass(op);
    return c == OpClass::Store || c == OpClass::FpStore;
}

unsigned
accessBytes(Op op)
{
    switch (op) {
      case Op::LB: case Op::LBU: case Op::SB:
        return 1;
      case Op::LH: case Op::LHU: case Op::SH:
        return 2;
      case Op::LW: case Op::LWU: case Op::SW:
        return 4;
      case Op::LD: case Op::SD: case Op::FLD: case Op::FSD:
        return 8;
      default:
        return 0;
    }
}

bool
loadSigned(Op op)
{
    switch (op) {
      case Op::LB: case Op::LH: case Op::LW:
        return true;
      default:
        return false;
    }
}

bool
writesIntRd(Op op)
{
    switch (opClass(op)) {
      case OpClass::IntAlu:
      case OpClass::MulDiv:
      case OpClass::Load:
      case OpClass::Jal:
      case OpClass::Jalr:
        return true;
      case OpClass::System:
        return op == Op::CSRRW || op == Op::CSRRS || op == Op::CSRRC;
      case OpClass::FpMove:
        return op == Op::FMV_X_D;
      default:
        return false;
    }
}

bool
readsIntRs1(Op op)
{
    switch (op) {
      case Op::LUI: case Op::AUIPC: case Op::JAL:
      case Op::ECALL: case Op::EBREAK: case Op::MRET: case Op::SRET:
      case Op::FENCE: case Op::FENCE_I: case Op::SWAPNEXT:
      case Op::ILLEGAL:
      case Op::FADD_D: case Op::FSUB_D: case Op::FMUL_D:
      case Op::FDIV_D: case Op::FMV_X_D:
        return false;
      default:
        return true;
    }
}

bool
readsIntRs2(Op op)
{
    switch (opClass(op)) {
      case OpClass::Branch:
      case OpClass::Store:
        return true;
      case OpClass::IntAlu:
        // Register-register ALU forms only.
        switch (op) {
          case Op::ADD: case Op::SUB: case Op::SLL: case Op::SLT:
          case Op::SLTU: case Op::XOR: case Op::SRL: case Op::SRA:
          case Op::OR: case Op::AND: case Op::ADDW: case Op::SUBW:
          case Op::SLLW: case Op::SRLW: case Op::SRAW:
            return true;
          default:
            return false;
        }
      case OpClass::MulDiv:
        return true;
      default:
        return false;
    }
}

bool
fpRd(Op op)
{
    switch (op) {
      case Op::FLD: case Op::FADD_D: case Op::FSUB_D:
      case Op::FMUL_D: case Op::FDIV_D: case Op::FMV_D_X:
        return true;
      default:
        return false;
    }
}

bool
fpRs1(Op op)
{
    switch (op) {
      case Op::FADD_D: case Op::FSUB_D: case Op::FMUL_D:
      case Op::FDIV_D: case Op::FMV_X_D:
        return true;
      default:
        return false;
    }
}

bool
fpRs2(Op op)
{
    switch (op) {
      case Op::FADD_D: case Op::FSUB_D: case Op::FMUL_D:
      case Op::FDIV_D: case Op::FSD:
        return true;
      default:
        return false;
    }
}

const char *
regName(unsigned index)
{
    return kRegNames[index & 31];
}

const char *
fregName(unsigned index)
{
    return kFregNames[index & 31];
}

std::string
disasm(const Instr &instr)
{
    char buf[96];
    const char *m = mnemonic(instr.op);
    const char *rd = fpRd(instr.op) ? fregName(instr.rd)
                                    : regName(instr.rd);
    const char *rs1 = fpRs1(instr.op) ? fregName(instr.rs1)
                                      : regName(instr.rs1);
    const char *rs2 = fpRs2(instr.op) ? fregName(instr.rs2)
                                      : regName(instr.rs2);
    long long imm = static_cast<long long>(instr.imm);

    switch (opClass(instr.op)) {
      case OpClass::Branch:
        std::snprintf(buf, sizeof(buf), "%s %s, %s, %lld", m, rs1, rs2,
                      imm);
        break;
      case OpClass::Load:
      case OpClass::FpLoad:
        std::snprintf(buf, sizeof(buf), "%s %s, %lld(%s)", m, rd, imm,
                      rs1);
        break;
      case OpClass::Store:
      case OpClass::FpStore:
        std::snprintf(buf, sizeof(buf), "%s %s, %lld(%s)", m, rs2, imm,
                      rs1);
        break;
      case OpClass::Jal:
        std::snprintf(buf, sizeof(buf), "%s %s, %lld", m, rd, imm);
        break;
      case OpClass::Jalr:
        std::snprintf(buf, sizeof(buf), "%s %s, %lld(%s)", m, rd, imm,
                      rs1);
        break;
      case OpClass::System:
        if (instr.op == Op::CSRRW || instr.op == Op::CSRRS ||
            instr.op == Op::CSRRC) {
            std::snprintf(buf, sizeof(buf), "%s %s, 0x%llx, %s", m, rd,
                          imm, rs1);
        } else {
            std::snprintf(buf, sizeof(buf), "%s", m);
        }
        break;
      case OpClass::Fence:
      case OpClass::Custom:
      case OpClass::IllegalOp:
        std::snprintf(buf, sizeof(buf), "%s", m);
        break;
      default:
        switch (instr.op) {
          case Op::LUI:
          case Op::AUIPC:
            std::snprintf(buf, sizeof(buf), "%s %s, 0x%llx", m, rd,
                          static_cast<unsigned long long>(instr.imm) &
                              0xfffff);
            break;
          case Op::ADDI: case Op::SLTI: case Op::SLTIU: case Op::XORI:
          case Op::ORI: case Op::ANDI: case Op::SLLI: case Op::SRLI:
          case Op::SRAI: case Op::ADDIW: case Op::SLLIW:
          case Op::SRLIW: case Op::SRAIW:
            std::snprintf(buf, sizeof(buf), "%s %s, %s, %lld", m, rd,
                          rs1, imm);
            break;
          default:
            std::snprintf(buf, sizeof(buf), "%s %s, %s, %s", m, rd, rs1,
                          rs2);
            break;
        }
        break;
    }
    return buf;
}

} // namespace dejavuzz::isa
