#include "isa/builder.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace dejavuzz::isa {

Label
ProgBuilder::newLabel()
{
    label_addrs_.push_back(~0ULL);
    return Label{static_cast<int>(label_addrs_.size()) - 1};
}

void
ProgBuilder::bind(Label label)
{
    dv_assert(label.id >= 0 &&
              label.id < static_cast<int>(label_addrs_.size()));
    dv_assert(label_addrs_[label.id] == ~0ULL);
    label_addrs_[label.id] = here();
}

uint64_t
ProgBuilder::labelAddr(Label label) const
{
    dv_assert(label.id >= 0 &&
              label.id < static_cast<int>(label_addrs_.size()));
    uint64_t addr = label_addrs_[label.id];
    dv_assert(addr != ~0ULL);
    return addr;
}

void
ProgBuilder::emit(const Instr &instr)
{
    dv_assert(!finished_);
    instrs_.push_back(instr);
}

void
ProgBuilder::emit(Op op, uint8_t rd, uint8_t rs1, uint8_t rs2,
                  int64_t imm)
{
    Instr instr;
    instr.op = op;
    instr.rd = rd;
    instr.rs1 = rs1;
    instr.rs2 = rs2;
    instr.imm = imm;
    emit(instr);
}

void
ProgBuilder::li(uint8_t rd, uint64_t value)
{
    const auto sval = static_cast<int64_t>(value);
    if (sval >= -2048 && sval <= 2047) {
        addi(rd, 0, sval);
        return;
    }
    if (sval >= INT32_MIN && sval <= INT32_MAX) {
        // lui+addiw handles the full signed 32-bit range.
        int64_t hi = (sval + 0x800) >> 12;
        int64_t lo = sval - (hi << 12);
        emit(Op::LUI, rd, 0, 0, hi & 0xfffff);
        if (lo != 0)
            emit(Op::ADDIW, rd, rd, 0, lo);
        return;
    }
    // General 64-bit: seed rd with the signed high half, then shift in
    // the low 32 bits as three non-negative sub-2048 chunks so addi
    // immediates never sign-extend.
    li(rd, static_cast<uint64_t>(sval >> 32));
    uint64_t low = value & 0xffffffffULL;
    slli(rd, rd, 11);
    if (uint64_t chunk = (low >> 21) & 0x7ff)
        addi(rd, rd, static_cast<int64_t>(chunk));
    slli(rd, rd, 11);
    if (uint64_t chunk = (low >> 10) & 0x7ff)
        addi(rd, rd, static_cast<int64_t>(chunk));
    slli(rd, rd, 10);
    if (uint64_t chunk = low & 0x3ff)
        addi(rd, rd, static_cast<int64_t>(chunk));
}

void
ProgBuilder::branch(Op op, uint8_t rs1, uint8_t rs2, Label target)
{
    dv_assert(isBranch(op));
    fixups_.push_back(Fixup{instrs_.size(), target.id});
    emit(op, 0, rs1, rs2, 0);
}

void
ProgBuilder::branchTo(Op op, uint8_t rs1, uint8_t rs2, uint64_t target)
{
    dv_assert(isBranch(op));
    int64_t offset = static_cast<int64_t>(target) -
                     static_cast<int64_t>(here());
    dv_assert(offset >= -4096 && offset < 4096 && (offset & 1) == 0);
    emit(op, 0, rs1, rs2, offset);
}

void
ProgBuilder::jal(uint8_t rd, Label target)
{
    fixups_.push_back(Fixup{instrs_.size(), target.id});
    emit(Op::JAL, rd, 0, 0, 0);
}

void
ProgBuilder::jalTo(uint8_t rd, uint64_t target)
{
    int64_t offset = static_cast<int64_t>(target) -
                     static_cast<int64_t>(here());
    dv_assert(offset >= -(1 << 20) && offset < (1 << 20) &&
              (offset & 1) == 0);
    emit(Op::JAL, rd, 0, 0, offset);
}

void
ProgBuilder::padTo(uint64_t addr)
{
    dv_assert(addr >= here() && (addr & 3) == 0);
    while (here() < addr)
        nop();
}

const std::vector<Instr> &
ProgBuilder::finish()
{
    if (finished_)
        return instrs_;
    for (const Fixup &fixup : fixups_) {
        uint64_t target = label_addrs_[fixup.label];
        dv_assert(target != ~0ULL);
        uint64_t pc = base_ + 4 * fixup.index;
        int64_t offset = static_cast<int64_t>(target) -
                         static_cast<int64_t>(pc);
        Instr &instr = instrs_[fixup.index];
        if (instr.op == Op::JAL) {
            dv_assert(offset >= -(1 << 20) && offset < (1 << 20));
        } else {
            dv_assert(offset >= -4096 && offset < 4096);
        }
        instr.imm = offset;
    }
    fixups_.clear();
    finished_ = true;
    return instrs_;
}

std::vector<uint32_t>
ProgBuilder::words()
{
    finish();
    std::vector<uint32_t> result;
    result.reserve(instrs_.size());
    for (const Instr &instr : instrs_)
        result.push_back(encode(instr));
    return result;
}

} // namespace dejavuzz::isa
