/**
 * @file
 * RISC-V exception causes and privilege levels (the subset the cores
 * and the golden model raise).
 */

#ifndef DEJAVUZZ_ISA_EXCEPTIONS_HH
#define DEJAVUZZ_ISA_EXCEPTIONS_HH

#include <cstdint>

namespace dejavuzz::isa {

/** mcause values for the exceptions we model. */
enum class ExcCause : uint8_t {
    None = 0xff,
    InstrAddrMisaligned = 0,
    InstrAccessFault = 1,
    IllegalInstr = 2,
    Breakpoint = 3,
    LoadAddrMisaligned = 4,
    LoadAccessFault = 5,
    StoreAddrMisaligned = 6,
    StoreAccessFault = 7,
    EcallU = 8,
    EcallM = 11,
    InstrPageFault = 12,
    LoadPageFault = 13,
    StorePageFault = 15,
};

inline const char *
excName(ExcCause cause)
{
    switch (cause) {
      case ExcCause::None: return "none";
      case ExcCause::InstrAddrMisaligned: return "instr-misalign";
      case ExcCause::InstrAccessFault: return "instr-access-fault";
      case ExcCause::IllegalInstr: return "illegal-instr";
      case ExcCause::Breakpoint: return "breakpoint";
      case ExcCause::LoadAddrMisaligned: return "load-misalign";
      case ExcCause::LoadAccessFault: return "load-access-fault";
      case ExcCause::StoreAddrMisaligned: return "store-misalign";
      case ExcCause::StoreAccessFault: return "store-access-fault";
      case ExcCause::EcallU: return "ecall-u";
      case ExcCause::EcallM: return "ecall-m";
      case ExcCause::InstrPageFault: return "instr-page-fault";
      case ExcCause::LoadPageFault: return "load-page-fault";
      case ExcCause::StorePageFault: return "store-page-fault";
    }
    return "?";
}

/** Privilege levels (no hypervisor). */
enum class Priv : uint8_t { U = 0, S = 1, M = 3 };

} // namespace dejavuzz::isa

#endif // DEJAVUZZ_ISA_EXCEPTIONS_HH
