/**
 * @file
 * Instruction representation for the RV64 subset used as the fuzzing
 * stimulus language.
 *
 * The subset covers RV64I, the M extension, a slice of D (enough for
 * FPU-port-contention experiments), Zicsr/Zifencei slices, privileged
 * returns, and one custom-0 instruction (SWAPNEXT) that the swapMem
 * runtime uses as the sequence-complete hook (the paper triggers an
 * exception and lets the DPI-C trap handler swap; our harness hook is
 * the equivalent, see src/swapmem/).
 */

#ifndef DEJAVUZZ_ISA_INSTR_HH
#define DEJAVUZZ_ISA_INSTR_HH

#include <cstdint>
#include <string>

namespace dejavuzz::isa {

/** Operation identifiers for the supported subset. */
enum class Op : uint8_t {
    // RV64I upper/immediate and control transfer
    LUI, AUIPC, JAL, JALR,
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    // Loads/stores
    LB, LH, LW, LD, LBU, LHU, LWU,
    SB, SH, SW, SD,
    // Integer immediate
    ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI,
    // Integer register
    ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
    // RV64-only word forms
    ADDIW, SLLIW, SRLIW, SRAIW, ADDW, SUBW, SLLW, SRLW, SRAW,
    // M extension
    MUL, MULH, MULHU, DIV, DIVU, REM, REMU, MULW, DIVW, REMW,
    // Fences and system
    FENCE, FENCE_I, ECALL, EBREAK, MRET, SRET,
    CSRRW, CSRRS, CSRRC,
    // D-extension slice (for FPU port contention stimuli)
    FLD, FSD, FADD_D, FSUB_D, FMUL_D, FDIV_D, FMV_X_D, FMV_D_X,
    // Custom-0: sequence-complete hook for the swapMem runtime
    SWAPNEXT,
    // Decode failure marker; raises an illegal-instruction exception
    ILLEGAL,
    NumOps,
};

/** Coarse functional class; drives both the golden model and the DUT. */
enum class OpClass : uint8_t {
    IntAlu,     ///< single-cycle integer op
    MulDiv,     ///< multi-cycle integer multiply/divide
    Load,
    Store,
    Branch,     ///< conditional branch
    Jal,        ///< direct jump (call when rd=ra)
    Jalr,       ///< indirect jump / call / return
    FpAlu,      ///< pipelined FP op
    FpDiv,      ///< long-latency unpipelined FP divide
    FpLoad,
    FpStore,
    FpMove,
    Fence,
    System,     ///< ecall/ebreak/mret/sret/csr
    Custom,     ///< SWAPNEXT
    IllegalOp,
};

/** Decoded (or generator-produced) instruction. */
struct Instr
{
    Op op = Op::ILLEGAL;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int64_t imm = 0;     ///< sign-extended immediate / CSR number
    uint32_t raw = 0;    ///< original encoding when decoded from memory

    bool operator==(const Instr &other) const
    {
        return op == other.op && rd == other.rd && rs1 == other.rs1 &&
               rs2 == other.rs2 && imm == other.imm;
    }
};

/** Functional class of an operation. */
OpClass opClass(Op op);

/** Mnemonic string ("addi", "fdiv.d", ...). */
const char *mnemonic(Op op);

/** True for conditional branches. */
bool isBranch(Op op);
/** True for any load (integer or FP). */
bool isLoad(Op op);
/** True for any store (integer or FP). */
bool isStore(Op op);
/** Byte width of a memory access op (0 for non-memory ops). */
unsigned accessBytes(Op op);
/** True when the load sign-extends its result. */
bool loadSigned(Op op);
/** True for ops that write an integer destination register. */
bool writesIntRd(Op op);
/** True for ops that read rs1 as an integer source. */
bool readsIntRs1(Op op);
/** True for ops that read rs2 as an integer source. */
bool readsIntRs2(Op op);
/** True for ops whose rd/rs are FP registers (per-operand view). */
bool fpRd(Op op);
bool fpRs1(Op op);
bool fpRs2(Op op);

/** Call/return idioms per the RISC-V ABI (drives the RAS). */
inline bool
isCall(const Instr &instr)
{
    return (instr.op == Op::JAL || instr.op == Op::JALR) &&
           (instr.rd == 1 || instr.rd == 5);
}

inline bool
isRet(const Instr &instr)
{
    return instr.op == Op::JALR && instr.rd == 0 &&
           (instr.rs1 == 1 || instr.rs1 == 5) && instr.imm == 0;
}

/** ABI register name ("zero", "ra", "a0", ...). */
const char *regName(unsigned index);
/** FP register name ("ft0", "fa0", ...). */
const char *fregName(unsigned index);

/** Render an instruction as assembly text. */
std::string disasm(const Instr &instr);

/** Common ABI register indices used throughout the generator. */
namespace reg {
constexpr uint8_t zero = 0, ra = 1, sp = 2, gp = 3, tp = 4;
constexpr uint8_t t0 = 5, t1 = 6, t2 = 7;
constexpr uint8_t s0 = 8, s1 = 9;
constexpr uint8_t a0 = 10, a1 = 11, a2 = 12, a3 = 13, a4 = 14, a5 = 15;
constexpr uint8_t a6 = 16, a7 = 17;
constexpr uint8_t s2 = 18, s3 = 19, s4 = 20, s5 = 21, s6 = 22, s7 = 23;
constexpr uint8_t s8 = 24, s9 = 25, s10 = 26, s11 = 27;
constexpr uint8_t t3 = 28, t4 = 29, t5 = 30, t6 = 31;
} // namespace reg

} // namespace dejavuzz::isa

#endif // DEJAVUZZ_ISA_INSTR_HH
