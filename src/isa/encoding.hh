/**
 * @file
 * Binary encoding/decoding for the RV64 subset.
 *
 * Real RISC-V encodings are used so that stimuli stored in simulated
 * memory are genuine machine code: the DUT decodes them independently,
 * and any word we cannot decode raises an illegal-instruction
 * exception, exactly the trigger class Table 3 calls "Illegal
 * Instruction".
 */

#ifndef DEJAVUZZ_ISA_ENCODING_HH
#define DEJAVUZZ_ISA_ENCODING_HH

#include <cstdint>

#include "isa/instr.hh"

namespace dejavuzz::isa {

/** Encode @p instr into its 32-bit RISC-V representation. */
uint32_t encode(const Instr &instr);

/**
 * Decode a 32-bit word. Undecodable words yield Op::ILLEGAL with the
 * raw bits preserved (never fails).
 */
Instr decode(uint32_t word);

/** A guaranteed-undecodable word used to synthesise illegal stimuli. */
constexpr uint32_t kIllegalWord = 0x0000707fu;

/** Canonical NOP (addi x0, x0, 0). */
constexpr uint32_t kNopWord = 0x00000013u;

} // namespace dejavuzz::isa

#endif // DEJAVUZZ_ISA_ENCODING_HH
