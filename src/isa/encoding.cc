#include "isa/encoding.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace dejavuzz::isa {

namespace {

// Base opcodes (bits [6:0]).
constexpr uint32_t kOpLoad = 0x03;
constexpr uint32_t kOpLoadFp = 0x07;
constexpr uint32_t kOpCustom0 = 0x0b;
constexpr uint32_t kOpMiscMem = 0x0f;
constexpr uint32_t kOpImm = 0x13;
constexpr uint32_t kOpAuipc = 0x17;
constexpr uint32_t kOpImm32 = 0x1b;
constexpr uint32_t kOpStore = 0x23;
constexpr uint32_t kOpStoreFp = 0x27;
constexpr uint32_t kOpReg = 0x33;
constexpr uint32_t kOpLui = 0x37;
constexpr uint32_t kOpReg32 = 0x3b;
constexpr uint32_t kOpFp = 0x53;
constexpr uint32_t kOpBranch = 0x63;
constexpr uint32_t kOpJalr = 0x67;
constexpr uint32_t kOpJal = 0x6f;
constexpr uint32_t kOpSystem = 0x73;

uint32_t
encR(uint32_t funct7, uint32_t rs2, uint32_t rs1, uint32_t funct3,
     uint32_t rd, uint32_t opcode)
{
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
           (rd << 7) | opcode;
}

uint32_t
encI(uint32_t imm12, uint32_t rs1, uint32_t funct3, uint32_t rd,
     uint32_t opcode)
{
    return ((imm12 & 0xfff) << 20) | (rs1 << 15) | (funct3 << 12) |
           (rd << 7) | opcode;
}

uint32_t
encS(uint32_t imm12, uint32_t rs2, uint32_t rs1, uint32_t funct3,
     uint32_t opcode)
{
    uint32_t hi = (imm12 >> 5) & 0x7f;
    uint32_t lo = imm12 & 0x1f;
    return (hi << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
           (lo << 7) | opcode;
}

uint32_t
encB(uint32_t imm13, uint32_t rs2, uint32_t rs1, uint32_t funct3,
     uint32_t opcode)
{
    uint32_t b12 = (imm13 >> 12) & 1;
    uint32_t b11 = (imm13 >> 11) & 1;
    uint32_t b10_5 = (imm13 >> 5) & 0x3f;
    uint32_t b4_1 = (imm13 >> 1) & 0xf;
    return (b12 << 31) | (b10_5 << 25) | (rs2 << 20) | (rs1 << 15) |
           (funct3 << 12) | (b4_1 << 8) | (b11 << 7) | opcode;
}

uint32_t
encU(uint32_t imm20, uint32_t rd, uint32_t opcode)
{
    return ((imm20 & 0xfffff) << 12) | (rd << 7) | opcode;
}

uint32_t
encJ(uint32_t imm21, uint32_t rd, uint32_t opcode)
{
    uint32_t b20 = (imm21 >> 20) & 1;
    uint32_t b19_12 = (imm21 >> 12) & 0xff;
    uint32_t b11 = (imm21 >> 11) & 1;
    uint32_t b10_1 = (imm21 >> 1) & 0x3ff;
    return (b20 << 31) | (b10_1 << 21) | (b11 << 20) | (b19_12 << 12) |
           (rd << 7) | opcode;
}

} // namespace

uint32_t
encode(const Instr &instr)
{
    const uint32_t rd = instr.rd & 31;
    const uint32_t rs1 = instr.rs1 & 31;
    const uint32_t rs2 = instr.rs2 & 31;
    const auto imm = static_cast<uint32_t>(instr.imm);

    switch (instr.op) {
      case Op::LUI:   return encU(imm, rd, kOpLui);
      case Op::AUIPC: return encU(imm, rd, kOpAuipc);
      case Op::JAL:   return encJ(imm, rd, kOpJal);
      case Op::JALR:  return encI(imm, rs1, 0, rd, kOpJalr);
      case Op::BEQ:   return encB(imm, rs2, rs1, 0, kOpBranch);
      case Op::BNE:   return encB(imm, rs2, rs1, 1, kOpBranch);
      case Op::BLT:   return encB(imm, rs2, rs1, 4, kOpBranch);
      case Op::BGE:   return encB(imm, rs2, rs1, 5, kOpBranch);
      case Op::BLTU:  return encB(imm, rs2, rs1, 6, kOpBranch);
      case Op::BGEU:  return encB(imm, rs2, rs1, 7, kOpBranch);
      case Op::LB:    return encI(imm, rs1, 0, rd, kOpLoad);
      case Op::LH:    return encI(imm, rs1, 1, rd, kOpLoad);
      case Op::LW:    return encI(imm, rs1, 2, rd, kOpLoad);
      case Op::LD:    return encI(imm, rs1, 3, rd, kOpLoad);
      case Op::LBU:   return encI(imm, rs1, 4, rd, kOpLoad);
      case Op::LHU:   return encI(imm, rs1, 5, rd, kOpLoad);
      case Op::LWU:   return encI(imm, rs1, 6, rd, kOpLoad);
      case Op::SB:    return encS(imm, rs2, rs1, 0, kOpStore);
      case Op::SH:    return encS(imm, rs2, rs1, 1, kOpStore);
      case Op::SW:    return encS(imm, rs2, rs1, 2, kOpStore);
      case Op::SD:    return encS(imm, rs2, rs1, 3, kOpStore);
      case Op::ADDI:  return encI(imm, rs1, 0, rd, kOpImm);
      case Op::SLTI:  return encI(imm, rs1, 2, rd, kOpImm);
      case Op::SLTIU: return encI(imm, rs1, 3, rd, kOpImm);
      case Op::XORI:  return encI(imm, rs1, 4, rd, kOpImm);
      case Op::ORI:   return encI(imm, rs1, 6, rd, kOpImm);
      case Op::ANDI:  return encI(imm, rs1, 7, rd, kOpImm);
      case Op::SLLI:  return encI(imm & 0x3f, rs1, 1, rd, kOpImm);
      case Op::SRLI:  return encI(imm & 0x3f, rs1, 5, rd, kOpImm);
      case Op::SRAI:
        return encI((imm & 0x3f) | 0x400, rs1, 5, rd, kOpImm);
      case Op::ADD:   return encR(0x00, rs2, rs1, 0, rd, kOpReg);
      case Op::SUB:   return encR(0x20, rs2, rs1, 0, rd, kOpReg);
      case Op::SLL:   return encR(0x00, rs2, rs1, 1, rd, kOpReg);
      case Op::SLT:   return encR(0x00, rs2, rs1, 2, rd, kOpReg);
      case Op::SLTU:  return encR(0x00, rs2, rs1, 3, rd, kOpReg);
      case Op::XOR:   return encR(0x00, rs2, rs1, 4, rd, kOpReg);
      case Op::SRL:   return encR(0x00, rs2, rs1, 5, rd, kOpReg);
      case Op::SRA:   return encR(0x20, rs2, rs1, 5, rd, kOpReg);
      case Op::OR:    return encR(0x00, rs2, rs1, 6, rd, kOpReg);
      case Op::AND:   return encR(0x00, rs2, rs1, 7, rd, kOpReg);
      case Op::ADDIW: return encI(imm, rs1, 0, rd, kOpImm32);
      case Op::SLLIW: return encI(imm & 0x1f, rs1, 1, rd, kOpImm32);
      case Op::SRLIW: return encI(imm & 0x1f, rs1, 5, rd, kOpImm32);
      case Op::SRAIW:
        return encI((imm & 0x1f) | 0x400, rs1, 5, rd, kOpImm32);
      case Op::ADDW:  return encR(0x00, rs2, rs1, 0, rd, kOpReg32);
      case Op::SUBW:  return encR(0x20, rs2, rs1, 0, rd, kOpReg32);
      case Op::SLLW:  return encR(0x00, rs2, rs1, 1, rd, kOpReg32);
      case Op::SRLW:  return encR(0x00, rs2, rs1, 5, rd, kOpReg32);
      case Op::SRAW:  return encR(0x20, rs2, rs1, 5, rd, kOpReg32);
      case Op::MUL:   return encR(0x01, rs2, rs1, 0, rd, kOpReg);
      case Op::MULH:  return encR(0x01, rs2, rs1, 1, rd, kOpReg);
      case Op::MULHU: return encR(0x01, rs2, rs1, 3, rd, kOpReg);
      case Op::DIV:   return encR(0x01, rs2, rs1, 4, rd, kOpReg);
      case Op::DIVU:  return encR(0x01, rs2, rs1, 5, rd, kOpReg);
      case Op::REM:   return encR(0x01, rs2, rs1, 6, rd, kOpReg);
      case Op::REMU:  return encR(0x01, rs2, rs1, 7, rd, kOpReg);
      case Op::MULW:  return encR(0x01, rs2, rs1, 0, rd, kOpReg32);
      case Op::DIVW:  return encR(0x01, rs2, rs1, 4, rd, kOpReg32);
      case Op::REMW:  return encR(0x01, rs2, rs1, 6, rd, kOpReg32);
      case Op::FENCE:   return encI(0, 0, 0, 0, kOpMiscMem);
      case Op::FENCE_I: return encI(0, 0, 1, 0, kOpMiscMem);
      case Op::ECALL:   return encI(0x000, 0, 0, 0, kOpSystem);
      case Op::EBREAK:  return encI(0x001, 0, 0, 0, kOpSystem);
      case Op::MRET:    return 0x30200073u;
      case Op::SRET:    return 0x10200073u;
      case Op::CSRRW:   return encI(imm, rs1, 1, rd, kOpSystem);
      case Op::CSRRS:   return encI(imm, rs1, 2, rd, kOpSystem);
      case Op::CSRRC:   return encI(imm, rs1, 3, rd, kOpSystem);
      case Op::FLD:     return encI(imm, rs1, 3, rd, kOpLoadFp);
      case Op::FSD:     return encS(imm, rs2, rs1, 3, kOpStoreFp);
      case Op::FADD_D:  return encR(0x01, rs2, rs1, 0, rd, kOpFp);
      case Op::FSUB_D:  return encR(0x05, rs2, rs1, 0, rd, kOpFp);
      case Op::FMUL_D:  return encR(0x09, rs2, rs1, 0, rd, kOpFp);
      case Op::FDIV_D:  return encR(0x0d, rs2, rs1, 0, rd, kOpFp);
      case Op::FMV_X_D: return encR(0x71, 0, rs1, 0, rd, kOpFp);
      case Op::FMV_D_X: return encR(0x79, 0, rs1, 0, rd, kOpFp);
      case Op::SWAPNEXT:
        return encI(imm, rs1, 0, rd, kOpCustom0);
      case Op::ILLEGAL:
        return instr.raw != 0 ? instr.raw : kIllegalWord;
      default:
        dv_panic("encode: unsupported op %d",
                 static_cast<int>(instr.op));
    }
}

namespace {

Instr
illegal(uint32_t word)
{
    Instr instr;
    instr.op = Op::ILLEGAL;
    instr.raw = word;
    return instr;
}

} // namespace

namespace {

/** Zero the register fields an op does not use (decode hygiene). */
Instr
normalize(Instr instr)
{
    bool uses_rs2 = readsIntRs2(instr.op) || fpRs2(instr.op);
    if (!uses_rs2)
        instr.rs2 = 0;
    bool uses_rs1 = readsIntRs1(instr.op) || fpRs1(instr.op);
    if (!uses_rs1)
        instr.rs1 = 0;
    bool uses_rd = writesIntRd(instr.op) || fpRd(instr.op);
    if (!uses_rd)
        instr.rd = 0;
    return instr;
}

Instr decodeRaw(uint32_t word);

} // namespace

Instr
decode(uint32_t word)
{
    return normalize(decodeRaw(word));
}

namespace {

Instr
decodeRaw(uint32_t word)
{
    Instr instr;
    instr.raw = word;
    const uint32_t opcode = word & 0x7f;
    const auto rd = static_cast<uint8_t>((word >> 7) & 31);
    const uint32_t funct3 = (word >> 12) & 7;
    const auto rs1 = static_cast<uint8_t>((word >> 15) & 31);
    const auto rs2 = static_cast<uint8_t>((word >> 20) & 31);
    const uint32_t funct7 = (word >> 25) & 0x7f;

    instr.rd = rd;
    instr.rs1 = rs1;
    instr.rs2 = rs2;

    const int64_t imm_i = signExtend(word >> 20, 12);
    const int64_t imm_s =
        signExtend((bitsOf(word, 31, 25) << 5) | bitsOf(word, 11, 7), 12);
    const int64_t imm_b = signExtend(
        (bitsOf(word, 31, 31) << 12) | (bitsOf(word, 7, 7) << 11) |
            (bitsOf(word, 30, 25) << 5) | (bitsOf(word, 11, 8) << 1),
        13);
    const int64_t imm_u = static_cast<int64_t>(bitsOf(word, 31, 12));
    const int64_t imm_j = signExtend(
        (bitsOf(word, 31, 31) << 20) | (bitsOf(word, 19, 12) << 12) |
            (bitsOf(word, 20, 20) << 11) | (bitsOf(word, 30, 21) << 1),
        21);

    switch (opcode) {
      case kOpLui:
        instr.op = Op::LUI;
        instr.imm = imm_u;
        return instr;
      case kOpAuipc:
        instr.op = Op::AUIPC;
        instr.imm = imm_u;
        return instr;
      case kOpJal:
        instr.op = Op::JAL;
        instr.imm = imm_j;
        return instr;
      case kOpJalr:
        if (funct3 != 0)
            return illegal(word);
        instr.op = Op::JALR;
        instr.imm = imm_i;
        return instr;
      case kOpBranch: {
        static constexpr Op map[8] = {Op::BEQ, Op::BNE, Op::ILLEGAL,
                                      Op::ILLEGAL, Op::BLT, Op::BGE,
                                      Op::BLTU, Op::BGEU};
        if (map[funct3] == Op::ILLEGAL)
            return illegal(word);
        instr.op = map[funct3];
        instr.imm = imm_b;
        return instr;
      }
      case kOpLoad: {
        static constexpr Op map[8] = {Op::LB, Op::LH, Op::LW, Op::LD,
                                      Op::LBU, Op::LHU, Op::LWU,
                                      Op::ILLEGAL};
        if (map[funct3] == Op::ILLEGAL)
            return illegal(word);
        instr.op = map[funct3];
        instr.imm = imm_i;
        return instr;
      }
      case kOpStore: {
        static constexpr Op map[8] = {Op::SB, Op::SH, Op::SW, Op::SD,
                                      Op::ILLEGAL, Op::ILLEGAL,
                                      Op::ILLEGAL, Op::ILLEGAL};
        if (map[funct3] == Op::ILLEGAL)
            return illegal(word);
        instr.op = map[funct3];
        instr.imm = imm_s;
        return instr;
      }
      case kOpImm: {
        instr.imm = imm_i;
        switch (funct3) {
          case 0: instr.op = Op::ADDI; return instr;
          case 2: instr.op = Op::SLTI; return instr;
          case 3: instr.op = Op::SLTIU; return instr;
          case 4: instr.op = Op::XORI; return instr;
          case 6: instr.op = Op::ORI; return instr;
          case 7: instr.op = Op::ANDI; return instr;
          case 1:
            if ((funct7 >> 1) != 0)
                return illegal(word);
            instr.op = Op::SLLI;
            instr.imm = bitsOf(word, 25, 20);
            return instr;
          case 5:
            if ((funct7 >> 1) == 0x00) {
                instr.op = Op::SRLI;
            } else if ((funct7 >> 1) == 0x10) {
                instr.op = Op::SRAI;
            } else {
                return illegal(word);
            }
            instr.imm = bitsOf(word, 25, 20);
            return instr;
          default:
            return illegal(word);
        }
      }
      case kOpImm32: {
        instr.imm = imm_i;
        switch (funct3) {
          case 0: instr.op = Op::ADDIW; return instr;
          case 1:
            if (funct7 != 0)
                return illegal(word);
            instr.op = Op::SLLIW;
            instr.imm = bitsOf(word, 24, 20);
            return instr;
          case 5:
            if (funct7 == 0x00) {
                instr.op = Op::SRLIW;
            } else if (funct7 == 0x20) {
                instr.op = Op::SRAIW;
            } else {
                return illegal(word);
            }
            instr.imm = bitsOf(word, 24, 20);
            return instr;
          default:
            return illegal(word);
        }
      }
      case kOpReg: {
        if (funct7 == 0x01) {
            static constexpr Op map[8] = {Op::MUL, Op::MULH,
                                          Op::ILLEGAL, Op::MULHU,
                                          Op::DIV, Op::DIVU, Op::REM,
                                          Op::REMU};
            if (map[funct3] == Op::ILLEGAL)
                return illegal(word);
            instr.op = map[funct3];
            return instr;
        }
        if (funct7 == 0x00) {
            static constexpr Op map[8] = {Op::ADD, Op::SLL, Op::SLT,
                                          Op::SLTU, Op::XOR, Op::SRL,
                                          Op::OR, Op::AND};
            instr.op = map[funct3];
            return instr;
        }
        if (funct7 == 0x20) {
            if (funct3 == 0) {
                instr.op = Op::SUB;
                return instr;
            }
            if (funct3 == 5) {
                instr.op = Op::SRA;
                return instr;
            }
            return illegal(word);
        }
        return illegal(word);
      }
      case kOpReg32: {
        if (funct7 == 0x01) {
            switch (funct3) {
              case 0: instr.op = Op::MULW; return instr;
              case 4: instr.op = Op::DIVW; return instr;
              case 6: instr.op = Op::REMW; return instr;
              default: return illegal(word);
            }
        }
        if (funct7 == 0x00) {
            switch (funct3) {
              case 0: instr.op = Op::ADDW; return instr;
              case 1: instr.op = Op::SLLW; return instr;
              case 5: instr.op = Op::SRLW; return instr;
              default: return illegal(word);
            }
        }
        if (funct7 == 0x20) {
            if (funct3 == 0) {
                instr.op = Op::SUBW;
                return instr;
            }
            if (funct3 == 5) {
                instr.op = Op::SRAW;
                return instr;
            }
            return illegal(word);
        }
        return illegal(word);
      }
      case kOpMiscMem:
        if (funct3 == 0) {
            instr.op = Op::FENCE;
            return instr;
        }
        if (funct3 == 1) {
            instr.op = Op::FENCE_I;
            return instr;
        }
        return illegal(word);
      case kOpSystem: {
        if (funct3 == 1 || funct3 == 2 || funct3 == 3) {
            instr.op = funct3 == 1 ? Op::CSRRW
                       : funct3 == 2 ? Op::CSRRS : Op::CSRRC;
            instr.imm = static_cast<int64_t>(word >> 20);
            return instr;
        }
        if (word == 0x00000073u) {
            instr.op = Op::ECALL;
            return instr;
        }
        if (word == 0x00100073u) {
            instr.op = Op::EBREAK;
            return instr;
        }
        if (word == 0x30200073u) {
            instr.op = Op::MRET;
            return instr;
        }
        if (word == 0x10200073u) {
            instr.op = Op::SRET;
            return instr;
        }
        return illegal(word);
      }
      case kOpLoadFp:
        if (funct3 != 3)
            return illegal(word);
        instr.op = Op::FLD;
        instr.imm = imm_i;
        return instr;
      case kOpStoreFp:
        if (funct3 != 3)
            return illegal(word);
        instr.op = Op::FSD;
        instr.imm = imm_s;
        return instr;
      case kOpFp:
        switch (funct7) {
          case 0x01: instr.op = Op::FADD_D; return instr;
          case 0x05: instr.op = Op::FSUB_D; return instr;
          case 0x09: instr.op = Op::FMUL_D; return instr;
          case 0x0d: instr.op = Op::FDIV_D; return instr;
          case 0x71:
            if (rs2 != 0 || funct3 != 0)
                return illegal(word);
            instr.op = Op::FMV_X_D;
            return instr;
          case 0x79:
            if (rs2 != 0 || funct3 != 0)
                return illegal(word);
            instr.op = Op::FMV_D_X;
            return instr;
          default:
            return illegal(word);
        }
      case kOpCustom0:
        if (funct3 != 0)
            return illegal(word);
        instr.op = Op::SWAPNEXT;
        instr.imm = imm_i;
        return instr;
      default:
        return illegal(word);
    }
}

} // namespace

} // namespace dejavuzz::isa
