/**
 * @file
 * Small assembler: builds instruction sequences at a fixed base
 * address with forward-label fixups and the pseudo-instructions the
 * stimulus generator needs (li/la/call/ret/nop).
 */

#ifndef DEJAVUZZ_ISA_BUILDER_HH
#define DEJAVUZZ_ISA_BUILDER_HH

#include <cstdint>
#include <vector>

#include "isa/encoding.hh"
#include "isa/instr.hh"

namespace dejavuzz::isa {

/** Forward-reference label handle. */
struct Label
{
    int id = -1;
};

/**
 * Sequence builder. Instructions are appended at consecutive word
 * addresses starting from the base; branches/jumps may reference
 * labels bound later. finish() resolves all fixups.
 */
class ProgBuilder
{
  public:
    explicit ProgBuilder(uint64_t base_addr) : base_(base_addr) {}

    /** Address the next instruction will occupy. */
    uint64_t here() const { return base_ + 4 * instrs_.size(); }
    uint64_t base() const { return base_; }
    size_t size() const { return instrs_.size(); }

    Label newLabel();
    /** Bind @p label to the current address. */
    void bind(Label label);
    /** Address of a bound label. */
    uint64_t labelAddr(Label label) const;

    /** Append a raw instruction. */
    void emit(const Instr &instr);
    void emit(Op op, uint8_t rd, uint8_t rs1, uint8_t rs2, int64_t imm);

    // --- common forms -------------------------------------------------
    void nop() { emit(Op::ADDI, 0, 0, 0, 0); }
    void addi(uint8_t rd, uint8_t rs1, int64_t imm)
    {
        emit(Op::ADDI, rd, rs1, 0, imm);
    }
    void add(uint8_t rd, uint8_t rs1, uint8_t rs2)
    {
        emit(Op::ADD, rd, rs1, rs2, 0);
    }
    void sub(uint8_t rd, uint8_t rs1, uint8_t rs2)
    {
        emit(Op::SUB, rd, rs1, rs2, 0);
    }
    void andi(uint8_t rd, uint8_t rs1, int64_t imm)
    {
        emit(Op::ANDI, rd, rs1, 0, imm);
    }
    void slli(uint8_t rd, uint8_t rs1, unsigned shamt)
    {
        emit(Op::SLLI, rd, rs1, 0, shamt);
    }
    void ld(uint8_t rd, uint8_t rs1, int64_t off)
    {
        emit(Op::LD, rd, rs1, 0, off);
    }
    void lb(uint8_t rd, uint8_t rs1, int64_t off)
    {
        emit(Op::LB, rd, rs1, 0, off);
    }
    void sd(uint8_t rs2, uint8_t rs1, int64_t off)
    {
        emit(Op::SD, 0, rs1, rs2, off);
    }

    /** Load an arbitrary 64-bit constant (expands to 1-8 instrs). */
    void li(uint8_t rd, uint64_t value);
    /** Load an address (alias of li; addresses are < 2^32 here). */
    void la(uint8_t rd, uint64_t addr) { li(rd, addr); }

    // --- control flow -------------------------------------------------
    void branch(Op op, uint8_t rs1, uint8_t rs2, Label target);
    void branchTo(Op op, uint8_t rs1, uint8_t rs2, uint64_t target);
    void jal(uint8_t rd, Label target);
    void jalTo(uint8_t rd, uint64_t target);
    /** jalr rd, imm(rs1) */
    void jalr(uint8_t rd, uint8_t rs1, int64_t imm)
    {
        emit(Op::JALR, rd, rs1, 0, imm);
    }
    /** Direct jump (jal x0). */
    void j(Label target) { jal(0, target); }
    void jTo(uint64_t target) { jalTo(0, target); }
    /** call: jal ra, target */
    void callTo(uint64_t target) { jalTo(1, target); }
    /** ret: jalr x0, 0(ra) */
    void ret() { emit(Op::JALR, 0, 1, 0, 0); }

    void ecall() { emit(Op::ECALL, 0, 0, 0, 0); }
    void mret() { emit(Op::MRET, 0, 0, 0, 0); }
    void fencei() { emit(Op::FENCE_I, 0, 0, 0, 0); }
    void swapnext(int64_t selector = 0)
    {
        emit(Op::SWAPNEXT, 0, 0, 0, selector);
    }
    /** Append an undecodable word. */
    void illegal()
    {
        Instr instr;
        instr.op = Op::ILLEGAL;
        instr.raw = kIllegalWord;
        emit(instr);
    }

    /** Pad with nops until the next instruction lands at @p addr. */
    void padTo(uint64_t addr);

    /** Resolve fixups; returns the instruction list. */
    const std::vector<Instr> &finish();

    /** Encoded words (calls finish()). */
    std::vector<uint32_t> words();

  private:
    struct Fixup
    {
        size_t index;   ///< instruction to patch
        int label;      ///< target label id
    };

    uint64_t base_;
    std::vector<Instr> instrs_;
    std::vector<uint64_t> label_addrs_;  ///< ~0ULL when unbound
    std::vector<Fixup> fixups_;
    bool finished_ = false;
};

} // namespace dejavuzz::isa

#endif // DEJAVUZZ_ISA_BUILDER_HH
