#include "core/report.hh"

namespace dejavuzz::core {

const char *
triggerKindName(TriggerKind kind)
{
    switch (kind) {
      case TriggerKind::LoadAccessFault: return "ld/st-access-fault";
      case TriggerKind::LoadPageFault: return "ld/st-page-fault";
      case TriggerKind::LoadMisalign: return "ld/st-misalign";
      case TriggerKind::IllegalInstr: return "illegal-instr";
      case TriggerKind::MemDisambiguation: return "mem-disamb";
      case TriggerKind::BranchMispredict: return "branch-mispred";
      case TriggerKind::IndirectMispredict: return "indjump-mispred";
      case TriggerKind::ReturnMispredict: return "return-mispred";
      case TriggerKind::kCount: break;
    }
    return "?";
}

bool
isExceptionTrigger(TriggerKind kind)
{
    switch (kind) {
      case TriggerKind::LoadAccessFault:
      case TriggerKind::LoadPageFault:
      case TriggerKind::LoadMisalign:
      case TriggerKind::IllegalInstr:
        return true;
      default:
        return false;
    }
}

uarch::SquashCause
expectedCause(TriggerKind kind)
{
    switch (kind) {
      case TriggerKind::LoadAccessFault:
      case TriggerKind::LoadPageFault:
      case TriggerKind::LoadMisalign:
      case TriggerKind::IllegalInstr:
        return uarch::SquashCause::Exception;
      case TriggerKind::MemDisambiguation:
        return uarch::SquashCause::MemDisambiguation;
      case TriggerKind::BranchMispredict:
        return uarch::SquashCause::BranchMispredict;
      case TriggerKind::IndirectMispredict:
        return uarch::SquashCause::JumpMispredict;
      case TriggerKind::ReturnMispredict:
        return uarch::SquashCause::ReturnMispredict;
      case TriggerKind::kCount:
        break;
    }
    return uarch::SquashCause::None;
}

const char *
attackTypeName(AttackType type)
{
    return type == AttackType::Meltdown ? "Meltdown" : "Spectre";
}

std::string
BugReport::key() const
{
    std::string k = attackTypeName(attack);
    if (masked_address)
        k += "-sampling";
    k += '|';
    k += triggerKindName(window);
    k += '|';
    for (const auto &component : components) {
        k += component;
        k += ',';
    }
    return k;
}

std::string
BugReport::describe() const
{
    std::string text = attackTypeName(attack);
    if (masked_address)
        text += "-Sampling(masked-addr)";
    text += " via ";
    text += triggerKindName(window);
    text += channel == LeakChannel::TimingDifference
                ? " [timing]: " : " [encoded]: ";
    bool first = true;
    for (const auto &component : components) {
        if (!first)
            text += ", ";
        text += component;
        first = false;
    }
    return text;
}

size_t
FuzzerStats::distinctBugs() const
{
    std::set<std::string> keys;
    for (const auto &bug : bugs)
        keys.insert(bug.key());
    return keys.size();
}

} // namespace dejavuzz::core
