#include "core/report.hh"

namespace dejavuzz::core {

const char *
triggerKindName(TriggerKind kind)
{
    switch (kind) {
      case TriggerKind::LoadAccessFault: return "ld/st-access-fault";
      case TriggerKind::LoadPageFault: return "ld/st-page-fault";
      case TriggerKind::LoadMisalign: return "ld/st-misalign";
      case TriggerKind::IllegalInstr: return "illegal-instr";
      case TriggerKind::MemDisambiguation: return "mem-disamb";
      case TriggerKind::BranchMispredict: return "branch-mispred";
      case TriggerKind::IndirectMispredict: return "indjump-mispred";
      case TriggerKind::ReturnMispredict: return "return-mispred";
      case TriggerKind::PrivEcall: return "priv-ecall";
      case TriggerKind::PrivReturn: return "priv-return";
      case TriggerKind::kCount: break;
    }
    return "?";
}

bool
isExceptionTrigger(TriggerKind kind)
{
    switch (kind) {
      case TriggerKind::LoadAccessFault:
      case TriggerKind::LoadPageFault:
      case TriggerKind::LoadMisalign:
      case TriggerKind::IllegalInstr:
      case TriggerKind::PrivEcall:
        return true;
      default:
        return false;
    }
}

uarch::SquashCause
expectedCause(TriggerKind kind)
{
    switch (kind) {
      case TriggerKind::LoadAccessFault:
      case TriggerKind::LoadPageFault:
      case TriggerKind::LoadMisalign:
      case TriggerKind::IllegalInstr:
      case TriggerKind::PrivEcall:
        return uarch::SquashCause::Exception;
      case TriggerKind::MemDisambiguation:
        return uarch::SquashCause::MemDisambiguation;
      case TriggerKind::BranchMispredict:
        return uarch::SquashCause::BranchMispredict;
      case TriggerKind::IndirectMispredict:
        return uarch::SquashCause::JumpMispredict;
      case TriggerKind::ReturnMispredict:
        return uarch::SquashCause::ReturnMispredict;
      case TriggerKind::PrivReturn:
        return uarch::SquashCause::PrivReturn;
      case TriggerKind::kCount:
        break;
    }
    return uarch::SquashCause::None;
}

const char *
attackTemplateName(AttackTemplate tmpl)
{
    switch (tmpl) {
      case AttackTemplate::SameDomain: return "same-domain";
      case AttackTemplate::MeltdownSupervisor:
        return "meltdown-supervisor";
      case AttackTemplate::PrivTransition: return "priv-transition";
      case AttackTemplate::DoubleFetch: return "double-fetch";
      case AttackTemplate::kCount: break;
    }
    return "?";
}

uint32_t
templateTriggerMask(AttackTemplate tmpl)
{
    switch (tmpl) {
      case AttackTemplate::SameDomain:
        return kLegacyTriggerMask;
      case AttackTemplate::MeltdownSupervisor:
        // The supervisor placement makes U-mode secret accesses raise
        // page faults; only the page-fault window matches that cause.
        return triggerBit(TriggerKind::LoadPageFault);
      case AttackTemplate::PrivTransition:
        return triggerBit(TriggerKind::PrivEcall) |
               triggerBit(TriggerKind::PrivReturn);
      case AttackTemplate::DoubleFetch:
        // The stale-copy hazard needs the original value warmed into
        // the caches, so only non-exception windows qualify.
        return triggerBit(TriggerKind::BranchMispredict) |
               triggerBit(TriggerKind::IndirectMispredict) |
               triggerBit(TriggerKind::ReturnMispredict) |
               triggerBit(TriggerKind::MemDisambiguation);
      case AttackTemplate::kCount:
        break;
    }
    return 0;
}

bool
parseAttackTemplateName(std::string_view name, AttackTemplate &out)
{
    for (unsigned t = 0; t < kAttackTemplates; ++t) {
        auto tmpl = static_cast<AttackTemplate>(t);
        if (name == attackTemplateName(tmpl)) {
            out = tmpl;
            return true;
        }
    }
    return false;
}

std::string
modelMaskNames(uint32_t mask)
{
    std::string out;
    for (unsigned t = 0; t < kAttackTemplates; ++t) {
        if (!(mask & (1u << t)))
            continue;
        if (!out.empty())
            out += ',';
        out += attackTemplateName(static_cast<AttackTemplate>(t));
    }
    return out;
}

const char *
attackTypeName(AttackType type)
{
    switch (type) {
      case AttackType::Meltdown: return "Meltdown";
      case AttackType::Spectre: return "Spectre";
      case AttackType::PrivTransition: return "PrivTransition";
      case AttackType::DoubleFetch: return "DoubleFetch";
    }
    return "?";
}

std::string
BugReport::key() const
{
    std::string k = attackTypeName(attack);
    if (masked_address)
        k += "-sampling";
    k += '|';
    k += triggerKindName(window);
    k += '|';
    for (const auto &component : components) {
        k += component;
        k += ',';
    }
    return k;
}

std::string
BugReport::describe() const
{
    std::string text = attackTypeName(attack);
    if (masked_address)
        text += "-Sampling(masked-addr)";
    text += " via ";
    text += triggerKindName(window);
    text += channel == LeakChannel::TimingDifference
                ? " [timing]: " : " [encoded]: ";
    bool first = true;
    for (const auto &component : components) {
        if (!first)
            text += ", ";
        text += component;
        first = false;
    }
    return text;
}

size_t
FuzzerStats::distinctBugs() const
{
    std::set<std::string> keys;
    for (const auto &bug : bugs)
        keys.insert(bug.key());
    return keys.size();
}

} // namespace dejavuzz::core
