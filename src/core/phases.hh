/**
 * @file
 * The three analysis phases of the DejaVuzz pipeline (paper §4).
 *
 * Phase 1 - transient window triggering: simulate (IFT off), check the
 * RoB IO events for the *intended* window (cause, trigger PC and
 * speculative-path PC all matching the generated test case), then run
 * the training reduction loop.
 *
 * Phase 2 - transient execution exploration: differential simulation
 * under diffIFT, taint-propagation check inside the window's cycle
 * range, and taint-coverage measurement to guide mutation.
 *
 * Phase 3 - transient leakage analysis: window constant-time check
 * across the DUT pair, encode sanitization, and tainted-sink liveness
 * analysis.
 */

#ifndef DEJAVUZZ_CORE_PHASES_HH
#define DEJAVUZZ_CORE_PHASES_HH

#include <optional>

#include "core/report.hh"
#include "core/seed.hh"
#include "core/stimgen.hh"
#include "harness/dualsim.hh"
#include "ift/coverage.hh"

namespace dejavuzz::core {

/** Result of the Phase-1 trigger evaluation on one trace. */
struct WindowCheck
{
    bool triggered = false;
    uint32_t open_cycle = 0;
    uint32_t close_cycle = 0;
    uint32_t transient_executed = 0;
};

/** Does the trace contain the test case's intended window? */
WindowCheck checkWindow(const uarch::TraceLog &trace,
                        const TestCase &tc);

/** Phase-1 driver: trigger evaluation + training reduction. */
class Phase1
{
  public:
    Phase1(harness::DualSim &sim, const harness::SimOptions &options)
        : sim_(&sim), options_(options)
    {}

    /**
     * Evaluate the test case; on success, run training reduction
     * (paper step 1.2): drop each training packet whose removal does
     * not untrigger the window. Returns the number of simulations
     * spent. @p reduce false is the no-reduction ablation.
     */
    unsigned run(TestCase &tc, bool &triggered, bool reduce = true);

  private:
    harness::DualSim *sim_;
    harness::SimOptions options_;
    /** Pooled result buffer, reused across run() calls. */
    harness::DutResult result_;
};

/** Phase-2 result for one differential run. */
struct Phase2Result
{
    bool window_ok = false;       ///< intended window still triggers
    bool taint_propagated = false;///< taints increased inside window
    uint64_t new_coverage = 0;    ///< fresh (module,count) tuples
    harness::DualResult dual;     ///< full differential results
    WindowCheck window;
};

/** Phase-2 driver: differential run + coverage measurement. */
class Phase2
{
  public:
    /**
     * @p gen, when non-null, lets Phase 2 arm the harness's Phase-3
     * lane fusion: the sanitized schedule is built up front and the
     * lockstep run snapshots both lanes at the transient boundary so
     * a following Phase 3 can resume instead of re-simulating the
     * shared prefix. Null (the default) keeps the standalone
     * sanitized run.
     */
    Phase2(harness::DualSim &sim, const harness::SimOptions &options,
           ift::TaintCoverage &coverage,
           const std::array<uint16_t, uarch::kModCount> &module_ids,
           const StimGen *gen = nullptr)
        : sim_(&sim), options_(options), coverage_(&coverage),
          module_ids_(module_ids), gen_(gen)
    {}

    /**
     * Evaluate one differential run. The returned reference points at
     * a pooled member (its buffers are reused on the next call); it
     * stays valid until the next run() on this driver.
     */
    const Phase2Result &run(const TestCase &tc);

  private:
    harness::DualSim *sim_;
    harness::SimOptions options_;
    ift::TaintCoverage *coverage_;
    std::array<uint16_t, uarch::kModCount> module_ids_;
    const StimGen *gen_ = nullptr;
    Phase2Result result_;
    /** Pooled sanitized schedule the armed fusion capture resumes
     *  onto; must outlive the following Phase-3 run. */
    swapmem::SwapSchedule sanitized_;
};

/** Phase-3 verdict. */
struct Phase3Result
{
    bool leak = false;
    std::optional<BugReport> report;
    /** Candidate counts for the liveness evaluation benches. */
    size_t encoded_sinks = 0;
    size_t live_encoded_sinks = 0;
    /** Full core simulations the analysis spent (sanitized dual). */
    unsigned simulations = 0;
};

/** Phase-3 driver: constant time + sanitization + liveness. */
class Phase3
{
  public:
    Phase3(harness::DualSim &sim, const harness::SimOptions &options,
           const StimGen &gen)
        : sim_(&sim), options_(options), gen_(&gen)
    {}

    /**
     * Analyze a Phase-2 result. @p use_liveness false is the paper's
     * no-liveness ablation (reachability only).
     */
    Phase3Result run(const TestCase &tc, const Phase2Result &phase2,
                     bool use_liveness = true);

  private:
    harness::DualSim *sim_;
    harness::SimOptions options_;
    const StimGen *gen_;
    /** Pooled sanitized-run buffer, reused across run() calls. */
    harness::DualResult base_;
};

/**
 * Window constant-time check: compare the two DUTs' commit timing and
 * totals; returns the set of contention components that differ.
 */
std::set<std::string>
constantTimeViolations(const harness::DualResult &dual);

/**
 * Encode sanitization + liveness: sinks tainted in @p orig but not in
 * @p sanitized were written by the encoding block; keep those whose
 * entries are architecturally live. Sinks are matched by interned
 * SinkId (positionally in the common case — both snapshots come from
 * the same per-config-stable enumSinks sequence), so the per-call
 * string map of the seed implementation is gone.
 */
void diffSinks(const std::vector<ift::SinkSnapshot> &orig,
               const std::vector<ift::SinkSnapshot> &sanitized,
               bool use_liveness, std::set<std::string> &live_out,
               size_t &encoded, size_t &live_encoded);

} // namespace dejavuzz::core

#endif // DEJAVUZZ_CORE_PHASES_HH
