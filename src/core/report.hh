/**
 * @file
 * Bug reports and classification (Table 5 axes: attack type,
 * transient window type, encoded timing component).
 */

#ifndef DEJAVUZZ_CORE_REPORT_HH
#define DEJAVUZZ_CORE_REPORT_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/seed.hh"

namespace dejavuzz::core {

/** Attack family per the paper's taxonomy. */
enum class AttackType : uint8_t {
    Meltdown,       ///< transient access across a permission boundary
    Spectre,        ///< mis-steered speculation on permitted data
    PrivTransition, ///< ecall/mret boundary window (stale privilege)
    DoubleFetch,    ///< swap-mechanism TOCTOU on the victim data
};

const char *attackTypeName(AttackType type);

/** How the leak manifests. */
enum class LeakChannel : uint8_t {
    TimingDifference,  ///< window constant-time violation (step 3.1)
    EncodedState,      ///< live tainted sink (step 3.2)
};

/** One reported vulnerability. */
struct BugReport
{
    AttackType attack = AttackType::Spectre;
    TriggerKind window = TriggerKind::BranchMispredict;
    LeakChannel channel = LeakChannel::EncodedState;
    /** Timing components holding the encoded secret ("dcache", ...). */
    std::set<std::string> components;
    /** Secret accessed through a masked illegal address (the B1
     *  Meltdown-Sampling signature). */
    bool masked_address = false;
    uint64_t seed_id = 0;
    uint64_t iteration = 0;

    /** Dedup key: (attack, window, component set). */
    std::string key() const;
    /** Human-readable one-liner. */
    std::string describe() const;
};

/** Campaign-level statistics. */
struct FuzzerStats
{
    uint64_t iterations = 0;
    uint64_t phase1_attempts = 0;
    uint64_t windows_triggered = 0;
    uint64_t phase2_runs = 0;
    uint64_t phase3_runs = 0;
    uint64_t simulations = 0;        ///< total RTL simulations
    uint64_t training_overhead = 0;  ///< Σ TO of triggered windows
    uint64_t effective_training = 0; ///< Σ ETO of triggered windows
    uint64_t coverage_points = 0;
    uint64_t seeds_imported = 0;     ///< corpus seeds adopted
    std::vector<uint64_t> coverage_curve; ///< per-iteration points
    std::vector<BugReport> bugs;
    uint64_t first_bug_iteration = 0;
    double first_bug_seconds = 0.0;

    /** Count of distinct bug keys. */
    size_t distinctBugs() const;
};

} // namespace dejavuzz::core

#endif // DEJAVUZZ_CORE_REPORT_HH
