/**
 * @file
 * Seeds and test cases for the DejaVuzz pipeline (paper §4, Fig. 5).
 *
 * A seed carries the trigger-type choice, the window configuration
 * and the entropy for the random instruction generator; everything a
 * test case contains is reproducible from its seed.
 */

#ifndef DEJAVUZZ_CORE_SEED_HH
#define DEJAVUZZ_CORE_SEED_HH

#include <cstdint>

#include "harness/stimulus.hh"
#include "swapmem/memory.hh"
#include "swapmem/packet.hh"
#include "uarch/tracelog.hh"

namespace dejavuzz::core {

/** Transient-window trigger classes (Table 3 columns). */
enum class TriggerKind : uint8_t {
    LoadAccessFault,    ///< PMP-denied access
    LoadPageFault,      ///< PTE-denied / unmapped access
    LoadMisalign,       ///< misaligned access
    IllegalInstr,       ///< undecodable instruction
    MemDisambiguation,  ///< store->load ordering violation
    BranchMispredict,
    IndirectMispredict,
    ReturnMispredict,
    kCount,
};

constexpr unsigned kTriggerKinds =
    static_cast<unsigned>(TriggerKind::kCount);

const char *triggerKindName(TriggerKind kind);

/** Whether a trigger kind is an architectural-exception window. */
bool isExceptionTrigger(TriggerKind kind);

/** Expected squash cause for each trigger kind. */
uarch::SquashCause expectedCause(TriggerKind kind);

/** Window payload configuration (Phase 2). */
struct WindowConfig
{
    bool meltdown = false;   ///< secret protected in transient packet
    swapmem::SecretProt prot = swapmem::SecretProt::Open;
    bool mask_high_bits = false; ///< MDS-style address mask (B1 bait)
    unsigned encode_ops = 4;     ///< size of the secret encoding block
    uint64_t encode_entropy = 0; ///< generator entropy for the encode
};

/** A fuzzing seed. */
struct Seed
{
    uint64_t id = 0;
    TriggerKind trigger = TriggerKind::BranchMispredict;
    uint64_t entropy = 0;
    WindowConfig window;
};

/** A fully-generated test case. */
struct TestCase
{
    Seed seed;
    swapmem::SwapSchedule schedule;
    harness::StimulusData data;

    uint64_t trigger_addr = 0; ///< address of the trigger instruction
    uint64_t window_addr = 0;  ///< first address of the window body

    /** Transient-packet instruction index range of the window body. */
    size_t window_begin = 0;
    size_t window_end = 0;
    /** Index sub-range holding the secret encoding block. */
    size_t encode_begin = 0;
    size_t encode_end = 0;

    bool has_window_payload = false; ///< Phase 2 completed the window
};

} // namespace dejavuzz::core

#endif // DEJAVUZZ_CORE_SEED_HH
