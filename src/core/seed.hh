/**
 * @file
 * Seeds and test cases for the DejaVuzz pipeline (paper §4, Fig. 5).
 *
 * A seed carries the trigger-type choice, the window configuration
 * and the entropy for the random instruction generator; everything a
 * test case contains is reproducible from its seed.
 */

#ifndef DEJAVUZZ_CORE_SEED_HH
#define DEJAVUZZ_CORE_SEED_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "harness/stimulus.hh"
#include "swapmem/memory.hh"
#include "swapmem/packet.hh"
#include "uarch/tracelog.hh"

namespace dejavuzz::core {

/** Transient-window trigger classes (Table 3 columns). */
enum class TriggerKind : uint8_t {
    LoadAccessFault,    ///< PMP-denied access
    LoadPageFault,      ///< PTE-denied / unmapped access
    LoadMisalign,       ///< misaligned access
    IllegalInstr,       ///< undecodable instruction
    MemDisambiguation,  ///< store->load ordering violation
    BranchMispredict,
    IndirectMispredict,
    ReturnMispredict,
    PrivEcall,          ///< ecall trap shadow (U->M boundary)
    PrivReturn,         ///< mret/sret commit flush (M->U boundary)
    kCount,
};

constexpr unsigned kTriggerKinds =
    static_cast<unsigned>(TriggerKind::kCount);

/** Number of trigger kinds before the privilege-transition pair was
 *  added (the v1 corpus/snapshot bound and the legacy mask width). */
constexpr unsigned kLegacyTriggerKinds = 8;

constexpr uint32_t
triggerBit(TriggerKind kind)
{
    return 1u << static_cast<unsigned>(kind);
}

/** The implicit single-model baseline's trigger set. */
constexpr uint32_t kLegacyTriggerMask =
    (1u << kLegacyTriggerKinds) - 1;
constexpr uint32_t kAllTriggerMask = (1u << kTriggerKinds) - 1;

const char *triggerKindName(TriggerKind kind);

/** Whether a trigger kind is an architectural-exception window. */
bool isExceptionTrigger(TriggerKind kind);

/** Expected squash cause for each trigger kind. */
uarch::SquashCause expectedCause(TriggerKind kind);

/**
 * Attack-model templates (SpecDoctor-style attacker/victim scenario
 * classes the stimulus generator instantiates into concrete windows).
 */
enum class AttackTemplate : uint8_t {
    SameDomain,         ///< the original implicit single model
    MeltdownSupervisor, ///< U attacker, victim data in a supervisor page
    PrivTransition,     ///< ecall/mret boundary windows (U<->M)
    DoubleFetch,        ///< swap-mechanism TOCTOU on the secret
    kCount,
};

constexpr unsigned kAttackTemplates =
    static_cast<unsigned>(AttackTemplate::kCount);

const char *attackTemplateName(AttackTemplate tmpl);

constexpr uint32_t
modelBit(AttackTemplate tmpl)
{
    return 1u << static_cast<unsigned>(tmpl);
}

/** The implicit single-model baseline draws only SameDomain. */
constexpr uint32_t kLegacyModelMask =
    modelBit(AttackTemplate::SameDomain);
constexpr uint32_t kAllModelMask = (1u << kAttackTemplates) - 1;

/** Triggers a template may instantiate (generator compatibility). */
uint32_t templateTriggerMask(AttackTemplate tmpl);

/** Parse an attackTemplateName() string back into its template. */
bool parseAttackTemplateName(std::string_view name,
                             AttackTemplate &out);

/** Comma-joined attackTemplateName()s of the set bits of @p mask. */
std::string modelMaskNames(uint32_t mask);

/**
 * The attacker/victim scenario descriptor a seed is drawn under. The
 * concrete schedule fields (swapmem privilege placement, double-fetch
 * swap) are derived from it by the generator, so a test case remains
 * reproducible from its seed alone.
 */
struct AttackModel
{
    AttackTemplate tmpl = AttackTemplate::SameDomain;
    isa::Priv attacker = isa::Priv::U;
    isa::Priv victim = isa::Priv::U;
    /** Victim data placed in a supervisor page of the swap memory. */
    bool supervisor_victim = false;
};

/** Window payload configuration (Phase 2). */
struct WindowConfig
{
    bool meltdown = false;   ///< secret protected in transient packet
    swapmem::SecretProt prot = swapmem::SecretProt::Open;
    bool mask_high_bits = false; ///< MDS-style address mask (B1 bait)
    unsigned encode_ops = 4;     ///< size of the secret encoding block
    uint64_t encode_entropy = 0; ///< generator entropy for the encode
};

/** A fuzzing seed. */
struct Seed
{
    uint64_t id = 0;
    TriggerKind trigger = TriggerKind::BranchMispredict;
    uint64_t entropy = 0;
    WindowConfig window;
    AttackModel model;
};

/** A fully-generated test case. */
struct TestCase
{
    Seed seed;
    swapmem::SwapSchedule schedule;
    harness::StimulusData data;

    uint64_t trigger_addr = 0; ///< address of the trigger instruction
    uint64_t window_addr = 0;  ///< first address of the window body

    /** Transient-packet instruction index range of the window body. */
    size_t window_begin = 0;
    size_t window_end = 0;
    /** Index sub-range holding the secret encoding block. */
    size_t encode_begin = 0;
    size_t encode_end = 0;

    bool has_window_payload = false; ///< Phase 2 completed the window
};

} // namespace dejavuzz::core

#endif // DEJAVUZZ_CORE_SEED_HH
