#include "core/stimgen.hh"

#include <bit>

#include "swapmem/layout.hh"
#include "util/logging.hh"

namespace dejavuzz::core {

using isa::Label;
using isa::Op;
using isa::ProgBuilder;
using namespace isa::reg;
using swapmem::PacketKind;
using swapmem::SwapPacket;
using swapmem::SwapSchedule;

namespace {

/** Probe base: offset so encode lines never alias the secret line. */
constexpr uint64_t kProbeBase = swapmem::kLeakArrayAddr + 0x100;
/**
 * Scratch sub-areas. The scratch base itself maps to the same
 * direct-mapped cache index as the secret line; every generator touch
 * is offset so warming scratch never evicts the warmed secret.
 */
constexpr uint64_t kSafeScratch = swapmem::kScratchAddr + 0x40;
constexpr uint64_t kDisambAddr = swapmem::kScratchAddr + 0x80;
constexpr uint64_t kColdScratch = swapmem::kScratchAddr + 0x200;

/** Branch operand giving the requested outcome against a1 = 5. */
constexpr int64_t kBranchConst = 5;

int64_t
branchOperand(Op op, bool taken)
{
    switch (op) {
      case Op::BEQ:  return taken ? 5 : 6;
      case Op::BNE:  return taken ? 6 : 5;
      case Op::BLT:  return taken ? 4 : 5;
      case Op::BGE:  return taken ? 5 : 4;
      case Op::BLTU: return taken ? 4 : 5;
      case Op::BGEU: return taken ? 5 : 4;
      default:
        dv_panic("not a branch op");
    }
}

constexpr Op kBranchOps[6] = {Op::BEQ, Op::BNE, Op::BLT,
                              Op::BGE, Op::BLTU, Op::BGEU};

/** Operand-slot roles. */
enum OperandSlot : unsigned {
    kSlotBranchOperand = 0,
    kSlotArchTarget = 1,
    kSlotFaultAddr = 2,
    kSlotDisambAddr = 3,
};

} // namespace

Seed
StimGen::newSeed(Rng &rng, uint64_t id, TriggerKind force,
                 uint32_t trigger_mask, uint32_t model_mask) const
{
    Seed seed;
    seed.id = id;

    // Attack template. The legacy single-model mask draws nothing so
    // pre-existing seed trajectories stay bit-identical.
    model_mask &= kAllModelMask;
    if (model_mask == 0)
        model_mask = kLegacyModelMask;
    if (model_mask != kLegacyModelMask) {
        unsigned count =
            static_cast<unsigned>(std::popcount(model_mask));
        unsigned pick = static_cast<unsigned>(rng.below(count));
        uint32_t bits = model_mask;
        for (unsigned i = 0; i < pick; ++i)
            bits &= bits - 1;
        seed.model.tmpl = static_cast<AttackTemplate>(
            std::countr_zero(bits));
    }
    if (force != TriggerKind::kCount &&
        (templateTriggerMask(seed.model.tmpl) & triggerBit(force)) ==
            0) {
        // A pinned trigger overrides the drawn template: take the
        // first template that can instantiate it.
        for (unsigned t = 0; t < kAttackTemplates; ++t) {
            auto tmpl = static_cast<AttackTemplate>(t);
            if (templateTriggerMask(tmpl) & triggerBit(force)) {
                seed.model.tmpl = tmpl;
                break;
            }
        }
    }

    uint32_t allowed =
        trigger_mask & templateTriggerMask(seed.model.tmpl);
    if (allowed == 0)
        allowed = templateTriggerMask(seed.model.tmpl);
    if (force != TriggerKind::kCount) {
        seed.trigger = force;
    } else {
        unsigned count = static_cast<unsigned>(std::popcount(allowed));
        unsigned pick = static_cast<unsigned>(rng.below(count));
        uint32_t bits = allowed;
        for (unsigned i = 0; i < pick; ++i)
            bits &= bits - 1;
        seed.trigger =
            static_cast<TriggerKind>(std::countr_zero(bits));
    }

    seed.entropy = rng.next();
    seed.window.encode_entropy = rng.next();
    seed.window.encode_ops = 1 + static_cast<unsigned>(rng.below(6));
    seed.window.mask_high_bits = rng.chance(1, 6);
    switch (seed.trigger) {
      case TriggerKind::LoadAccessFault:
        // Meltdown and PMP protection are decoupled: non-meltdown
        // windows fault on the always-denied guard block while the
        // secret stays architecturally readable (Spectre-style).
        seed.window.meltdown = rng.chance(1, 2);
        seed.window.prot = seed.window.meltdown
                               ? swapmem::SecretProt::Pmp
                               : swapmem::SecretProt::Open;
        break;
      case TriggerKind::LoadPageFault:
        seed.window.meltdown = rng.chance(1, 2);
        seed.window.prot = seed.window.meltdown
                               ? swapmem::SecretProt::Pte
                               : swapmem::SecretProt::Open;
        break;
      case TriggerKind::LoadMisalign:
        seed.window.meltdown = rng.chance(1, 2);
        seed.window.prot = swapmem::SecretProt::Open;
        break;
      case TriggerKind::PrivEcall:
      case TriggerKind::PrivReturn:
        // Meltdown flavour keeps the secret PMP-protected: the ecall
        // shadow reads it through transient fault forwarding, and the
        // post-mret window reads it under the stale M privilege.
        seed.window.meltdown = rng.chance(1, 2);
        seed.window.prot = seed.window.meltdown
                               ? swapmem::SecretProt::Pmp
                               : swapmem::SecretProt::Open;
        break;
      default:
        seed.window.meltdown = false;
        seed.window.prot = swapmem::SecretProt::Open;
        break;
    }

    // Template instantiation: privilege pair and victim placement.
    switch (seed.model.tmpl) {
      case AttackTemplate::MeltdownSupervisor:
        seed.model.attacker = isa::Priv::U;
        seed.model.victim = isa::Priv::S;
        seed.model.supervisor_victim = true;
        // The supervisor placement itself protects the secret.
        seed.window.meltdown = true;
        seed.window.prot = swapmem::SecretProt::Open;
        break;
      case AttackTemplate::PrivTransition:
        seed.model.attacker = isa::Priv::U;
        seed.model.victim = isa::Priv::M;
        break;
      case AttackTemplate::SameDomain:
      case AttackTemplate::DoubleFetch:
      case AttackTemplate::kCount:
        break;
    }
    return seed;
}

StimGen::Layout
StimGen::drawLayout(const Seed &seed) const
{
    Rng rng(seed.entropy);
    Layout layout{};
    layout.trigger_addr =
        swapmem::kSwapBase + kTriggerMinOff +
        4 * rng.below((kTriggerMaxOff - kTriggerMinOff) / 4);
    layout.branch_op = kBranchOps[rng.below(6)];
    layout.store_variant = rng.chance(1, 4);
    layout.training_packets = 1 + static_cast<unsigned>(rng.below(3));

    switch (seed.trigger) {
      case TriggerKind::BranchMispredict:
        // Window on the taken side needs taken-training; window on the
        // fall-through triggers with the default not-taken prediction.
        layout.window_on_fallthrough = rng.chance(1, 2);
        layout.arch_taken = layout.window_on_fallthrough;
        layout.window_addr = layout.window_on_fallthrough
                                 ? layout.trigger_addr + 4
                                 : layout.trigger_addr + kTakenWindowGap;
        break;
      case TriggerKind::IndirectMispredict:
      case TriggerKind::ReturnMispredict:
        layout.window_on_fallthrough = false;
        layout.window_addr = layout.trigger_addr + kTakenWindowGap;
        break;
      case TriggerKind::MemDisambiguation:
        layout.window_on_fallthrough = true;
        layout.window_addr = layout.trigger_addr + 4; // the load
        break;
      default: // exceptions
        layout.window_on_fallthrough = true;
        layout.window_addr = layout.trigger_addr + 4;
        break;
    }

    switch (seed.trigger) {
      case TriggerKind::LoadAccessFault:
        layout.fault_addr = seed.window.meltdown
                                ? swapmem::kSecretAddr
                                : swapmem::kPmpGuardAddr;
        break;
      case TriggerKind::LoadPageFault:
        layout.fault_addr = seed.window.meltdown
                                ? swapmem::kSecretAddr
                                : swapmem::kUnmappedAddr;
        break;
      case TriggerKind::LoadMisalign:
        layout.fault_addr = (seed.window.meltdown
                                 ? swapmem::kSecretAddr
                                 : swapmem::kScratchAddr) +
                            1 + rng.below(3);
        break;
      default:
        layout.fault_addr = 0;
        break;
    }
    return layout;
}

void
StimGen::emitSetup(ProgBuilder &prog, const Seed &seed,
                   const Layout &layout) const
{
    // Fixed register conventions (see header).
    prog.li(s1, swapmem::kSecretAddr);
    prog.li(t2, kProbeBase);
    prog.li(t3, kSafeScratch);
    prog.li(t5, 1);
    if (seed.window.mask_high_bits)
        prog.li(t6, 1ULL << 63);

    // FP operands + an architectural divide in flight across the
    // window (Spectre-Rewind-style contention baseline).
    prog.li(t1, 0x4010000000000000ULL); // 4.0
    prog.emit(Op::FMV_D_X, 2, t1, 0, 0);
    prog.li(t1, 0x4000000000000000ULL); // 2.0
    prog.emit(Op::FMV_D_X, 3, t1, 0, 0);

    // Jump-pad / far-line bases for control-transfer encodes.
    prog.li(s5, swapmem::kSwapBase + kJumpPadOff);
    prog.li(s6, swapmem::kSwapBase + 0x1000);

    // Warm the scratch line (hit loads + disambiguation speculation).
    prog.ld(t1, t3, 0);
    if (seed.trigger == TriggerKind::MemDisambiguation) {
        prog.li(a4, kDisambAddr);
        prog.ld(t1, a4, 0); // warm the aliased line
    }

    // Prime the committed RAS so below-TOS entries are live (makes
    // Phantom-RSB-style corruption observable). Return triggers skip
    // this: their trained RAS top must stay in place.
    if (seed.trigger != TriggerKind::ReturnMispredict) {
        for (int i = 0; i < 3; ++i) {
            Label cont = prog.newLabel();
            prog.jal(1, cont);
            prog.nop();
            prog.bind(cont);
        }
    }

    // A cold architectural load kept in flight across the window (the
    // B5 write-back-port victim).
    prog.li(t1, kColdScratch);
    prog.ld(s7, t1, 0);

    // The architectural FP divide racing transient divides.
    prog.emit(Op::FDIV_D, 5, 2, 3, 0);

    // Slow trigger operands: a cold dedicated-region load feeding an
    // unpipelined divide chain delays trigger resolution, widening the
    // window well past the window-line icache refill. The chain must
    // sit immediately before the trigger - emitted earlier it would
    // resolve long before fetch even reaches the trigger.
    auto emitChain = [&](isa::ProgBuilder &out) {
        auto slowLoad = [&](uint8_t rd, unsigned slot) {
            out.li(t1, swapmem::kOperandAddr + 8 * slot);
            out.ld(rd, t1, 0);
            out.emit(Op::DIV, rd, rd, t5, 0);
            out.emit(Op::DIV, rd, rd, t5, 0);
        };
        switch (seed.trigger) {
          case TriggerKind::BranchMispredict:
            out.li(a1, kBranchConst);
            slowLoad(a0, kSlotBranchOperand);
            break;
          case TriggerKind::IndirectMispredict:
            slowLoad(a0, kSlotArchTarget);
            break;
          case TriggerKind::ReturnMispredict:
            slowLoad(1 /*ra*/, kSlotArchTarget);
            break;
          case TriggerKind::LoadAccessFault:
          case TriggerKind::LoadPageFault:
          case TriggerKind::LoadMisalign:
            slowLoad(a0, kSlotFaultAddr);
            break;
          case TriggerKind::MemDisambiguation:
            out.li(a2, 0x5a);
            slowLoad(a3, kSlotDisambAddr);
            break;
          case TriggerKind::IllegalInstr:
          case TriggerKind::PrivEcall:
          case TriggerKind::PrivReturn:
          case TriggerKind::kCount:
            break;
        }
    };
    // Dry-build to learn the chain length (no labels inside).
    isa::ProgBuilder scratch(swapmem::kSwapBase);
    emitChain(scratch);
    uint64_t chain_bytes = 4 * scratch.size();
    dv_assert(prog.here() + chain_bytes <= layout.trigger_addr);
    prog.padTo(layout.trigger_addr - chain_bytes);
    emitChain(prog);
    dv_assert(prog.here() == layout.trigger_addr);
}

void
StimGen::emitTrigger(ProgBuilder &prog, const Seed &seed,
                     const Layout &layout) const
{
    const uint64_t exit_addr = swapmem::kSwapBase + kExitOff;
    switch (seed.trigger) {
      case TriggerKind::BranchMispredict:
        if (layout.window_on_fallthrough) {
            // Architecturally taken to a trampoline past the window
            // body; the caller emits the trampoline.
            prog.branchTo(layout.branch_op, a0, a1,
                          layout.trigger_addr + kTakenWindowGap * 4);
        } else {
            // Architecturally not taken; the taken side is the window.
            prog.branchTo(layout.branch_op, a0, a1, layout.window_addr);
            prog.swapnext(); // architectural continuation
        }
        break;
      case TriggerKind::IndirectMispredict:
        prog.jalr(0, a0, 0); // arch target: exit (operand slot)
        break;
      case TriggerKind::ReturnMispredict:
        prog.ret(); // arch target: exit (via ra)
        break;
      case TriggerKind::LoadAccessFault:
      case TriggerKind::LoadPageFault:
      case TriggerKind::LoadMisalign:
        if (layout.store_variant)
            prog.emit(Op::SD, 0, a0, a1, 0);
        else
            prog.ld(t1, a0, 0);
        break;
      case TriggerKind::IllegalInstr:
        prog.illegal();
        break;
      case TriggerKind::PrivEcall:
        prog.ecall();
        break;
      case TriggerKind::PrivReturn:
        // The privilege-entry training packet left the core in M
        // mode, so the return commits cleanly and flushes the window.
        if (layout.store_variant)
            prog.emit(Op::SRET, 0, 0, 0, 0);
        else
            prog.mret();
        break;
      case TriggerKind::MemDisambiguation:
        prog.sd(a2, a3, 0);  // slow-address store
        prog.ld(s2, a4, 0);  // speculative load (the window opener)
        break;
      case TriggerKind::kCount:
        break;
    }
    (void)exit_addr;
}

std::pair<size_t, size_t>
StimGen::emitWindowBody(ProgBuilder &prog, const Seed &seed,
                        const Layout &layout, bool payload) const
{
    if (!payload) {
        // Phase 1 dummy window: nops only.
        Rng rng(seed.window.encode_entropy);
        unsigned n = 6 + static_cast<unsigned>(rng.below(6));
        for (unsigned i = 0; i < n; ++i)
            prog.nop();
        size_t mark = prog.size();
        return {mark, mark};
    }

    Rng rng(seed.window.encode_entropy);

    // Space budget: the body must not run into the branch trampoline
    // (fall-through branch windows) or the jump pad.
    uint64_t body_end = swapmem::kSwapBase + kJumpPadOff;
    if (seed.trigger == TriggerKind::BranchMispredict &&
        layout.window_on_fallthrough) {
        body_end = layout.trigger_addr + kTakenWindowGap * 4;
    }
    const size_t body_limit =
        static_cast<size_t>((body_end - prog.here()) / 4);
    const size_t body_start = prog.size();

    // --- secret access block -------------------------------------------
    unsigned widths[4] = {1, 2, 4, 8};
    unsigned width = widths[rng.below(4)];
    Op access_ops[4] = {Op::LB, Op::LH, Op::LW, Op::LD};
    Op access = access_ops[width == 1 ? 0 : width == 2 ? 1
                           : width == 4 ? 2 : 3];
    int64_t offset = static_cast<int64_t>(
        rng.below(swapmem::kSecretBytes / width) * width);
    uint8_t addr_reg = s1;
    if (seed.window.mask_high_bits) {
        // MDS-style masked (illegal) address: bait for B1 truncation.
        prog.emit(Op::OR, s2, s1, t6, 0);
        addr_reg = s2;
    }
    prog.emit(access, s0, addr_reg, 0, offset);

    // --- secret encoding block -----------------------------------------
    size_t encode_begin = prog.size();
    bool ras_primed = seed.trigger != TriggerKind::ReturnMispredict;
    for (unsigned g = 0; g < seed.window.encode_ops; ++g) {
        // Leave room for the largest gadget (~18 instructions).
        if (prog.size() - body_start + 20 > body_limit)
            break;
        unsigned pick = static_cast<unsigned>(rng.below(11));
        if (pick <= 3) {
            // dcache encode: 1-3 probe lines indexed by secret bits -
            // the per-module tainted-entry count varies with both the
            // probe count and the secret, diversifying coverage.
            unsigned probes = 1 + static_cast<unsigned>(rng.below(3));
            for (unsigned p = 0; p < probes; ++p) {
                unsigned bit = static_cast<unsigned>(rng.below(8));
                prog.emit(Op::SRLI, t4, s0, 0, bit);
                prog.andi(t4, t4, 3);
                prog.slli(t4, t4, 6);
                prog.add(t4, t4, t2);
                prog.ld(s3, t4, 64 * 4 * p);
            }
        } else if (pick == 10) {
            // PRF spray: an arithmetic diffusion chain tainting a
            // variable number of physical registers.
            unsigned chain = 1 + static_cast<unsigned>(rng.below(5));
            uint8_t dests[5] = {s2, s3, s4, s8, s9};
            for (unsigned c = 0; c < chain; ++c) {
                prog.emit(Op::XOR, dests[c], s0, dests[c], 0);
                prog.emit(Op::SRLI, s0, s0, 0, 1);
            }
        } else if (pick == 4) {
            // FP-divide contention behind a secret branch.
            prog.andi(t4, s0, 1);
            Label skip = prog.newLabel();
            prog.branch(Op::BEQ, t4, zero, skip);
            prog.emit(Op::FDIV_D, 6, 2, 3, 0);
            prog.bind(skip);
        } else if (pick == 5) {
            // TLB encode: page indexed by a secret bit.
            prog.andi(t4, s0, 1);
            prog.slli(t4, t4, 12);
            prog.add(t4, t4, t3);
            prog.ld(s4, t4, 0);
        } else if (pick == 6 && ras_primed) {
            // RAS spray behind a secret branch: enough transient calls
            // to wrap the stack and corrupt below-TOS entries (B2).
            prog.andi(t4, s0, 1);
            Label skip = prog.newLabel();
            prog.branch(Op::BEQ, t4, zero, skip);
            for (unsigned i = 0; i < cfg_.ras_entries; ++i)
                prog.emit(Op::JAL, 1, 0, 0, 4);
            prog.bind(skip);
        } else if (pick == 7) {
            // Store-queue encode (address and data tainted).
            prog.andi(t4, s0, 0xf);
            prog.slli(t4, t4, 3);
            prog.add(t4, t4, t3);
            prog.sd(s0, t4, 0);
        } else if (pick == 8) {
            // Secret-dependent hit loads stealing the write-back port
            // from the in-flight cold load (B5).
            prog.andi(t4, s0, 1);
            Label skip = prog.newLabel();
            prog.branch(Op::BEQ, t4, zero, skip);
            prog.ld(t1, t3, 0);
            prog.ld(t1, t3, 8);
            prog.ld(t1, t3, 16);
            prog.bind(skip);
        } else if (pick == 9) {
            // Terminal: transient indirect jump to a secret-indexed
            // target (predictor encode via the jump pad, or a far
            // icache line for fetch-port contention, B4).
            bool far = rng.chance(1, 2);
            prog.andi(t4, s0, 1);
            prog.slli(t4, t4, far ? 11 : 3);
            prog.add(t4, t4, far ? s6 : s5);
            prog.jalr(0, t4, 0);
            break; // control leaves the window body
        } else {
            // Arithmetic diffusion of the secret.
            prog.emit(Op::XOR, s4, s0, t2, 0);
            prog.add(s4, s4, s0);
        }
    }
    size_t encode_end = prog.size();
    return {encode_begin, encode_end};
}

SwapPacket
StimGen::buildTransient(const Seed &seed, const Layout &layout,
                        bool payload, TestCase &tc) const
{
    ProgBuilder prog(swapmem::kSwapBase);
    emitSetup(prog, seed, layout);
    emitTrigger(prog, seed, layout);

    const uint64_t exit_addr = swapmem::kSwapBase + kExitOff;
    const uint64_t pad_addr = swapmem::kSwapBase + kJumpPadOff;

    bool branch_ft_window =
        seed.trigger == TriggerKind::BranchMispredict &&
        layout.window_on_fallthrough;

    prog.padTo(layout.window_addr > prog.here() ? layout.window_addr
                                                : prog.here());

    auto [enc_begin, enc_end] = emitWindowBody(prog, seed, layout,
                                               payload);

    if (branch_ft_window) {
        // The architecturally-taken branch lands on this trampoline.
        prog.padTo(layout.trigger_addr + kTakenWindowGap * 4);
        prog.jTo(exit_addr);
    }

    prog.padTo(pad_addr);
    // Jump pad: nops flowing into the exit.
    prog.padTo(exit_addr);
    prog.swapnext();
    prog.nop();
    prog.nop();

    tc.trigger_addr = layout.trigger_addr;
    tc.window_addr = layout.window_addr;
    tc.encode_begin = enc_begin;
    tc.encode_end = enc_end;
    tc.has_window_payload = payload;

    SwapPacket packet;
    packet.label = "transient";
    packet.kind = PacketKind::Transient;
    packet.instrs = prog.finish();
    return packet;
}

SwapPacket
StimGen::derivedTraining(const Seed &seed, const Layout &layout,
                         unsigned index, Rng &rng) const
{
    ProgBuilder prog(swapmem::kSwapBase);

    switch (seed.trigger) {
      case TriggerKind::BranchMispredict: {
        // Train the opposite direction of the transient architectural
        // outcome, with the control flow matched to the window.
        bool train_taken = !layout.arch_taken;
        prog.li(a0, branchOperand(layout.branch_op, train_taken));
        prog.li(a1, kBranchConst);
        prog.padTo(layout.trigger_addr);
        prog.branchTo(layout.branch_op, a0, a1, layout.window_addr);
        prog.swapnext(); // not-taken continuation
        if (layout.window_addr > prog.here()) {
            prog.padTo(layout.window_addr);
            prog.swapnext(); // taken continuation (the window's slot)
        }
        break;
      }
      case TriggerKind::IndirectMispredict:
        // Same jump address, target steered to the window.
        prog.li(t5, layout.window_addr);
        prog.padTo(layout.trigger_addr);
        prog.jalr(0, t5, 0);
        prog.padTo(layout.window_addr);
        prog.swapnext();
        break;
      case TriggerKind::ReturnMispredict:
        // A call whose return address is the window start; the callee
        // exits without returning, leaving the RAS entry armed.
        prog.padTo(layout.window_addr - 4);
        prog.emit(Op::JAL, 1, 0, 0, 8); // call over the next slot
        prog.nop();                     // (the window-start slot)
        prog.swapnext();                // callee: exit w/o ret
        break;
      default:
        // Exception / disambiguation windows have no trainable
        // predictor state; emit a placeholder computation that the
        // reduction strategy will discard.
        prog.li(t5, rng.next() & 0xfff);
        prog.padTo(layout.trigger_addr);
        prog.add(t5, t5, t5);
        break;
    }
    SwapPacket packet;
    packet.label = "trigger_train_" + std::to_string(index);
    packet.kind = PacketKind::TriggerTrain;
    packet.instrs = prog.finish();
    if (packet.instrs.empty() ||
        packet.instrs.back().op != Op::SWAPNEXT) {
        isa::Instr end;
        end.op = Op::SWAPNEXT;
        packet.instrs.push_back(end);
    }
    return packet;
}

SwapPacket
StimGen::randomTraining(Rng &rng, unsigned index) const
{
    // DejaVuzz*: unaligned, control-flow-agnostic random instructions.
    ProgBuilder prog(swapmem::kSwapBase);
    prog.li(t3, swapmem::kScratchAddr);
    unsigned count = 60 + static_cast<unsigned>(rng.below(80));
    for (unsigned i = 0; i < count; ++i) {
        auto rd = static_cast<uint8_t>(5 + rng.below(3));
        auto rs = static_cast<uint8_t>(5 + rng.below(3));
        unsigned pick = static_cast<unsigned>(rng.below(20));
        if (pick < 12) {
            static constexpr Op kArith[5] = {Op::ADD, Op::SUB, Op::XOR,
                                             Op::MUL, Op::AND};
            prog.emit(kArith[rng.below(5)], rd, rs,
                      static_cast<uint8_t>(5 + rng.below(3)), 0);
        } else if (pick < 14) {
            prog.addi(rd, rs, static_cast<int64_t>(rng.below(64)));
        } else if (pick < 16) {
            prog.ld(rd, t3, static_cast<int64_t>(8 * rng.below(16)));
        } else if (pick < 18) {
            // Random forward branch.
            Label target = prog.newLabel();
            static constexpr Op kBr[3] = {Op::BEQ, Op::BNE, Op::BLT};
            prog.branch(kBr[rng.below(3)], rd, rs, target);
            unsigned skip = 1 + static_cast<unsigned>(rng.below(3));
            for (unsigned k = 0; k < skip; ++k)
                prog.nop();
            prog.bind(target);
        } else if (pick < 19) {
            prog.emit(Op::JAL, 1, 0, 0, 4); // call-to-next (RAS push)
        } else {
            // Forward indirect jump to a known later address
            // (li expands to two instructions for these values).
            uint64_t target = prog.here() + 16 + 4 * rng.below(4);
            prog.li(t5, target);
            prog.jalr(0, t5, 0);
            prog.padTo(target);
        }
    }
    prog.swapnext();

    SwapPacket packet;
    packet.label = "trigger_train_rand_" + std::to_string(index);
    packet.kind = PacketKind::TriggerTrain;
    packet.instrs = prog.finish();
    return packet;
}

void
StimGen::fillOperands(TestCase &tc, const Layout &layout) const
{
    auto &operands = tc.data.operands;
    if (operands.size() < 8)
        operands.resize(8);
    const uint64_t exit_addr = swapmem::kSwapBase + kExitOff;
    operands[kSlotBranchOperand] = static_cast<uint64_t>(
        branchOperand(layout.branch_op, layout.arch_taken));
    operands[kSlotArchTarget] = exit_addr;
    operands[kSlotFaultAddr] = layout.fault_addr;
    operands[kSlotDisambAddr] = kDisambAddr;
}

TestCase
StimGen::generatePhase1(const Seed &seed, bool derived_training) const
{
    TestCase tc;
    tc.seed = seed;
    Layout layout = drawLayout(seed);

    Rng data_rng(seed.entropy ^ 0xa5a5a5a5ULL);
    tc.data = harness::StimulusData::random(data_rng);
    fillOperands(tc, layout);

    Rng train_rng(seed.entropy ^ 0x5c5c5c5cULL);
    for (unsigned i = 0; i < layout.training_packets; ++i) {
        tc.schedule.packets.push_back(
            derived_training ? derivedTraining(seed, layout, i, train_rng)
                             : randomTraining(train_rng, i));
    }
    if (seed.trigger == TriggerKind::PrivReturn) {
        // Privilege entry: an ecall traps to M mode and the trap
        // itself advances the swap runtime, so the transient packet
        // starts executing privileged until its mret/sret commits.
        // Training reduction cannot drop this packet - without it the
        // return raises IllegalInstr and the window check fails.
        ProgBuilder entry(swapmem::kSwapBase);
        entry.nop();
        entry.nop();
        entry.ecall();
        SwapPacket entry_packet;
        entry_packet.label = "priv_entry";
        entry_packet.kind = PacketKind::TriggerTrain;
        entry_packet.instrs = entry.finish();
        tc.schedule.packets.push_back(entry_packet);
    }
    tc.schedule.packets.push_back(
        buildTransient(seed, layout, false, tc));
    tc.schedule.transient_prot = seed.window.prot;
    tc.schedule.victim_supervisor = seed.model.supervisor_victim;
    tc.schedule.double_fetch =
        seed.model.tmpl == AttackTemplate::DoubleFetch;
    return tc;
}

void
StimGen::completeWindow(TestCase &tc) const
{
    Layout layout = drawLayout(tc.seed);

    // Window training derivation: warm the secret into the d-cache /
    // fill buffers while it is still accessible, and prime the TLB
    // entries of the pages the window body touches (otherwise the
    // encode loads spend the window translating). Scheduled before
    // the trigger training so it cannot invalidate the trained state.
    ProgBuilder warm(swapmem::kSwapBase);
    warm.li(s1, swapmem::kSecretAddr);
    warm.ld(t5, s1, 0);
    warm.ld(t5, s1, 8);
    warm.li(t1, kProbeBase);
    warm.ld(t5, t1, 0x400); // probe page TLB (line stays cold)
    warm.li(t1, kSafeScratch);
    warm.ld(t5, t1, 0);
    warm.swapnext();
    SwapPacket warm_packet;
    warm_packet.label = "window_train_0";
    warm_packet.kind = PacketKind::WindowTrain;
    warm_packet.instrs = warm.finish();

    // Rebuild the transient packet with the real payload.
    size_t transient_index = tc.schedule.transientIndex();
    tc.schedule.packets[transient_index] =
        buildTransient(tc.seed, layout, true, tc);

    // Remove any previous window training, then prepend the new one.
    std::vector<SwapPacket> packets;
    packets.push_back(warm_packet);
    for (auto &packet : tc.schedule.packets) {
        if (packet.kind != PacketKind::WindowTrain)
            packets.push_back(std::move(packet));
    }
    tc.schedule.packets = std::move(packets);
}

void
StimGen::mutateWindow(TestCase &tc, uint64_t new_entropy) const
{
    tc.seed.window.encode_entropy = new_entropy;
    Rng rng(new_entropy);
    tc.seed.window.encode_ops = 1 + static_cast<unsigned>(rng.below(6));
    if (tc.seed.window.prot == swapmem::SecretProt::Open ||
        tc.seed.trigger == TriggerKind::LoadMisalign) {
        tc.seed.window.mask_high_bits = rng.chance(1, 6);
    }
    Layout layout = drawLayout(tc.seed);
    size_t transient_index = tc.schedule.transientIndex();
    tc.schedule.packets[transient_index] =
        buildTransient(tc.seed, layout, true, tc);
}

SwapSchedule
StimGen::sanitizedSchedule(const TestCase &tc) const
{
    dv_assert(tc.has_window_payload);
    SwapSchedule sanitized = tc.schedule;
    size_t transient_index = sanitized.transientIndex();
    auto &instrs = sanitized.packets[transient_index].instrs;
    isa::Instr nop;
    nop.op = Op::ADDI;
    for (size_t i = tc.encode_begin;
         i < tc.encode_end && i < instrs.size(); ++i) {
        instrs[i] = nop;
    }
    return sanitized;
}

} // namespace dejavuzz::core
