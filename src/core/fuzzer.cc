#include "core/fuzzer.hh"

#include <algorithm>
#include <chrono>

#include "obs/telemetry.hh"
#include "util/logging.hh"
#include "util/wallguard.hh"

namespace dejavuzz::core {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

} // namespace

Fuzzer::Fuzzer(const uarch::CoreConfig &config,
               const FuzzerOptions &options)
    : cfg_(config), options_(options), gen_(config), sim_(config),
      rng_(options.master_seed)
{
    // ift_mode is the pipeline's mode knob; the embedded SimOptions
    // default (Off) was never meant to win over it.
    options_.sim.mode = options_.ift_mode;
    module_ids_ = uarch::Core::registerModules(coverage_, cfg_);
}

Fuzzer::RunSlice::RunSlice(Fuzzer &fuzzer) : fuzzer_(fuzzer)
{
    dv_assert(!fuzzer_.in_run_);
    fuzzer_.in_run_ = true;
    fuzzer_.slice_begin_ = nowSeconds();
}

Fuzzer::RunSlice::~RunSlice()
{
    fuzzer_.active_seconds_ += nowSeconds() - fuzzer_.slice_begin_;
    fuzzer_.in_run_ = false;
}

double
Fuzzer::elapsedSeconds() const
{
    double total = active_seconds_;
    if (in_run_)
        total += nowSeconds() - slice_begin_;
    return total;
}

bool
Fuzzer::triggerOnce(TriggerKind kind, uint64_t entropy, size_t &to,
                    size_t &eto)
{
    Rng rng(entropy);
    StimGen gen(cfg_);
    Seed seed = gen.newSeed(rng, 0, kind);

    Phase1 phase1(sim_, options_.sim);
    for (unsigned attempt = 0; attempt <= options_.phase1_retries;
         ++attempt) {
        TestCase tc =
            gen.generatePhase1(seed, options_.derived_training);
        bool triggered = false;
        stats_.simulations +=
            phase1.run(tc, triggered, options_.training_reduction);
        if (triggered) {
            to = tc.schedule.trainingOverhead();
            eto = tc.schedule.effectiveTrainingOverhead();
            return true;
        }
        seed.entropy = rng.next();
        seed.window.encode_entropy = rng.next();
    }
    return false;
}

void
Fuzzer::iterate(Phase1 &phase1, Phase2 &phase2, Phase3 &phase3)
{
    ++stats_.iterations;
    obs::counterAdd(obs::Ctr::Iterations);

    if (!active_) {
        // Adopt a stolen corpus seed before generating from scratch:
        // resume it in Phase-2 mutation mode with fresh entropy so
        // each adopter explores a distinct neighbourhood.
        if (!injected_.empty()) {
            current_ = std::move(injected_.front());
            injected_.pop_front();
            ++stats_.seeds_imported;
            gen_.mutateWindow(current_, rng_.next());
            active_ = true;
            mutations_left_ = options_.max_mutations;
            if (options_.record_coverage_curve)
                stats_.coverage_curve.push_back(coverage_.points());
            return;
        }

        // --- Phase 1: new seed, trigger generation + reduction ------
        ++stats_.phase1_attempts;
        Seed seed =
            gen_.newSeed(rng_, next_seed_id_++, TriggerKind::kCount,
                         options_.trigger_mask, options_.model_mask);
        current_ = gen_.generatePhase1(seed, options_.derived_training);
        bool triggered = false;
        stats_.simulations += phase1.run(current_, triggered,
                                         options_.training_reduction);
        // Regenerate the window up to phase1_retries times with fresh
        // entropy before giving the iteration up, mirroring
        // triggerOnce(): the Rng only advances on failure, so seeds
        // whose first window triggers are unaffected.
        for (unsigned attempt = 0;
             !triggered && attempt < options_.phase1_retries;
             ++attempt) {
            seed.entropy = rng_.next();
            seed.window.encode_entropy = rng_.next();
            current_ =
                gen_.generatePhase1(seed, options_.derived_training);
            stats_.simulations += phase1.run(
                current_, triggered, options_.training_reduction);
        }
        if (!triggered) {
            if (options_.record_coverage_curve)
                stats_.coverage_curve.push_back(coverage_.points());
            return;
        }
        ++stats_.windows_triggered;
        auto &tstats =
            trigger_stats_[static_cast<unsigned>(seed.trigger)];
        ++tstats.windows;
        tstats.training_overhead +=
            current_.schedule.trainingOverhead();
        tstats.effective_overhead +=
            current_.schedule.effectiveTrainingOverhead();
        stats_.training_overhead +=
            current_.schedule.trainingOverhead();
        stats_.effective_training +=
            current_.schedule.effectiveTrainingOverhead();

        gen_.completeWindow(current_);
        active_ = true;
        mutations_left_ = options_.max_mutations;
        if (options_.record_coverage_curve)
            stats_.coverage_curve.push_back(coverage_.points());
        return;
    }

    // --- Phase 2: differential exploration --------------------------
    ++stats_.phase2_runs;
    const Phase2Result &explored = phase2.run(current_);
    stats_.simulations += explored.dual.sim_passes;

    if (explored.window_ok && explored.taint_propagated &&
        explored.new_coverage > 0 && on_interesting_) {
        on_interesting_(current_, explored.new_coverage);
    }

    bool retire = false;
    if (!explored.window_ok) {
        retire = true;
    } else if (explored.taint_propagated) {
        // --- Phase 3: leakage analysis -------------------------------
        ++stats_.phase3_runs;
        Phase3Result verdict =
            phase3.run(current_, explored, options_.use_liveness);
        stats_.simulations += verdict.simulations;
        if (verdict.leak && verdict.report.has_value()) {
            BugReport report = *verdict.report;
            report.iteration = stats_.iterations;
            if (stats_.bugs.empty()) {
                stats_.first_bug_iteration = stats_.iterations;
                stats_.first_bug_seconds = elapsedSeconds();
            }
            stats_.bugs.push_back(std::move(report));
            // The active case IS the reproducer: replayCase() on a
            // copy of it re-derives the identical leak verdict.
            if (capture_bug_cases_)
                bug_cases_.push_back(current_);
        }
    }

    // Coverage-guided mutation (paper step 2.2 feedback): windows
    // whose coverage gain beats the running average earn extra
    // mutation budget; unproductive seeds retire quickly. The
    // DejaVuzz- ablation mutates blindly on a fixed budget.
    if (!retire) {
        bool low_gain = true;
        if (options_.coverage_feedback) {
            double gain = static_cast<double>(explored.new_coverage);
            low_gain = gain < average_gain_;
            average_gain_ = 0.9 * average_gain_ + 0.1 * gain;
            if (!explored.taint_propagated)
                low_gain = true;
        }
        if (mutations_left_ == 0) {
            retire = true;
        } else {
            --mutations_left_;
            if (options_.coverage_feedback && !low_gain) {
                mutations_left_ = std::min(
                    mutations_left_ + 2, options_.max_mutations);
            }
            gen_.mutateWindow(current_, rng_.next());
        }
    }
    if (retire)
        active_ = false;

    stats_.coverage_points = coverage_.points();
    if (options_.record_coverage_curve)
        stats_.coverage_curve.push_back(coverage_.points());
}

void
Fuzzer::run(uint64_t count)
{
    RunSlice slice(*this);
    Phase1 phase1(sim_, options_.sim);
    Phase2 phase2(sim_, options_.sim, coverage_, module_ids_, &gen_);
    Phase3 phase3(sim_, options_.sim, gen_);
    for (uint64_t i = 0; i < count; ++i)
        iterate(phase1, phase2, phase3);
    stats_.coverage_points = coverage_.points();
}

void
Fuzzer::runUntilFirstBug(uint64_t max_iters)
{
    RunSlice slice(*this);
    Phase1 phase1(sim_, options_.sim);
    Phase2 phase2(sim_, options_.sim, coverage_, module_ids_, &gen_);
    Phase3 phase3(sim_, options_.sim, gen_);
    for (uint64_t i = 0; i < max_iters && stats_.bugs.empty(); ++i)
        iterate(phase1, phase2, phase3);
    stats_.coverage_points = coverage_.points();
}

Fuzzer::BatchResult
Fuzzer::runBatch(const BatchSpec &spec)
{
    dv_assert(spec.baseline != nullptr);

    // Reset the campaign state machine from the spec so the batch's
    // outcome is a pure function of (config, options, spec) — the
    // determinism contract that lets any compatible executor run it.
    rng_.reseed(spec.rng_seed);
    coverage_ = *spec.baseline;
    active_ = false;
    current_ = TestCase{};
    mutations_left_ = 0;
    average_gain_ = 1.0;
    next_seed_id_ = spec.iter_base;
    injected_.assign(spec.inject.begin(), spec.inject.end());

    // Delta markers over the executor-cumulative stats.
    const FuzzerStats before = [this] {
        FuzzerStats copy;
        copy.iterations = stats_.iterations;
        copy.simulations = stats_.simulations;
        copy.windows_triggered = stats_.windows_triggered;
        copy.phase1_attempts = stats_.phase1_attempts;
        copy.phase2_runs = stats_.phase2_runs;
        copy.phase3_runs = stats_.phase3_runs;
        copy.seeds_imported = stats_.seeds_imported;
        copy.training_overhead = stats_.training_overhead;
        copy.effective_training = stats_.effective_training;
        return copy;
    }();
    const size_t bugs_before = stats_.bugs.size();
    const auto triggers_before = trigger_stats_;
    const uint64_t baseline_points = spec.baseline->points();

    bug_cases_.clear();
    capture_bug_cases_ = true;
    bool deadline_hit = false;
    if (spec.deadline_seconds > 0.0) {
        // The watchdog fires inside the simulator's cycle loop, so
        // even a single pathological iteration is cut off. The
        // partial deltas below are machine-speed-dependent; the
        // caller must discard a deadline_hit result.
        util::WallGuard guard(spec.deadline_seconds);
        try {
            run(spec.iterations);
        } catch (const util::WallDeadlineExceeded &) {
            deadline_hit = true;
        }
    } else {
        run(spec.iterations);
    }
    capture_bug_cases_ = false;

    BatchResult result;
    result.deadline_hit = deadline_hit;
    result.iterations = stats_.iterations - before.iterations;
    result.simulations = stats_.simulations - before.simulations;
    result.windows_triggered =
        stats_.windows_triggered - before.windows_triggered;
    result.phase1_attempts =
        stats_.phase1_attempts - before.phase1_attempts;
    result.phase2_runs = stats_.phase2_runs - before.phase2_runs;
    result.phase3_runs = stats_.phase3_runs - before.phase3_runs;
    result.seeds_imported =
        stats_.seeds_imported - before.seeds_imported;
    result.training_overhead =
        stats_.training_overhead - before.training_overhead;
    result.effective_training =
        stats_.effective_training - before.effective_training;
    result.new_coverage = coverage_.points() - baseline_points;
    for (unsigned k = 0; k < kTriggerKinds; ++k) {
        result.triggers[k].windows = trigger_stats_[k].windows -
                                     triggers_before[k].windows;
        result.triggers[k].training_overhead =
            trigger_stats_[k].training_overhead -
            triggers_before[k].training_overhead;
        result.triggers[k].effective_overhead =
            trigger_stats_[k].effective_overhead -
            triggers_before[k].effective_overhead;
        result.triggers[k].attempts = trigger_stats_[k].attempts -
                                      triggers_before[k].attempts;
    }
    result.bugs.assign(stats_.bugs.begin() +
                           static_cast<ptrdiff_t>(bugs_before),
                       stats_.bugs.end());
    result.bug_cases = std::move(bug_cases_);
    bug_cases_.clear();
    // Rewrite executor-cumulative iteration provenance into the
    // shard-logical numbering the campaign reports.
    for (BugReport &bug : result.bugs) {
        bug.iteration =
            spec.iter_base + (bug.iteration - before.iterations);
    }
    result.leftover_inject.assign(injected_.begin(),
                                  injected_.end());
    injected_.clear();
    return result;
}

Fuzzer::ReplayOutcome
Fuzzer::replayCase(const TestCase &tc, bool collect_coverage_tuples)
{
    RunSlice slice(*this);
    // Measure against an empty map so outcome.coverage is the case's
    // own tuple set — the same yardstick whoever replays it.
    coverage_.resetSamples();
    Phase2 phase2(sim_, options_.sim, coverage_, module_ids_, &gen_);
    Phase3 phase3(sim_, options_.sim, gen_);

    ReplayOutcome outcome;
    util::WallGuard guard(options_.replay_deadline_sec);
    try {
        const Phase2Result &explored = phase2.run(tc);
        stats_.simulations += explored.dual.sim_passes;
        outcome.window_ok = explored.window_ok;
        outcome.taint_propagated = explored.taint_propagated;
        if (explored.window_ok && explored.taint_propagated) {
            Phase3Result verdict =
                phase3.run(tc, explored, options_.use_liveness);
            stats_.simulations += verdict.simulations;
            if (verdict.leak && verdict.report.has_value())
                outcome.report = *verdict.report;
        }
    } catch (const util::WallDeadlineExceeded &) {
        // A pathological reproducer must not hang a replay or triage
        // sweep: report the timeout, keep the pipeline moving.
        outcome = ReplayOutcome{};
        outcome.timed_out = true;
        return outcome;
    }
    outcome.coverage_points = coverage_.points();
    if (collect_coverage_tuples)
        outcome.coverage = coverage_.tuples();
    return outcome;
}

} // namespace dejavuzz::core
