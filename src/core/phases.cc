#include "core/phases.hh"

#include <algorithm>

#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace dejavuzz::core {

using harness::DualResult;
using harness::DutResult;
using uarch::SquashCause;
using uarch::SquashRec;

WindowCheck
checkWindow(const uarch::TraceLog &trace, const TestCase &tc)
{
    WindowCheck check;
    SquashCause want = expectedCause(tc.seed.trigger);
    for (const SquashRec &squash : trace.squashes) {
        if (squash.cause != want)
            continue;
        if (squash.flushed == 0)
            continue;
        // The trigger instruction must be the squash source and the
        // wrong path must start at the generated window.
        bool pc_ok;
        bool spec_ok;
        switch (tc.seed.trigger) {
          case TriggerKind::MemDisambiguation:
            // The squash replays from the speculative load.
            pc_ok = squash.pc == tc.window_addr;
            spec_ok = squash.spec_pc == tc.window_addr;
            break;
          case TriggerKind::IllegalInstr:
          case TriggerKind::LoadAccessFault:
          case TriggerKind::LoadPageFault:
          case TriggerKind::LoadMisalign:
          case TriggerKind::PrivEcall:
          case TriggerKind::PrivReturn:
            pc_ok = squash.pc == tc.trigger_addr;
            spec_ok = true; // fall-through window by construction
            break;
          default:
            pc_ok = squash.pc == tc.trigger_addr;
            spec_ok = squash.spec_pc == tc.window_addr;
            break;
        }
        if (!pc_ok || !spec_ok)
            continue;
        if (squash.transient_executed == 0)
            continue;
        // Exception windows must fault with the requested cause class.
        if (want == SquashCause::Exception) {
            bool match;
            switch (tc.seed.trigger) {
              case TriggerKind::LoadAccessFault:
                match = squash.exc == isa::ExcCause::LoadAccessFault ||
                        squash.exc == isa::ExcCause::StoreAccessFault;
                break;
              case TriggerKind::LoadPageFault:
                match = squash.exc == isa::ExcCause::LoadPageFault ||
                        squash.exc == isa::ExcCause::StorePageFault;
                break;
              case TriggerKind::LoadMisalign:
                match =
                    squash.exc == isa::ExcCause::LoadAddrMisaligned ||
                    squash.exc == isa::ExcCause::StoreAddrMisaligned;
                break;
              case TriggerKind::IllegalInstr:
                match = squash.exc == isa::ExcCause::IllegalInstr;
                break;
              case TriggerKind::PrivEcall:
                match = squash.exc == isa::ExcCause::EcallU ||
                        squash.exc == isa::ExcCause::EcallM;
                break;
              default:
                match = false;
                break;
            }
            if (!match)
                continue;
        }
        check.triggered = true;
        check.open_cycle = squash.open_cycle;
        check.close_cycle = squash.cycle;
        check.transient_executed = squash.transient_executed;
        return check;
    }
    return check;
}

unsigned
Phase1::run(TestCase &tc, bool &triggered, bool reduce)
{
    obs::ScopedSpan span(obs::Hist::Phase1Ns);
    unsigned sims = 0;
    sim_->runSingle(tc.schedule, tc.data, options_, result_);
    ++sims;
    triggered =
        result_.completed && checkWindow(result_.trace, tc).triggered;
    if (!triggered || !reduce)
        return sims;

    // Training reduction: try dropping each training packet in
    // schedule order; keep the drop when the window still triggers.
    bool progress = true;
    while (progress) {
        progress = false;
        for (size_t i = 0; i < tc.schedule.packets.size(); ++i) {
            if (tc.schedule.packets[i].kind ==
                swapmem::PacketKind::Transient)
                continue;
            swapmem::SwapSchedule reduced = tc.schedule.without(i);
            sim_->runSingle(reduced, tc.data, options_, result_);
            ++sims;
            if (result_.completed &&
                checkWindow(result_.trace, tc).triggered) {
                tc.schedule = std::move(reduced);
                progress = true;
                break;
            }
        }
    }
    return sims;
}

const Phase2Result &
Phase2::run(const TestCase &tc)
{
    obs::ScopedSpan span(obs::Hist::Phase2Ns);
    Phase2Result &result = result_;
    result.window_ok = false;
    result.taint_propagated = false;
    result.new_coverage = 0;
    result.window = WindowCheck{};
    harness::SimOptions options = options_;
    options.taint_log = true;
    options.sinks = true;
    // Arm Phase-3 lane fusion when the sanitized twin is available:
    // the differential run below then snapshots both lanes at the
    // transient boundary, and Phase 3 resumes from the snapshot
    // instead of re-simulating the shared prefix.
    if (gen_ != nullptr && options.fuse_phase3 &&
        tc.has_window_payload) {
        sanitized_ = gen_->sanitizedSchedule(tc);
        sim_->armFusion(&sanitized_);
    } else {
        sim_->armFusion(nullptr);
    }
    sim_->runDual(tc.schedule, tc.data, options, result.dual);

    result.window = checkWindow(result.dual.dut0.trace, tc);
    result.window_ok = result.dual.dut0.completed &&
                       result.window.triggered;
    if (!result.window_ok)
        return result;

    // Taint must increase inside the window's cycle range.
    const auto &log = result.dual.dut0.taint_log;
    uint64_t before = 0;
    for (const auto &cyc : log.cycles) {
        if (cyc.cycle < result.window.open_cycle)
            before = cyc.taintSum();
    }
    uint64_t peak = log.maxTaintSumIn(result.window.open_cycle,
                                      result.window.close_cycle + 8);
    result.taint_propagated = peak > before;
    if (!result.taint_propagated)
        return result;

    // Coverage measurement over the window range.
    for (const auto &cyc : log.cycles) {
        if (cyc.cycle < result.window.open_cycle ||
            cyc.cycle > result.window.close_cycle + 8)
            continue;
        for (const auto *sample = log.samplesBegin(cyc);
             sample != log.samplesEnd(cyc); ++sample) {
            coverage_->sample(module_ids_[sample->module_id],
                              sample->tainted_regs);
        }
    }
    result.new_coverage = coverage_->takeNewPoints();
    return result;
}

std::set<std::string>
constantTimeViolations(const DualResult &dual)
{
    std::set<std::string> components;
    const DutResult &a = dual.dut0;
    const DutResult &b = dual.dut1;

    bool timing_differs = a.cycles != b.cycles ||
                          a.trace.commits.size() !=
                              b.trace.commits.size();
    if (!timing_differs) {
        for (size_t i = 0; i < a.trace.commits.size(); ++i) {
            if (a.trace.commits[i].cycle != b.trace.commits[i].cycle) {
                timing_differs = true;
                break;
            }
        }
    }
    if (!timing_differs)
        return components;

    // Attribute the difference to the contended resources.
    const auto &ca = a.contention;
    const auto &cb = b.contention;
    if (ca.fdiv_busy_wait != cb.fdiv_busy_wait)
        components.insert("fpu");
    if (ca.load_wb_conflict != cb.load_wb_conflict)
        components.insert("lsu");
    if (ca.mem_port_wait != cb.mem_port_wait)
        components.insert("lsu");
    if (ca.fetch_refill_wait != cb.fetch_refill_wait)
        components.insert("icache");
    if (ca.div_busy_wait != cb.div_busy_wait)
        components.insert("exec");
    if (components.empty())
        components.insert("dcache"); // residual: memory timing
    return components;
}

void
diffSinks(const std::vector<ift::SinkSnapshot> &orig,
          const std::vector<ift::SinkSnapshot> &sanitized,
          bool use_liveness, std::set<std::string> &live_out,
          size_t &encoded, size_t &live_encoded)
{
    for (size_t si = 0; si < orig.size(); ++si) {
        const ift::SinkSnapshot &sink = orig[si];
        // Both snapshot lists come from the same per-config-stable
        // enumSinks sequence, so the id match is positional in the
        // common case; fall back to a scan over the (≈15-entry) list.
        const ift::SinkSnapshot *base = nullptr;
        if (si < sanitized.size() && sanitized[si].id == sink.id) {
            base = &sanitized[si];
        } else {
            for (const auto &cand : sanitized) {
                if (cand.id == sink.id) {
                    base = &cand;
                    break;
                }
            }
        }
        for (size_t i = 0; i < sink.taint.size(); ++i) {
            bool orig_tainted = sink.taint[i] != 0;
            bool base_tainted = base != nullptr &&
                                i < base->taint.size() &&
                                base->taint[i] != 0;
            if (!orig_tainted || base_tainted)
                continue; // not produced by the encoding block
            ++encoded;
            bool live = !sink.annotated || sink.live[i] != 0;
            if (!use_liveness)
                live = true;
            if (live) {
                ++live_encoded;
                live_out.insert(sink.module());
            }
        }
    }
}

/** Attack classification from the seed's attack model (legacy
 *  same-domain seeds keep the Meltdown/Spectre split). */
static AttackType
attackFor(const TestCase &tc)
{
    switch (tc.seed.model.tmpl) {
      case AttackTemplate::PrivTransition:
        return AttackType::PrivTransition;
      case AttackTemplate::DoubleFetch:
        return AttackType::DoubleFetch;
      case AttackTemplate::MeltdownSupervisor:
        return AttackType::Meltdown;
      case AttackTemplate::SameDomain:
      case AttackTemplate::kCount:
        break;
    }
    return tc.seed.window.meltdown ? AttackType::Meltdown
                                   : AttackType::Spectre;
}

Phase3Result
Phase3::run(const TestCase &tc, const Phase2Result &phase2,
            bool use_liveness)
{
    obs::ScopedSpan span(obs::Hist::Phase3Ns);
    Phase3Result result;

    // Step 3.1: window constant-time execution analysis.
    std::set<std::string> timing = constantTimeViolations(phase2.dual);
    if (!timing.empty()) {
        BugReport report;
        report.attack = attackFor(tc);
        report.window = tc.seed.trigger;
        report.channel = LeakChannel::TimingDifference;
        report.components = timing;
        report.masked_address = tc.seed.window.mask_high_bits;
        report.seed_id = tc.seed.id;
        result.leak = true;
        result.report = report;
        return result;
    }

    // Encode sanitization: re-run with the encoding block nopped and
    // diff the taint footprints.
    harness::SimOptions options = options_;
    options.taint_log = false;
    options.sinks = true;
    if (sim_->fusionCaptured()) {
        // Fused third lane: the Phase-2 run snapshotted both lanes at
        // the transient boundary; resume them onto the sanitized
        // schedule instead of re-simulating the shared prefix.
        sim_->runFusedPhase3(options, base_);
    } else {
        swapmem::SwapSchedule sanitized = gen_->sanitizedSchedule(tc);
        sim_->runDual(sanitized, tc.data, options, base_);
    }
    result.simulations = base_.sim_passes;

    // Step 3.2: tainted-sink liveness analysis.
    std::set<std::string> live_components;
    diffSinks(phase2.dual.dut0.sinks, base_.dut0.sinks, use_liveness,
              live_components, result.encoded_sinks,
              result.live_encoded_sinks);

    if (!live_components.empty()) {
        BugReport report;
        report.attack = attackFor(tc);
        report.window = tc.seed.trigger;
        report.channel = LeakChannel::EncodedState;
        report.components = live_components;
        report.masked_address = tc.seed.window.mask_high_bits;
        report.seed_id = tc.seed.id;
        result.leak = true;
        result.report = report;
    }
    return result;
}

} // namespace dejavuzz::core
