/**
 * @file
 * Stimulus generation (paper §4.1 step 1.1 and §4.2 step 2.1).
 *
 * Layout of every transient packet (addresses relative to the
 * swappable region base):
 *
 *   +0x000  setup: register/probe/FP initialisation, slow operand
 *           loads from the dedicated region, arch RAS priming
 *   trigger_addr in [+0x100, +0x180): the trigger instruction
 *   window_addr: trigger+4 (fall-through windows) or trigger+0x40
 *           (taken-side windows) - nops in Phase 1, payload in Phase 2
 *   +0x240  jump pad (targets for transient indirect encodes)
 *   +0x280  exit: SWAPNEXT (the architectural continuation)
 *
 * Trigger training packets place their (control-flow-matched)
 * training instruction at exactly trigger_addr via nop alignment -
 * the training derivation strategy. The DejaVuzz* ablation replaces
 * derived training with random instruction packets.
 */

#ifndef DEJAVUZZ_CORE_STIMGEN_HH
#define DEJAVUZZ_CORE_STIMGEN_HH

#include "core/seed.hh"
#include "isa/builder.hh"
#include "uarch/config.hh"
#include "util/rng.hh"

namespace dejavuzz::core {

/** Packet layout constants (offsets from swapmem::kSwapBase). */
constexpr uint64_t kTriggerMinOff = 0x100;
constexpr uint64_t kTriggerMaxOff = 0x180;
constexpr uint64_t kTakenWindowGap = 0x40;
constexpr uint64_t kJumpPadOff = 0x2c0;
constexpr uint64_t kExitOff = 0x300;

class StimGen
{
  public:
    explicit StimGen(const uarch::CoreConfig &config) : cfg_(config) {}

    /**
     * Draw a fresh random seed. When @p force is a valid kind, the
     * trigger (and the window protection derived from it) is pinned.
     * @p trigger_mask / @p model_mask restrict the trigger kinds and
     * attack templates drawn (multi-head subspace campaigns); the
     * default masks reproduce the legacy single-model stream
     * bit-identically.
     */
    Seed newSeed(Rng &rng, uint64_t id,
                 TriggerKind force = TriggerKind::kCount,
                 uint32_t trigger_mask = kLegacyTriggerMask,
                 uint32_t model_mask = kLegacyModelMask) const;

    /**
     * Step 1.1: trigger generation + dummy window + derived training.
     * @p derived_training false gives the DejaVuzz* ablation (random
     * training packets, no alignment/control-flow matching).
     */
    TestCase generatePhase1(const Seed &seed,
                            bool derived_training = true) const;

    /**
     * Step 2.1: replace the dummy window with the secret access block
     * and the secret encoding block, and prepend window training.
     */
    void completeWindow(TestCase &tc) const;

    /** Phase-2 mutation: regenerate the window with fresh entropy. */
    void mutateWindow(TestCase &tc, uint64_t new_entropy) const;

    /** Step 3.1: schedule with the encoding block replaced by nops. */
    swapmem::SwapSchedule sanitizedSchedule(const TestCase &tc) const;

  private:
    struct Layout
    {
        uint64_t trigger_addr;
        uint64_t window_addr;
        bool window_on_fallthrough;
        isa::Op branch_op;          ///< for branch triggers
        bool arch_taken;            ///< branch architectural outcome
        bool store_variant;         ///< faulting store instead of load
        uint64_t fault_addr;        ///< exception triggers
        unsigned training_packets;  ///< derived packets to generate
    };

    Layout drawLayout(const Seed &seed) const;
    void emitSetup(isa::ProgBuilder &prog, const Seed &seed,
                   const Layout &layout) const;
    void emitTrigger(isa::ProgBuilder &prog, const Seed &seed,
                     const Layout &layout) const;
    /** Window body; returns [begin,end) indices of the encode block. */
    std::pair<size_t, size_t>
    emitWindowBody(isa::ProgBuilder &prog, const Seed &seed,
                   const Layout &layout, bool payload) const;
    swapmem::SwapPacket buildTransient(const Seed &seed,
                                       const Layout &layout, bool payload,
                                       TestCase &tc) const;
    swapmem::SwapPacket derivedTraining(const Seed &seed,
                                        const Layout &layout,
                                        unsigned index, Rng &rng) const;
    swapmem::SwapPacket randomTraining(Rng &rng, unsigned index) const;
    void fillOperands(TestCase &tc, const Layout &layout) const;

    uarch::CoreConfig cfg_;
};

} // namespace dejavuzz::core

#endif // DEJAVUZZ_CORE_STIMGEN_HH
