/**
 * @file
 * The DejaVuzz fuzzer: seed scheduling, the phase state machine and
 * campaign statistics (paper Fig. 5).
 *
 * One iteration is one simulated evaluation step: either a Phase-1
 * trigger attempt (including its training-reduction re-simulations)
 * or one Phase-2 differential evaluation of a completed window
 * (followed, when the window propagated taint, by Phase-3 analysis).
 *
 * Ablation switches reproduce the paper's variants:
 *  - derived_training=false  => DejaVuzz* (random training packets)
 *  - coverage_feedback=false => DejaVuzz−  (blind window mutation)
 *  - use_liveness=false      => no-liveness misclassification study
 *  - training_reduction=false => reduction-off ablation
 */

#ifndef DEJAVUZZ_CORE_FUZZER_HH
#define DEJAVUZZ_CORE_FUZZER_HH

#include <deque>
#include <functional>
#include <memory>

#include "core/phases.hh"
#include "core/report.hh"
#include "core/stimgen.hh"
#include "harness/dualsim.hh"
#include "ift/coverage.hh"
#include "uarch/config.hh"
#include "util/rng.hh"

namespace dejavuzz::core {

struct FuzzerOptions
{
    uint64_t master_seed = 1;
    bool derived_training = true;   ///< false: DejaVuzz*
    bool coverage_feedback = true;  ///< false: DejaVuzz−
    bool use_liveness = true;
    bool training_reduction = true;
    ift::IftMode ift_mode = ift::IftMode::DiffIFT;
    unsigned max_mutations = 6;     ///< window mutations per seed
    unsigned phase1_retries = 3;    ///< regeneration attempts per seed
    /** Record the per-iteration coverage curve (FuzzerStats); long
     *  orchestrated campaigns turn this off to bound memory. */
    bool record_coverage_curve = true;
    harness::SimOptions sim;
};

class Fuzzer
{
  public:
    Fuzzer(const uarch::CoreConfig &config,
           const FuzzerOptions &options);

    /** Run @p count iterations (appends to the running campaign). */
    void run(uint64_t count);

    /** Run until at least one bug is found or @p max_iters elapse. */
    void runUntilFirstBug(uint64_t max_iters);

    const FuzzerStats &stats() const { return stats_; }
    const ift::TaintCoverage &coverage() const { return coverage_; }
    const uarch::CoreConfig &config() const { return cfg_; }

    /**
     * Mutable coverage access for campaign-level merging: an
     * orchestrator pulls globally discovered points into this map
     * between run() slices so novelty decisions reflect the whole
     * fleet. Must not be called while run() is executing.
     */
    ift::TaintCoverage &coverageMut() { return coverage_; }

    /**
     * Queue a foreign test case (typically stolen from a shared
     * corpus) for adoption: the next time the fuzzer needs a new
     * seed it resumes this case in Phase-2 mutation mode instead of
     * generating from scratch. The case must carry a completed
     * window payload.
     */
    void injectSeed(const TestCase &tc);

    /**
     * Hook invoked whenever a Phase-2 run both propagates taint and
     * discovers new coverage — the campaign-level "interesting seed"
     * admission signal. @p gain is the number of fresh coverage
     * points the run contributed.
     */
    using InterestingHook =
        std::function<void(const TestCase &tc, uint64_t gain)>;
    void setInterestingHook(InterestingHook hook)
    {
        on_interesting_ = std::move(hook);
    }

    /** Per-window-type Table-3 accounting. */
    struct TriggerStats
    {
        uint64_t windows = 0;
        uint64_t training_overhead = 0;
        uint64_t effective_overhead = 0;
        uint64_t attempts = 0;
    };
    const std::array<TriggerStats, kTriggerKinds> &
    triggerStats() const
    {
        return trigger_stats_;
    }

    /** Generate + evaluate one window of the given kind (Table 3). */
    bool triggerOnce(TriggerKind kind, uint64_t entropy,
                     size_t &to, size_t &eto);

    /**
     * Seconds spent inside run()/runUntilFirstBug() so far. Idle time
     * between orchestrator-driven slices does not count, so
     * time-to-first-bug stays meaningful when run() is called
     * repeatedly on one instance.
     */
    double elapsedSeconds() const;

  private:
    void iterate();

    /** RAII slice timer so elapsedSeconds() sums only active run()
     *  time across repeated orchestrator-driven slices. */
    class RunSlice
    {
      public:
        explicit RunSlice(Fuzzer &fuzzer);
        ~RunSlice();

      private:
        Fuzzer &fuzzer_;
    };

    uarch::CoreConfig cfg_;
    FuzzerOptions options_;
    StimGen gen_;
    harness::DualSim sim_;
    ift::TaintCoverage coverage_;
    std::array<uint16_t, uarch::kModCount> module_ids_{};
    Rng rng_;
    FuzzerStats stats_;
    std::array<TriggerStats, kTriggerKinds> trigger_stats_{};

    // Active test-case state machine.
    bool active_ = false;
    TestCase current_;
    unsigned mutations_left_ = 0;
    double average_gain_ = 1.0;
    uint64_t next_seed_id_ = 0;

    // Cumulative active run() time across slices (satisfies repeated
    // run() calls on one instance; idle time between slices does not
    // count toward time-to-first-bug).
    double active_seconds_ = 0.0;
    double slice_begin_ = 0.0;
    bool in_run_ = false;

    std::deque<TestCase> injected_;
    InterestingHook on_interesting_;
};

} // namespace dejavuzz::core

#endif // DEJAVUZZ_CORE_FUZZER_HH
