/**
 * @file
 * The DejaVuzz fuzzer: seed scheduling, the phase state machine and
 * campaign statistics (paper Fig. 5).
 *
 * One iteration is one simulated evaluation step: either a Phase-1
 * trigger attempt (including its training-reduction re-simulations)
 * or one Phase-2 differential evaluation of a completed window
 * (followed, when the window propagated taint, by Phase-3 analysis).
 *
 * Ablation switches reproduce the paper's variants:
 *  - derived_training=false  => DejaVuzz* (random training packets)
 *  - coverage_feedback=false => DejaVuzz−  (blind window mutation)
 *  - use_liveness=false      => no-liveness misclassification study
 *  - training_reduction=false => reduction-off ablation
 */

#ifndef DEJAVUZZ_CORE_FUZZER_HH
#define DEJAVUZZ_CORE_FUZZER_HH

#include <deque>
#include <functional>
#include <memory>

#include "core/phases.hh"
#include "core/report.hh"
#include "core/stimgen.hh"
#include "harness/dualsim.hh"
#include "ift/coverage.hh"
#include "uarch/config.hh"
#include "util/rng.hh"

namespace dejavuzz::core {

struct FuzzerOptions
{
    uint64_t master_seed = 1;
    bool derived_training = true;   ///< false: DejaVuzz*
    bool coverage_feedback = true;  ///< false: DejaVuzz−
    bool use_liveness = true;
    bool training_reduction = true;
    /** IFT mode the phase pipeline simulates under.  Copied into
     *  sim.mode by the Fuzzer constructor — this is the knob;
     *  sim.mode's own default is ignored. */
    ift::IftMode ift_mode = ift::IftMode::DiffIFT;
    unsigned max_mutations = 6;     ///< window mutations per seed
    unsigned phase1_retries = 3;    ///< regeneration attempts per seed
    /** Trigger-kind / attack-template subspaces newSeed draws from
     *  (multi-head campaigns give each head disjoint masks). The
     *  defaults reproduce the legacy single-model seed stream. */
    uint32_t trigger_mask = kLegacyTriggerMask;
    uint32_t model_mask = kLegacyModelMask;
    /** Record the per-iteration coverage curve (FuzzerStats); long
     *  orchestrated campaigns turn this off to bound memory. */
    bool record_coverage_curve = true;
    /**
     * Wall-clock guard around replayCase() in seconds (0 = off). A
     * pathological reproducer that would otherwise stall a replay or
     * triage sweep is cut off cooperatively (util::WallGuard inside
     * the simulator's cycle loop) and reported via
     * ReplayOutcome::timed_out instead of hanging the pipeline. The
     * default is far above any legitimate case's runtime, so replay
     * determinism is unaffected in practice.
     */
    double replay_deadline_sec = 120.0;
    harness::SimOptions sim;
};

class Fuzzer
{
  public:
    Fuzzer(const uarch::CoreConfig &config,
           const FuzzerOptions &options);

    /** Run @p count iterations (appends to the running campaign). */
    void run(uint64_t count);

    /** Run until at least one bug is found or @p max_iters elapse. */
    void runUntilFirstBug(uint64_t max_iters);

    /** Per-window-type Table-3 accounting. */
    struct TriggerStats
    {
        uint64_t windows = 0;
        uint64_t training_overhead = 0;
        uint64_t effective_overhead = 0;
        uint64_t attempts = 0;
    };

    /**
     * A self-contained batch of iterations for the work-stealing
     * campaign scheduler. The executing instance's persistent state
     * (Rng position, active test case, private coverage map, seed
     * ids) is reset from the spec before the first iteration, so the
     * batch's outcome depends only on the spec — any Fuzzer built
     * with the same (config, options modulo master_seed) produces
     * bit-identical results, which is what lets an idle worker
     * execute a peer's batch without perturbing determinism.
     */
    struct BatchSpec
    {
        /** Rng seed; derive from (master seed, shard, batch index). */
        uint64_t rng_seed = 0;
        /** Shard-logical iteration number of the batch's first
         *  iteration; bug provenance and seed ids count from here. */
        uint64_t iter_base = 0;
        uint64_t iterations = 0;
        /** Coverage baseline the batch starts from (the shard
         *  group's epoch-barrier snapshot); copied, never mutated. */
        const ift::TaintCoverage *baseline = nullptr;
        /** Corpus seeds to adopt before generating from scratch. */
        std::vector<TestCase> inject;
        /**
         * Wall-clock watchdog for the whole batch in seconds (0 =
         * off). Expiry is cooperative (checked inside the simulator's
         * cycle loop): the batch stops where it is and the result
         * comes back with deadline_hit set. A deadline-killed result
         * is machine-speed-dependent — callers that care about
         * determinism must discard it and retry or skip the batch,
         * never fold it in.
         */
        double deadline_seconds = 0.0;
    };

    /** Everything a batch produced, as deltas over the spec. */
    struct BatchResult
    {
        uint64_t iterations = 0;
        uint64_t simulations = 0;
        uint64_t windows_triggered = 0;
        uint64_t phase1_attempts = 0;
        uint64_t phase2_runs = 0;
        uint64_t phase3_runs = 0;
        uint64_t seeds_imported = 0;
        uint64_t training_overhead = 0;
        uint64_t effective_training = 0;
        /** Points discovered beyond the baseline snapshot. */
        uint64_t new_coverage = 0;
        std::array<TriggerStats, kTriggerKinds> triggers{};
        /** Bug reports; iteration fields are shard-logical
         *  (iter_base-relative), not executor-cumulative. */
        std::vector<BugReport> bugs;
        /** The exact test case that produced bugs[i] — the
         *  deterministic reproducer replayCase() re-executes. */
        std::vector<TestCase> bug_cases;
        /** Injected seeds the batch did not get around to adopting
         *  (re-queued by the orchestrator for the next batch). */
        std::vector<TestCase> leftover_inject;
        /** The batch was cut off by spec.deadline_seconds: the
         *  deltas above are partial and machine-speed-dependent. */
        bool deadline_hit = false;
    };

    /**
     * Execute one batch (see BatchSpec). Resets the campaign state
     * machine from the spec, runs spec.iterations iterations, and
     * returns the deltas. Interesting-hook callbacks still fire
     * during the batch (the orchestrator retargets the hook per
     * batch for provenance). The instance's cumulative stats() keep
     * accumulating across batches and remain executor-local.
     */
    BatchResult runBatch(const BatchSpec &spec);

    /** Outcome of one replayCase() evaluation. */
    struct ReplayOutcome
    {
        bool window_ok = false;
        bool taint_propagated = false;
        /** The replay blew FuzzerOptions::replay_deadline_sec and
         *  was cut off; every other field is meaningless. */
        bool timed_out = false;
        /** The leak verdict, when Phase 3 confirmed one. */
        std::optional<BugReport> report;
        /** Number of coverage points this case alone produced
         *  (measured against an empty map). Always filled. */
        uint64_t coverage_points = 0;
        /** The tuples themselves — materialized only when
         *  replayCase() is asked for them (corpus minimization);
         *  plain replay/regression callers skip the copy. */
        std::vector<ift::CoveragePoint> coverage;
    };

    /**
     * Re-execute one completed test case through the Phase-2/Phase-3
     * pipeline, exactly as iterate() evaluates it, and report whether
     * it still leaks. Deterministic: the outcome is a pure function
     * of (config, sim options, use_liveness, tc) — the contract that
     * turns a saved bug reproducer into a regression check
     * (dejavuzz-replay) and an entry's coverage set into the corpus
     * minimization oracle.
     *
     * Destructive on the instance's accumulated coverage map (it is
     * reset so the case's own tuples are measurable); intended for
     * throwaway replay/minimization instances, or for campaign
     * executors after their campaign has finished.
     *
     * @p collect_coverage_tuples materializes the case's tuple set
     * into ReplayOutcome::coverage; by default only the count is
     * reported (the minimization oracle is the only tuple consumer).
     */
    ReplayOutcome replayCase(const TestCase &tc,
                             bool collect_coverage_tuples = false);

    const FuzzerStats &stats() const { return stats_; }
    const ift::TaintCoverage &coverage() const { return coverage_; }
    const uarch::CoreConfig &config() const { return cfg_; }

    /**
     * Mutable coverage access for campaign-level merging: an
     * orchestrator pulls globally discovered points into this map
     * between run() slices so novelty decisions reflect the whole
     * fleet. Must not be called while run() is executing.
     */
    ift::TaintCoverage &coverageMut() { return coverage_; }

    /**
     * Hook invoked whenever a Phase-2 run both propagates taint and
     * discovers new coverage — the campaign-level "interesting seed"
     * admission signal. @p gain is the number of fresh coverage
     * points the run contributed.
     */
    using InterestingHook =
        std::function<void(const TestCase &tc, uint64_t gain)>;
    void setInterestingHook(InterestingHook hook)
    {
        on_interesting_ = std::move(hook);
    }

    const std::array<TriggerStats, kTriggerKinds> &
    triggerStats() const
    {
        return trigger_stats_;
    }

    /** Generate + evaluate one window of the given kind (Table 3). */
    bool triggerOnce(TriggerKind kind, uint64_t entropy,
                     size_t &to, size_t &eto);

    /**
     * Seconds spent inside run()/runUntilFirstBug() so far. Idle time
     * between orchestrator-driven slices does not count, so
     * time-to-first-bug stays meaningful when run() is called
     * repeatedly on one instance.
     */
    double elapsedSeconds() const;

  private:
    /**
     * One evaluation step. The phase drivers are constructed once
     * per run()/runBatch() slice and shared across the slice's
     * iterations — the batched-simulation amortization that keeps
     * per-iteration setup out of the hot loop.
     */
    void iterate(Phase1 &phase1, Phase2 &phase2, Phase3 &phase3);

    /** RAII slice timer so elapsedSeconds() sums only active run()
     *  time across repeated orchestrator-driven slices. */
    class RunSlice
    {
      public:
        explicit RunSlice(Fuzzer &fuzzer);
        ~RunSlice();

      private:
        Fuzzer &fuzzer_;
    };

    uarch::CoreConfig cfg_;
    FuzzerOptions options_;
    StimGen gen_;
    harness::DualSim sim_;
    ift::TaintCoverage coverage_;
    std::array<uint16_t, uarch::kModCount> module_ids_{};
    Rng rng_;
    FuzzerStats stats_;
    std::array<TriggerStats, kTriggerKinds> trigger_stats_{};

    // Active test-case state machine.
    bool active_ = false;
    TestCase current_;
    unsigned mutations_left_ = 0;
    double average_gain_ = 1.0;
    uint64_t next_seed_id_ = 0;

    // Cumulative active run() time across slices (satisfies repeated
    // run() calls on one instance; idle time between slices does not
    // count toward time-to-first-bug).
    double active_seconds_ = 0.0;
    double slice_begin_ = 0.0;
    bool in_run_ = false;

    std::deque<TestCase> injected_;
    /** Reproducer capture, active only inside runBatch(): the batch
     *  path drains bug_cases_ into its BatchResult, and standalone
     *  run()/runUntilFirstBug() users (benches, examples) never pay
     *  for per-report test-case copies they would never read. */
    bool capture_bug_cases_ = false;
    std::vector<TestCase> bug_cases_;
    InterestingHook on_interesting_;
};

} // namespace dejavuzz::core

#endif // DEJAVUZZ_CORE_FUZZER_HH
