/**
 * @file
 * Tainted-value primitives and the data-flow taint propagation
 * policies shared by CellIFT and diffIFT.
 *
 * A TV couples a 64-bit value with a 64-bit per-bit taint mask, the
 * word-level analogue of the shadow registers a hardware dynamic IFT
 * pass inserts next to every original register (see paper §2.2).
 * Data-cell policies below are the word-level forms of CellIFT's cell
 * library; control-cell policies (which differ between CellIFT and
 * diffIFT) live in policy.hh because they need the cross-instance
 * diff context.
 */

#ifndef DEJAVUZZ_IFT_TAINT_HH
#define DEJAVUZZ_IFT_TAINT_HH

#include <cstdint>

#include "util/bits.hh"

namespace dejavuzz::ift {

/** A value with a per-bit taint shadow. */
struct TV
{
    uint64_t v = 0;  ///< architectural value
    uint64_t t = 0;  ///< taint mask (bit i set => value bit i tainted)

    constexpr bool tainted() const { return t != 0; }

    constexpr bool operator==(const TV &other) const
    {
        return v == other.v && t == other.t;
    }
};

/** Untainted constant. */
constexpr TV
clean(uint64_t value)
{
    return TV{value, 0};
}

/** Fully tainted value. */
constexpr TV
dirty(uint64_t value)
{
    return TV{value, ~0ULL};
}

// --- data-flow cells (identical under CellIFT and diffIFT) ------------

/** Policy 1 (paper Eq. 1): AND cell. */
constexpr TV
andCell(TV a, TV b)
{
    return TV{a.v & b.v, (a.v & b.t) | (b.v & a.t) | (a.t & b.t)};
}

/** Dual of Policy 1 for the OR cell. */
constexpr TV
orCell(TV a, TV b)
{
    return TV{a.v | b.v, (~a.v & b.t) | (~b.v & a.t) | (a.t & b.t)};
}

/** XOR: every tainted input bit taints the output bit. */
constexpr TV
xorCell(TV a, TV b)
{
    return TV{a.v ^ b.v, a.t | b.t};
}

constexpr TV
notCell(TV a)
{
    return TV{~a.v, a.t};
}

/** Adder: carries smear taint towards the MSB. */
constexpr TV
addCell(TV a, TV b)
{
    return TV{a.v + b.v, smearLeft(a.t | b.t)};
}

constexpr TV
subCell(TV a, TV b)
{
    return TV{a.v - b.v, smearLeft(a.t | b.t)};
}

/** Multiplier/divider: any tainted input bit taints the whole result. */
constexpr TV
mulLikeCell(uint64_t result, TV a, TV b)
{
    return TV{result, (a.t | b.t) != 0 ? ~0ULL : 0ULL};
}

/** Shift by an untainted constant amount. */
constexpr TV
shlConst(TV a, unsigned amount)
{
    return TV{a.v << amount, a.t << amount};
}

constexpr TV
shrConst(TV a, unsigned amount)
{
    return TV{a.v >> amount, a.t >> amount};
}

/**
 * Shift by a possibly-tainted amount: a tainted amount repositions the
 * operand unpredictably, so the whole result is tainted.
 */
constexpr TV
shiftCell(uint64_t result, TV operand, TV amount)
{
    uint64_t taint;
    if (amount.tainted()) {
        taint = ~0ULL;
    } else {
        unsigned sh = amount.v & 63;
        // Direction is unknown here; be conservative both ways.
        taint = (operand.t << sh) | (operand.t >> sh);
    }
    return TV{result, taint};
}

/** Truncate to the low @p width bits (wire narrowing). */
constexpr TV
truncCell(TV a, unsigned width)
{
    uint64_t mask = maskLow(width);
    return TV{a.v & mask, a.t & mask};
}

/** Sign/zero extension keeps taint in the low bits and replicates the
 *  (possibly tainted) sign bit. */
constexpr TV
sextCell(TV a, unsigned width)
{
    uint64_t value = static_cast<uint64_t>(signExtend(a.v, width));
    uint64_t taint = a.t & maskLow(width);
    if (width < 64 && (a.t >> (width - 1)) & 1)
        taint |= ~maskLow(width);
    return TV{value, taint};
}

} // namespace dejavuzz::ift

#endif // DEJAVUZZ_IFT_TAINT_HH
