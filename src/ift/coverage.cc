#include "ift/coverage.hh"

#include "util/logging.hh"

namespace dejavuzz::ift {

uint16_t
TaintCoverage::registerModule(const std::string &name, uint32_t max_regs)
{
    dv_assert(modules_.size() < 0xffff);
    ModuleSlot slot;
    slot.name = name;
    slot.bitmap.assign(static_cast<size_t>(max_regs) + 1, 0);
    modules_.push_back(std::move(slot));
    return static_cast<uint16_t>(modules_.size() - 1);
}

const std::string &
TaintCoverage::moduleName(uint16_t module_id) const
{
    dv_assert(module_id < modules_.size());
    return modules_[module_id].name;
}

bool
TaintCoverage::sample(uint16_t module_id, uint32_t tainted_regs)
{
    if (tainted_regs == 0)
        return false;
    dv_assert(module_id < modules_.size());
    auto &bitmap = modules_[module_id].bitmap;
    uint32_t index = tainted_regs;
    if (index >= bitmap.size())
        index = static_cast<uint32_t>(bitmap.size()) - 1;
    if (bitmap[index])
        return false;
    bitmap[index] = 1;
    ++points_;
    return true;
}

std::vector<CoveragePoint>
TaintCoverage::tuples() const
{
    std::vector<CoveragePoint> out;
    for (size_t m = 0; m < modules_.size(); ++m) {
        const auto &bitmap = modules_[m].bitmap;
        for (size_t i = 0; i < bitmap.size(); ++i) {
            if (bitmap[i]) {
                out.push_back(CoveragePoint{
                    static_cast<uint16_t>(m),
                    static_cast<uint32_t>(i)});
            }
        }
    }
    return out;
}

uint32_t
TaintCoverage::moduleSlots(uint16_t module_id) const
{
    dv_assert(module_id < modules_.size());
    return static_cast<uint32_t>(modules_[module_id].bitmap.size());
}

bool
TaintCoverage::slotSet(uint16_t module_id, uint32_t index) const
{
    dv_assert(module_id < modules_.size());
    const auto &bitmap = modules_[module_id].bitmap;
    dv_assert(index < bitmap.size());
    return bitmap[index] != 0;
}

bool
TaintCoverage::markSlot(uint16_t module_id, uint32_t index)
{
    dv_assert(module_id < modules_.size());
    auto &bitmap = modules_[module_id].bitmap;
    dv_assert(index < bitmap.size());
    if (bitmap[index])
        return false;
    bitmap[index] = 1;
    ++points_;
    // Imported points are not locally-fresh discoveries: keep the
    // takeNewPoints() delta (Phase-2 coverage gain) unaffected.
    ++last_points_;
    return true;
}

uint64_t
TaintCoverage::mergeFrom(const TaintCoverage &other)
{
    dv_assert(modules_.size() == other.modules_.size());
    uint64_t fresh = 0;
    for (size_t m = 0; m < modules_.size(); ++m) {
        auto &bitmap = modules_[m].bitmap;
        const auto &theirs = other.modules_[m].bitmap;
        dv_assert(bitmap.size() == theirs.size());
        for (size_t i = 0; i < bitmap.size(); ++i) {
            if (theirs[i] && !bitmap[i]) {
                bitmap[i] = 1;
                ++fresh;
            }
        }
    }
    points_ += fresh;
    last_points_ += fresh; // imports never count as local gain
    return fresh;
}

void
TaintCoverage::resetSamples()
{
    for (auto &module : modules_)
        std::fill(module.bitmap.begin(), module.bitmap.end(), 0);
    points_ = 0;
    last_points_ = 0;
}

} // namespace dejavuzz::ift
