/**
 * @file
 * The taint coverage matrix (paper §4.2.2).
 *
 * Every RTL module gets a bitmap indexed by "number of tainted state
 * registers in that module this cycle". Setting a previously-unset
 * slot discovers a new (module, count) coverage tuple. The metric is
 * local (per module) and position-insensitive (encoding a secret into
 * different slots of the same array yields the same tuple), the two
 * key properties the paper calls out.
 */

#ifndef DEJAVUZZ_IFT_COVERAGE_HH
#define DEJAVUZZ_IFT_COVERAGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dejavuzz::ift {

/** Identity of one coverage tuple. */
struct CoveragePoint
{
    uint16_t module_id;
    uint32_t index;
};

/**
 * Per-campaign coverage accumulator. Modules are registered once (per
 * DUT structure); samples are fed every cycle of every simulation.
 */
class TaintCoverage
{
  public:
    /** Register a module; @p max_regs bounds the bitmap size. */
    uint16_t registerModule(const std::string &name, uint32_t max_regs);

    size_t moduleCount() const { return modules_.size(); }
    const std::string &moduleName(uint16_t module_id) const;

    /**
     * Record that @p module_id had @p tainted_regs tainted state
     * registers this cycle. Returns true when this sample set a
     * previously-unset slot (new coverage).
     */
    bool sample(uint16_t module_id, uint32_t tainted_regs);

    /** Total number of distinct (module, index) tuples seen. */
    uint64_t points() const { return points_; }

    /** Points newly discovered since the previous call. */
    uint64_t
    takeNewPoints()
    {
        uint64_t fresh = points_ - last_points_;
        last_points_ = points_;
        return fresh;
    }

    /** All discovered tuples (for reporting). */
    std::vector<CoveragePoint> tuples() const;

    /** Forget all samples but keep module registrations. */
    void resetSamples();

    /** Number of bitmap slots of @p module_id (max_regs + 1). */
    uint32_t moduleSlots(uint16_t module_id) const;

    /** Whether slot @p index of @p module_id has been discovered. */
    bool slotSet(uint16_t module_id, uint32_t index) const;

    /**
     * Force slot @p index of @p module_id set (no clamping, no
     * zero-count filtering — for importing externally discovered
     * points). Returns true when the slot was previously unset.
     * Imported points never count toward the takeNewPoints() delta.
     */
    bool markSlot(uint16_t module_id, uint32_t index);

    /**
     * OR @p other's bitmaps into this map; both must share the same
     * module registration structure. Returns the number of points
     * that were new to this map. Idempotent: merging the same map
     * twice adds nothing the second time. Imported points never
     * count toward the takeNewPoints() delta.
     */
    uint64_t mergeFrom(const TaintCoverage &other);

  private:
    struct ModuleSlot
    {
        std::string name;
        std::vector<uint8_t> bitmap;
    };

    std::vector<ModuleSlot> modules_;
    uint64_t points_ = 0;
    uint64_t last_points_ = 0;
};

} // namespace dejavuzz::ift

#endif // DEJAVUZZ_IFT_COVERAGE_HH
