/**
 * @file
 * Incremental taint accounting: per-structure running sums of the
 * taint population, updated only on taint-bit transitions.
 *
 * Every stateful uarch structure keeps a TaintAcct next to its
 * storage.  A write site wraps its mutation in a before/after
 * TaintContrib pair; TaintAcct::apply() folds the delta into the
 * running sums.  moduleTaintStats then assembles the per-module
 * (tainted_regs, taint_bits) snapshot as an O(kModCount) read of
 * these sums instead of the old O(state) per-cycle re-scan — the
 * transition-driven principle (only touch what the cycle perturbed)
 * applied to taint observation.
 *
 * Invariants the accounts rely on:
 *
 * - **Transition-count == rescan equality.** After any sequence of
 *   wrapped mutations, the running (regs, bits) sums equal a full
 *   re-scan of the structure with the pre-existing scan body (kept
 *   as the *Rescan methods).  Core::verifyTaintAccounts() checks
 *   this exhaustively and is exercised by the randomized property
 *   test in tests/test_taint_acct.cc; debug builds additionally
 *   cross-check on every taint-log append.
 * - **Every taint-visible mutation is wrapped.**  A mutation that
 *   can change a counted taint bit (or a counted-population
 *   membership bit such as Mshr validity) must go through a
 *   before/after pair.  Mutations that provably cannot change the
 *   contribution (cursor moves, valid-flag flips on structures that
 *   count stale entries, value-only writes on untainted slots still
 *   count as "no transition" via the equality early-out) may skip
 *   the wrap only when the counted contribution is unaffected.
 * - **Quirk preservation.**  The accounts reproduce the original
 *   scan semantics bit-for-bit, including its quirks: structures
 *   that count stale/invalid entries (BTB, RAS, LFB, TLB, ROB)
 *   keep counting them; the MSHR is valid-gated; the loop
 *   predictor charges a flat 16 bits per tainted slot; the icache
 *   derives bits as regs*8.  The observable taint log is unchanged.
 *
 * Soundness context: taint never feeds back into architectural
 * values (see docs/architecture.md), so the accounts are pure
 * observers — they cannot perturb simulation results, only report
 * them faster.
 */

#ifndef DEJAVUZZ_IFT_TAINTACCT_HH
#define DEJAVUZZ_IFT_TAINTACCT_HH

#include <cstdint>

namespace dejavuzz::ift {

/**
 * One entry's contribution to a structure's taint population:
 * @p regs is 1 when the entry counts as "tainted register" under the
 * owning structure's policy, @p bits is its tainted-bit count.
 */
struct TaintContrib
{
    uint32_t regs = 0;
    uint64_t bits = 0;

    constexpr bool operator==(const TaintContrib &o) const
    {
        return regs == o.regs && bits == o.bits;
    }
};

/**
 * Running taint population of one structure.  regs/bits are exact
 * sums over the structure's current entries (per the invariants
 * above); transitions counts the wrapped mutations that actually
 * changed a contribution — the telemetry counter behind
 * obs::Ctr::TaintTransitions.
 */
struct TaintAcct
{
    uint32_t regs = 0;
    uint64_t bits = 0;
    uint64_t transitions = 0;

    /**
     * Fold one entry's before/after contribution delta into the
     * running sums.  Unsigned wraparound makes the subtraction safe
     * for clear transitions (before > after).
     */
    void
    apply(const TaintContrib &before, const TaintContrib &after)
    {
        if (before == after)
            return;
        regs += after.regs - before.regs;
        bits += after.bits - before.bits;
        ++transitions;
    }

    /** Add a freshly counted entry (bulk recompute paths). */
    void
    add(const TaintContrib &c)
    {
        regs += c.regs;
        bits += c.bits;
    }

    /** Zero the sums, keeping the lifetime transition count. */
    void
    zero()
    {
        regs = 0;
        bits = 0;
    }

    /** Full reset (structure reset / reuse across runs). */
    void
    reset()
    {
        regs = 0;
        bits = 0;
        transitions = 0;
    }
};

} // namespace dejavuzz::ift

#endif // DEJAVUZZ_IFT_TAINTACCT_HH
