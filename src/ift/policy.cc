#include "ift/policy.hh"

namespace dejavuzz::ift {

const char *
iftModeName(IftMode mode)
{
    switch (mode) {
      case IftMode::Off:
        return "base";
      case IftMode::CellIFT:
        return "cellift";
      case IftMode::DiffIFT:
        return "diffift";
      case IftMode::DiffIFTFN:
        return "diffift-fn";
    }
    return "?";
}

} // namespace dejavuzz::ift
