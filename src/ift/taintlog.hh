/**
 * @file
 * Per-cycle taint observation log emitted by the differential
 * testbench, consumed by coverage measurement (Phase 2), the Fig. 6
 * taint-sum series, and encode sanitization (Phase 3 step 3.1).
 */

#ifndef DEJAVUZZ_IFT_TAINTLOG_HH
#define DEJAVUZZ_IFT_TAINTLOG_HH

#include <cstdint>
#include <vector>

namespace dejavuzz::ift {

/** Snapshot of one module's taint state in one cycle. */
struct ModuleTaintSample
{
    uint16_t module_id;
    uint32_t tainted_regs;  ///< state registers with any tainted bit
    uint64_t taint_bits;    ///< total tainted bits in the module
};

/** One cycle worth of module samples. */
struct TaintLogCycle
{
    uint64_t cycle;
    std::vector<ModuleTaintSample> modules;

    uint64_t
    taintSum() const
    {
        uint64_t sum = 0;
        for (const auto &sample : modules)
            sum += sample.taint_bits;
        return sum;
    }

    uint32_t
    taintedRegs() const
    {
        uint32_t sum = 0;
        for (const auto &sample : modules)
            sum += sample.tainted_regs;
        return sum;
    }
};

/** Whole-simulation taint log. */
struct TaintLog
{
    std::vector<TaintLogCycle> cycles;

    void clear() { cycles.clear(); }

    /** Total tainted bits at the final logged cycle. */
    uint64_t
    finalTaintSum() const
    {
        return cycles.empty() ? 0 : cycles.back().taintSum();
    }

    /**
     * Maximum per-cycle taint sum inside the half-open cycle range
     * [begin, end); used to check whether sensitive data propagated
     * during the transient window.
     */
    uint64_t
    maxTaintSumIn(uint64_t begin, uint64_t end) const
    {
        uint64_t best = 0;
        for (const auto &cyc : cycles) {
            if (cyc.cycle >= begin && cyc.cycle < end)
                best = std::max(best, cyc.taintSum());
        }
        return best;
    }
};

} // namespace dejavuzz::ift

#endif // DEJAVUZZ_IFT_TAINTLOG_HH
