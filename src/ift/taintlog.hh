/**
 * @file
 * Per-cycle taint observation log emitted by the differential
 * testbench, consumed by coverage measurement (Phase 2), the Fig. 6
 * taint-sum series, and encode sanitization (Phase 3 step 3.1).
 *
 * Storage layout: per-cycle records index into one shared sample
 * arena instead of owning a vector each. Appending a cycle in the
 * steady state is then two vector pushes with no per-cycle
 * allocation, and rolling back to a checkpoint is two resizes
 * (truncateCycles). The per-cycle taint sums are precomputed at
 * append time, so the Phase-2 taint-increase walk never touches the
 * arena at all.
 */

#ifndef DEJAVUZZ_IFT_TAINTLOG_HH
#define DEJAVUZZ_IFT_TAINTLOG_HH

#include <algorithm>
#include <cstdint>
#include <vector>

namespace dejavuzz::ift {

/** Snapshot of one module's taint state in one cycle. */
struct ModuleTaintSample
{
    uint16_t module_id;
    uint32_t tainted_regs;  ///< state registers with any tainted bit
    uint64_t taint_bits;    ///< total tainted bits in the module
};

/**
 * One cycle worth of module samples: a [begin, begin+count) slice of
 * the owning TaintLog's sample arena plus the cached cycle totals.
 */
struct TaintLogCycle
{
    uint64_t cycle = 0;
    uint32_t begin = 0;        ///< first sample index in the arena
    uint32_t count = 0;        ///< number of samples in this cycle
    uint32_t tainted_regs = 0; ///< cached sum over the slice
    uint64_t taint_sum = 0;    ///< cached taint_bits sum over the slice

    uint64_t taintSum() const { return taint_sum; }
    uint32_t taintedRegs() const { return tainted_regs; }
};

/** Whole-simulation taint log (arena-backed). */
struct TaintLog
{
    std::vector<TaintLogCycle> cycles;
    std::vector<ModuleTaintSample> samples; ///< shared sample arena

    void
    clear()
    {
        cycles.clear();
        samples.clear();
    }

    /** Start a cycle record; follow with addSample(), then finish. */
    TaintLogCycle &
    beginCycle(uint64_t cycle)
    {
        cycles.push_back(TaintLogCycle{
            cycle, static_cast<uint32_t>(samples.size()), 0, 0, 0});
        return cycles.back();
    }

    void
    addSample(TaintLogCycle &rec, const ModuleTaintSample &sample)
    {
        samples.push_back(sample);
        ++rec.count;
        rec.tainted_regs += sample.tainted_regs;
        rec.taint_sum += sample.taint_bits;
    }

    const ModuleTaintSample *
    samplesBegin(const TaintLogCycle &rec) const
    {
        return samples.data() + rec.begin;
    }

    const ModuleTaintSample *
    samplesEnd(const TaintLogCycle &rec) const
    {
        return samples.data() + rec.begin + rec.count;
    }

    /**
     * Drop every record after the first @p keep cycles (lockstep
     * rollback to a checkpointed log length). The arena truncates to
     * the kept prefix because cycles append samples contiguously.
     */
    void
    truncateCycles(size_t keep)
    {
        if (keep >= cycles.size())
            return;
        const TaintLogCycle &first_dropped = cycles[keep];
        samples.resize(first_dropped.begin);
        cycles.resize(keep);
    }

    /** Total tainted bits at the final logged cycle. */
    uint64_t
    finalTaintSum() const
    {
        return cycles.empty() ? 0 : cycles.back().taintSum();
    }

    /**
     * Maximum per-cycle taint sum inside the half-open cycle range
     * [begin, end); used to check whether sensitive data propagated
     * during the transient window.
     */
    uint64_t
    maxTaintSumIn(uint64_t begin, uint64_t end) const
    {
        uint64_t best = 0;
        for (const auto &cyc : cycles) {
            if (cyc.cycle >= begin && cyc.cycle < end)
                best = std::max(best, cyc.taintSum());
        }
        return best;
    }
};

} // namespace dejavuzz::ift

#endif // DEJAVUZZ_IFT_TAINTLOG_HH
