/**
 * @file
 * Control-flow taint propagation policies and the differential
 * context that distinguishes CellIFT from diffIFT.
 *
 * CellIFT (paper Policy 2) propagates control taint whenever the
 * select/enable/address of a control cell is tainted. diffIFT
 * (paper Table 1) additionally requires the signal to *differ* between
 * the two DUT instances running with different secrets: if no secret
 * can flip the signal, a tainted select cannot actually choose an
 * alternative path and is ignored. The diffIFT_FN mode models the
 * paper's worst-case false-negative study (identical secrets on both
 * instances => every diff signal is low => control taints never fire).
 *
 * Cross-instance comparison works through a per-cycle ControlTrace:
 * every control-cell evaluation records its (signal-id, value) pair in
 * program order. The sibling instance's trace for the same cycle is
 * replayed positionally; a value mismatch - or a structural mismatch,
 * which means the pipelines diverged - raises the diff bit.
 */

#ifndef DEJAVUZZ_IFT_POLICY_HH
#define DEJAVUZZ_IFT_POLICY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ift/taint.hh"

namespace dejavuzz::ift {

/** Which instrumentation is active on a DUT pair. */
enum class IftMode : uint8_t {
    Off,       ///< no shadow state at all (the "Base" rows of Table 4)
    CellIFT,   ///< Policy 2 control taints: select tainted => propagate
    DiffIFT,   ///< Table 1: select tainted AND cross-instance diff
    DiffIFTFN, ///< diff forced low (paper's false-negative worst case)
};

const char *iftModeName(IftMode mode);

/** One recorded control-signal evaluation. */
struct SigRec
{
    uint32_t sig;
    uint64_t value;
};

/**
 * Per-cycle, per-instance control-signal trace.
 *
 * Stored as parallel sig/value vectors rather than a SigRec vector:
 * SigRec pads to 16 bytes, so an element-wise struct compare could
 * not be a memcmp, while two packed arrays let the lockstep harness
 * compare a whole cycle's trace with two memcmps (the per-cycle
 * divergence check is the hottest comparison in diffIFT).
 */
class ControlTrace
{
  public:
    void
    clear()
    {
        sigs_.clear();
        values_.clear();
    }
    void
    record(uint32_t sig, uint64_t value)
    {
        sigs_.push_back(sig);
        values_.push_back(value);
    }
    size_t size() const { return sigs_.size(); }
    SigRec
    at(size_t index) const
    {
        return SigRec{sigs_[index], values_[index]};
    }
    const uint32_t *sigsData() const { return sigs_.data(); }
    const uint64_t *valuesData() const { return values_.data(); }

  private:
    std::vector<uint32_t> sigs_;
    std::vector<uint64_t> values_;
};

/**
 * Per-tick taint context handed to every module. Owns the gating
 * decision for control-taint propagation and records this instance's
 * control trace for the sibling's benefit.
 */
class TaintCtx
{
  public:
    TaintCtx() = default;

    /** Arm the context for one tick. @p other may be null (pass 1). */
    void
    begin(IftMode mode, ControlTrace *mine, const ControlTrace *other)
    {
        mode_ = mode;
        mine_ = mine;
        other_ = other;
        cursor_ = 0;
    }

    IftMode mode() const { return mode_; }
    bool off() const { return mode_ == IftMode::Off; }

    /**
     * Record a control-signal evaluation and return the control-taint
     * gate: true when a tainted select is allowed to propagate control
     * taint under the active mode.
     */
    bool
    gate(uint32_t sig, uint64_t value)
    {
        if (mine_ != nullptr)
            mine_->record(sig, value);
        switch (mode_) {
          case IftMode::Off:
          case IftMode::DiffIFTFN:
            return false;
          case IftMode::CellIFT:
            return true;
          case IftMode::DiffIFT: {
            // No sibling trace: gates stay closed. This is load-
            // bearing for both strategies — the legacy value pass
            // discards its taint results, but the lockstep record
            // sub-tick KEEPS them whenever the cycle's traces turn
            // out equal (equal traces <=> every gate closed), so
            // "closed" is the exact resolution, not a placeholder.
            if (other_ == nullptr)
                return false;
            if (cursor_ >= other_->size()) {
                ++cursor_;
                return true; // structural divergence
            }
            SigRec rec = other_->at(cursor_++);
            if (rec.sig != sig)
                return true; // structural divergence
            return rec.value != value;
          }
        }
        return false;
    }

    // --- control cells (paper Table 1) --------------------------------

    /** Multiplexer: out = sel ? b : a. */
    TV
    mux(uint32_t sig, TV sel, TV a, TV b)
    {
        bool take_b = (sel.v & 1) != 0;
        TV out{take_b ? b.v : a.v, take_b ? b.t : a.t};
        bool sel_tainted = (sel.t & 1) != 0;
        bool g = gate(sig, sel.v & 1);
        if (sel_tainted && g)
            out.t |= (a.v ^ b.v) | a.t | b.t;
        return out;
    }

    /** Comparison cell (eq). Output is a 1-bit TV. */
    TV
    eq(uint32_t sig, TV a, TV b)
    {
        uint64_t out = (a.v == b.v) ? 1 : 0;
        bool in_tainted = (a.t | b.t) != 0;
        bool g = gate(sig, out);
        uint64_t taint = 0;
        switch (mode_) {
          case IftMode::Off:
            break;
          case IftMode::CellIFT:
            taint = in_tainted ? 1 : 0;
            break;
          case IftMode::DiffIFT:
          case IftMode::DiffIFTFN:
            // Table 1: O_diff & |(A_t | B_t)
            taint = (in_tainted && g) ? 1 : 0;
            break;
        }
        return TV{out, taint};
    }

    /** Ordered comparison (lt/ge and friends) follows the eq policy. */
    TV
    cmp(uint32_t sig, uint64_t out, TV a, TV b)
    {
        bool in_tainted = (a.t | b.t) != 0;
        bool g = gate(sig, out);
        uint64_t taint = 0;
        switch (mode_) {
          case IftMode::Off:
            break;
          case IftMode::CellIFT:
            taint = in_tainted ? 1 : 0;
            break;
          case IftMode::DiffIFT:
          case IftMode::DiffIFTFN:
            taint = (in_tainted && g) ? 1 : 0;
            break;
        }
        return TV{out & 1, taint};
    }

    /**
     * Register with enable: q' = en ? d : q, with Table 1 control
     * taint when the enable is tainted and differs.
     */
    void
    regEn(uint32_t sig, TV en, TV d, TV &q)
    {
        bool enabled = (en.v & 1) != 0;
        TV next{enabled ? d.v : q.v, enabled ? d.t : q.t};
        bool en_tainted = (en.t & 1) != 0;
        bool g = gate(sig, en.v & 1);
        if (en_tainted && g)
            next.t |= (d.v ^ q.v) | d.t | q.t;
        q = next;
    }

    /**
     * Memory-read address gate: true when the (possibly tainted)
     * address must conservatively taint the whole read value.
     */
    bool
    memReadGate(uint32_t sig, TV addr)
    {
        bool g = gate(sig, addr.v);
        return addr.tainted() && g;
    }

    /**
     * Memory-write gate: true when a tainted write-enable or a tainted
     * address (with the write firing) must taint the whole array.
     */
    bool
    memWriteGate(uint32_t sig_en, uint32_t sig_addr, TV wen, TV addr)
    {
        bool g_en = gate(sig_en, wen.v & 1);
        bool g_addr = gate(sig_addr, addr.v);
        bool en_ctl = (wen.t & 1) != 0 && g_en;
        bool addr_ctl = addr.tainted() && (wen.v & 1) != 0 && g_addr;
        return en_ctl || addr_ctl;
    }

  private:
    IftMode mode_ = IftMode::Off;
    ControlTrace *mine_ = nullptr;
    const ControlTrace *other_ = nullptr;
    size_t cursor_ = 0;
};

/**
 * Stable control-signal identifiers. Composed as
 * (module id << 16) | site so both DUT instances agree on naming.
 */
constexpr uint32_t
sigId(uint16_t module_id, uint16_t site)
{
    return (static_cast<uint32_t>(module_id) << 16) | site;
}

} // namespace dejavuzz::ift

#endif // DEJAVUZZ_IFT_POLICY_HH
