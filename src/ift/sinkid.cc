#include "ift/sinkid.hh"

#include <deque>
#include <mutex>
#include <shared_mutex>

#include "util/logging.hh"

namespace dejavuzz::ift {

namespace {

struct SinkEntry
{
    std::string module;
    std::string name;
    std::string label;
};

// A deque keeps entry addresses stable across appends, so readers
// holding only the shared lock can safely return references that
// outlive the lock.
struct SinkTable
{
    std::shared_mutex mutex;
    std::deque<SinkEntry> entries;
};

SinkTable &
table()
{
    static SinkTable instance;
    return instance;
}

const SinkEntry &
entryOf(SinkId id)
{
    SinkTable &tab = table();
    std::shared_lock lock(tab.mutex);
    dv_assert(id < tab.entries.size());
    return tab.entries[id];
}

} // namespace

SinkId
internSink(std::string_view module, std::string_view name)
{
    SinkTable &tab = table();
    {
        std::shared_lock lock(tab.mutex);
        for (size_t i = 0; i < tab.entries.size(); ++i) {
            if (tab.entries[i].module == module &&
                tab.entries[i].name == name)
                return static_cast<SinkId>(i);
        }
    }
    std::unique_lock lock(tab.mutex);
    for (size_t i = 0; i < tab.entries.size(); ++i) {
        if (tab.entries[i].module == module &&
            tab.entries[i].name == name)
            return static_cast<SinkId>(i);
    }
    SinkEntry entry;
    entry.module = module;
    entry.name = name;
    entry.label = entry.module + "." + entry.name;
    tab.entries.push_back(std::move(entry));
    return static_cast<SinkId>(tab.entries.size() - 1);
}

const std::string &
sinkModule(SinkId id)
{
    return entryOf(id).module;
}

const std::string &
sinkName(SinkId id)
{
    return entryOf(id).name;
}

const std::string &
sinkLabel(SinkId id)
{
    return entryOf(id).label;
}

size_t
sinkTableSize()
{
    SinkTable &tab = table();
    std::shared_lock lock(tab.mutex);
    return tab.entries.size();
}

} // namespace dejavuzz::ift
