/**
 * @file
 * Interned sink identities.
 *
 * A sink is identified by its (module, array-name) pair. The
 * per-iteration hot path used to carry those as `std::string` members
 * of every `SinkSnapshot` and key `std::map`s with freshly
 * concatenated labels; interning collapses the identity to a dense
 * `uint32_t` so snapshots copy two words, comparisons are integer
 * compares, and indexes are flat arrays. Strings survive only in the
 * global table, resolved on the cold reporting paths.
 */

#ifndef DEJAVUZZ_IFT_SINKID_HH
#define DEJAVUZZ_IFT_SINKID_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dejavuzz::ift {

/** Dense interned identity of one sink array. */
using SinkId = uint32_t;

constexpr SinkId kInvalidSinkId = 0xffff'ffffu;

/**
 * Intern a (module, name) pair, returning its stable id. Repeated
 * calls with the same pair return the same id. Thread-safe: campaign
 * executors snapshot sinks concurrently, but call sites cache the
 * returned id so the lock is only ever taken on first use.
 */
SinkId internSink(std::string_view module, std::string_view name);

/** Module string of an interned sink. */
const std::string &sinkModule(SinkId id);

/** Array-name string of an interned sink. */
const std::string &sinkName(SinkId id);

/** "module.name" display label of an interned sink. */
const std::string &sinkLabel(SinkId id);

/** Number of interned sinks; ids are dense in [0, sinkTableSize()). */
size_t sinkTableSize();

} // namespace dejavuzz::ift

#endif // DEJAVUZZ_IFT_SINKID_HH
