/**
 * @file
 * Taint liveness annotations (paper §4.3.2).
 *
 * A sink is a register array that could hold encoded secrets (by
 * default every array in the design). A liveness annotation - the
 * paper's `(* liveness_mask = "..." *)` attribute - binds each entry
 * of the array to the state register that says whether the entry's
 * contents are architecturally reachable. A tainted sink entry whose
 * liveness bit is low (e.g. stale data in a Line Fill Buffer after the
 * MSHR invalidated it) is NOT exploitable and must not be reported.
 *
 * Sink identity is interned (sinkid.hh): a snapshot carries a dense
 * `SinkId` instead of module/name strings, and snapshot buffers are
 * filled through `SinkWriter` so the per-iteration loop reuses the
 * same vectors instead of reallocating them every simulation.
 */

#ifndef DEJAVUZZ_IFT_LIVENESS_HH
#define DEJAVUZZ_IFT_LIVENESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ift/sinkid.hh"

namespace dejavuzz::ift {

/** End-of-simulation snapshot of one sink array. */
struct SinkSnapshot
{
    SinkId id = kInvalidSinkId;  ///< interned (module, name) identity
    bool annotated = false;      ///< has a liveness_mask annotation
    std::vector<uint64_t> taint; ///< per-entry taint mask
    std::vector<uint8_t> live;   ///< per-entry liveness bit

    const std::string &module() const { return sinkModule(id); }
    const std::string &name() const { return sinkName(id); }
    /** "module.name" display label. */
    const std::string &label() const { return sinkLabel(id); }

    /** Entries whose taint is non-zero. */
    size_t
    taintedEntries() const
    {
        size_t n = 0;
        for (uint64_t mask : taint)
            n += mask != 0;
        return n;
    }

    /** Entries that are tainted AND live (exploitable). */
    size_t
    liveTaintedEntries() const
    {
        size_t n = 0;
        for (size_t i = 0; i < taint.size(); ++i) {
            bool live_bit = annotated ? live[i] != 0 : true;
            n += (taint[i] != 0 && live_bit);
        }
        return n;
    }
};

/**
 * Overwriting cursor over a snapshot buffer. Reuses the existing
 * elements (and thereby their taint/live vector capacity) in place of
 * clear-and-push_back, so a pooled `DutResult` never reallocates its
 * sink buffers once warm. Call finish() to drop any stale tail.
 */
class SinkWriter
{
  public:
    explicit SinkWriter(std::vector<SinkSnapshot> &out) : out_(&out) {}

    /** Next snapshot slot, reset to @p id / @p annotated. The caller
     *  must (re)assign the taint/live vectors in full. */
    SinkSnapshot &
    next(SinkId id, bool annotated)
    {
        if (used_ == out_->size())
            out_->emplace_back();
        SinkSnapshot &sink = (*out_)[used_++];
        sink.id = id;
        sink.annotated = annotated;
        return sink;
    }

    /** Truncate the buffer to the written prefix. */
    void finish() { out_->resize(used_); }

  private:
    std::vector<SinkSnapshot> *out_;
    size_t used_ = 0;
};

/** Verdict of the tainted-sink liveness analysis. */
struct LivenessVerdict
{
    bool exploitable = false;
    /** Sinks with live tainted entries. */
    std::vector<std::string> live_sinks;
    /** Sinks whose taints were filtered out as dead. */
    std::vector<std::string> dead_sinks;
};

/**
 * Classify a set of sink snapshots. With @p use_annotations false the
 * analysis degrades to reachability only (the paper's no-liveness
 * ablation: 54 of 75 cases misclassified).
 */
inline LivenessVerdict
analyzeSinks(const std::vector<SinkSnapshot> &sinks, bool use_annotations)
{
    LivenessVerdict verdict;
    for (const auto &sink : sinks) {
        size_t tainted = sink.taintedEntries();
        if (tainted == 0)
            continue;
        size_t live = use_annotations ? sink.liveTaintedEntries()
                                      : tainted;
        if (live > 0) {
            verdict.exploitable = true;
            verdict.live_sinks.push_back(sink.label());
        } else {
            verdict.dead_sinks.push_back(sink.label());
        }
    }
    return verdict;
}

} // namespace dejavuzz::ift

#endif // DEJAVUZZ_IFT_LIVENESS_HH
