/**
 * @file
 * Taint liveness annotations (paper §4.3.2).
 *
 * A sink is a register array that could hold encoded secrets (by
 * default every array in the design). A liveness annotation - the
 * paper's `(* liveness_mask = "..." *)` attribute - binds each entry
 * of the array to the state register that says whether the entry's
 * contents are architecturally reachable. A tainted sink entry whose
 * liveness bit is low (e.g. stale data in a Line Fill Buffer after the
 * MSHR invalidated it) is NOT exploitable and must not be reported.
 */

#ifndef DEJAVUZZ_IFT_LIVENESS_HH
#define DEJAVUZZ_IFT_LIVENESS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dejavuzz::ift {

/** End-of-simulation snapshot of one sink array. */
struct SinkSnapshot
{
    std::string module;          ///< owning RTL module
    std::string name;            ///< array name
    bool annotated = false;      ///< has a liveness_mask annotation
    std::vector<uint64_t> taint; ///< per-entry taint mask
    std::vector<uint8_t> live;   ///< per-entry liveness bit

    /** Entries whose taint is non-zero. */
    size_t
    taintedEntries() const
    {
        size_t n = 0;
        for (uint64_t mask : taint)
            n += mask != 0;
        return n;
    }

    /** Entries that are tainted AND live (exploitable). */
    size_t
    liveTaintedEntries() const
    {
        size_t n = 0;
        for (size_t i = 0; i < taint.size(); ++i) {
            bool live_bit = annotated ? live[i] != 0 : true;
            n += (taint[i] != 0 && live_bit);
        }
        return n;
    }
};

/** Verdict of the tainted-sink liveness analysis. */
struct LivenessVerdict
{
    bool exploitable = false;
    /** Sinks with live tainted entries. */
    std::vector<std::string> live_sinks;
    /** Sinks whose taints were filtered out as dead. */
    std::vector<std::string> dead_sinks;
};

/**
 * Classify a set of sink snapshots. With @p use_annotations false the
 * analysis degrades to reachability only (the paper's no-liveness
 * ablation: 54 of 75 cases misclassified).
 */
inline LivenessVerdict
analyzeSinks(const std::vector<SinkSnapshot> &sinks, bool use_annotations)
{
    LivenessVerdict verdict;
    for (const auto &sink : sinks) {
        size_t tainted = sink.taintedEntries();
        if (tainted == 0)
            continue;
        size_t live = use_annotations ? sink.liveTaintedEntries()
                                      : tainted;
        std::string label = sink.module + "." + sink.name;
        if (live > 0) {
            verdict.exploitable = true;
            verdict.live_sinks.push_back(std::move(label));
        } else {
            verdict.dead_sinks.push_back(std::move(label));
        }
    }
    return verdict;
}

} // namespace dejavuzz::ift

#endif // DEJAVUZZ_IFT_LIVENESS_HH
