#include "util/logging.hh"

#include <atomic>
#include <chrono>
#include <mutex>

namespace dejavuzz {

namespace {

std::atomic<bool> g_quiet{false};

/** One mutex for every stderr report: concurrent workers' lines
 *  must never interleave mid-line. */
std::mutex g_report_mutex;

/** Monotonic seconds since process start, for the line prefix. */
double
uptimeSeconds()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return std::chrono::duration<double>(clock::now() - epoch)
        .count();
}

/**
 * Format the whole line into one buffer and write it with a single
 * fprintf under the mutex: prefix, body and newline always land on
 * stderr as one unit, whatever thread races us.
 */
void
vreport(const char *prefix, const char *fmt, va_list ap)
{
    char body[4096];
    std::vsnprintf(body, sizeof(body), fmt, ap);
    const double now = uptimeSeconds();
    std::lock_guard<std::mutex> lock(g_report_mutex);
    std::fprintf(stderr, "[%10.6f] %s%s\n", now, prefix, body);
}

} // namespace

void
setQuiet(bool quiet)
{
    g_quiet.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return g_quiet.load(std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    char prefix[1024];
    std::snprintf(prefix, sizeof(prefix), "panic: %s:%d: ", file,
                  line);
    va_list ap;
    va_start(ap, fmt);
    vreport(prefix, fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    char prefix[1024];
    std::snprintf(prefix, sizeof(prefix), "fatal: %s:%d: ", file,
                  line);
    va_list ap;
    va_start(ap, fmt);
    vreport(prefix, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn: ", fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    if (isQuiet())
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info: ", fmt, ap);
    va_end(ap);
}

} // namespace dejavuzz
