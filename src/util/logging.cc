#include "util/logging.hh"

#include <atomic>

namespace dejavuzz {

namespace {
std::atomic<bool> g_quiet{false};

void
vreport(const char *prefix, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s", prefix);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void
setQuiet(bool quiet)
{
    g_quiet.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return g_quiet.load(std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn: ", fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    if (isQuiet())
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info: ", fmt, ap);
    va_end(ap);
}

} // namespace dejavuzz
