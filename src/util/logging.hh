/**
 * @file
 * Status/error reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated (a bug in this library);
 *            aborts the process.
 * fatal()  - the user asked for something impossible (bad configuration);
 *            exits with an error code.
 * warn()   - something looks off but simulation can continue.
 * inform() - plain status output.
 */

#ifndef DEJAVUZZ_UTIL_LOGGING_HH
#define DEJAVUZZ_UTIL_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace dejavuzz {

/** Global verbosity switch; benches silence inform() with this. */
void setQuiet(bool quiet);
bool isQuiet();

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);
void warnImpl(const char *fmt, ...);
void informImpl(const char *fmt, ...);

#define dv_panic(...) \
    ::dejavuzz::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define dv_fatal(...) \
    ::dejavuzz::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define dv_warn(...) ::dejavuzz::warnImpl(__VA_ARGS__)
#define dv_inform(...) ::dejavuzz::informImpl(__VA_ARGS__)

/** panic() unless the condition holds. */
#define dv_assert(cond, ...)                                          \
    do {                                                              \
        if (!(cond)) {                                                \
            ::dejavuzz::panicImpl(__FILE__, __LINE__,                 \
                                  "assertion failed: %s", #cond);     \
        }                                                             \
    } while (0)

} // namespace dejavuzz

#endif // DEJAVUZZ_UTIL_LOGGING_HH
