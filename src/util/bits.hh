/**
 * @file
 * Bit manipulation helpers shared by the ISA, IFT and uarch layers.
 */

#ifndef DEJAVUZZ_UTIL_BITS_HH
#define DEJAVUZZ_UTIL_BITS_HH

#include <bit>
#include <cstdint>

namespace dejavuzz {

/** A mask with the low @p n bits set (n in [0, 64]). */
constexpr uint64_t
maskLow(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

/** Extract bits [hi:lo] of @p value (inclusive, hi >= lo). */
constexpr uint64_t
bitsOf(uint64_t value, unsigned hi, unsigned lo)
{
    return (value >> lo) & maskLow(hi - lo + 1);
}

/** Sign-extend the low @p width bits of @p value to 64 bits. */
constexpr int64_t
signExtend(uint64_t value, unsigned width)
{
    if (width == 0 || width >= 64)
        return static_cast<int64_t>(value);
    uint64_t sign = 1ULL << (width - 1);
    return static_cast<int64_t>(((value & maskLow(width)) ^ sign) - sign);
}

/** Number of set bits. */
constexpr int
popcount64(uint64_t value)
{
    return std::popcount(value);
}

/** Number of trailing zero bits (64 for zero input). */
constexpr int
ctz64(uint64_t value)
{
    return std::countr_zero(value);
}

/** True iff @p value is a power of two (zero excluded). */
constexpr bool
isPow2(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(uint64_t value)
{
    unsigned n = 0;
    while (value > 1) {
        value >>= 1;
        ++n;
    }
    return n;
}

/**
 * Carry-aware taint smear for additive cells: every bit at or above the
 * lowest tainted input bit may be affected through carries.
 */
constexpr uint64_t
smearLeft(uint64_t taint)
{
    taint |= taint << 1;
    taint |= taint << 2;
    taint |= taint << 4;
    taint |= taint << 8;
    taint |= taint << 16;
    taint |= taint << 32;
    return taint;
}

/** FNV-1a 64-bit hash step, used for microarchitectural state hashes. */
constexpr uint64_t
fnv1a(uint64_t hash, uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (i * 8)) & 0xff;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

} // namespace dejavuzz

#endif // DEJAVUZZ_UTIL_BITS_HH
