/**
 * @file
 * Cooperative thread-local wall-clock watchdog.
 *
 * Simulations are cycle-budgeted, so every loop in the system
 * terminates — unless a defect (or an injected fault) makes one
 * iteration pathologically slow. The batch watchdog and the replay
 * guard bound that case: the owner installs a WallGuard with a
 * budget, and the simulator's cycle loop calls WallGuard::check()
 * from its hot path. check() is one thread-local counter decrement
 * per call (the clock is read every kCheckStride calls), so the
 * guard costs nothing measurable; when the deadline expires it
 * throws WallDeadlineExceeded, which the owner catches at the
 * batch/replay boundary and converts into a deadline-kill result.
 *
 * Guards nest conservatively: an inner guard can only tighten the
 * active deadline, never extend an outer one.
 */

#ifndef DEJAVUZZ_UTIL_WALLGUARD_HH
#define DEJAVUZZ_UTIL_WALLGUARD_HH

#include <chrono>
#include <stdexcept>

namespace dejavuzz::util {

/** Thrown by WallGuard::check() when the active deadline expired. */
class WallDeadlineExceeded : public std::runtime_error
{
  public:
    explicit WallDeadlineExceeded(double budget_sec)
        : std::runtime_error("wall deadline exceeded"),
          budget_sec_(budget_sec)
    {
    }

    double budgetSeconds() const { return budget_sec_; }

  private:
    double budget_sec_;
};

namespace detail {

struct WallGuardState
{
    double deadline = 0.0;   ///< absolute steady-clock seconds; 0 = off
    double budget_sec = 0.0; ///< budget of the guard that set it
    unsigned countdown = 0;  ///< calls until the next clock read
};

inline WallGuardState &
wallGuardState()
{
    thread_local WallGuardState state;
    return state;
}

inline double
wallNowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

} // namespace detail

class WallGuard
{
  public:
    /** Calls between clock reads in check(); a tick is microseconds,
     *  so the detection latency stays far below any useful budget. */
    static constexpr unsigned kCheckStride = 2048;

    /** Arm a deadline @p budget_sec from now (<= 0: inactive). An
     *  outer guard's earlier deadline always wins. */
    explicit WallGuard(double budget_sec)
        : saved_(detail::wallGuardState())
    {
        if (budget_sec <= 0.0)
            return;
        detail::WallGuardState &state = detail::wallGuardState();
        const double deadline =
            detail::wallNowSeconds() + budget_sec;
        if (state.deadline == 0.0 || deadline < state.deadline) {
            state.deadline = deadline;
            state.budget_sec = budget_sec;
            state.countdown = 0;
        }
    }

    ~WallGuard() { detail::wallGuardState() = saved_; }

    WallGuard(const WallGuard &) = delete;
    WallGuard &operator=(const WallGuard &) = delete;

    /** Hot-path probe: throws WallDeadlineExceeded when the active
     *  deadline has passed; no-op (one decrement) otherwise. */
    static void
    check()
    {
        detail::WallGuardState &state = detail::wallGuardState();
        if (state.deadline == 0.0)
            return;
        if (state.countdown > 0) {
            --state.countdown;
            return;
        }
        state.countdown = kCheckStride;
        if (detail::wallNowSeconds() >= state.deadline)
            throw WallDeadlineExceeded(state.budget_sec);
    }

    /** Whether a deadline is armed on this thread (tests). */
    static bool
    active()
    {
        return detail::wallGuardState().deadline != 0.0;
    }

  private:
    detail::WallGuardState saved_;
};

} // namespace dejavuzz::util

#endif // DEJAVUZZ_UTIL_WALLGUARD_HH
