/**
 * @file
 * Small statistics helpers used by the benches (means, confidence
 * intervals for Fig. 7-style plots).
 */

#ifndef DEJAVUZZ_UTIL_STATS_HH
#define DEJAVUZZ_UTIL_STATS_HH

#include <cmath>
#include <cstddef>
#include <vector>

namespace dejavuzz {

/** Running mean/variance accumulator (Welford). */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
    }

    size_t count() const { return n_; }
    double mean() const { return mean_; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    /**
     * Half-width of the ~95% confidence interval of the mean using the
     * normal approximation (1.96 * s / sqrt(n)).
     */
    double
    ci95() const
    {
        if (n_ < 2)
            return 0.0;
        return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
    }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/** Mean of a vector (0 for empty input). */
inline double
meanOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

} // namespace dejavuzz

#endif // DEJAVUZZ_UTIL_STATS_HH
