/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in the fuzzer flows through an Rng seeded
 * from the test-case seed, so campaigns replay bit-exactly. The engine
 * is Xoshiro256++ (public domain, Blackman/Vigna) seeded via SplitMix64.
 */

#ifndef DEJAVUZZ_UTIL_RNG_HH
#define DEJAVUZZ_UTIL_RNG_HH

#include <array>
#include <cstdint>

#include "util/logging.hh"

namespace dejavuzz {

/** SplitMix64 step; used for seeding and cheap hash mixing. */
constexpr uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Deterministic Xoshiro256++ engine. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x6a09e667f3bcc908ULL) { reseed(seed); }

    void
    reseed(uint64_t seed)
    {
        uint64_t sm = seed;
        for (auto &word : s_)
            word = splitmix64(sm);
    }

    /** Uniform 64-bit draw. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform draw in [0, bound); bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        dv_assert(bound != 0);
        // Lemire-style rejection-free-ish reduction; bias is negligible
        // for the bounds we use but we debias anyway for property tests.
        uint64_t threshold = (-bound) % bound;
        for (;;) {
            uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform draw in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        dv_assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability num/den. */
    bool
    chance(uint64_t num, uint64_t den)
    {
        dv_assert(den != 0 && num <= den);
        return below(den) < num;
    }

    /** Pick a random element of a non-empty container. */
    template <typename C>
    auto &
    pick(C &container)
    {
        dv_assert(!container.empty());
        return container[below(container.size())];
    }

    template <typename C>
    const auto &
    pick(const C &container) const = delete;

    /** Fork a child generator; decorrelated from the parent stream. */
    Rng
    fork()
    {
        uint64_t child_seed = next() ^ 0x9e3779b97f4a7c15ULL;
        return Rng(child_seed);
    }

    /**
     * Derive the seed of independent stream @p stream from @p master.
     * Two SplitMix64 rounds decorrelate adjacent stream ids; the same
     * (master, stream) pair always yields the same seed, so N worker
     * streams are reproducible from one campaign master seed.
     */
    static constexpr uint64_t
    streamSeed(uint64_t master, uint64_t stream)
    {
        uint64_t state = master ^ (stream * 0xd1342543de82ef95ULL);
        (void)splitmix64(state);
        return splitmix64(state);
    }

    /**
     * Fork stream @p stream without advancing the parent: repeated
     * forks with distinct stream ids from the same parent position
     * yield decorrelated, individually reproducible child streams.
     */
    Rng
    fork(uint64_t stream) const
    {
        return Rng(streamSeed(s_[0] ^ rotl(s_[2], 17), stream));
    }

    /** Raw engine state, for checkpoint/resume persistence. */
    std::array<uint64_t, 4>
    state() const
    {
        return s_;
    }

    /**
     * Restore a state captured by state(). The all-zero state is a
     * Xoshiro fixed point (the stream would emit zeros forever) and
     * can never be produced by reseed(), so it is rejected.
     */
    void
    setState(const std::array<uint64_t, 4> &state)
    {
        dv_assert(state[0] | state[1] | state[2] | state[3]);
        s_ = state;
    }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<uint64_t, 4> s_{};
};

} // namespace dejavuzz

#endif // DEJAVUZZ_UTIL_RNG_HH
