/**
 * @file
 * The paper's Figure 2 example circuit: the BOOM RoB entry-update
 * logic that causes CellIFT's taint explosion during rollback.
 *
 * Each of N entries holds a uopc field register updated when a valid
 * micro-op is enqueued and the tail pointer matches the entry index:
 *
 *   match_i      = (rob_tail_idx == i)
 *   update_i     = enq_valid & match_i
 *   rob_i_uopc'  = update_i ? enq_uopc : rob_i_uopc
 *
 * When rollback movement taints rob_tail_idx (and the frontend's use
 * of the RoB index taints enq_valid), CellIFT taints every entry's
 * uopc register at once; diffIFT only does so for entries whose
 * update enable actually differs across the two secret variants.
 */

#ifndef DEJAVUZZ_RTL_FIG2_ROB_HH
#define DEJAVUZZ_RTL_FIG2_ROB_HH

#include <vector>

#include "rtl/netlist.hh"

namespace dejavuzz::rtl {

/** Handles into the constructed Fig. 2 circuit. */
struct Fig2Rob
{
    Netlist netlist;
    NodeId enq_uopc;
    NodeId enq_valid;
    NodeId rob_tail_idx;
    std::vector<NodeId> uopc_regs;
};

/** Build the circuit with @p entries RoB entries. */
Fig2Rob buildFig2Rob(unsigned entries);

} // namespace dejavuzz::rtl

#endif // DEJAVUZZ_RTL_FIG2_ROB_HH
