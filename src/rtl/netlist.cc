#include "rtl/netlist.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace dejavuzz::rtl {

using ift::TV;

NodeId
Netlist::push(Cell cell)
{
    cells_.push_back(std::move(cell));
    return NodeId{static_cast<int>(cells_.size()) - 1};
}

NodeId
Netlist::constant(uint64_t value, uint8_t width)
{
    Cell cell;
    cell.kind = CellKind::Const;
    cell.width = width;
    cell.param = value & maskLow(width);
    return push(cell);
}

NodeId
Netlist::input(const std::string &name, uint8_t width)
{
    Cell cell;
    cell.kind = CellKind::Input;
    cell.width = width;
    cell.name = name;
    return push(cell);
}

namespace {
Cell
binary(CellKind kind, NodeId a, NodeId b, uint8_t width)
{
    dv_assert(a.valid() && b.valid());
    Cell cell;
    cell.kind = kind;
    cell.width = width;
    cell.a = a.index;
    cell.b = b.index;
    return cell;
}
} // namespace

NodeId
Netlist::andGate(NodeId a, NodeId b)
{
    uint8_t w = std::max(cells_[a.index].width, cells_[b.index].width);
    return push(binary(CellKind::And, a, b, w));
}

NodeId
Netlist::orGate(NodeId a, NodeId b)
{
    uint8_t w = std::max(cells_[a.index].width, cells_[b.index].width);
    return push(binary(CellKind::Or, a, b, w));
}

NodeId
Netlist::xorGate(NodeId a, NodeId b)
{
    uint8_t w = std::max(cells_[a.index].width, cells_[b.index].width);
    return push(binary(CellKind::Xor, a, b, w));
}

NodeId
Netlist::notGate(NodeId a)
{
    dv_assert(a.valid());
    Cell cell;
    cell.kind = CellKind::Not;
    cell.width = cells_[a.index].width;
    cell.a = a.index;
    return push(cell);
}

NodeId
Netlist::add(NodeId a, NodeId b)
{
    uint8_t w = std::max(cells_[a.index].width, cells_[b.index].width);
    return push(binary(CellKind::Add, a, b, w));
}

NodeId
Netlist::sub(NodeId a, NodeId b)
{
    uint8_t w = std::max(cells_[a.index].width, cells_[b.index].width);
    return push(binary(CellKind::Sub, a, b, w));
}

NodeId
Netlist::eq(NodeId a, NodeId b)
{
    return push(binary(CellKind::Eq, a, b, 1));
}

NodeId
Netlist::lt(NodeId a, NodeId b)
{
    return push(binary(CellKind::Lt, a, b, 1));
}

NodeId
Netlist::mux(NodeId sel, NodeId a, NodeId b)
{
    dv_assert(sel.valid() && a.valid() && b.valid());
    Cell cell;
    cell.kind = CellKind::Mux;
    cell.width = std::max(cells_[a.index].width, cells_[b.index].width);
    cell.a = a.index;
    cell.b = sel.index;
    cell.c = b.index;
    return push(cell);
}

NodeId
Netlist::reg(const std::string &name, uint8_t width, uint64_t reset)
{
    Cell cell;
    cell.kind = CellKind::Reg;
    cell.width = width;
    cell.name = name;
    cell.param = reset;
    return push(cell);
}

NodeId
Netlist::regEn(const std::string &name, NodeId en, NodeId d,
               uint8_t width, uint64_t reset)
{
    dv_assert(en.valid() && d.valid());
    Cell cell;
    cell.kind = CellKind::RegEn;
    cell.width = width;
    cell.name = name;
    cell.a = d.index;
    cell.b = en.index;
    cell.param = reset;
    return push(cell);
}

void
Netlist::connectReg(NodeId reg_node, NodeId next)
{
    dv_assert(reg_node.valid() && next.valid());
    Cell &cell = cells_[reg_node.index];
    dv_assert(cell.kind == CellKind::Reg);
    cell.a = next.index;
}

int
Netlist::memory(const std::string &name, uint32_t entries, uint8_t width)
{
    MemDecl decl;
    decl.name = name;
    decl.entries = entries;
    decl.width = width;
    mems_.push_back(std::move(decl));
    return static_cast<int>(mems_.size()) - 1;
}

void
Netlist::memWritePort(int mem, NodeId wen, NodeId waddr, NodeId wdata)
{
    dv_assert(mem >= 0 && mem < static_cast<int>(mems_.size()));
    mems_[mem].wen = wen.index;
    mems_[mem].waddr = waddr.index;
    mems_[mem].wdata = wdata.index;
}

NodeId
Netlist::memRead(int mem, NodeId addr)
{
    dv_assert(mem >= 0 && mem < static_cast<int>(mems_.size()));
    Cell cell;
    cell.kind = CellKind::MemRead;
    cell.width = mems_[mem].width;
    cell.a = addr.index;
    cell.mem = mem;
    return push(cell);
}

void
Netlist::annotateLiveness(int mem, NodeId liveness_vector)
{
    dv_assert(mem >= 0 && mem < static_cast<int>(mems_.size()));
    mems_[mem].liveness = liveness_vector.index;
    mems_[mem].annotated = true;
}

size_t
Netlist::registerCount() const
{
    size_t n = 0;
    for (const Cell &cell : cells_)
        n += (cell.kind == CellKind::Reg || cell.kind == CellKind::RegEn);
    return n;
}

uint64_t
Netlist::stateBits() const
{
    uint64_t bits = 0;
    for (const Cell &cell : cells_) {
        if (cell.kind == CellKind::Reg || cell.kind == CellKind::RegEn)
            bits += cell.width;
    }
    for (const MemDecl &mem : mems_)
        bits += static_cast<uint64_t>(mem.entries) * mem.width;
    return bits;
}

InstrumentReport
instrument(const Netlist &netlist, ift::IftMode mode,
           uint64_t cell_budget)
{
    InstrumentReport report;
    if (mode == ift::IftMode::Off)
        return report;

    // Word-level shadow logic: every cell gains a taint-policy twin,
    // every register a taint register.
    for (const Cell &cell : netlist.cells()) {
        switch (cell.kind) {
          case CellKind::Const:
          case CellKind::Input:
            break;
          case CellKind::Reg:
          case CellKind::RegEn:
            report.shadow_regs += 1;
            report.shadow_cells += 1;
            break;
          case CellKind::Mux:
          case CellKind::Eq:
          case CellKind::Lt:
            // Control cells: CellIFT inserts the Policy-2 taint
            // network; diffIFT additionally wires the cross-instance
            // diff comparator (one extra cell).
            report.shadow_cells +=
                (mode == ift::IftMode::CellIFT) ? 3 : 4;
            break;
          default:
            report.shadow_cells += 2;
            break;
        }
        if (report.shadow_cells > cell_budget) {
            report.timed_out = true;
            return report;
        }
    }

    for (const auto &mem : netlist.memories()) {
        uint64_t bits = static_cast<uint64_t>(mem.entries) * mem.width;
        if (mode == ift::IftMode::CellIFT) {
            // CellIFT instruments at the cell level and cannot see
            // word-level memories: each bit becomes a flattened
            // register plus its read/write mux tree (paper §6.3).
            report.flattened_bits += bits;
            report.shadow_regs += bits;
            report.shadow_cells += bits * 4;
        } else {
            // diffIFT stays at the RTL IR level: one shadow memory and
            // the Table-1 read/write policy cells per port.
            report.shadow_cells += 8;
            report.shadow_regs += mem.entries;
        }
        if (report.shadow_cells > cell_budget) {
            report.timed_out = true;
            return report;
        }
    }
    return report;
}

Evaluator::Evaluator(const Netlist &netlist) : netlist_(netlist)
{
    node_values_.assign(netlist.cells().size(), TV{});
    reg_state_.assign(netlist.cells().size(), TV{});
    inputs_.assign(netlist.cells().size(), TV{});
    for (size_t i = 0; i < netlist.cells().size(); ++i) {
        const Cell &cell = netlist.cells()[i];
        if (cell.kind == CellKind::Reg || cell.kind == CellKind::RegEn)
            reg_state_[i] = TV{cell.param, 0};
    }
    mem_state_.resize(netlist.memories().size());
    for (size_t m = 0; m < netlist.memories().size(); ++m)
        mem_state_[m].assign(netlist.memories()[m].entries, TV{});
}

void
Evaluator::setInput(NodeId node, TV value)
{
    dv_assert(node.valid());
    dv_assert(netlist_.cells()[node.index].kind == CellKind::Input);
    inputs_[node.index] = value;
}

void
Evaluator::step(ift::TaintCtx &ctx)
{
    const auto &cells = netlist_.cells();

    // Combinational evaluation in construction (topological) order.
    for (size_t i = 0; i < cells.size(); ++i) {
        const Cell &cell = cells[i];
        const uint64_t mask = maskLow(cell.width);
        auto in = [&](int idx) { return node_values_[idx]; };
        TV out;
        switch (cell.kind) {
          case CellKind::Const:
            out = TV{cell.param, 0};
            break;
          case CellKind::Input:
            out = inputs_[i];
            break;
          case CellKind::And:
            out = ift::andCell(in(cell.a), in(cell.b));
            break;
          case CellKind::Or:
            out = ift::orCell(in(cell.a), in(cell.b));
            break;
          case CellKind::Xor:
            out = ift::xorCell(in(cell.a), in(cell.b));
            break;
          case CellKind::Not:
            out = ift::notCell(in(cell.a));
            break;
          case CellKind::Add:
            out = ift::addCell(in(cell.a), in(cell.b));
            break;
          case CellKind::Sub:
            out = ift::subCell(in(cell.a), in(cell.b));
            break;
          case CellKind::Eq:
            out = ctx.eq(ift::sigId(0x7f00, static_cast<uint16_t>(i)),
                         in(cell.a), in(cell.b));
            break;
          case CellKind::Lt:
            out = ctx.cmp(ift::sigId(0x7f00, static_cast<uint16_t>(i)),
                          (in(cell.a).v & mask) < (in(cell.b).v & mask)
                              ? 1 : 0,
                          in(cell.a), in(cell.b));
            break;
          case CellKind::Mux:
            out = ctx.mux(ift::sigId(0x7f00, static_cast<uint16_t>(i)),
                          in(cell.b), in(cell.a), in(cell.c));
            break;
          case CellKind::Reg:
          case CellKind::RegEn:
            out = reg_state_[i];
            break;
          case CellKind::MemRead: {
            TV addr = in(cell.a);
            const auto &mem = mem_state_[cell.mem];
            uint32_t index =
                static_cast<uint32_t>(addr.v) % mem.size();
            out = mem[index];
            if (ctx.memReadGate(
                    ift::sigId(0x7f01, static_cast<uint16_t>(i)), addr))
                out.t = ~0ULL;
            break;
          }
        }
        out.v &= mask;
        out.t &= mask;
        if (ctx.off())
            out.t = 0;
        node_values_[i] = out;
    }

    // Clock edge: registers.
    for (size_t i = 0; i < cells.size(); ++i) {
        const Cell &cell = cells[i];
        if (cell.kind == CellKind::Reg) {
            if (cell.a >= 0)
                reg_state_[i] = node_values_[cell.a];
        } else if (cell.kind == CellKind::RegEn) {
            TV en = node_values_[cell.b];
            TV d = node_values_[cell.a];
            ctx.regEn(ift::sigId(0x7f02, static_cast<uint16_t>(i)), en,
                      d, reg_state_[i]);
            reg_state_[i].v &= maskLow(cell.width);
            reg_state_[i].t &= maskLow(cell.width);
        }
        if (ctx.off())
            reg_state_[i].t = 0;
    }

    // Clock edge: memory write ports (Table 1 write policy).
    for (size_t m = 0; m < netlist_.memories().size(); ++m) {
        const MemDecl &decl = netlist_.memories()[m];
        if (decl.wen < 0)
            continue;
        TV wen = node_values_[decl.wen];
        TV waddr = node_values_[decl.waddr];
        TV wdata = node_values_[decl.wdata];
        auto &mem = mem_state_[m];
        if (wen.v & 1) {
            uint32_t index = static_cast<uint32_t>(waddr.v) % mem.size();
            mem[index] = TV{wdata.v & maskLow(decl.width),
                            wdata.t & maskLow(decl.width)};
        }
        if (ctx.memWriteGate(
                ift::sigId(0x7f03, static_cast<uint16_t>(m)),
                ift::sigId(0x7f04, static_cast<uint16_t>(m)), wen,
                waddr)) {
            for (auto &entry : mem)
                entry.t = maskLow(decl.width);
        }
        if (ctx.off()) {
            for (auto &entry : mem)
                entry.t = 0;
        }
    }
}

TV
Evaluator::value(NodeId node) const
{
    dv_assert(node.valid());
    return node_values_[node.index];
}

TV
Evaluator::regState(NodeId node) const
{
    dv_assert(node.valid());
    return reg_state_[node.index];
}

TV
Evaluator::memEntry(int mem, uint32_t index) const
{
    return mem_state_[mem][index];
}

uint64_t
Evaluator::taintSum() const
{
    uint64_t sum = 0;
    for (size_t i = 0; i < netlist_.cells().size(); ++i) {
        const Cell &cell = netlist_.cells()[i];
        if (cell.kind == CellKind::Reg || cell.kind == CellKind::RegEn)
            sum += popcount64(reg_state_[i].t);
    }
    for (const auto &mem : mem_state_) {
        for (const TV &entry : mem)
            sum += popcount64(entry.t);
    }
    return sum;
}

uint32_t
Evaluator::taintedRegCount() const
{
    uint32_t count = 0;
    for (size_t i = 0; i < netlist_.cells().size(); ++i) {
        const Cell &cell = netlist_.cells()[i];
        if (cell.kind == CellKind::Reg || cell.kind == CellKind::RegEn)
            count += reg_state_[i].t != 0;
    }
    return count;
}

uint32_t
Evaluator::liveTaintedEntries(int mem) const
{
    const MemDecl &decl = netlist_.memories()[mem];
    uint64_t live_vector = ~0ULL;
    if (decl.annotated && decl.liveness >= 0)
        live_vector = node_values_[decl.liveness].v;
    uint32_t count = 0;
    for (size_t i = 0; i < mem_state_[mem].size(); ++i) {
        bool live = ((live_vector >> (i & 63)) & 1) != 0;
        if (mem_state_[mem][i].t != 0 && live)
            ++count;
    }
    return count;
}

} // namespace dejavuzz::rtl
