#include "rtl/fig2_rob.hh"

namespace dejavuzz::rtl {

Fig2Rob
buildFig2Rob(unsigned entries)
{
    Fig2Rob rob;
    Netlist &n = rob.netlist;

    rob.enq_uopc = n.input("enq_uopc", 7);
    rob.enq_valid = n.input("enq_valid", 1);
    rob.rob_tail_idx = n.input("rob_tail_idx", 8);

    for (unsigned i = 0; i < entries; ++i) {
        NodeId index = n.constant(i, 8);
        NodeId match = n.eq(rob.rob_tail_idx, index);
        NodeId update = n.andGate(rob.enq_valid, match);
        NodeId reg = n.regEn("rob_" + std::to_string(i) + "_uopc",
                             update, rob.enq_uopc, 7);
        rob.uopc_regs.push_back(reg);
    }
    return rob;
}

} // namespace dejavuzz::rtl
