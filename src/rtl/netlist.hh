/**
 * @file
 * A small word-level RTL intermediate representation.
 *
 * This is the analogue of the RTL IR the paper instruments with a
 * Yosys pass: designs are DAGs of word-level cells plus registers and
 * non-flattened memories. The evaluator executes a netlist cycle by
 * cycle under any IftMode, applying the CellIFT/diffIFT propagation
 * policies per cell. The instrumentation pass reports shadow-logic
 * statistics and models CellIFT's requirement to flatten memories
 * (the reason XiangShan's CellIFT build times out in Table 4).
 *
 * The full out-of-order cores in src/uarch/ are written directly in
 * C++ against the same policy kernels for speed; this IR exists to
 * validate those kernels against real circuits (tests build the
 * paper's Fig. 2 RoB-entry example here) and to cost instrumentation.
 */

#ifndef DEJAVUZZ_RTL_NETLIST_HH
#define DEJAVUZZ_RTL_NETLIST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ift/policy.hh"
#include "ift/taint.hh"

namespace dejavuzz::rtl {

/** Node handle inside a netlist. */
struct NodeId
{
    int index = -1;
    bool valid() const { return index >= 0; }
};

/** Word-level cell kinds. */
enum class CellKind : uint8_t {
    Const,   ///< literal (param = value)
    Input,   ///< external input, set per cycle
    And, Or, Xor, Not,
    Add, Sub,
    Eq,      ///< 1-bit equality (a comparison/control cell)
    Lt,      ///< 1-bit unsigned less-than (comparison cell)
    Mux,     ///< out = sel ? b : a (control cell)
    Reg,     ///< plain register; next value connected via connectReg
    RegEn,   ///< register with enable (control cell)
    MemRead, ///< combinational memory read port
};

/** One cell. Operand meaning depends on the kind. */
struct Cell
{
    CellKind kind;
    uint8_t width;       ///< result width in bits (<= 64)
    int a = -1;          ///< operand node (or mux 'a' / regEn 'd')
    int b = -1;          ///< operand node (or mux 'sel' / regEn 'en')
    int c = -1;          ///< mux 'b' input
    int mem = -1;        ///< memory index for MemRead
    uint64_t param = 0;  ///< Const value
    std::string name;    ///< diagnostic name (registers/inputs)
};

/** A non-flattened memory with one synchronous write port. */
struct MemDecl
{
    std::string name;
    uint32_t entries;
    uint8_t width;
    // Write port wiring (node ids); -1 when absent.
    int wen = -1;
    int waddr = -1;
    int wdata = -1;
    // Optional liveness_mask annotation: node whose bit i gives the
    // liveness of entry i (paper §4.3.2 generic liveness vector).
    int liveness = -1;
    bool annotated = false;
};

/** Builder-style netlist container. */
class Netlist
{
  public:
    NodeId constant(uint64_t value, uint8_t width = 64);
    NodeId input(const std::string &name, uint8_t width = 64);
    NodeId andGate(NodeId a, NodeId b);
    NodeId orGate(NodeId a, NodeId b);
    NodeId xorGate(NodeId a, NodeId b);
    NodeId notGate(NodeId a);
    NodeId add(NodeId a, NodeId b);
    NodeId sub(NodeId a, NodeId b);
    NodeId eq(NodeId a, NodeId b);
    NodeId lt(NodeId a, NodeId b);
    NodeId mux(NodeId sel, NodeId a, NodeId b);
    NodeId reg(const std::string &name, uint8_t width = 64,
               uint64_t reset = 0);
    NodeId regEn(const std::string &name, NodeId en, NodeId d,
                 uint8_t width = 64, uint64_t reset = 0);
    /** Connect a plain register's next-value input. */
    void connectReg(NodeId reg_node, NodeId next);

    /** Declare a memory; returns its index. */
    int memory(const std::string &name, uint32_t entries, uint8_t width);
    /** Attach the single synchronous write port. */
    void memWritePort(int mem, NodeId wen, NodeId waddr, NodeId wdata);
    /** Combinational read port. */
    NodeId memRead(int mem, NodeId addr);
    /** Annotate a memory with a liveness vector node. */
    void annotateLiveness(int mem, NodeId liveness_vector);

    const std::vector<Cell> &cells() const { return cells_; }
    const std::vector<MemDecl> &memories() const { return mems_; }
    size_t cellCount() const { return cells_.size(); }

    /** Count of state registers (Reg + RegEn). */
    size_t registerCount() const;
    /** Total state bits including memories. */
    uint64_t stateBits() const;

  private:
    NodeId push(Cell cell);

    std::vector<Cell> cells_;
    std::vector<MemDecl> mems_;
    std::vector<uint64_t> reg_resets_;
};

/** Result of running the instrumentation pass over a netlist. */
struct InstrumentReport
{
    bool timed_out = false;   ///< cell budget exhausted (CellIFT+big mems)
    uint64_t shadow_cells = 0;///< taint-logic cells inserted
    uint64_t shadow_regs = 0; ///< taint registers inserted
    uint64_t flattened_bits = 0; ///< memory bits flattened (CellIFT only)
};

/**
 * Model the shadow-circuit construction for the given mode.
 *
 * diffIFT instruments at the word level and keeps memories
 * non-flattened; CellIFT must flatten every memory into per-bit
 * registers and mux trees, which explodes on large designs. A cell
 * budget caps the construction; exceeding it reports a timeout, the
 * Table 4 "XiangShan + CellIFT" outcome.
 */
InstrumentReport instrument(const Netlist &netlist, ift::IftMode mode,
                            uint64_t cell_budget = ~0ULL);

/**
 * Cycle-accurate evaluator with taint shadow state.
 *
 * Combinational cells are evaluated in construction order (builders
 * guarantee operands precede users); registers and memory writes
 * commit at the clock edge inside step().
 */
class Evaluator
{
  public:
    explicit Evaluator(const Netlist &netlist);

    /** Set an input's value (and taint) for the coming cycle. */
    void setInput(NodeId node, ift::TV value);

    /** Evaluate one cycle under @p ctx (records control signals). */
    void step(ift::TaintCtx &ctx);

    /** Value of any node after the latest step. */
    ift::TV value(NodeId node) const;
    /** Current contents of a register (post-edge). */
    ift::TV regState(NodeId node) const;
    /** Memory entry (post-edge). */
    ift::TV memEntry(int mem, uint32_t index) const;

    /** Total tainted bits across registers and memories. */
    uint64_t taintSum() const;
    /** Number of registers with any tainted bit. */
    uint32_t taintedRegCount() const;

    /** Liveness-filtered tainted entries of an annotated memory. */
    uint32_t liveTaintedEntries(int mem) const;

  private:
    const Netlist &netlist_;
    std::vector<ift::TV> node_values_;
    std::vector<ift::TV> reg_state_;      // indexed by node id
    std::vector<std::vector<ift::TV>> mem_state_;
    std::vector<ift::TV> inputs_;         // indexed by node id
};

} // namespace dejavuzz::rtl

#endif // DEJAVUZZ_RTL_NETLIST_HH
