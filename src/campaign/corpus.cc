#include "campaign/corpus.hh"

#include <algorithm>
#include <set>
#include <unordered_set>
#include <utility>

#include "campaign/io_util.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace dejavuzz::campaign {

bool
corpusOrderBefore(const CorpusKey &a, const CorpusKey &b)
{
    if (a.gain != b.gain)
        return a.gain > b.gain;
    if (a.worker != b.worker)
        return a.worker < b.worker;
    return a.seq < b.seq;
}

bool
corpusOrderBefore(const CorpusEntry &a, const CorpusEntry &b)
{
    return corpusOrderBefore(CorpusKey{a.gain, a.worker, a.seq, {}},
                             CorpusKey{b.gain, b.worker, b.seq, {}});
}

namespace {

/** Shard selection must be a pure function of (worker, seq) so
 *  fetch() can find an entry without scanning every shard. */
size_t
shardIndexFor(unsigned worker, uint64_t seq, size_t shards)
{
    uint64_t state = (uint64_t{worker} << 32) ^ seq;
    return splitmix64(state) % shards;
}

} // namespace

SharedCorpus::SharedCorpus(unsigned shards, unsigned shard_cap)
    : shard_cap_(shard_cap), shards_(std::max(1u, shards))
{
    dv_assert(shard_cap >= 1);
}

bool
SharedCorpus::offer(CorpusEntry entry)
{
    Shard &shard = shards_[shardIndexFor(entry.worker, entry.seq,
                                         shards_.size())];

    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.entries.size() < shard_cap_) {
        shard.entries.push_back(std::move(entry));
        return true;
    }
    // Evict-min keeps the shard's retained set equal to the top-cap
    // of every entry ever offered, independent of arrival order.
    auto weakest = std::max_element(
        shard.entries.begin(), shard.entries.end(),
        [](const CorpusEntry &a, const CorpusEntry &b) {
            return corpusOrderBefore(a, b);
        });
    if (!corpusOrderBefore(entry, *weakest))
        return false;
    *weakest = std::move(entry);
    return true;
}

size_t
SharedCorpus::size() const
{
    size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        total += shard.entries.size();
    }
    return total;
}

std::vector<CorpusEntry>
SharedCorpus::snapshotSorted() const
{
    std::vector<CorpusEntry> out;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        out.insert(out.end(), shard.entries.begin(),
                   shard.entries.end());
    }
    std::sort(out.begin(), out.end(),
              [](const CorpusEntry &a, const CorpusEntry &b) {
                  return corpusOrderBefore(a, b);
              });
    return out;
}

std::vector<CorpusKey>
SharedCorpus::snapshotKeys() const
{
    std::vector<CorpusKey> out;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (const auto &entry : shard.entries)
            out.push_back(CorpusKey{entry.gain, entry.worker,
                                    entry.seq, entry.config});
    }
    std::sort(out.begin(), out.end(),
              [](const CorpusKey &a, const CorpusKey &b) {
                  return corpusOrderBefore(a, b);
              });
    return out;
}

SharedCorpus::MinimizeStats
SharedCorpus::minimize(const CoverageEval &eval)
{
    // Canonical order makes the greedy walk deterministic: the
    // highest-gain representative of each content class / coverage
    // contribution survives, whatever order entries arrived in.
    std::vector<CorpusEntry> entries = snapshotSorted();

    MinimizeStats stats;
    stats.before = entries.size();

    std::vector<CorpusEntry> kept;
    kept.reserve(entries.size());
    std::unordered_set<uint64_t> seen_hashes;
    std::set<std::pair<uint16_t, uint32_t>> covered;
    for (CorpusEntry &entry : entries) {
        if (!seen_hashes.insert(hashTestCase(entry.tc)).second) {
            ++stats.duplicates;
            continue;
        }
        if (eval) {
            bool fresh = false;
            for (const ift::CoveragePoint &point : eval(entry)) {
                if (covered
                        .insert({point.module_id, point.index})
                        .second) {
                    fresh = true;
                }
            }
            if (!fresh) {
                ++stats.subsumed;
                continue;
            }
        }
        kept.push_back(std::move(entry));
    }
    stats.kept = kept.size();

    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.entries.clear();
    }
    for (CorpusEntry &entry : kept)
        offer(std::move(entry));
    return stats;
}

bool
SharedCorpus::fetch(unsigned worker, uint64_t seq,
                    CorpusEntry &out) const
{
    const Shard &shard =
        shards_[shardIndexFor(worker, seq, shards_.size())];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto &entry : shard.entries) {
        if (entry.worker == worker && entry.seq == seq) {
            out = entry;
            return true;
        }
    }
    return false;
}

bool
SharedCorpus::remove(unsigned worker, uint64_t seq)
{
    Shard &shard =
        shards_[shardIndexFor(worker, seq, shards_.size())];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.entries.begin(); it != shard.entries.end();
         ++it) {
        if (it->worker == worker && it->seq == seq) {
            shard.entries.erase(it);
            return true;
        }
    }
    return false;
}

size_t
SharedCorpus::removeMatching(const core::TestCase &tc)
{
    // Quarantined seeds arrive without their (worker, seq) identity
    // (the inject pipeline carries bare test cases), so removal is
    // by content. Cold path: quarantine is rare, the scan is not.
    const uint64_t hash = hashTestCase(tc);
    size_t removed = 0;
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (auto it = shard.entries.begin();
             it != shard.entries.end();) {
            if (hashTestCase(it->tc) == hash) {
                it = shard.entries.erase(it);
                ++removed;
            } else {
                ++it;
            }
        }
    }
    return removed;
}

} // namespace dejavuzz::campaign
