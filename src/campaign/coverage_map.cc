#include "campaign/coverage_map.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"

namespace dejavuzz::campaign {

namespace {

constexpr size_t
wordCount(uint32_t slots)
{
    return (static_cast<size_t>(slots) + 63) / 64;
}

} // namespace

GlobalCoverage::GlobalCoverage(const ift::TaintCoverage &shape)
{
    modules_.resize(shape.moduleCount());
    for (size_t m = 0; m < modules_.size(); ++m) {
        uint32_t slots =
            shape.moduleSlots(static_cast<uint16_t>(m));
        modules_[m].slots = slots;
        modules_[m].words =
            std::make_unique<std::atomic<uint64_t>[]>(
                wordCount(slots));
        for (size_t w = 0; w < wordCount(slots); ++w)
            modules_[m].words[w].store(0, std::memory_order_relaxed);
    }
}

uint64_t
GlobalCoverage::mergeFrom(const ift::TaintCoverage &local)
{
    dv_assert(local.moduleCount() == modules_.size());
    uint64_t fresh = 0;
    for (size_t m = 0; m < modules_.size(); ++m) {
        auto module_id = static_cast<uint16_t>(m);
        dv_assert(local.moduleSlots(module_id) == modules_[m].slots);
        const uint32_t slots = modules_[m].slots;
        for (size_t w = 0; w < wordCount(slots); ++w) {
            uint64_t bits = 0;
            const uint32_t base = static_cast<uint32_t>(w) * 64;
            const uint32_t limit =
                std::min<uint32_t>(64, slots - base);
            for (uint32_t b = 0; b < limit; ++b) {
                if (local.slotSet(module_id, base + b))
                    bits |= uint64_t{1} << b;
            }
            if (bits == 0)
                continue;
            uint64_t prev = modules_[m].words[w].fetch_or(
                bits, std::memory_order_relaxed);
            fresh += static_cast<uint64_t>(
                popcount64(bits & ~prev));
        }
    }
    if (fresh != 0)
        points_.fetch_add(fresh, std::memory_order_relaxed);
    return fresh;
}

uint32_t
GlobalCoverage::moduleSlots(size_t module) const
{
    dv_assert(module < modules_.size());
    return modules_[module].slots;
}

size_t
GlobalCoverage::moduleWords(size_t module) const
{
    dv_assert(module < modules_.size());
    return wordCount(modules_[module].slots);
}

uint64_t
GlobalCoverage::word(size_t module, size_t word) const
{
    dv_assert(module < modules_.size());
    dv_assert(word < wordCount(modules_[module].slots));
    return modules_[module].words[word].load(
        std::memory_order_relaxed);
}

bool
GlobalCoverage::restoreWord(size_t module, size_t word,
                            uint64_t bits)
{
    dv_assert(module < modules_.size());
    dv_assert(word < wordCount(modules_[module].slots));
    const uint32_t slots = modules_[module].slots;
    const uint32_t base = static_cast<uint32_t>(word) * 64;
    const uint32_t limit = std::min<uint32_t>(64, slots - base);
    if (limit < 64 && (bits >> limit) != 0)
        return false; // set bit past the module's slot count
    uint64_t prev = modules_[module].words[word].fetch_or(
        bits, std::memory_order_relaxed);
    uint64_t fresh = popcount64(bits & ~prev);
    if (fresh != 0)
        points_.fetch_add(fresh, std::memory_order_relaxed);
    return true;
}

uint64_t
GlobalCoverage::pullInto(ift::TaintCoverage &local) const
{
    dv_assert(local.moduleCount() == modules_.size());
    uint64_t fresh = 0;
    for (size_t m = 0; m < modules_.size(); ++m) {
        auto module_id = static_cast<uint16_t>(m);
        const uint32_t slots = modules_[m].slots;
        for (size_t w = 0; w < wordCount(slots); ++w) {
            uint64_t bits =
                modules_[m].words[w].load(std::memory_order_relaxed);
            while (bits != 0) {
                const int b = ctz64(bits);
                bits &= bits - 1;
                const uint32_t index =
                    static_cast<uint32_t>(w) * 64 +
                    static_cast<uint32_t>(b);
                if (local.markSlot(module_id, index))
                    ++fresh;
            }
        }
    }
    return fresh;
}

} // namespace dejavuzz::campaign
