/**
 * @file
 * Poison-seed quarantine ledger (`quarantine.jsonl`).
 *
 * A seed whose batch keeps crashing or blowing its deadline is not
 * worth the fleet's time — but it is exactly the input a triager
 * wants to see. The orchestrator moves such seeds out of the corpus
 * and into an append-only JSONL ledger in the campaign directory:
 * one flat record per seed with the serialized test case, the
 * failure signature, and how many attempts it survived. Records are
 * appended at epoch barriers in (shard, batch) order, so
 * deterministic campaigns produce byte-identical ledgers.
 *
 * Appends are the one campaign-dir write that is not
 * tmp+rename-atomic (an append-only ledger must not rewrite history
 * on every record); the loader therefore tolerates a torn *final*
 * line — the only damage a crash mid-append can do — and stays
 * strict about everything before it. Schema:
 * docs/campaign-format.md.
 */

#ifndef DEJAVUZZ_CAMPAIGN_QUARANTINE_HH
#define DEJAVUZZ_CAMPAIGN_QUARANTINE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/seed.hh"

namespace dejavuzz::campaign {

/** One quarantined seed. */
struct QuarantineRecord
{
    unsigned worker = 0;   ///< shard whose batch carried the seed
    uint64_t batch = 0;    ///< shard-global batch index that failed
    uint64_t attempts = 0; ///< executions attempted (1 + retries)
    /** Failure signature: "batch-deadline", or "batch-throw: <what>"
     *  with the exception text. */
    std::string reason;
    core::TestCase tc;     ///< the poison seed itself
};

/** Emit @p rec as one flat JSON line (test case hex-encoded). */
void writeQuarantineRecord(std::ostream &os,
                           const QuarantineRecord &rec);

/**
 * Append @p records to the ledger at @p path (created if missing).
 * Returns false with a diagnostic on an IO failure.
 */
bool appendQuarantine(const std::string &path,
                      const std::vector<QuarantineRecord> &records,
                      std::string *error = nullptr);

/**
 * Parse a quarantine ledger. Strict per record (unknown type, a
 * missing field, or a corrupt case blob fail the load) except for a
 * torn final line, which is dropped with a note in @p torn_note —
 * the expected debris of a crash mid-append.
 */
bool loadQuarantine(std::istream &is,
                    std::vector<QuarantineRecord> &out,
                    std::string *error = nullptr,
                    std::string *torn_note = nullptr);

/** loadQuarantine over a file; a missing file is an empty ledger. */
bool loadQuarantineFile(const std::string &path,
                        std::vector<QuarantineRecord> &out,
                        std::string *error = nullptr,
                        std::string *torn_note = nullptr);

} // namespace dejavuzz::campaign

#endif // DEJAVUZZ_CAMPAIGN_QUARANTINE_HH
