/**
 * @file
 * Deterministic fault injection for the campaign runtime
 * (`--inject-faults SPEC`).
 *
 * Robustness code is only trustworthy if every recovery path runs
 * regularly, so the failpoints below are compiled in unconditionally
 * and armed at runtime from a spec string. Each failpoint is driven
 * by one process-wide seeded Rng: a given (seed, probability, call
 * sequence) always fires the same faults, so single-threaded CI runs
 * reproduce exactly and multi-threaded runs stay statistically
 * stable. Fault decisions never feed the fuzzing RNG streams — with
 * no spec armed, every shouldFail() is a single relaxed load and the
 * campaign is bit-identical to a build without this header.
 *
 * Spec grammar (comma-separated, docs/robustness.md):
 *
 *   seed=S,KIND=P[:MAX],...
 *
 * where KIND is one of `batch-throw`, `batch-hang`, `short-write`,
 * `torn-rename`, `enospc`; P is the firing probability in [0, 1];
 * and the optional :MAX caps the total number of firings (so CI can
 * arm `enospc=1:2` and know exactly two writes fail).
 */

#ifndef DEJAVUZZ_CAMPAIGN_FAULTS_HH
#define DEJAVUZZ_CAMPAIGN_FAULTS_HH

#include <cstdint>
#include <string>

namespace dejavuzz::campaign {

/** Failpoint identities, one per recovery path under test. */
enum class Fault : uint8_t {
    BatchThrow, ///< executor: runBatch throws before running
    BatchHang,  ///< executor: batch behaves as non-terminating
    ShortWrite, ///< campaign IO: artifact write truncated mid-file
    TornRename, ///< campaign IO: rename leaves a truncated target
    Enospc,     ///< campaign IO: write fails as if the disk filled
    kCount,
};

inline constexpr unsigned kNumFaults =
    static_cast<unsigned>(Fault::kCount);

/** Stable spec/diagnostic name ("batch-throw", ...). */
const char *faultName(Fault f);

/**
 * Arm the registry from @p spec (grammar above). Replaces any
 * previous configuration. An empty spec disarms everything. Returns
 * false with a diagnostic in @p error on a malformed spec (unknown
 * kind, probability outside [0, 1], bad number), leaving the
 * registry disarmed.
 */
bool armFaults(const std::string &spec, std::string *error = nullptr);

/** Disarm every failpoint (tests; also what armFaults("") does). */
void disarmFaults();

/** Whether any failpoint is currently armed (one relaxed load). */
bool faultsArmed();

/**
 * Roll failpoint @p f: true when it fires this call. Firing
 * decrements the kind's remaining-count cap and bumps the
 * `faults_injected` obs counter. Always false when disarmed.
 */
bool shouldFail(Fault f);

/** Total failpoint firings since the registry was last armed. */
uint64_t faultsFired();

} // namespace dejavuzz::campaign

#endif // DEJAVUZZ_CAMPAIGN_FAULTS_HH
