/**
 * @file
 * Work-stealing batch scheduler for the campaign orchestrator.
 *
 * Every epoch's iteration budget is split into small batches held in
 * per-worker deques. An executor thread drains its own deque from the
 * front; when it runs dry it steals a batch from the *back* of the
 * most-loaded compatible peer (Chase–Lev's owner-front/thief-back
 * discipline, mutex-backed — contention is one brief lock per batch,
 * negligible next to a batch's simulation cost). The epoch barrier is
 * therefore reached when global work is exhausted, not when the
 * slowest shard finishes its private quota.
 *
 * Batches are self-contained deterministic work units (see
 * core::Fuzzer::BatchSpec): stealing changes which thread executes a
 * batch and when, never what the batch computes, so a stealing run
 * and a --no-steal run with the same master seed produce identical
 * corpora and bug ledgers.
 *
 * Compatibility: a thief may only execute batches whose shard shares
 * its (core config, ablation variant) — the executor reuses its own
 * simulation resources, which are only interchangeable within a
 * kind. Shard kinds are fixed at construction.
 */

#ifndef DEJAVUZZ_CAMPAIGN_SCHEDULER_HH
#define DEJAVUZZ_CAMPAIGN_SCHEDULER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "core/seed.hh"

namespace dejavuzz::campaign {

/** One schedulable unit: a contiguous slice of a shard's iteration
 *  stream plus the corpus seeds assigned to it. */
struct BatchTask
{
    unsigned shard = 0;      ///< shard whose logical stream this is
    uint64_t index = 0;      ///< shard-global batch index (monotonic)
    uint64_t iterations = 0;
    size_t slot = 0;         ///< result slot within the epoch plan
    std::vector<core::TestCase> inject;
};

class WorkStealingScheduler
{
  public:
    /**
     * @p kinds maps each worker to its compatibility class id;
     * stealing never crosses classes. Size fixes the worker count.
     */
    explicit WorkStealingScheduler(const std::vector<unsigned> &kinds);

    WorkStealingScheduler(const WorkStealingScheduler &) = delete;
    WorkStealingScheduler &
    operator=(const WorkStealingScheduler &) = delete;

    /** Enqueue a batch at the back of @p worker's deque (planning
     *  phase; also safe while executors run). */
    void push(unsigned worker, BatchTask task);

    /** Pop the front of @p worker's own deque. */
    bool popOwn(unsigned worker, BatchTask &out);

    /**
     * Steal one batch from the back of the most-loaded deque that is
     * compatible with @p thief (ties break toward the lowest worker
     * index). Returns false when every compatible deque is empty —
     * deques are only refilled between epochs, so a false return
     * means the thief's epoch work is done.
     */
    bool steal(unsigned thief, BatchTask &out);

    /** Entries currently queued for @p worker. */
    size_t load(unsigned worker) const;

    /** Batches executed by a non-owner thread so far. */
    uint64_t stolen() const
    {
        return stolen_.load(std::memory_order_relaxed);
    }

    unsigned workers() const
    {
        return static_cast<unsigned>(deques_.size());
    }

  private:
    struct Deque
    {
        mutable std::mutex mu;
        std::deque<BatchTask> tasks;
        /** Lock-free load hint for victim selection; the deque mutex
         *  still arbitrates the actual pop. */
        std::atomic<size_t> size{0};
    };

    std::vector<unsigned> kinds_;
    std::vector<Deque> deques_;
    std::atomic<uint64_t> stolen_{0};
};

} // namespace dejavuzz::campaign

#endif // DEJAVUZZ_CAMPAIGN_SCHEDULER_HH
