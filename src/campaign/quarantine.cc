#include "campaign/quarantine.hh"

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "campaign/io_util.hh"
#include "campaign/stats.hh"
#include "report/json.hh"

namespace dejavuzz::campaign {

namespace {

bool
fieldU64(const report::JsonObject &obj, const char *key,
         uint64_t &out, std::string &error)
{
    if (!error.empty())
        return false;
    auto it = obj.find(key);
    if (it == obj.end()) {
        error = std::string("missing field \"") + key + "\"";
        return false;
    }
    const report::JsonValue &value = it->second;
    bool integral = value.isNumber() && !value.raw.empty();
    for (char c : value.raw) {
        if (c < '0' || c > '9')
            integral = false;
    }
    if (!integral) {
        error = std::string("field \"") + key +
                "\" must be a non-negative integer";
        return false;
    }
    errno = 0;
    out = std::strtoull(value.raw.c_str(), nullptr, 10);
    if (errno == ERANGE) {
        error = std::string("field \"") + key +
                "\" exceeds the 64-bit range";
        return false;
    }
    return true;
}

bool
fieldStr(const report::JsonObject &obj, const char *key,
         std::string &out, std::string &error)
{
    if (!error.empty())
        return false;
    auto it = obj.find(key);
    if (it == obj.end() || !it->second.isString()) {
        error = std::string("missing string field \"") + key + "\"";
        return false;
    }
    out = it->second.text;
    return true;
}

std::string
hexEncode(const std::string &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (unsigned char c : bytes) {
        out.push_back(digits[c >> 4]);
        out.push_back(digits[c & 0xf]);
    }
    return out;
}

bool
hexDecode(const std::string &hex, std::string &out)
{
    if (hex.size() % 2 != 0)
        return false;
    out.clear();
    out.reserve(hex.size() / 2);
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return -1;
    };
    for (size_t i = 0; i < hex.size(); i += 2) {
        int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(static_cast<char>((hi << 4) | lo));
    }
    return true;
}

/** Parse one ledger line; @p error gets the reason on failure. */
bool
parseRecord(const std::string &line, QuarantineRecord &rec,
            std::string &error)
{
    report::JsonObject obj;
    if (!report::parseFlatJsonObject(line, obj, &error))
        return false;

    std::string type;
    fieldStr(obj, "type", type, error);
    if (!error.empty())
        return false;
    if (type != "quarantine") {
        error = "unknown record type \"" + type + "\"";
        return false;
    }

    uint64_t worker = 0;
    std::string case_hex;
    fieldU64(obj, "worker", worker, error);
    fieldU64(obj, "batch", rec.batch, error);
    fieldU64(obj, "attempts", rec.attempts, error);
    fieldStr(obj, "reason", rec.reason, error);
    fieldStr(obj, "case", case_hex, error);
    if (!error.empty())
        return false;
    rec.worker = static_cast<unsigned>(worker);

    std::string blob;
    if (!hexDecode(case_hex, blob)) {
        error = "field \"case\" is not a hex blob";
        return false;
    }
    std::istringstream blob_in(blob);
    bio::Reader reader{blob_in, {}};
    if (!bio::readTestCase(reader, rec.tc)) {
        error = "case blob: " + reader.error;
        return false;
    }
    if (blob_in.peek() != std::char_traits<char>::eof()) {
        error = "case blob: trailing bytes after the test case";
        return false;
    }
    return true;
}

} // namespace

void
writeQuarantineRecord(std::ostream &os, const QuarantineRecord &rec)
{
    std::ostringstream blob;
    bio::writeTestCase(blob, rec.tc);
    os << "{\"type\":\"quarantine\",\"worker\":" << rec.worker
       << ",\"batch\":" << rec.batch
       << ",\"attempts\":" << rec.attempts << ",\"reason\":\""
       << jsonEscape(rec.reason) << "\",\"case\":\""
       << hexEncode(blob.str()) << "\"}\n";
}

bool
appendQuarantine(const std::string &path,
                 const std::vector<QuarantineRecord> &records,
                 std::string *error)
{
    if (records.empty())
        return true;
    std::ofstream os(path, std::ios::out | std::ios::app);
    if (!os) {
        if (error)
            *error = "cannot open " + path + " for appending";
        return false;
    }
    for (const QuarantineRecord &rec : records)
        writeQuarantineRecord(os, rec);
    os.flush();
    if (!os) {
        if (error)
            *error = "append to " + path + " failed";
        return false;
    }
    return true;
}

bool
loadQuarantine(std::istream &is, std::vector<QuarantineRecord> &out,
               std::string *error, std::string *torn_note)
{
    out.clear();
    std::string line;
    size_t lineno = 0;
    std::string pending_error;
    size_t pending_lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        // A record that fails to parse is fatal only if any line
        // follows it: the torn final line a crash mid-append leaves
        // behind is dropped, everything earlier must be intact.
        if (!pending_error.empty()) {
            if (error)
                *error = "quarantine.jsonl line " +
                         std::to_string(pending_lineno) + ": " +
                         pending_error;
            return false;
        }
        QuarantineRecord rec;
        std::string rec_error;
        if (parseRecord(line, rec, rec_error)) {
            out.push_back(std::move(rec));
        } else {
            pending_error = rec_error;
            pending_lineno = lineno;
        }
    }
    if (!pending_error.empty() && torn_note) {
        *torn_note = "quarantine.jsonl: dropped torn final line " +
                     std::to_string(pending_lineno) + " (" +
                     pending_error + ")";
    }
    return true;
}

bool
loadQuarantineFile(const std::string &path,
                   std::vector<QuarantineRecord> &out,
                   std::string *error, std::string *torn_note)
{
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
        out.clear();
        return true;
    }
    std::ifstream is(path);
    if (!is) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    return loadQuarantine(is, out, error, torn_note);
}

} // namespace dejavuzz::campaign
