#include "campaign/scheduler.hh"

#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace dejavuzz::campaign {

WorkStealingScheduler::WorkStealingScheduler(
    const std::vector<unsigned> &kinds)
    : kinds_(kinds), deques_(kinds.size())
{
    dv_assert(!kinds_.empty());
}

void
WorkStealingScheduler::push(unsigned worker, BatchTask task)
{
    dv_assert(worker < deques_.size());
    Deque &dq = deques_[worker];
    std::lock_guard<std::mutex> lock(dq.mu);
    dq.tasks.push_back(std::move(task));
    dq.size.store(dq.tasks.size(), std::memory_order_relaxed);
    obs::histRecord(obs::Hist::DequeDepth, dq.tasks.size());
}

bool
WorkStealingScheduler::popOwn(unsigned worker, BatchTask &out)
{
    dv_assert(worker < deques_.size());
    Deque &dq = deques_[worker];
    std::lock_guard<std::mutex> lock(dq.mu);
    if (dq.tasks.empty())
        return false;
    out = std::move(dq.tasks.front());
    dq.tasks.pop_front();
    dq.size.store(dq.tasks.size(), std::memory_order_relaxed);
    return true;
}

bool
WorkStealingScheduler::steal(unsigned thief, BatchTask &out)
{
    dv_assert(thief < deques_.size());
    obs::counterAdd(obs::Ctr::StealAttempts);
    uint64_t scanned = 0;
    // Retry until a pop succeeds or a scan finds everything empty.
    // A scan can lose a race (the hinted victim drains before we
    // lock it), but work is never *added* mid-epoch, so an all-empty
    // scan is a stable termination condition.
    for (;;) {
        size_t best_load = 0;
        unsigned victim = deques_.size();
        for (unsigned w = 0; w < deques_.size(); ++w) {
            if (w == thief || kinds_[w] != kinds_[thief])
                continue;
            ++scanned;
            size_t load = deques_[w].size.load(
                std::memory_order_relaxed);
            if (load > best_load) {
                best_load = load;
                victim = w;
            }
        }
        if (victim == deques_.size()) {
            obs::histRecord(obs::Hist::VictimScan, scanned);
            return false;
        }
        Deque &dq = deques_[victim];
        std::lock_guard<std::mutex> lock(dq.mu);
        if (dq.tasks.empty())
            continue; // raced with the owner; rescan
        out = std::move(dq.tasks.back());
        dq.tasks.pop_back();
        dq.size.store(dq.tasks.size(), std::memory_order_relaxed);
        stolen_.fetch_add(1, std::memory_order_relaxed);
        obs::counterAdd(obs::Ctr::StealHits);
        obs::histRecord(obs::Hist::VictimScan, scanned);
        return true;
    }
}

size_t
WorkStealingScheduler::load(unsigned worker) const
{
    dv_assert(worker < deques_.size());
    return deques_[worker].size.load(std::memory_order_relaxed);
}

} // namespace dejavuzz::campaign
