/**
 * @file
 * Campaign binary-IO primitives (io_util.hh) and corpus persistence
 * (SharedCorpus::saveTo / loadFrom).
 *
 * The corpus on-disk layout is the versioned little-endian binary
 * format specified in docs/campaign-format.md: an 8-byte magic +
 * version header carrying the saving campaign's master seed, followed
 * by the retained entries in canonical (gain desc, worker, seq)
 * order. Each entry serializes its full admission metadata (gain,
 * author worker, author-local sequence number, core config name) and
 * the complete test case, so a resumed campaign can both re-admit and
 * re-execute every saved seed. Loading is strict: any truncation,
 * size bound violation, or out-of-range enum value fails the whole
 * load — and no count field is trusted to size an allocation before
 * the bytes it promises have actually been read.
 */

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "campaign/corpus.hh"
#include "campaign/io_util.hh"

namespace dejavuzz::campaign::bio {

// --- little-endian primitives ---------------------------------------------

void
putU8(std::ostream &os, uint8_t value)
{
    os.put(static_cast<char>(value));
}

void
putU32(std::ostream &os, uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        os.put(static_cast<char>((value >> shift) & 0xff));
}

void
putU64(std::ostream &os, uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        os.put(static_cast<char>((value >> shift) & 0xff));
}

void
putI64(std::ostream &os, int64_t value)
{
    putU64(os, static_cast<uint64_t>(value));
}

void
putString(std::ostream &os, const std::string &text)
{
    putU32(os, static_cast<uint32_t>(text.size()));
    os.write(text.data(), static_cast<std::streamsize>(text.size()));
}

// --- Reader ----------------------------------------------------------------

bool
Reader::fail(const std::string &what)
{
    if (error.empty())
        error = what;
    return false;
}

bool
Reader::bytes(void *out, size_t count, const char *what)
{
    if (!error.empty())
        return false;
    is.read(static_cast<char *>(out),
            static_cast<std::streamsize>(count));
    if (static_cast<size_t>(is.gcount()) != count)
        return fail(std::string("truncated ") + what);
    return true;
}

bool
Reader::u8(uint8_t &out, const char *what)
{
    return bytes(&out, 1, what);
}

bool
Reader::u32(uint32_t &out, const char *what)
{
    uint8_t raw[4];
    if (!bytes(raw, sizeof(raw), what))
        return false;
    out = 0;
    for (int i = 0; i < 4; ++i)
        out |= static_cast<uint32_t>(raw[i]) << (8 * i);
    return true;
}

bool
Reader::u64(uint64_t &out, const char *what)
{
    uint8_t raw[8];
    if (!bytes(raw, sizeof(raw), what))
        return false;
    out = 0;
    for (int i = 0; i < 8; ++i)
        out |= static_cast<uint64_t>(raw[i]) << (8 * i);
    return true;
}

bool
Reader::i64(int64_t &out, const char *what)
{
    uint64_t raw = 0;
    if (!u64(raw, what))
        return false;
    out = static_cast<int64_t>(raw);
    return true;
}

bool
Reader::str(std::string &out, const char *what)
{
    uint32_t length = 0;
    if (!u32(length, what))
        return false;
    if (length > kMaxStringBytes)
        return fail(std::string("oversized string in ") + what);
    out.resize(length);
    return length == 0 || bytes(out.data(), length, what);
}

bool
Reader::count(uint32_t &out, uint32_t limit, const char *what)
{
    if (!u32(out, what))
        return false;
    if (out > limit)
        return fail(std::string("oversized count in ") + what);
    return true;
}

bool
readBool(Reader &in, bool &out, const char *what)
{
    uint8_t raw = 0;
    if (!in.u8(raw, what))
        return false;
    if (raw > 1)
        return in.fail(std::string("non-boolean ") + what);
    out = raw != 0;
    return true;
}

bool
readIndex(Reader &in, size_t &out, const char *what)
{
    uint64_t raw = 0;
    if (!in.u64(raw, what))
        return false;
    if (raw > std::numeric_limits<size_t>::max())
        return in.fail(std::string("oversized ") + what);
    out = static_cast<size_t>(raw);
    return true;
}

// --- test-case payload ------------------------------------------------------

namespace {

void
writeInstr(std::ostream &os, const isa::Instr &instr)
{
    putU8(os, static_cast<uint8_t>(instr.op));
    putU8(os, instr.rd);
    putU8(os, instr.rs1);
    putU8(os, instr.rs2);
    putI64(os, instr.imm);
    putU32(os, instr.raw);
}

bool
readInstr(Reader &in, isa::Instr &instr)
{
    return in.enumByte(instr.op,
                       static_cast<unsigned>(isa::Op::NumOps),
                       "instr.op") &&
           in.u8(instr.rd, "instr.rd") &&
           in.u8(instr.rs1, "instr.rs1") &&
           in.u8(instr.rs2, "instr.rs2") &&
           in.i64(instr.imm, "instr.imm") &&
           in.u32(instr.raw, "instr.raw");
}

} // namespace

void
writeTestCase(std::ostream &os, const core::TestCase &tc)
{
    putU64(os, tc.seed.id);
    putU8(os, static_cast<uint8_t>(tc.seed.trigger));
    putU64(os, tc.seed.entropy);
    putU8(os, tc.seed.window.meltdown ? 1 : 0);
    putU8(os, static_cast<uint8_t>(tc.seed.window.prot));
    putU8(os, tc.seed.window.mask_high_bits ? 1 : 0);
    putU32(os, tc.seed.window.encode_ops);
    putU64(os, tc.seed.window.encode_entropy);

    putU8(os, static_cast<uint8_t>(tc.schedule.transient_prot));
    putU32(os, static_cast<uint32_t>(tc.schedule.packets.size()));
    for (const auto &packet : tc.schedule.packets) {
        putString(os, packet.label);
        putU8(os, static_cast<uint8_t>(packet.kind));
        putU64(os, packet.entry);
        putU32(os, static_cast<uint32_t>(packet.instrs.size()));
        for (const auto &instr : packet.instrs)
            writeInstr(os, instr);
    }

    putU32(os, static_cast<uint32_t>(tc.data.secret.size()));
    os.write(reinterpret_cast<const char *>(tc.data.secret.data()),
             static_cast<std::streamsize>(tc.data.secret.size()));
    putU32(os, static_cast<uint32_t>(tc.data.operands.size()));
    for (uint64_t operand : tc.data.operands)
        putU64(os, operand);

    putU64(os, tc.trigger_addr);
    putU64(os, tc.window_addr);
    putU64(os, tc.window_begin);
    putU64(os, tc.window_end);
    putU64(os, tc.encode_begin);
    putU64(os, tc.encode_end);
    putU8(os, tc.has_window_payload ? 1 : 0);

    // v2 tail: the attack model and its schedule projections. Placed
    // after every v1 field so the v1 prefix stays byte-identical.
    putU8(os, static_cast<uint8_t>(tc.seed.model.tmpl));
    putU8(os, static_cast<uint8_t>(tc.seed.model.attacker));
    putU8(os, static_cast<uint8_t>(tc.seed.model.victim));
    putU8(os, tc.seed.model.supervisor_victim ? 1 : 0);
    putU8(os, tc.schedule.victim_supervisor ? 1 : 0);
    putU8(os, tc.schedule.double_fetch ? 1 : 0);
}

bool
readTestCase(Reader &in, core::TestCase &tc, uint32_t version)
{
    // v1 payloads predate the attack model; absence means the
    // implicit same-domain model. Reset explicitly: tc may be a
    // reused object carrying another case's model.
    tc.seed.model = core::AttackModel{};
    tc.schedule.victim_supervisor = false;
    tc.schedule.double_fetch = false;
    const unsigned trigger_bound = version >= kTestCaseModelVersion
                                       ? core::kTriggerKinds
                                       : core::kLegacyTriggerKinds;
    if (!in.u64(tc.seed.id, "seed.id") ||
        !in.enumByte(tc.seed.trigger, trigger_bound,
                     "seed.trigger") ||
        !in.u64(tc.seed.entropy, "seed.entropy") ||
        !readBool(in, tc.seed.window.meltdown, "window.meltdown") ||
        !in.enumByte(tc.seed.window.prot,
                     static_cast<unsigned>(swapmem::SecretProt::Pte) +
                         1,
                     "window.prot") ||
        !readBool(in, tc.seed.window.mask_high_bits,
                  "window.mask_high_bits") ||
        !in.u32(tc.seed.window.encode_ops, "window.encode_ops") ||
        !in.u64(tc.seed.window.encode_entropy,
                "window.encode_entropy")) {
        return false;
    }

    if (!in.enumByte(tc.schedule.transient_prot,
                     static_cast<unsigned>(swapmem::SecretProt::Pte) +
                         1,
                     "schedule.transient_prot")) {
        return false;
    }
    uint32_t packet_count = 0;
    if (!in.count(packet_count, kMaxPackets, "schedule.packets"))
        return false;
    tc.schedule.packets.clear();
    tc.schedule.packets.reserve(
        std::min(packet_count, kMaxReserveItems));
    for (uint32_t p = 0; p < packet_count; ++p) {
        swapmem::SwapPacket packet;
        if (!in.str(packet.label, "packet.label") ||
            !in.enumByte(packet.kind,
                         static_cast<unsigned>(
                             swapmem::PacketKind::Transient) +
                             1,
                         "packet.kind") ||
            !in.u64(packet.entry, "packet.entry")) {
            return false;
        }
        uint32_t instr_count = 0;
        if (!in.count(instr_count, kMaxInstrs, "packet.instrs"))
            return false;
        packet.instrs.clear();
        packet.instrs.reserve(
            std::min(instr_count, kMaxReserveItems));
        for (uint32_t i = 0; i < instr_count; ++i) {
            isa::Instr instr;
            if (!readInstr(in, instr))
                return false;
            packet.instrs.push_back(instr);
        }
        tc.schedule.packets.push_back(std::move(packet));
    }

    uint32_t secret_bytes = 0;
    if (!in.u32(secret_bytes, "data.secret"))
        return false;
    if (secret_bytes != tc.data.secret.size())
        return in.fail("secret block size mismatch");
    if (!in.bytes(tc.data.secret.data(), tc.data.secret.size(),
                  "data.secret")) {
        return false;
    }
    uint32_t operand_count = 0;
    if (!in.count(operand_count, kMaxVectorItems, "data.operands"))
        return false;
    tc.data.operands.clear();
    tc.data.operands.reserve(
        std::min(operand_count, kMaxReserveItems));
    for (uint32_t i = 0; i < operand_count; ++i) {
        uint64_t operand = 0;
        if (!in.u64(operand, "data.operand"))
            return false;
        tc.data.operands.push_back(operand);
    }

    if (!in.u64(tc.trigger_addr, "trigger_addr") ||
        !in.u64(tc.window_addr, "window_addr") ||
        !readIndex(in, tc.window_begin, "window_begin") ||
        !readIndex(in, tc.window_end, "window_end") ||
        !readIndex(in, tc.encode_begin, "encode_begin") ||
        !readIndex(in, tc.encode_end, "encode_end") ||
        !readBool(in, tc.has_window_payload, "has_window_payload")) {
        return false;
    }
    if (version < kTestCaseModelVersion)
        return true;

    // isa::Priv is {U=0, S=1, M=3}; 2 is architecturally reserved.
    auto priv_ok = [](isa::Priv p) {
        return p == isa::Priv::U || p == isa::Priv::S ||
               p == isa::Priv::M;
    };
    if (!in.enumByte(tc.seed.model.tmpl,
                     static_cast<unsigned>(
                         core::AttackTemplate::kCount),
                     "model.tmpl") ||
        !in.enumByte(tc.seed.model.attacker, 4, "model.attacker") ||
        !in.enumByte(tc.seed.model.victim, 4, "model.victim") ||
        !readBool(in, tc.seed.model.supervisor_victim,
                  "model.supervisor_victim") ||
        !readBool(in, tc.schedule.victim_supervisor,
                  "schedule.victim_supervisor") ||
        !readBool(in, tc.schedule.double_fetch,
                  "schedule.double_fetch")) {
        return false;
    }
    if (!priv_ok(tc.seed.model.attacker) ||
        !priv_ok(tc.seed.model.victim)) {
        return in.fail("reserved privilege level in attack model");
    }
    return true;
}

} // namespace dejavuzz::campaign::bio

namespace dejavuzz::campaign {

namespace {

constexpr char kMagic[8] = {'D', 'V', 'Z', 'C', 'O', 'R', 'P', 'S'};

} // namespace

uint64_t
hashTestCase(const core::TestCase &tc)
{
    std::ostringstream blob(std::ios::binary);
    bio::writeTestCase(blob, tc);
    const std::string bytes = blob.str();
    // FNV-1a 64: cheap, deterministic across platforms, and applied
    // to the canonical serialization so equality is semantic.
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : bytes) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

bool
SharedCorpus::saveTo(std::ostream &os, uint64_t master_seed) const
{
    std::vector<CorpusEntry> entries = snapshotSorted();

    os.write(kMagic, sizeof(kMagic));
    bio::putU32(os, kFormatVersion);
    bio::putU64(os, master_seed);
    bio::putU64(os, entries.size());
    for (const auto &entry : entries) {
        bio::putU64(os, entry.gain);
        bio::putU32(os, entry.worker);
        bio::putU64(os, entry.seq);
        bio::putString(os, entry.config);
        bio::writeTestCase(os, entry.tc);
    }
    os.flush();
    return os.good();
}

bool
SharedCorpus::loadFrom(std::istream &is, CorpusFile &out,
                       std::string *error)
{
    bio::Reader in{is, {}};
    auto report = [&](bool ok) {
        if (!ok && error)
            *error = in.error.empty() ? "corpus load failed"
                                      : in.error;
        return ok;
    };

    char magic[sizeof(kMagic)] = {};
    if (!in.bytes(magic, sizeof(magic), "magic"))
        return report(false);
    if (!std::equal(std::begin(magic), std::end(magic),
                    std::begin(kMagic))) {
        in.fail("bad corpus magic");
        return report(false);
    }
    if (!in.u32(out.version, "version"))
        return report(false);
    if (out.version < 1 || out.version > kFormatVersion) {
        in.fail("unsupported corpus version " +
                std::to_string(out.version));
        return report(false);
    }
    if (!in.u64(out.master_seed, "master_seed"))
        return report(false);

    uint64_t entry_count = 0;
    if (!in.u64(entry_count, "entry count"))
        return report(false);
    if (entry_count > bio::kMaxVectorItems) {
        in.fail("oversized entry count");
        return report(false);
    }

    out.entries.clear();
    out.entries.reserve(std::min<uint64_t>(entry_count,
                                           bio::kMaxReserveItems));
    for (uint64_t i = 0; i < entry_count; ++i) {
        CorpusEntry entry;
        uint32_t worker = 0;
        if (!in.u64(entry.gain, "entry.gain") ||
            !in.u32(worker, "entry.worker") ||
            !in.u64(entry.seq, "entry.seq") ||
            !in.str(entry.config, "entry.config") ||
            !bio::readTestCase(in, entry.tc, out.version)) {
            return report(false);
        }
        entry.worker = worker;
        out.entries.push_back(std::move(entry));
    }

    // Trailing garbage means the file is not what saveTo() wrote.
    if (is.peek() != std::istream::traits_type::eof()) {
        in.fail("trailing bytes after final corpus entry");
        return report(false);
    }
    return report(true);
}

} // namespace dejavuzz::campaign
