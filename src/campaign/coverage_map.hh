/**
 * @file
 * Campaign-global taint-coverage map (lock-free merge target).
 *
 * Each worker owns a private ift::TaintCoverage that drives its local
 * novelty decisions. At the end of every epoch slice the worker ORs
 * its bitmap into this shared map with atomic fetch_or — merging is
 * commutative, so the global state at each epoch barrier is identical
 * no matter how the worker threads interleave. At the start of the
 * next slice each worker pulls the global map back into its private
 * map, so mutation-budget decisions reflect what the whole fleet has
 * already discovered.
 */

#ifndef DEJAVUZZ_CAMPAIGN_COVERAGE_MAP_HH
#define DEJAVUZZ_CAMPAIGN_COVERAGE_MAP_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "ift/coverage.hh"

namespace dejavuzz::campaign {

class GlobalCoverage
{
  public:
    /**
     * Size the per-module word arrays from @p shape. All maps merged
     * into this instance must share @p shape's module registration
     * structure (same DUT configuration).
     */
    explicit GlobalCoverage(const ift::TaintCoverage &shape);

    GlobalCoverage(const GlobalCoverage &) = delete;
    GlobalCoverage &operator=(const GlobalCoverage &) = delete;

    /**
     * OR @p local's discovered slots into the global map. Lock-free
     * and safe to call concurrently from any number of workers.
     * Returns the number of slots that were globally fresh.
     */
    uint64_t mergeFrom(const ift::TaintCoverage &local);

    /**
     * Import every globally discovered slot into @p local. Returns
     * the number of slots @p local had not seen. Callers must
     * guarantee no concurrent mergeFrom is mutating the map mid-pull
     * when they need barrier-deterministic results (the orchestrator
     * pulls only between epoch slices).
     */
    uint64_t pullInto(ift::TaintCoverage &local) const;

    /** Total distinct (module, count) tuples discovered fleet-wide. */
    uint64_t points() const { return points_.load(std::memory_order_relaxed); }

    size_t moduleCount() const { return modules_.size(); }

    // --- snapshot save/restore (src/campaign/snapshot_io.cc) ----------
    //
    // The word accessors expose the raw bitmaps so a campaign
    // checkpoint can persist the fleet map and a resumed campaign can
    // reinstall it. Callers must not race mergeFrom() (the
    // orchestrator snapshots/restores only outside epochs).

    /** Bitmap slot count of module @p module (shape invariant). */
    uint32_t moduleSlots(size_t module) const;

    /** Number of 64-bit bitmap words of module @p module. */
    size_t moduleWords(size_t module) const;

    /** Bitmap word @p word of module @p module. */
    uint64_t word(size_t module, size_t word) const;

    /**
     * OR @p bits into word @p word of module @p module, updating the
     * points() total. Bits addressing slots past moduleSlots() are
     * rejected with a false return (corrupt snapshot), leaving the
     * word untouched. Returns true and adds the fresh-bit count to
     * points() otherwise.
     */
    bool restoreWord(size_t module, size_t word, uint64_t bits);

  private:
    struct ModuleWords
    {
        uint32_t slots = 0;
        std::unique_ptr<std::atomic<uint64_t>[]> words;
    };

    std::vector<ModuleWords> modules_;
    std::atomic<uint64_t> points_{0};
};

} // namespace dejavuzz::campaign

#endif // DEJAVUZZ_CAMPAIGN_COVERAGE_MAP_HH
