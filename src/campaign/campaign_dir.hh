/**
 * @file
 * Self-contained campaign directories (`dejavuzz --campaign-dir`).
 *
 * One directory holds everything a campaign produces and everything
 * a resume needs:
 *
 *   meta.json       — flat JSON: schema versions + the campaign
 *                     configuration (master seed, fleet shape,
 *                     scheduler grain). Written last, so a directory
 *                     with a meta.json is complete.
 *   campaign.jsonl  — the JSONL campaign log (docs/campaign-format.md).
 *   corpus.bin      — the shared corpus (SharedCorpus::saveTo).
 *   campaign.snap   — the checkpoint: coverage snapshot, shard
 *                     continuations, steal Rng, bug ledger with
 *                     reproducers (snapshot.hh).
 *
 * Resuming requires the invocation to match the saved meta.json —
 * same schema versions and same campaign configuration (budgets may
 * grow; that is how a resume extends a run). Mismatches are reported
 * as a list of human-readable differences and the directory is left
 * untouched: `dejavuzz` errors out instead of silently overwriting
 * a foreign campaign.
 */

#ifndef DEJAVUZZ_CAMPAIGN_CAMPAIGN_DIR_HH
#define DEJAVUZZ_CAMPAIGN_CAMPAIGN_DIR_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/corpus.hh"
#include "campaign/snapshot.hh"

namespace dejavuzz::campaign {

struct CampaignOptions;
class CampaignOrchestrator;

/** meta.json schema version written by writeMeta(). */
constexpr uint32_t kMetaFormatVersion = 1;

/** File names inside a campaign directory. */
struct CampaignDirPaths
{
    std::string meta;
    std::string log;
    std::string corpus;
    std::string snapshot;
    std::string quarantine; ///< poison-seed ledger (quarantine.hh)
};

CampaignDirPaths campaignDirPaths(const std::string &dir);

/** Retained previous generation of @p path ("<path>.prev"). */
std::string prevPath(const std::string &path);

/**
 * Remove stale `*.tmp` debris a crash mid-save can leave behind.
 * Returns the number of files removed. Called on open and before
 * every save; never touches completed artifacts.
 */
size_t sweepCampaignDir(const std::string &dir);

/** The persisted campaign configuration (meta.json contents). */
struct CampaignMeta
{
    uint32_t meta_version = kMetaFormatVersion;
    uint32_t corpus_version = 0;
    uint32_t snapshot_version = 0;
    uint64_t master_seed = 0;
    uint64_t workers = 0;
    std::string policy; ///< replicas | sweep | ablation | heads
    std::string core;   ///< base core config name
    uint64_t epoch_iterations = 0;
    uint64_t batch_iterations = 0;
    bool steal_batches = true;
    uint64_t steals_per_epoch = 0;
    /** Fleet-wide attack-template mask (`--templates`); absent in
     *  older meta.json files, which imply the legacy single model. */
    uint64_t model_mask = core::kLegacyModelMask;
    uint64_t corpus_shards = 0;
    uint64_t corpus_shard_cap = 0;
    /** Save-generation counter: incremented on every save (autosave
     *  or final), binding meta.json to the artifact trailers written
     *  with it. Not part of the campaign configuration — never
     *  compared by metaMismatches(). Absent in pre-robustness
     *  meta.json files, which imply generation 0 and raw
     *  (trailer-less) artifacts. */
    uint64_t generation = 0;
};

/** Derive the meta record of @p options (current schema versions). */
CampaignMeta metaFromOptions(const CampaignOptions &options);

/** Emit @p meta as one flat JSON object line. */
void writeMeta(std::ostream &os, const CampaignMeta &meta);

/**
 * Parse a meta.json written by writeMeta(). Strict: a malformed or
 * non-flat object, a missing/mistyped field, or trailing content
 * fails with a diagnostic in @p error (when non-null).
 */
bool readMeta(std::istream &is, CampaignMeta &out,
              std::string *error = nullptr);

/**
 * Compare a saved meta against the current invocation's. Returns
 * one human-readable line per differing field — empty means the
 * directory is resumable by this invocation. Schema versions and
 * every configuration field must match exactly (iteration/wall
 * budgets are not part of the meta: growing them is the point of a
 * resume).
 */
std::vector<std::string> metaMismatches(const CampaignMeta &saved,
                                        const CampaignMeta &current);

/** Everything loadCampaignDir() reads back. */
struct LoadedCampaignDir
{
    CampaignMeta meta;
    CorpusFile corpus;
    CampaignCheckpoint checkpoint;
};

/**
 * Whether @p dir holds a saved campaign: a meta.json, or — after a
 * crash mid-save — a retained meta.json.prev the loader can fall
 * back to. A directory that satisfies this must never be treated as
 * fresh and overwritten.
 */
bool campaignDirExists(const std::string &dir);

/**
 * Load meta.json, corpus.bin and campaign.snap from @p dir. Every
 * artifact's integrity trailer (CRC + generation) must validate and
 * all three must carry meta.json's generation; when the latest
 * generation is torn (a crash mid-save), the loader falls back to
 * the retained previous generation and reports it via @p note. Fails
 * cleanly (diagnostic in @p error) only when no complete valid
 * generation exists, a schema version this build does not speak, or
 * an artifact is corrupt beyond the tearing model.
 */
bool loadCampaignDir(const std::string &dir, LoadedCampaignDir &out,
                     std::string *error = nullptr,
                     std::string *note = nullptr);

/**
 * Load only meta.json and campaign.snap — what `dejavuzz-replay`
 * needs (reproducers live in the snapshot), so replaying a ledger
 * neither parses nor depends on the corpus artifact. Same
 * torn-generation fallback as loadCampaignDir.
 */
bool loadCampaignSnapshot(const std::string &dir, CampaignMeta &meta,
                          CampaignCheckpoint &checkpoint,
                          std::string *error = nullptr,
                          std::string *note = nullptr);

/**
 * Persist @p orchestrator into @p dir as the next save generation:
 * the JSONL log (with a CRC trailer record), the corpus and the
 * checkpoint (each with an integrity trailer), and — last, as the
 * completion marker — meta.json. When the directory already holds a
 * valid generation it is rotated to `.prev` first, so a SIGKILL at
 * any instant leaves at least one complete loadable generation.
 * Creates the directory if needed. Safe to call mid-campaign
 * (`--autosave-sec`) as well as at the end. Non-const: freshly
 * quarantined seeds are appended to quarantine.jsonl and marked
 * persisted on the orchestrator.
 */
bool saveCampaignDir(const std::string &dir,
                     CampaignOrchestrator &orchestrator,
                     const CampaignOptions &options,
                     std::string *error = nullptr);

} // namespace dejavuzz::campaign

#endif // DEJAVUZZ_CAMPAIGN_CAMPAIGN_DIR_HH
