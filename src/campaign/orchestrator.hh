/**
 * @file
 * The parallel campaign orchestrator.
 *
 * N worker threads each own an independent core::Fuzzer (distinct
 * Rng stream forked from one master seed; optionally a distinct core
 * config or ablation variant per shard policy). Work proceeds in
 * epochs:
 *
 *   run phase   the main thread first pulls the fleet-global
 *               coverage map into every worker's private map (so
 *               novelty decisions reflect everything any worker had
 *               found by the last barrier), then workers execute
 *               their iteration quotas in parallel, each finishing
 *               by merging its discoveries back with lock-free
 *               atomic ORs; interesting test cases are offered to
 *               the mutex-sharded shared corpus as they appear.
 *   sync phase  the main thread drains new bug reports into the
 *               deduplicating BugLedger in worker order and performs
 *               cross-worker seed stealing from a canonical corpus
 *               snapshot with an epoch-deterministic Rng stream.
 *
 * Because coverage merging is commutative, corpus retention is
 * arrival-order independent, and all cross-worker coupling happens at
 * the barriers, an iteration-budgeted campaign with a fixed (master
 * seed, worker count, policy, budget) is bit-reproducible regardless
 * of thread timing. Wall-clock-budgeted campaigns stop at a
 * machine-speed-dependent epoch and are not reproducible.
 */

#ifndef DEJAVUZZ_CAMPAIGN_ORCHESTRATOR_HH
#define DEJAVUZZ_CAMPAIGN_ORCHESTRATOR_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "campaign/corpus.hh"
#include "campaign/coverage_map.hh"
#include "campaign/ledger.hh"
#include "campaign/stats.hh"
#include "core/fuzzer.hh"
#include "uarch/config.hh"
#include "util/rng.hh"

namespace dejavuzz::campaign {

/** How the worker fleet is diversified. */
enum class ShardPolicy : uint8_t {
    Replicas,       ///< same config everywhere, distinct Rng streams
    ConfigSweep,    ///< alternate between the two paper cores
    AblationMatrix, ///< cycle the paper's ablation variants
};

const char *shardPolicyName(ShardPolicy policy);

struct CampaignOptions
{
    unsigned workers = 4;
    ShardPolicy policy = ShardPolicy::Replicas;
    uint64_t master_seed = 1;

    /** Total iteration budget across all workers (0 = unbounded;
     *  then wall_seconds must be set). */
    uint64_t total_iterations = 4000;
    /** Wall-clock budget in seconds (0 = unbounded). */
    double wall_seconds = 0.0;
    /** Per-worker iterations between sync barriers. */
    uint64_t epoch_iterations = 200;

    unsigned corpus_shards = 8;
    unsigned corpus_shard_cap = 64;
    /** Stolen corpus seeds injected per worker per sync. */
    unsigned steals_per_epoch = 1;

    /** Base core config (shard policies derive per-worker configs). */
    uarch::CoreConfig base_config;
    /** Base fuzzer options; per-worker seed/ablation fields are
     *  overridden by the shard policy. */
    core::FuzzerOptions fuzzer;
};

class CampaignOrchestrator
{
  public:
    explicit CampaignOrchestrator(const CampaignOptions &options);

    /** Execute the campaign; call at most once per instance. */
    CampaignStats run();

    /**
     * Admit previously persisted corpus entries (see
     * SharedCorpus::loadFrom) before run(). Worker admission
     * counters are advanced past every loaded (worker, seq)
     * identity, so the resumed campaign never re-issues an identity
     * already present — no duplicate seeds. Entries without a
     * completed window payload are skipped (they cannot be resumed
     * in Phase-2 mutation mode). Returns the number admitted.
     */
    uint64_t preloadCorpus(const std::vector<CorpusEntry> &entries);

    const CampaignStats &stats() const { return stats_; }
    const BugLedger &ledger() const { return ledger_; }
    const SharedCorpus &corpus() const { return corpus_; }

    /** Emit the campaign JSONL log (stats + deduplicated bugs). */
    void writeJsonl(std::ostream &os) const;

  private:
    struct Worker
    {
        std::unique_ptr<core::Fuzzer> fuzzer;
        std::string config_name;
        std::string variant;
        GlobalCoverage *group = nullptr;
        uint64_t offer_seq = 0;      ///< corpus admission counter
        size_t bugs_drained = 0;     ///< reports already in the ledger
        /** (author, seq) pairs already injected into this worker. */
        std::set<std::pair<unsigned, uint64_t>> stolen;
    };

    void provision();
    void runEpoch(const std::vector<uint64_t> &quotas);
    void syncEpoch(uint64_t epoch);
    void finalizeStats(double wall_seconds);

    CampaignOptions options_;
    SharedCorpus corpus_;
    BugLedger ledger_;
    CampaignStats stats_;
    std::vector<Worker> workers_;
    /** One global coverage map per distinct core config. */
    std::map<std::string, std::unique_ptr<GlobalCoverage>> groups_;
    Rng steal_rng_;
    uint64_t steals_ = 0;
    uint64_t preloaded_ = 0;
    /** Identities admitted by preloadCorpus(): they are stealable by
     *  every current worker, including the one sharing the author's
     *  worker number (that worker never actually generated them). */
    std::set<std::pair<unsigned, uint64_t>> preloaded_ids_;
    bool ran_ = false;
};

} // namespace dejavuzz::campaign

#endif // DEJAVUZZ_CAMPAIGN_ORCHESTRATOR_HH
