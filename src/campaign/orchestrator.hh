/**
 * @file
 * The parallel campaign orchestrator.
 *
 * Work proceeds in epochs. At each epoch boundary the orchestrator
 * plans every shard's iteration quota as a sequence of small
 * *batches* (see scheduler.hh) and freezes one coverage snapshot per
 * core-config group. N executor threads then drain the batch deques:
 * each thread prefers its own shard's deque and, when that runs dry,
 * steals batches from the most-loaded compatible peer — so the epoch
 * barrier is reached when global work is exhausted, not when the
 * slowest shard finishes a fixed quota.
 *
 * Determinism: a batch is a pure function of (master seed, shard,
 * batch index, epoch snapshot, assigned corpus seeds) — the executor
 * resets its fuzzer from that spec before running it
 * (core::Fuzzer::runBatch). Coverage merging is commutative, corpus
 * retention is arrival-order independent, bug reports are drained at
 * the barrier in (shard, batch) order, and all cross-shard coupling
 * (corpus seed stealing) happens at the barriers with an
 * epoch-deterministic Rng stream. An iteration-budgeted campaign
 * with a fixed (master seed, worker count, policy, batch size,
 * budget) is therefore bit-reproducible regardless of thread timing
 * — and regardless of whether batch stealing is enabled: stealing
 * changes only which thread executes a batch and when, never what
 * the batch computes. Wall-clock-budgeted campaigns stop at a
 * machine-speed-dependent epoch and are not reproducible; the
 * batches_stolen / steal_idle_ns counters are wall-clock artifacts
 * in every mode.
 */

#ifndef DEJAVUZZ_CAMPAIGN_ORCHESTRATOR_HH
#define DEJAVUZZ_CAMPAIGN_ORCHESTRATOR_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "campaign/corpus.hh"
#include "campaign/coverage_map.hh"
#include "campaign/ledger.hh"
#include "campaign/quarantine.hh"
#include "campaign/scheduler.hh"
#include "campaign/snapshot.hh"
#include "campaign/stats.hh"
#include "core/fuzzer.hh"
#include "uarch/config.hh"
#include "util/rng.hh"

namespace dejavuzz::campaign {

/** How the worker fleet is diversified. */
enum class ShardPolicy : uint8_t {
    Replicas,       ///< same config everywhere, distinct Rng streams
    ConfigSweep,    ///< alternate between the two paper cores
    AblationMatrix, ///< cycle the paper's ablation variants
    Heads,          ///< disjoint uarch-subspace heads (kHeadMatrix)
};

const char *shardPolicyName(ShardPolicy policy);

/**
 * One multi-head campaign head: a disjoint uarch-component subspace
 * (trigger kinds) plus the attack templates that target it. Workers
 * under ShardPolicy::Heads cycle this matrix; each head keeps its own
 * coverage group and corpus/steal domain, so novelty and seed
 * exchange never leak across subspaces.
 */
struct HeadSpec
{
    const char *name;
    uint32_t trigger_mask;
    uint32_t model_mask;
};

/** The head matrix Heads cycles (predictors / caches / tlb /
 *  exceptions). Trigger masks are pairwise disjoint and cover every
 *  TriggerKind. */
const std::vector<HeadSpec> &headMatrix();

/**
 * Apply the named ablation variant's switches ("full",
 * "dejavuzz-star", "dejavuzz-minus", "no-liveness", "no-reduction")
 * to @p fopts — the same table the AblationMatrix policy cycles.
 * Returns false (leaving @p fopts untouched) for unknown names, so
 * replay tooling can rebuild a bug's exact fuzzer configuration from
 * its recorded variant string.
 */
bool applyAblationVariant(const std::string &name,
                          core::FuzzerOptions &fopts);

struct CampaignOptions
{
    unsigned workers = 4;
    ShardPolicy policy = ShardPolicy::Replicas;
    uint64_t master_seed = 1;

    /** Total iteration budget across all workers (0 = unbounded;
     *  then wall_seconds must be set). */
    uint64_t total_iterations = 4000;
    /** Wall-clock budget in seconds (0 = unbounded). */
    double wall_seconds = 0.0;
    /** Per-worker iterations between sync barriers. */
    uint64_t epoch_iterations = 200;

    /** Iterations per scheduler batch (the work-stealing grain). */
    uint64_t batch_iterations = 32;
    /** Allow idle workers to execute peers' batches. Disabling
     *  reproduces the PR-1 barrier fleet (each thread runs only its
     *  own quota); outcomes are bit-identical either way. */
    bool steal_batches = true;
    /**
     * Relative per-worker epoch-quota weights (empty = uniform 1.0).
     * Worker w's epoch quota is round(epoch_iterations * weight) —
     * the knob the skewed-shard scheduler benchmark turns.
     */
    std::vector<double> shard_weights;

    unsigned corpus_shards = 8;
    unsigned corpus_shard_cap = 64;
    /** Stolen corpus seeds injected per worker per sync. */
    unsigned steals_per_epoch = 1;

    /** Base core config (shard policies derive per-worker configs). */
    uarch::CoreConfig base_config;
    /** Base fuzzer options; per-worker seed/ablation fields are
     *  overridden by the shard policy. */
    core::FuzzerOptions fuzzer;

    /**
     * Batch watchdog/retry policy. A batch that throws or blows
     * batch_deadline_sec is re-executed up to batch_retries times
     * with the identical BatchSpec (same Rng seed, baseline and
     * inject set), so a retry that succeeds is bit-identical to a
     * first-try success and determinism survives transient faults.
     * A batch that exhausts its retries is skipped: its planned
     * iterations still count against the budget, and any corpus
     * seeds riding it are quarantined (quarantine.jsonl) and pulled
     * from the corpus.
     */
    unsigned batch_retries = 2;
    /** Per-batch wall deadline in seconds (0 = no watchdog). A
     *  deadline-killed attempt's partial result is discarded —
     *  machine-speed-dependent state never folds into the campaign. */
    double batch_deadline_sec = 0.0;
    /**
     * Fleet-wide graceful degradation: when one (config, variant)
     * kind accumulates this many *consecutive* failed batches across
     * its shards, the kind is disabled for the rest of the campaign
     * (its shards plan zero-iteration epochs) with a logged reason.
     * 0 = never disable. A campaign whose every kind is disabled
     * terminates instead of spinning.
     */
    unsigned kind_disable_failures = 8;
    /**
     * Autosave interval in seconds (0 = off). When positive and an
     * autosave hook is installed (setAutosaveHook), run() invokes the
     * hook at the first epoch barrier after each interval elapses —
     * so a SIGKILL loses at most one interval plus the epoch in
     * flight. Autosaves are observational: they never perturb
     * campaign outcomes.
     */
    double autosave_sec = 0.0;

    /**
     * Heartbeat interval in seconds (0 = no heartbeats). When
     * positive, run() snapshots the telemetry registry every
     * heartbeat_sec seconds (plus once at campaign end), streams
     * each record to @ref heartbeat_out, and retains the lines for
     * writeJsonlWithHeartbeats(). Heartbeats are observational: they
     * never perturb campaign outcomes.
     */
    double heartbeat_sec = 0.0;
    /** Live sink for heartbeat lines (flushed per record; may be
     *  null: lines are still retained for the final log). */
    std::ostream *heartbeat_out = nullptr;
};

class CampaignOrchestrator
{
  public:
    explicit CampaignOrchestrator(const CampaignOptions &options);

    /** Execute the campaign; call at most once per instance. */
    CampaignStats run();

    /**
     * Admit previously persisted corpus entries (see
     * SharedCorpus::loadFrom) before run(). Each shard's batch
     * counter is advanced past every loaded (worker, seq) identity,
     * so the resumed campaign never re-issues an identity already
     * present — no duplicate seeds. Entries without a completed
     * window payload are skipped (they cannot be resumed in Phase-2
     * mutation mode). Returns the number admitted.
     */
    uint64_t preloadCorpus(const std::vector<CorpusEntry> &entries);

    /**
     * Capture the complete barrier state after run() — coverage
     * groups, shard continuations, steal Rng, cursors and the bug
     * ledger with reproducers — for campaign-directory persistence
     * (snapshot.hh). Pair with corpus().saveTo().
     */
    CampaignCheckpoint makeCheckpoint() const;

    /**
     * Reinstall a checkpoint before run(), continuing the saved
     * campaign: coverage novelty gates stay monotone (restored
     * points are never "rediscovered"), batch indices and epoch/
     * iteration cursors resume where the saved run stopped, and the
     * restored ledger keeps accumulating hits. With the same master
     * seed, options and corpus (restoreCorpus), the resumed run is
     * bit-identical to an uninterrupted one. The checkpoint must
     * match this campaign's fleet (worker count, config groups and
     * module shapes, master seed); mismatches fail with a
     * diagnostic in @p error and leave the campaign untouched.
     */
    bool restoreCheckpoint(const CampaignCheckpoint &cp,
                           std::string *error = nullptr);

    /**
     * Re-admit a saved corpus verbatim for an exact checkpoint
     * resume. Unlike preloadCorpus(), identities are not marked as
     * preloaded (the restored shards' stolen sets already encode
     * what was injected) and batch counters are left to the
     * checkpoint. Returns the number of entries retained.
     */
    uint64_t restoreCorpus(const std::vector<CorpusEntry> &entries);

    /**
     * Distill the corpus after run(): drop content-duplicate entries
     * and entries whose replayed coverage is subsumed by the kept
     * set (SharedCorpus::minimize, with the campaign's own executors
     * as the coverage oracle). Updates the corpus_size /
     * corpus_minimized stats the JSONL summary reports.
     */
    SharedCorpus::MinimizeStats minimizeCorpus();

    const CampaignStats &stats() const { return stats_; }
    const BugLedger &ledger() const { return ledger_; }
    /** Mutable ledger access, for post-run triage annotation. */
    BugLedger &ledger() { return ledger_; }
    const SharedCorpus &corpus() const { return corpus_; }

    /** Emit the campaign JSONL log (stats + deduplicated bugs).
     *  Deliberately heartbeat-free: this is the bit-reproducible
     *  view equivalence tests compare. */
    void writeJsonl(std::ostream &os) const;

    /** writeJsonl() preceded by the heartbeat records captured
     *  during run() — the full campaign.jsonl a live log carries. */
    void writeJsonlWithHeartbeats(std::ostream &os) const;

    /**
     * Crash-safe persistence callback (typically saveCampaignDir).
     * run() invokes it at epoch barriers per CampaignOptions::
     * autosave_sec; the orchestrator's cursors and stats are
     * barrier-consistent whenever it fires. A failing hook (false
     * return, diagnostic in its out-param) is logged and retried at
     * the next interval — persistence trouble must not kill the
     * campaign it is trying to protect.
     */
    using AutosaveHook = std::function<bool(std::string *)>;
    void setAutosaveHook(AutosaveHook hook)
    {
        autosave_hook_ = std::move(hook);
    }

    /** Seeds quarantined so far, in barrier (shard, batch) order —
     *  deterministic campaigns yield byte-identical ledgers. */
    const std::vector<QuarantineRecord> &quarantineRecords() const
    {
        return quarantine_;
    }
    /** How many quarantineRecords() entries have been appended to
     *  the on-disk ledger already (autosave bookkeeping, maintained
     *  by saveCampaignDir via noteQuarantinePersisted). */
    size_t quarantinePersisted() const
    {
        return quarantine_persisted_;
    }
    void noteQuarantinePersisted(size_t count)
    {
        quarantine_persisted_ = count;
    }

  private:
    /** Shard-logical state: the unit of provenance and policy. The
     *  executing thread varies batch to batch; everything here is
     *  touched only at barriers (main thread). */
    struct Shard
    {
        uarch::CoreConfig config;
        core::FuzzerOptions fopts;
        std::string config_name;
        std::string variant;
        /** Coverage/corpus/steal domain key. Equals config_name
         *  except under Heads, where each head gets its own group
         *  ("<config>+head=<name>") so head-local coverage maps and
         *  seed stealing never cross subspaces. */
        std::string group_name;
        GlobalCoverage *group = nullptr;
        unsigned kind = 0;           ///< steal-compatibility class
        uint64_t next_batch = 0;     ///< shard-global batch counter
        /** Corpus seeds awaiting assignment to the next batch. */
        std::vector<core::TestCase> pending_inject;
        /** (author, seq) pairs already injected into this shard. */
        std::set<std::pair<unsigned, uint64_t>> stolen;
        /**
         * The shard's private coverage map (PR-1 semantics:
         * everything its batches saw, including the epoch baselines
         * they started from). Batch maps are merged in at barriers
         * in (shard, batch) order, so the union — and the
         * coverage_points it yields — is deterministic even when
         * two batches of the shard discovered the same point.
         */
        ift::TaintCoverage private_map;
        /** Shard-logical rollups, accumulated at barriers. */
        WorkerSummary agg;
        std::array<core::Fuzzer::TriggerStats, core::kTriggerKinds>
            trigger_agg{};
    };

    /** One batch's outcome in the epoch plan (slot-indexed so
     *  concurrent executors write disjoint elements). */
    struct SlotResult
    {
        core::Fuzzer::BatchResult res;
        /** The executor's post-batch coverage map (baseline ∪ batch
         *  discoveries); folded into the shard's private map at the
         *  barrier. Bitmaps are small, so the per-epoch copies are
         *  cheap. */
        ift::TaintCoverage cov;
        double seconds = 0.0;
        /** Shard-global batch index (quarantine provenance). */
        uint64_t batch_index = 0;
        /** The spec's iteration count — what a failed batch skipped. */
        uint64_t iterations_planned = 0;
        /** Executions attempted (1 = clean first try). */
        unsigned attempts = 1;
        /** Watchdog cut-offs among those attempts (real + injected). */
        unsigned deadline_kills = 0;
        /** The batch exhausted every retry: res/cov are empty and
         *  must not be folded; fail_reason carries the signature. */
        bool failed = false;
        std::string fail_reason;
        /** Corpus seeds that rode the failed batch — quarantined at
         *  the barrier. */
        std::vector<core::TestCase> failed_inject;
    };

    void provision();
    std::vector<uint64_t> planQuotas(uint64_t done) const;
    /** Full-epoch per-shard quotas from the weights (budget scaling
     *  aside); fixed for the campaign's lifetime. A zero entry marks
     *  a shard that never runs — it must not receive stolen seeds. */
    std::vector<uint64_t> baseQuotas() const;
    void runEpoch(const std::vector<uint64_t> &quotas);
    void syncEpoch(uint64_t epoch);
    void executorLoop(unsigned t);
    void finalizeStats(double wall_seconds);

    CampaignOptions options_;
    SharedCorpus corpus_;
    BugLedger ledger_;
    CampaignStats stats_;
    std::vector<Shard> shards_;
    /** Executor thread t's fuzzer, built for shard t's kind and
     *  reused (dual-sim buffers and all) across every batch it
     *  runs — the batched-simulation amortization. */
    std::vector<std::unique_ptr<core::Fuzzer>> executors_;
    /** One global coverage map per distinct group (config name, or
     *  config+head under the Heads policy). */
    std::map<std::string, std::unique_ptr<GlobalCoverage>> groups_;
    /** Blank registered maps (per group) snapshots are stamped from. */
    std::map<std::string, ift::TaintCoverage> group_shapes_;
    /** Frozen per-group coverage at the current epoch's start; all
     *  batches of the epoch read it concurrently, nobody writes. */
    std::map<std::string, ift::TaintCoverage> group_snapshots_;

    std::unique_ptr<WorkStealingScheduler> sched_;
    std::vector<uint64_t> base_quotas_;
    /** Per-(shard, slot) results of the epoch in flight. */
    std::vector<std::vector<SlotResult>> epoch_results_;
    std::vector<double> busy_seconds_;

    Rng steal_rng_;
    uint64_t steals_ = 0;
    uint64_t preloaded_ = 0;
    /** Cursors a checkpoint restore advances: run() continues
     *  counting iterations/epochs from here. */
    uint64_t done_base_ = 0;
    uint64_t epoch_base_ = 0;
    /** Final cursor values, captured for makeCheckpoint(). */
    uint64_t done_ = 0;
    uint64_t epoch_ = 0;
    uint64_t stolen_before_ = 0;   ///< sched_->stolen() at epoch start
    uint64_t epoch_stolen_ = 0;    ///< batches stolen this epoch
    uint64_t epoch_idle_ns_ = 0;   ///< idle (non-busy) ns this epoch
    /** Identities admitted by preloadCorpus(): they are stealable by
     *  every current shard, including the one sharing the author's
     *  worker number (that shard never actually generated them). */
    std::set<std::pair<unsigned, uint64_t>> preloaded_ids_;
    /** Heartbeat lines captured during run(), in emission order. */
    std::vector<std::string> heartbeat_lines_;
    /** Quarantined seeds in barrier order; the persisted-prefix
     *  cursor lets autosaves append only fresh records. */
    std::vector<QuarantineRecord> quarantine_;
    size_t quarantine_persisted_ = 0;
    AutosaveHook autosave_hook_;
    /** Per-kind consecutive failed-batch streaks (barrier order) and
     *  the fleet-wide disable switch they trip. Indexed by
     *  Shard::kind. */
    std::vector<unsigned> kind_fail_streak_;
    std::vector<bool> kind_disabled_;
    /** Iterations planned into batches that exhausted their retries
     *  and were skipped — subtracted from the epoch curve so its
     *  iteration axis keeps matching the worker rollups. */
    uint64_t skipped_iterations_ = 0;
    bool ran_ = false;
};

} // namespace dejavuzz::campaign

#endif // DEJAVUZZ_CAMPAIGN_ORCHESTRATOR_HH
