/**
 * @file
 * Shared binary-IO layer for every campaign artifact (corpus file,
 * coverage/checkpoint snapshot, bug-ledger records).
 *
 * All formats built on these primitives are little-endian and
 * strictly validated on load: the Reader turns any truncation into a
 * sticky error, every count/length is bounded before it sizes an
 * allocation, and enum bytes are range-checked — a corrupt file
 * yields a clean error return, never a crash or a half-loaded
 * object. The per-format layouts are specified in
 * docs/campaign-format.md.
 */

#ifndef DEJAVUZZ_CAMPAIGN_IO_UTIL_HH
#define DEJAVUZZ_CAMPAIGN_IO_UTIL_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/seed.hh"

namespace dejavuzz::campaign::bio {

/** Bounds applied to every count/length read from a file. They cap
 *  what a flipped length byte can make the loader allocate; anything
 *  a real campaign writes sits far below them. */
constexpr uint32_t kMaxStringBytes = 1u << 16;
constexpr uint32_t kMaxVectorItems = 1u << 20;
constexpr uint32_t kMaxPackets = 4096;
constexpr uint32_t kMaxInstrs = 1u << 16;
/** Never reserve more than this many items up front on a read-side
 *  count — grow incrementally instead, so a corrupt count cannot
 *  trigger a huge allocation before the payload read fails. */
constexpr uint32_t kMaxReserveItems = 1024;

// --- little-endian write primitives ---------------------------------------

void putU8(std::ostream &os, uint8_t value);
void putU32(std::ostream &os, uint32_t value);
void putU64(std::ostream &os, uint64_t value);
void putI64(std::ostream &os, int64_t value);
void putString(std::ostream &os, const std::string &text);

// --- strict load-side cursor ----------------------------------------------

/** Load-side cursor that turns any truncation into a sticky error. */
struct Reader
{
    std::istream &is;
    std::string error;

    /** Record the first failure; always returns false. */
    bool fail(const std::string &what);

    bool bytes(void *out, size_t count, const char *what);
    bool u8(uint8_t &out, const char *what);
    bool u32(uint32_t &out, const char *what);
    bool u64(uint64_t &out, const char *what);
    bool i64(int64_t &out, const char *what);
    bool str(std::string &out, const char *what);

    /** Read a count field and bound it by @p limit. */
    bool count(uint32_t &out, uint32_t limit, const char *what);

    /** Read an enum byte and range-check it against [0, limit). */
    template <typename E>
    bool
    enumByte(E &out, unsigned limit, const char *what)
    {
        uint8_t raw = 0;
        if (!u8(raw, what))
            return false;
        if (raw >= limit)
            return fail(std::string("out-of-range ") + what);
        out = static_cast<E>(raw);
        return true;
    }
};

bool readBool(Reader &in, bool &out, const char *what);
bool readIndex(Reader &in, size_t &out, const char *what);

// --- test-case payload ------------------------------------------------------

/** Container format version that first carried the attack-model
 *  fields (seed.model, schedule.victim_supervisor/double_fetch). */
constexpr uint32_t kTestCaseModelVersion = 2;

/** Serialize the complete test case (the corpus entry payload). */
void writeTestCase(std::ostream &os, const core::TestCase &tc);
/**
 * Strictly parse a test case written by writeTestCase(). @p version
 * is the enclosing container's format version: v1 payloads predate
 * the attack-model fields (their absence restores the implicit
 * same-domain model) and bound the trigger byte at the legacy count.
 */
bool readTestCase(Reader &in, core::TestCase &tc,
                  uint32_t version = kTestCaseModelVersion);

} // namespace dejavuzz::campaign::bio

namespace dejavuzz::campaign {

/**
 * Canonical content hash of a test case: FNV-1a over its
 * writeTestCase() serialization, so two cases hash equal exactly when
 * every semantically meaningful field matches. Drives content-based
 * corpus minimization (SharedCorpus::minimize).
 */
uint64_t hashTestCase(const core::TestCase &tc);

// --- crash-safe file IO (campaign directories) -----------------------------

/** CRC-32 (IEEE 802.3, reflected) over @p data. */
uint32_t crc32(const void *data, size_t size, uint32_t seed = 0);

/**
 * Integrity trailer appended to every campaign-dir artifact
 * (docs/campaign-format.md "Crash safety"): a fixed magic, the
 * directory generation the artifact belongs to, the payload length,
 * and a CRC-32 over the payload. 32 bytes, little-endian. The
 * trailer lives at the *file* layer — the payload parsers
 * (corpus_io, snapshot_io) never see it, and standalone artifacts
 * (`--corpus-out`) stay raw.
 */
constexpr char kTrailerMagic[9] = "DVZTRLR1";
constexpr size_t kTrailerBytes = 8 + 8 + 8 + 4 + 4; // magic,gen,len,crc,pad

/** Append a trailer binding @p payload to @p generation. */
std::string withTrailer(const std::string &payload, uint64_t generation);

/**
 * Validate and strip the trailer of @p file. On success @p payload
 * gets the raw artifact bytes and @p generation the bound
 * generation. A missing/short trailer, wrong magic, length mismatch
 * or CRC mismatch fails with a diagnostic in @p error (when
 * non-null) — the caller treats the file as torn.
 */
bool splitTrailer(const std::string &file, std::string &payload,
                  uint64_t &generation, std::string *error = nullptr);

/**
 * Crash-safe whole-file write: @p data goes to `path + ".tmp"`,
 * which is fsync'd, atomically renamed over @p path, and the parent
 * directory fsync'd — after a SIGKILL or power cut @p path holds
 * either its previous contents or all of @p data, never a mix. The
 * short-write / torn-rename / enospc failpoints hook here. Returns
 * false with a diagnostic on any OS error (the tmp file is removed).
 */
bool atomicWriteFile(const std::string &path, const std::string &data,
                     std::string *error = nullptr);

/** Read the whole of @p path into @p out (binary). */
bool readWholeFile(const std::string &path, std::string &out,
                   std::string *error = nullptr);

} // namespace dejavuzz::campaign

#endif // DEJAVUZZ_CAMPAIGN_IO_UTIL_HH
