#include "campaign/stats.hh"

#include <cstdio>

namespace dejavuzz::campaign {

void
CampaignStats::addWorker(
    const WorkerSummary &summary,
    const std::array<core::Fuzzer::TriggerStats,
                     core::kTriggerKinds> &trigger_stats)
{
    workers.push_back(summary);
    iterations += summary.iterations;
    simulations += summary.simulations;
    windows_triggered += summary.windows_triggered;
    seeds_imported += summary.seeds_imported;
    for (unsigned k = 0; k < core::kTriggerKinds; ++k) {
        triggers[k].windows += trigger_stats[k].windows;
        triggers[k].training_overhead +=
            trigger_stats[k].training_overhead;
        triggers[k].effective_overhead +=
            trigger_stats[k].effective_overhead;
    }
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

std::string
jsonDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    return buf;
}

} // namespace

void
writeCampaignJsonl(std::ostream &os, const CampaignStats &stats,
                   const BugLedger &ledger,
                   const std::string &policy_name,
                   uint64_t master_seed,
                   const std::string &templates)
{
    for (const auto &w : stats.workers) {
        os << "{\"type\":\"worker\",\"worker\":" << w.worker
           << ",\"config\":\"" << jsonEscape(w.config)
           << "\",\"variant\":\"" << jsonEscape(w.variant)
           << "\",\"iterations\":" << w.iterations
           << ",\"simulations\":" << w.simulations
           << ",\"windows\":" << w.windows_triggered
           << ",\"coverage_points\":" << w.coverage_points
           << ",\"seeds_imported\":" << w.seeds_imported
           << ",\"bugs\":" << w.bug_reports
           << ",\"active_seconds\":" << jsonDouble(w.active_seconds)
           << "}\n";
    }

    for (unsigned k = 0; k < core::kTriggerKinds; ++k) {
        const auto &t = stats.triggers[k];
        if (t.windows == 0)
            continue;
        os << "{\"type\":\"trigger\",\"kind\":\""
           << core::triggerKindName(static_cast<core::TriggerKind>(k))
           << "\",\"windows\":" << t.windows
           << ",\"training_overhead\":" << t.training_overhead
           << ",\"effective_overhead\":" << t.effective_overhead
           << "}\n";
    }

    for (const auto &sample : stats.epoch_curve) {
        os << "{\"type\":\"epoch\",\"epoch\":" << sample.epoch
           << ",\"iterations\":" << sample.iterations
           << ",\"coverage_points\":" << sample.coverage_points
           << ",\"distinct_bugs\":" << sample.distinct_bugs
           << ",\"corpus_size\":" << sample.corpus_size
           << ",\"batches_stolen\":" << sample.batches_stolen
           << ",\"steal_idle_ns\":" << sample.steal_idle_ns
           << ",\"wall_seconds\":" << jsonDouble(sample.wall_seconds)
           << "}\n";
    }

    for (const auto &record : ledger.entries()) {
        os << "{\"type\":\"bug\",\"key\":\""
           << jsonEscape(record.report.key())
           << "\",\"description\":\""
           << jsonEscape(record.report.describe())
           << "\",\"worker\":" << record.worker
           << ",\"epoch\":" << record.epoch
           << ",\"iteration\":" << record.report.iteration
           << ",\"config\":\"" << jsonEscape(record.config)
           << "\",\"variant\":\"" << jsonEscape(record.variant)
           << "\",\"hits\":" << record.hits << "}\n";
    }

    os << "{\"type\":\"summary\",\"workers\":" << stats.workers.size()
       << ",\"policy\":\"" << jsonEscape(policy_name)
       << "\",\"master_seed\":" << master_seed
       << ",\"templates\":\"" << jsonEscape(templates)
       << "\",\"iterations\":" << stats.iterations
       << ",\"simulations\":" << stats.simulations
       << ",\"windows\":" << stats.windows_triggered
       << ",\"coverage_points\":" << stats.coverage_points
       << ",\"distinct_bugs\":" << ledger.distinct()
       << ",\"total_reports\":" << ledger.totalReports()
       << ",\"epochs\":" << stats.epochs
       << ",\"corpus_size\":" << stats.corpus_size
       << ",\"corpus_preloaded\":" << stats.corpus_preloaded
       << ",\"corpus_minimized\":" << stats.corpus_minimized
       << ",\"coverage_preloaded\":" << stats.coverage_preloaded
       << ",\"bugs_restored\":" << stats.bugs_restored
       << ",\"reports_restored\":" << stats.reports_restored
       << ",\"steals\":" << stats.steals
       << ",\"sched\":\""
       << (stats.stealing ? "steal" : "barrier")
       << "\",\"batch\":" << stats.batch_iterations
       << ",\"batches\":" << stats.batches
       << ",\"batch_retries\":" << stats.batch_retries
       << ",\"batch_deadline_kills\":" << stats.batch_deadline_kills
       << ",\"batches_failed\":" << stats.batches_failed
       << ",\"quarantined_seeds\":" << stats.quarantined_seeds
       << ",\"kinds_disabled\":" << stats.kinds_disabled
       << ",\"batches_stolen\":" << stats.batches_stolen
       << ",\"steal_idle_ns\":" << stats.steal_idle_ns
       << ",\"wall_seconds\":" << jsonDouble(stats.wall_seconds)
       << ",\"iters_per_sec\":" << jsonDouble(stats.iters_per_sec)
       << "}\n";
}

} // namespace dejavuzz::campaign
