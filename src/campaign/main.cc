/**
 * @file
 * The `dejavuzz` campaign CLI: sharded multi-worker fuzzing with a
 * shared corpus, fleet-global coverage merging and deduplicated bug
 * reporting.
 *
 *   dejavuzz --workers 4 --iters 4000 --out campaign.jsonl
 *   dejavuzz --workers 8 --policy sweep --seconds 60
 *   dejavuzz --workers 5 --policy ablation --core boom
 *   dejavuzz --workers 4 --iters 4000 --corpus-out day1.corpus
 *   dejavuzz --workers 4 --iters 4000 --corpus-in day1.corpus
 *   dejavuzz --workers 4 --iters 4000 --campaign-dir day1 --minimize
 *   dejavuzz --workers 4 --iters 8000 --campaign-dir day1   # resume
 *
 * The JSONL log (stdout by default) carries worker, trigger, epoch,
 * bug and summary records (docs/campaign-format.md); the
 * human-readable digest goes to stderr. --corpus-out persists the
 * shared corpus so a later --corpus-in campaign resumes from it.
 * --campaign-dir persists the log, corpus, coverage/ledger snapshot
 * and a meta.json under one directory; pointing a matching
 * invocation at it later continues the campaign exactly where it
 * stopped (a mismatched invocation errors out instead of
 * overwriting). dejavuzz-replay re-executes the directory's bug
 * ledger as a regression suite.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "campaign/campaign_dir.hh"
#include "campaign/faults.hh"
#include "campaign/orchestrator.hh"
#include "core/seed.hh"
#include "obs/telemetry.hh"
#include "triage/triage.hh"
#include "uarch/config.hh"

namespace {

using dejavuzz::campaign::CampaignOptions;
using dejavuzz::campaign::CampaignOrchestrator;
using dejavuzz::campaign::CampaignStats;
using dejavuzz::campaign::ShardPolicy;

void
usage(const char *argv0)
{
    std::fprintf(stderr,
        "usage: %s [options]\n"
        "\n"
        "  --workers N        worker threads (default 4)\n"
        "  --policy P         replicas | sweep | ablation | heads "
        "(default replicas)\n"
        "                     heads: workers own disjoint uarch "
        "subspaces (predictors/caches/tlb/exceptions), each with\n"
        "                     its own attack templates and a "
        "head-local coverage map\n"
        "  --core C           boom | xiangshan base config "
        "(default boom)\n"
        "  --templates LIST   comma-separated attack templates every "
        "worker draws seeds from: same-domain | meltdown-supervisor\n"
        "                     | priv-transition | double-fetch | all "
        "(default same-domain, the implicit single-model baseline;\n"
        "                     incompatible with --policy heads, "
        "which assigns per-head template sets)\n"
        "  --iters N          total iteration budget across workers "
        "(default 4000; 0 = unbounded)\n"
        "  --seconds S        wall-clock budget in seconds "
        "(default off)\n"
        "  --epoch N          per-worker iterations per sync epoch "
        "(default 200)\n"
        "  --batch N          iterations per scheduler batch "
        "(default 32)\n"
        "  --no-steal         disable batch work-stealing "
        "(barrier fleet; same results, slower on skewed shards)\n"
        "  --batch-retries N  re-execute a crashed/timed-out batch "
        "up to N times with the identical spec (default 2);\n"
        "                     a batch that exhausts its retries is "
        "skipped and its corpus seeds are quarantined\n"
        "  --batch-deadline S per-batch wall deadline in seconds "
        "(default 0 = no watchdog); a deadline-killed attempt's\n"
        "                     partial result is discarded and the "
        "batch retried\n"
        "  --kind-disable N   disable a (config,variant) kind "
        "fleet-wide after N consecutive failed batches\n"
        "                     (default 8; 0 = never)\n"
        "  --autosave-sec S   with --campaign-dir: save a crash-safe "
        "checkpoint generation every S seconds (default 0 = only\n"
        "                     at campaign end); a SIGKILL loses at "
        "most one interval\n"
        "  --inject-faults SPEC  arm deterministic failpoints, e.g. "
        "seed=7,batch-throw=0.05,enospc=1:2\n"
        "                     (kinds: batch-throw batch-hang "
        "short-write torn-rename enospc; docs/robustness.md)\n"
        "  --master-seed X    campaign master seed (default 1)\n"
        "  --steals N         stolen seeds per worker per epoch "
        "(default 1)\n"
        "  --corpus-shards N  corpus lock shards (default 8)\n"
        "  --corpus-cap N     entries retained per shard "
        "(default 64)\n"
        "  --out PATH         JSONL output file (default stdout)\n"
        "  --corpus-in PATH   resume from a saved corpus file\n"
        "  --corpus-out PATH  persist the final corpus to a file\n"
        "  --campaign-dir DIR self-contained campaign directory "
        "(log + corpus + snapshot + meta.json); resumes the saved\n"
        "                     campaign when DIR already holds one "
        "with a matching configuration\n"
        "  --minimize         distill the corpus before saving "
        "(drop content duplicates and coverage-subsumed entries)\n"
        "  --triage           after saving, cluster the bug ledger "
        "and write DIR/triage.jsonl (needs --campaign-dir)\n"
        "  --no-matrix        with --triage: skip the cross-config "
        "portability matrix\n"
        "  --emit-pocs        with --triage: shrink one standalone "
        "PoC per cluster into DIR/pocs/\n"
        "  --threshold X      cluster similarity threshold in [0,1] "
        "(default 0.5)\n"
        "  --trace-out PATH   write a Chrome trace-event JSON of "
        "the run (open in Perfetto; docs/observability.md)\n"
        "  --heartbeat-sec S  append a telemetry heartbeat record "
        "to the JSONL log every S seconds (observable live with\n"
        "                     tail -f; one final record is always "
        "written at campaign end)\n"
        "  --quiet            suppress the stderr digest\n"
        "  --help             this text\n",
        argv0);
}

bool
parseUint(const char *text, uint64_t &out)
{
    char *end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        return false;
    out = value;
    return true;
}

bool
parseDouble(const char *text, double &out)
{
    char *end = nullptr;
    double value = std::strtod(text, &end);
    if (end == text || *end != '\0')
        return false;
    out = value;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CampaignOptions options;
    options.base_config = dejavuzz::uarch::smallBoomConfig();
    std::string out_path;
    std::string corpus_in_path;
    std::string corpus_out_path;
    std::string campaign_dir;
    std::string trace_out_path;
    std::string fault_spec;
    bool minimize = false;
    bool templates_flag = false;
    bool quiet = false;
    bool triage = false;
    bool matrix = true;
    bool emit_pocs = false;
    double threshold = 0.5;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        auto bad = [&]() {
            std::fprintf(stderr, "bad value for %s\n", arg.c_str());
            std::exit(2);
        };

        uint64_t n = 0;
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--workers") {
            if (!parseUint(value(), n) || n == 0)
                bad();
            options.workers = static_cast<unsigned>(n);
        } else if (arg == "--policy") {
            const std::string policy = value();
            if (policy == "replicas")
                options.policy = ShardPolicy::Replicas;
            else if (policy == "sweep")
                options.policy = ShardPolicy::ConfigSweep;
            else if (policy == "ablation")
                options.policy = ShardPolicy::AblationMatrix;
            else if (policy == "heads")
                options.policy = ShardPolicy::Heads;
            else
                bad();
        } else if (arg == "--core") {
            const std::string core = value();
            if (core == "boom")
                options.base_config =
                    dejavuzz::uarch::smallBoomConfig();
            else if (core == "xiangshan")
                options.base_config =
                    dejavuzz::uarch::xiangshanMinimalConfig();
            else
                bad();
        } else if (arg == "--templates") {
            const std::string list = value();
            uint32_t mask = 0;
            size_t pos = 0;
            for (;;) {
                const size_t comma = list.find(',', pos);
                const std::string name =
                    list.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos);
                dejavuzz::core::AttackTemplate tmpl;
                if (name == "all")
                    mask |= dejavuzz::core::kAllModelMask;
                else if (dejavuzz::core::parseAttackTemplateName(
                             name, tmpl))
                    mask |= dejavuzz::core::modelBit(tmpl);
                else
                    bad();
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
            if (mask == 0)
                bad();
            options.fuzzer.model_mask = mask;
            templates_flag = true;
        } else if (arg == "--iters") {
            if (!parseUint(value(), options.total_iterations))
                bad();
        } else if (arg == "--seconds") {
            if (!parseDouble(value(), options.wall_seconds) ||
                options.wall_seconds < 0.0) {
                bad();
            }
        } else if (arg == "--epoch") {
            if (!parseUint(value(), options.epoch_iterations) ||
                options.epoch_iterations == 0) {
                bad();
            }
        } else if (arg == "--batch") {
            if (!parseUint(value(), options.batch_iterations) ||
                options.batch_iterations == 0) {
                bad();
            }
        } else if (arg == "--no-steal") {
            options.steal_batches = false;
        } else if (arg == "--batch-retries") {
            if (!parseUint(value(), n))
                bad();
            options.batch_retries = static_cast<unsigned>(n);
        } else if (arg == "--batch-deadline") {
            if (!parseDouble(value(), options.batch_deadline_sec) ||
                options.batch_deadline_sec < 0.0) {
                bad();
            }
        } else if (arg == "--kind-disable") {
            if (!parseUint(value(), n))
                bad();
            options.kind_disable_failures =
                static_cast<unsigned>(n);
        } else if (arg == "--autosave-sec") {
            if (!parseDouble(value(), options.autosave_sec) ||
                options.autosave_sec < 0.0) {
                bad();
            }
        } else if (arg == "--inject-faults") {
            fault_spec = value();
        } else if (arg == "--master-seed") {
            if (!parseUint(value(), options.master_seed))
                bad();
        } else if (arg == "--steals") {
            if (!parseUint(value(), n))
                bad();
            options.steals_per_epoch = static_cast<unsigned>(n);
        } else if (arg == "--corpus-shards") {
            if (!parseUint(value(), n) || n == 0)
                bad();
            options.corpus_shards = static_cast<unsigned>(n);
        } else if (arg == "--corpus-cap") {
            if (!parseUint(value(), n) || n == 0)
                bad();
            options.corpus_shard_cap = static_cast<unsigned>(n);
        } else if (arg == "--out") {
            out_path = value();
        } else if (arg == "--corpus-in") {
            corpus_in_path = value();
        } else if (arg == "--corpus-out") {
            corpus_out_path = value();
        } else if (arg == "--campaign-dir") {
            campaign_dir = value();
        } else if (arg == "--trace-out") {
            trace_out_path = value();
        } else if (arg == "--heartbeat-sec") {
            if (!parseDouble(value(), options.heartbeat_sec) ||
                options.heartbeat_sec < 0.0) {
                bad();
            }
        } else if (arg == "--minimize") {
            minimize = true;
        } else if (arg == "--triage") {
            triage = true;
        } else if (arg == "--no-matrix") {
            matrix = false;
        } else if (arg == "--emit-pocs") {
            triage = true;
            emit_pocs = true;
        } else if (arg == "--threshold") {
            if (!parseDouble(value(), threshold) ||
                threshold < 0.0 || threshold > 1.0) {
                bad();
            }
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (options.total_iterations == 0 &&
        options.wall_seconds <= 0.0) {
        std::fprintf(stderr,
                     "need an --iters or --seconds budget\n");
        return 2;
    }
    if (templates_flag && options.policy == ShardPolicy::Heads) {
        // Silently ignoring the flag under heads would be exactly
        // the dead-knob class the wiring audit guards against.
        std::fprintf(stderr,
                     "--templates selects one fleet-wide template "
                     "set; --policy heads assigns its own per-head "
                     "sets and cannot be combined with it\n");
        return 2;
    }
    if (!campaign_dir.empty() &&
        (!out_path.empty() || !corpus_in_path.empty() ||
         !corpus_out_path.empty())) {
        std::fprintf(stderr,
                     "--campaign-dir manages its own log and corpus; "
                     "it cannot be combined with --out, --corpus-in "
                     "or --corpus-out\n");
        return 2;
    }
    if (minimize && campaign_dir.empty() &&
        corpus_out_path.empty()) {
        std::fprintf(stderr,
                     "--minimize needs a corpus destination "
                     "(--corpus-out or --campaign-dir)\n");
        return 2;
    }
    if (triage && campaign_dir.empty()) {
        std::fprintf(stderr,
                     "--triage/--emit-pocs need a --campaign-dir to "
                     "write triage.jsonl and pocs/ into\n");
        return 2;
    }
    if (options.autosave_sec > 0.0 && campaign_dir.empty()) {
        std::fprintf(stderr,
                     "--autosave-sec checkpoints into a campaign "
                     "directory; it needs --campaign-dir\n");
        return 2;
    }
    if (!fault_spec.empty()) {
        std::string error;
        if (!dejavuzz::campaign::armFaults(fault_spec, &error)) {
            std::fprintf(stderr, "bad --inject-faults spec: %s\n",
                         error.c_str());
            return 2;
        }
    }

    // Resolve the campaign directory up front: a directory holding a
    // completed campaign is resumed — but only by an invocation whose
    // configuration matches its meta.json; anything else errors out
    // rather than silently overwriting the saved campaign.
    bool resuming = false;
    bool created_campaign_dir = false;
    dejavuzz::campaign::LoadedCampaignDir saved;
    if (!campaign_dir.empty()) {
        if (dejavuzz::campaign::campaignDirExists(campaign_dir)) {
            // Crash debris first: a SIGKILL mid-save can leave *.tmp
            // files behind; they are never part of a valid
            // generation and must not accumulate across resumes.
            size_t swept =
                dejavuzz::campaign::sweepCampaignDir(campaign_dir);
            if (swept > 0 && !quiet) {
                std::fprintf(stderr,
                    "campaign-dir: swept %zu stale .tmp file%s from "
                    "%s\n",
                    swept, swept == 1 ? "" : "s",
                    campaign_dir.c_str());
            }
            std::string error;
            std::string note;
            if (!dejavuzz::campaign::loadCampaignDir(
                    campaign_dir, saved, &error, &note)) {
                std::fprintf(stderr,
                             "cannot resume --campaign-dir %s: %s\n",
                             campaign_dir.c_str(), error.c_str());
                return 1;
            }
            if (!note.empty()) {
                // Torn-generation fallback: always worth a line,
                // even under --quiet — the user should know the
                // latest save did not survive.
                std::fprintf(stderr, "campaign-dir: %s\n",
                             note.c_str());
            }
            std::vector<std::string> mismatches =
                dejavuzz::campaign::metaMismatches(
                    saved.meta,
                    dejavuzz::campaign::metaFromOptions(options));
            if (!mismatches.empty()) {
                std::fprintf(stderr,
                    "refusing to overwrite --campaign-dir %s: the "
                    "saved campaign's configuration does not match "
                    "this invocation\n",
                    campaign_dir.c_str());
                for (const std::string &line : mismatches)
                    std::fprintf(stderr, "  %s\n", line.c_str());
                return 1;
            }
            resuming = true;
        } else {
            // Fail on an unwritable destination before fuzzing.
            std::error_code ec;
            created_campaign_dir =
                std::filesystem::create_directories(campaign_dir,
                                                    ec);
            if (ec) {
                std::fprintf(stderr,
                             "cannot create --campaign-dir %s: %s\n",
                             campaign_dir.c_str(),
                             ec.message().c_str());
                return 1;
            }
        }
    }
    // Error paths between here and the first save must not leave a
    // freshly created, empty campaign directory behind: a later
    // invocation would see it as an (unresumable) destination. The
    // non-recursive remove is a no-op once anything was written.
    auto discardEmptyCampaignDir = [&]() {
        if (created_campaign_dir) {
            std::error_code ec;
            std::filesystem::remove(campaign_dir, ec);
        }
    };

    // Validate --corpus-in before touching any output path: opening
    // the outputs truncates them, and a bad resume file must not
    // destroy a previous run's log/corpus.
    dejavuzz::campaign::CorpusFile resume;
    if (!corpus_in_path.empty()) {
        std::ifstream corpus_in(corpus_in_path,
                                std::ios::in | std::ios::binary);
        if (!corpus_in) {
            std::fprintf(stderr, "cannot open --corpus-in %s\n",
                         corpus_in_path.c_str());
            return 1;
        }
        std::string error;
        if (!dejavuzz::campaign::SharedCorpus::loadFrom(
                corpus_in, resume, &error)) {
            std::fprintf(stderr, "bad corpus file %s: %s\n",
                         corpus_in_path.c_str(), error.c_str());
            return 1;
        }
    }

    // Open every output before the campaign runs: an unwritable
    // --out or --corpus-out must fail up front, not after minutes of
    // fuzzing whose results would then be lost.
    std::ofstream out_file;
    if (!out_path.empty()) {
        out_file.open(out_path,
                      std::ios::out | std::ios::trunc);
        if (!out_file) {
            std::fprintf(stderr, "cannot open --out %s for writing\n",
                         out_path.c_str());
            return 1;
        }
    }
    std::ofstream corpus_out_file;
    if (!corpus_out_path.empty()) {
        corpus_out_file.open(corpus_out_path,
                             std::ios::out | std::ios::trunc |
                                 std::ios::binary);
        if (!corpus_out_file) {
            std::fprintf(stderr,
                         "cannot open --corpus-out %s for writing\n",
                         corpus_out_path.c_str());
            return 1;
        }
    }
    std::ofstream trace_file;
    if (!trace_out_path.empty()) {
        trace_file.open(trace_out_path,
                        std::ios::out | std::ios::trunc);
        if (!trace_file) {
            std::fprintf(stderr,
                         "cannot open --trace-out %s for writing\n",
                         trace_out_path.c_str());
            discardEmptyCampaignDir();
            return 1;
        }
        dejavuzz::obs::enableTrace(true);
    }

    // Heartbeats stream live into the JSONL destination so a running
    // campaign is observable with `tail -f`. The campaign-dir live
    // stream is opened only right before run() (below): the resume
    // no-op path must not truncate a saved campaign.jsonl. The
    // pointer is wired now because the orchestrator copies its
    // options at construction.
    std::ofstream live_log;
    if (options.heartbeat_sec > 0.0) {
        if (!campaign_dir.empty())
            options.heartbeat_out = &live_log;
        else if (!out_path.empty())
            options.heartbeat_out = &out_file;
        else
            options.heartbeat_out = &std::cout;
    }

    CampaignOrchestrator orchestrator(options);
    if (resuming) {
        std::string error;
        if (!orchestrator.restoreCheckpoint(saved.checkpoint,
                                            &error)) {
            std::fprintf(stderr,
                         "cannot resume --campaign-dir %s: %s\n",
                         campaign_dir.c_str(), error.c_str());
            return 1;
        }
        orchestrator.restoreCorpus(saved.corpus.entries);
        if (!quiet) {
            std::fprintf(stderr,
                "campaign-dir: resuming %s at %llu iterations, "
                "%llu epochs, %llu coverage points, %zu distinct "
                "bugs, corpus %zu\n",
                campaign_dir.c_str(),
                static_cast<unsigned long long>(
                    saved.checkpoint.iterations_done),
                static_cast<unsigned long long>(
                    saved.checkpoint.epochs_done),
                static_cast<unsigned long long>(
                    orchestrator.stats().coverage_preloaded),
                static_cast<size_t>(
                    saved.checkpoint.ledger.size()),
                orchestrator.corpus().size());
        }
        if (options.total_iterations != 0 &&
            options.total_iterations <=
                saved.checkpoint.iterations_done) {
            // A no-op resume must not rewrite the directory: it
            // would replace the saved log (epoch curve, worker
            // rollups) with a zero-iteration one. Refuse rather
            // than silently skip a requested minimization.
            std::fprintf(stderr,
                "--iters %llu does not exceed the saved campaign's "
                "%llu iterations; nothing to run — leaving %s "
                "untouched (raise --iters to extend the campaign)\n",
                static_cast<unsigned long long>(
                    options.total_iterations),
                static_cast<unsigned long long>(
                    saved.checkpoint.iterations_done),
                campaign_dir.c_str());
            if (minimize) {
                std::fprintf(stderr,
                    "--minimize was requested but runs only after "
                    "fuzzing; the saved corpus is unchanged\n");
                return 2;
            }
            return 0;
        }
    }
    if (!corpus_in_path.empty()) {
        uint64_t admitted =
            orchestrator.preloadCorpus(resume.entries);
        if (!quiet) {
            std::fprintf(stderr,
                "corpus: resumed %llu of %zu entries from %s "
                "(saved by master seed %llu)\n",
                static_cast<unsigned long long>(admitted),
                resume.entries.size(), corpus_in_path.c_str(),
                static_cast<unsigned long long>(
                    resume.master_seed));
        }
    }

    std::string live_log_path;
    if (options.heartbeat_sec > 0.0 && !campaign_dir.empty()) {
        const dejavuzz::campaign::CampaignDirPaths paths =
            dejavuzz::campaign::campaignDirPaths(campaign_dir);
        // Autosaves rotate campaign.jsonl out from under an open
        // stream (the fd would follow the rename and corrupt the
        // retained .prev generation), so with --autosave-sec the
        // live heartbeats go to a side file instead; it is removed
        // after the final save. Every heartbeat is retained in the
        // saved log either way.
        live_log_path = options.autosave_sec > 0.0
                            ? campaign_dir + "/heartbeat.live.jsonl"
                            : paths.log;
        live_log.open(live_log_path,
                      std::ios::out | std::ios::trunc);
        if (!live_log) {
            std::fprintf(stderr,
                         "cannot open %s for heartbeat streaming\n",
                         live_log_path.c_str());
            discardEmptyCampaignDir();
            return 1;
        }
    }

    // Crash-safe periodic checkpoints: the orchestrator calls back
    // into saveCampaignDir at epoch barriers, writing a fresh
    // generation each time, so a SIGKILL at any instant loses at most
    // one autosave interval.
    if (!campaign_dir.empty() && options.autosave_sec > 0.0) {
        orchestrator.setAutosaveHook(
            [&campaign_dir, &orchestrator,
             &options](std::string *err) {
                return dejavuzz::campaign::saveCampaignDir(
                    campaign_dir, orchestrator, options, err);
            });
    }

    CampaignStats stats = orchestrator.run();

    if (minimize) {
        dejavuzz::campaign::SharedCorpus::MinimizeStats mstats =
            orchestrator.minimizeCorpus();
        if (!quiet) {
            std::fprintf(stderr,
                "corpus: minimized %zu -> %zu entries "
                "(%zu content duplicates, %zu coverage-subsumed)\n",
                mstats.before, mstats.kept, mstats.duplicates,
                mstats.subsumed);
        }
        stats = orchestrator.stats(); // refresh corpus_size
    }

    if (!trace_out_path.empty()) {
        dejavuzz::obs::writeChromeTrace(
            trace_file, dejavuzz::obs::takeTraceEvents());
        trace_file.flush();
        if (!trace_file) {
            std::fprintf(stderr, "write to --trace-out %s failed\n",
                         trace_out_path.c_str());
            return 1;
        }
    }

    if (!campaign_dir.empty()) {
        // The live heartbeat stream is replaced wholesale by
        // saveCampaignDir's tmp+rename (which re-emits the retained
        // heartbeats ahead of the full log); close it first.
        if (live_log.is_open())
            live_log.close();
        std::string error;
        if (!dejavuzz::campaign::saveCampaignDir(
                campaign_dir, orchestrator, options, &error)) {
            std::fprintf(stderr, "cannot save --campaign-dir %s: %s\n",
                         campaign_dir.c_str(), error.c_str());
            return 1;
        }
        if (!live_log_path.empty() &&
            live_log_path != dejavuzz::campaign::campaignDirPaths(
                                 campaign_dir)
                                 .log) {
            // The heartbeat side file served its tail -f purpose;
            // every record it held is in the saved log.
            std::error_code ec;
            std::filesystem::remove(live_log_path, ec);
        }
        if (triage) {
            namespace tr = dejavuzz::triage;
            tr::TriageOptions topts;
            topts.cluster.threshold = threshold;
            topts.matrix = matrix;
            topts.emit_pocs = emit_pocs;
            tr::FuzzerCache fuzzers;
            tr::TriageResult result = tr::triageLedger(
                orchestrator.ledger().entries(), topts, fuzzers);
            tr::annotateLedger(orchestrator.ledger(), result);

            const std::string jsonl_path =
                campaign_dir + "/triage.jsonl";
            std::ofstream jsonl(jsonl_path,
                                std::ios::out | std::ios::trunc);
            if (!jsonl) {
                std::fprintf(stderr, "cannot open %s\n",
                             jsonl_path.c_str());
                return 1;
            }
            tr::writeTriageJsonl(jsonl, result);
            jsonl.flush();
            if (!jsonl) {
                std::fprintf(stderr, "write to %s failed\n",
                             jsonl_path.c_str());
                return 1;
            }
            if (emit_pocs &&
                !tr::writePocs(campaign_dir, result, &error)) {
                std::fprintf(stderr, "cannot write PoCs: %s\n",
                             error.c_str());
                return 1;
            }
            if (!quiet) {
                std::fprintf(
                    stderr,
                    "triage: %zu bugs -> %zu clusters, %zu PoCs "
                    "(%s)\n",
                    result.ledger.size(), result.clusters.size(),
                    result.pocs.size(), jsonl_path.c_str());
            }
        }
    } else if (!out_path.empty()) {
        orchestrator.writeJsonl(out_file);
        out_file.flush();
        if (!out_file) {
            std::fprintf(stderr, "write to --out %s failed\n",
                         out_path.c_str());
            return 1;
        }
    } else {
        orchestrator.writeJsonl(std::cout);
    }

    if (!corpus_out_path.empty()) {
        if (!orchestrator.corpus().saveTo(corpus_out_file,
                                          options.master_seed)) {
            std::fprintf(stderr,
                         "write to --corpus-out %s failed\n",
                         corpus_out_path.c_str());
            return 1;
        }
    }

    if (!quiet) {
        std::fprintf(stderr,
            "campaign: %u workers (%s, %s sched), %llu iterations "
            "in %.2fs (%.1f iters/s), %llu coverage points, %zu "
            "distinct bugs (%llu reports), corpus %llu, %llu "
            "steals, %llu/%llu batches stolen, %.2fs barrier idle\n",
            options.workers,
            dejavuzz::campaign::shardPolicyName(options.policy),
            stats.stealing ? "steal" : "barrier",
            static_cast<unsigned long long>(stats.iterations),
            stats.wall_seconds, stats.iters_per_sec,
            static_cast<unsigned long long>(stats.coverage_points),
            orchestrator.ledger().distinct(),
            static_cast<unsigned long long>(
                orchestrator.ledger().totalReports()),
            static_cast<unsigned long long>(stats.corpus_size),
            static_cast<unsigned long long>(stats.steals),
            static_cast<unsigned long long>(stats.batches_stolen),
            static_cast<unsigned long long>(stats.batches),
            static_cast<double>(stats.steal_idle_ns) / 1e9);
        if (stats.batch_retries != 0 || stats.batches_failed != 0 ||
            stats.quarantined_seeds != 0 ||
            stats.kinds_disabled != 0) {
            std::fprintf(stderr,
                "  robustness: %llu batch retries, %llu deadline "
                "kills, %llu batches failed, %llu seeds "
                "quarantined, %llu kinds disabled\n",
                static_cast<unsigned long long>(stats.batch_retries),
                static_cast<unsigned long long>(
                    stats.batch_deadline_kills),
                static_cast<unsigned long long>(
                    stats.batches_failed),
                static_cast<unsigned long long>(
                    stats.quarantined_seeds),
                static_cast<unsigned long long>(
                    stats.kinds_disabled));
        }
        for (const auto &record : orchestrator.ledger().entries()) {
            std::fprintf(stderr, "  bug [w%u e%llu x%llu]%s%s %s\n",
                         record.worker,
                         static_cast<unsigned long long>(
                             record.epoch),
                         static_cast<unsigned long long>(
                             record.hits),
                         record.cluster.empty() ? "" : " ",
                         record.cluster.c_str(),
                         record.report.describe().c_str());
        }
    }
    return 0;
}
