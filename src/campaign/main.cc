/**
 * @file
 * The `dejavuzz` campaign CLI: sharded multi-worker fuzzing with a
 * shared corpus, fleet-global coverage merging and deduplicated bug
 * reporting.
 *
 *   dejavuzz --workers 4 --iters 4000 --out campaign.jsonl
 *   dejavuzz --workers 8 --policy sweep --seconds 60
 *   dejavuzz --workers 5 --policy ablation --core boom
 *
 * The JSONL log (stdout by default) carries worker, trigger, bug and
 * summary records; the human-readable digest goes to stderr.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "campaign/orchestrator.hh"
#include "uarch/config.hh"

namespace {

using dejavuzz::campaign::CampaignOptions;
using dejavuzz::campaign::CampaignOrchestrator;
using dejavuzz::campaign::CampaignStats;
using dejavuzz::campaign::ShardPolicy;

void
usage(const char *argv0)
{
    std::fprintf(stderr,
        "usage: %s [options]\n"
        "\n"
        "  --workers N        worker threads (default 4)\n"
        "  --policy P         replicas | sweep | ablation "
        "(default replicas)\n"
        "  --core C           boom | xiangshan base config "
        "(default boom)\n"
        "  --iters N          total iteration budget across workers "
        "(default 4000; 0 = unbounded)\n"
        "  --seconds S        wall-clock budget in seconds "
        "(default off)\n"
        "  --epoch N          per-worker iterations per sync epoch "
        "(default 200)\n"
        "  --master-seed X    campaign master seed (default 1)\n"
        "  --steals N         stolen seeds per worker per epoch "
        "(default 1)\n"
        "  --corpus-shards N  corpus lock shards (default 8)\n"
        "  --corpus-cap N     entries retained per shard "
        "(default 64)\n"
        "  --out PATH         JSONL output file (default stdout)\n"
        "  --quiet            suppress the stderr digest\n"
        "  --help             this text\n",
        argv0);
}

bool
parseUint(const char *text, uint64_t &out)
{
    char *end = nullptr;
    unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        return false;
    out = value;
    return true;
}

bool
parseDouble(const char *text, double &out)
{
    char *end = nullptr;
    double value = std::strtod(text, &end);
    if (end == text || *end != '\0')
        return false;
    out = value;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CampaignOptions options;
    options.base_config = dejavuzz::uarch::smallBoomConfig();
    std::string out_path;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        auto bad = [&]() {
            std::fprintf(stderr, "bad value for %s\n", arg.c_str());
            std::exit(2);
        };

        uint64_t n = 0;
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--workers") {
            if (!parseUint(value(), n) || n == 0)
                bad();
            options.workers = static_cast<unsigned>(n);
        } else if (arg == "--policy") {
            const std::string policy = value();
            if (policy == "replicas")
                options.policy = ShardPolicy::Replicas;
            else if (policy == "sweep")
                options.policy = ShardPolicy::ConfigSweep;
            else if (policy == "ablation")
                options.policy = ShardPolicy::AblationMatrix;
            else
                bad();
        } else if (arg == "--core") {
            const std::string core = value();
            if (core == "boom")
                options.base_config =
                    dejavuzz::uarch::smallBoomConfig();
            else if (core == "xiangshan")
                options.base_config =
                    dejavuzz::uarch::xiangshanMinimalConfig();
            else
                bad();
        } else if (arg == "--iters") {
            if (!parseUint(value(), options.total_iterations))
                bad();
        } else if (arg == "--seconds") {
            if (!parseDouble(value(), options.wall_seconds) ||
                options.wall_seconds < 0.0) {
                bad();
            }
        } else if (arg == "--epoch") {
            if (!parseUint(value(), options.epoch_iterations) ||
                options.epoch_iterations == 0) {
                bad();
            }
        } else if (arg == "--master-seed") {
            if (!parseUint(value(), options.master_seed))
                bad();
        } else if (arg == "--steals") {
            if (!parseUint(value(), n))
                bad();
            options.steals_per_epoch = static_cast<unsigned>(n);
        } else if (arg == "--corpus-shards") {
            if (!parseUint(value(), n) || n == 0)
                bad();
            options.corpus_shards = static_cast<unsigned>(n);
        } else if (arg == "--corpus-cap") {
            if (!parseUint(value(), n) || n == 0)
                bad();
            options.corpus_shard_cap = static_cast<unsigned>(n);
        } else if (arg == "--out") {
            out_path = value();
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (options.total_iterations == 0 &&
        options.wall_seconds <= 0.0) {
        std::fprintf(stderr,
                     "need an --iters or --seconds budget\n");
        return 2;
    }

    CampaignOrchestrator orchestrator(options);
    CampaignStats stats = orchestrator.run();

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "cannot open %s\n",
                         out_path.c_str());
            return 1;
        }
        orchestrator.writeJsonl(out);
    } else {
        orchestrator.writeJsonl(std::cout);
    }

    if (!quiet) {
        std::fprintf(stderr,
            "campaign: %u workers (%s), %llu iterations in %.2fs "
            "(%.1f iters/s), %llu coverage points, %zu distinct "
            "bugs (%llu reports), corpus %llu, %llu steals\n",
            options.workers,
            dejavuzz::campaign::shardPolicyName(options.policy),
            static_cast<unsigned long long>(stats.iterations),
            stats.wall_seconds, stats.iters_per_sec,
            static_cast<unsigned long long>(stats.coverage_points),
            orchestrator.ledger().distinct(),
            static_cast<unsigned long long>(
                orchestrator.ledger().totalReports()),
            static_cast<unsigned long long>(stats.corpus_size),
            static_cast<unsigned long long>(stats.steals));
        for (const auto &record : orchestrator.ledger().entries()) {
            std::fprintf(stderr, "  bug [w%u e%llu x%llu] %s\n",
                         record.worker,
                         static_cast<unsigned long long>(
                             record.epoch),
                         static_cast<unsigned long long>(
                             record.hits),
                         record.report.describe().c_str());
        }
    }
    return 0;
}
