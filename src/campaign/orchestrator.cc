#include "campaign/orchestrator.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <iostream>
#include <stdexcept>
#include <thread>

#include "campaign/faults.hh"
#include "obs/heartbeat.hh"
#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace dejavuzz::campaign {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/**
 * Rng seed of batch @p index of shard @p shard. Two stream
 * derivations decorrelate both axes; the same (master, shard, index)
 * triple always yields the same batch, whoever executes it.
 */
uint64_t
batchSeed(uint64_t master, unsigned shard, uint64_t index)
{
    return Rng::streamSeed(Rng::streamSeed(master, shard), index);
}

/** Ablation variants cycled across workers by AblationMatrix. */
struct AblationVariant
{
    const char *name;
    bool derived_training;
    bool coverage_feedback;
    bool use_liveness;
    bool training_reduction;
};

constexpr AblationVariant kAblationMatrix[] = {
    {"full", true, true, true, true},
    {"dejavuzz-star", false, true, true, true},
    {"dejavuzz-minus", true, false, true, true},
    {"no-liveness", true, true, false, true},
    {"no-reduction", true, true, true, false},
};

} // namespace

const std::vector<HeadSpec> &
headMatrix()
{
    using core::AttackTemplate;
    using core::TriggerKind;
    using core::modelBit;
    using core::triggerBit;
    // Disjoint subspaces covering every trigger kind. Each head also
    // owns the attack templates whose windows live in its subspace:
    // double-fetch rides the predictor windows, the supervisor victim
    // is a page-walk (TLB) scenario, and the privilege transitions
    // are exception-machinery windows.
    static const std::vector<HeadSpec> matrix = {
        {"predictors",
         triggerBit(TriggerKind::BranchMispredict) |
             triggerBit(TriggerKind::IndirectMispredict) |
             triggerBit(TriggerKind::ReturnMispredict) |
             triggerBit(TriggerKind::MemDisambiguation),
         modelBit(AttackTemplate::SameDomain) |
             modelBit(AttackTemplate::DoubleFetch)},
        {"caches",
         triggerBit(TriggerKind::LoadAccessFault) |
             triggerBit(TriggerKind::LoadMisalign),
         modelBit(AttackTemplate::SameDomain)},
        {"tlb", triggerBit(TriggerKind::LoadPageFault),
         modelBit(AttackTemplate::SameDomain) |
             modelBit(AttackTemplate::MeltdownSupervisor)},
        {"exceptions",
         triggerBit(TriggerKind::IllegalInstr) |
             triggerBit(TriggerKind::PrivEcall) |
             triggerBit(TriggerKind::PrivReturn),
         modelBit(AttackTemplate::SameDomain) |
             modelBit(AttackTemplate::PrivTransition)},
    };
    return matrix;
}

const char *
shardPolicyName(ShardPolicy policy)
{
    switch (policy) {
      case ShardPolicy::Replicas: return "replicas";
      case ShardPolicy::ConfigSweep: return "sweep";
      case ShardPolicy::AblationMatrix: return "ablation";
      case ShardPolicy::Heads: return "heads";
    }
    return "?";
}

bool
applyAblationVariant(const std::string &name,
                     core::FuzzerOptions &fopts)
{
    for (const AblationVariant &variant : kAblationMatrix) {
        if (name != variant.name)
            continue;
        fopts.derived_training = variant.derived_training;
        fopts.coverage_feedback = variant.coverage_feedback;
        fopts.use_liveness = variant.use_liveness;
        fopts.training_reduction = variant.training_reduction;
        return true;
    }
    return false;
}

CampaignOrchestrator::CampaignOrchestrator(
    const CampaignOptions &options)
    : options_(options),
      corpus_(options.corpus_shards, options.corpus_shard_cap),
      steal_rng_(Rng::streamSeed(options.master_seed,
                                 0x5eedfeedULL))
{
    if (options_.workers == 0)
        options_.workers = 1;
    if (options_.epoch_iterations == 0)
        options_.epoch_iterations = 1;
    if (options_.batch_iterations == 0)
        options_.batch_iterations = 1;
    dv_assert(options_.total_iterations != 0 ||
              options_.wall_seconds > 0.0);
    provision();
}

void
CampaignOrchestrator::provision()
{
    shards_.resize(options_.workers);
    executors_.resize(options_.workers);
    std::map<std::pair<std::string, std::string>, unsigned> kinds;

    for (unsigned w = 0; w < options_.workers; ++w) {
        Shard &shard = shards_[w];

        uarch::CoreConfig config = options_.base_config;
        core::FuzzerOptions fopts = options_.fuzzer;
        shard.variant = "full";
        std::string head;

        switch (options_.policy) {
          case ShardPolicy::Replicas:
            break;
          case ShardPolicy::ConfigSweep:
            // Alternate between the two paper cores, starting from
            // the base config's core.
            if (w % 2 == 1) {
                config = options_.base_config.kind ==
                                 uarch::CoreKind::Boom
                             ? uarch::xiangshanMinimalConfig()
                             : uarch::smallBoomConfig();
            }
            break;
          case ShardPolicy::AblationMatrix: {
            shard.variant =
                kAblationMatrix[w % std::size(kAblationMatrix)].name;
            // One switch table for campaign execution and replay
            // reconstruction alike.
            bool known = applyAblationVariant(shard.variant, fopts);
            dv_assert(known);
            break;
          }
          case ShardPolicy::Heads: {
            const std::vector<HeadSpec> &heads = headMatrix();
            const HeadSpec &spec = heads[w % heads.size()];
            head = spec.name;
            fopts.trigger_mask = spec.trigger_mask;
            fopts.model_mask = spec.model_mask;
            // The head rides the variant so kind compatibility (the
            // thief's fuzzer carries the head's masks) and ledger
            // provenance both see it.
            shard.variant = std::string("head-") + spec.name;
            break;
          }
        }

        // The executor's own stream seed is irrelevant in batch mode
        // (every batch reseeds from its spec) but kept distinct for
        // any direct run() use. Long campaigns: bound memory, the
        // orchestrator tracks the fleet-level curve itself.
        fopts.master_seed =
            Rng::streamSeed(options_.master_seed, w);
        fopts.record_coverage_curve = false;

        shard.config = config;
        shard.fopts = fopts;
        shard.config_name = config.name;
        // Head shards get their own coverage/corpus/steal domain so
        // each head's novelty gate and seed pool stay local to its
        // subspace — the head-local coverage maps of the multi-head
        // campaign.
        shard.group_name =
            head.empty() ? shard.config_name
                         : shard.config_name + "+head=" + head;
        shard.agg.worker = w;
        shard.agg.config = shard.config_name;
        shard.agg.variant = shard.variant;

        // Executor thread w reuses this one fuzzer (and its dual-sim
        // buffers) for every batch it runs, own or stolen.
        executors_[w] =
            std::make_unique<core::Fuzzer>(config, fopts);

        auto [it, inserted] = groups_.try_emplace(shard.group_name);
        if (inserted) {
            it->second = std::make_unique<GlobalCoverage>(
                executors_[w]->coverage());
            // Blank registered map; epoch snapshots are stamped from
            // this shape then filled by pullInto.
            group_shapes_.emplace(shard.group_name,
                                  executors_[w]->coverage());
            group_snapshots_.emplace(shard.group_name,
                                     executors_[w]->coverage());
        }
        shard.group = it->second.get();
        shard.private_map = group_shapes_.at(shard.group_name);

        auto [kit, fresh] = kinds.try_emplace(
            {shard.config_name, shard.variant},
            static_cast<unsigned>(kinds.size()));
        (void)fresh;
        shard.kind = kit->second;
    }

    std::vector<unsigned> kind_ids;
    kind_ids.reserve(shards_.size());
    for (const Shard &shard : shards_)
        kind_ids.push_back(shard.kind);
    sched_ = std::make_unique<WorkStealingScheduler>(kind_ids);
    busy_seconds_.assign(shards_.size(), 0.0);
    base_quotas_ = baseQuotas();
    kind_fail_streak_.assign(kinds.size(), 0);
    kind_disabled_.assign(kinds.size(), false);
}

uint64_t
CampaignOrchestrator::preloadCorpus(
    const std::vector<CorpusEntry> &entries)
{
    dv_assert(!ran_);
    uint64_t admitted = 0;
    for (const CorpusEntry &entry : entries) {
        // Reserve the identity even when the entry itself is
        // skipped or dropped below, so a chained resume never
        // re-issues a (worker, seq) the file already claims. Batch
        // k of a shard owns seqs [k*B, (k+1)*B); skipping to the
        // batch past the highest loaded seq skips every claimed id.
        if (entry.worker < shards_.size()) {
            Shard &namesake = shards_[entry.worker];
            namesake.next_batch = std::max(
                namesake.next_batch,
                entry.seq / options_.batch_iterations + 1);
        }
        // runBatch resumes a case in Phase-2 mutation mode, which
        // requires a completed window payload.
        if (!entry.tc.has_window_payload)
            continue;
        // A corpus tighter than the saving campaign's (smaller
        // --corpus-cap) retains only the top of the saved set;
        // only what actually landed counts as preloaded.
        if (!corpus_.offer(entry))
            continue;
        preloaded_ids_.insert({entry.worker, entry.seq});
        ++admitted;
    }
    preloaded_ += admitted;
    return admitted;
}

CampaignCheckpoint
CampaignOrchestrator::makeCheckpoint() const
{
    dv_assert(ran_);
    CampaignCheckpoint cp;
    cp.master_seed = options_.master_seed;
    cp.iterations_done = done_;
    cp.epochs_done = epoch_;
    cp.steals = steals_;
    cp.preloaded = preloaded_;
    cp.steal_rng = steal_rng_.state();
    cp.preloaded_ids.assign(preloaded_ids_.begin(),
                            preloaded_ids_.end());

    // groups_ is keyed by config name, so iteration order — and the
    // serialized snapshot — is deterministic.
    for (const auto &[name, group] : groups_) {
        CoverageGroupSnap snap;
        snap.config = name;
        const ift::TaintCoverage &shape = group_shapes_.at(name);
        for (size_t m = 0; m < group->moduleCount(); ++m) {
            CoverageGroupSnap::Module module;
            module.name =
                shape.moduleName(static_cast<uint16_t>(m));
            module.slots = group->moduleSlots(m);
            module.words.resize(group->moduleWords(m));
            for (size_t w = 0; w < module.words.size(); ++w)
                module.words[w] = group->word(m, w);
            snap.modules.push_back(std::move(module));
        }
        cp.groups.push_back(std::move(snap));
    }

    for (const Shard &shard : shards_) {
        ShardSnap snap;
        snap.next_batch = shard.next_batch;
        snap.stolen.assign(shard.stolen.begin(),
                           shard.stolen.end());
        snap.pending_inject = shard.pending_inject;
        cp.shards.push_back(std::move(snap));
    }

    cp.ledger = ledger_.entries();
    return cp;
}

bool
CampaignOrchestrator::restoreCheckpoint(const CampaignCheckpoint &cp,
                                        std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };
    dv_assert(!ran_);
    if (cp.master_seed != options_.master_seed) {
        return fail("checkpoint master seed " +
                    std::to_string(cp.master_seed) +
                    " does not match campaign master seed " +
                    std::to_string(options_.master_seed));
    }
    if (cp.shards.size() != shards_.size()) {
        return fail("checkpoint has " +
                    std::to_string(cp.shards.size()) +
                    " shards, campaign has " +
                    std::to_string(shards_.size()));
    }
    // Validate every group against this fleet's shapes before
    // touching any state: a mismatched snapshot must not
    // half-restore the campaign.
    for (const CoverageGroupSnap &snap : cp.groups) {
        auto it = groups_.find(snap.config);
        if (it == groups_.end()) {
            return fail("checkpoint coverage group \"" +
                        snap.config +
                        "\" has no matching config in this "
                        "campaign");
        }
        const GlobalCoverage &group = *it->second;
        const ift::TaintCoverage &shape =
            group_shapes_.at(snap.config);
        if (snap.modules.size() != group.moduleCount())
            return fail("module count mismatch in coverage group \"" +
                        snap.config + "\"");
        for (size_t m = 0; m < snap.modules.size(); ++m) {
            const CoverageGroupSnap::Module &module =
                snap.modules[m];
            if (module.name !=
                    shape.moduleName(static_cast<uint16_t>(m)) ||
                module.slots != group.moduleSlots(m) ||
                module.words.size() != group.moduleWords(m)) {
                return fail("module shape mismatch at \"" +
                            module.name + "\" in coverage group \"" +
                            snap.config + "\"");
            }
        }
    }

    uint64_t restored_points = 0;
    for (const CoverageGroupSnap &snap : cp.groups) {
        GlobalCoverage &group = *groups_.at(snap.config);
        const uint64_t before = group.points();
        for (size_t m = 0; m < snap.modules.size(); ++m) {
            for (size_t w = 0; w < snap.modules[m].words.size();
                 ++w) {
                // Slot-range validity was checked by the snapshot
                // loader; shapes were checked above.
                bool ok = group.restoreWord(
                    m, w, snap.modules[m].words[w]);
                dv_assert(ok);
            }
        }
        restored_points += group.points() - before;
    }

    for (size_t w = 0; w < shards_.size(); ++w) {
        Shard &shard = shards_[w];
        shard.next_batch = cp.shards[w].next_batch;
        shard.stolen.clear();
        for (const auto &[author, seq] : cp.shards[w].stolen)
            shard.stolen.insert({author, seq});
        shard.pending_inject = cp.shards[w].pending_inject;
    }

    ledger_.restore(cp.ledger);
    steal_rng_.setState(cp.steal_rng);
    steals_ = cp.steals;
    preloaded_ = cp.preloaded;
    // Preloaded identities keep their special steal-eligibility
    // (stealable by namesake shards) across the resume.
    preloaded_ids_.clear();
    for (const auto &[author, seq] : cp.preloaded_ids)
        preloaded_ids_.insert({author, seq});
    done_base_ = done_ = cp.iterations_done;
    epoch_base_ = epoch_ = cp.epochs_done;

    stats_.coverage_preloaded = restored_points;
    stats_.bugs_restored = ledger_.distinct();
    stats_.reports_restored = ledger_.totalReports();
    return true;
}

uint64_t
CampaignOrchestrator::restoreCorpus(
    const std::vector<CorpusEntry> &entries)
{
    dv_assert(!ran_);
    uint64_t admitted = 0;
    for (const CorpusEntry &entry : entries)
        admitted += corpus_.offer(entry) ? 1 : 0;
    return admitted;
}

SharedCorpus::MinimizeStats
CampaignOrchestrator::minimizeCorpus()
{
    dv_assert(ran_);
    // Coverage oracle: replay each entry on an executor running the
    // entry's own config (its coverage map is expendable after the
    // campaign). Entries from configs absent in this fleet cannot be
    // evaluated — keep them by reporting a unique sentinel tuple, so
    // minimization never drops what it cannot judge.
    std::map<std::string, core::Fuzzer *> by_config;
    for (size_t w = 0; w < shards_.size(); ++w)
        by_config.try_emplace(shards_[w].group_name,
                              executors_[w].get());
    // Tuples from different configs live in disjoint module-id
    // ranges, so a SmallBOOM point can never subsume the
    // equal-numbered XiangShan point. The 1024-wide stripes (and
    // the 0xffff unknown-config sentinel) bound how many configs
    // and modules the namespacing can hold.
    std::map<std::string, uint16_t> config_base;
    dv_assert(by_config.size() < 64);
    for (const auto &[name, fz] : by_config) {
        dv_assert(fz->coverage().moduleCount() < 1024);
        config_base.emplace(
            name, static_cast<uint16_t>(config_base.size() * 1024));
    }
    uint32_t unknown = 0;
    auto eval = [&](const CorpusEntry &entry)
        -> std::vector<ift::CoveragePoint> {
        auto it = by_config.find(entry.config);
        if (it == by_config.end()) {
            return {ift::CoveragePoint{
                static_cast<uint16_t>(0xffff), unknown++}};
        }
        std::vector<ift::CoveragePoint> tuples =
            it->second
                ->replayCase(entry.tc, /*collect_coverage_tuples=*/true)
                .coverage;
        const uint16_t base = config_base.at(entry.config);
        for (ift::CoveragePoint &point : tuples)
            point.module_id =
                static_cast<uint16_t>(point.module_id + base);
        return tuples;
    };

    SharedCorpus::MinimizeStats stats = corpus_.minimize(eval);
    stats_.corpus_minimized += stats.dropped();
    stats_.corpus_size = corpus_.size();
    return stats;
}

std::vector<uint64_t>
CampaignOrchestrator::baseQuotas() const
{
    std::vector<uint64_t> quotas(shards_.size());
    uint64_t desired_total = 0;
    for (size_t w = 0; w < shards_.size(); ++w) {
        double weight = w < options_.shard_weights.size()
                            ? options_.shard_weights[w]
                            : 1.0;
        if (weight < 0.0)
            weight = 0.0;
        quotas[w] = static_cast<uint64_t>(
            static_cast<double>(options_.epoch_iterations) * weight +
            0.5);
        desired_total += quotas[w];
    }
    if (desired_total == 0) {
        // All-zero weights would stall the campaign; fall back to a
        // single active shard.
        quotas.assign(shards_.size(), 0);
        quotas[0] = options_.epoch_iterations;
    }
    return quotas;
}

std::vector<uint64_t>
CampaignOrchestrator::planQuotas(uint64_t done) const
{
    // Desired per-shard quota for a full epoch. Shards of a disabled
    // kind plan nothing — graceful degradation zeroes them before the
    // budget scaling, so the surviving kinds inherit the remaining
    // budget proportionally.
    std::vector<uint64_t> quotas = base_quotas_;
    for (size_t w = 0; w < shards_.size(); ++w) {
        if (kind_disabled_[shards_[w].kind])
            quotas[w] = 0;
    }
    uint64_t desired_total = 0;
    for (uint64_t quota : quotas)
        desired_total += quota;
    if (desired_total == 0)
        return quotas; // every kind disabled: run() terminates

    if (options_.total_iterations == 0)
        return quotas;

    // Final epoch of an iteration-bounded campaign: scale the
    // desired quotas down proportionally (largest shares first by
    // worker order for the integer remainder).
    uint64_t remaining = options_.total_iterations - done;
    if (remaining >= desired_total)
        return quotas;
    uint64_t assigned = 0;
    std::vector<uint64_t> scaled(shards_.size(), 0);
    for (size_t w = 0; w < shards_.size(); ++w) {
        scaled[w] = remaining * quotas[w] / desired_total;
        assigned += scaled[w];
    }
    uint64_t leftover = remaining - assigned;
    for (size_t w = 0; w < shards_.size() && leftover > 0; ++w) {
        if (quotas[w] == 0)
            continue;
        ++scaled[w];
        --leftover;
    }
    return scaled;
}

void
CampaignOrchestrator::executorLoop(unsigned t)
{
    // Trace track 0 is the main thread; executors take 1..N. When
    // there is a single shard, executorLoop(0) runs on the main
    // thread and its batches land on the "worker 0" track too.
    obs::setThreadTrack(t + 1);
    core::Fuzzer &fz = *executors_[t];
    double busy = 0.0;
    for (;;) {
        BatchTask task;
        if (!sched_->popOwn(t, task)) {
            // Own deque dry: convert would-be barrier idle into
            // stolen batches. In --no-steal mode the thread simply
            // parks at the barrier (the PR-1 behaviour).
            if (!options_.steal_batches || !sched_->steal(t, task))
                break;
        }
        const Shard &shard = shards_[task.shard];

        // Provenance: offers are tagged with the *shard-logical*
        // (worker, seq) identity regardless of the executing
        // thread; batch k owns seq range [k*B, (k+1)*B). Offers are
        // buffered per attempt and committed only when the batch
        // succeeds: a failed or deadline-killed attempt must leave
        // no trace in the shared corpus, or retries would not be
        // bit-identical to a clean first run.
        const uint64_t seq_base =
            task.index * options_.batch_iterations;
        std::vector<CorpusEntry> offers;
        uint64_t offer_local = 0;
        fz.setInterestingHook(
            [&offers, &shard, &offer_local, seq_base,
             s = task.shard](const core::TestCase &tc,
                             uint64_t gain) {
                offers.push_back(CorpusEntry{tc, gain, s,
                                             seq_base + offer_local++,
                                             shard.group_name});
            });

        // The inject set outlives the attempt loop so every retry
        // re-executes the identical spec.
        std::vector<core::TestCase> inject = std::move(task.inject);

        const double begin = nowSeconds();
        SlotResult slot;
        slot.batch_index = task.index;
        slot.iterations_planned = task.iterations;

        const unsigned max_attempts = 1 + options_.batch_retries;
        bool ok = false;
        std::string reason;
        unsigned attempt = 0;
        for (; attempt < max_attempts && !ok; ++attempt) {
            if (attempt > 0)
                obs::counterAdd(obs::Ctr::BatchRetries);
            offers.clear();
            offer_local = 0;

            core::Fuzzer::BatchSpec spec;
            spec.rng_seed = batchSeed(options_.master_seed,
                                      task.shard, task.index);
            spec.iter_base = seq_base;
            spec.iterations = task.iterations;
            spec.baseline = &group_snapshots_.at(shard.group_name);
            spec.inject = inject;
            spec.deadline_seconds = options_.batch_deadline_sec;

            // batch-hang failpoint: the batch never terminates, so
            // the watchdog kills it at the deadline. Simulated
            // before execution — an actual spin would make the test
            // suite's wall time the deadline sum.
            if (shouldFail(Fault::BatchHang)) {
                obs::counterAdd(obs::Ctr::BatchDeadlineKills);
                ++slot.deadline_kills;
                reason = "batch-deadline";
                continue;
            }
            try {
                if (shouldFail(Fault::BatchThrow))
                    throw std::runtime_error("batch-throw failpoint");
                obs::ScopedSpan batch_span(obs::Hist::BatchNs,
                                           task.shard, task.index);
                slot.res = fz.runBatch(spec);
            } catch (const std::exception &e) {
                reason = std::string("batch-throw: ") + e.what();
                continue;
            }
            if (slot.res.deadline_hit) {
                // The partial result is machine-speed-dependent;
                // discard it wholesale (determinism) and retry.
                obs::counterAdd(obs::Ctr::BatchDeadlineKills);
                ++slot.deadline_kills;
                reason = "batch-deadline";
                slot.res = core::Fuzzer::BatchResult{};
                continue;
            }
            ok = true;
        }
        slot.attempts = attempt;

        if (ok) {
            // Commit the successful attempt: corpus offers first
            // (retention is arrival-order independent), then publish
            // the batch's discoveries with lock-free atomic ORs
            // (commutative, so barrier state is timing-free); keep
            // the full map for the barrier-ordered per-shard fold.
            for (CorpusEntry &entry : offers)
                corpus_.offer(std::move(entry));
            shard.group->mergeFrom(fz.coverage());
            slot.cov = fz.coverage();
        } else {
            slot.failed = true;
            slot.fail_reason = std::move(reason);
            slot.res = core::Fuzzer::BatchResult{};
            // The seeds that rode this batch are quarantined at the
            // barrier (they are the prime crash/hang suspects).
            slot.failed_inject = std::move(inject);
        }
        obs::counterAdd(obs::Ctr::Batches);
        obs::drainThreadSpans();
        slot.seconds = nowSeconds() - begin;
        busy += slot.seconds;
        fz.setInterestingHook(nullptr);

        // Slots are preallocated and disjoint per (shard, slot): no
        // lock needed to publish.
        epoch_results_[task.shard][task.slot] = std::move(slot);
    }
    busy_seconds_[t] = busy;
}

void
CampaignOrchestrator::runEpoch(const std::vector<uint64_t> &quotas)
{
    // Freeze one coverage snapshot per config group on the main
    // thread before any executor starts: every batch of the epoch
    // measures novelty against the same barrier state, which is what
    // makes batches executor-independent.
    for (auto &[name, snapshot] : group_snapshots_) {
        snapshot = group_shapes_.at(name);
        groups_.at(name)->pullInto(snapshot);
    }

    // Plan the epoch: per-shard batch deques + disjoint result slots.
    epoch_results_.assign(shards_.size(), {});
    for (unsigned w = 0; w < shards_.size(); ++w) {
        Shard &shard = shards_[w];
        uint64_t remaining = quotas[w];
        if (remaining == 0)
            continue; // pending seeds wait for the next active epoch
        std::vector<core::TestCase> pending =
            std::move(shard.pending_inject);
        shard.pending_inject.clear();
        size_t slot = 0;
        while (remaining > 0) {
            BatchTask task;
            task.shard = w;
            task.index = shard.next_batch++;
            task.iterations =
                std::min<uint64_t>(remaining,
                                   options_.batch_iterations);
            task.slot = slot++;
            if (!pending.empty()) {
                // Corpus seeds ride the shard's first batch of the
                // epoch; unconsumed ones come back via
                // leftover_inject and retry next epoch.
                task.inject = std::move(pending);
                pending.clear();
            }
            sched_->push(w, std::move(task));
            remaining -= std::min<uint64_t>(
                options_.batch_iterations,
                remaining);
        }
        epoch_results_[w].resize(slot);
    }

    stolen_before_ = sched_->stolen();
    std::fill(busy_seconds_.begin(), busy_seconds_.end(), 0.0);

    const double begin = nowSeconds();
    if (shards_.size() == 1) {
        executorLoop(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(shards_.size());
        for (unsigned t = 0; t < shards_.size(); ++t)
            threads.emplace_back(
                [this, t] { executorLoop(t); });
        for (auto &thread : threads)
            thread.join();
    }
    const double wall = nowSeconds() - begin;

    epoch_stolen_ = sched_->stolen() - stolen_before_;
    epoch_idle_ns_ = 0;
    for (double busy : busy_seconds_) {
        double idle = wall - busy;
        if (idle > 0.0)
            epoch_idle_ns_ +=
                static_cast<uint64_t>(idle * 1e9);
    }
}

void
CampaignOrchestrator::syncEpoch(uint64_t epoch)
{
    // Fold batch outcomes into the shard-logical rollups and the bug
    // ledger in (shard, batch) order, so provenance and dedup
    // first-reporter choices are thread-timing independent.
    for (unsigned w = 0; w < shards_.size(); ++w) {
        Shard &shard = shards_[w];
        for (SlotResult &slot : epoch_results_[w]) {
            stats_.batch_retries += slot.attempts - 1;
            stats_.batch_deadline_kills += slot.deadline_kills;
            if (slot.failed) {
                // The batch exhausted its retries: nothing of it
                // folds in. Its planned iterations were skipped
                // (tracked so the epoch curve stays consistent with
                // the worker rollups), and the corpus seeds that
                // rode it are quarantined — recorded in barrier
                // order for a deterministic ledger, and pulled from
                // the corpus so they stop circulating.
                stats_.batches_failed += 1;
                skipped_iterations_ += slot.iterations_planned;
                shard.agg.active_seconds += slot.seconds;
                for (core::TestCase &tc : slot.failed_inject) {
                    corpus_.removeMatching(tc);
                    QuarantineRecord rec;
                    rec.worker = w;
                    rec.batch = slot.batch_index;
                    rec.attempts = slot.attempts;
                    rec.reason = slot.fail_reason;
                    rec.tc = std::move(tc);
                    quarantine_.push_back(std::move(rec));
                    obs::counterAdd(obs::Ctr::QuarantinedSeeds);
                    stats_.quarantined_seeds += 1;
                }
                // Fleet-wide degradation: a kind whose batches keep
                // faulting (consecutively, across its shards in
                // barrier order) is disabled rather than allowed to
                // burn the whole budget on retries.
                unsigned &streak = kind_fail_streak_[shard.kind];
                ++streak;
                if (options_.kind_disable_failures != 0 &&
                    streak >= options_.kind_disable_failures &&
                    !kind_disabled_[shard.kind]) {
                    kind_disabled_[shard.kind] = true;
                    stats_.kinds_disabled += 1;
                    std::cerr << "dejavuzz-campaign: disabling kind "
                              << shard.config_name << "/"
                              << shard.variant << " after " << streak
                              << " consecutive failed batches (last: "
                              << slot.fail_reason << ")\n";
                }
                continue;
            }
            kind_fail_streak_[shard.kind] = 0;
            const core::Fuzzer::BatchResult &res = slot.res;
            shard.agg.iterations += res.iterations;
            shard.agg.simulations += res.simulations;
            shard.agg.windows_triggered += res.windows_triggered;
            shard.agg.seeds_imported += res.seeds_imported;
            shard.agg.bug_reports += res.bugs.size();
            shard.agg.active_seconds += slot.seconds;
            for (unsigned k = 0; k < core::kTriggerKinds; ++k) {
                shard.trigger_agg[k].windows +=
                    res.triggers[k].windows;
                shard.trigger_agg[k].training_overhead +=
                    res.triggers[k].training_overhead;
                shard.trigger_agg[k].effective_overhead +=
                    res.triggers[k].effective_overhead;
                shard.trigger_agg[k].attempts +=
                    res.triggers[k].attempts;
            }
            for (size_t b = 0; b < res.bugs.size(); ++b) {
                ledger_.record(res.bugs[b], w, epoch,
                               res.bug_cases[b],
                               shard.config_name, shard.variant);
            }
            for (core::TestCase &tc : slot.res.leftover_inject)
                shard.pending_inject.push_back(std::move(tc));
            // Union, not sum: two batches rediscovering the same
            // point must not double-count the shard's coverage.
            shard.private_map.mergeFrom(slot.cov);
        }
        shard.agg.coverage_points = shard.private_map.points();
        stats_.batches += epoch_results_[w].size();
    }
    stats_.batches_stolen += epoch_stolen_;
    stats_.steal_idle_ns += epoch_idle_ns_;

    // Cross-shard seed stealing from a canonical corpus snapshot.
    // Only (gain, worker, seq) keys are snapshotted; the handful of
    // entries actually injected are fetched individually, so the
    // barrier never deep-copies the whole corpus. A single-worker
    // fleet still steals when the corpus was preloaded from a saved
    // campaign — that is what makes --corpus-in resume the run.
    if (options_.steals_per_epoch == 0 ||
        (shards_.size() < 2 && preloaded_ids_.empty())) {
        return;
    }
    std::vector<CorpusKey> snapshot = corpus_.snapshotKeys();
    if (snapshot.empty())
        return;
    for (unsigned w = 0; w < shards_.size(); ++w) {
        Shard &shard = shards_[w];
        // A zero-weight shard never plans an epoch: seeds queued for
        // it would pile up in pending_inject forever (and inflate
        // the steals counter with injections that never execute).
        if (base_quotas_[w] == 0)
            continue;
        std::vector<const CorpusKey *> eligible;
        eligible.reserve(snapshot.size());
        for (const auto &key : snapshot) {
            // Skip a shard's own discoveries (it already mutated
            // them), but not preloaded namesakes from the previous
            // campaign.
            if (key.worker == w &&
                !preloaded_ids_.count({key.worker, key.seq})) {
                continue;
            }
            // Test cases are trigger-tuned to their author's core
            // (and, under Heads, its subspace): only steal within
            // the same group (mirrors the per-group coverage split).
            // The entry carries its own group name because preloaded
            // entries may be authored by workers of a previous
            // campaign with a different fleet size.
            if (key.config != shard.group_name)
                continue;
            if (shard.stolen.count({key.worker, key.seq}))
                continue;
            eligible.push_back(&key);
        }
        for (unsigned s = 0;
             s < options_.steals_per_epoch && !eligible.empty();
             ++s) {
            // Bias toward the head of the canonical (highest-gain)
            // order: draw twice, keep the earlier index.
            uint64_t a = steal_rng_.below(eligible.size());
            uint64_t b = steal_rng_.below(eligible.size());
            uint64_t pick = std::min(a, b);
            const CorpusKey *key = eligible[pick];
            CorpusEntry entry;
            if (corpus_.fetch(key->worker, key->seq, entry)) {
                shard.pending_inject.push_back(
                    std::move(entry.tc));
                shard.stolen.insert({key->worker, key->seq});
                ++steals_;
            }
            eligible.erase(eligible.begin() +
                           static_cast<ptrdiff_t>(pick));
        }
    }
}

void
CampaignOrchestrator::finalizeStats(double wall_seconds)
{
    // Idempotent recompute: autosave calls this mid-campaign and the
    // final save calls it again, so every addWorker() accumulator
    // must be zeroed before the rollups are re-folded.
    stats_.workers.clear();
    stats_.iterations = 0;
    stats_.simulations = 0;
    stats_.windows_triggered = 0;
    stats_.seeds_imported = 0;
    stats_.triggers = {};
    for (const Shard &shard : shards_)
        stats_.addWorker(shard.agg, shard.trigger_agg);

    stats_.coverage_points = 0;
    for (const auto &[name, group] : groups_)
        stats_.coverage_points += group->points();

    stats_.corpus_size = corpus_.size();
    stats_.corpus_preloaded = preloaded_;
    stats_.steals = steals_;
    stats_.batch_iterations = options_.batch_iterations;
    stats_.stealing = options_.steal_batches;
    stats_.wall_seconds = wall_seconds;
    stats_.iters_per_sec =
        wall_seconds > 0.0
            ? static_cast<double>(stats_.iterations) / wall_seconds
            : 0.0;
}

CampaignStats
CampaignOrchestrator::run()
{
    dv_assert(!ran_);
    ran_ = true;

    // Heartbeats stream live to heartbeat_out and are retained for
    // writeJsonlWithHeartbeats(); the emitter's destructor (after
    // finalizeStats) flushes one final record so even runs shorter
    // than the interval produce a heartbeat.
    heartbeat_lines_.clear();
    obs::HeartbeatEmitter heartbeat(
        options_.heartbeat_sec, [this](const std::string &line) {
            heartbeat_lines_.push_back(line);
            if (options_.heartbeat_out != nullptr) {
                *options_.heartbeat_out << line << '\n';
                options_.heartbeat_out->flush();
            }
        });
    obs::gaugeSet(obs::Gauge::Workers, options_.workers);

    const double begin = nowSeconds();
    // A restored checkpoint advances the cursors: planQuotas() and
    // ledger provenance continue from the saved campaign, and
    // --iters budgets count the restored iterations, so "resume with
    // a larger budget" extends the original run.
    uint64_t done = done_base_;
    uint64_t epoch = epoch_base_;
    double last_autosave = begin;

    for (;;) {
        if (options_.total_iterations != 0 &&
            done >= options_.total_iterations) {
            break;
        }
        if (options_.wall_seconds > 0.0 &&
            nowSeconds() - begin >= options_.wall_seconds) {
            break;
        }

        std::vector<uint64_t> quotas = planQuotas(done);
        uint64_t planned = 0;
        for (uint64_t quota : quotas)
            planned += quota;
        if (planned == 0) {
            // Every remaining kind is disabled: terminate instead of
            // spinning on empty epochs.
            std::cerr << "dejavuzz-campaign: all shard kinds "
                         "disabled; ending campaign early\n";
            break;
        }
        runEpoch(quotas);
        done += planned;
        syncEpoch(epoch);

        // Fig-7-style epoch-resolution growth sample. The counter
        // fields are barrier state, so they are reproducible; only
        // wall_seconds and the scheduler occupancy pair are
        // machine-dependent. Epoch/iteration axes are this run's own
        // (a resumed log restarts both at 0; cumulative state like
        // coverage and distinct bugs includes what was restored).
        EpochSample sample;
        sample.epoch = epoch - epoch_base_;
        // Planned-but-skipped iterations of retry-exhausted batches
        // are excluded, so this axis equals the sum of iterations
        // the workers actually executed (the validator's invariant
        // against the summary record).
        sample.iterations = done - done_base_ - skipped_iterations_;
        for (const auto &[name, group] : groups_)
            sample.coverage_points += group->points();
        sample.distinct_bugs = ledger_.distinct();
        sample.corpus_size = corpus_.size();
        sample.batches_stolen = epoch_stolen_;
        sample.steal_idle_ns = epoch_idle_ns_;
        sample.wall_seconds = nowSeconds() - begin;
        stats_.epoch_curve.push_back(sample);

        obs::gaugeSet(obs::Gauge::CoveragePoints,
                      sample.coverage_points);
        obs::gaugeSet(obs::Gauge::DistinctBugs, sample.distinct_bugs);
        obs::gaugeSet(obs::Gauge::CorpusSize, sample.corpus_size);
        obs::gaugeSet(obs::Gauge::Epochs, sample.epoch + 1);

        ++epoch;

        // Periodic crash-safe checkpoint. Cursors and stats are
        // brought barrier-consistent first (finalizeStats is an
        // idempotent recompute), so the hook sees exactly the state
        // an uninterrupted save after run() would see; a SIGKILL
        // then loses at most one interval plus the epoch in flight.
        if (autosave_hook_ && options_.autosave_sec > 0.0 &&
            nowSeconds() - last_autosave >= options_.autosave_sec) {
            done_ = done;
            epoch_ = epoch;
            stats_.epochs = epoch - epoch_base_;
            finalizeStats(nowSeconds() - begin);
            std::string save_error;
            if (!autosave_hook_(&save_error)) {
                // Persistence trouble must not kill the campaign it
                // protects: log, keep fuzzing, retry next interval.
                std::cerr << "dejavuzz-campaign: autosave failed: "
                          << save_error << "\n";
            }
            last_autosave = nowSeconds();
        }
    }

    done_ = done;
    epoch_ = epoch;
    stats_.epochs = epoch - epoch_base_;
    finalizeStats(nowSeconds() - begin);
    return stats_;
}

void
CampaignOrchestrator::writeJsonl(std::ostream &os) const
{
    // Echo the effective template set (stimgen normalizes an empty
    // mask to the legacy single model); heads shards each carry
    // their own set, visible per worker via the head-* variant.
    uint32_t mask = options_.fuzzer.model_mask & core::kAllModelMask;
    if (mask == 0)
        mask = core::kLegacyModelMask;
    writeCampaignJsonl(os, stats_, ledger_,
                       shardPolicyName(options_.policy),
                       options_.master_seed,
                       options_.policy == ShardPolicy::Heads
                           ? "per-head"
                           : core::modelMaskNames(mask));
}

void
CampaignOrchestrator::writeJsonlWithHeartbeats(std::ostream &os) const
{
    // Heartbeats first: that is the order a live campaign.jsonl
    // carries (records streamed during the run, full log at the end).
    for (const std::string &line : heartbeat_lines_)
        os << line << '\n';
    writeJsonl(os);
}

} // namespace dejavuzz::campaign
