#include "campaign/orchestrator.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/logging.hh"

namespace dejavuzz::campaign {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Ablation variants cycled across workers by AblationMatrix. */
struct AblationVariant
{
    const char *name;
    bool derived_training;
    bool coverage_feedback;
    bool use_liveness;
    bool training_reduction;
};

constexpr AblationVariant kAblationMatrix[] = {
    {"full", true, true, true, true},
    {"dejavuzz-star", false, true, true, true},
    {"dejavuzz-minus", true, false, true, true},
    {"no-liveness", true, true, false, true},
    {"no-reduction", true, true, true, false},
};

} // namespace

const char *
shardPolicyName(ShardPolicy policy)
{
    switch (policy) {
      case ShardPolicy::Replicas: return "replicas";
      case ShardPolicy::ConfigSweep: return "sweep";
      case ShardPolicy::AblationMatrix: return "ablation";
    }
    return "?";
}

CampaignOrchestrator::CampaignOrchestrator(
    const CampaignOptions &options)
    : options_(options),
      corpus_(options.corpus_shards, options.corpus_shard_cap),
      steal_rng_(Rng::streamSeed(options.master_seed,
                                 0x5eedfeedULL))
{
    if (options_.workers == 0)
        options_.workers = 1;
    if (options_.epoch_iterations == 0)
        options_.epoch_iterations = 1;
    dv_assert(options_.total_iterations != 0 ||
              options_.wall_seconds > 0.0);
    provision();
}

void
CampaignOrchestrator::provision()
{
    workers_.resize(options_.workers);
    for (unsigned w = 0; w < options_.workers; ++w) {
        Worker &worker = workers_[w];

        uarch::CoreConfig config = options_.base_config;
        core::FuzzerOptions fopts = options_.fuzzer;
        worker.variant = "full";

        switch (options_.policy) {
          case ShardPolicy::Replicas:
            break;
          case ShardPolicy::ConfigSweep:
            // Alternate between the two paper cores, starting from
            // the base config's core.
            if (w % 2 == 1) {
                config = options_.base_config.kind ==
                                 uarch::CoreKind::Boom
                             ? uarch::xiangshanMinimalConfig()
                             : uarch::smallBoomConfig();
            }
            break;
          case ShardPolicy::AblationMatrix: {
            const auto &variant =
                kAblationMatrix[w % std::size(kAblationMatrix)];
            worker.variant = variant.name;
            fopts.derived_training = variant.derived_training;
            fopts.coverage_feedback = variant.coverage_feedback;
            fopts.use_liveness = variant.use_liveness;
            fopts.training_reduction = variant.training_reduction;
            break;
          }
        }

        // Independent, reproducible per-worker stream from the one
        // campaign master seed.
        fopts.master_seed =
            Rng::streamSeed(options_.master_seed, w);
        // Long campaigns: bound memory, the orchestrator tracks the
        // fleet-level coverage curve itself.
        fopts.record_coverage_curve = false;

        worker.config_name = config.name;
        worker.fuzzer =
            std::make_unique<core::Fuzzer>(config, fopts);
        worker.fuzzer->setInterestingHook(
            [this, w, &worker](const core::TestCase &tc,
                               uint64_t gain) {
                corpus_.offer(CorpusEntry{tc, gain, w,
                                          worker.offer_seq++,
                                          worker.config_name});
            });

        auto [it, inserted] = groups_.try_emplace(worker.config_name);
        if (inserted) {
            it->second = std::make_unique<GlobalCoverage>(
                worker.fuzzer->coverage());
        }
        worker.group = it->second.get();
    }
}

uint64_t
CampaignOrchestrator::preloadCorpus(
    const std::vector<CorpusEntry> &entries)
{
    dv_assert(!ran_);
    uint64_t admitted = 0;
    for (const CorpusEntry &entry : entries) {
        // Reserve the identity even when the entry itself is
        // skipped or dropped below, so a chained resume never
        // re-issues a (worker, seq) the file already claims.
        if (entry.worker < workers_.size()) {
            Worker &namesake = workers_[entry.worker];
            namesake.offer_seq =
                std::max(namesake.offer_seq, entry.seq + 1);
        }
        // injectSeed() resumes a case in Phase-2 mutation mode, which
        // requires a completed window payload.
        if (!entry.tc.has_window_payload)
            continue;
        // A corpus tighter than the saving campaign's (smaller
        // --corpus-cap) retains only the top of the saved set;
        // only what actually landed counts as preloaded.
        if (!corpus_.offer(entry))
            continue;
        preloaded_ids_.insert({entry.worker, entry.seq});
        ++admitted;
    }
    preloaded_ += admitted;
    return admitted;
}

void
CampaignOrchestrator::runEpoch(const std::vector<uint64_t> &quotas)
{
    // Pull fleet-wide discoveries on the main thread, before any
    // worker starts: a pull inside the worker slice could observe a
    // faster sibling's same-epoch merge and break reproducibility.
    for (size_t w = 0; w < workers_.size(); ++w) {
        if (quotas[w] != 0)
            workers_[w].group->pullInto(
                workers_[w].fuzzer->coverageMut());
    }

    auto slice = [](Worker &worker, uint64_t quota) {
        if (quota == 0)
            return;
        // Run the slice, then publish our discoveries with lock-free
        // atomic ORs (commutative, so barrier state is timing-free).
        worker.fuzzer->run(quota);
        worker.group->mergeFrom(worker.fuzzer->coverage());
    };

    if (workers_.size() == 1) {
        slice(workers_[0], quotas[0]);
        return;
    }
    std::vector<std::thread> threads;
    threads.reserve(workers_.size());
    for (size_t w = 0; w < workers_.size(); ++w)
        threads.emplace_back(slice, std::ref(workers_[w]),
                             quotas[w]);
    for (auto &thread : threads)
        thread.join();
}

void
CampaignOrchestrator::syncEpoch(uint64_t epoch)
{
    // Drain fresh bug reports into the ledger in worker order so
    // first-discovery provenance is thread-timing independent.
    for (unsigned w = 0; w < workers_.size(); ++w) {
        Worker &worker = workers_[w];
        const auto &bugs = worker.fuzzer->stats().bugs;
        for (size_t i = worker.bugs_drained; i < bugs.size(); ++i)
            ledger_.record(bugs[i], w, epoch);
        worker.bugs_drained = bugs.size();
    }

    // Cross-worker seed stealing from a canonical corpus snapshot.
    // Only (gain, worker, seq) keys are snapshotted; the handful of
    // entries actually injected are fetched individually, so the
    // barrier never deep-copies the whole corpus. A single-worker
    // fleet still steals when the corpus was preloaded from a saved
    // campaign — that is what makes --corpus-in resume the run.
    if (options_.steals_per_epoch == 0 ||
        (workers_.size() < 2 && preloaded_ids_.empty())) {
        return;
    }
    std::vector<CorpusKey> snapshot = corpus_.snapshotKeys();
    if (snapshot.empty())
        return;
    for (unsigned w = 0; w < workers_.size(); ++w) {
        Worker &worker = workers_[w];
        std::vector<const CorpusKey *> eligible;
        eligible.reserve(snapshot.size());
        for (const auto &key : snapshot) {
            // Skip a worker's own discoveries (it already mutated
            // them), but not preloaded namesakes from the previous
            // campaign.
            if (key.worker == w &&
                !preloaded_ids_.count({key.worker, key.seq})) {
                continue;
            }
            // Test cases are trigger-tuned to their author's core:
            // only steal within the same config group (mirrors the
            // per-config coverage split). The entry carries its own
            // config name because preloaded entries may be authored
            // by workers of a previous campaign with a different
            // fleet size.
            if (key.config != worker.config_name)
                continue;
            if (worker.stolen.count({key.worker, key.seq}))
                continue;
            eligible.push_back(&key);
        }
        for (unsigned s = 0;
             s < options_.steals_per_epoch && !eligible.empty();
             ++s) {
            // Bias toward the head of the canonical (highest-gain)
            // order: draw twice, keep the earlier index.
            uint64_t a = steal_rng_.below(eligible.size());
            uint64_t b = steal_rng_.below(eligible.size());
            uint64_t pick = std::min(a, b);
            const CorpusKey *key = eligible[pick];
            CorpusEntry entry;
            if (corpus_.fetch(key->worker, key->seq, entry)) {
                worker.fuzzer->injectSeed(entry.tc);
                worker.stolen.insert({key->worker, key->seq});
                ++steals_;
            }
            eligible.erase(eligible.begin() +
                           static_cast<ptrdiff_t>(pick));
        }
    }
}

void
CampaignOrchestrator::finalizeStats(double wall_seconds)
{
    stats_.workers.clear();
    for (unsigned w = 0; w < workers_.size(); ++w) {
        const Worker &worker = workers_[w];
        const core::FuzzerStats &fs = worker.fuzzer->stats();
        WorkerSummary summary;
        summary.worker = w;
        summary.config = worker.config_name;
        summary.variant = worker.variant;
        summary.iterations = fs.iterations;
        summary.simulations = fs.simulations;
        summary.windows_triggered = fs.windows_triggered;
        summary.coverage_points = fs.coverage_points;
        summary.seeds_imported = fs.seeds_imported;
        summary.bug_reports = fs.bugs.size();
        summary.active_seconds = worker.fuzzer->elapsedSeconds();
        stats_.addWorker(summary, worker.fuzzer->triggerStats());
    }

    stats_.coverage_points = 0;
    for (const auto &[name, group] : groups_)
        stats_.coverage_points += group->points();

    stats_.corpus_size = corpus_.size();
    stats_.corpus_preloaded = preloaded_;
    stats_.steals = steals_;
    stats_.wall_seconds = wall_seconds;
    stats_.iters_per_sec =
        wall_seconds > 0.0
            ? static_cast<double>(stats_.iterations) / wall_seconds
            : 0.0;
}

CampaignStats
CampaignOrchestrator::run()
{
    dv_assert(!ran_);
    ran_ = true;

    const double begin = nowSeconds();
    uint64_t done = 0;
    uint64_t epoch = 0;

    for (;;) {
        if (options_.total_iterations != 0 &&
            done >= options_.total_iterations) {
            break;
        }
        if (options_.wall_seconds > 0.0 &&
            nowSeconds() - begin >= options_.wall_seconds) {
            break;
        }

        // Per-worker quotas for this epoch; the final epoch of an
        // iteration-bounded campaign splits the remainder evenly
        // (workers [0, rem % N) take one extra iteration).
        std::vector<uint64_t> quotas(workers_.size(),
                                     options_.epoch_iterations);
        if (options_.total_iterations != 0) {
            uint64_t remaining = options_.total_iterations - done;
            uint64_t full = options_.epoch_iterations *
                            static_cast<uint64_t>(workers_.size());
            if (remaining < full) {
                uint64_t base =
                    remaining / workers_.size();
                uint64_t extra =
                    remaining % workers_.size();
                for (size_t w = 0; w < workers_.size(); ++w)
                    quotas[w] = base + (w < extra ? 1 : 0);
            }
        }

        runEpoch(quotas);
        for (uint64_t quota : quotas)
            done += quota;
        syncEpoch(epoch);

        // Fig-7-style epoch-resolution growth sample. The counter
        // fields are barrier state, so they are reproducible; only
        // wall_seconds is machine-dependent.
        EpochSample sample;
        sample.epoch = epoch;
        sample.iterations = done;
        for (const auto &[name, group] : groups_)
            sample.coverage_points += group->points();
        sample.distinct_bugs = ledger_.distinct();
        sample.corpus_size = corpus_.size();
        sample.wall_seconds = nowSeconds() - begin;
        stats_.epoch_curve.push_back(sample);

        ++epoch;
    }

    stats_.epochs = epoch;
    finalizeStats(nowSeconds() - begin);
    return stats_;
}

void
CampaignOrchestrator::writeJsonl(std::ostream &os) const
{
    writeCampaignJsonl(os, stats_, ledger_,
                       shardPolicyName(options_.policy),
                       options_.master_seed);
}

} // namespace dejavuzz::campaign
