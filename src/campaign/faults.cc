#include "campaign/faults.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "obs/telemetry.hh"
#include "util/rng.hh"

namespace dejavuzz::campaign {

const char *
faultName(Fault f)
{
    switch (f) {
      case Fault::BatchThrow: return "batch-throw";
      case Fault::BatchHang: return "batch-hang";
      case Fault::ShortWrite: return "short-write";
      case Fault::TornRename: return "torn-rename";
      case Fault::Enospc: return "enospc";
      case Fault::kCount: break;
    }
    return "?";
}

namespace {

struct FaultPoint
{
    /** Firing probability as a fraction num/kProbDen (exact for the
     *  0/1 endpoints CI uses, and spec round-trips stay stable). */
    uint64_t prob_num = 0;
    /** Remaining firings; UINT64_MAX means uncapped. */
    uint64_t remaining = 0;
};

constexpr uint64_t kProbDen = 1u << 20;

/** Registry state. The armed flag is the hot-path gate: shouldFail()
 *  with nothing armed is one relaxed load, so fault support costs
 *  nothing when off. Everything else is cold and mutex-guarded. */
std::atomic<bool> g_armed{false};
std::mutex g_mu;
FaultPoint g_points[kNumFaults];
Rng g_rng;
uint64_t g_fired = 0;

bool
parseNumber(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end && *end == '\0';
}

bool
faultByName(const std::string &name, Fault &out)
{
    for (unsigned i = 0; i < kNumFaults; ++i) {
        if (name == faultName(static_cast<Fault>(i))) {
            out = static_cast<Fault>(i);
            return true;
        }
    }
    return false;
}

} // namespace

bool
armFaults(const std::string &spec, std::string *error)
{
    std::lock_guard<std::mutex> lock(g_mu);
    g_armed.store(false, std::memory_order_relaxed);
    for (auto &point : g_points)
        point = FaultPoint{};
    g_fired = 0;

    // The registry is already disarmed and zeroed above, so a parse
    // failure leaves it safely off.
    auto fail = [&](const std::string &msg) {
        for (auto &point : g_points)
            point = FaultPoint{};
        if (error)
            *error = "--inject-faults: " + msg;
        return false;
    };

    uint64_t seed = 1;
    bool any = false;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;

        size_t eq = item.find('=');
        if (eq == std::string::npos)
            return fail("expected KEY=VALUE, got '" + item + "'");
        std::string key = item.substr(0, eq);
        std::string value = item.substr(eq + 1);

        if (key == "seed") {
            double v = 0;
            if (!parseNumber(value, v) || v < 0 ||
                v != static_cast<uint64_t>(v))
                return fail("bad seed '" + value + "'");
            seed = static_cast<uint64_t>(v);
            continue;
        }

        Fault f;
        if (!faultByName(key, f))
            return fail("unknown failpoint '" + key + "'");

        std::string prob_text = value;
        uint64_t max_fires = UINT64_MAX;
        size_t colon = value.find(':');
        if (colon != std::string::npos) {
            prob_text = value.substr(0, colon);
            double m = 0;
            if (!parseNumber(value.substr(colon + 1), m) || m < 0 ||
                m != static_cast<uint64_t>(m))
                return fail("bad max count in '" + item + "'");
            max_fires = static_cast<uint64_t>(m);
        }
        double prob = 0;
        if (!parseNumber(prob_text, prob) || prob < 0.0 || prob > 1.0)
            return fail("probability outside [0,1] in '" + item +
                        "'");

        auto &point = g_points[static_cast<unsigned>(f)];
        point.prob_num =
            static_cast<uint64_t>(prob * static_cast<double>(kProbDen));
        if (prob > 0.0 && point.prob_num == 0)
            point.prob_num = 1; // tiny but non-zero stays armed
        point.remaining = max_fires;
        if (point.prob_num > 0 && point.remaining > 0)
            any = true;
    }

    g_rng.reseed(seed);
    g_armed.store(any, std::memory_order_relaxed);
    return true;
}

void
disarmFaults()
{
    std::lock_guard<std::mutex> lock(g_mu);
    g_armed.store(false, std::memory_order_relaxed);
    for (auto &point : g_points)
        point = FaultPoint{};
    g_fired = 0;
}

bool
faultsArmed()
{
    return g_armed.load(std::memory_order_relaxed);
}

bool
shouldFail(Fault f)
{
    if (!faultsArmed())
        return false;
    std::lock_guard<std::mutex> lock(g_mu);
    auto &point = g_points[static_cast<unsigned>(f)];
    if (point.prob_num == 0 || point.remaining == 0)
        return false;
    if (point.prob_num < kProbDen &&
        !g_rng.chance(point.prob_num, kProbDen))
        return false;
    if (point.remaining != UINT64_MAX)
        --point.remaining;
    ++g_fired;
    obs::counterAdd(obs::Ctr::FaultsInjected);
    return true;
}

uint64_t
faultsFired()
{
    std::lock_guard<std::mutex> lock(g_mu);
    return g_fired;
}

} // namespace dejavuzz::campaign
