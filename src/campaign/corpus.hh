/**
 * @file
 * Mutex-sharded shared corpus of interesting test cases.
 *
 * Workers offer() cases whose Phase-2 run propagated taint and gained
 * coverage; offers take exactly one shard lock, so contention scales
 * down with the shard count. Every shard is bounded: when full, the
 * entry with the smallest (gain, worker, seq) order is evicted, which
 * makes the retained set the top-N of everything ever offered —
 * independent of arrival order, so barrier-time snapshots are
 * deterministic no matter how worker threads interleave.
 *
 * Cross-worker seed stealing happens at epoch barriers: the
 * orchestrator snapshots the corpus in a canonical order and injects
 * high-gain cases authored by other workers into each fuzzer.
 */

#ifndef DEJAVUZZ_CAMPAIGN_CORPUS_HH
#define DEJAVUZZ_CAMPAIGN_CORPUS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "core/seed.hh"
#include "ift/coverage.hh"

namespace dejavuzz::campaign {

/** One admitted corpus entry. */
struct CorpusEntry
{
    core::TestCase tc;
    uint64_t gain = 0;    ///< fresh coverage points when admitted
    unsigned worker = 0;  ///< authoring worker
    uint64_t seq = 0;     ///< author-local admission sequence number
    std::string config;   ///< authoring worker's core config name
};

/** Lightweight identity of a corpus entry (no test-case payload). */
struct CorpusKey
{
    uint64_t gain = 0;
    unsigned worker = 0;
    uint64_t seq = 0;
    std::string config;
};

/** Parsed contents of a persisted corpus file. */
struct CorpusFile
{
    uint32_t version = 0;
    uint64_t master_seed = 0;     ///< master seed of the saving campaign
    std::vector<CorpusEntry> entries;
};

/** Canonical corpus order: gain desc, then (worker, seq) asc. */
bool corpusOrderBefore(const CorpusKey &a, const CorpusKey &b);
bool corpusOrderBefore(const CorpusEntry &a, const CorpusEntry &b);

class SharedCorpus
{
  public:
    /**
     * @p shards lock-striping width; @p shard_cap bound on entries
     * retained per shard (total capacity = shards * shard_cap).
     */
    explicit SharedCorpus(unsigned shards = 8,
                          unsigned shard_cap = 64);

    SharedCorpus(const SharedCorpus &) = delete;
    SharedCorpus &operator=(const SharedCorpus &) = delete;

    /**
     * Admit @p entry. Thread-safe; locks a single shard chosen by
     * hashing (worker, seq). Entries below every retained gain in a
     * full shard are dropped. Returns whether the entry was
     * retained (it may still be evicted by a later, stronger offer).
     */
    bool offer(CorpusEntry entry);

    /** Number of retained entries (approximate under concurrency). */
    size_t size() const;

    /**
     * Snapshot every retained entry in canonical order. Determinism
     * holds when no concurrent offer() is running (the orchestrator
     * snapshots only at epoch barriers).
     */
    std::vector<CorpusEntry> snapshotSorted() const;

    /**
     * Snapshot only (gain, worker, seq) identities in canonical
     * order — cheap enough to call every epoch; the orchestrator
     * selects steal targets from this and fetch()es just the few
     * entries it actually injects.
     */
    std::vector<CorpusKey> snapshotKeys() const;

    /**
     * Copy the entry identified by (worker, seq) into @p out.
     * Returns false when it has been evicted since the snapshot.
     */
    bool fetch(unsigned worker, uint64_t seq, CorpusEntry &out) const;

    /**
     * Drop the entry identified by (worker, seq) — how quarantine
     * pulls a poison seed out of circulation. Thread-safe (single
     * shard lock). Returns false when no such entry is retained.
     */
    bool remove(unsigned worker, uint64_t seq);

    /**
     * Drop every retained entry whose canonical test-case hash
     * (hashTestCase, io_util.hh) matches @p tc — content-based quarantine
     * removal for seeds whose (worker, seq) identity was shed on the
     * inject path. Returns the number of entries removed. Takes each
     * shard lock in turn; call from barriers or other quiescent
     * points.
     */
    size_t removeMatching(const core::TestCase &tc);

    /** Corpus file format version written by saveTo(). v2 appended
     *  the attack-model fields to each test case; loadFrom() still
     *  reads v1 files (their entries get the implicit same-domain
     *  model). The format is specified in docs/campaign-format.md. */
    static constexpr uint32_t kFormatVersion = 2;

    /**
     * Serialize every retained entry, in canonical order, to @p os
     * (binary). @p master_seed records the saving campaign's master
     * seed in the header. Returns false when the stream fails.
     */
    bool saveTo(std::ostream &os, uint64_t master_seed) const;

    /**
     * Parse a corpus file produced by saveTo(). Strictly validated:
     * a bad magic/version, truncated stream, or out-of-range enum
     * fails the load (with a diagnostic in @p error when non-null)
     * rather than yielding a half-read corpus.
     */
    static bool loadFrom(std::istream &is, CorpusFile &out,
                         std::string *error = nullptr);

    /** What minimize() removed. */
    struct MinimizeStats
    {
        size_t before = 0;      ///< entries prior to minimization
        size_t kept = 0;        ///< entries retained
        size_t duplicates = 0;  ///< dropped: content-identical twin kept
        size_t subsumed = 0;    ///< dropped: coverage already provided

        size_t dropped() const { return duplicates + subsumed; }
    };

    /** Coverage oracle for minimize(): the tuple set one test case
     *  produces on its own (core::Fuzzer::replayCase provides it). */
    using CoverageEval =
        std::function<std::vector<ift::CoveragePoint>(
            const CorpusEntry &)>;

    /**
     * Content-based corpus distillation. Walks the retained entries
     * in canonical order (highest gain first) and drops
     *  - content duplicates: entries whose canonical test-case hash
     *    (hashTestCase) matches an already-kept entry, and
     *  - coverage-subsumed entries: entries whose @p eval tuple set
     *    adds nothing to the union of the kept entries' sets
     *    (skipped when @p eval is null — dedup only).
     * The kept set's coverage union equals the original union by
     * construction. Not thread-safe against concurrent offer();
     * call at a barrier or after the campaign finished.
     */
    MinimizeStats minimize(const CoverageEval &eval = nullptr);

  private:
    struct Shard
    {
        mutable std::mutex mu;
        std::vector<CorpusEntry> entries;
    };

    unsigned shard_cap_;
    std::vector<Shard> shards_;
};

} // namespace dejavuzz::campaign

#endif // DEJAVUZZ_CAMPAIGN_CORPUS_HH
