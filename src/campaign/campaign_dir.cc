#include "campaign/campaign_dir.hh"

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "campaign/orchestrator.hh"
#include "campaign/stats.hh"
#include "report/json.hh"

namespace dejavuzz::campaign {

namespace {

namespace fs = std::filesystem;

/** Strict non-negative integer extraction from a parsed meta line.
 *  Mirrors report::Fields::u64 (src/report/campaign_log.cc) — the
 *  two must stay behaviorally in sync so meta.json and the JSONL
 *  log reject the same malformed values. */
bool
metaU64(const report::JsonObject &obj, const char *key,
        uint64_t &out, std::string &error)
{
    if (!error.empty())
        return false;
    auto it = obj.find(key);
    if (it == obj.end()) {
        error = std::string("meta.json: missing field \"") + key +
                "\"";
        return false;
    }
    const report::JsonValue &value = it->second;
    bool integral = value.isNumber() && !value.raw.empty();
    for (char c : value.raw) {
        if (c < '0' || c > '9')
            integral = false;
    }
    if (!integral) {
        error = std::string("meta.json: field \"") + key +
                "\" must be a non-negative integer";
        return false;
    }
    errno = 0;
    out = std::strtoull(value.raw.c_str(), nullptr, 10);
    if (errno == ERANGE) {
        error = std::string("meta.json: field \"") + key +
                "\" exceeds the 64-bit range";
        return false;
    }
    return true;
}

bool
metaStr(const report::JsonObject &obj, const char *key,
        std::string &out, std::string &error)
{
    if (!error.empty())
        return false;
    auto it = obj.find(key);
    if (it == obj.end() || !it->second.isString()) {
        error = std::string("meta.json: missing string field \"") +
                key + "\"";
        return false;
    }
    out = it->second.text;
    return true;
}

bool
metaBool(const report::JsonObject &obj, const char *key, bool &out,
         std::string &error)
{
    if (!error.empty())
        return false;
    auto it = obj.find(key);
    if (it == obj.end() ||
        it->second.kind != report::JsonValue::Kind::Bool) {
        error = std::string("meta.json: missing boolean field \"") +
                key + "\"";
        return false;
    }
    out = it->second.boolean;
    return true;
}

void
mismatch(std::vector<std::string> &out, const char *field,
         const std::string &saved, const std::string &current)
{
    if (saved != current) {
        out.push_back(std::string(field) + ": saved " + saved +
                      ", current " + current);
    }
}

void
mismatchU64(std::vector<std::string> &out, const char *field,
            uint64_t saved, uint64_t current)
{
    mismatch(out, field, std::to_string(saved),
             std::to_string(current));
}

} // namespace

CampaignDirPaths
campaignDirPaths(const std::string &dir)
{
    CampaignDirPaths paths;
    paths.meta = (fs::path(dir) / "meta.json").string();
    paths.log = (fs::path(dir) / "campaign.jsonl").string();
    paths.corpus = (fs::path(dir) / "corpus.bin").string();
    paths.snapshot = (fs::path(dir) / "campaign.snap").string();
    return paths;
}

CampaignMeta
metaFromOptions(const CampaignOptions &options)
{
    CampaignMeta meta;
    meta.meta_version = kMetaFormatVersion;
    meta.corpus_version = SharedCorpus::kFormatVersion;
    meta.snapshot_version = kSnapshotFormatVersion;
    meta.master_seed = options.master_seed;
    meta.workers = options.workers;
    meta.policy = shardPolicyName(options.policy);
    meta.core = options.base_config.name;
    meta.epoch_iterations = options.epoch_iterations;
    meta.batch_iterations = options.batch_iterations;
    meta.steal_batches = options.steal_batches;
    meta.steals_per_epoch = options.steals_per_epoch;
    uint32_t mask = options.fuzzer.model_mask & core::kAllModelMask;
    meta.model_mask = mask ? mask : core::kLegacyModelMask;
    meta.corpus_shards = options.corpus_shards;
    meta.corpus_shard_cap = options.corpus_shard_cap;
    return meta;
}

void
writeMeta(std::ostream &os, const CampaignMeta &meta)
{
    os << "{\"meta_version\":" << meta.meta_version
       << ",\"corpus_version\":" << meta.corpus_version
       << ",\"snapshot_version\":" << meta.snapshot_version
       << ",\"master_seed\":" << meta.master_seed
       << ",\"workers\":" << meta.workers
       << ",\"policy\":\"" << jsonEscape(meta.policy)
       << "\",\"core\":\"" << jsonEscape(meta.core)
       << "\",\"epoch\":" << meta.epoch_iterations
       << ",\"batch\":" << meta.batch_iterations
       << ",\"steal\":" << (meta.steal_batches ? "true" : "false")
       << ",\"steals\":" << meta.steals_per_epoch
       << ",\"templates\":" << meta.model_mask
       << ",\"corpus_shards\":" << meta.corpus_shards
       << ",\"corpus_cap\":" << meta.corpus_shard_cap << "}\n";
}

bool
readMeta(std::istream &is, CampaignMeta &out, std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };

    std::string line, extra;
    // The object is one line; tolerate trailing blank lines only.
    while (std::getline(is, line) && line.empty()) {
    }
    if (line.empty())
        return fail("meta.json is empty");
    while (std::getline(is, extra)) {
        if (!extra.empty())
            return fail("meta.json: trailing content after the "
                        "meta object");
    }

    report::JsonObject obj;
    std::string json_error;
    if (!report::parseFlatJsonObject(line, obj, &json_error))
        return fail("meta.json: " + json_error);

    std::string field_error;
    uint64_t meta_version = 0, corpus_version = 0,
             snapshot_version = 0;
    metaU64(obj, "meta_version", meta_version, field_error);
    metaU64(obj, "corpus_version", corpus_version, field_error);
    metaU64(obj, "snapshot_version", snapshot_version, field_error);
    metaU64(obj, "master_seed", out.master_seed, field_error);
    metaU64(obj, "workers", out.workers, field_error);
    metaStr(obj, "policy", out.policy, field_error);
    metaStr(obj, "core", out.core, field_error);
    metaU64(obj, "epoch", out.epoch_iterations, field_error);
    metaU64(obj, "batch", out.batch_iterations, field_error);
    metaBool(obj, "steal", out.steal_batches, field_error);
    metaU64(obj, "steals", out.steals_per_epoch, field_error);
    // Optional: meta.json files written before the attack-model
    // layer carry no template mask and imply the legacy model.
    if (obj.count("templates"))
        metaU64(obj, "templates", out.model_mask, field_error);
    else
        out.model_mask = core::kLegacyModelMask;
    metaU64(obj, "corpus_shards", out.corpus_shards, field_error);
    metaU64(obj, "corpus_cap", out.corpus_shard_cap, field_error);
    if (!field_error.empty())
        return fail(field_error);

    out.meta_version = static_cast<uint32_t>(meta_version);
    out.corpus_version = static_cast<uint32_t>(corpus_version);
    out.snapshot_version = static_cast<uint32_t>(snapshot_version);
    return true;
}

std::vector<std::string>
metaMismatches(const CampaignMeta &saved, const CampaignMeta &current)
{
    std::vector<std::string> out;
    mismatchU64(out, "meta_version", saved.meta_version,
                current.meta_version);
    // Older corpus/snapshot formats stay resumable as long as the
    // current loaders read them (they accept every version up to
    // their own); re-saving upgrades the directory to the current
    // format. Only a *newer* saved format is a real mismatch.
    if (saved.corpus_version < 1 ||
        saved.corpus_version > current.corpus_version) {
        mismatchU64(out, "corpus_version", saved.corpus_version,
                    current.corpus_version);
    }
    if (saved.snapshot_version < 1 ||
        saved.snapshot_version > current.snapshot_version) {
        mismatchU64(out, "snapshot_version", saved.snapshot_version,
                    current.snapshot_version);
    }
    mismatchU64(out, "master_seed", saved.master_seed,
                current.master_seed);
    mismatchU64(out, "workers", saved.workers, current.workers);
    mismatch(out, "policy", saved.policy, current.policy);
    mismatch(out, "core", saved.core, current.core);
    mismatchU64(out, "epoch", saved.epoch_iterations,
                current.epoch_iterations);
    mismatchU64(out, "batch", saved.batch_iterations,
                current.batch_iterations);
    mismatch(out, "steal", saved.steal_batches ? "true" : "false",
             current.steal_batches ? "true" : "false");
    mismatchU64(out, "steals", saved.steals_per_epoch,
                current.steals_per_epoch);
    // Compare as names: "templates: saved same-domain, current
    // same-domain,priv-transition" beats raw mask integers.
    mismatch(out, "templates",
             core::modelMaskNames(
                 static_cast<uint32_t>(saved.model_mask)),
             core::modelMaskNames(
                 static_cast<uint32_t>(current.model_mask)));
    mismatchU64(out, "corpus_shards", saved.corpus_shards,
                current.corpus_shards);
    mismatchU64(out, "corpus_cap", saved.corpus_shard_cap,
                current.corpus_shard_cap);
    return out;
}

bool
campaignDirExists(const std::string &dir)
{
    std::error_code ec;
    return fs::is_regular_file(campaignDirPaths(dir).meta, ec);
}

bool
loadCampaignSnapshot(const std::string &dir, CampaignMeta &meta,
                     CampaignCheckpoint &checkpoint,
                     std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };
    const CampaignDirPaths paths = campaignDirPaths(dir);

    std::ifstream meta_in(paths.meta);
    if (!meta_in)
        return fail("cannot open " + paths.meta);
    std::string sub_error;
    if (!readMeta(meta_in, meta, &sub_error))
        return fail(sub_error);

    std::ifstream snap_in(paths.snapshot,
                          std::ios::in | std::ios::binary);
    if (!snap_in)
        return fail("cannot open " + paths.snapshot);
    if (!loadCheckpoint(snap_in, checkpoint, &sub_error))
        return fail(paths.snapshot + ": " + sub_error);
    return true;
}

bool
loadCampaignDir(const std::string &dir, LoadedCampaignDir &out,
                std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };
    if (!loadCampaignSnapshot(dir, out.meta, out.checkpoint, error))
        return false;

    const CampaignDirPaths paths = campaignDirPaths(dir);
    std::ifstream corpus_in(paths.corpus,
                            std::ios::in | std::ios::binary);
    if (!corpus_in)
        return fail("cannot open " + paths.corpus);
    std::string sub_error;
    if (!SharedCorpus::loadFrom(corpus_in, out.corpus, &sub_error))
        return fail(paths.corpus + ": " + sub_error);
    return true;
}

bool
saveCampaignDir(const std::string &dir,
                const CampaignOrchestrator &orchestrator,
                const CampaignOptions &options, std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return fail("cannot create campaign directory " + dir +
                    ": " + ec.message());
    const CampaignDirPaths paths = campaignDirPaths(dir);

    // Crash-safe sequencing: every artifact is written to a .tmp
    // sibling first, the meta.json completion marker is removed
    // before any artifact is replaced, and a fresh meta.json is
    // written last. A crash at any point leaves either the previous
    // complete directory (tmp writes unfinished) or a marker-less
    // one the next run treats as fresh — never a directory whose
    // meta.json vouches for truncated artifacts.
    const std::string log_tmp = paths.log + ".tmp";
    const std::string corpus_tmp = paths.corpus + ".tmp";
    const std::string snapshot_tmp = paths.snapshot + ".tmp";
    {
        std::ofstream log(log_tmp, std::ios::out | std::ios::trunc);
        if (!log)
            return fail("cannot open " + log_tmp + " for writing");
        orchestrator.writeJsonlWithHeartbeats(log);
        log.flush();
        if (!log)
            return fail("write to " + log_tmp + " failed");
    }
    {
        std::ofstream corpus(corpus_tmp,
                             std::ios::out | std::ios::trunc |
                                 std::ios::binary);
        if (!corpus || !orchestrator.corpus().saveTo(
                           corpus, options.master_seed)) {
            return fail("write to " + corpus_tmp + " failed");
        }
    }
    {
        std::ofstream snap(snapshot_tmp,
                           std::ios::out | std::ios::trunc |
                               std::ios::binary);
        if (!snap ||
            !saveCheckpoint(snap, orchestrator.makeCheckpoint())) {
            return fail("write to " + snapshot_tmp + " failed");
        }
    }

    fs::remove(paths.meta, ec); // invalidate before replacing
    const std::pair<const std::string *, const std::string *>
        renames[] = {{&log_tmp, &paths.log},
                     {&corpus_tmp, &paths.corpus},
                     {&snapshot_tmp, &paths.snapshot}};
    for (const auto &[from, to] : renames) {
        fs::rename(*from, *to, ec);
        if (ec)
            return fail("cannot move " + *from + " into place: " +
                        ec.message());
    }
    {
        // meta.json last — its presence marks the directory
        // complete — and via tmp + rename, so a crash mid-write
        // cannot leave a truncated marker that blocks every later
        // resume attempt.
        const std::string meta_tmp = paths.meta + ".tmp";
        std::ofstream meta(meta_tmp,
                           std::ios::out | std::ios::trunc);
        if (!meta)
            return fail("cannot open " + meta_tmp + " for writing");
        writeMeta(meta, metaFromOptions(options));
        meta.flush();
        if (!meta)
            return fail("write to " + meta_tmp + " failed");
        meta.close();
        fs::rename(meta_tmp, paths.meta, ec);
        if (ec)
            return fail("cannot move " + meta_tmp + " into place: " +
                        ec.message());
    }
    return true;
}

} // namespace dejavuzz::campaign
