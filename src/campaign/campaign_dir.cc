#include "campaign/campaign_dir.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "campaign/io_util.hh"
#include "campaign/orchestrator.hh"
#include "campaign/quarantine.hh"
#include "campaign/stats.hh"
#include "obs/telemetry.hh"
#include "report/json.hh"

namespace dejavuzz::campaign {

namespace {

namespace fs = std::filesystem;

/** Strict non-negative integer extraction from a parsed meta line.
 *  Mirrors report::Fields::u64 (src/report/campaign_log.cc) — the
 *  two must stay behaviorally in sync so meta.json and the JSONL
 *  log reject the same malformed values. */
bool
metaU64(const report::JsonObject &obj, const char *key,
        uint64_t &out, std::string &error)
{
    if (!error.empty())
        return false;
    auto it = obj.find(key);
    if (it == obj.end()) {
        error = std::string("meta.json: missing field \"") + key +
                "\"";
        return false;
    }
    const report::JsonValue &value = it->second;
    bool integral = value.isNumber() && !value.raw.empty();
    for (char c : value.raw) {
        if (c < '0' || c > '9')
            integral = false;
    }
    if (!integral) {
        error = std::string("meta.json: field \"") + key +
                "\" must be a non-negative integer";
        return false;
    }
    errno = 0;
    out = std::strtoull(value.raw.c_str(), nullptr, 10);
    if (errno == ERANGE) {
        error = std::string("meta.json: field \"") + key +
                "\" exceeds the 64-bit range";
        return false;
    }
    return true;
}

bool
metaStr(const report::JsonObject &obj, const char *key,
        std::string &out, std::string &error)
{
    if (!error.empty())
        return false;
    auto it = obj.find(key);
    if (it == obj.end() || !it->second.isString()) {
        error = std::string("meta.json: missing string field \"") +
                key + "\"";
        return false;
    }
    out = it->second.text;
    return true;
}

bool
metaBool(const report::JsonObject &obj, const char *key, bool &out,
         std::string &error)
{
    if (!error.empty())
        return false;
    auto it = obj.find(key);
    if (it == obj.end() ||
        it->second.kind != report::JsonValue::Kind::Bool) {
        error = std::string("meta.json: missing boolean field \"") +
                key + "\"";
        return false;
    }
    out = it->second.boolean;
    return true;
}

void
mismatch(std::vector<std::string> &out, const char *field,
         const std::string &saved, const std::string &current)
{
    if (saved != current) {
        out.push_back(std::string(field) + ": saved " + saved +
                      ", current " + current);
    }
}

void
mismatchU64(std::vector<std::string> &out, const char *field,
            uint64_t saved, uint64_t current)
{
    mismatch(out, field, std::to_string(saved),
             std::to_string(current));
}

} // namespace

CampaignDirPaths
campaignDirPaths(const std::string &dir)
{
    CampaignDirPaths paths;
    paths.meta = (fs::path(dir) / "meta.json").string();
    paths.log = (fs::path(dir) / "campaign.jsonl").string();
    paths.corpus = (fs::path(dir) / "corpus.bin").string();
    paths.snapshot = (fs::path(dir) / "campaign.snap").string();
    paths.quarantine = (fs::path(dir) / "quarantine.jsonl").string();
    return paths;
}

std::string
prevPath(const std::string &path)
{
    return path + ".prev";
}

size_t
sweepCampaignDir(const std::string &dir)
{
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return 0;
    size_t removed = 0;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        const std::string name = entry.path().filename().string();
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".tmp") == 0) {
            if (fs::remove(entry.path(), ec))
                ++removed;
        }
    }
    return removed;
}

CampaignMeta
metaFromOptions(const CampaignOptions &options)
{
    CampaignMeta meta;
    meta.meta_version = kMetaFormatVersion;
    meta.corpus_version = SharedCorpus::kFormatVersion;
    meta.snapshot_version = kSnapshotFormatVersion;
    meta.master_seed = options.master_seed;
    meta.workers = options.workers;
    meta.policy = shardPolicyName(options.policy);
    meta.core = options.base_config.name;
    meta.epoch_iterations = options.epoch_iterations;
    meta.batch_iterations = options.batch_iterations;
    meta.steal_batches = options.steal_batches;
    meta.steals_per_epoch = options.steals_per_epoch;
    uint32_t mask = options.fuzzer.model_mask & core::kAllModelMask;
    meta.model_mask = mask ? mask : core::kLegacyModelMask;
    meta.corpus_shards = options.corpus_shards;
    meta.corpus_shard_cap = options.corpus_shard_cap;
    return meta;
}

void
writeMeta(std::ostream &os, const CampaignMeta &meta)
{
    os << "{\"meta_version\":" << meta.meta_version
       << ",\"corpus_version\":" << meta.corpus_version
       << ",\"snapshot_version\":" << meta.snapshot_version
       << ",\"master_seed\":" << meta.master_seed
       << ",\"workers\":" << meta.workers
       << ",\"policy\":\"" << jsonEscape(meta.policy)
       << "\",\"core\":\"" << jsonEscape(meta.core)
       << "\",\"epoch\":" << meta.epoch_iterations
       << ",\"batch\":" << meta.batch_iterations
       << ",\"steal\":" << (meta.steal_batches ? "true" : "false")
       << ",\"steals\":" << meta.steals_per_epoch
       << ",\"templates\":" << meta.model_mask
       << ",\"corpus_shards\":" << meta.corpus_shards
       << ",\"corpus_cap\":" << meta.corpus_shard_cap
       << ",\"generation\":" << meta.generation << "}\n";
}

bool
readMeta(std::istream &is, CampaignMeta &out, std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };

    std::string line, extra;
    // The object is one line; tolerate trailing blank lines only.
    while (std::getline(is, line) && line.empty()) {
    }
    if (line.empty())
        return fail("meta.json is empty");
    while (std::getline(is, extra)) {
        if (!extra.empty())
            return fail("meta.json: trailing content after the "
                        "meta object");
    }

    report::JsonObject obj;
    std::string json_error;
    if (!report::parseFlatJsonObject(line, obj, &json_error))
        return fail("meta.json: " + json_error);

    std::string field_error;
    uint64_t meta_version = 0, corpus_version = 0,
             snapshot_version = 0;
    metaU64(obj, "meta_version", meta_version, field_error);
    metaU64(obj, "corpus_version", corpus_version, field_error);
    metaU64(obj, "snapshot_version", snapshot_version, field_error);
    metaU64(obj, "master_seed", out.master_seed, field_error);
    metaU64(obj, "workers", out.workers, field_error);
    metaStr(obj, "policy", out.policy, field_error);
    metaStr(obj, "core", out.core, field_error);
    metaU64(obj, "epoch", out.epoch_iterations, field_error);
    metaU64(obj, "batch", out.batch_iterations, field_error);
    metaBool(obj, "steal", out.steal_batches, field_error);
    metaU64(obj, "steals", out.steals_per_epoch, field_error);
    // Optional: meta.json files written before the attack-model
    // layer carry no template mask and imply the legacy model.
    if (obj.count("templates"))
        metaU64(obj, "templates", out.model_mask, field_error);
    else
        out.model_mask = core::kLegacyModelMask;
    metaU64(obj, "corpus_shards", out.corpus_shards, field_error);
    metaU64(obj, "corpus_cap", out.corpus_shard_cap, field_error);
    // Optional: pre-robustness meta.json files carry no save
    // generation and vouch for raw (trailer-less) artifacts.
    if (obj.count("generation"))
        metaU64(obj, "generation", out.generation, field_error);
    else
        out.generation = 0;
    if (!field_error.empty())
        return fail(field_error);

    out.meta_version = static_cast<uint32_t>(meta_version);
    out.corpus_version = static_cast<uint32_t>(corpus_version);
    out.snapshot_version = static_cast<uint32_t>(snapshot_version);
    return true;
}

std::vector<std::string>
metaMismatches(const CampaignMeta &saved, const CampaignMeta &current)
{
    std::vector<std::string> out;
    mismatchU64(out, "meta_version", saved.meta_version,
                current.meta_version);
    // Older corpus/snapshot formats stay resumable as long as the
    // current loaders read them (they accept every version up to
    // their own); re-saving upgrades the directory to the current
    // format. Only a *newer* saved format is a real mismatch.
    if (saved.corpus_version < 1 ||
        saved.corpus_version > current.corpus_version) {
        mismatchU64(out, "corpus_version", saved.corpus_version,
                    current.corpus_version);
    }
    if (saved.snapshot_version < 1 ||
        saved.snapshot_version > current.snapshot_version) {
        mismatchU64(out, "snapshot_version", saved.snapshot_version,
                    current.snapshot_version);
    }
    mismatchU64(out, "master_seed", saved.master_seed,
                current.master_seed);
    mismatchU64(out, "workers", saved.workers, current.workers);
    mismatch(out, "policy", saved.policy, current.policy);
    mismatch(out, "core", saved.core, current.core);
    mismatchU64(out, "epoch", saved.epoch_iterations,
                current.epoch_iterations);
    mismatchU64(out, "batch", saved.batch_iterations,
                current.batch_iterations);
    mismatch(out, "steal", saved.steal_batches ? "true" : "false",
             current.steal_batches ? "true" : "false");
    mismatchU64(out, "steals", saved.steals_per_epoch,
                current.steals_per_epoch);
    // Compare as names: "templates: saved same-domain, current
    // same-domain,priv-transition" beats raw mask integers.
    mismatch(out, "templates",
             core::modelMaskNames(
                 static_cast<uint32_t>(saved.model_mask)),
             core::modelMaskNames(
                 static_cast<uint32_t>(current.model_mask)));
    mismatchU64(out, "corpus_shards", saved.corpus_shards,
                current.corpus_shards);
    mismatchU64(out, "corpus_cap", saved.corpus_shard_cap,
                current.corpus_shard_cap);
    return out;
}

bool
campaignDirExists(const std::string &dir)
{
    std::error_code ec;
    const CampaignDirPaths paths = campaignDirPaths(dir);
    return fs::is_regular_file(paths.meta, ec) ||
           fs::is_regular_file(prevPath(paths.meta), ec);
}

namespace {

bool
readMetaFile(const std::string &path, CampaignMeta &out,
             std::string *error)
{
    std::ifstream is(path);
    if (!is) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    return readMeta(is, out, error);
}

/**
 * Locate + validate one binary artifact of generation @p gen: the
 * payload is accepted from @p path or @p path.prev — whichever
 * carries a valid integrity trailer with a matching generation.
 * (During a save, every artifact of the newest complete generation
 * is at exactly one of the two names; renames are atomic.)
 */
bool
readGenArtifact(const std::string &path, uint64_t gen,
                std::string &payload, bool &from_prev,
                std::string *why)
{
    std::string primary_why;
    for (int attempt = 0; attempt < 2; ++attempt) {
        const std::string candidate =
            attempt == 0 ? path : prevPath(path);
        std::string file, err;
        if (readWholeFile(candidate, file, &err)) {
            uint64_t got = 0;
            std::string body;
            if (splitTrailer(file, body, got, &err)) {
                if (got == gen) {
                    payload = std::move(body);
                    from_prev = attempt == 1;
                    return true;
                }
                err = "trailer generation " + std::to_string(got) +
                      ", wanted " + std::to_string(gen);
            }
        }
        if (attempt == 0)
            primary_why = path + ": " + err;
    }
    if (why)
        *why = primary_why;
    return false;
}

/** Legacy generation-0 artifact: raw bytes, no trailer. Tried at
 *  @p path, then @p path.prev (where a later interrupted save may
 *  have rotated it). */
bool
readRawArtifact(const std::string &path, std::string &payload,
                bool &from_prev, std::string *why)
{
    std::string err;
    if (readWholeFile(path, payload, &err)) {
        from_prev = false;
        return true;
    }
    if (readWholeFile(prevPath(path), payload, nullptr)) {
        from_prev = true;
        return true;
    }
    if (why)
        *why = path + ": " + err;
    return false;
}

struct MetaCandidate
{
    CampaignMeta meta;
    bool from_prev = false;
};

/** Parseable meta records, newest generation first: meta.json (the
 *  newer generation whenever both exist), then meta.json.prev. */
std::vector<MetaCandidate>
metaCandidates(const CampaignDirPaths &paths, std::string &why)
{
    std::vector<MetaCandidate> out;
    std::string err;
    MetaCandidate cand;
    if (readMetaFile(paths.meta, cand.meta, &err)) {
        out.push_back(cand);
    } else {
        why = err;
    }
    MetaCandidate prev;
    prev.from_prev = true;
    if (readMetaFile(prevPath(paths.meta), prev.meta, &err)) {
        out.push_back(prev);
    } else if (out.empty()) {
        why += why.empty() ? err : ("; " + err);
    }
    return out;
}

/**
 * Try to materialize one complete generation: the candidate meta's
 * snapshot (and corpus, when @p corpus is non-null) with validating
 * trailers. A *torn* artifact fails the candidate (the caller falls
 * back to the next one); an artifact whose CRC validates but whose
 * payload does not parse is corruption beyond the tearing model and
 * fails hard via @p hard_error.
 */
bool
loadGeneration(const CampaignDirPaths &paths,
               const MetaCandidate &cand, CorpusFile *corpus,
               CampaignCheckpoint &checkpoint, bool &used_prev,
               std::string *why, std::string *hard_error)
{
    const uint64_t gen = cand.meta.generation;
    used_prev = cand.from_prev;

    bool prev = false;
    std::string snap_payload;
    const bool snap_ok =
        gen == 0 ? readRawArtifact(paths.snapshot, snap_payload,
                                   prev, why)
                 : readGenArtifact(paths.snapshot, gen, snap_payload,
                                   prev, why);
    if (!snap_ok)
        return false;
    used_prev |= prev;
    std::istringstream snap_in(snap_payload);
    std::string sub;
    if (!loadCheckpoint(snap_in, checkpoint, &sub)) {
        if (gen != 0) {
            // CRC-valid but unparseable: real corruption, not a torn
            // save — do not mask it behind a stale fallback.
            if (hard_error)
                *hard_error = paths.snapshot + ": " + sub;
        } else if (why) {
            *why = paths.snapshot + ": " + sub;
        }
        return false;
    }

    if (corpus != nullptr) {
        std::string corpus_payload;
        const bool corpus_ok =
            gen == 0 ? readRawArtifact(paths.corpus, corpus_payload,
                                       prev, why)
                     : readGenArtifact(paths.corpus, gen,
                                       corpus_payload, prev, why);
        if (!corpus_ok)
            return false;
        used_prev |= prev;
        std::istringstream corpus_in(corpus_payload);
        if (!SharedCorpus::loadFrom(corpus_in, *corpus, &sub)) {
            if (gen != 0) {
                if (hard_error)
                    *hard_error = paths.corpus + ": " + sub;
            } else if (why) {
                *why = paths.corpus + ": " + sub;
            }
            return false;
        }
    }
    return true;
}

bool
loadDirImpl(const std::string &dir, CampaignMeta &meta,
            CorpusFile *corpus, CampaignCheckpoint &checkpoint,
            std::string *error, std::string *note)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };
    const CampaignDirPaths paths = campaignDirPaths(dir);

    std::string meta_why;
    const std::vector<MetaCandidate> candidates =
        metaCandidates(paths, meta_why);
    if (candidates.empty())
        return fail("no loadable campaign meta in " + dir + " (" +
                    meta_why + ")");

    std::string whys;
    for (const MetaCandidate &cand : candidates) {
        bool used_prev = false;
        std::string why, hard_error;
        CampaignCheckpoint cp;
        CorpusFile cf;
        if (loadGeneration(paths, cand, corpus ? &cf : nullptr, cp,
                           used_prev, &why, &hard_error)) {
            meta = cand.meta;
            checkpoint = std::move(cp);
            if (corpus)
                *corpus = std::move(cf);
            if (note && used_prev) {
                *note = "recovered save generation " +
                        std::to_string(cand.meta.generation) +
                        " from retained .prev artifacts (the latest "
                        "save was torn or interrupted)";
            }
            return true;
        }
        if (!hard_error.empty())
            return fail(hard_error);
        if (!why.empty()) {
            whys += whys.empty() ? "" : "; ";
            whys += "generation " +
                    std::to_string(cand.meta.generation) + ": " +
                    why;
        }
    }
    return fail("no complete save generation in " + dir + " (" +
                whys + ")");
}

/** Generation recorded by a binary artifact's trailer. */
bool
binaryArtifactGeneration(const std::string &path, uint64_t &gen)
{
    std::string file, payload;
    if (!readWholeFile(path, file, nullptr))
        return false;
    return splitTrailer(file, payload, gen, nullptr);
}

/** Generation recorded by a JSONL log's final trailer record. */
bool
logTrailerGeneration(const std::string &path, uint64_t &gen)
{
    std::string file;
    if (!readWholeFile(path, file, nullptr))
        return false;
    const size_t end = file.find_last_not_of('\n');
    if (end == std::string::npos)
        return false;
    size_t start = file.rfind('\n', end);
    start = start == std::string::npos ? 0 : start + 1;
    report::JsonObject obj;
    if (!report::parseFlatJsonObject(
            file.substr(start, end - start + 1), obj, nullptr)) {
        return false;
    }
    auto it = obj.find("type");
    if (it == obj.end() || !it->second.isString() ||
        it->second.text != "trailer") {
        return false;
    }
    std::string field_error;
    return metaU64(obj, "generation", gen, field_error);
}

} // namespace

bool
loadCampaignSnapshot(const std::string &dir, CampaignMeta &meta,
                     CampaignCheckpoint &checkpoint,
                     std::string *error, std::string *note)
{
    return loadDirImpl(dir, meta, nullptr, checkpoint, error, note);
}

bool
loadCampaignDir(const std::string &dir, LoadedCampaignDir &out,
                std::string *error, std::string *note)
{
    return loadDirImpl(dir, out.meta, &out.corpus, out.checkpoint,
                       error, note);
}

bool
saveCampaignDir(const std::string &dir,
                CampaignOrchestrator &orchestrator,
                const CampaignOptions &options, std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return fail("cannot create campaign directory " + dir +
                    ": " + ec.message());
    sweepCampaignDir(dir);
    const CampaignDirPaths paths = campaignDirPaths(dir);

    // Establish the previous complete generation and rotate it to
    // .prev. Only a generation vouched for by a parseable meta is
    // rotated: debris of a failed save must never clobber the
    // retained good generation.
    uint64_t old_gen = 0;
    CampaignMeta saved_meta;
    const std::string artifacts[] = {paths.log, paths.corpus,
                                     paths.snapshot};
    if (readMetaFile(paths.meta, saved_meta, nullptr)) {
        old_gen = saved_meta.generation;
        // meta.json present and valid: the primary set is complete.
        // Artifacts first, meta last, so a crash mid-rotation still
        // leaves meta.json vouching for a set the loader finds at
        // {path | path.prev}.
        for (const std::string &path : artifacts) {
            if (!fs::exists(path, ec))
                continue;
            fs::rename(path, prevPath(path), ec);
            if (ec)
                return fail("cannot rotate " + path + ": " +
                            ec.message());
        }
        fs::rename(paths.meta, prevPath(paths.meta), ec);
        if (ec)
            return fail("cannot rotate " + paths.meta + ": " +
                        ec.message());
    } else if (CampaignMeta prev_meta; readMetaFile(
                   prevPath(paths.meta), prev_meta, nullptr)) {
        // A prior save died mid-flight: meta.json is gone or torn
        // but .prev still vouches for old_gen. Finish any
        // interrupted rotation — artifacts of that generation still
        // at the primary name move aside; newer-generation debris is
        // left to be overwritten.
        old_gen = prev_meta.generation;
        fs::remove(paths.meta, ec); // torn marker, if any
        for (const std::string &path : artifacts) {
            if (!fs::exists(path, ec))
                continue;
            uint64_t gen = 0;
            const bool tagged =
                path == paths.log ? logTrailerGeneration(path, gen)
                                  : binaryArtifactGeneration(path,
                                                             gen);
            // Legacy generation-0 artifacts carry no trailer; a
            // tagged artifact belongs to old_gen only when the
            // generations match.
            const bool belongs =
                old_gen == 0 ? !tagged : (tagged && gen == old_gen);
            if (!belongs)
                continue;
            fs::rename(path, prevPath(path), ec);
            if (ec)
                return fail("cannot rotate " + path + ": " +
                            ec.message());
        }
    }
    const uint64_t new_gen = old_gen + 1;

    // Serialize everything to memory first, so a failure here leaves
    // the directory no worse than the rotation did — .prev still
    // holds the last complete generation.
    std::ostringstream corpus_os;
    if (!orchestrator.corpus().saveTo(corpus_os,
                                      options.master_seed))
        return fail("corpus serialization failed");
    std::ostringstream snap_os;
    if (!saveCheckpoint(snap_os, orchestrator.makeCheckpoint()))
        return fail("checkpoint serialization failed");
    std::ostringstream log_os;
    orchestrator.writeJsonlWithHeartbeats(log_os);
    std::string log_payload = log_os.str();
    {
        // The log stays line-oriented text; its integrity trailer is
        // a final JSONL record whose CRC covers every preceding byte.
        const size_t bytes = log_payload.size();
        const uint32_t crc = crc32(log_payload.data(), bytes);
        log_payload += "{\"type\":\"trailer\",\"generation\":" +
                       std::to_string(new_gen) + ",\"bytes\":" +
                       std::to_string(bytes) + ",\"crc32\":" +
                       std::to_string(crc) + "}\n";
    }

    std::string sub;
    if (!atomicWriteFile(paths.corpus,
                         withTrailer(corpus_os.str(), new_gen),
                         &sub))
        return fail(sub);
    if (!atomicWriteFile(paths.snapshot,
                         withTrailer(snap_os.str(), new_gen), &sub))
        return fail(sub);
    if (!atomicWriteFile(paths.log, log_payload, &sub))
        return fail(sub);

    // The quarantine ledger is append-only and spans generations;
    // only records not yet persisted are appended (a failed append
    // may be retried by the next save — the ledger tolerates the
    // resulting duplicates, never missing records).
    const std::vector<QuarantineRecord> &qrecords =
        orchestrator.quarantineRecords();
    const size_t qdone = orchestrator.quarantinePersisted();
    if (qdone < qrecords.size()) {
        const std::vector<QuarantineRecord> fresh(
            qrecords.begin() + static_cast<ptrdiff_t>(qdone),
            qrecords.end());
        if (!appendQuarantine(paths.quarantine, fresh, &sub))
            return fail(sub);
        orchestrator.noteQuarantinePersisted(qrecords.size());
    }

    // meta.json last: its generation field is the completion marker
    // that vouches for the whole set just written.
    CampaignMeta meta = metaFromOptions(options);
    meta.generation = new_gen;
    std::ostringstream meta_os;
    writeMeta(meta_os, meta);
    if (!atomicWriteFile(paths.meta, meta_os.str(), &sub))
        return fail(sub);
    obs::counterAdd(obs::Ctr::CheckpointGenerations);
    return true;
}

} // namespace dejavuzz::campaign
