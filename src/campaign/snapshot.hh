/**
 * @file
 * Campaign checkpoints: everything a campaign directory persists so
 * a resumed campaign continues exactly where the saved one stopped.
 *
 * A checkpoint captures the fleet state that lives at epoch barriers:
 * the per-config-group global coverage bitmaps (so novelty gates stay
 * monotone across resume), each shard's batch counter / stolen-seed
 * set / pending injections (so the resumed epoch plan re-issues no
 * identity and drops no queued seed), the steal Rng state, the
 * iteration/epoch cursors, and the deduplicated bug ledger with each
 * bug's exact reproducer test case (what dejavuzz-replay re-executes).
 * Together with the corpus file, restoring a checkpoint makes a
 * resumed iteration-budgeted campaign bit-identical to an
 * uninterrupted run with the same master seed — asserted in
 * tests/test_campaign.cc.
 *
 * The binary format (magic "DVZSNAPS", version
 * kSnapshotFormatVersion) is specified in docs/campaign-format.md
 * and read/written by snapshot_io.cc on the strict io_util.hh layer:
 * corrupt or truncated snapshots fail the load cleanly.
 */

#ifndef DEJAVUZZ_CAMPAIGN_SNAPSHOT_HH
#define DEJAVUZZ_CAMPAIGN_SNAPSHOT_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "campaign/ledger.hh"
#include "core/seed.hh"

namespace dejavuzz::campaign {

/** Snapshot format version written by saveCheckpoint(). v2 appended
 *  the attack-model fields to every embedded test case and widened
 *  the bug-record attack/window enum bounds; loadCheckpoint() still
 *  reads v1 snapshots (their cases get the implicit same-domain
 *  model). */
constexpr uint32_t kSnapshotFormatVersion = 2;

/** One config group's global coverage bitmaps. */
struct CoverageGroupSnap
{
    std::string config; ///< group key (config name, or config+head)

    struct Module
    {
        std::string name;  ///< registered module name (shape check)
        uint32_t slots = 0;
        std::vector<uint64_t> words; ///< ceil(slots / 64) bitmap words
    };
    std::vector<Module> modules;
};

/** One shard's barrier-time continuation state. */
struct ShardSnap
{
    uint64_t next_batch = 0; ///< shard-global batch counter
    /** (author, seq) corpus identities already injected here. */
    std::vector<std::pair<uint32_t, uint64_t>> stolen;
    /** Corpus seeds stolen at the final barrier, not yet executed. */
    std::vector<core::TestCase> pending_inject;
};

/** Complete persistable campaign state (minus the corpus file). */
struct CampaignCheckpoint
{
    uint32_t version = kSnapshotFormatVersion;
    uint64_t master_seed = 0;
    uint64_t iterations_done = 0; ///< fleet iterations executed
    uint64_t epochs_done = 0;     ///< epochs completed
    uint64_t steals = 0;          ///< cumulative cross-shard steals
    uint64_t preloaded = 0;       ///< cumulative preloaded entries
    std::array<uint64_t, 4> steal_rng{}; ///< steal Rng engine state
    /** (author, seq) identities admitted via preloadCorpus() — they
     *  carry different steal-eligibility rules than shard-authored
     *  entries, so a resume must reinstate the set, not just the
     *  count. */
    std::vector<std::pair<uint32_t, uint64_t>> preloaded_ids;
    std::vector<CoverageGroupSnap> groups;
    std::vector<ShardSnap> shards;
    /** Deduplicated findings, in signature order, each with its
     *  reproducer test case. */
    std::vector<BugRecord> ledger;
};

/**
 * Serialize @p cp in the versioned binary snapshot format. Returns
 * false when the stream fails.
 */
bool saveCheckpoint(std::ostream &os, const CampaignCheckpoint &cp);

/**
 * Strictly parse a snapshot written by saveCheckpoint(). Bad magic,
 * an unknown version, truncation, out-of-range enums/counts, a
 * degenerate Rng state, or trailing bytes all fail the load with a
 * diagnostic in @p error (when non-null); @p out is then unusable.
 */
bool loadCheckpoint(std::istream &is, CampaignCheckpoint &out,
                    std::string *error = nullptr);

} // namespace dejavuzz::campaign

#endif // DEJAVUZZ_CAMPAIGN_SNAPSHOT_HH
