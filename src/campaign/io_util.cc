/**
 * @file
 * Crash-safe whole-file IO for campaign directories: CRC-32, the
 * artifact integrity trailer, and write-to-temp + fsync +
 * atomic-rename. The byte-level primitives (bio::putU64 / Reader)
 * live in corpus_io.cc with the formats that use them.
 */

#include "campaign/io_util.hh"

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "campaign/faults.hh"

namespace dejavuzz::campaign {

namespace fs = std::filesystem;

uint32_t
crc32(const void *data, size_t size, uint32_t seed)
{
    // CRC-32/ISO-HDLC (the zlib polynomial), reflected, table-driven.
    static const auto table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c >> 1) ^ ((c & 1) ? 0xedb88320u : 0);
            t[i] = c;
        }
        return t;
    }();
    uint32_t crc = ~seed;
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < size; ++i)
        crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return ~crc;
}

namespace {

void
putLe64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putLe32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint64_t
getLe64(const char *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t{static_cast<unsigned char>(p[i])} << (8 * i);
    return v;
}

uint32_t
getLe32(const char *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t{static_cast<unsigned char>(p[i])} << (8 * i);
    return v;
}

bool
setError(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return false;
}

} // namespace

std::string
withTrailer(const std::string &payload, uint64_t generation)
{
    std::string out = payload;
    out.reserve(payload.size() + kTrailerBytes);
    out.append(kTrailerMagic, 8);
    putLe64(out, generation);
    putLe64(out, payload.size());
    putLe32(out, crc32(payload.data(), payload.size()));
    putLe32(out, 0); // pad to 32 bytes
    return out;
}

bool
splitTrailer(const std::string &file, std::string &payload,
             uint64_t &generation, std::string *error)
{
    if (file.size() < kTrailerBytes)
        return setError(error, "file shorter than integrity trailer");
    const char *t = file.data() + file.size() - kTrailerBytes;
    if (std::memcmp(t, kTrailerMagic, 8) != 0)
        return setError(error, "bad integrity-trailer magic");
    const uint64_t gen = getLe64(t + 8);
    const uint64_t len = getLe64(t + 16);
    const uint32_t crc = getLe32(t + 24);
    if (len != file.size() - kTrailerBytes)
        return setError(error,
                        "trailer payload length does not match file");
    if (crc32(file.data(), len) != crc)
        return setError(error, "payload CRC mismatch (torn file)");
    payload.assign(file.data(), len);
    generation = gen;
    return true;
}

bool
atomicWriteFile(const std::string &path, const std::string &data,
                std::string *error)
{
    const std::string tmp = path + ".tmp";

    if (shouldFail(Fault::Enospc)) {
        std::error_code ec;
        fs::remove(tmp, ec);
        return setError(error, "cannot write " + tmp +
                                   ": No space left on device "
                                   "(injected)");
    }

    // An injected short write or torn rename simulates a crash mid
    // persistence: the file ends up truncated and the function
    // *reports success*, exactly as a power cut after a buffered
    // write would look. Recovery must catch it via the CRC trailer.
    const bool short_write = shouldFail(Fault::ShortWrite);
    const bool torn_rename = shouldFail(Fault::TornRename);
    const size_t write_bytes =
        short_write ? data.size() / 2 : data.size();

    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return setError(error, "cannot create " + tmp + ": " +
                                   std::strerror(errno));
    size_t off = 0;
    while (off < write_bytes) {
        ssize_t n =
            ::write(fd, data.data() + off, write_bytes - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int saved = errno;
            ::close(fd);
            std::error_code ec;
            fs::remove(tmp, ec);
            return setError(error, "cannot write " + tmp + ": " +
                                       std::strerror(saved));
        }
        off += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
        const int saved = errno;
        ::close(fd);
        std::error_code ec;
        fs::remove(tmp, ec);
        return setError(error, "cannot fsync " + tmp + ": " +
                                   std::strerror(saved));
    }
    ::close(fd);

    if (torn_rename) {
        // The rename "happened" but the target is truncated — the
        // torn state a non-atomic filesystem could leave behind.
        std::ofstream torn(path,
                           std::ios::binary | std::ios::trunc);
        torn.write(data.data(),
                   static_cast<std::streamsize>(data.size() / 2));
        torn.close();
        std::error_code ec;
        fs::remove(tmp, ec);
        return true;
    }

    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const int saved = errno;
        std::error_code ec;
        fs::remove(tmp, ec);
        return setError(error, "cannot rename " + tmp + " -> " +
                                   path + ": " +
                                   std::strerror(saved));
    }

    // Durable only once the directory entry itself is on disk.
    const std::string parent = fs::path(path).parent_path().string();
    int dfd = ::open(parent.empty() ? "." : parent.c_str(),
                     O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    return true;
}

bool
readWholeFile(const std::string &path, std::string &out,
              std::string *error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return setError(error, "cannot open " + path);
    std::ostringstream buf;
    buf << is.rdbuf();
    if (is.bad())
        return setError(error, "cannot read " + path);
    out = buf.str();
    return true;
}

} // namespace dejavuzz::campaign
