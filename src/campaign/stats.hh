/**
 * @file
 * Campaign-level statistics: per-worker FuzzerStats rollups
 * (Table-2-style totals per worker/config, Table-3-style per-trigger
 * training-overhead aggregates) and the JSONL campaign log.
 *
 * JSONL schema (one JSON object per line, `type` discriminates):
 *   {"type":"worker", "worker":0, "config":"small-boom",
 *    "variant":"full", "iterations":..., "simulations":...,
 *    "windows":..., "coverage_points":..., "seeds_imported":...,
 *    "bugs":..., "active_seconds":...}
 *   {"type":"trigger", "kind":"branch-mispred", "windows":...,
 *    "training_overhead":..., "effective_overhead":...}
 *   {"type":"bug", "key":"...", "description":"...", "worker":...,
 *    "epoch":..., "iteration":..., "hits":...}
 *   {"type":"summary", "workers":..., "policy":"replicas",
 *    "master_seed":..., "iterations":..., "simulations":...,
 *    "coverage_points":..., "distinct_bugs":..., "total_reports":...,
 *    "epochs":..., "corpus_size":..., "steals":...,
 *    "wall_seconds":..., "iters_per_sec":...}
 */

#ifndef DEJAVUZZ_CAMPAIGN_STATS_HH
#define DEJAVUZZ_CAMPAIGN_STATS_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "campaign/ledger.hh"
#include "core/fuzzer.hh"

namespace dejavuzz::campaign {

/** Rollup of one worker's campaign contribution. */
struct WorkerSummary
{
    unsigned worker = 0;
    std::string config;   ///< core config name
    std::string variant;  ///< ablation variant name ("full", ...)
    uint64_t iterations = 0;
    uint64_t simulations = 0;
    uint64_t windows_triggered = 0;
    uint64_t coverage_points = 0;
    uint64_t seeds_imported = 0;
    uint64_t bug_reports = 0;
    double active_seconds = 0.0;
};

/** Per-trigger-kind aggregate across all workers (Table 3 axes). */
struct TriggerSummary
{
    uint64_t windows = 0;
    uint64_t training_overhead = 0;
    uint64_t effective_overhead = 0;
};

struct CampaignStats
{
    std::vector<WorkerSummary> workers;
    std::array<TriggerSummary, core::kTriggerKinds> triggers{};

    uint64_t iterations = 0;
    uint64_t simulations = 0;
    uint64_t windows_triggered = 0;
    uint64_t coverage_points = 0; ///< summed over coverage groups
    uint64_t seeds_imported = 0;
    uint64_t epochs = 0;
    uint64_t steals = 0;          ///< cross-worker injections
    uint64_t corpus_size = 0;
    double wall_seconds = 0.0;
    double iters_per_sec = 0.0;

    /** Fold one worker's FuzzerStats + trigger stats into the rollup. */
    void addWorker(const WorkerSummary &summary,
                   const std::array<core::Fuzzer::TriggerStats,
                                    core::kTriggerKinds> &trigger_stats);
};

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string jsonEscape(const std::string &text);

/** Emit the full campaign log in the schema documented above. */
void writeCampaignJsonl(std::ostream &os, const CampaignStats &stats,
                        const BugLedger &ledger,
                        const std::string &policy_name,
                        uint64_t master_seed);

} // namespace dejavuzz::campaign

#endif // DEJAVUZZ_CAMPAIGN_STATS_HH
