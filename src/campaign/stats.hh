/**
 * @file
 * Campaign-level statistics: per-worker FuzzerStats rollups
 * (Table-2-style totals per worker/config, Table-3-style per-trigger
 * training-overhead aggregates), the per-epoch coverage-growth curve
 * (Fig-7 axes), and the JSONL campaign log.
 *
 * The JSONL schema (record types `worker`, `trigger`, `epoch`, `bug`,
 * `summary`) is specified authoritatively in docs/campaign-format.md;
 * writeCampaignJsonl() is its only producer and src/report/ its
 * reference consumer.
 */

#ifndef DEJAVUZZ_CAMPAIGN_STATS_HH
#define DEJAVUZZ_CAMPAIGN_STATS_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "campaign/ledger.hh"
#include "core/fuzzer.hh"

namespace dejavuzz::campaign {

/** Rollup of one worker's campaign contribution. */
struct WorkerSummary
{
    unsigned worker = 0;
    std::string config;   ///< core config name
    std::string variant;  ///< ablation variant name ("full", ...)
    uint64_t iterations = 0;
    uint64_t simulations = 0;
    uint64_t windows_triggered = 0;
    uint64_t coverage_points = 0;
    uint64_t seeds_imported = 0;
    uint64_t bug_reports = 0;
    double active_seconds = 0.0;
};

/** Per-trigger-kind aggregate across all workers (Table 3 axes). */
struct TriggerSummary
{
    uint64_t windows = 0;
    uint64_t training_overhead = 0;
    uint64_t effective_overhead = 0;
};

/** Fleet-global state at one epoch barrier (Fig 7 axes). */
struct EpochSample
{
    uint64_t epoch = 0;
    uint64_t iterations = 0;      ///< cumulative fleet iterations
    uint64_t coverage_points = 0; ///< fleet-global, summed over groups
    uint64_t distinct_bugs = 0;
    uint64_t corpus_size = 0;
    /** Batches executed by a non-owner thread this epoch
     *  (machine-dependent, like wall_seconds). */
    uint64_t batches_stolen = 0;
    /** Σ per-thread (epoch wall − busy) this epoch, in ns — the
     *  barrier idle the scheduler could not convert into work. */
    uint64_t steal_idle_ns = 0;
    double wall_seconds = 0.0;    ///< since campaign start
};

struct CampaignStats
{
    std::vector<WorkerSummary> workers;
    std::array<TriggerSummary, core::kTriggerKinds> triggers{};
    std::vector<EpochSample> epoch_curve;

    uint64_t iterations = 0;
    uint64_t simulations = 0;
    uint64_t windows_triggered = 0;
    uint64_t coverage_points = 0; ///< summed over coverage groups
    uint64_t seeds_imported = 0;
    uint64_t epochs = 0;
    uint64_t steals = 0;          ///< cross-worker injections
    uint64_t corpus_size = 0;
    uint64_t corpus_preloaded = 0; ///< entries admitted via preload
    uint64_t corpus_minimized = 0; ///< entries dropped by --minimize
    /** Checkpoint-resume provenance (0 on fresh campaigns). */
    uint64_t coverage_preloaded = 0; ///< points restored from snapshot
    uint64_t bugs_restored = 0;      ///< distinct ledger records restored
    uint64_t reports_restored = 0;   ///< bug hits restored with them
    uint64_t batch_iterations = 0; ///< scheduler grain (--batch)
    uint64_t batches = 0;          ///< batches planned and executed
    /** Robustness accounting (watchdogs/retries/quarantine). All of
     *  it is barrier state folded in (shard, slot) order, so the
     *  counts are deterministic whenever the fault sequence is
     *  (single-threaded fault injection, or none). */
    uint64_t batch_retries = 0;       ///< re-executions after a failure
    uint64_t batch_deadline_kills = 0;///< watchdog cut-offs (real+injected)
    uint64_t batches_failed = 0;      ///< batches that exhausted retries
    uint64_t quarantined_seeds = 0;   ///< seeds moved to quarantine.jsonl
    uint64_t kinds_disabled = 0;      ///< (config,variant) kinds disabled
    uint64_t batches_stolen = 0;   ///< executed by a non-owner thread
    uint64_t steal_idle_ns = 0;    ///< Σ per-thread barrier idle
    bool stealing = true;          ///< false under --no-steal
    double wall_seconds = 0.0;
    double iters_per_sec = 0.0;

    /** Fold one worker's FuzzerStats + trigger stats into the rollup. */
    void addWorker(const WorkerSummary &summary,
                   const std::array<core::Fuzzer::TriggerStats,
                                    core::kTriggerKinds> &trigger_stats);
};

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string jsonEscape(const std::string &text);

/** Emit the full campaign log in the schema documented above.
 *  @p templates is the summary's attack-template echo: the
 *  comma-joined template names every worker draws from, or
 *  "per-head" under the heads policy. */
void writeCampaignJsonl(std::ostream &os, const CampaignStats &stats,
                        const BugLedger &ledger,
                        const std::string &policy_name,
                        uint64_t master_seed,
                        const std::string &templates);

} // namespace dejavuzz::campaign

#endif // DEJAVUZZ_CAMPAIGN_STATS_HH
