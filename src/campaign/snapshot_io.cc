/**
 * @file
 * Checkpoint persistence: saveCheckpoint / loadCheckpoint
 * (snapshot.hh) in the "DVZSNAPS" versioned little-endian format
 * specified in docs/campaign-format.md.
 *
 * Built on the strict io_util.hh layer: every count is bounded
 * before it sizes an allocation, bitmap words are validated against
 * the declared slot counts, enum bytes are range-checked, and
 * trailing bytes fail the load — a corrupt snapshot can never half-
 * restore a campaign.
 */

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <set>

#include "campaign/io_util.hh"
#include "campaign/snapshot.hh"
#include "core/report.hh"

namespace dejavuzz::campaign {

namespace {

constexpr char kMagic[8] = {'D', 'V', 'Z', 'S', 'N', 'A', 'P', 'S'};

/** A module bitmap wider than this is not a plausible DUT shape. */
constexpr uint32_t kMaxModuleSlots = 1u << 20;

void
writeBugRecord(std::ostream &os, const BugRecord &record)
{
    const core::BugReport &report = record.report;
    bio::putU8(os, static_cast<uint8_t>(report.attack));
    bio::putU8(os, static_cast<uint8_t>(report.window));
    bio::putU8(os, static_cast<uint8_t>(report.channel));
    bio::putU8(os, report.masked_address ? 1 : 0);
    bio::putU64(os, report.seed_id);
    bio::putU64(os, report.iteration);
    bio::putU32(os, static_cast<uint32_t>(report.components.size()));
    for (const std::string &component : report.components)
        bio::putString(os, component);

    bio::putU32(os, record.worker);
    bio::putU64(os, record.epoch);
    bio::putU64(os, record.hits);
    bio::putString(os, record.config);
    bio::putString(os, record.variant);
    bio::writeTestCase(os, record.repro);
}

bool
readBugRecord(bio::Reader &in, BugRecord &record, uint32_t version)
{
    // v1 snapshots predate the priv-transition / double-fetch attack
    // classes and the two privilege trigger kinds; their enum bytes
    // are bounded at the legacy counts.
    const bool v2 = version >= bio::kTestCaseModelVersion;
    const unsigned attack_bound =
        v2 ? static_cast<unsigned>(core::AttackType::DoubleFetch) + 1
           : static_cast<unsigned>(core::AttackType::Spectre) + 1;
    const unsigned window_bound =
        v2 ? core::kTriggerKinds : core::kLegacyTriggerKinds;
    core::BugReport &report = record.report;
    if (!in.enumByte(report.attack, attack_bound, "bug.attack") ||
        !in.enumByte(report.window, window_bound, "bug.window") ||
        !in.enumByte(report.channel,
                     static_cast<unsigned>(
                         core::LeakChannel::EncodedState) +
                         1,
                     "bug.channel") ||
        !bio::readBool(in, report.masked_address,
                       "bug.masked_address") ||
        !in.u64(report.seed_id, "bug.seed_id") ||
        !in.u64(report.iteration, "bug.iteration")) {
        return false;
    }
    uint32_t component_count = 0;
    if (!in.count(component_count, bio::kMaxVectorItems,
                  "bug.components")) {
        return false;
    }
    report.components.clear();
    for (uint32_t c = 0; c < component_count; ++c) {
        std::string component;
        if (!in.str(component, "bug.component"))
            return false;
        report.components.insert(std::move(component));
    }

    uint32_t worker = 0;
    if (!in.u32(worker, "bug.worker") ||
        !in.u64(record.epoch, "bug.epoch") ||
        !in.u64(record.hits, "bug.hits") ||
        !in.str(record.config, "bug.config") ||
        !in.str(record.variant, "bug.variant") ||
        !bio::readTestCase(in, record.repro, version)) {
        return false;
    }
    record.worker = worker;
    if (record.hits == 0)
        return in.fail("zero-hit bug record");
    return true;
}

} // namespace

bool
saveCheckpoint(std::ostream &os, const CampaignCheckpoint &cp)
{
    os.write(kMagic, sizeof(kMagic));
    bio::putU32(os, kSnapshotFormatVersion);
    bio::putU64(os, cp.master_seed);
    bio::putU64(os, cp.iterations_done);
    bio::putU64(os, cp.epochs_done);
    bio::putU64(os, cp.steals);
    bio::putU64(os, cp.preloaded);
    for (uint64_t word : cp.steal_rng)
        bio::putU64(os, word);
    bio::putU32(os, static_cast<uint32_t>(cp.preloaded_ids.size()));
    for (const auto &[worker, seq] : cp.preloaded_ids) {
        bio::putU32(os, worker);
        bio::putU64(os, seq);
    }

    bio::putU32(os, static_cast<uint32_t>(cp.groups.size()));
    for (const CoverageGroupSnap &group : cp.groups) {
        bio::putString(os, group.config);
        bio::putU32(os, static_cast<uint32_t>(group.modules.size()));
        for (const CoverageGroupSnap::Module &module :
             group.modules) {
            bio::putString(os, module.name);
            bio::putU32(os, module.slots);
            for (uint64_t word : module.words)
                bio::putU64(os, word);
        }
    }

    bio::putU32(os, static_cast<uint32_t>(cp.shards.size()));
    for (const ShardSnap &shard : cp.shards) {
        bio::putU64(os, shard.next_batch);
        bio::putU32(os, static_cast<uint32_t>(shard.stolen.size()));
        for (const auto &[worker, seq] : shard.stolen) {
            bio::putU32(os, worker);
            bio::putU64(os, seq);
        }
        bio::putU32(os,
                    static_cast<uint32_t>(
                        shard.pending_inject.size()));
        for (const core::TestCase &tc : shard.pending_inject)
            bio::writeTestCase(os, tc);
    }

    bio::putU32(os, static_cast<uint32_t>(cp.ledger.size()));
    for (const BugRecord &record : cp.ledger)
        writeBugRecord(os, record);

    os.flush();
    return os.good();
}

bool
loadCheckpoint(std::istream &is, CampaignCheckpoint &out,
               std::string *error)
{
    bio::Reader in{is, {}};
    auto report = [&](bool ok) {
        if (!ok && error)
            *error = in.error.empty() ? "snapshot load failed"
                                      : in.error;
        return ok;
    };

    char magic[sizeof(kMagic)] = {};
    if (!in.bytes(magic, sizeof(magic), "magic"))
        return report(false);
    if (!std::equal(std::begin(magic), std::end(magic),
                    std::begin(kMagic))) {
        in.fail("bad snapshot magic");
        return report(false);
    }
    if (!in.u32(out.version, "version"))
        return report(false);
    if (out.version < 1 || out.version > kSnapshotFormatVersion) {
        in.fail("unsupported snapshot version " +
                std::to_string(out.version));
        return report(false);
    }
    if (!in.u64(out.master_seed, "master_seed") ||
        !in.u64(out.iterations_done, "iterations_done") ||
        !in.u64(out.epochs_done, "epochs_done") ||
        !in.u64(out.steals, "steals") ||
        !in.u64(out.preloaded, "preloaded")) {
        return report(false);
    }
    for (uint64_t &word : out.steal_rng) {
        if (!in.u64(word, "steal_rng"))
            return report(false);
    }
    if ((out.steal_rng[0] | out.steal_rng[1] | out.steal_rng[2] |
         out.steal_rng[3]) == 0) {
        in.fail("degenerate (all-zero) steal_rng state");
        return report(false);
    }
    uint32_t preloaded_count = 0;
    if (!in.count(preloaded_count, bio::kMaxVectorItems,
                  "preloaded_ids")) {
        return report(false);
    }
    out.preloaded_ids.clear();
    out.preloaded_ids.reserve(
        std::min(preloaded_count, bio::kMaxReserveItems));
    for (uint32_t i = 0; i < preloaded_count; ++i) {
        uint32_t worker = 0;
        uint64_t seq = 0;
        if (!in.u32(worker, "preloaded.worker") ||
            !in.u64(seq, "preloaded.seq")) {
            return report(false);
        }
        out.preloaded_ids.emplace_back(worker, seq);
    }

    uint32_t group_count = 0;
    if (!in.count(group_count, bio::kMaxVectorItems,
                  "coverage groups")) {
        return report(false);
    }
    out.groups.clear();
    for (uint32_t g = 0; g < group_count; ++g) {
        CoverageGroupSnap group;
        if (!in.str(group.config, "group.config"))
            return report(false);
        uint32_t module_count = 0;
        if (!in.count(module_count, bio::kMaxVectorItems,
                      "group.modules")) {
            return report(false);
        }
        for (uint32_t m = 0; m < module_count; ++m) {
            CoverageGroupSnap::Module module;
            if (!in.str(module.name, "module.name") ||
                !in.u32(module.slots, "module.slots")) {
                return report(false);
            }
            if (module.slots > kMaxModuleSlots) {
                in.fail("oversized module.slots");
                return report(false);
            }
            const size_t words =
                (static_cast<size_t>(module.slots) + 63) / 64;
            module.words.resize(words);
            for (size_t w = 0; w < words; ++w) {
                if (!in.u64(module.words[w], "module.words"))
                    return report(false);
            }
            // Bits past the slot count would corrupt a restore.
            const uint32_t tail = module.slots % 64;
            if (words > 0 && tail != 0 &&
                (module.words.back() >> tail) != 0) {
                in.fail("coverage bits past module.slots");
                return report(false);
            }
            group.modules.push_back(std::move(module));
        }
        out.groups.push_back(std::move(group));
    }

    uint32_t shard_count = 0;
    if (!in.count(shard_count, bio::kMaxVectorItems, "shards"))
        return report(false);
    out.shards.clear();
    for (uint32_t s = 0; s < shard_count; ++s) {
        ShardSnap shard;
        if (!in.u64(shard.next_batch, "shard.next_batch"))
            return report(false);
        uint32_t stolen_count = 0;
        if (!in.count(stolen_count, bio::kMaxVectorItems,
                      "shard.stolen")) {
            return report(false);
        }
        shard.stolen.reserve(
            std::min(stolen_count, bio::kMaxReserveItems));
        for (uint32_t i = 0; i < stolen_count; ++i) {
            uint32_t worker = 0;
            uint64_t seq = 0;
            if (!in.u32(worker, "stolen.worker") ||
                !in.u64(seq, "stolen.seq")) {
                return report(false);
            }
            shard.stolen.emplace_back(worker, seq);
        }
        uint32_t pending_count = 0;
        if (!in.count(pending_count, bio::kMaxVectorItems,
                      "shard.pending_inject")) {
            return report(false);
        }
        for (uint32_t i = 0; i < pending_count; ++i) {
            core::TestCase tc;
            if (!bio::readTestCase(in, tc, out.version))
                return report(false);
            shard.pending_inject.push_back(std::move(tc));
        }
        out.shards.push_back(std::move(shard));
    }

    uint32_t ledger_count = 0;
    if (!in.count(ledger_count, bio::kMaxVectorItems, "ledger"))
        return report(false);
    out.ledger.clear();
    std::set<std::string> seen_keys;
    for (uint32_t i = 0; i < ledger_count; ++i) {
        BugRecord record;
        if (!readBugRecord(in, record, out.version))
            return report(false);
        if (!seen_keys.insert(record.report.key()).second) {
            in.fail("duplicate ledger signature " +
                    record.report.key());
            return report(false);
        }
        out.ledger.push_back(std::move(record));
    }

    if (is.peek() != std::istream::traits_type::eof()) {
        in.fail("trailing bytes after checkpoint");
        return report(false);
    }
    return report(true);
}

} // namespace dejavuzz::campaign
