/**
 * @file
 * Campaign-wide bug deduplication.
 *
 * Eight workers hammering the same buggy core rediscover the same
 * Spectre variant over and over; the ledger collapses every report
 * onto its dedup signature — (attack type + masked-address flag,
 * transient window kind, sorted taint-sink/timing component set) —
 * and keeps one record per signature with discovery provenance and a
 * hit count. Entries are stored in signature order, so the ledger
 * serializes identically across runs regardless of which thread
 * reported first (the orchestrator drains worker reports at epoch
 * barriers in worker order, making provenance deterministic too).
 */

#ifndef DEJAVUZZ_CAMPAIGN_LEDGER_HH
#define DEJAVUZZ_CAMPAIGN_LEDGER_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/report.hh"

namespace dejavuzz::campaign {

/** One deduplicated finding. */
struct BugRecord
{
    core::BugReport report;   ///< first report seen for this key
    unsigned worker = 0;      ///< worker that reported it first
    uint64_t epoch = 0;       ///< epoch of the first report
    uint64_t hits = 1;        ///< total reports collapsed onto this key
    /** The first reporter's exact test case — replaying it through
     *  core::Fuzzer::replayCase re-derives the same signature
     *  (the dejavuzz-replay regression contract). */
    core::TestCase repro;
    std::string config;       ///< first reporter's core config name
    std::string variant;      ///< first reporter's ablation variant

    /** Triage annotations (filled by triage::annotateLedger after a
     *  `--triage` pass; empty on a freshly-recorded ledger). They are
     *  derived data — persisted in triage.jsonl, not in the binary
     *  snapshot, so the checkpoint format is unchanged. */
    std::string cluster;      ///< cluster id this signature belongs to
    /** Registered core configs the bug replays on (portability
     *  matrix row), in registry order. */
    std::vector<std::string> reproduces_on;
};

class BugLedger
{
  public:
    /**
     * Record @p report from @p worker during @p epoch. Thread-safe.
     * Returns true when the report's signature was new; only then
     * are @p repro / @p config / @p variant retained (first reporter
     * wins, so provenance stays deterministic).
     */
    bool record(const core::BugReport &report, unsigned worker,
                uint64_t epoch,
                const core::TestCase &repro = {},
                const std::string &config = {},
                const std::string &variant = {});

    /**
     * Reinstall previously persisted records (checkpoint resume).
     * Replaces the current contents; the total report count becomes
     * the restored hit sum, so counters continue where the saved
     * campaign stopped. Must not race record().
     */
    void restore(std::vector<BugRecord> records);

    /** Number of distinct signatures. */
    size_t distinct() const;

    /** Total reports seen, including duplicates. */
    uint64_t totalReports() const;

    /** All records in signature order. */
    std::vector<BugRecord> entries() const;

    /** The sorted signature set (for equivalence checks). */
    std::vector<std::string> keys() const;

    /**
     * Attach triage results to the record with signature @p key:
     * the cluster id it was assigned and the configs its reproducer
     * replays on. Returns false when the key is not in the ledger.
     */
    bool annotate(const std::string &key, const std::string &cluster,
                  std::vector<std::string> reproduces_on);

  private:
    mutable std::mutex mu_;
    std::map<std::string, BugRecord> records_;
    uint64_t total_ = 0;
};

} // namespace dejavuzz::campaign

#endif // DEJAVUZZ_CAMPAIGN_LEDGER_HH
