#include "campaign/ledger.hh"

namespace dejavuzz::campaign {

bool
BugLedger::record(const core::BugReport &report, unsigned worker,
                  uint64_t epoch)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++total_;
    auto [it, inserted] = records_.try_emplace(report.key());
    if (inserted) {
        it->second.report = report;
        it->second.worker = worker;
        it->second.epoch = epoch;
        it->second.hits = 1;
        return true;
    }
    ++it->second.hits;
    return false;
}

size_t
BugLedger::distinct() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
}

uint64_t
BugLedger::totalReports() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
}

std::vector<BugRecord>
BugLedger::entries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<BugRecord> out;
    out.reserve(records_.size());
    for (const auto &[key, record] : records_)
        out.push_back(record);
    return out;
}

std::vector<std::string>
BugLedger::keys() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(records_.size());
    for (const auto &[key, record] : records_)
        out.push_back(key);
    return out;
}

} // namespace dejavuzz::campaign
