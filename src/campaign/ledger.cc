#include "campaign/ledger.hh"

namespace dejavuzz::campaign {

bool
BugLedger::record(const core::BugReport &report, unsigned worker,
                  uint64_t epoch, const core::TestCase &repro,
                  const std::string &config,
                  const std::string &variant)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++total_;
    auto [it, inserted] = records_.try_emplace(report.key());
    if (inserted) {
        it->second.report = report;
        it->second.worker = worker;
        it->second.epoch = epoch;
        it->second.hits = 1;
        it->second.repro = repro;
        it->second.config = config;
        it->second.variant = variant;
        return true;
    }
    ++it->second.hits;
    return false;
}

void
BugLedger::restore(std::vector<BugRecord> records)
{
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
    total_ = 0;
    for (BugRecord &record : records) {
        const uint64_t hits = record.hits;
        std::string key = record.report.key();
        // First record wins on a duplicate signature (the snapshot
        // loader rejects duplicates; this keeps total_ equal to the
        // stored records' hit sum even for hand-built inputs).
        auto [it, inserted] =
            records_.try_emplace(std::move(key), std::move(record));
        (void)it;
        if (inserted)
            total_ += hits;
    }
}

size_t
BugLedger::distinct() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
}

uint64_t
BugLedger::totalReports() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
}

std::vector<BugRecord>
BugLedger::entries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<BugRecord> out;
    out.reserve(records_.size());
    for (const auto &[key, record] : records_)
        out.push_back(record);
    return out;
}

bool
BugLedger::annotate(const std::string &key,
                    const std::string &cluster,
                    std::vector<std::string> reproduces_on)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = records_.find(key);
    if (it == records_.end())
        return false;
    it->second.cluster = cluster;
    it->second.reproduces_on = std::move(reproduces_on);
    return true;
}

std::vector<std::string>
BugLedger::keys() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(records_.size());
    for (const auto &[key, record] : records_)
        out.push_back(key);
    return out;
}

} // namespace dejavuzz::campaign
