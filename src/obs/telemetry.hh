/**
 * @file
 * Process-wide telemetry registry: counters, gauges, log2-bucketed
 * latency histograms, and RAII scoped-span timers.
 *
 * The hot-path primitives (counterAdd, gaugeSet, histRecord,
 * ScopedSpan, SampledSpan) are single relaxed atomic operations on
 * fixed enum-indexed arrays -- no locks, no allocation, no string
 * lookup.  Building with -DDEJAVUZZ_NO_TELEMETRY compiles them out
 * entirely (inline no-ops); snapshot() and the sinks stay linkable so
 * the CLIs work unchanged and emit zero-filled but valid records.
 *
 * Trace export: when enableTrace(true) is set, every ScopedSpan also
 * pushes a TraceEvent into a thread-local buffer.  Worker threads
 * call setThreadTrack() once and drainThreadSpans() at batch
 * boundaries; takeTraceEvents() collects everything and
 * writeChromeTrace() serializes Chrome trace-event JSON that loads
 * directly in Perfetto (ui.perfetto.dev).
 *
 * Telemetry is observational only: nothing here feeds back into
 * fuzzing decisions, so enabling it cannot perturb bit-identity.
 */

#ifndef DEJAVUZZ_OBS_TELEMETRY_HH
#define DEJAVUZZ_OBS_TELEMETRY_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace dejavuzz::obs {

// --- Instrument identities ----------------------------------------------

/** Monotonically increasing event counters (cumulative). */
enum class Ctr : uint8_t {
    Iterations,    ///< fuzzing iterations completed
    Batches,       ///< scheduler batches executed
    Simulations,   ///< simulator passes (single + dual)
    Rollbacks,     ///< lockstep divergence rollbacks
    RedoCycles,    ///< cycles re-executed after rollbacks
    Checkpoints,   ///< lockstep checkpoints taken
    HotCycles,     ///< cycles spent inside the divergence-hot window
    StealAttempts, ///< scheduler steal() calls that scanned victims
    StealHits,     ///< steal() calls that found a batch
    TaintTransitions,  ///< taint-account contribution changes applied
    TaintRescanChecks, ///< incremental-vs-rescan cross-checks run
    FusedLaneCycles,   ///< Phase-3 cycles saved by lane fusion
    BatchRetries,      ///< failed/timed-out batches re-executed
    BatchDeadlineKills,    ///< batches cut off by the wall deadline
    QuarantinedSeeds,      ///< seeds moved to quarantine.jsonl
    FaultsInjected,        ///< failpoints fired (--inject-faults)
    CheckpointGenerations, ///< campaign-dir generations written
    kCount,
};

/** Last-value gauges (sampled at epoch barriers). */
enum class Gauge : uint8_t {
    CoveragePoints, ///< merged coverage points
    DistinctBugs,   ///< deduplicated ledger size
    CorpusSize,     ///< corpus entries (may shrink on minimize)
    Epochs,         ///< epochs completed
    Workers,        ///< configured worker count
    kCount,
};

/**
 * Log2-bucketed histograms.  The *Ns entries are span kinds: a
 * ScopedSpan with that kind records its duration here and (when
 * tracing) emits a trace event of the same name.
 */
enum class Hist : uint8_t {
    BatchNs,       ///< scheduler batch wall time
    Phase1Ns,      ///< Phase-1 (trigger + reduction) wall time
    Phase2Ns,      ///< Phase-2 (diffIFT) wall time
    Phase3Ns,      ///< Phase-3 (exploitability) wall time
    RollbackNs,    ///< lockstep rollback + replay + redo wall time
    ModuleTaintNs, ///< moduleTaintStats/appendTaintLog (sampled 1/64)
    ReplayNs,      ///< dejavuzz-replay per-bug wall time
    DequeDepth,    ///< deque depth observed at push()
    VictimScan,    ///< victims scanned per steal() call
    kCount,
};

inline constexpr unsigned kNumCtrs = static_cast<unsigned>(Ctr::kCount);
inline constexpr unsigned kNumGauges =
    static_cast<unsigned>(Gauge::kCount);
inline constexpr unsigned kNumHists = static_cast<unsigned>(Hist::kCount);

/** Snake-case stable names, used for heartbeat fields and traces. */
const char *ctrName(Ctr c);
const char *gaugeName(Gauge g);
const char *histName(Hist h);
/** Short trace-event name for span kinds ("batch", "phase2", ...). */
const char *spanName(Hist h);

// --- Histogram shape -----------------------------------------------------

inline constexpr unsigned kHistBuckets = 64;

/** Bucket index for @p v: 0 holds v==0, bucket b holds [2^(b-1), 2^b). */
inline unsigned
histBucket(uint64_t v)
{
    if (v == 0)
        return 0;
    unsigned width = 64 - static_cast<unsigned>(__builtin_clzll(v));
    return width < kHistBuckets - 1 ? width : kHistBuckets - 1;
}

/** Inclusive lower bound of bucket @p b (0 for the zero bucket). */
inline uint64_t
histBucketLow(unsigned b)
{
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
}

/** Point-in-time copy of one histogram; mergeable across snapshots. */
struct HistSnapshot
{
    uint64_t count = 0; ///< total recorded weight
    uint64_t sum = 0;   ///< weighted sum of recorded values
    std::array<uint64_t, kHistBuckets> buckets{};

    /** Elementwise accumulate; associative and commutative. */
    void merge(const HistSnapshot &other);

    /** Lower bound of the bucket holding quantile @p q in [0, 1]. */
    uint64_t quantileLow(double q) const;
};

/** Point-in-time copy of the whole registry. */
struct TelemetrySnapshot
{
    std::array<uint64_t, kNumCtrs> counters{};
    std::array<uint64_t, kNumGauges> gauges{};
    std::array<HistSnapshot, kNumHists> hists{};

    uint64_t counter(Ctr c) const
    {
        return counters[static_cast<unsigned>(c)];
    }
    uint64_t gauge(Gauge g) const
    {
        return gauges[static_cast<unsigned>(g)];
    }
    const HistSnapshot &hist(Hist h) const
    {
        return hists[static_cast<unsigned>(h)];
    }
};

// --- Cold-path API (always compiled) ------------------------------------

/** Consistent-enough copy of the registry (relaxed reads). */
TelemetrySnapshot snapshot();

/** Zero every instrument and drop buffered trace events (tests only). */
void resetForTest();

/** Monotonic nanoseconds since process start. */
uint64_t nowNs();

/** One completed span, in the registry's monotonic timebase. */
struct TraceEvent
{
    Hist kind;
    uint32_t track;    ///< thread track (worker index; main = 0)
    uint64_t begin_ns;
    uint64_t dur_ns;
    uint64_t arg0;     ///< span-specific (batch: shard)
    uint64_t arg1;     ///< span-specific (batch: batch index)
    bool has_args;
};

/**
 * Serialize @p events as Chrome trace-event JSON ("X" complete
 * events on per-track "tid" lanes, with thread_name metadata).
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events);

// --- Hot-path API --------------------------------------------------------

#ifdef DEJAVUZZ_NO_TELEMETRY

inline void counterAdd(Ctr, uint64_t = 1) {}
inline void gaugeSet(Gauge, uint64_t) {}
inline void histRecord(Hist, uint64_t, uint64_t = 1) {}
inline void enableTrace(bool) {}
inline bool traceEnabled() { return false; }
inline void setThreadTrack(uint32_t) {}
inline void drainThreadSpans() {}
inline std::vector<TraceEvent> takeTraceEvents() { return {}; }

class ScopedSpan
{
  public:
    explicit ScopedSpan(Hist) {}
    ScopedSpan(Hist, uint64_t, uint64_t) {}
    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;
};

class SampledSpan
{
  public:
    explicit SampledSpan(Hist) {}
    SampledSpan(const SampledSpan &) = delete;
    SampledSpan &operator=(const SampledSpan &) = delete;
};

#else // !DEJAVUZZ_NO_TELEMETRY

namespace detail {

extern std::atomic<uint64_t> g_counters[kNumCtrs];
extern std::atomic<uint64_t> g_gauges[kNumGauges];
extern std::atomic<bool> g_trace_enabled;
extern thread_local uint64_t t_sample_tick;

void histRecordSlow(Hist h, uint64_t value, uint64_t weight);
void pushTraceEvent(Hist kind, uint64_t begin_ns, uint64_t dur_ns,
                    uint64_t arg0, uint64_t arg1, bool has_args);

} // namespace detail

inline void
counterAdd(Ctr c, uint64_t n = 1)
{
    detail::g_counters[static_cast<unsigned>(c)].fetch_add(
        n, std::memory_order_relaxed);
}

inline void
gaugeSet(Gauge g, uint64_t v)
{
    detail::g_gauges[static_cast<unsigned>(g)].store(
        v, std::memory_order_relaxed);
}

/**
 * Record @p value with multiplicity @p weight: count += weight,
 * sum += value * weight, bucket(value) += weight.  Sampled callers
 * pass their sampling period as the weight so totals stay unbiased
 * and merges stay associative.
 */
inline void
histRecord(Hist h, uint64_t value, uint64_t weight = 1)
{
    detail::histRecordSlow(h, value, weight);
}

/** Turn trace-event capture on/off (off by default). */
void enableTrace(bool on);

inline bool
traceEnabled()
{
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/** Name the calling thread's trace track (worker index; main = 0). */
void setThreadTrack(uint32_t track);

/**
 * Move the calling thread's buffered trace events into the global
 * sink.  Workers call this at batch boundaries so buffers stay small
 * and no lock is taken inside a batch.
 */
void drainThreadSpans();

/**
 * Drain the calling thread, then return (and clear) every globally
 * buffered trace event.
 */
std::vector<TraceEvent> takeTraceEvents();

/**
 * Times its scope into histogram @p kind; when tracing is enabled
 * also records a trace event on the calling thread's track.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(Hist kind)
        : kind_(kind), arg0_(0), arg1_(0), has_args_(false),
          begin_(nowNs())
    {}

    ScopedSpan(Hist kind, uint64_t arg0, uint64_t arg1)
        : kind_(kind), arg0_(arg0), arg1_(arg1), has_args_(true),
          begin_(nowNs())
    {}

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan()
    {
        const uint64_t dur = nowNs() - begin_;
        detail::histRecordSlow(kind_, dur, 1);
        if (traceEnabled())
            detail::pushTraceEvent(kind_, begin_, dur, arg0_, arg1_,
                                   has_args_);
    }

  private:
    Hist kind_;
    uint64_t arg0_;
    uint64_t arg1_;
    bool has_args_;
    uint64_t begin_;
};

/**
 * Cheap span for per-cycle call sites: times 1 call in 64 and
 * records it with weight 64, so the histogram's count and sum remain
 * unbiased estimates of the true totals.  Never emits trace events.
 */
class SampledSpan
{
  public:
    static constexpr uint64_t kPeriod = 64;

    explicit SampledSpan(Hist kind) : kind_(kind)
    {
        timing_ = (detail::t_sample_tick++ % kPeriod) == 0;
        if (timing_)
            begin_ = nowNs();
    }

    SampledSpan(const SampledSpan &) = delete;
    SampledSpan &operator=(const SampledSpan &) = delete;

    ~SampledSpan()
    {
        if (timing_)
            detail::histRecordSlow(kind_, nowNs() - begin_, kPeriod);
    }

  private:
    Hist kind_;
    bool timing_;
    uint64_t begin_ = 0;
};

#endif // DEJAVUZZ_NO_TELEMETRY

} // namespace dejavuzz::obs

#endif // DEJAVUZZ_OBS_TELEMETRY_HH
