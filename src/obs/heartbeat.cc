#include "obs/heartbeat.hh"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace dejavuzz::obs {

namespace {

void
appendField(std::string &out, const char *key, uint64_t value)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), ",\"%s\":%" PRIu64, key, value);
    out += buf;
}

} // namespace

std::string
formatHeartbeatRecord(uint64_t seq, double wall_seconds,
                      const TelemetrySnapshot &snap)
{
    std::string out = "{\"type\":\"heartbeat\"";
    char buf[96];
    appendField(out, "seq", seq);
    std::snprintf(buf, sizeof(buf), ",\"wall_seconds\":%.6f",
                  wall_seconds);
    out += buf;

    for (unsigned i = 0; i < kNumCtrs; ++i)
        appendField(out, ctrName(static_cast<Ctr>(i)),
                    snap.counters[i]);
    for (unsigned i = 0; i < kNumGauges; ++i)
        appendField(out, gaugeName(static_cast<Gauge>(i)),
                    snap.gauges[i]);
    for (unsigned i = 0; i < kNumHists; ++i) {
        const char *name = histName(static_cast<Hist>(i));
        char key[64];
        std::snprintf(key, sizeof(key), "%s_count", name);
        appendField(out, key, snap.hists[i].count);
        std::snprintf(key, sizeof(key), "%s_sum", name);
        appendField(out, key, snap.hists[i].sum);
    }

    const HistSnapshot &batch = snap.hist(Hist::BatchNs);
    appendField(out, "batch_p50_ns", batch.quantileLow(0.5));
    appendField(out, "batch_p99_ns", batch.quantileLow(0.99));
    out += "}";
    return out;
}

HeartbeatEmitter::HeartbeatEmitter(double interval_sec, Sink sink)
    : sink_(std::move(sink))
{
    if (interval_sec <= 0.0 || !sink_) {
        stopped_ = true;
        return;
    }
    thread_ = std::thread([this, interval_sec] { loop(interval_sec); });
}

HeartbeatEmitter::~HeartbeatEmitter()
{
    stop();
}

void
HeartbeatEmitter::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_)
            return;
        stopped_ = true;
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    emitOnce();
}

void
HeartbeatEmitter::loop(double interval_sec)
{
    const auto interval = std::chrono::duration<double>(interval_sec);
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (cv_.wait_for(lock, interval, [this] { return stopping_; }))
            return;
        lock.unlock();
        emitOnce();
        lock.lock();
    }
}

void
HeartbeatEmitter::emitOnce()
{
    // Never called concurrently: the timer thread is the only caller
    // while running, and stop() joins it before the final emit.
    sink_(formatHeartbeatRecord(seq_++, nowNs() / 1e9, snapshot()));
}

} // namespace dejavuzz::obs
