#include "obs/telemetry.hh"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <ostream>
#include <set>
#include <string>

namespace dejavuzz::obs {

// --- Names ---------------------------------------------------------------

const char *
ctrName(Ctr c)
{
    switch (c) {
      case Ctr::Iterations: return "iterations";
      case Ctr::Batches: return "batches";
      case Ctr::Simulations: return "simulations";
      case Ctr::Rollbacks: return "rollbacks";
      case Ctr::RedoCycles: return "redo_cycles";
      case Ctr::Checkpoints: return "checkpoints";
      case Ctr::HotCycles: return "hot_cycles";
      case Ctr::StealAttempts: return "steal_attempts";
      case Ctr::StealHits: return "steal_hits";
      case Ctr::TaintTransitions: return "taint_transitions";
      case Ctr::TaintRescanChecks: return "taint_rescan_checks";
      case Ctr::FusedLaneCycles: return "fused_lane_cycles";
      case Ctr::BatchRetries: return "batch_retries";
      case Ctr::BatchDeadlineKills: return "batch_deadline_kills";
      case Ctr::QuarantinedSeeds: return "quarantined_seeds";
      case Ctr::FaultsInjected: return "faults_injected";
      case Ctr::CheckpointGenerations:
          return "checkpoint_generations";
      case Ctr::kCount: break;
    }
    return "?";
}

const char *
gaugeName(Gauge g)
{
    switch (g) {
      case Gauge::CoveragePoints: return "coverage_points";
      case Gauge::DistinctBugs: return "distinct_bugs";
      case Gauge::CorpusSize: return "corpus_size";
      case Gauge::Epochs: return "epochs";
      case Gauge::Workers: return "workers";
      case Gauge::kCount: break;
    }
    return "?";
}

const char *
histName(Hist h)
{
    switch (h) {
      case Hist::BatchNs: return "batch_ns";
      case Hist::Phase1Ns: return "phase1_ns";
      case Hist::Phase2Ns: return "phase2_ns";
      case Hist::Phase3Ns: return "phase3_ns";
      case Hist::RollbackNs: return "rollback_ns";
      case Hist::ModuleTaintNs: return "module_taint_ns";
      case Hist::ReplayNs: return "replay_ns";
      case Hist::DequeDepth: return "deque_depth";
      case Hist::VictimScan: return "victim_scan";
      case Hist::kCount: break;
    }
    return "?";
}

const char *
spanName(Hist h)
{
    switch (h) {
      case Hist::BatchNs: return "batch";
      case Hist::Phase1Ns: return "phase1";
      case Hist::Phase2Ns: return "phase2";
      case Hist::Phase3Ns: return "phase3";
      case Hist::RollbackNs: return "rollback";
      case Hist::ModuleTaintNs: return "module_taint";
      case Hist::ReplayNs: return "replay";
      default: break;
    }
    return histName(h);
}

// --- Histogram snapshots -------------------------------------------------

void
HistSnapshot::merge(const HistSnapshot &other)
{
    count += other.count;
    sum += other.sum;
    for (unsigned b = 0; b < kHistBuckets; ++b)
        buckets[b] += other.buckets[b];
}

uint64_t
HistSnapshot::quantileLow(double q) const
{
    if (count == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the q-quantile observation, 1-based.
    uint64_t rank = static_cast<uint64_t>(q * (count - 1)) + 1;
    uint64_t seen = 0;
    for (unsigned b = 0; b < kHistBuckets; ++b) {
        seen += buckets[b];
        if (seen >= rank)
            return histBucketLow(b);
    }
    return histBucketLow(kHistBuckets - 1);
}

// --- Timebase ------------------------------------------------------------

namespace {

using SteadyClock = std::chrono::steady_clock;

/** Process-start reference, captured at static-init time. */
const SteadyClock::time_point g_epoch = SteadyClock::now();

} // namespace

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            SteadyClock::now() - g_epoch)
            .count());
}

#ifndef DEJAVUZZ_NO_TELEMETRY

// --- Registry storage ----------------------------------------------------

namespace detail {

std::atomic<uint64_t> g_counters[kNumCtrs];
std::atomic<uint64_t> g_gauges[kNumGauges];
std::atomic<bool> g_trace_enabled{false};
thread_local uint64_t t_sample_tick = 0;

namespace {

struct HistCells
{
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> buckets[kHistBuckets];
};

HistCells g_hists[kNumHists];

/** Per-thread staging buffer for trace events. */
thread_local std::vector<TraceEvent> t_span_buf;
thread_local uint32_t t_track = 0;

std::mutex g_trace_mutex;
std::vector<TraceEvent> g_trace_events;

/** Drop events beyond this many to bound memory on long campaigns. */
constexpr size_t kMaxTraceEvents = size_t{1} << 20;

} // namespace

void
histRecordSlow(Hist h, uint64_t value, uint64_t weight)
{
    auto &cells = g_hists[static_cast<unsigned>(h)];
    cells.count.fetch_add(weight, std::memory_order_relaxed);
    cells.sum.fetch_add(value * weight, std::memory_order_relaxed);
    cells.buckets[histBucket(value)].fetch_add(
        weight, std::memory_order_relaxed);
}

void
pushTraceEvent(Hist kind, uint64_t begin_ns, uint64_t dur_ns,
               uint64_t arg0, uint64_t arg1, bool has_args)
{
    t_span_buf.push_back(
        {kind, t_track, begin_ns, dur_ns, arg0, arg1, has_args});
}

} // namespace detail

void
enableTrace(bool on)
{
    detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void
setThreadTrack(uint32_t track)
{
    detail::t_track = track;
}

void
drainThreadSpans()
{
    if (detail::t_span_buf.empty())
        return;
    std::lock_guard<std::mutex> lock(detail::g_trace_mutex);
    if (detail::g_trace_events.size() < detail::kMaxTraceEvents) {
        detail::g_trace_events.insert(detail::g_trace_events.end(),
                                      detail::t_span_buf.begin(),
                                      detail::t_span_buf.end());
    }
    detail::t_span_buf.clear();
}

std::vector<TraceEvent>
takeTraceEvents()
{
    drainThreadSpans();
    std::vector<TraceEvent> out;
    std::lock_guard<std::mutex> lock(detail::g_trace_mutex);
    out.swap(detail::g_trace_events);
    return out;
}

TelemetrySnapshot
snapshot()
{
    TelemetrySnapshot snap;
    for (unsigned i = 0; i < kNumCtrs; ++i)
        snap.counters[i] =
            detail::g_counters[i].load(std::memory_order_relaxed);
    for (unsigned i = 0; i < kNumGauges; ++i)
        snap.gauges[i] =
            detail::g_gauges[i].load(std::memory_order_relaxed);
    for (unsigned i = 0; i < kNumHists; ++i) {
        auto &cells = detail::g_hists[i];
        auto &h = snap.hists[i];
        h.count = cells.count.load(std::memory_order_relaxed);
        h.sum = cells.sum.load(std::memory_order_relaxed);
        for (unsigned b = 0; b < kHistBuckets; ++b)
            h.buckets[b] =
                cells.buckets[b].load(std::memory_order_relaxed);
    }
    return snap;
}

void
resetForTest()
{
    for (unsigned i = 0; i < kNumCtrs; ++i)
        detail::g_counters[i].store(0, std::memory_order_relaxed);
    for (unsigned i = 0; i < kNumGauges; ++i)
        detail::g_gauges[i].store(0, std::memory_order_relaxed);
    for (unsigned i = 0; i < kNumHists; ++i) {
        auto &cells = detail::g_hists[i];
        cells.count.store(0, std::memory_order_relaxed);
        cells.sum.store(0, std::memory_order_relaxed);
        for (unsigned b = 0; b < kHistBuckets; ++b)
            cells.buckets[b].store(0, std::memory_order_relaxed);
    }
    detail::t_span_buf.clear();
    std::lock_guard<std::mutex> lock(detail::g_trace_mutex);
    detail::g_trace_events.clear();
}

#else // DEJAVUZZ_NO_TELEMETRY

TelemetrySnapshot
snapshot()
{
    return {};
}

void
resetForTest()
{
}

#endif // DEJAVUZZ_NO_TELEMETRY

// --- Chrome trace-event serialization ------------------------------------

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceEvent> &events)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    char buf[256];

    std::set<uint32_t> tracks;
    for (const auto &e : events)
        tracks.insert(e.track);
    for (uint32_t track : tracks) {
        // Executor threads register as track t+1 (track 0 is main),
        // so track N carries worker N-1's batches.
        std::string label =
            track == 0 ? "main"
                       : "worker " + std::to_string(track - 1);
        std::snprintf(buf, sizeof(buf),
                      "%s{\"name\":\"thread_name\",\"ph\":\"M\","
                      "\"pid\":1,\"tid\":%" PRIu32
                      ",\"args\":{\"name\":\"%s\"}}",
                      first ? "" : ",", track, label.c_str());
        os << buf;
        first = false;
    }

    for (const auto &e : events) {
        std::snprintf(buf, sizeof(buf),
                      "%s{\"name\":\"%s\",\"ph\":\"X\","
                      "\"ts\":%.3f,\"dur\":%.3f,"
                      "\"pid\":1,\"tid\":%" PRIu32,
                      first ? "" : ",", spanName(e.kind),
                      e.begin_ns / 1e3, e.dur_ns / 1e3, e.track);
        os << buf;
        first = false;
        if (e.has_args) {
            std::snprintf(buf, sizeof(buf),
                          ",\"args\":{\"shard\":%" PRIu64
                          ",\"batch\":%" PRIu64 "}",
                          e.arg0, e.arg1);
            os << buf;
        }
        os << "}";
    }
    os << "]}\n";
}

} // namespace dejavuzz::obs
