/**
 * @file
 * Periodic heartbeat records: a flat-JSON serialization of the
 * telemetry registry appended to campaign.jsonl while a campaign is
 * running, so a live run is observable with `tail -f`.
 *
 * Schema (one line per record, documented in docs/campaign-format.md):
 * "type":"heartbeat", a strictly increasing "seq", a monotonic
 * "wall_seconds", every cumulative counter, every gauge, per-histogram
 * "<name>_count"/"<name>_sum" pairs, and batch-latency p50/p99
 * estimates.  Counters, histogram totals, wall_seconds, and seq are
 * cumulative: the report validator rejects logs where any of them
 * decreases across consecutive heartbeats.
 */

#ifndef DEJAVUZZ_OBS_HEARTBEAT_HH
#define DEJAVUZZ_OBS_HEARTBEAT_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/telemetry.hh"

namespace dejavuzz::obs {

/**
 * Format one heartbeat line (no trailing newline) from @p snap.
 * @p wall_seconds is monotonic seconds since process start.
 */
std::string formatHeartbeatRecord(uint64_t seq, double wall_seconds,
                                  const TelemetrySnapshot &snap);

/**
 * Background emitter: every @p interval_sec seconds, snapshot the
 * registry and hand the formatted line to @p sink.  stop() (or the
 * destructor) emits one final record before joining, so even runs
 * shorter than the interval produce at least one heartbeat.
 *
 * Inactive (emits nothing, starts no thread) when @p interval_sec
 * is not positive or @p sink is empty.
 */
class HeartbeatEmitter
{
  public:
    using Sink = std::function<void(const std::string &line)>;

    HeartbeatEmitter(double interval_sec, Sink sink);
    ~HeartbeatEmitter();

    HeartbeatEmitter(const HeartbeatEmitter &) = delete;
    HeartbeatEmitter &operator=(const HeartbeatEmitter &) = delete;

    /** Emit the final record and join the timer thread (idempotent). */
    void stop();

  private:
    void loop(double interval_sec);
    void emitOnce();

    Sink sink_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    bool stopped_ = false;
    uint64_t seq_ = 0;
    std::thread thread_;
};

} // namespace dejavuzz::obs

#endif // DEJAVUZZ_OBS_HEARTBEAT_HH
