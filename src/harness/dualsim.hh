/**
 * @file
 * The differential testbench (paper §3.3, §5).
 *
 * Two identical DUT instances execute the same swap schedule with
 * different secrets. diffIFT needs each instance's control-signal
 * values compared against the sibling's for the same cycle; because
 * taint never feeds back into architectural values, the control
 * trace an instance records is independent of how its taint gates
 * resolve, which admits two equivalent evaluation strategies:
 *
 *  - **Lockstep co-simulation** (default): both instances advance in
 *    one interleaved loop. Each cycle, instance 0 ticks first as a
 *    *record sub-tick* — gates optimistically closed, control trace
 *    recorded — then instance 1 runs its *taint sub-tick*, gating
 *    against instance 0's just-recorded trace. If the two traces for
 *    the cycle differ positionally, instance 0's closed-gate
 *    assumption was wrong and the harness rolls it back to the last
 *    checkpoint (pooled Core copy + memory undo log), replays the
 *    confirmed-convergent cycles, and redoes the divergent cycle
 *    against instance 1's trace. DiffIFT costs ~2 core simulations.
 *
 *  - **Legacy 4-pass** (SimOptions::lockstep_diff = false): a value
 *    pass per instance records the control traces, then a diff pass
 *    per instance replays against the sibling's trace. 4 full core
 *    simulations; kept as the bit-identical equivalence baseline.
 *
 * CellIFT / FN / Off modes need no sibling information and run in a
 * single pass per instance. All per-run state (cores, memories,
 * trace stores, result buffers) is pooled inside DualSim, so the
 * steady-state iteration loop performs no allocation.
 */

#ifndef DEJAVUZZ_HARNESS_DUALSIM_HH
#define DEJAVUZZ_HARNESS_DUALSIM_HH

#include <cstdint>
#include <vector>

#include "harness/stimulus.hh"
#include "ift/liveness.hh"
#include "ift/policy.hh"
#include "ift/taintlog.hh"
#include "swapmem/memory.hh"
#include "swapmem/packet.hh"
#include "uarch/config.hh"
#include "uarch/core.hh"
#include "uarch/tracelog.hh"

namespace dejavuzz::harness {

/** Per-run limits and switches. */
struct SimOptions
{
    ift::IftMode mode = ift::IftMode::Off;
    bool taint_log = false;
    bool sinks = false;
    /**
     * Evaluate DiffIFT by lockstep co-simulation (2 passes) instead
     * of the legacy 4-pass value/diff pipeline. The two strategies
     * produce bit-identical DutResults (CI-enforced); this switch
     * exists for the equivalence suite and perf baselines.
     */
    bool lockstep_diff = true;
    /**
     * Checkpoint cadence of the lockstep redo protocol while
     * execution is convergent, in cycles. Purely a time/space
     * trade-off — results are bit-identical for any value ≥ 1. The
     * equivalence suite sweeps it to stress the rollback/replay path.
     */
    uint64_t lockstep_checkpoint_interval = 32;
    uint64_t packet_cycle_budget = 1500;
    uint64_t total_cycle_budget = 20000;
};

/** Result of one DUT instance's run. */
struct DutResult
{
    uarch::TraceLog trace;
    ift::TaintLog taint_log;
    bool completed = false;      ///< schedule ran to the end
    bool budget_exceeded = false;
    uint64_t cycles = 0;
    uarch::ContentionCounters contention;
    std::vector<ift::SinkSnapshot> sinks;
    uint64_t timing_hash = 0;
    /** timing_hash folded with cached data (SpecDoctor's oracle). */
    uint64_t state_hash = 0;
    /** Cycle at which each packet started executing. */
    std::vector<uint64_t> packet_start;

    /**
     * Clear for reuse, keeping every vector's capacity. `sinks` is
     * deliberately left alone: the sink writer overwrites it in place
     * (or the harness clears it when sinks are disabled).
     */
    void
    reset()
    {
        trace.clear();
        taint_log.clear();
        completed = false;
        budget_exceeded = false;
        cycles = 0;
        contention = uarch::ContentionCounters{};
        timing_hash = 0;
        state_hash = 0;
        packet_start.clear();
    }
};

/** Result of a dual (differential) run. */
struct DualResult
{
    DutResult dut0; ///< original secret
    DutResult dut1; ///< flipped secret
    /** Full core simulations this run cost (2 lockstep, 4 legacy). */
    unsigned sim_passes = 0;
};

class DualSim
{
  public:
    explicit DualSim(const uarch::CoreConfig &config);

    /**
     * Single-instance run with IFT off: the cheap mode Phase 1 uses
     * for window-trigger evaluation and training reduction. Writes
     * into @p out, reusing its buffers.
     */
    void runSingle(const swapmem::SwapSchedule &schedule,
                   const StimulusData &data, const SimOptions &options,
                   DutResult &out);

    /** By-value convenience wrapper around the pooled overload. */
    DutResult runSingle(const swapmem::SwapSchedule &schedule,
                        const StimulusData &data,
                        const SimOptions &options = {});

    /**
     * Full differential run (both instances). Writes into @p out,
     * reusing its buffers: the hot path for the phase drivers.
     */
    void runDual(const swapmem::SwapSchedule &schedule,
                 const StimulusData &data, const SimOptions &options,
                 DualResult &out);

    /** By-value convenience wrapper around the pooled overload. */
    DualResult runDual(const swapmem::SwapSchedule &schedule,
                       const StimulusData &data,
                       const SimOptions &options);

  private:
    /**
     * Recorded control traces of one instance, one slot per cycle,
     * preallocated from SimOptions::total_cycle_budget and reused
     * across runs (each per-cycle trace keeps its record capacity).
     */
    struct TraceStore
    {
        std::vector<ift::ControlTrace> per_cycle;
        /** Cycles recorded this run (recording is contiguous from 0). */
        uint64_t used = 0;

        void
        prepare(uint64_t budget)
        {
            if (per_cycle.size() < budget)
                per_cycle.resize(budget);
            used = 0;
        }

        /** Recording slot for @p cycle (cleared; marks it used). */
        ift::ControlTrace *
        slot(uint64_t cycle)
        {
            ift::ControlTrace &trace = per_cycle[cycle];
            trace.clear();
            used = cycle + 1;
            return &trace;
        }

        /** Sibling view of @p cycle; see dualsim.cc for the tail
         *  hysteresis semantics. */
        const ift::ControlTrace *viewAt(uint64_t cycle) const;
    };

    /** Pooled per-instance simulation resources. */
    struct Lane
    {
        explicit Lane(const uarch::CoreConfig &config) : core(config) {}
        uarch::Core core;
        swapmem::Memory mem;
    };

    /** Per-run driver state of one instance. */
    struct LaneRun
    {
        LaneRun(Lane &lane_in, DutResult &result_in,
                const swapmem::SwapSchedule &schedule)
            : lane(lane_in), result(result_in), runtime(schedule)
        {}
        Lane &lane;
        DutResult &result;
        swapmem::SwapRuntime runtime;
        uint64_t packet_cycles = 0;
        bool started = false; ///< false: schedule was empty at start
        bool done = false;
    };

    /** Rollback marks for the lockstep checkpoint protocol. */
    struct LaneMarks
    {
        uint64_t cycle = 0;
        uint64_t packet_cycles = 0;
        /** Secret protection at the checkpoint: packet advances flip
         *  it (SwapRuntime::loadCurrent) and the byte-level undo log
         *  does not cover it. */
        swapmem::SecretProt secret_prot = swapmem::SecretProt::Open;
        bool completed = false;
        bool budget_exceeded = false;
        bool done = false;
        size_t commits = 0;
        size_t squashes = 0;
        size_t rob_io = 0;
        size_t taint_cycles = 0;
        size_t packet_starts = 0;
    };

    void startLane(LaneRun &lr, const StimulusData &data,
                   const SimOptions &options, bool flipped_secret);
    void laneTick(LaneRun &lr, const SimOptions &options,
                  ift::IftMode mode, ift::ControlTrace *mine,
                  const ift::ControlTrace *other);
    void finishLane(LaneRun &lr, const SimOptions &options);

    void runOne(const swapmem::SwapSchedule &schedule,
                const StimulusData &data, const SimOptions &options,
                bool flipped_secret, ift::IftMode mode,
                TraceStore *record, const TraceStore *sibling,
                Lane &lane, DutResult &out);

    void runDualFourPass(const swapmem::SwapSchedule &schedule,
                         const StimulusData &data,
                         const SimOptions &options, DualResult &out);
    void runDualLockstep(const swapmem::SwapSchedule &schedule,
                         const StimulusData &data,
                         const SimOptions &options, DualResult &out);

    void buildMemory(swapmem::Memory &mem, const StimulusData &data,
                     bool flipped_secret) const;

    uarch::CoreConfig cfg_;
    Lane lane0_;
    Lane lane1_;
    /** Checkpoint target for the lockstep redo protocol (pooled so
     *  the per-checkpoint copy reuses vector storage). */
    uarch::Core ckpt_core_;
    /** Discarded value-pass results of the legacy 4-pass path. */
    DutResult scratch_result_;
    TraceStore store_a_;
    TraceStore store_b_;
};

} // namespace dejavuzz::harness

#endif // DEJAVUZZ_HARNESS_DUALSIM_HH
