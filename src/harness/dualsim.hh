/**
 * @file
 * The differential testbench (paper §3.3, §5).
 *
 * Two identical DUT instances execute the same swap schedule with
 * different secrets. diffIFT needs each instance's control-signal
 * values compared against the sibling's; because taint never feeds
 * back into values, the harness runs a value pass first (recording
 * every control-signal evaluation per cycle) and then a diff pass in
 * which each instance's taint gates consult the sibling's recorded
 * trace for the same cycle. CellIFT / FN / Off modes need no sibling
 * information and run in a single pass.
 */

#ifndef DEJAVUZZ_HARNESS_DUALSIM_HH
#define DEJAVUZZ_HARNESS_DUALSIM_HH

#include <cstdint>
#include <vector>

#include "harness/stimulus.hh"
#include "ift/liveness.hh"
#include "ift/policy.hh"
#include "ift/taintlog.hh"
#include "swapmem/memory.hh"
#include "swapmem/packet.hh"
#include "uarch/config.hh"
#include "uarch/core.hh"
#include "uarch/tracelog.hh"

namespace dejavuzz::harness {

/** Per-run limits and switches. */
struct SimOptions
{
    ift::IftMode mode = ift::IftMode::Off;
    bool taint_log = false;
    bool sinks = false;
    uint64_t packet_cycle_budget = 1500;
    uint64_t total_cycle_budget = 20000;
};

/** Result of one DUT instance's run. */
struct DutResult
{
    uarch::TraceLog trace;
    ift::TaintLog taint_log;
    bool completed = false;      ///< schedule ran to the end
    bool budget_exceeded = false;
    uint64_t cycles = 0;
    uarch::ContentionCounters contention;
    std::vector<ift::SinkSnapshot> sinks;
    uint64_t timing_hash = 0;
    /** timing_hash folded with cached data (SpecDoctor's oracle). */
    uint64_t state_hash = 0;
    /** Cycle at which each packet started executing. */
    std::vector<uint64_t> packet_start;
};

/** Result of a dual (differential) run. */
struct DualResult
{
    DutResult dut0; ///< original secret
    DutResult dut1; ///< flipped secret
};

class DualSim
{
  public:
    explicit DualSim(const uarch::CoreConfig &config);

    /**
     * Single-instance run with IFT off: the cheap mode Phase 1 uses
     * for window-trigger evaluation and training reduction.
     */
    DutResult runSingle(const swapmem::SwapSchedule &schedule,
                        const StimulusData &data,
                        const SimOptions &options = {});

    /** Full differential run (both instances). */
    DualResult runDual(const swapmem::SwapSchedule &schedule,
                       const StimulusData &data,
                       const SimOptions &options);

  private:
    /** Recorded control traces of one instance, one slot per cycle. */
    struct TraceStore
    {
        std::vector<ift::ControlTrace> per_cycle;
        void
        reset(size_t cycles)
        {
            if (per_cycle.size() < cycles)
                per_cycle.resize(cycles);
            for (auto &trace : per_cycle)
                trace.clear();
        }
    };

    DutResult runOne(const swapmem::SwapSchedule &schedule,
                     const StimulusData &data, const SimOptions &options,
                     bool flipped_secret, ift::IftMode mode,
                     TraceStore *record, const TraceStore *sibling);

    void buildMemory(swapmem::Memory &mem, const StimulusData &data,
                     bool flipped_secret) const;

    uarch::CoreConfig cfg_;
    TraceStore store_a_;
    TraceStore store_b_;
};

} // namespace dejavuzz::harness

#endif // DEJAVUZZ_HARNESS_DUALSIM_HH
