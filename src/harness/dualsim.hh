/**
 * @file
 * The differential testbench (paper §3.3, §5).
 *
 * Two identical DUT instances execute the same swap schedule with
 * different secrets. diffIFT needs each instance's control-signal
 * values compared against the sibling's for the same cycle; because
 * taint never feeds back into architectural values, the control
 * trace an instance records is independent of how its taint gates
 * resolve, which admits two equivalent evaluation strategies:
 *
 *  - **Lockstep co-simulation** (default): both instances advance in
 *    one interleaved loop. Each cycle, instance 0 ticks first as a
 *    *record sub-tick* — gates optimistically closed, control trace
 *    recorded — then instance 1 runs its *taint sub-tick*, gating
 *    against instance 0's just-recorded trace. If the two traces for
 *    the cycle differ positionally, instance 0's closed-gate
 *    assumption was wrong and the harness rolls it back to the last
 *    checkpoint (pooled Core copy + memory undo log), replays the
 *    confirmed-convergent cycles, and redoes the divergent cycle
 *    against instance 1's trace. DiffIFT costs ~2 core simulations.
 *
 *  - **Legacy 4-pass** (SimOptions::lockstep_diff = false): a value
 *    pass per instance records the control traces, then a diff pass
 *    per instance replays against the sibling's trace. 4 full core
 *    simulations; kept as the bit-identical equivalence baseline.
 *
 * CellIFT / FN / Off modes need no sibling information and run in a
 * single pass per instance. All per-run state (cores, memories,
 * trace stores, result buffers) is pooled inside DualSim, so the
 * steady-state iteration loop performs no allocation.
 *
 * **Phase-3 lane fusion.** The Phase-3 sanitized run executes the
 * same schedule as Phase 2 with the transient packet's encode
 * instructions nop'd out — and packets only reach memory when the
 * swap runtime loads them, so the two runs are cycle-for-cycle
 * identical until the transient packet is loaded. When a phase
 * driver arms fusion (armFusion) with the sanitized schedule, the
 * lockstep loop snapshots both lanes at the first confirmed point
 * where either swap cursor reaches the transient packet (always
 * before any transient instruction is fetched: the load happens at
 * the end of the triggering tick and fetch resumes next tick).
 * runFusedPhase3 then restores the snapshot, rewrites the swap
 * region with the sanitized transient packet, and runs only the
 * post-transient suffix — bit-identical to a standalone sanitized
 * run (CI-enforced) at a fraction of its cost, collapsing a fuzzer
 * iteration from 2+1 full simulations toward 2.
 */

#ifndef DEJAVUZZ_HARNESS_DUALSIM_HH
#define DEJAVUZZ_HARNESS_DUALSIM_HH

#include <cstdint>
#include <vector>

#include "harness/stimulus.hh"
#include "ift/liveness.hh"
#include "ift/policy.hh"
#include "ift/taintlog.hh"
#include "swapmem/memory.hh"
#include "swapmem/packet.hh"
#include "uarch/config.hh"
#include "uarch/core.hh"
#include "uarch/tracelog.hh"

namespace dejavuzz::harness {

/** Per-run limits and switches. */
struct SimOptions
{
    ift::IftMode mode = ift::IftMode::Off;
    bool taint_log = false;
    bool sinks = false;
    /**
     * Evaluate DiffIFT by lockstep co-simulation (2 passes) instead
     * of the legacy 4-pass value/diff pipeline. The two strategies
     * produce bit-identical DutResults (CI-enforced); this switch
     * exists for the equivalence suite and perf baselines.
     */
    bool lockstep_diff = true;
    /**
     * Checkpoint cadence of the lockstep redo protocol while
     * execution is convergent, in cycles. Purely a time/space
     * trade-off — results are bit-identical for any value ≥ 1. The
     * equivalence suite sweeps it to stress the rollback/replay path.
     */
    uint64_t lockstep_checkpoint_interval = 32;
    /**
     * Let Phase 2 arm the lockstep driver to snapshot both lanes at
     * the transient-packet boundary so Phase 3's sanitized run can
     * resume from the shared prefix instead of re-simulating it.
     * Results are bit-identical either way; this switch exists for
     * the equivalence suite and perf baselines.
     */
    bool fuse_phase3 = true;
    uint64_t packet_cycle_budget = 1500;
    uint64_t total_cycle_budget = 20000;
};

/** Result of one DUT instance's run. */
struct DutResult
{
    uarch::TraceLog trace;
    ift::TaintLog taint_log;
    bool completed = false;      ///< schedule ran to the end
    bool budget_exceeded = false;
    uint64_t cycles = 0;
    uarch::ContentionCounters contention;
    std::vector<ift::SinkSnapshot> sinks;
    uint64_t timing_hash = 0;
    /** timing_hash folded with cached data (SpecDoctor's oracle). */
    uint64_t state_hash = 0;
    /** Cycle at which each packet started executing. */
    std::vector<uint64_t> packet_start;

    /**
     * Clear for reuse, keeping every vector's capacity. `sinks` is
     * deliberately left alone: the sink writer overwrites it in place
     * (or the harness clears it when sinks are disabled).
     */
    void
    reset()
    {
        trace.clear();
        taint_log.clear();
        completed = false;
        budget_exceeded = false;
        cycles = 0;
        contention = uarch::ContentionCounters{};
        timing_hash = 0;
        state_hash = 0;
        packet_start.clear();
    }
};

/** Result of a dual (differential) run. */
struct DualResult
{
    DutResult dut0; ///< original secret
    DutResult dut1; ///< flipped secret
    /** Full core simulations this run cost (2 lockstep, 4 legacy). */
    unsigned sim_passes = 0;
};

class DualSim
{
  public:
    explicit DualSim(const uarch::CoreConfig &config);

    /**
     * Single-instance run with IFT off: the cheap mode Phase 1 uses
     * for window-trigger evaluation and training reduction. Writes
     * into @p out, reusing its buffers.
     */
    void runSingle(const swapmem::SwapSchedule &schedule,
                   const StimulusData &data, const SimOptions &options,
                   DutResult &out);

    /** By-value convenience wrapper around the pooled overload. */
    DutResult runSingle(const swapmem::SwapSchedule &schedule,
                        const StimulusData &data,
                        const SimOptions &options = {});

    /**
     * Full differential run (both instances). Writes into @p out,
     * reusing its buffers: the hot path for the phase drivers.
     */
    void runDual(const swapmem::SwapSchedule &schedule,
                 const StimulusData &data, const SimOptions &options,
                 DualResult &out);

    /** By-value convenience wrapper around the pooled overload. */
    DualResult runDual(const swapmem::SwapSchedule &schedule,
                       const StimulusData &data,
                       const SimOptions &options);

    /**
     * Arm Phase-3 lane fusion for the next runDual: @p sanitized is
     * the sanitized twin of the schedule that runDual will execute
     * (same packet count, kinds, entries and transient protection;
     * only the transient packet's instructions differ). The pointer
     * must stay valid through the matching runFusedPhase3 call.
     * Passing nullptr disarms. Arming is one-shot: each runDual
     * consumes it, and non-lockstep / non-DiffIFT runs simply never
     * capture (fusionCaptured() stays false => callers fall back to
     * a standalone sanitized run).
     */
    void
    armFusion(const swapmem::SwapSchedule *sanitized)
    {
        fusion_sanitized_ = sanitized;
        fusion_armed_ = sanitized != nullptr;
        fusion_captured_ = false;
    }

    /** True when the last runDual captured a fusion snapshot. */
    bool fusionCaptured() const { return fusion_captured_; }

    /**
     * Run the Phase-3 sanitized simulation as a fused third lane:
     * restore both lanes from the snapshot captured by the last
     * (armed) lockstep runDual, reload the swap region with the
     * sanitized transient packet, and finish the run. Bit-identical
     * to runDual on the sanitized schedule but costs only the
     * post-transient suffix (sim_passes = 1). Requires
     * fusionCaptured(); consumes the snapshot.
     */
    void runFusedPhase3(const SimOptions &options, DualResult &out);

  private:
    /**
     * Recorded control traces of one instance, one slot per cycle,
     * preallocated from SimOptions::total_cycle_budget and reused
     * across runs (each per-cycle trace keeps its record capacity).
     */
    struct TraceStore
    {
        std::vector<ift::ControlTrace> per_cycle;
        /** Cycles recorded this run (recording is contiguous from 0). */
        uint64_t used = 0;

        void
        prepare(uint64_t budget)
        {
            if (per_cycle.size() < budget)
                per_cycle.resize(budget);
            used = 0;
        }

        /** Recording slot for @p cycle (cleared; marks it used). */
        ift::ControlTrace *
        slot(uint64_t cycle)
        {
            ift::ControlTrace &trace = per_cycle[cycle];
            trace.clear();
            used = cycle + 1;
            return &trace;
        }

        /**
         * Sibling view of @p cycle with the seed harness's
         * grow-by-256 tail hysteresis: cycles < used return the
         * recorded trace; cycles past used but below the next
         * 256-cycle boundary return an *empty* trace (structural
         * divergence => gates open); cycles at or beyond the
         * boundary return nullptr (no trace => gates closed). See
         * kTraceTailQuantum in dualsim.cc for why this asymmetry is
         * load-bearing for bit-identity with the seed.
         */
        const ift::ControlTrace *viewAt(uint64_t cycle) const;
    };

    /** Pooled per-instance simulation resources. */
    struct Lane
    {
        explicit Lane(const uarch::CoreConfig &config) : core(config) {}
        uarch::Core core;
        swapmem::Memory mem;
    };

    /** Per-run driver state of one instance. */
    struct LaneRun
    {
        LaneRun(Lane &lane_in, DutResult &result_in,
                const swapmem::SwapSchedule &schedule)
            : lane(lane_in), result(result_in), runtime(schedule)
        {}
        Lane &lane;
        DutResult &result;
        swapmem::SwapRuntime runtime;
        uint64_t packet_cycles = 0;
        /** Core taint-transition count at lane start (nonzero only
         *  for a fused resume), so finishLane reports the transitions
         *  this run actually simulated. */
        uint64_t taint_transitions_base = 0;
        bool started = false; ///< false: schedule was empty at start
        bool done = false;
    };

    /** Rollback marks for the lockstep checkpoint protocol. */
    struct LaneMarks
    {
        uint64_t cycle = 0;
        uint64_t packet_cycles = 0;
        /** Secret protection at the checkpoint: packet advances flip
         *  it (SwapRuntime::loadCurrent) and the byte-level undo log
         *  does not cover it. */
        swapmem::SecretProt secret_prot = swapmem::SecretProt::Open;
        /** Victim placement / double-fetch swap flags: flipped by
         *  packet advances like secret_prot and likewise outside the
         *  byte-level undo log. */
        bool victim_supervisor = false;
        bool secret_swapped = false;
        bool completed = false;
        bool budget_exceeded = false;
        bool done = false;
        size_t commits = 0;
        size_t squashes = 0;
        size_t rob_io = 0;
        size_t taint_cycles = 0;
        size_t packet_starts = 0;
    };

    /**
     * Snapshot of one lane at a confirmed lockstep point, from which
     * the Phase-3 sanitized run can resume. Pooled: the Core and
     * Memory copies reuse their storage across iterations.
     */
    struct FusedCapture
    {
        explicit FusedCapture(const uarch::CoreConfig &config)
            : core(config)
        {}
        uarch::Core core;
        swapmem::Memory mem;
        DutResult result;
        uint64_t packet_cycles = 0;
        size_t cursor = 0;
        bool runtime_started = false;
        bool started = false;
        bool done = false;
    };

    void startLane(LaneRun &lr, const StimulusData &data,
                   const SimOptions &options, bool flipped_secret);
    void laneTick(LaneRun &lr, const SimOptions &options,
                  ift::IftMode mode, ift::ControlTrace *mine,
                  const ift::ControlTrace *other);
    void finishLane(LaneRun &lr, const SimOptions &options);

    void runOne(const swapmem::SwapSchedule &schedule,
                const StimulusData &data, const SimOptions &options,
                bool flipped_secret, ift::IftMode mode,
                TraceStore *record, const TraceStore *sibling,
                Lane &lane, DutResult &out);

    void runDualFourPass(const swapmem::SwapSchedule &schedule,
                         const StimulusData &data,
                         const SimOptions &options, DualResult &out);
    void runDualLockstep(const swapmem::SwapSchedule &schedule,
                         const StimulusData &data,
                         const SimOptions &options, DualResult &out,
                         bool allow_capture);

    /**
     * The lockstep main loop, solo tails and lane finish, shared by
     * the full run (runDualLockstep) and the fused Phase-3 resume
     * (runFusedPhase3). @p allow_capture enables the fusion snapshot
     * hook at confirmed iteration bottoms.
     */
    void lockstepLoop(LaneRun &l0, LaneRun &l1,
                      const SimOptions &options, bool allow_capture);

    void captureLane(FusedCapture &cap, const LaneRun &lr);
    void restoreLane(const FusedCapture &cap, LaneRun &lr,
                     const SimOptions &options, size_t transient_index);

    void buildMemory(swapmem::Memory &mem, const StimulusData &data,
                     bool flipped_secret) const;

    uarch::CoreConfig cfg_;
    Lane lane0_;
    Lane lane1_;
    /** Checkpoint target for the lockstep redo protocol (pooled so
     *  the per-checkpoint copy reuses vector storage). */
    uarch::Core ckpt_core_;
    /** Discarded value-pass results of the legacy 4-pass path. */
    DutResult scratch_result_;
    TraceStore store_a_;
    TraceStore store_b_;
    /** Phase-3 fusion snapshots (lane 0 / lane 1). */
    FusedCapture fused0_;
    FusedCapture fused1_;
    /** Sanitized schedule the armed capture will resume onto. */
    const swapmem::SwapSchedule *fusion_sanitized_ = nullptr;
    bool fusion_armed_ = false;
    bool fusion_captured_ = false;
};

} // namespace dejavuzz::harness

#endif // DEJAVUZZ_HARNESS_DUALSIM_HH
